// mrtdump prints the records of an MRT (RFC 6396) file, the format of the
// archive baseline feed. Reads a file argument or stdin.
//
//	go run ./cmd/mrtdump updates.900.mrt
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"artemis/internal/bgp"
	"artemis/internal/bgp/mrt"
)

func main() {
	flag.Parse()
	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	r := mrt.NewReader(in)
	for i := 0; ; i++ {
		rec, err := r.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			log.Fatalf("record %d: %v", i, err)
		}
		switch m := rec.(type) {
		case *mrt.BGP4MPMessage:
			u, ok := m.Message.(*bgp.Update)
			if !ok {
				fmt.Printf("%d %v BGP4MP peer=%v %v\n", i, m.Time().Format("15:04:05"), m.PeerAS, m.Message.Type())
				continue
			}
			path, _ := u.ASPath()
			fmt.Printf("%d %v BGP4MP peer=%v announce=%v withdraw=%v path=%v\n",
				i, m.Time().Format("15:04:05"), m.PeerAS, u.NLRI, u.Withdrawn, path)
		case *mrt.PeerIndexTable:
			fmt.Printf("%d %v PEER_INDEX_TABLE view=%q peers=%d\n", i, m.Time().Format("15:04:05"), m.ViewName, len(m.Peers))
		case *mrt.RIBEntry:
			fmt.Printf("%d %v RIB seq=%d prefix=%v routes=%d\n", i, m.Time().Format("15:04:05"), m.Sequence, m.Prefix, len(m.Routes))
		}
	}
}
