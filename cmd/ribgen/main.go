// ribgen writes a deterministic synthetic full-RIB MRT snapshot
// (TABLE_DUMP_V2: one PEER_INDEX_TABLE followed by RIB_IPV4_UNICAST and
// RIB_IPV6_UNICAST entries), sized like a real collector dump. It backs
// `make rib-fixture` and the full-scale load measurement
// (docs/PERFORMANCE.md): the default sizes approximate today's global
// table (~1M IPv4 + ~220k IPv6 prefixes).
//
//	go run ./cmd/ribgen -o testdata/rib-full.mrt
//	go run ./cmd/ribgen -v4 4000 -v6 880 -o small.mrt
//
// Output is a pure function of the flags (fixed seed, no wall clock), so
// a fixture can be regenerated instead of checked in.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"artemis/internal/rib"
)

func main() {
	v4 := flag.Int("v4", 1_000_000, "IPv4 prefixes to generate")
	v6 := flag.Int("v6", 220_000, "IPv6 prefixes to generate")
	peers := flag.Int("peers", 8, "collector peers in the PEER_INDEX_TABLE")
	routes := flag.Int("routes-per-prefix", 2, "routes (peer views) per prefix")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (required)")
	force := flag.Bool("force", false, "regenerate even if the output already exists")
	flag.Parse()

	if *out == "" {
		log.Fatal("ribgen: -o output file required")
	}
	if !*force {
		if st, err := os.Stat(*out); err == nil && st.Size() > 0 {
			fmt.Printf("ribgen: %s exists (%d bytes), keeping it (use -force to regenerate)\n", *out, st.Size())
			return
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	cfg := rib.SynthConfig{V4: *v4, V6: *v6, Peers: *peers, RoutesPerPrefix: *routes, Seed: *seed}
	if err := rib.WriteSynth(w, cfg); err != nil {
		os.Remove(*out)
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(*out)
	fmt.Printf("ribgen: wrote %s (%d bytes: %d v4 + %d v6 prefixes, %d peers, seed %d)\n",
		*out, st.Size(), *v4, *v6, *peers, *seed)
}
