// artemisd is the ARTEMIS daemon: it connects to live monitoring feeds
// (a RIS-style WebSocket stream and/or a BGPmon-style XML stream), watches
// the configured prefixes, and on detection mitigates through a
// controller's REST API. It is the client side of cmd/simnet.
//
//	go run ./cmd/artemisd \
//	    -prefix 10.0.0.0/23 -origin 61000 \
//	    -ris ws://127.0.0.1:PORT/v1/ws \
//	    -bgpmon 127.0.0.1:PORT \
//	    -controller http://127.0.0.1:PORT
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/controller"
	"artemis/internal/core"
	"artemis/internal/feeds/bgpmon"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/feeds/ris"
	"artemis/internal/prefix"
)

func main() {
	prefixes := flag.String("prefix", "", "comma-separated owned prefixes (required)")
	origins := flag.String("origin", "", "comma-separated legitimate origin ASNs (required)")
	risURL := flag.String("ris", "", "RIS websocket URL (ws://host:port/v1/ws)")
	bmonAddr := flag.String("bgpmon", "", "BGPmon TCP address (host:port)")
	ctrlURL := flag.String("controller", "", "controller REST base URL (enables auto-mitigation)")
	cfgDelay := flag.Duration("config-delay", 15*time.Second, "controller configuration latency")
	runFor := flag.Duration("run-for", 0, "exit after this wall time (0 = run forever)")
	metricsAddr := flag.String("metrics", "", "listen address for the /metrics text endpoint (e.g. :9130; empty = disabled)")
	mitQueue := flag.Int("mitigation-queue", 64, "async mitigation queue depth")
	flag.Parse()

	cfg := &core.Config{}
	for _, s := range splitList(*prefixes) {
		p, err := prefix.Parse(s)
		if err != nil {
			log.Fatalf("bad -prefix %q: %v", s, err)
		}
		cfg.OwnedPrefixes = append(cfg.OwnedPrefixes, p)
	}
	for _, s := range splitList(*origins) {
		v, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			log.Fatalf("bad -origin %q: %v", s, err)
		}
		cfg.LegitOrigins = append(cfg.LegitOrigins, bgp.ASN(v))
	}
	cfg.ManualMitigation = *ctrlURL == ""

	var inj controller.RouteInjector = noopInjector{}
	if *ctrlURL != "" {
		inj = controller.NewRESTClient(*ctrlURL)
	}
	start := time.Now()
	ctrl := controller.NewReal(inj, controller.WithConfigDelay(*cfgDelay))
	// Mitigation runs on its own bounded worker: a slow controller REST
	// call must not stall the sink (and with it the whole ingest path).
	svc, err := core.NewService(cfg, ctrl, func() time.Duration { return time.Since(start) },
		core.WithAsyncMitigation(*mitQueue))
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	// All feeds funnel into the sharded detection pipeline; shards classify
	// concurrently, the sink serializes alerts and the monitor fold.
	pl := core.NewPipeline(svc.Detector, svc.Monitor, core.PipelineConfig{})
	defer pl.Close()

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			pl.Snapshot().WriteProm(w)
			svc.Mitigation.Snapshot().WriteProm(w)
			fmt.Fprintf(w, "artemis_alerts_total %d\n", svc.Detector.AlertCount())
			fmt.Fprintf(w, "artemis_controller_failed_actions_total %d\n", ctrl.Failures())
			snap := svc.Monitor.Snapshot(time.Since(start))
			fmt.Fprintf(w, "artemis_monitor_legit_vps %d\n", snap.LegitVPs)
			fmt.Fprintf(w, "artemis_monitor_hijacked_vps %d\n", snap.HijackedVPs)
			fmt.Fprintf(w, "artemis_monitor_unknown_vps %d\n", snap.UnknownVPs)
		})
		go func() {
			log.Printf("metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}
	svc.Detector.OnAlert(func(a core.Alert) {
		log.Printf("ALERT %s: %s announced by AS%d (collides with owned %s, via %s/%s vp AS%d)",
			a.Type, a.Prefix, a.Origin, a.Owned, a.Evidence.Source, a.Evidence.Collector, a.Evidence.VantagePoint)
		if cfg.ManualMitigation {
			log.Printf("  no -controller configured: mitigation left to the operator")
		}
	})

	filter := feedtypes.Filter{Prefixes: cfg.OwnedPrefixes, MoreSpecific: true, LessSpecific: true}
	connected := 0
	if *risURL != "" {
		cli, err := ris.DialClient(*risURL, filter)
		if err != nil {
			log.Fatalf("ris: %v", err)
		}
		defer cli.Close()
		go pump("ris", cli.Events(), pl)
		connected++
	}
	if *bmonAddr != "" {
		cli, err := bgpmon.DialClient(*bmonAddr, filter)
		if err != nil {
			log.Fatalf("bgpmon: %v", err)
		}
		defer cli.Close()
		go pump("bgpmon", cli.Events(), pl)
		connected++
	}
	if connected == 0 {
		log.Fatal("no feeds configured; pass -ris and/or -bgpmon")
	}
	fmt.Printf("artemisd watching %v (origins %v) over %d feed(s)\n",
		cfg.OwnedPrefixes, cfg.LegitOrigins, connected)

	if *runFor > 0 {
		time.Sleep(*runFor)
		pl.Flush()
		snap := pl.Snapshot()
		fmt.Printf("run-for elapsed; pipeline ingested %d events in %d batches\n", snap.Events, snap.Submitted)
		for _, sh := range snap.Shards {
			fmt.Printf("  shard %d: %d events, %d batches, queue %d/%d\n",
				sh.Shard, sh.Events, sh.Batches, sh.QueueLen, sh.QueueCap)
		}
		return
	}
	select {}
}

// maxPumpBatch caps how many stream events are coalesced into one
// pipeline submission when the feed runs hot.
const maxPumpBatch = 256

// pump drains a feed's event stream into the pipeline, coalescing bursts
// into batches: one event minimum, then whatever is already waiting on the
// channel, so quiet feeds stay low-latency and busy feeds amortize the
// per-submission cost.
func pump(name string, events <-chan feedtypes.Event, pl *core.Pipeline) {
	batch := make([]feedtypes.Event, 0, maxPumpBatch)
	for ev := range events {
		batch = append(batch[:0], ev)
	coalesce:
		for len(batch) < maxPumpBatch {
			select {
			case next, ok := <-events:
				if !ok {
					break coalesce
				}
				batch = append(batch, next)
			default:
				break coalesce
			}
		}
		pl.Submit(batch) // Submit copies; the batch slice is reused
	}
	log.Printf("%s stream closed", name)
}

func splitList(s string) []string {
	if s == "" {
		log.Fatal("missing required flag (see -h)")
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// noopInjector is used when no controller is configured: detection-only.
type noopInjector struct{}

func (noopInjector) AnnounceRoute(prefix.Prefix) error { return nil }
func (noopInjector) WithdrawRoute(prefix.Prefix) error { return nil }
