// artemisd is the ARTEMIS daemon: it supervises any number of live
// monitoring feed connections (RIS-style WebSocket streams, BGPmon-style
// XML streams, MRT archive replays), fans them into the sharded detection
// pipeline with cross-source dedup, watches the configured prefixes, and
// on detection mitigates through a controller's REST API. It is the
// client side of cmd/simnet.
//
//	go run ./cmd/artemisd \
//	    -prefix 10.0.0.0/23,2001:db8::/32 -origin 61000 \
//	    -ris ws://127.0.0.1:PORT/v1/ws -ris ws://127.0.0.1:PORT2/v1/ws \
//	    -bgpmon 127.0.0.1:PORT \
//	    -controller http://127.0.0.1:PORT
//
// The owned-prefix list is dual-stack: v4 and v6 prefixes mix freely, and
// every feed, the detection pipeline, and mitigation handle both families
// (v4 mitigation clamps de-aggregation at /24, v6 at /48).
//
// -ris/-bgpmon/-mrt are repeatable: every occurrence adds one supervised
// source. Dead connections are redialed with exponential backoff; a
// flapping source sheds its own load without stalling its siblings. On
// SIGINT/SIGTERM the daemon shuts down gracefully: sources stop, the
// pipeline flushes, the mitigation queue drains, then it exits.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/controller"
	"artemis/internal/core"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/ingest"
	"artemis/internal/prefix"
)

// listFlag collects repeated occurrences of a flag.
type listFlag []string

func (l *listFlag) String() string { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	prefixes := flag.String("prefix", "", "comma-separated owned prefixes, v4 and/or v6 (required)")
	origins := flag.String("origin", "", "comma-separated legitimate origin ASNs (required)")
	var risURLs, bmonAddrs, mrtFiles listFlag
	flag.Var(&risURLs, "ris", "RIS websocket URL (ws://host:port/v1/ws); repeatable")
	flag.Var(&bmonAddrs, "bgpmon", "BGPmon TCP address (host:port); repeatable")
	flag.Var(&mrtFiles, "mrt", "MRT archive file to replay as a feed; repeatable")
	ctrlURL := flag.String("controller", "", "controller REST base URL (enables auto-mitigation)")
	cfgDelay := flag.Duration("config-delay", 15*time.Second, "controller configuration latency")
	runFor := flag.Duration("run-for", 0, "exit after this wall time (0 = run until SIGINT/SIGTERM)")
	metricsAddr := flag.String("metrics", "", "listen address for the /metrics text endpoint (e.g. :9130; empty = disabled)")
	mitQueue := flag.Int("mitigation-queue", 64, "async mitigation queue depth")
	srcQueue := flag.Int("source-queue", 64, "per-source pending-batch bound before the drop policy sheds load")
	dedupTTL := flag.Duration("dedup-ttl", 10*time.Minute, "cross-source dedup window (negative disables dedup)")
	alertTTL := flag.Duration("alert-ttl", 24*time.Hour, "incident dedup window; a hijack still live after it re-alerts (0 = dedup forever, unbounded memory)")
	flag.Parse()

	cfg := &core.Config{
		AlertDedupTTL: *alertTTL,
		AlertDedupMax: 1 << 16,
	}
	for _, s := range splitList(*prefixes) {
		p, err := prefix.Parse(s)
		if err != nil {
			log.Fatalf("bad -prefix %q: %v", s, err)
		}
		cfg.OwnedPrefixes = append(cfg.OwnedPrefixes, p)
	}
	for _, s := range splitList(*origins) {
		v, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			log.Fatalf("bad -origin %q: %v", s, err)
		}
		cfg.LegitOrigins = append(cfg.LegitOrigins, bgp.ASN(v))
	}
	cfg.ManualMitigation = *ctrlURL == ""

	var inj controller.RouteInjector = noopInjector{}
	if *ctrlURL != "" {
		inj = controller.NewRESTClient(*ctrlURL)
	}
	start := time.Now()
	ctrl := controller.NewReal(inj, controller.WithConfigDelay(*cfgDelay))
	// Mitigation runs on its own bounded worker: a slow controller REST
	// call must not stall the sink (and with it the whole ingest path).
	svc, err := core.NewService(cfg, ctrl, func() time.Duration { return time.Since(start) },
		core.WithAsyncMitigation(*mitQueue))
	if err != nil {
		log.Fatal(err)
	}
	// All feeds funnel into the sharded detection pipeline; shards classify
	// concurrently, the sink serializes alerts and the monitor fold.
	pl := core.NewPipeline(svc.Detector, svc.Monitor, core.PipelineConfig{})

	// The ingest supervisor owns every feed connection: reconnect with
	// backoff, cross-source dedup (first delivery wins), per-source
	// queues and drop policy, per-source counters.
	sup := ingest.New(pl.Submit, ingest.Config{
		QueueDepth: *srcQueue,
		DedupTTL:   *dedupTTL,
	})
	filter := feedtypes.Filter{Prefixes: cfg.OwnedPrefixes, MoreSpecific: true, LessSpecific: true}
	connected := 0
	for i, u := range risURLs {
		sup.AddDialer(fmt.Sprintf("ris[%d]", i), ingest.RISDialer(u, filter))
		connected++
	}
	for i, a := range bmonAddrs {
		sup.AddDialer(fmt.Sprintf("bgpmon[%d]", i), ingest.BGPmonDialer(a, filter))
		connected++
	}
	for i, f := range mrtFiles {
		f := f
		open := func() (io.ReadCloser, error) { return os.Open(f) }
		sup.AddDialer(fmt.Sprintf("mrt[%d]", i), ingest.MRTReplayDialer(open, f), ingest.Blocking())
		connected++
	}
	if connected == 0 {
		log.Fatal("no feeds configured; pass -ris, -bgpmon and/or -mrt")
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			sup.Snapshot().WriteProm(w)
			pl.Snapshot().WriteProm(w)
			svc.Mitigation.Snapshot().WriteProm(w)
			fmt.Fprintf(w, "artemis_alerts_total %d\n", svc.Detector.AlertCount())
			fmt.Fprintf(w, "artemis_alert_dedup_size %d\n", svc.Detector.DedupSize())
			fmt.Fprintf(w, "artemis_controller_failed_actions_total %d\n", ctrl.Failures())
			snap := svc.Monitor.Snapshot(time.Since(start))
			fmt.Fprintf(w, "artemis_monitor_legit_vps %d\n", snap.LegitVPs)
			fmt.Fprintf(w, "artemis_monitor_hijacked_vps %d\n", snap.HijackedVPs)
			fmt.Fprintf(w, "artemis_monitor_unknown_vps %d\n", snap.UnknownVPs)
		})
		go func() {
			log.Printf("metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}
	svc.Detector.OnAlert(func(a core.Alert) {
		log.Printf("ALERT %s: %s announced by AS%d (collides with owned %s, via %s/%s vp AS%d)",
			a.Type, a.Prefix, a.Origin, a.Owned, a.Evidence.Source, a.Evidence.Collector, a.Evidence.VantagePoint)
		if cfg.ManualMitigation {
			log.Printf("  no -controller configured: mitigation left to the operator")
		}
	})

	fmt.Printf("artemisd watching %v (origins %v) over %d supervised feed(s)\n",
		cfg.OwnedPrefixes, cfg.LegitOrigins, connected)

	// Run until a signal or the -run-for timer, then drain in dependency
	// order: stop the sources (no new batches), flush and close the
	// pipeline (classification + sink complete), drain the mitigation
	// queue (every accepted alert handled), exit.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	var timer <-chan time.Time
	if *runFor > 0 {
		timer = time.After(*runFor)
	}
	select {
	case sig := <-sigc:
		log.Printf("%v: shutting down", sig)
	case <-timer:
		log.Printf("run-for %v elapsed: shutting down", *runFor)
	}
	sup.Close()
	pl.Flush()
	pl.Close()
	svc.Close()

	snap := pl.Snapshot()
	fmt.Printf("pipeline ingested %d events in %d batches\n", snap.Events, snap.Submitted)
	for _, src := range sup.Snapshot().Sources {
		fmt.Printf("  %-12s %-10s events=%d batches=%d dedup=%d drops=%d reconnects=%d\n",
			src.Name, src.State, src.Events, src.Batches, src.DedupHits, src.Drops, src.Reconnects)
	}
}

func splitList(s string) []string {
	if s == "" {
		log.Fatal("missing required flag (see -h)")
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// noopInjector is used when no controller is configured: detection-only.
type noopInjector struct{}

func (noopInjector) AnnounceRoute(prefix.Prefix) error { return nil }
func (noopInjector) WithdrawRoute(prefix.Prefix) error { return nil }
