// artemisd is the ARTEMIS daemon: a thin shell over the embeddable
// pkg/artemis API. It loads a declarative config file, applies flag
// overrides, assembles a node (supervised multi-source ingest, sharded
// detection pipeline, incremental monitor, bounded async mitigation) and
// serves the versioned HTTP control plane — including /metrics and live
// reconfiguration — until SIGINT/SIGTERM, then drains gracefully.
//
//	go run ./cmd/artemisd -config artemis.yaml
//
// or flag-only, as earlier versions were driven:
//
//	go run ./cmd/artemisd \
//	    -prefix 10.0.0.0/23,2001:db8::/32 -origin 61000 \
//	    -ris ws://127.0.0.1:PORT/v1/ws -bgpmon 127.0.0.1:PORT \
//	    -controller http://127.0.0.1:PORT -listen :9130
//
// Flags override the config file where both are given. While running,
// owned prefixes, origins and feed sources are all hot-reconfigurable
// over HTTP (POST/DELETE /v1/prefixes, /v1/sources) with no restart; the
// /v1/alerts/stream endpoint serves alerts, mitigation outcomes and
// source-health transitions as server-sent events, and /v1/events/stream
// is the raw feed-event firehose in the event-log envelope form.
//
// -record archives the post-dedup event stream to rotated .evlog
// segments; -replay feeds such an archive back through the full
// pipeline at -replay-speed (N x recorded pacing, 0 = as fast as
// possible) with event time preserved, so a replayed incident
// reproduces the live run's alerts exactly (docs/INTERCHANGE.md).
// -bmp dials a router's BMP port in station mode (RFC 7854).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"artemis/pkg/artemis"
	"artemis/pkg/artemis/control"
)

// listFlag collects repeated occurrences of a flag.
type listFlag []string

func (l *listFlag) String() string { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	configPath := flag.String("config", "", "declarative config file (artemis.yaml); flags override it")
	prefixes := flag.String("prefix", "", "comma-separated owned prefixes, v4 and/or v6")
	origins := flag.String("origin", "", "comma-separated legitimate origin ASNs")
	var risURLs, bmonAddrs, mrtFiles, periURLs, bmpAddrs, replayGlobs listFlag
	flag.Var(&risURLs, "ris", "RIS websocket URL (ws://host:port/v1/ws); repeatable")
	flag.Var(&bmonAddrs, "bgpmon", "BGPmon TCP address (host:port); repeatable")
	flag.Var(&mrtFiles, "mrt", "MRT archive file to replay as a feed; repeatable")
	flag.Var(&periURLs, "periscope", "Periscope looking-glass REST base URL (http://host:port); repeatable")
	flag.Var(&bmpAddrs, "bmp", "BMP exporter TCP address to dial in station mode (host:port); repeatable")
	flag.Var(&replayGlobs, "replay", "event-log archive file or glob to replay as a feed; repeatable")
	replaySpeed := flag.Float64("replay-speed", 0, "replay pacing: 1 = recorded speed, N = N x faster, 0 = as fast as possible")
	recordPath := flag.String("record", "", "archive the post-dedup event stream to <path>-NNNNNN.evlog segments")
	ctrlURL := flag.String("controller", "", "controller REST base URL (enables auto-mitigation)")
	cfgDelay := flag.Duration("config-delay", 0, "controller configuration latency (default 15s; 0 = no delay)")
	runFor := flag.Duration("run-for", 0, "exit after this wall time (0 = run until SIGINT/SIGTERM)")
	listen := flag.String("listen", "", "control plane + /metrics listen address (e.g. :9130)")
	metricsAddr := flag.String("metrics", "", "deprecated alias for -listen")
	adminToken := flag.String("admin-token", "", "control-plane admin bearer token (unset + no tenant tokens = open API)")
	statePath := flag.String("state", "", "persisted config store; preferred over -config when it exists, written back on every live change")
	mitQueue := flag.Int("mitigation-queue", 0, "async mitigation queue depth (default 64)")
	srcQueue := flag.Int("source-queue", 0, "per-source pending-batch bound (default 64)")
	dedupTTL := flag.Duration("dedup-ttl", 0, "cross-source dedup window (default 10m; negative disables)")
	alertTTL := flag.Duration("alert-ttl", 0, "incident dedup window (default 24h; 0 = dedup forever, unbounded suppression)")
	ribPath := flag.String("rib", "", "MRT TABLE_DUMP_V2 snapshot to bootstrap the route table (enables /v1/lookup)")
	rpkiSrc := flag.String("rpki", "", "ROA export for origin validation: a JSON file path or an http(s) URL")
	rpkiRefresh := flag.Duration("rpki-refresh", 0, "re-fetch interval for an -rpki URL (0 = fetch once)")
	asnamesPath := flag.String("asnames", "", "AS-name CSV (asn,name[,locale]) to enrich alerts and lookups")
	flag.Parse()
	// Flags whose zero value is meaningful need set-detection: an
	// explicit 0 maps to the config schema's negative sentinel ("really
	// zero / forever") instead of reading as unset.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	// The persisted state store (written back on every live change) wins
	// over the declarative file: tenants and prefixes added over HTTP in a
	// prior run survive a restart even if artemis.yaml predates them.
	cfg := &artemis.Config{}
	switch {
	case *statePath != "" && fileExists(*statePath):
		var err error
		cfg, err = artemis.LoadState(*statePath)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("resuming from state store %s (%d tenants)", *statePath, len(cfg.Tenants))
	case *configPath != "":
		var err error
		cfg, err = artemis.LoadConfig(*configPath)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *statePath != "" {
		cfg.Control.StateFile = *statePath
	}
	if *adminToken != "" {
		cfg.Control.AdminToken = *adminToken
	}

	// Flag overrides on top of the file.
	if *prefixes != "" {
		cfg.Prefixes = splitList(*prefixes)
	}
	if *origins != "" {
		cfg.Origins = nil
		for _, s := range splitList(*origins) {
			v, err := strconv.ParseUint(s, 10, 32)
			if err != nil {
				log.Fatalf("bad -origin %q: %v", s, err)
			}
			cfg.Origins = append(cfg.Origins, uint32(v))
		}
	}
	for _, u := range risURLs {
		cfg.Sources = append(cfg.Sources, artemis.SourceSpec{Type: artemis.SourceRIS, URL: u})
	}
	for _, a := range bmonAddrs {
		cfg.Sources = append(cfg.Sources, artemis.SourceSpec{Type: artemis.SourceBGPmon, Addr: a})
	}
	for _, f := range mrtFiles {
		cfg.Sources = append(cfg.Sources, artemis.SourceSpec{Type: artemis.SourceMRT, Path: f})
	}
	for _, u := range periURLs {
		cfg.Sources = append(cfg.Sources, artemis.SourceSpec{Type: artemis.SourcePeriscope, URL: u})
	}
	for _, a := range bmpAddrs {
		cfg.Sources = append(cfg.Sources, artemis.SourceSpec{Type: artemis.SourceBMP, Addr: a})
	}
	for _, g := range replayGlobs {
		cfg.Sources = append(cfg.Sources, artemis.SourceSpec{Type: artemis.SourceReplay, Path: g, Speed: *replaySpeed})
	}
	if *recordPath != "" {
		cfg.Record.Path = *recordPath
	}
	if *ctrlURL != "" {
		cfg.Mitigation.Controller = *ctrlURL
	}
	if explicit["config-delay"] {
		cfg.Mitigation.ConfigDelay = artemis.Duration(*cfgDelay)
		if *cfgDelay == 0 {
			cfg.Mitigation.ConfigDelay = -1 // explicit zero-latency controller
		}
	}
	if *mitQueue > 0 {
		cfg.Mitigation.QueueDepth = *mitQueue
	}
	if *srcQueue > 0 {
		cfg.Tuning.SourceQueue = *srcQueue
	}
	if *dedupTTL != 0 {
		cfg.Tuning.DedupTTL = artemis.Duration(*dedupTTL)
	}
	if explicit["alert-ttl"] {
		cfg.Tuning.AlertTTL = artemis.Duration(*alertTTL)
		if *alertTTL == 0 {
			cfg.Tuning.AlertTTL = -1 // explicit dedup-forever
		}
	}
	if *listen != "" {
		cfg.Control.Listen = *listen
	} else if *metricsAddr != "" {
		cfg.Control.Listen = *metricsAddr
	}
	if *ribPath != "" {
		cfg.RIB = artemis.RIBConfig{Enabled: true, Path: *ribPath}
	}
	if *rpkiSrc != "" {
		cfg.RPKI = artemis.RPKIConfig{Refresh: artemis.Duration(*rpkiRefresh)}
		if strings.HasPrefix(*rpkiSrc, "http://") || strings.HasPrefix(*rpkiSrc, "https://") {
			cfg.RPKI.URL = *rpkiSrc
		} else {
			cfg.RPKI.Path = *rpkiSrc
		}
	}
	if *asnamesPath != "" {
		cfg.ASNames.Path = *asnamesPath
	}
	if len(cfg.Sources) == 0 {
		log.Fatal("no feeds configured; declare sources in -config or pass -ris/-bgpmon/-mrt/-periscope/-bmp/-replay")
	}

	node, err := artemis.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The control plane (REST + SSE + /metrics) shares one server, shut
	// down gracefully with the node in the drain path below.
	var srv *control.Server
	if cfg.Control.Listen != "" {
		srv = control.NewServer(node)
		go func() {
			log.Printf("control plane on http://%s (metrics at /metrics)", cfg.Control.Listen)
			if err := srv.ListenAndServe(cfg.Control.Listen); err != nil && err != http.ErrServerClosed {
				log.Printf("control plane: %v", err)
			}
		}()
	}

	fmt.Printf("artemisd watching %v (origins %v, %d tenant(s)) over %d supervised feed(s)\n",
		cfg.Prefixes, cfg.Origins, len(node.TenantNames()), len(cfg.Sources))

	// Run until a signal or the -run-for timer, then drain in dependency
	// order: sources -> pipeline flush -> mitigation queue -> control plane.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *runFor > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runFor)
		defer cancel()
	}
	if err := node.Run(ctx); err != nil {
		log.Fatal(err)
	}
	if srv != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("control plane shutdown: %v", err)
		}
	}

	for _, src := range node.Health().Sources {
		fmt.Printf("  %-14s %-10s events=%d batches=%d dedup=%d drops=%d reconnects=%d\n",
			src.Name, src.State, src.Events, src.Batches, src.DedupHits, src.Drops, src.Reconnects)
	}
}

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && !st.IsDir()
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
