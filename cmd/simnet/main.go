// simnet runs the simulated Internet with all feed servers live, paced
// against the wall clock, and scripts a hijack — the server side of the
// demo. Point cmd/artemisd at the printed endpoints.
//
//	go run ./cmd/simnet -scale 60 -hijack-after 3m
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/controller"
	"artemis/internal/feeds/bgpmon"
	"artemis/internal/feeds/ris"
	"artemis/internal/peering"
	"artemis/internal/prefix"
	"artemis/internal/sim"
	"artemis/internal/simnet"
	"artemis/internal/topo"
)

func main() {
	scale := flag.Float64("scale", 60, "wall-clock compression (60 = 1 sim minute per second)")
	hijackAfter := flag.Duration("hijack-after", 3*time.Minute, "sim time before the scripted hijack (0 disables)")
	horizon := flag.Duration("horizon", 30*time.Minute, "sim time to run before exiting")
	ownedStr := flag.String("prefix", "10.0.0.0/23", "victim prefix")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Parse()

	owned, err := prefix.Parse(*ownedStr)
	if err != nil {
		log.Fatal(err)
	}
	cfg := topo.DefaultGenConfig()
	cfg.Seed = *seed
	tp, err := topo.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stub0 := topo.FirstASN + bgp.ASN(cfg.Tier1+cfg.Transit)
	victim, err := peering.Attach(tp, 61000, []bgp.ASN{stub0, stub0 + 1}, 5*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := peering.Attach(tp, 64666, []bgp.ASN{stub0 + 40, stub0 + 41}, 5*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.NewEngine(*seed)
	nw := simnet.New(tp, eng, simnet.Config{})

	risSvc := ris.New(nw, []ris.CollectorConfig{
		{Name: "rrc00", Peers: []bgp.ASN{topo.FirstASN + 10, topo.FirstASN + 25}},
		{Name: "rrc01", Peers: []bgp.ASN{topo.FirstASN + 40, topo.FirstASN + 55}},
	})
	risLn := mustListen()
	go http.Serve(risLn, ris.NewServer(risSvc))

	bmonSvc := bgpmon.New(nw, bgpmon.Config{Peers: []bgp.ASN{topo.FirstASN + 15, topo.FirstASN + 60}})
	bmonSrv, err := bgpmon.NewServer(bmonSvc, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer bmonSrv.Close()

	ctrl := controller.NewSim(nw, victim.Bind(nw))
	ctrlLn := mustListen()
	go http.Serve(ctrlLn, controller.NewRESTServer(ctrl))

	fmt.Printf("simulated Internet: %d ASes (victim AS%d owns %s, attacker AS%d)\n",
		tp.Len(), victim.ASN, owned, attacker.ASN)
	fmt.Printf("RIS websocket:    ws://%s/v1/ws\n", risLn.Addr())
	fmt.Printf("BGPmon XML:       tcp://%s\n", bmonSrv.Addr())
	fmt.Printf("controller REST:  http://%s/v1/routes\n", ctrlLn.Addr())
	fmt.Printf("running at %gx for %v of sim time\n\n", *scale, *horizon)

	victim.Announce(nw, owned)
	if *hijackAfter > 0 {
		eng.After(*hijackAfter, func() {
			fmt.Printf("[sim %v] HIJACK: AS%d announces %s\n", eng.Now().Round(time.Second), attacker.ASN, owned)
			attacker.Announce(nw, owned)
		})
	}
	eng.RunPaced(*scale, *horizon, 5*time.Second)
	fmt.Println("horizon reached; exiting")
}

func mustListen() net.Listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return ln
}
