// benchdiff compares two `go test -bench` outputs and prints a
// benchstat-style table: one row per (benchmark, metric) pair present in
// both files, with the old value, new value, and relative delta. CI runs
// it against the PR base's bench.txt so sink-latency (or any other)
// regressions are visible per PR without external tooling.
//
//	go test -bench=. -benchtime=1x -run='^$' ./... > new.txt   # and old.txt
//	go run ./cmd/benchdiff old.txt new.txt
//
// With -gates it additionally enforces committed absolute thresholds
// (bench.gates at the repo root) against the NEW file, exiting non-zero
// on any violation. -check gates a single bench file without a diff:
//
//	go run ./cmd/benchdiff -gates bench.gates -check bench.txt
//
// Setting BENCHDIFF_SKIP_GATES=1 downgrades gate violations to warnings
// (see docs/PERFORMANCE.md for when that is acceptable).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics maps "Benchmark/name metric" → value for one bench file.
type metrics map[string]float64

// stripProcs drops a trailing numeric "-N" (the GOMAXPROCS suffix Go
// appends when GOMAXPROCS > 1). "SinkApply/full-fold-8" → ".../full-fold".
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func parse(path string) (metrics, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	type entry struct {
		name, unit string
		value      float64
	}
	var entries []entry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Layout: Name[-GOMAXPROCS]  N  value unit  value unit  …
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			entries = append(entries, entry{fields[0], fields[i+1], v})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	// Strip the -GOMAXPROCS suffix for cross-run key stability — but only
	// when that doesn't merge two DIFFERENT benchmarks. With GOMAXPROCS=1
	// Go omits the suffix, so "shards-1" is the full sub-benchmark name
	// and stripping it would collapse "shards-1"/"shards-4" into "shards".
	owner := map[string]string{} // stripped → raw name that claimed it
	collides := map[string]bool{}
	for _, e := range entries {
		s := stripProcs(e.name)
		if raw, ok := owner[s]; ok && raw != e.name {
			collides[s] = true
		}
		owner[s] = e.name
	}
	out := metrics{}
	var order []string
	for _, e := range entries {
		name := stripProcs(e.name)
		if collides[name] {
			name = e.name
		}
		key := name + " " + e.unit
		if _, seen := out[key]; !seen {
			order = append(order, key)
		}
		out[key] = e.value
	}
	return out, order, nil
}

// gate is one committed threshold: the named metric of the named
// benchmark must be <= max in the gated file.
type gate struct {
	key string // "BenchmarkName/sub metric", same form as metrics keys
	max float64
}

// parseGates reads a gates file: one `<benchmark> <metric> <= <value>`
// per line, '#' comments and blank lines ignored.
func parseGates(path string) ([]gate, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var gates []gate
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 4 || fields[2] != "<=" {
			return nil, fmt.Errorf("%s:%d: want `<benchmark> <metric> <= <value>`, got %q", path, line, sc.Text())
		}
		max, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad threshold %q: %v", path, line, fields[3], err)
		}
		gates = append(gates, gate{key: fields[0] + " " + fields[1], max: max})
	}
	return gates, sc.Err()
}

// enforce checks every gate against m. Missing benchmarks are
// violations too: a gate that silently stops measuring anything is a
// gate that has already failed. Returns the number of violations.
func enforce(gates []gate, m metrics) int {
	violations := 0
	for _, g := range gates {
		v, ok := m[g.key]
		switch {
		case !ok:
			fmt.Fprintf(os.Stderr, "GATE MISSING  %s: not present in bench output (renamed or not run?)\n", g.key)
			violations++
		case v > g.max:
			fmt.Fprintf(os.Stderr, "GATE FAIL     %s = %g, committed threshold <= %g\n", g.key, v, g.max)
			violations++
		default:
			fmt.Printf("gate ok       %s = %g <= %g\n", g.key, v, g.max)
		}
	}
	return violations
}

func main() {
	gatesPath := flag.String("gates", "", "path to a committed thresholds file; violations in the new file fail the run")
	check := flag.Bool("check", false, "gate a single bench file (no old/new diff)")
	flag.Parse()
	args := flag.Args()

	usage := func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-gates file] <old.txt> <new.txt>")
		fmt.Fprintln(os.Stderr, "       benchdiff -gates file -check <new.txt>")
		os.Exit(2)
	}

	var new_ metrics
	var order []string
	var err error
	if *check {
		if len(args) != 1 || *gatesPath == "" {
			usage()
		}
		new_, order, err = parse(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		_ = order
	} else {
		if len(args) != 2 {
			usage()
		}
		old, _, err := parse(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		new_, order, err = parse(args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}

		width := 0
		rows := make([]string, 0, len(order))
		for _, key := range order {
			if _, ok := old[key]; !ok {
				continue
			}
			rows = append(rows, key)
			if len(key) > width {
				width = len(key)
			}
		}
		sort.Strings(rows)
		fmt.Printf("%-*s  %14s  %14s  %8s\n", width, "benchmark metric", "old", "new", "delta")
		for _, key := range rows {
			o, n := old[key], new_[key]
			delta := "~"
			if o != 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(n-o)/o)
			}
			fmt.Printf("%-*s  %14.4g  %14.4g  %8s\n", width, key, o, n, delta)
		}
		// Benchmarks only on one side are still worth surfacing.
		for _, key := range order {
			if _, ok := old[key]; !ok {
				fmt.Printf("%-*s  %14s  %14.4g  %8s\n", width, key, "-", new_[key], "new")
			}
		}
	}

	if *gatesPath == "" {
		return
	}
	gates, err := parseGates(*gatesPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if n := enforce(gates, new_); n > 0 {
		if os.Getenv("BENCHDIFF_SKIP_GATES") == "1" {
			fmt.Fprintf(os.Stderr, "benchdiff: %d gate violation(s) IGNORED (BENCHDIFF_SKIP_GATES=1)\n", n)
			return
		}
		fmt.Fprintf(os.Stderr, "benchdiff: %d gate violation(s); see docs/PERFORMANCE.md#the-allocsop-gate\n", n)
		os.Exit(1)
	}
}
