// benchdiff compares two `go test -bench` outputs and prints a
// benchstat-style table: one row per (benchmark, metric) pair present in
// both files, with the old value, new value, and relative delta. CI runs
// it against the PR base's bench.txt so sink-latency (or any other)
// regressions are visible per PR without external tooling.
//
//	go test -bench=. -benchtime=1x -run='^$' ./... > new.txt   # and old.txt
//	go run ./cmd/benchdiff old.txt new.txt
package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics maps "Benchmark/name metric" → value for one bench file.
type metrics map[string]float64

func parse(path string) (metrics, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	out := metrics{}
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Layout: Name-GOMAXPROCS  N  value unit  value unit  …
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the -GOMAXPROCS suffix, but only when it is numeric
			// ("SinkApply/full-fold-8" → keep "full-fold").
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			key := name + " " + fields[i+1]
			if _, seen := out[key]; !seen {
				order = append(order, key)
			}
			out[key] = v
		}
	}
	return out, order, sc.Err()
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff <old.txt> <new.txt>")
		os.Exit(2)
	}
	old, _, err := parse(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	new_, order, err := parse(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}

	width := 0
	rows := make([]string, 0, len(order))
	for _, key := range order {
		if _, ok := old[key]; !ok {
			continue
		}
		rows = append(rows, key)
		if len(key) > width {
			width = len(key)
		}
	}
	sort.Strings(rows)
	fmt.Printf("%-*s  %14s  %14s  %8s\n", width, "benchmark metric", "old", "new", "delta")
	for _, key := range rows {
		o, n := old[key], new_[key]
		delta := "~"
		if o != 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(n-o)/o)
		}
		fmt.Printf("%-*s  %14.4g  %14.4g  %8s\n", width, key, o, n, delta)
	}
	// Benchmarks only on one side are still worth surfacing.
	for _, key := range order {
		if _, ok := old[key]; !ok {
			fmt.Printf("%-*s  %14s  %14.4g  %8s\n", width, key, "-", new_[key], "new")
		}
	}
}
