// Command fleet runs the adversarial scenario fleet: N seeded hijack
// scenarios per taxonomy class (exact-prefix type-0/1/N, sub-prefix,
// squat, route leaks, legitimate MOAS, prepend forgery, and
// adversarially-timed campaigns) over v4/v6/mixed owned sets, scored for
// detection latency and FP/FN accuracy per class.
//
// The scorecard is written as JSON (-out). With -check, accuracy gates
// (fleet.gates) are evaluated against it and the process exits non-zero
// on any breach — the CI accuracy gate. Failing scenarios are shrunk to
// minimal reproducers; with -repro they are exported as detector-level
// .evlog replays plus JSON sidecars.
//
//	fleet -seeds 3 -out fleet-scorecard.json -check fleet.gates
//	fleet -smoke -check fleet.gates       # PR-CI subset (v4, 1 seed)
//	fleet -testdata internal/fleet/testdata  # regenerate replay corpus
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"
	"time"

	"artemis/internal/fleet"

	"encoding/json"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 3, "seeds per class x family cell")
		baseSeed = flag.Int64("seed", 1, "first seed of the range")
		classes  = flag.String("classes", "", "comma-separated class subset (default: full taxonomy)")
		families = flag.String("families", "", "comma-separated family subset of v4,v6,mixed (default: all)")
		out      = flag.String("out", "fleet-scorecard.json", "scorecard output path ('' = skip)")
		check    = flag.String("check", "", "gates file to enforce; exit 1 on any breach")
		smoke    = flag.Bool("smoke", false, "PR-CI subset: full taxonomy, v4 only, 1 seed")
		shrink   = flag.Bool("shrink", true, "shrink failing scenarios to minimal reproducers")
		repro    = flag.String("repro", "", "directory to export failure reproducers (.evlog + .json)")
		testdata = flag.String("testdata", "", "regenerate the regression replay corpus into this directory, then exit")
		budget   = flag.Int("shrink-budget", 12, "max re-runs the shrinker may spend per failure")
		verbose  = flag.Bool("v", false, "log every trial")
	)
	flag.Parse()

	if *testdata != "" {
		if err := writeCorpus(*testdata); err != nil {
			fatal(err)
		}
		return
	}

	classList := splitList(*classes)
	familyList := splitList(*families)
	if *smoke {
		familyList = []string{"v4"}
		*seeds = 1
	}
	scs, err := fleet.Generate(classList, familyList, *seeds, *baseSeed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fleet: %d scenarios (%d classes x %d families x %d seeds)\n",
		len(scs), countDistinct(scs, func(s fleet.Scenario) string { return s.Class }),
		countDistinct(scs, func(s fleet.Scenario) string { return s.Family }), *seeds)

	start := time.Now()
	var progress func(fleet.Result)
	if *verbose {
		progress = func(r fleet.Result) {
			fmt.Printf("  %-40s %-10s %s\n", r.Scenario.Name(), r.Verdict, r.Detail)
		}
	}
	results := fleet.RunAll(scs, progress)
	card := fleet.Score(results, *baseSeed, *seeds)
	fmt.Printf("fleet: ran %d trials in %v\n", card.Totals.Trials, time.Since(start).Round(time.Millisecond))

	if *shrink {
		for i := range card.Failures {
			f := &card.Failures[i]
			small, tries := fleet.Shrink(f.Scenario, f.Verdict, *budget)
			f.Shrunk = &small
			fmt.Printf("fleet: shrunk %s (%s) in %d runs: stubs=%d transit=%d delay=%v owned=%d\n",
				f.Scenario.Name(), f.Verdict, tries, small.Stubs, small.Transit,
				small.HijackDelay, len(small.OwnedSet))
			if *repro != "" {
				if err := os.MkdirAll(*repro, 0o755); err != nil {
					fatal(err)
				}
				name := sanitize(small.Name())
				if _, _, err := fleet.Capture(small, *repro, name); err != nil {
					fmt.Fprintf(os.Stderr, "fleet: reproducer for %s: %v\n", small.Name(), err)
				} else {
					f.Reproducer = name + ".json"
					fmt.Printf("fleet: wrote reproducer %s\n", filepath.Join(*repro, name+".json"))
				}
			}
		}
	}

	printSummary(card)

	if *out != "" {
		blob, err := json.MarshalIndent(card, "", "  ")
		if err != nil {
			fatal(err)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("fleet: scorecard written to %s\n", *out)
	}

	if *check != "" {
		f, err := os.Open(*check)
		if err != nil {
			fatal(err)
		}
		gates, err := fleet.ParseGates(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if bad := card.Check(gates); len(bad) != 0 {
			fmt.Fprintf(os.Stderr, "fleet: %d gate violation(s):\n", len(bad))
			for _, b := range bad {
				fmt.Fprintf(os.Stderr, "  %s\n", b)
			}
			os.Exit(1)
		}
		fmt.Printf("fleet: all %d gates green\n", len(gates))
	}
}

// corpusEntries are the checked-in regression reproducers: the detector
// misclassifications this repo fixed (hidden forged-origin sub-prefix,
// legitimate-MOAS/self-announcement whitelisting) plus the
// prepend-forgery upstream-inference case, captured post-fix so replays
// assert the fixed verdicts.
var corpusEntries = []fleet.Scenario{
	{Class: "sub-prefix-forged-origin", Family: "v4", Seed: 2,
		Owned: "10.0.0.0/23", OwnedSet: []string{"10.0.0.0/23", "10.0.2.0/23"},
		Stubs: 40, Transit: 12},
	{Class: "legit-moas", Family: "v4", Seed: 2,
		Owned: "10.0.0.0/23", OwnedSet: []string{"10.0.0.0/23", "10.0.2.0/23"},
		Stubs: 40, Transit: 12},
	{Class: "prepend-forgery", Family: "v4", Seed: 2,
		Owned: "10.0.0.0/23", OwnedSet: []string{"10.0.0.0/23", "10.0.2.0/23"},
		Stubs: 40, Transit: 12},
	{Class: "legit-moas", Family: "v6", Seed: 3,
		Owned: "2001:db8::/47", OwnedSet: []string{"2001:db8::/47", "2001:db8:2::/47"},
		Stubs: 40, Transit: 12},
}

func writeCorpus(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, sc := range corpusEntries {
		name := sanitize(sc.Name())
		rep, res, err := fleet.Capture(sc, dir, name)
		if err != nil {
			return fmt.Errorf("capture %s: %w", sc.Name(), err)
		}
		if res.Failed() {
			return fmt.Errorf("capture %s: verdict %s (%s) — corpus must record passing runs",
				sc.Name(), res.Verdict, res.Detail)
		}
		alerts, err := rep.Replay(dir)
		if err != nil {
			return fmt.Errorf("replay %s: %w", sc.Name(), err)
		}
		if err := rep.CheckExpect(alerts); err != nil {
			return fmt.Errorf("replay %s: %w", sc.Name(), err)
		}
		fmt.Printf("fleet: corpus entry %s (%d alerts on replay)\n", name, len(alerts))
	}
	return nil
}

func printSummary(card fleet.Scorecard) {
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "CLASS\tFAMILY\tTRIALS\tDETECTED\tFN\tFP\tWRONG\tERR\tDET p50\tDET p90")
	for _, c := range card.Classes {
		p50, p90 := "-", "-"
		if c.Detected > 0 {
			p50 = c.Detection.Median.Round(time.Second).String()
			p90 = c.Detection.P90.Round(time.Second).String()
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%s\n",
			c.Class, c.Family, c.Trials, c.Detected, c.FN, c.FP, c.WrongType, c.Errors, p50, p90)
	}
	t := card.Totals
	fmt.Fprintf(w, "TOTAL\t\t%d\t%d\t%d\t%d\t%d\t%d\t\t\n", t.Trials, t.Detected, t.FN, t.FP, t.WrongType, t.Errors)
	w.Flush()
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func countDistinct(scs []fleet.Scenario, key func(fleet.Scenario) string) int {
	set := map[string]bool{}
	for _, sc := range scs {
		set[key(sc)] = true
	}
	return len(set)
}

func sanitize(name string) string {
	return strings.NewReplacer("/", "-", ":", "-").Replace(name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleet:", err)
	os.Exit(1)
}
