// hijack-lab runs the paper's experiments end to end and prints the
// tables that EXPERIMENTS.md records.
//
//	go run ./cmd/hijack-lab -experiment e1 -trials 30
//	go run ./cmd/hijack-lab -experiment all
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"artemis/internal/experiment"
)

func main() {
	which := flag.String("experiment", "all", "experiment to run: e1..e6 or all")
	trials := flag.Int("trials", 10, "trials per configuration (e1 uses 'a few dozen' → 30 in the paper)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	flag.Parse()

	base := experiment.Options{Seed: *seed}
	run := strings.ToLower(*which)
	all := run == "all"

	if all || run == "e1" {
		res, err := experiment.E1(*trials, base)
		if err != nil {
			log.Fatalf("E1: %v", err)
		}
		fmt.Println(res.Table())
	}
	if all || run == "e2" {
		res, err := experiment.E2(*trials, base)
		if err != nil {
			log.Fatalf("E2: %v", err)
		}
		fmt.Println(res.Table())
	}
	if all || run == "e3" {
		rows, err := experiment.E3(max(*trials/2, 2),
			[]int{2, 4, 8, 16, 32},
			[]string{experiment.SelectRandom, experiment.SelectDegree, experiment.SelectGeo}, base)
		if err != nil {
			log.Fatalf("E3: %v", err)
		}
		fmt.Println(experiment.E3Table(rows))
	}
	if all || run == "e4" {
		rows, err := experiment.E4(max(*trials/2, 2), []int{22, 23, 24}, base)
		if err != nil {
			log.Fatalf("E4: %v", err)
		}
		fmt.Println(experiment.E4Table(rows))
	}
	if all || run == "e5" {
		res, err := experiment.E5(max(*trials/2, 2), base)
		if err != nil {
			log.Fatalf("E5: %v", err)
		}
		fmt.Println(res.Table())
	}
	if all || run == "e6" {
		res, err := experiment.E6(base)
		if err != nil {
			log.Fatalf("E6: %v", err)
		}
		fmt.Printf("E6 — propagation/mitigation timeline (§4 demo): %d samples, total response %v\n",
			len(res.Points), res.Trial.Total)
		for i, p := range res.Points {
			if i%10 == 0 || i == len(res.Points)-1 {
				fmt.Printf("  t=%-10v legit=%.0f%% hijackedVPs=%d\n", p.T, 100*p.FractionLegit, p.Hijacked)
			}
		}
		fmt.Println()
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
