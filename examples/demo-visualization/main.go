// The SIGCOMM demo (§4): visualize, in (simulated) real time, how a
// hijack propagates across vantage points around the globe and how the
// mitigation turns them back to the legitimate origin.
//
// Prints the monitoring service's timeline as an ASCII strip chart plus
// before/during/after world maps of the vantage points.
//
//	go run ./examples/demo-visualization
package main

import (
	"fmt"
	"log"

	"artemis/internal/bgp"
	"artemis/internal/experiment"
	"artemis/internal/vis"
)

func main() {
	res, err := experiment.E6(experiment.Options{Seed: 404})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	env, tr := res.Env, res.Trial

	fmt.Printf("hijack at t=%v, detected +%v via %s, total response %v\n\n",
		tr.HijackAt, tr.DetectionDelay, tr.DetectedBy, tr.Total)

	fmt.Println("fraction of vantage points on the legitimate origin over time:")
	fmt.Print(vis.Timeline(env.Artemis.Monitor.History(), 72, 10))
	fmt.Println()
	fmt.Print(vis.TimelineReport(env.Artemis.Monitor.History()))
	fmt.Println()

	fmt.Println("vantage points at the end of the experiment:")
	legit := map[bgp.ASN]bool{env.Victim.ASN: true}
	fmt.Print(vis.WorldMap(env.Topo, env.Artemis.Monitor.VPOrigins(), legit, 72, 18))
}
