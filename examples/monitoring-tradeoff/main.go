// Monitoring trade-off (§2): "The system can be parametrized (e.g.,
// selecting LGs based on location or connectivity) to achieve trade-offs
// between monitoring overhead and detection efficiency/speed."
//
// Sweeps the looking-glass arsenal size and the selection strategy with
// Periscope as the only feed, printing coverage, detection delay, and
// query overhead for each configuration.
//
//	go run ./examples/monitoring-tradeoff
package main

import (
	"fmt"
	"log"

	"artemis/internal/experiment"
)

func main() {
	rows, err := experiment.E3(
		3,
		[]int{2, 4, 8, 16, 32},
		[]string{experiment.SelectRandom, experiment.SelectDegree, experiment.SelectGeo},
		experiment.Options{Seed: 300},
	)
	if err != nil {
		log.Fatalf("sweep: %v", err)
	}
	fmt.Print(experiment.E3Table(rows))
	fmt.Println("\nReading the table: more looking glasses raise query cost linearly but")
	fmt.Println("improve coverage (the chance any monitored view is captured) and cut")
	fmt.Println("detection delay; connectivity-aware (degree) selection beats random at")
	fmt.Println("equal cost because high-cone transit ASes see hijacks first.")
}
