// Control-plane: live reconfiguration over HTTP while traffic flows.
//
// A simulated Internet (compressed 60x against the wall clock) exposes a
// real RIS websocket server, a real BGPmon XML server and an ONOS-style
// REST controller. An ARTEMIS node starts from a declarative config file
// — exactly what `artemisd -config artemis.yaml` does — watching ONE
// owned prefix over ONE feed. Then, with the daemon running and routes
// flowing, the operator uses the versioned HTTP control plane to:
//
//  1. hot-add a second owned prefix (POST /v1/prefixes), which atomically
//     swaps the detector's routing trie, the pipeline's shard routing,
//     the monitor's probe set and the mitigation clamps, and re-scopes
//     the live feed subscriptions;
//
//  2. hot-add a second feed (POST /v1/sources);
//
//  3. watch a subsequent hijack of the newly added prefix get detected
//     and mitigated — de-aggregated announcements through the
//     controller's REST API — with no restart anywhere.
//
//     go run ./examples/control-plane
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/controller"
	"artemis/internal/feeds/bgpmon"
	"artemis/internal/feeds/ris"
	"artemis/internal/peering"
	"artemis/internal/prefix"
	"artemis/internal/sim"
	"artemis/internal/simnet"
	"artemis/internal/topo"
	"artemis/pkg/artemis"
	"artemis/pkg/artemis/control"
)

func main() {
	const scale = 60.0 // one simulated minute per wall second

	// --- Simulated Internet with a victim and an attacker ---
	gcfg := topo.DefaultGenConfig()
	gcfg.Stubs = 120
	tp, err := topo.Generate(gcfg)
	if err != nil {
		log.Fatal(err)
	}
	stub0 := topo.FirstASN + bgp.ASN(gcfg.Tier1+gcfg.Transit)
	victim, err := peering.Attach(tp, 61000, []bgp.ASN{stub0, stub0 + 1}, 5*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := peering.Attach(tp, 64666, []bgp.ASN{stub0 + 30, stub0 + 31}, 5*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.NewEngine(7)
	nw := simnet.New(tp, eng, simnet.Config{})
	owned := prefix.MustParse("10.0.0.0/23")
	extra := prefix.MustParse("172.16.0.0/22")

	// --- Real feed servers + REST controller over the sim ---
	risSvc := ris.New(nw, []ris.CollectorConfig{
		{Name: "rrc00", Peers: []bgp.ASN{topo.FirstASN + 10, topo.FirstASN + 30}, BatchDelay: 10 * time.Second},
	})
	risLn := listen()
	go (&http.Server{Handler: ris.NewServer(risSvc)}).Serve(risLn)

	bmonSvc := bgpmon.New(nw, bgpmon.Config{
		Peers: []bgp.ASN{topo.FirstASN + 20}, MinDelay: 15 * time.Second, MaxDelay: 30 * time.Second,
	})
	bmonSrv, err := bgpmon.NewServer(bmonSvc, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer bmonSrv.Close()

	ctrl := controller.NewSim(nw, victim.Bind(nw))
	ctrlLn := listen()
	go (&http.Server{Handler: controller.NewRESTServer(ctrl)}).Serve(ctrlLn)

	// --- The declarative config file artemisd would be started with ---
	yaml := fmt.Sprintf(`# artemis.yaml — one prefix, one feed; the rest arrives over HTTP
prefixes:
  - %s
origins: [%d]
sources:
  - type: ris
    url: ws://%s/v1/ws
mitigation:
  controller: http://%s
  config-delay: %s
`, owned, uint32(victim.ASN), risLn.Addr(), ctrlLn.Addr(), time.Duration(15*float64(time.Second)/scale))
	dir, err := os.MkdirTemp("", "artemis-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfgPath := filepath.Join(dir, "artemis.yaml")
	if err := os.WriteFile(cfgPath, []byte(yaml), 0o644); err != nil {
		log.Fatal(err)
	}
	cfg, err := artemis.LoadConfig(cfgPath)
	if err != nil {
		log.Fatal(err)
	}

	// --- The node + its HTTP control plane ---
	start := time.Now()
	simNow := func() time.Duration { return time.Duration(float64(time.Since(start)) * scale) }
	node, err := artemis.New(cfg,
		artemis.WithNow(simNow),
		artemis.WithLogf(func(string, ...any) {}))
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- node.Run(ctx) }()
	srv := control.NewServer(node)
	apiLn := listen()
	go srv.Serve(apiLn)
	api := "http://" + apiLn.Addr().String()

	events := node.Subscribe(artemis.KindAlert|artemis.KindMitigation, 64)

	fmt.Println("live stack:")
	fmt.Printf("  RIS websocket   ws://%s/v1/ws\n", risLn.Addr())
	fmt.Printf("  BGPmon XML      tcp://%s\n", bmonSrv.Addr())
	fmt.Printf("  controller REST http://%s/v1/routes\n", ctrlLn.Addr())
	fmt.Printf("  control plane   %s/v1/...\n\n", api)
	fmt.Printf("artemisd started from %s: watching %s over 1 feed\n", filepath.Base(cfgPath), owned)

	// --- Script: both prefixes announced legitimately, sim runs paced ---
	victim.Announce(nw, owned)
	victim.Announce(nw, extra)
	go eng.RunPaced(scale, 30*time.Minute, 2*time.Second)

	waitUntil("RIS feed delivering", func() bool {
		for _, s := range getHealth(api).Sources {
			if s.State == "healthy" && s.Events > 0 {
				return true
			}
		}
		return false
	})

	// --- Operator hot-adds the second prefix and a second feed over HTTP ---
	post(api+"/v1/prefixes", map[string]any{"prefixes": []string{extra.String()}})
	fmt.Printf("[wall %4.1fs] POST /v1/prefixes: now also watching %s (no restart)\n",
		time.Since(start).Seconds(), extra)
	post(api+"/v1/sources", artemis.SourceSpec{Type: "bgpmon", Addr: bmonSrv.Addr()})
	fmt.Printf("[wall %4.1fs] POST /v1/sources: second feed (bgpmon) supervising\n", time.Since(start).Seconds())
	waitUntil("both feeds healthy", func() bool {
		healthy := 0
		for _, s := range getHealth(api).Sources {
			if s.State == "healthy" {
				healthy++
			}
		}
		return healthy == 2
	})

	// --- The attacker hijacks the hot-added prefix ---
	time.Sleep(2 * time.Second) // let the re-scoped subscriptions settle
	fmt.Printf("[sim %v] attacker AS%d hijacks %s\n", eng.Now().Round(time.Second), attacker.ASN, extra)
	attacker.Announce(nw, extra)

	var alert, mitigation *artemis.Event
	deadline := time.After(60 * time.Second)
	for alert == nil || mitigation == nil {
		select {
		case ev := <-events.C:
			switch {
			case ev.Kind == artemis.KindAlert && ev.Alert.Prefix == extra.String():
				alert = &ev
				fmt.Printf("[sim %v] ALERT over the wire: %s hijack of %s by AS%d (via %s)\n",
					ev.Alert.DetectedAt.Std().Round(time.Second), ev.Alert.Type,
					ev.Alert.Prefix, ev.Alert.Origin, ev.Alert.Source)
			case ev.Kind == artemis.KindMitigation && ev.Mitigation.Alert.Prefix == extra.String():
				mitigation = &ev
				fmt.Printf("[sim %v] mitigation dispatched: %s\n",
					ev.Mitigation.TriggeredAt.Std().Round(time.Second),
					strings.Join(ev.Mitigation.Prefixes, ", "))
			}
		case <-deadline:
			log.Fatal("hijack of the hot-added prefix was not detected+mitigated in time")
		}
	}

	// The controller's southbound applied the de-aggregated announcements.
	waitUntil("controller applied the de-aggregation", func() bool {
		return len(ctrl.Applied()) >= 2
	})
	var names []string
	for _, a := range ctrl.Applied() {
		names = append(names, a.Prefix.String())
	}
	fmt.Printf("[sim ~%v] controller applied: %s\n", eng.Now().Round(time.Second), strings.Join(names, ", "))

	// --- Wind down: verify the /v1 surface one last time, then drain ---
	var alerts struct {
		Alerts []artemis.Alert `json:"alerts"`
	}
	getJSON(api+"/v1/alerts", &alerts)
	fmt.Printf("\nGET /v1/alerts -> %d alert(s); GET /v1/health -> %q\n",
		len(alerts.Alerts), getHealth(api).Status)

	eng.Stop()
	cancel()
	<-runDone
	srv.Shutdown(context.Background())
	for _, s := range node.Health().Sources {
		fmt.Printf("  ingest %-10s %-8s events=%d dedup=%d reconnects=%d\n",
			s.Name, s.State, s.Events, s.DedupHits, s.Reconnects)
	}
	fmt.Println("done — prefix and feed hot-added over HTTP; hijack of the new prefix detected and mitigated with no restart.")
}

func listen() net.Listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return ln
}

func waitUntil(what string, cond func() bool) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Fatalf("timed out waiting for %s", what)
}

func post(url string, body any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: HTTP %d: %s", url, resp.StatusCode, e.Error)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("GET %s: decode: %v", url, err)
	}
}

func getHealth(api string) artemis.Health {
	var h artemis.Health
	getJSON(api+"/v1/health", &h)
	return h
}
