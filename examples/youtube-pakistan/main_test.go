package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/bgp/bmp"
	"artemis/internal/feeds/eventlog"
	"artemis/internal/prefix"
	"artemis/pkg/artemis"
)

// simEpoch mirrors internal/feeds/dumps: BMP per-peer timestamps are
// mapped onto sim time relative to it, so anchoring the exporter's
// timestamps here makes the live run's SeenAt match the capture's.
var simEpoch = time.Unix(1466000000, 0).UTC()

// loadCapture reads the checked-in incident archive.
func loadCapture(t *testing.T) []eventlog.Record {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "capture-000001.evlog"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := eventlog.NewReader(f)
	var out []eventlog.Record
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		out = append(out, rec)
	}
	if len(out) != 4 {
		t.Fatalf("capture has %d records, want 4", len(out))
	}
	return out
}

type recordingInjector struct {
	mu        sync.Mutex
	announced []string
}

func (r *recordingInjector) AnnounceRoute(p string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.announced = append(r.announced, p)
	return nil
}
func (r *recordingInjector) WithdrawRoute(string) error { return nil }

// youtubeConfig is the protection policy both runs share: YouTube's /22
// with AS36561 as the only legitimate origin, 2008's reality.
func youtubeConfig(src artemis.SourceSpec) *artemis.Config {
	return &artemis.Config{
		Prefixes:   []string{"208.65.152.0/22"},
		Origins:    []uint32{36561},
		Mitigation: artemis.MitigationConfig{ConfigDelay: artemis.Duration(time.Millisecond)},
		Sources:    []artemis.SourceSpec{src},
	}
}

func runIncident(t *testing.T, cfg *artemis.Config, drive func(node *artemis.Node)) ([]artemis.Alert, []artemis.Mitigation) {
	t.Helper()
	node, err := artemis.New(cfg,
		artemis.WithRouteInjector(&recordingInjector{}),
		artemis.WithLogf(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- node.Run(ctx) }()
	drive(node)
	wait(t, "alert and mitigation", func() bool {
		return len(node.Alerts()) >= 1 && len(node.Mitigations()) >= 1
	})
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("node did not drain")
	}
	return node.Alerts(), node.Mitigations()
}

// TestCaptureReplaysLikeLive is the incident-interchange regression for
// the example: replaying the checked-in capture of the 2008 YouTube
// hijack through the full node raises exactly the alerts a live BMP
// feed of the same announcements does — detection is a function of the
// event stream, not of the transport it arrived over.
func TestCaptureReplaysLikeLive(t *testing.T) {
	records := loadCapture(t)

	// --- live run: the capture's announcements arrive over a BMP session ---
	exp, err := bmp.NewExporter("127.0.0.1:0", "rrc-sim", bgp.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	peers := map[bgp.ASN]bmp.PerPeerHeader{}
	nextAddr := 10
	peerFor := func(vp bgp.ASN, at time.Duration) bmp.PerPeerHeader {
		p, ok := peers[vp]
		if !ok {
			addr := prefix.MustParseAddr("192.0.2." + itoa(nextAddr))
			nextAddr++
			p = bmp.PerPeerHeader{Addr: addr, AS: vp, BGPID: uint32(vp)}
			peers[vp] = p
			exp.PeerUp(&bmp.PeerUp{
				Peer:      p,
				LocalAddr: prefix.MustParseAddr("192.0.2.1"), LocalPort: 179, RemotePort: 30000,
				SentOpen: bgp.NewOpen(64512, 90, prefix.MustParseAddr("192.0.2.1")),
				RecvOpen: bgp.NewOpen(vp, 90, prefix.MustParseAddr("192.0.2.1")),
			})
		}
		p.Timestamp = simEpoch.Add(at) // SeenAt maps back to the capture's sim time
		return p
	}
	publish := func(rec eventlog.Record) {
		ev := rec.Event
		exp.Publish(&bmp.RouteMonitoring{
			Peer: peerFor(ev.VantagePoint, ev.SeenAt),
			Update: &bgp.Update{
				Attrs: []bgp.PathAttr{
					&bgp.OriginAttr{Value: bgp.OriginIGP},
					bgp.NewASPath(ev.Path),
					&bgp.NextHopAttr{Addr: prefix.MustParseAddr("192.0.2.1")},
				},
				NLRI: []prefix.Prefix{ev.Prefix},
			},
		})
	}
	liveAlerts, liveMits := runIncident(t,
		youtubeConfig(artemis.SourceSpec{Type: artemis.SourceBMP, Addr: exp.Addr()}),
		func(node *artemis.Node) {
			// The first benign announcement doubles as the connection probe:
			// republish it until one delivery lands (cross-source dedup
			// suppresses the duplicates), then the rest exactly once.
			wait(t, "first delivery", func() bool {
				publish(records[0])
				h := node.Health()
				return len(h.Sources) == 1 && h.Sources[0].Events > 0
			})
			for _, rec := range records[1:] {
				publish(rec)
			}
		})

	// --- replay run: the same incident from the archive, as fast as possible ---
	glob := filepath.Join("testdata", "capture-*.evlog")
	replayAlerts, replayMits := runIncident(t,
		youtubeConfig(artemis.SourceSpec{Type: artemis.SourceReplay, Path: glob}),
		func(*artemis.Node) {})

	// The incident, as 2008 saw it: Pakistan Telecom's /24 inside
	// YouTube's /22, first witnessed by the Level3 vantage point.
	if len(replayAlerts) != 1 {
		t.Fatalf("replay alerts: %+v", replayAlerts)
	}
	a := replayAlerts[0]
	if a.Type != "sub-prefix" || a.Prefix != "208.65.153.0/24" || a.Owned != "208.65.152.0/22" ||
		a.Origin != 17557 || a.VantagePoint != 3356 {
		t.Fatalf("replay alert: %+v", a)
	}
	// Detection time is the capture's event time, not replay wall time.
	if a.DetectedAt != artemis.Duration(120*time.Second) {
		t.Fatalf("DetectedAt = %v, want 2m0s from the archive", a.DetectedAt)
	}

	// Same alerts as the live run, modulo the wall-clock stamps the live
	// transport assigns on arrival.
	if normJSON(t, liveAlerts) != normJSON(t, replayAlerts) {
		t.Fatalf("live and replay alerts differ:\nlive:   %s\nreplay: %s",
			normJSON(t, liveAlerts), normJSON(t, replayAlerts))
	}
	if normJSON(t, liveMits) != normJSON(t, replayMits) {
		t.Fatalf("live and replay mitigations differ:\nlive:   %s\nreplay: %s",
			normJSON(t, liveMits), normJSON(t, replayMits))
	}
}

// normJSON renders alert/mitigation histories with the wall-clock-derived
// stamps zeroed (DetectedAt is the transport's arrival clock on the live
// side; TriggeredAt is always the node clock).
func normJSON(t *testing.T, v any) string {
	t.Helper()
	switch vv := v.(type) {
	case []artemis.Alert:
		out := append([]artemis.Alert(nil), vv...)
		for i := range out {
			out[i].DetectedAt = 0
		}
		v = out
	case []artemis.Mitigation:
		out := append([]artemis.Mitigation(nil), vv...)
		for i := range out {
			out[i].TriggeredAt = 0
			out[i].Alert.DetectedAt = 0
		}
		v = out
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func wait(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
