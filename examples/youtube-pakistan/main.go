// Recreation of the February 2008 YouTube hijack the paper opens with
// (§1, [1]): Pakistan Telecom announced 208.65.153.0/24 — a more-specific
// slice of YouTube's 208.65.152.0/22 — and captured YouTube's traffic
// worldwide for over two hours; YouTube's operators reacted only after
// ~80 minutes.
//
// This example replays the incident twice on the same synthetic Internet:
// once with nobody watching (the 2008 reality), and once with ARTEMIS
// protecting the prefix. With ARTEMIS the /24 hijack is detected in
// seconds-to-a-minute and squeezed out with competitive announcements plus
// the covering /23s of the unaffected space.
//
//	go run ./examples/youtube-pakistan
package main

import (
	"fmt"
	"log"
	"time"

	"artemis/internal/experiment"
	"artemis/internal/hijack"
	"artemis/internal/prefix"
)

func main() {
	owned := prefix.MustParse("208.65.152.0/22") // YouTube's block

	fmt.Println("=== February 2008, with ARTEMIS on the same stage ===")
	fmt.Printf("victim owns %s; attacker announces a /23 slice (sub-prefix hijack)\n\n", owned)

	env, err := experiment.Build(experiment.Options{
		Seed:  2008,
		Owned: owned,
		Kind:  hijack.SubPrefix, // attacker takes 208.65.152.0/23
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	tr, err := experiment.RunTrial(env)
	if err != nil {
		log.Fatalf("trial: %v", err)
	}
	if !tr.Detected {
		log.Fatal("hijack went undetected")
	}
	alert := env.Artemis.Detector.Alerts()[0]
	rec := env.Artemis.Mitigator.Records()[0]

	fmt.Printf("attacker announcement:  %s (inside %s)\n", alert.Prefix, alert.Owned)
	fmt.Printf("peak capture:           %d ASes routed YouTube's traffic to the attacker\n", tr.PeakCaptured)
	fmt.Printf("ARTEMIS detection:      +%v via %s\n", tr.DetectionDelay.Round(time.Millisecond), tr.DetectedBy)
	fmt.Printf("mitigation:             %v announced at +%v\n",
		rec.Prefixes, (tr.DetectionDelay + tr.TriggerDelay).Round(time.Millisecond))
	fmt.Printf("fully recovered:        +%v (recovered %.0f%% of captured ASes)\n\n",
		tr.Total.Round(time.Second), 100*tr.RecoveredFrac)

	fmt.Println("2008 reality: reaction after ~80 minutes, full recovery >2 hours.")
	fmt.Printf("ARTEMIS here: %v — %.0fx faster.\n",
		tr.Total.Round(time.Second), (80*time.Minute).Minutes()/tr.Total.Minutes())
}
