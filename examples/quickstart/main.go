// Quickstart: the whole ARTEMIS loop in one file.
//
// Builds a small synthetic Internet, announces a /23 from a victim AS,
// hijacks it from another AS, and lets ARTEMIS detect the hijack from the
// monitoring feeds and mitigate it through the controller by announcing
// the two /24s. Prints the §3 timeline at the end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"artemis/internal/experiment"
	"artemis/internal/hijack"
)

func main() {
	env, err := experiment.Build(experiment.Options{Seed: 2016, Kind: hijack.ExactOrigin})
	if err != nil {
		log.Fatalf("build testbed: %v", err)
	}
	fmt.Printf("synthetic Internet: %d ASes, %d links\n", env.Topo.Len(), env.Topo.Links())
	fmt.Printf("victim AS%d at muxes %v, attacker AS%d at muxes %v\n",
		env.Victim.ASN, env.Victim.Muxes, env.Attacker.ASN, env.Attacker.Muxes)
	fmt.Printf("monitoring: %d vantage points across %d feeds\n\n",
		len(env.MonitoredVPs), len(env.Sources))

	tr, err := experiment.RunTrial(env)
	if err != nil {
		log.Fatalf("trial: %v", err)
	}
	if !tr.Detected {
		log.Fatal("hijack went undetected — increase feed coverage")
	}

	alert := env.Artemis.Detector.Alerts()[0]
	fmt.Printf("hijack launched:     t=%v (AS%d announces %s)\n",
		tr.HijackAt.Round(time.Millisecond), env.Attacker.ASN, alert.Prefix)
	fmt.Printf("detected:            +%v via %s (%s alert)\n",
		tr.DetectionDelay.Round(time.Millisecond), tr.DetectedBy, alert.Type)
	rec := env.Artemis.Mitigator.Records()[0]
	fmt.Printf("mitigation announced: +%v (de-aggregated into %v)\n",
		(tr.DetectionDelay + tr.TriggerDelay).Round(time.Millisecond), rec.Prefixes)
	fmt.Printf("fully mitigated:     +%v (%d ASes had been captured, all recovered)\n",
		tr.Total.Round(time.Millisecond), tr.EverCaptured)
	fmt.Printf("\npaper §3 reference: detect ~45s, announce +15s, complete <5min, total ~6min\n")
}
