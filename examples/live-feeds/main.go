// Live-feeds: the full networked stack over real sockets.
//
// The simulated Internet runs paced against the wall clock (compressed
// 60x) while real servers expose it: a RIS-style WebSocket stream, a
// BGPmon-style XML TCP stream, and an ONOS-style REST controller. An
// ARTEMIS instance connects to those servers as a *client* — exactly how
// the daemon would run against external infrastructure: the ingest
// supervisor owns both connections (reconnect, cross-source dedup,
// per-source accounting), fans them into the sharded detection pipeline,
// and mitigation flows back through the controller's REST API.
//
//	go run ./examples/live-feeds
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/controller"
	"artemis/internal/core"
	"artemis/internal/feeds/bgpmon"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/feeds/ris"
	"artemis/internal/ingest"
	"artemis/internal/peering"
	"artemis/internal/prefix"
	"artemis/internal/sim"
	"artemis/internal/simnet"
	"artemis/internal/topo"
)

func main() {
	const scale = 60.0 // one simulated minute per wall second

	// --- Simulated Internet ---
	cfg := topo.DefaultGenConfig()
	cfg.Stubs = 120
	tp, err := topo.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stub0 := topo.FirstASN + bgp.ASN(cfg.Tier1+cfg.Transit)
	victim, err := peering.Attach(tp, 61000, []bgp.ASN{stub0, stub0 + 1}, 5*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := peering.Attach(tp, 64666, []bgp.ASN{stub0 + 30, stub0 + 31}, 5*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.NewEngine(7)
	nw := simnet.New(tp, eng, simnet.Config{})
	owned := prefix.MustParse("10.0.0.0/23")

	// --- Real feed servers over the sim ---
	risSvc := ris.New(nw, []ris.CollectorConfig{
		{Name: "rrc00", Peers: []bgp.ASN{topo.FirstASN + 10, topo.FirstASN + 30}, BatchDelay: 10 * time.Second},
	})
	risHTTP := http.Server{Handler: ris.NewServer(risSvc)}
	risLn, err := listen()
	if err != nil {
		log.Fatal(err)
	}
	go risHTTP.Serve(risLn)

	bmonSvc := bgpmon.New(nw, bgpmon.Config{
		Peers: []bgp.ASN{topo.FirstASN + 20}, MinDelay: 15 * time.Second, MaxDelay: 30 * time.Second,
	})
	bmonSrv, err := bgpmon.NewServer(bmonSvc, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer bmonSrv.Close()

	// --- Controller with REST front end ---
	ctrl := controller.NewSim(nw, victim.Bind(nw))
	ctrlLn, err := listen()
	if err != nil {
		log.Fatal(err)
	}
	ctrlHTTP := http.Server{Handler: controller.NewRESTServer(ctrl)}
	go ctrlHTTP.Serve(ctrlLn)

	// --- ARTEMIS as a pure network client ---
	// The local controller handle is only used for timestamps; route
	// injection goes through REST like a remote daemon would.
	restInj := controller.NewRESTClient("http://" + ctrlLn.Addr().String())
	start := time.Now()
	simNow := func() time.Duration { return time.Duration(float64(time.Since(start)) * scale) }
	remoteCtrl := controller.NewReal(restInj, controller.WithConfigDelay(time.Duration(15*float64(time.Second)/scale)))
	artemis, err := core.NewService(&core.Config{
		OwnedPrefixes: []prefix.Prefix{owned},
		LegitOrigins:  []bgp.ASN{victim.ASN},
	}, remoteCtrl, simNow)
	if err != nil {
		log.Fatal(err)
	}
	// The supervised ingest tier dials both servers, redials them if they
	// drop, dedups route changes the two feeds both observe, and fans
	// everything into the sharded pipeline.
	pl := core.NewPipeline(artemis.Detector, artemis.Monitor, core.PipelineConfig{})
	defer pl.Close()
	sup := ingest.New(pl.Submit, ingest.Config{})
	defer sup.Close()
	filter := feedtypes.Filter{Prefixes: []prefix.Prefix{owned}, MoreSpecific: true, LessSpecific: true}
	sup.AddDialer("ris[0]", ingest.RISDialer("ws://"+risLn.Addr().String()+"/v1/ws", filter))
	sup.AddDialer("bgpmon[0]", ingest.BGPmonDialer(bmonSrv.Addr(), filter))

	alerted := make(chan core.Alert, 1)
	artemis.Detector.OnAlert(func(a core.Alert) {
		select {
		case alerted <- a:
		default:
		}
	})

	// --- Script: announce, hijack ---
	fmt.Println("feeds live:")
	fmt.Printf("  RIS websocket   ws://%s/v1/ws\n", risLn.Addr())
	fmt.Printf("  BGPmon XML      tcp://%s\n", bmonSrv.Addr())
	fmt.Printf("  controller REST http://%s/v1/routes\n\n", ctrlLn.Addr())

	victim.Announce(nw, owned)
	eng.After(3*time.Minute, func() {
		fmt.Printf("[sim %v] attacker AS%d hijacks %s\n", eng.Now().Round(time.Second), attacker.ASN, owned)
		attacker.Announce(nw, owned)
	})
	go eng.RunPaced(scale, 20*time.Minute, 2*time.Second)

	select {
	case a := <-alerted:
		fmt.Printf("[sim %v] ARTEMIS alert over the wire: %s hijack of %s by AS%d (via %s)\n",
			a.DetectedAt.Round(time.Second), a.Type, a.Prefix, a.Origin, a.Evidence.Source)
	case <-time.After(60 * time.Second):
		log.Fatal("no alert within a minute of wall time")
	}

	// Give mitigation time to flow through REST + sim convergence.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(500 * time.Millisecond)
		if len(ctrl.Applied()) >= 2 {
			break
		}
	}
	acts := ctrl.Applied()
	if len(acts) == 0 {
		log.Fatal("controller never received the mitigation")
	}
	var names []string
	for _, a := range acts {
		names = append(names, a.Prefix.String())
	}
	fmt.Printf("[sim ~%v] controller applied mitigation: %s\n", eng.Now().Round(time.Second), strings.Join(names, ", "))
	eng.Stop()
	for _, src := range sup.Snapshot().Sources {
		fmt.Printf("  ingest %-10s %-8s events=%d dedup=%d reconnects=%d\n",
			src.Name, src.State, src.Events, src.DedupHits, src.Reconnects)
	}
	fmt.Println("done — hijack detected and mitigated entirely over real sockets.")
}

func listen() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}
