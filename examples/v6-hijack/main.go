// v6-hijack: the dual-stack ARTEMIS loop — the v6 analogue of the paper's
// /23 demo.
//
// The victim AS announces an owned IPv6 /32 (a typical LIR allocation).
// The attacker announces a /48 slice of it — the most-specific length that
// still propagates, since /49+ is filtered like v4's /25+ — and captures
// that slice everywhere by longest-prefix match. ARTEMIS detects the
// sub-prefix hijack from its feeds and mitigates. The twist the paper's §2
// caveat predicts: a /48 hijack cannot be out-deaggregated (/49 is
// filtered), so the mitigation is a *competitive* re-announcement of the
// same /48, winning back only the ASes that prefer the victim's path.
//
//	go run ./examples/v6-hijack
package main

import (
	"fmt"
	"log"
	"time"

	"artemis/internal/experiment"
	"artemis/internal/hijack"
	"artemis/internal/prefix"
)

func runUntilQuiet(env *experiment.Env, horizon time.Duration) {
	deadline := env.Engine.Now() + horizon
	for env.Engine.Now() < deadline {
		env.Engine.RunUntil(env.Engine.Now() + 15*time.Second)
		if env.Engine.Now()-env.Net.LastChange() >= 2*time.Minute {
			return
		}
	}
}

func main() {
	owned := prefix.MustParse("2001:db8::/32")
	hijacked := prefix.MustParse("2001:db8:beef::/48")

	env, err := experiment.Build(experiment.Options{
		Seed:  2016,
		Owned: owned,
		Kind:  hijack.SubPrefix,
	})
	if err != nil {
		log.Fatalf("build testbed: %v", err)
	}
	defer env.Close()
	fmt.Printf("synthetic Internet: %d ASes; victim AS%d owns %s\n",
		env.Topo.Len(), env.Victim.ASN, owned)
	fmt.Printf("monitoring: %d vantage points across %d feeds\n\n",
		len(env.MonitoredVPs), len(env.Sources))

	// Phase 1 — the victim announces its v6 block and the Internet settles.
	if err := env.Victim.Announce(env.Net, owned); err != nil {
		log.Fatalf("announce %s: %v", owned, err)
	}
	runUntilQuiet(env, 15*time.Minute)
	if n := len(env.Artemis.Detector.Alerts()); n != 0 {
		log.Fatalf("false alert during setup: %+v", env.Artemis.Detector.Alerts())
	}

	// Phase 2 — the attacker announces the /48 sub-prefix.
	hijackAt := env.Engine.Now()
	if err := env.Attacker.Announce(env.Net, hijacked); err != nil {
		log.Fatalf("hijack %s: %v", hijacked, err)
	}

	// Phase 3 — detection triggers mitigation automatically; run until the
	// controller's announcements are applied and routing settles again.
	deadline := env.Engine.Now() + 45*time.Minute
	for env.Engine.Now() < deadline {
		env.Engine.RunUntil(env.Engine.Now() + 15*time.Second)
		if env.Engine.Now()-env.Net.LastChange() < 2*time.Minute {
			continue
		}
		if recs := env.Artemis.Mitigator.Records(); len(recs) > 0 {
			want := 0
			for _, r := range recs {
				want += len(r.Announced)
			}
			if len(env.Ctrl.Applied()) >= want {
				break
			}
		}
	}

	alerts := env.Artemis.Detector.Alerts()
	if len(alerts) == 0 {
		log.Fatal("hijack went undetected — increase feed coverage")
	}
	alert := alerts[0]
	fmt.Printf("hijack launched:  t=%v (AS%d announces %s)\n",
		hijackAt.Round(time.Millisecond), env.Attacker.ASN, hijacked)
	fmt.Printf("detected:         +%v via %s (%s alert, collides with owned %s)\n",
		(alert.DetectedAt - hijackAt).Round(time.Millisecond), alert.Evidence.Source, alert.Type, alert.Owned)

	recs := env.Artemis.Mitigator.Records()
	if len(recs) == 0 {
		log.Fatal("mitigation never ran")
	}
	rec := recs[0]
	fmt.Printf("mitigation:       announced %v", rec.Prefixes)
	if rec.Competitive {
		fmt.Printf(" (competitive: /49 is filtered, so the victim re-announces the /48 and wins on path length — the v6 form of the paper's /24 caveat)")
	}
	fmt.Println()

	snap := env.Artemis.Monitor.Snapshot(env.Engine.Now())
	fmt.Printf("monitor:          %d VPs legit, %d hijacked, %d unknown (%.0f%% of informed VPs recovered)\n",
		snap.LegitVPs, snap.HijackedVPs, snap.UnknownVPs, 100*snap.FractionLegit())
	fmt.Printf("\nv4 demo for comparison: examples/quickstart (a /23 mitigated fully via its two /24s)\n")
}
