module artemis

go 1.24
