//go:build !race

// The steady-state allocation gate: the tier-1 assertion behind the
// benchdiff CI gate (docs/PERFORMANCE.md). Excluded under the race
// detector, whose instrumentation allocates on its own schedule.
package artemis_test

import (
	"path/filepath"
	"testing"

	"artemis/internal/core"
	"artemis/internal/feeds/eventlog"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/ingest"
)

// TestSubmitSteadyStateAllocationFree asserts the tentpole contract
// directly: once the pipeline's job pool and arenas have grown to the
// workload's high-water mark, submitting a batch — deep copy, routing,
// shard classification, sink apply — performs (amortized) at most one
// allocation per batch. The slack of 1 absorbs sync.Pool's GC-driven
// refills; the structural claim is that nothing on the path allocates
// per event or per batch.
func TestSubmitSteadyStateAllocationFree(t *testing.T) {
	const batchSize = 256
	evs := pipelineWorkload(8192)
	det := core.NewDetector(pipelineBenchConfig(t))
	pl := core.NewPipeline(det, nil, core.PipelineConfig{Shards: 4})
	defer pl.Close()

	// Warm up: grow every pooled arena (and raise every alert the dedup
	// will suppress from then on).
	for off := 0; off+batchSize <= len(evs); off += batchSize {
		pl.Submit(evs[off : off+batchSize])
	}
	pl.Flush()

	off := 0
	avg := testing.AllocsPerRun(100, func() {
		pl.Submit(evs[off : off+batchSize])
		off = (off + batchSize) % len(evs)
		pl.Flush()
	})
	if avg > 1 {
		t.Errorf("steady-state Submit averaged %.2f allocs per batch, want <= 1 (see docs/PERFORMANCE.md)", avg)
	}
}

// TestSubmitSteadyStateAllocationFreeMultiTenant asserts the contract
// holds for the shared multi-tenant pipeline: two tenants own the same
// /26 space, so every matched event fans out to (and is classified by)
// both — the route-per-owner path must stay as allocation-free as the
// single-tenant one.
func TestSubmitSteadyStateAllocationFreeMultiTenant(t *testing.T) {
	const batchSize = 256
	evs := pipelineWorkload(8192)
	policies := make([]core.TenantPolicy, 2)
	for i, name := range []string{"a", "b"} {
		cfg := pipelineBenchConfig(t)
		policies[i] = core.TenantPolicy{Name: name, Config: cfg, Detector: core.NewDetector(cfg)}
	}
	table, err := core.NewPolicyTable(policies)
	if err != nil {
		t.Fatal(err)
	}
	pl := core.NewPipelineTable(table, core.PipelineConfig{Shards: 4})
	defer pl.Close()

	for off := 0; off+batchSize <= len(evs); off += batchSize {
		pl.Submit(evs[off : off+batchSize])
	}
	pl.Flush()

	off := 0
	avg := testing.AllocsPerRun(100, func() {
		pl.Submit(evs[off : off+batchSize])
		off = (off + batchSize) % len(evs)
		pl.Flush()
	})
	if avg > 1 {
		t.Errorf("steady-state multi-tenant Submit averaged %.2f allocs per batch, want <= 1 (see docs/PERFORMANCE.md)", avg)
	}
	for _, name := range []string{"a", "b"} {
		if n := table.Runtime(name).Events(); n == 0 {
			t.Errorf("tenant %q saw no events; fan-out not exercised", name)
		}
	}
}

// TestIngestSteadyStateAllocationFree asserts the same contract for the
// supervised fan-in path: hub publish → pooled queue copy → ring →
// dedup → pipeline. The in-process source delivers synchronously here so
// AllocsPerRun observes the whole path on one goroutine.
func TestIngestSteadyStateAllocationFree(t *testing.T) {
	const batchSize = 256
	evs := pipelineWorkload(8192)
	det := core.NewDetector(pipelineBenchConfig(t))
	pl := core.NewPipeline(det, nil, core.PipelineConfig{Shards: 4})
	defer pl.Close()
	sup := ingest.New(pl.Submit, ingest.Config{Synchronous: true, DedupTTL: -1})
	defer sup.Close()
	hub := feedtypes.NewHub()
	sup.AddSource("bench", hubSource{Hub: hub, name: "bench"}, feedtypes.Filter{})

	pool := feedtypes.NewBatchPool()
	publish := func(off int) {
		b := pool.Get()
		b.AppendEvents(evs[off : off+batchSize])
		hub.Publish(b.Events)
		b.Release()
	}
	for off := 0; off+batchSize <= len(evs); off += batchSize {
		publish(off)
	}
	pl.Flush()

	off := 0
	avg := testing.AllocsPerRun(100, func() {
		publish(off)
		off = (off + batchSize) % len(evs)
		pl.Flush()
	})
	if avg > 1 {
		t.Errorf("steady-state ingest averaged %.2f allocs per batch, want <= 1 (see docs/PERFORMANCE.md)", avg)
	}
}

// TestRecordSteadyStateAllocationFree asserts the -record contract:
// archiving the post-dedup stream rides the ingest path for at most one
// extra (amortized) allocation per batch — the recorder deep-copies
// into pooled storage and does all I/O on its own goroutine, so with
// the baseline path at <= 1 alloc per 256-event batch the recorded
// path stays <= 2. (AllocsPerRun counts mallocs across all goroutines,
// so the writer goroutine's work is included.)
func TestRecordSteadyStateAllocationFree(t *testing.T) {
	const batchSize = 256
	evs := pipelineWorkload(8192)
	det := core.NewDetector(pipelineBenchConfig(t))
	pl := core.NewPipeline(det, nil, core.PipelineConfig{Shards: 4})
	defer pl.Close()
	rec, err := eventlog.NewRecorder(eventlog.RecorderConfig{
		Prefix:       filepath.Join(t.TempDir(), "cap"),
		MaxFileBytes: 1 << 30, // no rotation inside the measured loop
		QueueDepth:   1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	deliver := func(evs []feedtypes.Event) {
		pl.Submit(evs)
		rec.Record(evs)
	}
	sup := ingest.New(deliver, ingest.Config{Synchronous: true, DedupTTL: -1})
	defer sup.Close()
	hub := feedtypes.NewHub()
	sup.AddSource("bench", hubSource{Hub: hub, name: "bench"}, feedtypes.Filter{})

	pool := feedtypes.NewBatchPool()
	publish := func(off int) {
		b := pool.Get()
		b.AppendEvents(evs[off : off+batchSize])
		hub.Publish(b.Events)
		b.Release()
	}
	for off := 0; off+batchSize <= len(evs); off += batchSize {
		publish(off)
	}
	pl.Flush()

	off := 0
	avg := testing.AllocsPerRun(100, func() {
		publish(off)
		off = (off + batchSize) % len(evs)
		pl.Flush()
	})
	if avg > 2 {
		t.Errorf("steady-state recorded ingest averaged %.2f allocs per batch, want <= 2 (recording adds at most 1)", avg)
	}
	if s := rec.Snapshot(); s.Dropped != 0 {
		t.Errorf("recorder shed %d events during the measured loop", s.Dropped)
	}
}

// hubSource adapts a Hub to feedtypes.Source for the supervisor (the
// test-local twin of the ingest tests' helper).
type hubSource struct {
	*feedtypes.Hub
	name string
}

func (h hubSource) Name() string { return h.name }
