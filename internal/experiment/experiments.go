package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/dumps"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/hijack"
	"artemis/internal/prefix"
	"artemis/internal/stats"
)

// E1Result reproduces §3's headline numbers over N trials: detection
// ≈45 s (<1 min), mitigation trigger ≈15 s, mitigation completion ≤5 min,
// total ≈6 min.
type E1Result struct {
	Detection  stats.DurationSummary
	Trigger    stats.DurationSummary
	Mitigation stats.DurationSummary
	Total      stats.DurationSummary
	Trials     []Trial
}

// E1 runs the paper's end-to-end experiment n times with varying seeds.
func E1(n int, base Options) (E1Result, error) {
	var res E1Result
	var det, trig, mit, tot []time.Duration
	for i := 0; i < n; i++ {
		opts := base
		opts.Seed = base.Seed + int64(i)
		env, err := Build(opts)
		if err != nil {
			return res, err
		}
		tr, err := RunTrial(env)
		env.Close()
		if err != nil {
			return res, fmt.Errorf("trial %d: %w", i, err)
		}
		if !tr.Detected {
			return res, fmt.Errorf("trial %d: hijack never detected (insufficient feed coverage)", i)
		}
		res.Trials = append(res.Trials, tr)
		det = append(det, tr.DetectionDelay)
		trig = append(trig, tr.TriggerDelay)
		mit = append(mit, tr.MitigationDelay)
		tot = append(tot, tr.Total)
	}
	res.Detection = stats.SummarizeDurations(det)
	res.Trigger = stats.SummarizeDurations(trig)
	res.Mitigation = stats.SummarizeDurations(mit)
	res.Total = stats.SummarizeDurations(tot)
	return res, nil
}

// Table renders the E1 result next to the paper's numbers.
func (r E1Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E1 — end-to-end timeline over %d trials (paper §3: 45s / 15s / <5min / ~6min)\n", len(r.Trials))
	fmt.Fprintf(&b, "  %-22s %s\n", "detection", r.Detection)
	fmt.Fprintf(&b, "  %-22s %s\n", "mitigation trigger", r.Trigger)
	fmt.Fprintf(&b, "  %-22s %s\n", "mitigation complete", r.Mitigation)
	fmt.Fprintf(&b, "  %-22s %s\n", "total hijack duration", r.Total)
	return b.String()
}

// E2Result captures per-source detection latency: the combined delay is
// the min of the sources' delays (§2).
type E2Result struct {
	// PerSource maps feed name → detection delay summary.
	PerSource map[string]stats.DurationSummary
	// Combined is the ARTEMIS (min-over-sources) delay.
	Combined stats.DurationSummary
}

// E2 measures each source's own detection delay over n trials by tapping
// the feeds independently of the deduplicating detector.
func E2(n int, base Options) (E2Result, error) {
	perSource := map[string][]time.Duration{}
	var combined []time.Duration
	for i := 0; i < n; i++ {
		opts := base
		opts.Seed = base.Seed + int64(i)
		env, err := Build(opts)
		if err != nil {
			return E2Result{}, err
		}
		// Tap every source: first event showing the attacker as origin.
		firstBySource := map[string]time.Duration{}
		filter := feedtypes.Filter{Prefixes: opts.withDefaults().OwnedSet, MoreSpecific: true, LessSpecific: true}
		for _, src := range env.Sources {
			name := src.Name()
			src.Subscribe(filter, func(ev feedtypes.Event) {
				if origin, ok := ev.Origin(); ok && origin == AttackerASN {
					if _, seen := firstBySource[name]; !seen {
						firstBySource[name] = ev.EmittedAt
					}
				}
			})
		}
		tr, err := RunTrial(env)
		env.Close()
		if err != nil {
			return E2Result{}, fmt.Errorf("trial %d: %w", i, err)
		}
		for name, at := range firstBySource {
			perSource[name] = append(perSource[name], at-tr.HijackAt)
		}
		combined = append(combined, tr.DetectionDelay)
	}
	res := E2Result{PerSource: map[string]stats.DurationSummary{}, Combined: stats.SummarizeDurations(combined)}
	for name, ds := range perSource {
		res.PerSource[name] = stats.SummarizeDurations(ds)
	}
	return res, nil
}

// Table renders E2.
func (r E2Result) Table() string {
	var b strings.Builder
	b.WriteString("E2 — per-source detection delay (combined = min of sources, §2)\n")
	names := make([]string, 0, len(r.PerSource))
	for n := range r.PerSource {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-12s %s\n", n, r.PerSource[n])
	}
	fmt.Fprintf(&b, "  %-12s %s\n", "combined", r.Combined)
	return b.String()
}

// E3Row is one point of the monitoring-overhead vs detection-speed
// trade-off (§2's parametrization discussion).
type E3Row struct {
	Strategy  string
	LGs       int
	Detection stats.DurationSummary
	// DetectionRate is the fraction of trials where the arsenal saw the
	// hijack at all (coverage).
	DetectionRate float64
	QueriesPerMin float64
}

// E3 sweeps the looking-glass arsenal size and selection strategy with
// Periscope as the only feed.
func E3(trialsPer int, counts []int, strategies []string, base Options) ([]E3Row, error) {
	var rows []E3Row
	for _, strat := range strategies {
		for _, n := range counts {
			var det []time.Duration
			queries, simMinutes := 0, 0.0
			for i := 0; i < trialsPer; i++ {
				opts := base
				opts.Seed = base.Seed + int64(i)
				opts.Sources = []string{SrcPeriscope}
				opts.LGCount = n
				opts.LGStrategy = strat
				env, err := Build(opts)
				if err != nil {
					return nil, err
				}
				tr, err := RunTrial(env)
				env.Close()
				if err != nil {
					return nil, fmt.Errorf("strategy %s n=%d trial %d: %w", strat, n, i, err)
				}
				if tr.Detected {
					det = append(det, tr.DetectionDelay)
				}
				queries += tr.LGQueries
				simMinutes += env.Engine.Now().Minutes()
			}
			row := E3Row{Strategy: strat, LGs: n, Detection: stats.SummarizeDurations(det)}
			row.DetectionRate = float64(len(det)) / float64(trialsPer)
			if simMinutes > 0 {
				row.QueriesPerMin = float64(queries) / simMinutes
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// E3Table renders the sweep.
func E3Table(rows []E3Row) string {
	var b strings.Builder
	b.WriteString("E3 — LG arsenal: monitoring overhead vs detection speed (§2 parametrization)\n")
	fmt.Fprintf(&b, "  %-8s %4s  %-10s %-14s %-14s %s\n", "strategy", "LGs", "coverage", "mean detect", "p90 detect", "queries/min")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %4d  %-10.0f%% %-14v %-14v %.1f\n",
			r.Strategy, r.LGs, 100*r.DetectionRate,
			r.Detection.Mean.Round(time.Second), r.Detection.P90.Round(time.Second), r.QueriesPerMin)
	}
	return b.String()
}

// E4Row reports mitigation effectiveness by victim prefix length — the §2
// caveat that de-aggregation works above /24 but not at /24.
type E4Row struct {
	OwnedLen      int
	Competitive   bool
	RecoveredFrac float64 // mean over trials
	Total         stats.DurationSummary
}

// E4 hijacks victims owning /22, /23 and /24 prefixes and measures the
// recovered fraction of ASes after mitigation.
func E4(trialsPer int, lens []int, base Options) ([]E4Row, error) {
	var rows []E4Row
	for _, bits := range lens {
		var fracs []float64
		var totals []time.Duration
		competitive := false
		for i := 0; i < trialsPer; i++ {
			opts := base
			opts.Seed = base.Seed + int64(i)
			opts.Owned = prefix.New(prefix.MustParseAddr("10.0.0.0"), bits)
			env, err := Build(opts)
			if err != nil {
				return nil, err
			}
			tr, err := RunTrial(env)
			if err != nil {
				env.Close()
				return nil, fmt.Errorf("/%d trial %d: %w", bits, i, err)
			}
			fracs = append(fracs, tr.RecoveredFrac)
			totals = append(totals, tr.Total)
			for _, rec := range env.Artemis.Mitigator.Records() {
				if rec.Competitive {
					competitive = true
				}
			}
			env.Close()
		}
		row := E4Row{OwnedLen: bits, Competitive: competitive, Total: stats.SummarizeDurations(totals)}
		row.RecoveredFrac = stats.Summarize(fracs).Mean
		rows = append(rows, row)
	}
	return rows, nil
}

// E4Table renders the prefix-length sweep.
func E4Table(rows []E4Row) string {
	var b strings.Builder
	b.WriteString("E4 — de-aggregation limit (§2: works above /24, might not work at /24)\n")
	fmt.Fprintf(&b, "  %-7s %-12s %-14s %s\n", "victim", "competitive", "recovered", "total (mean)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  /%-6d %-12v %-14.1f%% %v\n", r.OwnedLen, r.Competitive, 100*r.RecoveredFrac, r.Total.Mean.Round(time.Second))
	}
	return b.String()
}

// E5Result contrasts ARTEMIS with the third-party archive pipeline (§1)
// against the Argus hijack-duration distribution ([3]).
type E5Result struct {
	ArtemisResponse  stats.DurationSummary
	BaselineResponse stats.DurationSummary
	// Coverage: fraction of sampled hijacks whose duration exceeds the
	// system's mean total response — the share of hijacks the system
	// neutralizes while still in progress.
	ArtemisCoverage  float64
	BaselineCoverage float64
	// ShortHijackFrac is the sampled fraction of hijacks under 10 minutes
	// (paper anchor: >20%).
	ShortHijackFrac float64
}

// E5 runs ARTEMIS trials for the real response time, runs the MRT-archive
// baseline for its actionable latency, and evaluates both against sampled
// hijack durations.
func E5(trials int, base Options) (E5Result, error) {
	var res E5Result

	e1, err := E1(trials, base)
	if err != nil {
		return res, err
	}
	res.ArtemisResponse = e1.Total

	// Baseline: same hijack observed through 15-minute update files plus
	// human verification; mitigation still needs the BGP convergence time
	// measured above.
	var baseline []time.Duration
	for i := 0; i < trials; i++ {
		opts := base
		opts.Seed = base.Seed + 1000 + int64(i)
		opts.Sources = []string{SrcRIS} // ARTEMIS feeds unused by baseline; keep env minimal
		env, err := Build(opts)
		if err != nil {
			return res, err
		}
		archive := dumps.New(env.Net, dumps.Config{Peers: env.MonitoredVPs})
		det := dumps.NewBaselineDetector(archive, feedtypes.Filter{
			Prefixes: []prefix.Prefix{env.Opts.Owned}, MoreSpecific: true, LessSpecific: true,
		}, []bgp.ASN{VictimASN}, 0)

		if err := env.Victim.Announce(env.Net, env.Opts.Owned); err != nil {
			return res, err
		}
		env.runQuiet(setupHorizon)
		hijackAt := env.Engine.Now()
		if err := env.Attacker.Announce(env.Net, env.Opts.Owned); err != nil {
			return res, err
		}
		// Run until the next update file catches it and the operator
		// verifies (15 min cadence + 10 min verification, worst case well
		// within an hour).
		deadline := env.Engine.Now() + time.Hour
		for env.Engine.Now() < deadline && len(det.Alerts()) == 0 {
			env.Engine.RunUntil(env.Engine.Now() + time.Minute)
		}
		archive.Stop()
		env.Close()
		alerts := det.Alerts()
		if len(alerts) == 0 {
			// No monitored vantage point was captured in this topology:
			// the archive pipeline legitimately never sees the hijack.
			// (ARTEMIS has the same blind spot with the same VPs; the
			// comparison uses detected trials only.)
			continue
		}
		// Total baseline response = actionable + the same convergence the
		// ARTEMIS mitigation needs (reuse this trial's ARTEMIS twin).
		convergence := e1.Trials[i%len(e1.Trials)].MitigationDelay + e1.Trials[i%len(e1.Trials)].TriggerDelay
		baseline = append(baseline, alerts[0].ActionableAt-hijackAt+convergence)
	}
	if len(baseline) == 0 {
		return res, fmt.Errorf("experiment: baseline never detected in any of %d trials", trials)
	}
	res.BaselineResponse = stats.SummarizeDurations(baseline)

	// Sample the hijack-duration distribution.
	model := hijack.NewDurationModel(base.Seed + 7)
	const samples = 20000
	durations := make([]float64, samples)
	short := 0
	for i := range durations {
		d := model.Sample()
		durations[i] = float64(d)
		if d < 10*time.Minute {
			short++
		}
	}
	res.ShortHijackFrac = float64(short) / samples
	res.ArtemisCoverage = 1 - stats.FractionBelow(durations, float64(res.ArtemisResponse.Mean))
	res.BaselineCoverage = 1 - stats.FractionBelow(durations, float64(res.BaselineResponse.Mean))
	return res, nil
}

// Table renders E5.
func (r E5Result) Table() string {
	var b strings.Builder
	b.WriteString("E5 — ARTEMIS vs third-party archive pipeline (§1; hijack durations per Argus [3])\n")
	fmt.Fprintf(&b, "  %-26s %-14s %s\n", "system", "mean response", "hijacks outlived by response")
	fmt.Fprintf(&b, "  %-26s %-14v %.1f%% caught in progress\n", "ARTEMIS", r.ArtemisResponse.Mean.Round(time.Second), 100*r.ArtemisCoverage)
	fmt.Fprintf(&b, "  %-26s %-14v %.1f%% caught in progress\n", "archive+manual baseline", r.BaselineResponse.Mean.Round(time.Second), 100*r.BaselineCoverage)
	fmt.Fprintf(&b, "  sampled hijacks <10min: %.1f%% (paper: >20%%)\n", 100*r.ShortHijackFrac)
	return b.String()
}

// E6Point is one sample of the demo timeline (§4): the fraction of
// monitored vantage points routing to the legitimate origin over time.
type E6Point struct {
	T             time.Duration
	FractionLegit float64
	Hijacked      int
	Legit         int
}

// E6Result carries the propagation/mitigation timeline plus the trial.
type E6Result struct {
	Points []E6Point
	Trial  Trial
	Env    *Env
}

// E6 runs one instrumented trial and extracts the §4 visualization series
// from the monitoring service.
func E6(base Options) (E6Result, error) {
	env, err := Build(base)
	if err != nil {
		return E6Result{}, err
	}
	tr, err := RunTrial(env)
	if err != nil {
		env.Close()
		return E6Result{}, err
	}
	var pts []E6Point
	for _, s := range env.Artemis.Monitor.History() {
		pts = append(pts, E6Point{T: s.Time, FractionLegit: s.FractionLegit(), Hijacked: s.HijackedVPs, Legit: s.LegitVPs})
	}
	return E6Result{Points: pts, Trial: tr, Env: env}, nil
}
