package experiment

import (
	"testing"
	"time"

	"artemis/internal/core"
	"artemis/internal/hijack"
	"artemis/internal/prefix"
	"artemis/internal/topo"
)

// smallOpts shrinks the Internet so the full test suite stays fast while
// keeping multi-hop structure.
func smallOpts(seed int64) Options {
	cfg := topo.DefaultGenConfig()
	cfg.Stubs = 100
	cfg.Transit = 30
	cfg.Seed = seed
	return Options{Seed: seed, Topo: cfg}
}

func TestBuildEnv(t *testing.T) {
	env, err := Build(smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if env.RIS == nil || env.BGPmon == nil || env.Periscope == nil {
		t.Fatal("not all sources built by default")
	}
	if len(env.Sources) != 3 {
		t.Fatalf("sources = %d", len(env.Sources))
	}
	if len(env.MonitoredVPs) == 0 {
		t.Fatal("no vantage points")
	}
	if env.Victim.ASN != VictimASN || env.Attacker.ASN != AttackerASN {
		t.Fatal("virtual AS numbering broken")
	}
	// Victim and attacker muxes must be disjoint.
	for _, vm := range env.Victim.Muxes {
		for _, am := range env.Attacker.Muxes {
			if vm == am {
				t.Fatalf("mux %v shared by victim and attacker", vm)
			}
		}
	}
}

func TestBuildSourceSubset(t *testing.T) {
	opts := smallOpts(1)
	opts.Sources = []string{SrcRIS}
	env, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if env.RIS == nil || env.BGPmon != nil || env.Periscope != nil {
		t.Fatal("source subset not honored")
	}
}

func TestRunTrialPaperShape(t *testing.T) {
	env, err := Build(smallOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunTrial(env)
	if err != nil {
		t.Fatal(err)
	}
	// Shape of §3: detection well under 2 minutes, trigger = controller
	// delay (~15s), full mitigation within minutes, everything recovered.
	if tr.DetectionDelay <= 0 || tr.DetectionDelay > 2*time.Minute {
		t.Fatalf("detection delay = %v", tr.DetectionDelay)
	}
	if tr.TriggerDelay < 10*time.Second || tr.TriggerDelay > 30*time.Second {
		t.Fatalf("trigger delay = %v", tr.TriggerDelay)
	}
	if tr.Total <= 0 || tr.Total > 15*time.Minute {
		t.Fatalf("total = %v", tr.Total)
	}
	if tr.RecoveredFrac != 1.0 || tr.StillCaptured != 0 {
		t.Fatalf("not fully recovered: %+v", tr)
	}
	if tr.EverCaptured == 0 || tr.PeakCaptured == 0 {
		t.Fatal("hijack captured nothing — topology too small or attacker isolated")
	}
	if tr.DetectedBy == "" {
		t.Fatal("detection source not recorded")
	}
}

func TestRunTrialSubPrefix(t *testing.T) {
	// Victim owns a /22 so the attacker's /23 slice can be beaten with
	// /24s (still above the filtering limit).
	opts := smallOpts(5)
	opts.Owned = prefix.MustParse("10.0.0.0/22")
	opts.Kind = hijack.SubPrefix
	env, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunTrial(env)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Detected || tr.RecoveredFrac != 1.0 {
		t.Fatalf("sub-prefix hijack not fully mitigated: %+v", tr)
	}
	alerts := env.Artemis.Detector.Alerts()
	if len(alerts) == 0 || alerts[0].Prefix.String() != "10.0.0.0/23" {
		t.Fatalf("alerts = %+v", alerts)
	}
	recs := env.Artemis.Mitigator.Records()
	if len(recs) != 1 || len(recs[0].Prefixes) != 2 || recs[0].Competitive {
		t.Fatalf("mitigation = %+v", recs)
	}
}

func TestRunTrialSlash24NotFullyRecoverable(t *testing.T) {
	opts := smallOpts(7)
	opts.Owned = prefix.MustParse("10.0.0.0/24")
	env, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunTrial(env)
	if err != nil {
		t.Fatal(err)
	}
	recs := env.Artemis.Mitigator.Records()
	if len(recs) != 1 || !recs[0].Competitive {
		t.Fatalf("/24 mitigation should be competitive: %+v", recs)
	}
	// The victim already originates the /24, so the competitive
	// re-announcement adds nothing: captured ASes stay captured — the
	// §2 caveat in its starkest form.
	if tr.RecoveredFrac >= 1.0 {
		t.Fatalf("/24 hijack fully recovered (%.2f); the §2 caveat should bite", tr.RecoveredFrac)
	}
	if tr.StillCaptured == 0 {
		t.Fatalf("expected lasting capture: %+v", tr)
	}
}

// Forged-origin exact-prefix hijacks (Type-0 with the victim's ASN faked
// at the path tail) evade every origin check: the detector is blind
// without an upstream policy, while ground truth shows real capture.
func TestPathFakeBlindWithoutUpstreamPolicy(t *testing.T) {
	opts := smallOpts(1)
	opts.Kind = hijack.PathFake
	env, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	tr, err := RunTrial(env)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Detected {
		t.Fatalf("forged-origin exact hijack should evade origin checks: %+v", tr)
	}
	if tr.EverCaptured == 0 {
		t.Fatal("forged announcement captured nothing — attack not injected")
	}
}

func TestPathFakeCaughtByUpstreamPolicy(t *testing.T) {
	opts := smallOpts(1)
	opts.Kind = hijack.PathFake
	opts.UpstreamPolicy = true
	env, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	tr, err := RunTrial(env)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Detected {
		t.Fatalf("upstream policy should catch the forged first hop: %+v", tr)
	}
	if tr.AlertType != core.AlertPathAnomaly {
		t.Fatalf("alert type = %v, want path anomaly", tr.AlertType)
	}
}

// A second legitimate origin announcing the owned prefix (anycast
// partner) is a MOAS event ARTEMIS must stay silent on.
func TestLegitMOASNoAlert(t *testing.T) {
	opts := smallOpts(1)
	opts.Kind = hijack.LegitMOAS
	opts.Partner = true
	env, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	tr, err := RunTrial(env)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Detected {
		t.Fatalf("legitimate MOAS raised an alert: %+v", env.Artemis.Detector.Alerts())
	}
	if tr.EverCaptured != 0 {
		t.Fatalf("partner origin counted as capture: %+v", tr)
	}
}

// A route leak keeps the legitimate origin on every path: no alert, no
// capture — the detector's scope boundary, exercised as a control.
func TestRouteLeakNoAlert(t *testing.T) {
	opts := smallOpts(2)
	opts.Kind = hijack.RouteLeak
	env, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	tr, err := RunTrial(env)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Detected {
		t.Fatalf("route leak raised an alert: %+v", env.Artemis.Detector.Alerts())
	}
	if tr.EverCaptured != 0 {
		t.Fatalf("leaked-but-legit paths counted as capture: %+v", tr)
	}
}

// Killing the only source covering the attacked prefix mid-trial must
// not blind detection: with SplitCoverage the supervisor widens the
// survivor's filter to absorb the dead source's slice. Run under -race
// in CI, this also exercises the widen path's locking.
func TestSourceDeathAutoWidensCoverage(t *testing.T) {
	opts := smallOpts(3)
	opts.Sources = []string{SrcRIS, SrcBGPmon}
	opts.OwnedSet = []prefix.Prefix{
		prefix.MustParse("10.0.0.0/23"),
		prefix.MustParse("10.0.2.0/23"),
	}
	opts.Owned = opts.OwnedSet[0] // RIS's slice under SplitCoverage
	opts.SplitCoverage = true
	env, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	tr, err := RunScript(env, []ScriptStep{
		{Name: "kill ris", Do: func(e *Env) error {
			e.Ingest.Remove(e.SourceIDs[SrcRIS])
			return nil
		}},
		{After: time.Minute, Name: "hijack", Hijack: true, Do: func(e *Env) error {
			_, err := e.LaunchAttack()
			return err
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Detected {
		t.Fatal("hijack undetected after source death — coverage hole not widened")
	}
	if tr.DetectedBy != SrcBGPmon {
		t.Fatalf("detected by %q, want the widened survivor %q", tr.DetectedBy, SrcBGPmon)
	}
	f, ok := env.Ingest.EffectiveFilter(env.SourceIDs[SrcBGPmon])
	if !ok || len(f.Prefixes) != 2 {
		t.Fatalf("survivor filter not widened: %+v ok=%v", f, ok)
	}
}

// E1 headline latencies must hold for a v6-only victim and for each
// family of a mixed v4/v6 owned set.
func TestE1MixedFamilies(t *testing.T) {
	mixed := []prefix.Prefix{
		prefix.MustParse("10.0.0.0/23"),
		prefix.MustParse("2001:db8::/47"),
	}
	cases := []struct {
		name  string
		set   []prefix.Prefix
		owned prefix.Prefix
	}{
		{"v6-only", nil, prefix.MustParse("2001:db8::/47")},
		{"mixed-attack-v4", mixed, mixed[0]},
		{"mixed-attack-v6", mixed, mixed[1]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := smallOpts(111)
			opts.OwnedSet = tc.set
			opts.Owned = tc.owned
			res, err := E1(2, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Detection.Mean <= 0 || res.Detection.Mean > 2*time.Minute {
				t.Fatalf("detection mean = %v", res.Detection.Mean)
			}
			if res.Total.Mean > 15*time.Minute {
				t.Fatalf("total mean = %v", res.Total.Mean)
			}
		})
	}
}

// E2's min-of-sources property must hold when the owned set spans both
// families.
func TestE2MixedFamilySet(t *testing.T) {
	opts := smallOpts(121)
	opts.OwnedSet = []prefix.Prefix{
		prefix.MustParse("10.0.0.0/23"),
		prefix.MustParse("2001:db8::/47"),
	}
	opts.Owned = opts.OwnedSet[1]
	res, err := E2(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Combined.N != 2 {
		t.Fatalf("combined = %+v", res.Combined)
	}
	for name, s := range res.PerSource {
		if s.N == res.Combined.N && res.Combined.Mean > s.Mean+time.Millisecond {
			t.Fatalf("combined mean %v exceeds %s mean %v", res.Combined.Mean, name, s.Mean)
		}
	}
}

func TestE1Aggregates(t *testing.T) {
	res, err := E1(3, smallOpts(11))
	if err != nil {
		t.Fatal(err)
	}
	if res.Detection.N != 3 || res.Total.N != 3 {
		t.Fatalf("summaries = %+v", res)
	}
	if res.Detection.Mean <= 0 || res.Total.Mean < res.Detection.Mean {
		t.Fatalf("ordering broken: %+v", res)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestE2MinOfSources(t *testing.T) {
	res, err := E2(3, smallOpts(21))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSource) < 2 {
		t.Fatalf("per-source data missing: %+v", res.PerSource)
	}
	// The combined delay can never exceed a source's delay on the same
	// trials (min property, §2). Sources that missed some trials have
	// fewer samples; compare only full-coverage sources.
	for name, s := range res.PerSource {
		if s.N == res.Combined.N && res.Combined.Mean > s.Mean+time.Millisecond {
			t.Fatalf("combined mean %v exceeds %s mean %v", res.Combined.Mean, name, s.Mean)
		}
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestE3MoreLGsBetterCoverageAndCost(t *testing.T) {
	rows, err := E3(3, []int{2, 24}, []string{SelectRandom}, smallOpts(31))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	small, large := rows[0], rows[1]
	if large.QueriesPerMin <= small.QueriesPerMin {
		t.Fatalf("more LGs should cost more: %v vs %v", small.QueriesPerMin, large.QueriesPerMin)
	}
	// The benefit side of the trade-off: a large arsenal must not be
	// worse on both coverage and speed.
	better := large.DetectionRate > small.DetectionRate ||
		(large.Detection.N > 0 && small.Detection.N > 0 && large.Detection.Mean < small.Detection.Mean) ||
		(large.Detection.N > 0 && small.Detection.N == 0)
	if !better {
		t.Fatalf("24 LGs no better than 2: %+v vs %+v", large, small)
	}
	if large.DetectionRate == 0 {
		t.Fatal("24-LG arsenal should detect at least sometimes")
	}
	if E3Table(rows) == "" {
		t.Fatal("empty table")
	}
}

func TestE3Strategies(t *testing.T) {
	rows, err := E3(1, []int{4}, []string{SelectRandom, SelectDegree, SelectGeo}, smallOpts(41))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestE4Slash24Caveat(t *testing.T) {
	rows, err := E4(1, []int{23, 24}, smallOpts(51))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Competitive || rows[0].RecoveredFrac != 1.0 {
		t.Fatalf("/23 should fully recover: %+v", rows[0])
	}
	if !rows[1].Competitive || rows[1].RecoveredFrac >= 1.0 {
		t.Fatalf("/24 should be competitive and partial: %+v", rows[1])
	}
	if E4Table(rows) == "" {
		t.Fatal("empty table")
	}
}

func TestE6TimelineShape(t *testing.T) {
	res, err := E6(smallOpts(61))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// The fraction must dip during the hijack and return to 1.0.
	minFrac, last := 1.0, res.Points[len(res.Points)-1]
	for _, p := range res.Points {
		if p.FractionLegit < minFrac {
			minFrac = p.FractionLegit
		}
	}
	if minFrac >= 1.0 {
		t.Fatal("timeline never dipped — hijack invisible to monitor")
	}
	if last.FractionLegit != 1.0 {
		t.Fatalf("timeline did not recover: %+v", last)
	}
}

func TestE5BaselineMuchSlower(t *testing.T) {
	res, err := E5(2, smallOpts(71))
	if err != nil {
		t.Fatal(err)
	}
	// The archive pipeline (15-minute files + manual verification) must be
	// far slower than ARTEMIS end to end.
	if res.BaselineResponse.Mean < 2*res.ArtemisResponse.Mean {
		t.Fatalf("baseline %v not clearly slower than ARTEMIS %v",
			res.BaselineResponse.Mean, res.ArtemisResponse.Mean)
	}
	// ARTEMIS catches more in-progress hijacks than the baseline, and the
	// sampled duration distribution matches the paper's anchor.
	if res.ArtemisCoverage <= res.BaselineCoverage {
		t.Fatalf("coverage: artemis %.2f vs baseline %.2f", res.ArtemisCoverage, res.BaselineCoverage)
	}
	if res.ShortHijackFrac < 0.20 || res.ShortHijackFrac > 0.30 {
		t.Fatalf("short-hijack fraction = %.2f", res.ShortHijackFrac)
	}
	if res.ArtemisCoverage < 0.80 {
		t.Fatalf("ARTEMIS should outpace >80%% of hijacks (paper §3), got %.2f", res.ArtemisCoverage)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}
