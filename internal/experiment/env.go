// Package experiment assembles full ARTEMIS testbeds — topology, simulated
// Internet, monitoring feeds, controller, the ARTEMIS service itself — and
// runs the paper's §3 protocol (setup → hijack+detection → mitigation) as
// repeatable trials. Each table/figure of the paper maps to one exported
// experiment function here (see DESIGN.md's experiment index).
package experiment

import (
	"fmt"
	"sort"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/controller"
	"artemis/internal/core"
	"artemis/internal/feeds/bgpmon"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/feeds/periscope"
	"artemis/internal/feeds/ris"
	"artemis/internal/hijack"
	"artemis/internal/ingest"
	"artemis/internal/peering"
	"artemis/internal/prefix"
	"artemis/internal/sim"
	"artemis/internal/simnet"
	"artemis/internal/topo"
)

// Source names accepted in Options.Sources.
const (
	SrcRIS       = ris.SourceName
	SrcBGPmon    = bgpmon.SourceName
	SrcPeriscope = periscope.SourceName
)

// LG selection strategies for the Periscope arsenal (experiment E3).
const (
	SelectRandom = "random"
	SelectDegree = "degree"
	SelectGeo    = "geo"
)

// Options parameterizes one testbed.
type Options struct {
	Seed int64
	// Topo is the synthetic Internet (zero → topo.DefaultGenConfig with
	// Seed).
	Topo topo.GenConfig
	// Net is the protocol config (zero values → simnet defaults: MRAI
	// 30s, /24 ingress filtering).
	Net simnet.Config
	// Owned is the victim's prefix (default 10.0.0.0/23, the paper's
	// shape). It is the prefix the configured attack targets.
	Owned prefix.Prefix
	// OwnedSet lists every prefix the victim originates, enabling
	// multi-prefix and mixed v4/v6 deployments. Empty means just Owned;
	// when set it must contain Owned (Build validates). All of them are
	// announced in phase 1, monitored by every feed, and listed as
	// OwnedPrefixes in the ARTEMIS config.
	OwnedSet []prefix.Prefix
	// Kind is the attack scenario (default exact-origin, §3).
	Kind hijack.Kind
	// Sources enables monitoring feeds by name; nil enables all three.
	Sources []string

	// Partner attaches a second legitimate origin (PartnerASN) at two
	// additional stub muxes and lists it in LegitOrigins — the
	// legitimate-MOAS scenarios announce Owned from it and ARTEMIS must
	// stay silent. Requires a topology with at least 6 stubs.
	Partner bool
	// UpstreamPolicy pins each legitimate origin's allowed first-hops to
	// its actual mux ASes (core.Config.AllowedUpstreams), enabling Type-1
	// path-anomaly detection in trials.
	UpstreamPolicy bool
	// SplitCoverage assigns each feed source a disjoint slice of the
	// owned set (round-robin by prefix) instead of every source watching
	// everything, and enables ingest auto-widening — the coverage-hole
	// experiments kill one source and assert the survivors take over its
	// slice. Sources left without a slice watch the full set.
	SplitCoverage bool
	// DeliverTee, when set, observes every deduplicated batch on its way
	// into the pipeline (the fleet's replay recorder hooks here). It runs
	// inline on the delivery path and must not block.
	DeliverTee func([]feedtypes.Event)

	// Feed shape. Zero values select the defaults noted.
	RISCollectors, RISPeers int           // 3 collectors x 3 peers
	RISBatch                time.Duration // ris.DefaultBatchDelay
	BGPmonPeers             int           // 5
	BGPmonMin, BGPmonMax    time.Duration // bgpmon defaults (20-60s)
	LGCount                 int           // 8
	LGPoll                  time.Duration // 3 minutes
	LGStrategy              string        // SelectRandom

	// ControllerDelay is the configuration latency (default 15s, §3).
	ControllerDelay time.Duration
}

func (o Options) withDefaults() Options {
	if o.Topo.Tier1 == 0 {
		o.Topo = topo.DefaultGenConfig()
		// Trials regenerate the Internet per seed so attacker/victim
		// placement varies, like different PEERING site pairs.
		o.Topo.Seed = o.Seed
	}
	if o.Owned == (prefix.Prefix{}) {
		if len(o.OwnedSet) > 0 {
			o.Owned = o.OwnedSet[0]
		} else {
			o.Owned = prefix.MustParse("10.0.0.0/23")
		}
	}
	if len(o.OwnedSet) == 0 {
		o.OwnedSet = []prefix.Prefix{o.Owned}
	}
	if o.Sources == nil {
		o.Sources = []string{SrcRIS, SrcBGPmon, SrcPeriscope}
	}
	if o.RISCollectors == 0 {
		o.RISCollectors = 3
	}
	if o.RISPeers == 0 {
		o.RISPeers = 3
	}
	if o.BGPmonPeers == 0 {
		o.BGPmonPeers = 5
	}
	if o.LGCount == 0 {
		o.LGCount = 8
	}
	if o.LGPoll == 0 {
		o.LGPoll = 3 * time.Minute
	}
	if o.LGStrategy == "" {
		o.LGStrategy = SelectRandom
	}
	if o.ControllerDelay == 0 {
		o.ControllerDelay = controller.DefaultConfigDelay
	}
	return o
}

// VictimASN and AttackerASN are the virtual ASes' numbers, PEERING-style.
// PartnerASN is the victim's sibling origin for legitimate-MOAS scenarios
// (an anycast partner or a sibling AS of the same organization).
const (
	VictimASN   bgp.ASN = 61000
	PartnerASN  bgp.ASN = 61001
	AttackerASN bgp.ASN = 64666
)

// Env is a fully assembled testbed.
type Env struct {
	Opts     Options
	Topo     *topo.Topology
	Engine   *sim.Engine
	Net      *simnet.Network
	Victim   *peering.VirtualAS
	Attacker *peering.VirtualAS
	// Partner is the second legitimate origin; nil unless Options.Partner.
	Partner *peering.VirtualAS
	Ctrl    *controller.Controller
	Artemis *core.Service
	// Pipeline is the sharded detection data path the trials run against;
	// it feeds both the detector and the monitor. Synchronous mode keeps
	// virtual-time semantics: a feed's publish returns only once its
	// consequences (alerts, mitigation scheduling) are in place.
	Pipeline *core.Pipeline
	// Ingest is the supervised fan-in tier between the feeds and the
	// pipeline: cross-source dedup (the same route change seen by
	// overlapping vantage points via several feeds is classified once,
	// first delivery wins) and per-source accounting. Synchronous like
	// the pipeline, so virtual-time semantics hold end to end.
	Ingest *ingest.Supervisor

	RIS       *ris.Service
	BGPmon    *bgpmon.Service
	Periscope *periscope.Service
	Sources   []feedtypes.Source

	// MonitoredVPs is the union of feed vantage points.
	MonitoredVPs []bgp.ASN
	// SourceIDs maps feed name → supervised source id, for scripted
	// lifecycle events (killing a source mid-trial).
	SourceIDs map[string]ingest.SourceID

	track *captureTracker
}

// LeakerASN picks the route-leak offender: the first transit AS, which
// sits on many propagation paths. Deterministic per topology.
func (env *Env) LeakerASN() bgp.ASN {
	return topo.FirstASN + bgp.ASN(env.Opts.Topo.Tier1)
}

// Build assembles the testbed. Nothing has been announced yet.
func Build(opts Options) (*Env, error) {
	opts = opts.withDefaults()
	tp, err := topo.Generate(opts.Topo)
	if err != nil {
		return nil, err
	}
	ownedOK := false
	for _, p := range opts.OwnedSet {
		if p == opts.Owned {
			ownedOK = true
			break
		}
	}
	if !ownedOK {
		return nil, fmt.Errorf("experiment: Owned %v not in OwnedSet %v", opts.Owned, opts.OwnedSet)
	}
	eng := sim.NewEngine(opts.Seed)
	rng := eng.Rand()

	stubStart := opts.Topo.Tier1 + opts.Topo.Transit
	stubs := make([]bgp.ASN, 0, opts.Topo.Stubs)
	for i := stubStart; i < tp.Len(); i++ {
		stubs = append(stubs, topo.FirstASN+bgp.ASN(i))
	}
	need := 4
	if opts.Partner {
		need = 6
	}
	if len(stubs) < need {
		return nil, fmt.Errorf("experiment: need at least %d stubs for mux placement", need)
	}
	perm := rng.Perm(len(stubs))
	victimMuxes := []bgp.ASN{stubs[perm[0]], stubs[perm[1]]}
	attackerMuxes := []bgp.ASN{stubs[perm[2]], stubs[perm[3]]}

	victim, err := peering.Attach(tp, VictimASN, victimMuxes, 5*time.Millisecond)
	if err != nil {
		return nil, err
	}
	attacker, err := peering.Attach(tp, AttackerASN, attackerMuxes, 5*time.Millisecond)
	if err != nil {
		return nil, err
	}
	var partner *peering.VirtualAS
	var partnerMuxes []bgp.ASN
	if opts.Partner {
		partnerMuxes = []bgp.ASN{stubs[perm[4]], stubs[perm[5]]}
		partner, err = peering.Attach(tp, PartnerASN, partnerMuxes, 5*time.Millisecond)
		if err != nil {
			return nil, err
		}
	}

	nw := simnet.New(tp, eng, opts.Net)
	env := &Env{
		Opts: opts, Topo: tp, Engine: eng, Net: nw,
		Victim: victim, Attacker: attacker, Partner: partner,
	}

	// Vantage points come from the transit tier, like real collectors and
	// looking glasses, which overwhelmingly sit in transit networks.
	transit := make([]bgp.ASN, 0, opts.Topo.Transit)
	for i := opts.Topo.Tier1; i < stubStart; i++ {
		transit = append(transit, topo.FirstASN+bgp.ASN(i))
	}
	vpSet := map[bgp.ASN]bool{}
	pick := func(n int) []bgp.ASN {
		out := make([]bgp.ASN, 0, n)
		idx := rng.Perm(len(transit))
		for _, j := range idx {
			if len(out) == n {
				break
			}
			out = append(out, transit[j])
		}
		return out
	}

	enabled := map[string]bool{}
	for _, s := range opts.Sources {
		enabled[s] = true
	}
	if enabled[SrcRIS] {
		var ccfgs []ris.CollectorConfig
		for c := 0; c < opts.RISCollectors; c++ {
			peers := pick(opts.RISPeers)
			for _, p := range peers {
				vpSet[p] = true
			}
			ccfgs = append(ccfgs, ris.CollectorConfig{
				Name: fmt.Sprintf("rrc%02d", c), Peers: peers, BatchDelay: opts.RISBatch,
			})
		}
		env.RIS = ris.New(nw, ccfgs)
		env.Sources = append(env.Sources, env.RIS)
	}
	if enabled[SrcBGPmon] {
		peers := pick(opts.BGPmonPeers)
		for _, p := range peers {
			vpSet[p] = true
		}
		env.BGPmon = bgpmon.New(nw, bgpmon.Config{
			Peers: peers, MinDelay: opts.BGPmonMin, MaxDelay: opts.BGPmonMax,
		})
		env.Sources = append(env.Sources, env.BGPmon)
	}
	if enabled[SrcPeriscope] {
		lgs := selectLGs(tp, transit, opts.LGCount, opts.LGStrategy, rng.Int63())
		for _, p := range lgs {
			vpSet[p] = true
		}
		env.Periscope, err = periscope.New(nw, periscope.Config{
			LGs:          lgs,
			Prefixes:     opts.OwnedSet,
			PollInterval: opts.LGPoll,
		})
		if err != nil {
			return nil, err
		}
		env.Sources = append(env.Sources, env.Periscope)
	}
	for vp := range vpSet {
		env.MonitoredVPs = append(env.MonitoredVPs, vp)
	}
	sort.Slice(env.MonitoredVPs, func(i, j int) bool { return env.MonitoredVPs[i] < env.MonitoredVPs[j] })

	env.Ctrl = controller.NewSim(nw, victim.Bind(nw), controller.WithConfigDelay(opts.ControllerDelay))
	coreCfg := &core.Config{
		OwnedPrefixes: append([]prefix.Prefix(nil), opts.OwnedSet...),
		LegitOrigins:  []bgp.ASN{VictimASN},
	}
	if opts.Partner {
		coreCfg.LegitOrigins = append(coreCfg.LegitOrigins, PartnerASN)
	}
	if opts.UpstreamPolicy {
		coreCfg.AllowedUpstreams = map[bgp.ASN][]bgp.ASN{
			VictimASN: append([]bgp.ASN(nil), victimMuxes...),
		}
		if opts.Partner {
			coreCfg.AllowedUpstreams[PartnerASN] = append([]bgp.ASN(nil), partnerMuxes...)
		}
	}
	env.Artemis, err = core.NewService(coreCfg, env.Ctrl, eng.Now)
	if err != nil {
		return nil, err
	}
	env.Pipeline = core.NewPipeline(env.Artemis.Detector, env.Artemis.Monitor, core.PipelineConfig{
		Shards:      4,
		Synchronous: true,
	})
	// Route config swaps through the pipeline barrier, so a mid-incident
	// Reconfigure lands at a well-defined serial position in the stream.
	env.Artemis.BindPipeline(env.Pipeline)
	deliver := env.Pipeline.SubmitWait
	if opts.DeliverTee != nil {
		tee, inner := opts.DeliverTee, deliver
		deliver = func(batch []feedtypes.Event) {
			tee(batch)
			inner(batch)
		}
	}
	env.Ingest = ingest.New(deliver, ingest.Config{
		Synchronous: true,
		Seed:        opts.Seed,
		AutoWiden:   opts.SplitCoverage,
	})
	env.SourceIDs = make(map[string]ingest.SourceID, len(env.Sources))
	for i, src := range env.Sources {
		f := feedtypes.Filter{
			Prefixes:     opts.OwnedSet,
			MoreSpecific: true,
			LessSpecific: true,
		}
		if opts.SplitCoverage && len(env.Sources) > 1 {
			// Round-robin: prefix j belongs to source j mod N. A source
			// left empty-handed keeps the full set (an empty filter would
			// match everything, the opposite of a narrow slice).
			var mine []prefix.Prefix
			for j, p := range opts.OwnedSet {
				if j%len(env.Sources) == i {
					mine = append(mine, p)
				}
			}
			if len(mine) > 0 {
				f.Prefixes = mine
			}
		}
		env.SourceIDs[src.Name()] = env.Ingest.AddSource(src.Name(), src, f)
	}
	env.track = newCaptureTracker(env)
	return env, nil
}

// Close releases the testbed's concurrent machinery (ingest supervisor,
// pipeline workers, sink, and the service's mitigation queue). The Env's
// state remains readable. Safe to call more than once.
func (env *Env) Close() {
	if env.Ingest != nil {
		env.Ingest.Close()
	}
	if env.Pipeline != nil {
		env.Pipeline.Close()
	}
	if env.Artemis != nil {
		env.Artemis.Close()
	}
}

// selectLGs implements the E3 arsenal-selection strategies.
func selectLGs(tp *topo.Topology, pool []bgp.ASN, n int, strategy string, seed int64) []bgp.ASN {
	if n >= len(pool) {
		return append([]bgp.ASN(nil), pool...)
	}
	switch strategy {
	case SelectDegree:
		// Highest customer-cone transit ASes see route changes first.
		sorted := append([]bgp.ASN(nil), pool...)
		sort.Slice(sorted, func(i, j int) bool {
			ci, cj := tp.CustomerConeSize(sorted[i]), tp.CustomerConeSize(sorted[j])
			if ci != cj {
				return ci > cj
			}
			return sorted[i] < sorted[j]
		})
		return sorted[:n]
	case SelectGeo:
		// One LG per region round-robin, maximizing geographic spread.
		byRegion := map[string][]bgp.ASN{}
		var regions []string
		for _, asn := range pool {
			g, _ := tp.Geo(asn)
			if len(byRegion[g.Region]) == 0 {
				regions = append(regions, g.Region)
			}
			byRegion[g.Region] = append(byRegion[g.Region], asn)
		}
		sort.Strings(regions)
		var out []bgp.ASN
		for len(out) < n {
			progressed := false
			for _, r := range regions {
				if len(out) == n {
					break
				}
				if len(byRegion[r]) > 0 {
					out = append(out, byRegion[r][0])
					byRegion[r] = byRegion[r][1:]
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
		return out
	default: // SelectRandom
		rng := sim.NewEngine(seed).Rand()
		idx := rng.Perm(len(pool))[:n]
		out := make([]bgp.ASN, n)
		for i, j := range idx {
			out[i] = pool[j]
		}
		return out
	}
}
