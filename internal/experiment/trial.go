package experiment

import (
	"fmt"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/hijack"
	"artemis/internal/prefix"
	"artemis/internal/simnet"
)

// captureTracker maintains the ground-truth data-plane state during a
// trial: which ASes currently send the owned address space's traffic to
// an illegitimate origin. It mirrors the paper's measurement ("until all
// the vantage points ... have switched to the legitimate ASN-1") but over
// every AS, which is strictly stronger.
type captureTracker struct {
	env      *Env
	probes   []prefix.Addr
	captured map[bgp.ASN]bool
	// everCaptured records ASes hit at least once; lastRecovery the time
	// of the most recent captured→clean transition.
	everCaptured map[bgp.ASN]bool
	lastRecovery time.Duration
	peak         int
}

func newCaptureTracker(env *Env) *captureTracker {
	t := &captureTracker{
		env:          env,
		captured:     make(map[bgp.ASN]bool),
		everCaptured: make(map[bgp.ASN]bool),
	}
	owned := env.Opts.Owned
	probeLen := 24
	if owned.Is6() {
		probeLen = 48
	}
	if subs, err := owned.Deaggregate(min(owned.Bits()+1, probeLen)); err == nil {
		for _, s := range subs {
			t.probes = append(t.probes, s.Addr())
		}
	} else {
		t.probes = []prefix.Addr{owned.Addr()}
	}
	env.Net.OnChange(func(ev simnet.RouteChange) { t.onChange(ev) })
	return t
}

func (t *captureTracker) onChange(ev simnet.RouteChange) {
	if !ev.Prefix.Overlaps(t.env.Opts.Owned) {
		return
	}
	node := t.env.Net.Node(ev.AS)
	bad := false
	for _, addr := range t.probes {
		if origin, ok := node.ResolveOrigin(addr); ok && origin != VictimASN {
			bad = true
			break
		}
	}
	was := t.captured[ev.AS]
	if bad && !was {
		t.captured[ev.AS] = true
		t.everCaptured[ev.AS] = true
		if len(t.captured) > t.peak {
			t.peak = len(t.captured)
		}
	} else if !bad && was {
		delete(t.captured, ev.AS)
		t.lastRecovery = ev.Time
	}
}

// Trial is the outcome of one §3 experiment run.
type Trial struct {
	// Detected reports whether any feed revealed the hijack. A feed only
	// sees what its vantage points see: with a tiny arsenal none of the
	// monitored views may be captured, and the hijack stays invisible —
	// the coverage side of the §2 parametrization trade-off.
	Detected bool
	// HijackAt is when the attacker announced.
	HijackAt time.Duration
	// DetectionDelay: hijack → ARTEMIS alert (§3 reports ≈45 s).
	DetectionDelay time.Duration
	// TriggerDelay: alert → de-aggregated prefixes announced by the
	// controller (§3 reports ≈15 s).
	TriggerDelay time.Duration
	// MitigationDelay: announcement → every AS back on the victim
	// (§3 reports ≤5 min).
	MitigationDelay time.Duration
	// Total: hijack → fully mitigated (§3 reports ≈6 min).
	Total time.Duration
	// DetectedBy names the feed that delivered the first evidence.
	DetectedBy string
	// PeakCaptured is the maximum number of ASes simultaneously captured.
	PeakCaptured int
	// EverCaptured counts ASes hit at any point.
	EverCaptured int
	// StillCaptured counts ASes not recovered by the end of the trial.
	StillCaptured int
	// RecoveredFrac is 1 - StillCaptured/EverCaptured (1.0 when nothing
	// was captured).
	RecoveredFrac float64
	// LGQueries is the Periscope overhead spent during the trial.
	LGQueries int
}

// trialTimeouts bound the phases in simulation time.
const (
	setupHorizon = 15 * time.Minute
	runHorizon   = 45 * time.Minute
	quietPeriod  = 2 * time.Minute
)

// runQuiet advances the simulation until no routing change happened for
// quietPeriod (periodic feed polls keep firing but cause no changes), or
// the horizon passes.
func (env *Env) runQuiet(horizon time.Duration) {
	deadline := env.Engine.Now() + horizon
	for env.Engine.Now() < deadline {
		next := env.Engine.Now() + 15*time.Second
		env.Engine.RunUntil(next)
		if env.Engine.Now()-env.Net.LastChange() >= quietPeriod {
			return
		}
	}
}

// runPhase3 advances the simulation until the hijack outcome is final:
// routing quiet, and either mitigation fully applied or enough time past
// the slowest feed cycle to call the hijack undetected.
func (env *Env) runPhase3(hijackAt time.Duration) {
	deadline := env.Engine.Now() + runHorizon
	// Give every feed at least two full cycles before declaring a miss.
	undetectedGrace := 2*env.Opts.LGPoll + 2*quietPeriod
	for env.Engine.Now() < deadline {
		env.Engine.RunUntil(env.Engine.Now() + 15*time.Second)
		if env.Engine.Now()-env.Net.LastChange() < quietPeriod {
			continue
		}
		recs := env.Artemis.Mitigator.Records()
		if len(recs) == 0 {
			if env.Engine.Now()-hijackAt >= undetectedGrace {
				return // undetected for good
			}
			continue
		}
		// Count what was actually requested of the controller: failed
		// records contribute only the partial set already announced.
		want := 0
		for _, r := range recs {
			want += len(r.Announced)
		}
		if len(env.Ctrl.Applied()) >= want {
			return // mitigation applied and network settled after it
		}
	}
}

// RunTrial executes the three phases of §3 against a built environment
// and returns the measured timeline.
func RunTrial(env *Env) (Trial, error) {
	owned := env.Opts.Owned

	// Phase 1 — setup: announce and wait for convergence.
	if err := env.Victim.Announce(env.Net, owned); err != nil {
		return Trial{}, err
	}
	env.runQuiet(setupHorizon)
	if len(env.Artemis.Detector.Alerts()) != 0 {
		return Trial{}, fmt.Errorf("experiment: false alert during setup: %+v", env.Artemis.Detector.Alerts())
	}

	// Phase 2 — hijack.
	attack, err := hijack.AttackPrefix(env.Opts.Kind, owned)
	if err != nil {
		return Trial{}, err
	}
	tr := Trial{HijackAt: env.Engine.Now()}
	if env.Opts.Kind == hijack.PathFake {
		// A forged path cannot be expressed through normal origination in
		// the simulator's control plane (the attacker's router would need
		// to lie); experiments that use PathFake drive the detector
		// directly. Reject here to keep trial semantics honest.
		return Trial{}, fmt.Errorf("experiment: PathFake is exercised at the detector level, not in trials")
	}
	if err := env.Attacker.Announce(env.Net, attack); err != nil {
		return Trial{}, err
	}

	// Phase 3 — detection fires the mitigation automatically; run until
	// the network settles *and* no detection or mitigation is pending.
	// Routing can quiesce before a slow looking-glass poll reveals the
	// hijack, so quiet alone is not completion.
	env.runPhase3(tr.HijackAt)

	alerts := env.Artemis.Detector.Alerts()
	if len(alerts) == 0 {
		// Undetected: report ground-truth impact with Detected=false.
		tr.PeakCaptured = env.track.peak
		tr.EverCaptured = len(env.track.everCaptured)
		tr.StillCaptured = len(env.track.captured)
		if tr.EverCaptured > 0 {
			tr.RecoveredFrac = 1 - float64(tr.StillCaptured)/float64(tr.EverCaptured)
		}
		if env.Periscope != nil {
			tr.LGQueries = env.Periscope.Queries()
		}
		return tr, nil
	}
	tr.Detected = true
	alert := alerts[0]
	tr.DetectionDelay = alert.DetectedAt - tr.HijackAt
	tr.DetectedBy = alert.Evidence.Source

	actions := env.Ctrl.Applied()
	if len(actions) == 0 {
		return Trial{}, fmt.Errorf("experiment: mitigation never applied")
	}
	var announcedAt time.Duration
	for _, a := range actions {
		if a.AppliedAt > announcedAt {
			announcedAt = a.AppliedAt
		}
	}
	tr.TriggerDelay = announcedAt - alert.DetectedAt

	tr.PeakCaptured = env.track.peak
	tr.EverCaptured = len(env.track.everCaptured)
	tr.StillCaptured = len(env.track.captured)
	if tr.EverCaptured > 0 {
		tr.RecoveredFrac = 1 - float64(tr.StillCaptured)/float64(tr.EverCaptured)
	} else {
		tr.RecoveredFrac = 1
	}
	if tr.StillCaptured == 0 && tr.EverCaptured > 0 {
		tr.MitigationDelay = env.track.lastRecovery - announcedAt
		tr.Total = env.track.lastRecovery - tr.HijackAt
	} else {
		// Unrecovered (e.g. the /24 caveat): report the horizon as a
		// lower bound on Total.
		tr.MitigationDelay = env.Engine.Now() - announcedAt
		tr.Total = env.Engine.Now() - tr.HijackAt
	}
	if env.Periscope != nil {
		tr.LGQueries = env.Periscope.Queries()
	}
	return tr, nil
}
