package experiment

import (
	"fmt"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/core"
	"artemis/internal/hijack"
	"artemis/internal/prefix"
	"artemis/internal/simnet"
)

// captureTracker maintains the ground-truth data-plane state during a
// trial: which ASes currently send the owned address space's traffic to
// an illegitimate destination. It mirrors the paper's measurement ("until
// all the vantage points ... have switched to the legitimate ASN-1") but
// over every AS, which is strictly stronger.
type captureTracker struct {
	env    *Env
	probes []prefix.Addr
	// legit holds the origins allowed to attract the owned space: the
	// victim, plus the partner when one is attached.
	legit    map[bgp.ASN]bool
	captured map[bgp.ASN]bool
	// everCaptured records ASes hit at least once; lastRecovery the time
	// of the most recent captured→clean transition.
	everCaptured map[bgp.ASN]bool
	lastRecovery time.Duration
	peak         int
}

func newCaptureTracker(env *Env) *captureTracker {
	t := &captureTracker{
		env:          env,
		legit:        map[bgp.ASN]bool{VictimASN: true},
		captured:     make(map[bgp.ASN]bool),
		everCaptured: make(map[bgp.ASN]bool),
	}
	if env.Opts.Partner {
		t.legit[PartnerASN] = true
	}
	for _, owned := range env.Opts.OwnedSet {
		probeLen := 24
		if owned.Is6() {
			probeLen = 48
		}
		if subs, err := owned.Deaggregate(min(owned.Bits()+1, probeLen)); err == nil {
			for _, s := range subs {
				t.probes = append(t.probes, s.Addr())
			}
		} else {
			t.probes = append(t.probes, owned.Addr())
		}
	}
	env.Net.OnChange(func(ev simnet.RouteChange) { t.onChange(ev) })
	return t
}

// badCustody reports whether node's traffic for addr lands somewhere
// illegitimate. Origin alone is not enough: a forged-origin announcement
// carries the victim's ASN at the path's tail while the traffic
// terminates at the attacker — so a path that transits the attacker is
// captured too (the attacker is a stub, no legitimate route crosses it).
func (t *captureTracker) badCustody(node *simnet.Node, addr prefix.Addr) bool {
	r, ok := node.Table().Resolve(addr)
	if !ok {
		return false
	}
	if !t.legit[r.Origin(node.ASN())] {
		return true
	}
	for _, as := range r.Path {
		if as == AttackerASN {
			return true
		}
	}
	return false
}

func (t *captureTracker) onChange(ev simnet.RouteChange) {
	overlaps := false
	for _, owned := range t.env.Opts.OwnedSet {
		if ev.Prefix.Overlaps(owned) {
			overlaps = true
			break
		}
	}
	if !overlaps {
		return
	}
	node := t.env.Net.Node(ev.AS)
	bad := false
	for _, addr := range t.probes {
		if t.badCustody(node, addr) {
			bad = true
			break
		}
	}
	was := t.captured[ev.AS]
	if bad && !was {
		t.captured[ev.AS] = true
		t.everCaptured[ev.AS] = true
		if len(t.captured) > t.peak {
			t.peak = len(t.captured)
		}
	} else if !bad && was {
		delete(t.captured, ev.AS)
		t.lastRecovery = ev.Time
	}
}

// Trial is the outcome of one §3 experiment run.
type Trial struct {
	// Detected reports whether any feed revealed the hijack. A feed only
	// sees what its vantage points see: with a tiny arsenal none of the
	// monitored views may be captured, and the hijack stays invisible —
	// the coverage side of the §2 parametrization trade-off.
	Detected bool
	// HijackAt is when the attacker announced.
	HijackAt time.Duration
	// DetectionDelay: hijack → ARTEMIS alert (§3 reports ≈45 s).
	DetectionDelay time.Duration
	// TriggerDelay: alert → de-aggregated prefixes announced by the
	// controller (§3 reports ≈15 s).
	TriggerDelay time.Duration
	// MitigationDelay: announcement → every AS back on the victim
	// (§3 reports ≤5 min).
	MitigationDelay time.Duration
	// Total: hijack → fully mitigated (§3 reports ≈6 min).
	Total time.Duration
	// DetectedBy names the feed that delivered the first evidence.
	DetectedBy string
	// AlertType is the classification of the measured alert.
	AlertType core.AlertType
	// PeakCaptured is the maximum number of ASes simultaneously captured.
	PeakCaptured int
	// EverCaptured counts ASes hit at any point.
	EverCaptured int
	// StillCaptured counts ASes not recovered by the end of the trial.
	StillCaptured int
	// RecoveredFrac is 1 - StillCaptured/EverCaptured (1.0 when nothing
	// was captured).
	RecoveredFrac float64
	// LGQueries is the Periscope overhead spent during the trial.
	LGQueries int
}

// trialTimeouts bound the phases in simulation time.
const (
	setupHorizon = 15 * time.Minute
	runHorizon   = 45 * time.Minute
	quietPeriod  = 2 * time.Minute
)

// runQuiet advances the simulation until no routing change happened for
// quietPeriod (periodic feed polls keep firing but cause no changes), or
// the horizon passes.
func (env *Env) runQuiet(horizon time.Duration) {
	deadline := env.Engine.Now() + horizon
	for env.Engine.Now() < deadline {
		next := env.Engine.Now() + 15*time.Second
		env.Engine.RunUntil(next)
		if env.Engine.Now()-env.Net.LastChange() >= quietPeriod {
			return
		}
	}
}

// runPhase3 advances the simulation until the hijack outcome is final:
// routing quiet, and either mitigation fully applied or enough time past
// the slowest feed cycle to call the hijack undetected. Only alerts at or
// after hijackAt count as detection — campaign scripts can carry earlier
// incidents whose alerts must not satisfy the measured hijack.
func (env *Env) runPhase3(hijackAt time.Duration) {
	deadline := env.Engine.Now() + runHorizon
	// Give every feed at least two full cycles before declaring a miss.
	undetectedGrace := 2*env.Opts.LGPoll + 2*quietPeriod
	for env.Engine.Now() < deadline {
		env.Engine.RunUntil(env.Engine.Now() + 15*time.Second)
		if env.Engine.Now()-env.Net.LastChange() < quietPeriod {
			continue
		}
		detected := false
		for _, a := range env.Artemis.Detector.Alerts() {
			if a.DetectedAt >= hijackAt {
				detected = true
				break
			}
		}
		if !detected {
			if env.Engine.Now()-hijackAt >= undetectedGrace {
				return // undetected for good
			}
			continue
		}
		// Count what was actually requested of the controller: failed
		// records contribute only the partial set already announced.
		want := 0
		for _, r := range env.Artemis.Mitigator.Records() {
			want += len(r.Announced)
		}
		if len(env.Ctrl.Applied()) >= want {
			return // mitigation applied and network settled after it
		}
	}
}

// LaunchAttack mounts the configured attack scenario against Owned and
// returns the announced (or leaked) prefix. Forged-origin kinds are
// injected with Network.AnnounceWithPath — the attacker's router lies
// about the path's tail; route leaks toggle the leaker's export policy;
// the legitimate-MOAS control announces from the partner origin.
func (env *Env) LaunchAttack() (prefix.Prefix, error) {
	kind, owned := env.Opts.Kind, env.Opts.Owned
	attack, err := hijack.AttackPrefix(kind, owned)
	if err != nil {
		return prefix.Prefix{}, err
	}
	switch {
	case kind == hijack.RouteLeak:
		return attack, env.Net.SetLeaking(env.LeakerASN(), true)
	case kind == hijack.LegitMOAS:
		if env.Partner == nil {
			return prefix.Prefix{}, fmt.Errorf("experiment: LegitMOAS needs Options.Partner")
		}
		return attack, env.Partner.Announce(env.Net, attack)
	case kind.ForgesOrigin():
		suffix := hijack.ForgedPathSuffix(kind, VictimASN, env.Victim.Muxes[0])
		return attack, env.Net.AnnounceWithPath(AttackerASN, attack, suffix)
	default:
		return attack, env.Attacker.Announce(env.Net, attack)
	}
}

// ScriptStep is one timed action in a multi-event campaign (the fleet's
// adversarial-timing scenarios: a hijack during a feed outage, during a
// reconfiguration, during a prior incident's mitigation).
type ScriptStep struct {
	// After is the virtual-time delay from the previous step (from setup
	// convergence, for the first step).
	After time.Duration
	// Name labels the step in errors.
	Name string
	// Hijack marks the step the detection/mitigation timeline is measured
	// against. At most one step should set it; with none, the trial
	// reports ground truth only, measured from the last step.
	Hijack bool
	// Do performs the step's action. A nil Do just advances time.
	Do func(*Env) error
}

// RunScript executes phase 1 (announce all owned prefixes, converge,
// assert no false alert), then the scripted steps, then runs the trial to
// completion and measures the timeline relative to the Hijack-marked
// step. RunTrial is the single-step instance of this.
func RunScript(env *Env, steps []ScriptStep) (Trial, error) {
	// Phase 1 — setup: announce and wait for convergence.
	for _, p := range env.Opts.OwnedSet {
		if err := env.Victim.Announce(env.Net, p); err != nil {
			return Trial{}, err
		}
	}
	env.runQuiet(setupHorizon)
	if len(env.Artemis.Detector.Alerts()) != 0 {
		return Trial{}, fmt.Errorf("experiment: false alert during setup: %+v", env.Artemis.Detector.Alerts())
	}

	// Phase 2 — scripted events.
	tr := Trial{HijackAt: -1}
	for _, st := range steps {
		if st.After > 0 {
			env.Engine.RunUntil(env.Engine.Now() + st.After)
		}
		if st.Hijack {
			tr.HijackAt = env.Engine.Now()
		}
		if st.Do != nil {
			if err := st.Do(env); err != nil {
				return Trial{}, fmt.Errorf("experiment: step %q: %w", st.Name, err)
			}
		}
	}
	if tr.HijackAt < 0 {
		tr.HijackAt = env.Engine.Now()
	}

	// Phase 3 — detection fires the mitigation automatically; run until
	// the network settles *and* no detection or mitigation is pending.
	// Routing can quiesce before a slow looking-glass poll reveals the
	// hijack, so quiet alone is not completion.
	env.runPhase3(tr.HijackAt)

	alerts := env.Artemis.Detector.Alerts()
	var alert *core.Alert
	for i := range alerts {
		if alerts[i].DetectedAt >= tr.HijackAt {
			alert = &alerts[i]
			break
		}
	}
	if alert == nil {
		// Undetected: report ground-truth impact with Detected=false.
		tr.PeakCaptured = env.track.peak
		tr.EverCaptured = len(env.track.everCaptured)
		tr.StillCaptured = len(env.track.captured)
		if tr.EverCaptured > 0 {
			tr.RecoveredFrac = 1 - float64(tr.StillCaptured)/float64(tr.EverCaptured)
		} else {
			tr.RecoveredFrac = 1
		}
		if env.Periscope != nil {
			tr.LGQueries = env.Periscope.Queries()
		}
		return tr, nil
	}
	tr.Detected = true
	tr.DetectionDelay = alert.DetectedAt - tr.HijackAt
	tr.DetectedBy = alert.Evidence.Source
	tr.AlertType = alert.Type

	var announcedAt time.Duration
	for _, a := range env.Ctrl.Applied() {
		if a.AppliedAt >= alert.DetectedAt && a.AppliedAt > announcedAt {
			announcedAt = a.AppliedAt
		}
	}
	if announcedAt == 0 {
		return Trial{}, fmt.Errorf("experiment: mitigation never applied")
	}
	tr.TriggerDelay = announcedAt - alert.DetectedAt

	tr.PeakCaptured = env.track.peak
	tr.EverCaptured = len(env.track.everCaptured)
	tr.StillCaptured = len(env.track.captured)
	if tr.EverCaptured > 0 {
		tr.RecoveredFrac = 1 - float64(tr.StillCaptured)/float64(tr.EverCaptured)
	} else {
		tr.RecoveredFrac = 1
	}
	if tr.StillCaptured == 0 && tr.EverCaptured > 0 {
		tr.MitigationDelay = env.track.lastRecovery - announcedAt
		tr.Total = env.track.lastRecovery - tr.HijackAt
	} else {
		// Unrecovered (e.g. the /24 caveat): report the horizon as a
		// lower bound on Total.
		tr.MitigationDelay = env.Engine.Now() - announcedAt
		tr.Total = env.Engine.Now() - tr.HijackAt
	}
	if env.Periscope != nil {
		tr.LGQueries = env.Periscope.Queries()
	}
	return tr, nil
}

// RunTrial executes the three phases of §3 against a built environment
// and returns the measured timeline.
func RunTrial(env *Env) (Trial, error) {
	return RunScript(env, []ScriptStep{{
		Name:   "hijack",
		Hijack: true,
		Do: func(e *Env) error {
			_, err := e.LaunchAttack()
			return err
		},
	}})
}
