package ingest_test

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/feeds/periscope"
	"artemis/internal/ingest"
	"artemis/internal/prefix"
	"artemis/internal/sim"
	"artemis/internal/simnet"
	"artemis/internal/topo"
)

// healthLog records lifecycle transitions delivered via Config.OnHealth.
type healthLog struct {
	mu   sync.Mutex
	trns []ingest.HealthTransition
}

func (l *healthLog) record(t ingest.HealthTransition) {
	l.mu.Lock()
	l.trns = append(l.trns, t)
	l.mu.Unlock()
}

func (l *healthLog) all() []ingest.HealthTransition {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]ingest.HealthTransition(nil), l.trns...)
}

func (l *healthLog) has(name string, to ingest.State) bool {
	for _, tr := range l.all() {
		if tr.Name == name && tr.To == to {
			return true
		}
	}
	return false
}

// TestHealthTransitionsSurfaced: a flapping dial source must emit
// connecting→healthy→degraded→healthy transitions through OnHealth, and a
// removed source must end dead — the operator-visible health feed behind
// /v1/health and the subscription API.
func TestHealthTransitionsSurfaced(t *testing.T) {
	var log healthLog
	var got collector
	sup := ingest.New(got.deliver, ingest.Config{
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Seed:        1,
		OnHealth:    log.record,
	})
	defer sup.Close()

	d := &flakyDialer{}
	id := sup.AddDialer("flappy", d)
	waitFor(t, "healthy", func() bool { return log.has("flappy", ingest.StateHealthy) })

	// Kill the connection with further dials refused: degraded must surface.
	d.setFailures(3)
	d.lastConn().Close()
	waitFor(t, "degraded", func() bool { return log.has("flappy", ingest.StateDegraded) })
	waitFor(t, "re-healthy", func() bool { return sup.SourceState(id) == ingest.StateHealthy })

	sup.Remove(id)
	waitFor(t, "dead", func() bool { return log.has("flappy", ingest.StateDead) })

	for _, tr := range log.all() {
		if tr.From == tr.To {
			t.Fatalf("self-transition reported: %+v", tr)
		}
		if tr.ID != id || tr.Name != "flappy" {
			t.Fatalf("mislabelled transition: %+v", tr)
		}
	}
}

// rememberFilterDialer hands out fakeConns and records the filter its
// provider resolved at each dial.
type rememberFilterDialer struct {
	mu      sync.Mutex
	filter  ingest.FilterFunc
	applied []feedtypes.Filter
	conns   []*fakeConn
}

func (d *rememberFilterDialer) Dial() (ingest.Conn, error) {
	f := d.filter()
	c := newFakeConn()
	d.mu.Lock()
	d.applied = append(d.applied, f)
	d.conns = append(d.conns, c)
	d.mu.Unlock()
	return c, nil
}

func (d *rememberFilterDialer) last() (feedtypes.Filter, *fakeConn, int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.conns) == 0 {
		return feedtypes.Filter{}, nil, 0
	}
	return d.applied[len(d.applied)-1], d.conns[len(d.conns)-1], len(d.conns)
}

// TestBouncePicksUpFilterChange: after the filter provider's state
// changes, Bounce must redial promptly (no backoff penalty) and the new
// connection must observe the updated filter.
func TestBouncePicksUpFilterChange(t *testing.T) {
	var mu sync.Mutex
	watched := []prefix.Prefix{prefix.MustParse("10.0.0.0/23")}
	provider := func() feedtypes.Filter {
		mu.Lock()
		defer mu.Unlock()
		return feedtypes.Filter{Prefixes: watched, MoreSpecific: true, LessSpecific: true}
	}

	var got collector
	sup := ingest.New(got.deliver, ingest.Config{
		// A deliberately huge backoff: if Bounce paid it, the test would
		// time out instead of seeing the prompt redial.
		BackoffBase: time.Hour,
		BackoffMax:  time.Hour,
		Seed:        1,
	})
	defer sup.Close()

	d := &rememberFilterDialer{filter: provider}
	id := sup.AddDialer("dyn", d)
	waitFor(t, "first dial", func() bool { _, c, n := d.last(); return n == 1 && c != nil })
	if f, _, _ := d.last(); len(f.Prefixes) != 1 {
		t.Fatalf("first dial saw %d prefixes", len(f.Prefixes))
	}

	mu.Lock()
	watched = append(watched, prefix.MustParse("172.16.0.0/22"))
	mu.Unlock()
	sup.Bounce(id)
	waitFor(t, "redial with new filter", func() bool {
		f, _, n := d.last()
		return n >= 2 && len(f.Prefixes) == 2
	})
	waitFor(t, "healthy after bounce", func() bool { return sup.SourceState(id) == ingest.StateHealthy })

	// Events still flow on the fresh connection.
	_, c, _ := d.last()
	c.ch <- []feedtypes.Event{ev(100, "172.16.0.0/24", time.Second, 666)}
	waitFor(t, "delivery after bounce", func() bool { return got.count() == 1 })
}

// TestBounceInterruptsBackoff: a Bounce landing while the source is
// backing off between dials must cut the sleep short — a filter change
// reaches a degraded source as fast as a healthy one.
func TestBounceInterruptsBackoff(t *testing.T) {
	var got collector
	sup := ingest.New(got.deliver, ingest.Config{
		// Without the kick, the redial would wait out this hour.
		BackoffBase: time.Hour,
		BackoffMax:  time.Hour,
		Seed:        1,
	})
	defer sup.Close()

	d := &flakyDialer{failures: 1} // first dial fails -> source backs off
	id := sup.AddDialer("lazarus", d)
	waitFor(t, "degraded", func() bool { return sup.SourceState(id) == ingest.StateDegraded })

	sup.Bounce(id)
	waitFor(t, "prompt redial", func() bool { return d.dialCount() >= 2 })
	waitFor(t, "healthy after bounce", func() bool { return sup.SourceState(id) == ingest.StateHealthy })
}

// TestPeriscopeDialer drives the REST polling dialer against a live
// periscope.Server over a small simulated Internet: initial answers
// arrive as announcements, a hijack shows up as a changed answer, and a
// withdrawn route surfaces as a withdrawal. The watch list is re-read
// every poll, so a hot-added prefix is picked up without a reconnect.
func TestPeriscopeDialer(t *testing.T) {
	tp := topo.Line(4, 10*time.Millisecond)
	eng := sim.NewEngine(1)
	nw := simnet.New(tp, eng, simnet.Config{MRAI: simnet.Disabled, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond})
	owned := prefix.MustParse("10.0.0.0/23")
	if err := nw.Announce(topo.FirstASN, owned); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	srv, err := periscope.NewServer(nw, []bgp.ASN{topo.FirstASN + 2, topo.FirstASN + 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// The server serializes queries through the engine: keep it runnable.
	stopEngine := make(chan struct{})
	engineDone := make(chan struct{})
	go func() {
		defer close(engineDone)
		for {
			select {
			case <-stopEngine:
				return
			default:
				eng.Run()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	defer func() { close(stopEngine); <-engineDone }()

	var mu sync.Mutex
	watched := []prefix.Prefix{owned}
	provider := func() feedtypes.Filter {
		mu.Lock()
		defer mu.Unlock()
		return feedtypes.Filter{Prefixes: append([]prefix.Prefix(nil), watched...), MoreSpecific: true}
	}

	var got collector
	sup := ingest.New(got.deliver, ingest.Config{
		BackoffBase: 5 * time.Millisecond,
		Seed:        1,
		DedupTTL:    -1, // answers repeat across LGs; count them all
	})
	defer sup.Close()
	id := sup.AddDialer("periscope[0]", ingest.PeriscopeDialer(ts.URL, ingest.PeriscopeConfig{
		Filter:       provider,
		PollInterval: 10 * time.Millisecond,
	}))

	countKind := func(p prefix.Prefix, k feedtypes.Kind) int {
		n := 0
		for _, e := range got.all() {
			if e.Prefix == p && e.Kind == k {
				n++
			}
		}
		return n
	}
	waitFor(t, "initial LG answers", func() bool { return countKind(owned, feedtypes.Announce) >= 2 })
	for _, e := range got.all() {
		if e.Source != periscope.SourceName || e.Collector == "" || e.VantagePoint == 0 {
			t.Fatalf("malformed periscope event: %+v", e)
		}
		if e.SeenAt != e.EmittedAt {
			t.Fatalf("LG events must carry no pipeline latency: %+v", e)
		}
	}

	// Hot-add a watched prefix: the next poll must query it without a
	// reconnect (state and connection survive).
	extra := prefix.MustParse("10.2.0.0/24")
	if err := nw.Announce(topo.FirstASN+1, extra); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	watched = append(watched, extra)
	mu.Unlock()
	waitFor(t, "hot-added watch answers", func() bool { return countKind(extra, feedtypes.Announce) >= 2 })

	// A withdrawn route must surface as a withdrawal.
	if err := nw.Withdraw(topo.FirstASN+1, extra); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "withdrawal observed", func() bool { return countKind(extra, feedtypes.Withdraw) >= 2 })

	snap := sup.Snapshot()
	if len(snap.Sources) != 1 || snap.Sources[0].Reconnects != 0 {
		t.Fatalf("unexpected reconnects during hot-add: %+v", snap.Sources)
	}
	if sup.SourceState(id) != ingest.StateHealthy {
		t.Fatalf("source not healthy: %v", sup.SourceState(id))
	}
	_ = fmt.Sprintf("%v", id)
}
