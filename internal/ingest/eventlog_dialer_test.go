package ingest_test

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"artemis/internal/feeds/eventlog"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/ingest"
)

// evlogArchive encodes events as one eventlog stream.
func evlogArchive(t *testing.T, evs []feedtypes.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := eventlog.NewWriter(&buf)
	if err := w.WriteBatch(evs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEventLogReplayFinishesHealthy(t *testing.T) {
	evs := []feedtypes.Event{
		ev(100, "10.0.0.0/24", 10*time.Millisecond, 666),
		ev(101, "10.0.1.0/24", 20*time.Millisecond, 666),
		ev(102, "10.0.0.0/23", 30*time.Millisecond, 667),
	}
	data := evlogArchive(t, evs)

	var got collector
	sup := ingest.New(got.deliver, ingest.Config{DedupTTL: -1})
	defer sup.Close()
	open := func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(data)), nil }
	id := sup.AddDialer("replay", ingest.EventLogReplayDialer(open, ingest.EventLogReplay{}), ingest.Blocking())
	sup.Wait()

	// A completed replay is finished — terminal but healthy. This is the
	// regression pin for the old behavior, where ErrDone parked the
	// source in "dead" and /v1/health reported a successful replay as a
	// critical outage (with operators expected to ignore it).
	if st := sup.SourceState(id); st != ingest.StateFinished {
		t.Fatalf("state = %v, want finished", st)
	} else if !st.Terminal() {
		t.Fatalf("finished must be terminal")
	}
	all := got.all()
	if len(all) != len(evs) {
		t.Fatalf("delivered %d events, want %d", len(all), len(evs))
	}
	for i := range all {
		if all[i].Prefix != evs[i].Prefix || all[i].EmittedAt != evs[i].EmittedAt {
			t.Fatalf("event %d: got %+v want %+v", i, all[i], evs[i])
		}
	}
	if snap := sup.Snapshot().Sources[0]; snap.State != "finished" {
		t.Fatalf("snapshot state = %q", snap.State)
	}
}

// TestEventLogReplayPacing: at Speed 1 a recorded gap is reproduced in
// wall time; as-fast-as-possible replay ignores it. The events keep
// their recorded clocks either way.
func TestEventLogReplayPacing(t *testing.T) {
	const gap = 120 * time.Millisecond
	evs := []feedtypes.Event{
		ev(100, "10.0.0.0/24", 0, 666),
		ev(100, "10.0.1.0/24", gap, 666),
	}
	data := evlogArchive(t, evs)
	open := func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(data)), nil }

	run := func(speed float64) time.Duration {
		var got collector
		sup := ingest.New(got.deliver, ingest.Config{DedupTTL: -1})
		defer sup.Close()
		start := time.Now()
		sup.AddDialer("replay", ingest.EventLogReplayDialer(open, ingest.EventLogReplay{Speed: speed}), ingest.Blocking())
		sup.Wait()
		elapsed := time.Since(start)
		all := got.all()
		if len(all) != 2 || all[1].EmittedAt != gap {
			t.Fatalf("speed %v: events %+v", speed, all)
		}
		return elapsed
	}

	if elapsed := run(1); elapsed < gap {
		t.Fatalf("1x replay took %v, want >= recorded gap %v", elapsed, gap)
	}
	if elapsed := run(0); elapsed > gap {
		t.Fatalf("AFAP replay took %v, want well under %v", elapsed, gap)
	}
	// 4x compresses the gap fourfold (lower bound only: a loaded CI
	// machine may stretch wall time, never shrink it).
	if elapsed := run(4); elapsed < gap/4 {
		t.Fatalf("4x replay took %v, want at least %v", elapsed, gap/4)
	}
}

// TestEventLogReplayCloseUnblocksPacing: Remove must not wait out a
// long recorded gap.
func TestEventLogReplayCloseUnblocksPacing(t *testing.T) {
	evs := []feedtypes.Event{
		ev(100, "10.0.0.0/24", 0, 666),
		ev(100, "10.0.1.0/24", time.Hour, 666), // pacing would sleep ~1h
	}
	data := evlogArchive(t, evs)
	open := func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(data)), nil }

	var got collector
	sup := ingest.New(got.deliver, ingest.Config{DedupTTL: -1})
	defer sup.Close()
	id := sup.AddDialer("replay", ingest.EventLogReplayDialer(open, ingest.EventLogReplay{Speed: 1}), ingest.Blocking())
	waitFor(t, "first event", func() bool { return got.count() >= 1 })

	done := make(chan struct{})
	go func() { sup.Remove(id); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Remove hung behind replay pacing")
	}
}

// TestEventLogFileDialerSegments replays rotated recorder segments in
// order through the glob dialer.
func TestEventLogFileDialerSegments(t *testing.T) {
	dir := t.TempDir()
	prefixPath := filepath.Join(dir, "cap")
	var evs []feedtypes.Event
	for i := 0; i < 10; i++ {
		evs = append(evs, ev(100, "10.0.0.0/24", time.Duration(i)*time.Millisecond, 666))
	}
	var s1, s2 bytes.Buffer
	if err := eventlog.NewWriter(&s1).WriteBatch(evs[:6]); err != nil {
		t.Fatal(err)
	}
	if err := eventlog.NewWriter(&s2).WriteBatch(evs[6:]); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(eventlog.SegmentName(prefixPath, 1), s1.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(eventlog.SegmentName(prefixPath, 2), s2.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var got collector
	sup := ingest.New(got.deliver, ingest.Config{DedupTTL: -1})
	defer sup.Close()
	sup.AddDialer("files", ingest.EventLogFileDialer(prefixPath+"-*.evlog", ingest.EventLogReplay{}), ingest.Blocking())
	sup.Wait()
	all := got.all()
	if len(all) != len(evs) {
		t.Fatalf("delivered %d events, want %d", len(all), len(evs))
	}
	for i := range all {
		if all[i].EmittedAt != evs[i].EmittedAt {
			t.Fatalf("order broken at %d: %v", i, all[i].EmittedAt)
		}
	}

	// DedupTTL disabled above; with tiny SeenAt gaps the cross-source
	// dedup would otherwise be the thing under test.
	if sup.Snapshot().Sources[0].Drops != 0 {
		t.Fatal("blocking replay dropped events")
	}
}

// TestRateLimitShedsDropPolicySource: a non-blocking source over its
// token budget sheds batches, counted in RateShed, without touching
// sibling throughput.
func TestRateLimitShedsDropPolicySource(t *testing.T) {
	var got collector
	sup := ingest.New(got.deliver, ingest.Config{DedupTTL: -1, BackoffBase: time.Millisecond, Seed: 9})
	defer sup.Close()

	d := &flakyDialer{}
	// 1 event/s with the standard 512-token burst: the burst admits the
	// first five 100-event batches, then the bucket is dry for the rest
	// of the test (refill is ~1 token over its runtime).
	id := sup.AddDialer("chatty", d, ingest.RateLimit(1))
	waitFor(t, "connection", func() bool { return d.lastConn() != nil })
	conn := d.lastConn()

	for i := 0; i < 10; i++ {
		batch := make([]feedtypes.Event, 100)
		for j := range batch {
			batch[j] = ev(100, "10.0.0.0/24", time.Duration(i*100+j)*time.Millisecond, 666)
		}
		conn.ch <- batch
	}
	waitFor(t, "admitted + shed split", func() bool {
		s := sup.Snapshot().Sources[0]
		return s.Events+s.RateShed == 1000
	})
	s := sup.Snapshot().Sources[0]
	if s.Events != 500 || s.RateShed != 500 {
		t.Fatalf("events=%d rateShed=%d, want 500/500 (burst 512 admits 5 batches of 100)", s.Events, s.RateShed)
	}
	if s.Drops != 0 {
		t.Fatalf("queue drops %d; the rate limit, not the queue bound, must shed", s.Drops)
	}
	if st := sup.SourceState(id); st != ingest.StateHealthy {
		t.Fatalf("state = %v; shedding must not affect health", st)
	}
}

// TestRateLimitPacesBlockingSource: a blocking replay is paced, not
// shed — everything arrives, but not faster than the configured rate.
func TestRateLimitPacesBlockingSource(t *testing.T) {
	var got collector
	sup := ingest.New(got.deliver, ingest.Config{DedupTTL: -1})
	defer sup.Close()

	// 3 batches of 512 events = 1536 events at 51200/s with burst 512:
	// the last batch cannot clear before (1536-512)/51200 ≈ 20ms.
	var batches [][]feedtypes.Event
	for b := 0; b < 3; b++ {
		var batch []feedtypes.Event
		for i := 0; i < 512; i++ {
			batch = append(batch, ev(100, "10.0.0.0/24", time.Duration(b*512+i)*time.Microsecond, 666))
		}
		batches = append(batches, batch)
	}
	start := time.Now()
	id := sup.AddDialer("paced", ingest.ReplayDialer(batches), ingest.Blocking(), ingest.RateLimit(51200))
	sup.Wait()
	elapsed := time.Since(start)

	if n := got.count(); n != 3*512 {
		t.Fatalf("delivered %d events, want %d (pacing must not shed)", n, 3*512)
	}
	if elapsed < 15*time.Millisecond {
		t.Fatalf("blocking replay finished in %v, want pacing to stretch it past ~20ms", elapsed)
	}
	s := sup.Snapshot().Sources[0]
	if s.RateShed != 0 || s.Drops != 0 {
		t.Fatalf("paced source shed events: %+v", s)
	}
	if stv := sup.SourceState(id); stv != ingest.StateFinished {
		t.Fatalf("state = %v, want finished", stv)
	}
}
