package ingest_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/core"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/ingest"
	"artemis/internal/prefix"
)

// recordingAnnouncer is a deterministic core.RouteAnnouncer.
type recordingAnnouncer struct {
	mu        sync.Mutex
	announced []prefix.Prefix
}

func (r *recordingAnnouncer) Announce(p prefix.Prefix) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.announced = append(r.announced, p)
	return nil
}

func (r *recordingAnnouncer) all() []prefix.Prefix {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]prefix.Prefix(nil), r.announced...)
}

func equivConfig() *core.Config {
	return &core.Config{
		// A dual-stack owned portfolio: the paper's v4 shape plus a v6 /32,
		// the ISSUE's v6 analogue (a real AS announces both).
		OwnedPrefixes: []prefix.Prefix{
			prefix.MustParse("10.0.0.0/23"),
			prefix.MustParse("192.0.2.0/24"),
			prefix.MustParse("2001:db8::/32"),
		},
		LegitOrigins:     []bgp.ASN{61000},
		AllowedUpstreams: map[bgp.ASN][]bgp.ASN{61000: {2000, 2001}},
	}
}

// sourcedCopy is one source's copy of a base route change.
type sourcedCopy struct {
	src int
	ev  feedtypes.Event
}

// overlappingStreams builds a randomized multi-source workload: nBase
// route changes at a small set of shared vantage points, each observed by
// a random non-empty subset of the K sources with per-source delivery
// latency. Returned in delivery order (ascending EmittedAt), the order a
// live fan-in would see.
func overlappingStreams(rng *rand.Rand, k, nBase int) []sourcedCopy {
	var copies []sourcedCopy
	for i := 0; i < nBase; i++ {
		vp := bgp.ASN(100 + rng.Intn(8))
		base := feedtypes.Event{
			Collector:    "c0",
			VantagePoint: vp,
			Kind:         feedtypes.Announce,
			SeenAt:       time.Duration(i) * time.Millisecond,
		}
		switch rng.Intn(14) {
		case 0, 1, 2: // benign v4
			base.Prefix = prefix.MustParse("10.0.0.0/23")
			base.Path = []bgp.ASN{vp, 2000, 61000}
		case 3: // exact-origin hijack from a small attacker pool
			base.Prefix = prefix.MustParse("10.0.0.0/23")
			base.Path = []bgp.ASN{vp, 2000, bgp.ASN(660 + rng.Intn(4))}
		case 4: // sub-prefix hijack
			base.Prefix = prefix.MustParse("10.0.1.0/24")
			base.Path = []bgp.ASN{vp, 2000, bgp.ASN(660 + rng.Intn(4))}
		case 5: // squat
			base.Prefix = prefix.MustParse("192.0.0.0/16")
			base.Path = []bgp.ASN{vp, 2000, bgp.ASN(660 + rng.Intn(4))}
		case 6: // path anomaly candidate
			base.Prefix = prefix.MustParse("10.0.0.0/23")
			base.Path = []bgp.ASN{vp, bgp.ASN(2000 + rng.Intn(4)), 61000}
		case 7: // withdrawal
			base.Kind = feedtypes.Withdraw
			base.Prefix = prefix.MustParse("10.0.0.0/23")
		case 8, 9: // benign v6: the owned /32 from the legit origin
			base.Prefix = prefix.MustParse("2001:db8::/32")
			base.Path = []bgp.ASN{vp, 2000, 61000}
		case 10: // v6 sub-prefix hijack: a /48 slice of the owned /32
			base.Prefix = prefix.MustParse("2001:db8:beef::/48")
			base.Path = []bgp.ASN{vp, 2000, bgp.ASN(660 + rng.Intn(4))}
		case 11: // v6 squat: a covering /24
			base.Prefix = prefix.MustParse("2001:d00::/24")
			base.Path = []bgp.ASN{vp, 2000, bgp.ASN(660 + rng.Intn(4))}
		case 12: // unrelated v6 prefix (filtered by the subscription)
			base.Prefix = prefix.New(prefix.AddrFrom16(0x2400000000000000|uint64(rng.Intn(256))<<32, 0), 48)
			base.Path = []bgp.ASN{vp, 2000, 3000}
		default: // unrelated v4 prefix (filtered by the subscription)
			base.Prefix = prefix.New(prefix.AddrFrom4(uint32(172<<24)|uint32(rng.Intn(256))<<8), 24)
			base.Path = []bgp.ASN{vp, 2000, 3000}
		}
		// Observed by a random non-empty subset of sources — the
		// cross-source overlap the dedup must collapse.
		perm := rng.Perm(k)
		observers := perm[:1+rng.Intn(k)]
		for _, s := range observers {
			cp := base
			cp.Source = fmt.Sprintf("feed%d", s)
			// Per-source pipeline latency, jittered per copy.
			cp.EmittedAt = cp.SeenAt + time.Duration(s+1)*10*time.Second +
				time.Duration(rng.Intn(5000))*time.Microsecond
			copies = append(copies, sourcedCopy{src: s, ev: cp})
		}
	}
	sort.SliceStable(copies, func(a, b int) bool { return copies[a].ev.EmittedAt < copies[b].ev.EmittedAt })
	return copies
}

// identity mirrors the supervisor's dedup key exactly, but with the full
// path instead of a hash — a collision here would be a test bug, not a
// tolerated approximation.
func identity(ev *feedtypes.Event) string {
	return fmt.Sprintf("%d|%d|%s|%d|%v", uint32(ev.VantagePoint), ev.Kind, ev.Prefix, ev.SeenAt, ev.Path)
}

// TestMultiSourceFanInMatchesSerialDedupedUnion is the ingest tier's
// oracle: K sources replaying overlapping event streams through the
// supervisor and pipeline must produce exactly the alerts, mitigation
// records, controller announcements, monitor history and final snapshot
// of the deduped union of those streams replayed serially.
func TestMultiSourceFanInMatchesSerialDedupedUnion(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		for _, k := range []int{2, 4} {
			t.Run(fmt.Sprintf("seed-%d-sources-%d", seed, k), func(t *testing.T) {
				copies := overlappingStreams(rand.New(rand.NewSource(seed)), k, 1500)
				now := func() time.Duration { return 0 }
				filter := feedtypes.Filter{
					Prefixes:     equivConfig().OwnedPrefixes,
					MoreSpecific: true,
					LessSpecific: true,
				}

				// Serial reference: the deduped union (first copy of each
				// identity wins) of the subscription-filtered streams,
				// processed in delivery order.
				seen := map[string]bool{}
				var union []feedtypes.Event
				for i := range copies {
					if !filter.Match(copies[i].ev.Prefix) {
						continue
					}
					id := identity(&copies[i].ev)
					if !seen[id] {
						seen[id] = true
						union = append(union, copies[i].ev)
					}
				}
				serialAnn := &recordingAnnouncer{}
				serialDet := core.NewDetector(equivConfig())
				serialMon := core.NewMonitor(equivConfig())
				serialMit := core.NewMitigator(equivConfig(), serialAnn, now)
				serialQ := core.NewMitigationQueue(serialMit.HandleAlert, core.MitigationQueueConfig{Synchronous: true}, nil)
				serialDet.OnAlert(serialQ.Enqueue)
				for _, ev := range union {
					serialDet.Process(ev)
					serialMon.Process(ev)
				}
				serialQ.Close()

				// Fan-in under test: K in-process sources through the
				// supervisor (synchronous, so delivery order is the
				// publish order) into the sharded pipeline.
				fanAnn := &recordingAnnouncer{}
				fanDet := core.NewDetector(equivConfig())
				fanMon := core.NewMonitor(equivConfig())
				fanMit := core.NewMitigator(equivConfig(), fanAnn, now)
				fanQ := core.NewMitigationQueue(fanMit.HandleAlert, core.MitigationQueueConfig{Synchronous: true}, nil)
				fanDet.OnAlert(fanQ.Enqueue)
				pl := core.NewPipeline(fanDet, fanMon, core.PipelineConfig{Shards: 4, QueueDepth: 4})
				sup := ingest.New(pl.SubmitWait, ingest.Config{Synchronous: true, DedupTTL: 24 * time.Hour})
				hubs := make([]hubSource, k)
				for s := 0; s < k; s++ {
					hubs[s] = hubSource{feedtypes.NewHub(), fmt.Sprintf("feed%d", s)}
					sup.AddSource(hubs[s].name, hubs[s], filter)
				}
				// Publish runs of consecutive same-source copies as one
				// batch, exercising the batch dedup path.
				for i := 0; i < len(copies); {
					j := i
					var batch []feedtypes.Event
					for j < len(copies) && copies[j].src == copies[i].src && j-i < 7 {
						batch = append(batch, copies[j].ev)
						j++
					}
					hubs[copies[i].src].Publish(batch)
					i = j
				}
				sup.Close()
				pl.Close()
				fanQ.Close()

				if got, want := fanDet.Alerts(), serialDet.Alerts(); !reflect.DeepEqual(got, want) {
					t.Fatalf("alerts diverge: fan-in %d, serial %d\n fan %+v\n ser %+v", len(got), len(want), got, want)
				}
				if got, want := fanMit.Records(), serialMit.Records(); !reflect.DeepEqual(got, want) {
					t.Fatalf("mitigation records diverge:\n fan    %+v\n serial %+v", got, want)
				}
				if got, want := fanAnn.all(), serialAnn.all(); !reflect.DeepEqual(got, want) {
					t.Fatalf("announcements diverge:\n fan    %v\n serial %v", got, want)
				}
				if got, want := fanMon.History(), serialMon.History(); !reflect.DeepEqual(got, want) {
					t.Fatalf("monitor history diverges: %d vs %d change-points", len(got), len(want))
				}
				gotSnap, wantSnap := fanMon.Snapshot(0), serialMon.Snapshot(0)
				if gotSnap != wantSnap {
					t.Fatalf("final snapshot diverges: %+v vs %+v", gotSnap, wantSnap)
				}
				if re := fanMon.Rescore(0); re != gotSnap {
					t.Fatalf("snapshot %+v != rescore oracle %+v", gotSnap, re)
				}
				// The ISSUE's acceptance scenario, end to end: the v6 /48
				// sub-prefix hijack of the owned /32 must have been detected
				// through ingest -> pipeline and mitigated through the queue
				// (at the /48 filtering limit the response is a competitive
				// re-announcement of the hijacked prefix, the v6 analogue of
				// the paper's /24 caveat).
				v6Hijack := prefix.MustParse("2001:db8:beef::/48")
				var v6Alert *core.Alert
				for i := range fanDet.Alerts() {
					a := fanDet.Alerts()[i]
					if a.Type == core.AlertSubPrefix && a.Prefix == v6Hijack {
						v6Alert = &a
						break
					}
				}
				if v6Alert == nil {
					t.Fatal("v6 sub-prefix hijack not alerted")
				}
				if want := prefix.MustParse("2001:db8::/32"); v6Alert.Owned != want {
					t.Fatalf("v6 alert owned = %s, want %s", v6Alert.Owned, want)
				}
				var v6Rec *core.MitigationRecord
				for i := range fanMit.Records() {
					r := fanMit.Records()[i]
					if r.Alert.Type == core.AlertSubPrefix && r.Alert.Prefix == v6Hijack {
						v6Rec = &r
						break
					}
				}
				if v6Rec == nil {
					t.Fatal("v6 sub-prefix hijack not mitigated")
				}
				if !v6Rec.Competitive || len(v6Rec.Announced) != 1 || v6Rec.Announced[0] != v6Hijack {
					t.Fatalf("v6 mitigation = %+v, want competitive re-announcement of %s", v6Rec, v6Hijack)
				}
				foundAnn := false
				for _, p := range fanAnn.all() {
					if p == v6Hijack {
						foundAnn = true
					}
				}
				if !foundAnn {
					t.Fatal("v6 mitigation never reached the controller")
				}
				// Dedup accounting: every suppressed copy is counted, and
				// the delivered totals equal the union that matched the
				// subscription filter.
				var delivered, hits int64
				for _, s := range sup.Snapshot().Sources {
					delivered += s.Events
					hits += s.DedupHits
				}
				if delivered != int64(len(union)) {
					t.Fatalf("delivered %d events, filtered union has %d", delivered, len(union))
				}
				if hits == 0 {
					t.Fatal("no dedup hits in an overlapping workload — overlap generator broken?")
				}
			})
		}
	}
}

// TestAsyncFanInConvergesToSameIncidents runs the same overlapping
// workload through asynchronous dial sources — nondeterministic
// interleaving — and checks the order-insensitive invariants: the set of
// alerted incidents and the monitor's final rescored partition match the
// serial union, and nothing is delivered twice.
func TestAsyncFanInConvergesToSameIncidents(t *testing.T) {
	const k = 4
	copies := overlappingStreams(rand.New(rand.NewSource(42)), k, 2000)

	// Serial reference for incident keys and final partition.
	seen := map[string]bool{}
	serialDet := core.NewDetector(equivConfig())
	serialMon := core.NewMonitor(equivConfig())
	for i := range copies {
		id := identity(&copies[i].ev)
		if !seen[id] {
			seen[id] = true
			serialDet.Process(copies[i].ev)
			serialMon.Process(copies[i].ev)
		}
	}
	wantKeys := map[string]bool{}
	for _, a := range serialDet.Alerts() {
		wantKeys[a.Key()] = true
	}

	fanDet := core.NewDetector(equivConfig())
	fanMon := core.NewMonitor(equivConfig())
	pl := core.NewPipeline(fanDet, fanMon, core.PipelineConfig{Shards: 4})
	sup := ingest.New(pl.Submit, ingest.Config{QueueDepth: 1 << 10, DedupTTL: 24 * time.Hour})

	// Pre-chunk each source's stream and replay all of them concurrently
	// through blocking dial sources.
	streams := make([][][]feedtypes.Event, k)
	for i := range copies {
		s := copies[i].src
		n := len(streams[s])
		if n == 0 || len(streams[s][n-1]) >= 32 {
			streams[s] = append(streams[s], nil)
			n++
		}
		streams[s][n-1] = append(streams[s][n-1], copies[i].ev)
	}
	for s := 0; s < k; s++ {
		sup.AddDialer(fmt.Sprintf("feed%d", s), ingest.ReplayDialer(streams[s]), ingest.Blocking())
	}
	sup.Wait()
	sup.Close()
	pl.Close()

	gotKeys := map[string]bool{}
	for _, a := range fanDet.Alerts() {
		gotKeys[a.Key()] = true
	}
	if !reflect.DeepEqual(gotKeys, wantKeys) {
		t.Fatalf("incident sets diverge:\n fan    %v\n serial %v", gotKeys, wantKeys)
	}
	// With racing sources the *winning copy* of each change is timing-
	// dependent, but the copies only differ in Source/EmittedAt, so the
	// rescored partition (a function of entries and origins) must match.
	if got, want := fanMon.Rescore(0), serialMon.Rescore(0); got.LegitVPs != want.LegitVPs ||
		got.HijackedVPs != want.HijackedVPs || got.UnknownVPs != want.UnknownVPs {
		t.Fatalf("partitions diverge: %+v vs %+v", got, want)
	}
	// First-wins really means exactly-once: delivered + suppressed copies
	// account for every copy, with no double delivery.
	var delivered, hits int64
	for _, s := range sup.Snapshot().Sources {
		delivered += s.Events
		hits += s.DedupHits
	}
	if delivered+hits != int64(len(copies)) {
		t.Fatalf("delivered %d + dedup hits %d != copies %d", delivered, hits, len(copies))
	}
	if delivered != int64(len(seen)) {
		t.Fatalf("delivered %d != unique changes %d — something classified twice or never", delivered, len(seen))
	}
}
