package ingest

import (
	"io"

	"artemis/internal/bgp"
	"artemis/internal/bgp/mrt"
	"artemis/internal/feeds/bgpmon"
	"artemis/internal/feeds/dumps"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/feeds/ris"
)

// maxRecvBatch caps how many buffered stream events are coalesced into
// one batch when a feed runs hot — the same bound the daemon's old pump
// loop used.
const maxRecvBatch = 256

// FilterFunc supplies a subscription filter. Dialers call it on every
// (re)dial, so a provider backed by live configuration makes a reconnect
// — including a deliberate Supervisor.Bounce — pick up filter changes
// (hot-added owned prefixes) without restarting the source.
type FilterFunc func() feedtypes.Filter

// StaticFilter adapts a fixed filter to FilterFunc.
func StaticFilter(f feedtypes.Filter) FilterFunc {
	return func() feedtypes.Filter { return f }
}

// RISDialer returns a Dialer for a RIS-style websocket endpoint
// (ws://host:port/v1/ws). The per-event stream is coalesced into batches:
// one event minimum, then whatever the client has already buffered, so a
// quiet feed stays low-latency and a busy one amortizes per-delivery
// cost.
func RISDialer(url string, f feedtypes.Filter) Dialer {
	return RISDialerDynamic(url, StaticFilter(f))
}

// RISDialerDynamic is RISDialer with the subscription filter resolved at
// every (re)dial. RIS filtering is server-side (the filter travels in the
// subscribe message), so filter changes take effect on the next dial;
// Supervisor.Bounce forces one.
func RISDialerDynamic(url string, f FilterFunc) Dialer {
	return DialFunc(func() (Conn, error) {
		cli, err := ris.DialClient(url, f())
		if err != nil {
			return nil, err
		}
		return &chanConn{events: cli.Events(), close: cli.Close, err: cli.Err}, nil
	})
}

// BGPmonDialer returns a Dialer for a BGPmon-style XML TCP stream
// (host:port), batched like RISDialer.
func BGPmonDialer(addr string, f feedtypes.Filter) Dialer {
	return BGPmonDialerDynamic(addr, StaticFilter(f))
}

// BGPmonDialerDynamic is BGPmonDialer with the filter resolved at every
// (re)dial (the BGPmon client filters client-side, but binds the filter
// per connection).
func BGPmonDialerDynamic(addr string, f FilterFunc) Dialer {
	return DialFunc(func() (Conn, error) {
		cli, err := bgpmon.DialClient(addr, f())
		if err != nil {
			return nil, err
		}
		return &chanConn{events: cli.Events(), close: cli.Close, err: cli.Err}, nil
	})
}

// chanConn adapts a per-event channel client (the RIS/BGPmon network
// clients) to the batch Conn interface. The batch buffer is reused
// across Recv calls — allowed by Conn's contract, since the supervisor
// copies each batch into pooled storage before queueing — so a hot feed
// coalesces events with zero allocations per delivery.
type chanConn struct {
	events <-chan feedtypes.Event
	close  func() error
	err    func() error
	buf    []feedtypes.Event
}

func (c *chanConn) Recv() ([]feedtypes.Event, error) {
	ev, ok := <-c.events
	if !ok {
		if err := c.err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	batch := append(c.buf[:0], ev)
	defer func() { c.buf = batch }()
	for len(batch) < maxRecvBatch {
		select {
		case next, ok := <-c.events:
			if !ok {
				// Deliver what we have; the next Recv reports why the
				// stream ended.
				return batch, nil
			}
			batch = append(batch, next)
		default:
			return batch, nil
		}
	}
	return batch, nil
}

func (c *chanConn) Close() error { return c.close() }

// ReplayDialer replays pre-chunked batches as one finite source ending in
// ErrDone — deterministic ingest of captured feed data, and the workload
// generator for BenchmarkIngestFanIn. Combine with the Blocking option so
// the replay is flow-controlled instead of shed.
func ReplayDialer(batches [][]feedtypes.Event) Dialer {
	return DialFunc(func() (Conn, error) {
		return &replayConn{batches: batches}, nil
	})
}

type replayConn struct {
	batches [][]feedtypes.Event
	i       int
}

func (c *replayConn) Recv() ([]feedtypes.Event, error) {
	if c.i >= len(c.batches) {
		return nil, ErrDone
	}
	b := c.batches[c.i]
	c.i++
	return b, nil
}

func (c *replayConn) Close() error { return nil }

// MRTReplayDialer replays an MRT archive (RFC 6396 update or RIB files,
// as written by internal/feeds/dumps) as one finite source: each BGP4MP
// record becomes the events of its UPDATE, each RIB entry one
// announcement per peer route. open is called on every (re)dial, so a
// replay interrupted by Remove can be restarted. The stream ends with
// ErrDone. Combine with Blocking.
func MRTReplayDialer(open func() (io.ReadCloser, error), collector string) Dialer {
	return DialFunc(func() (Conn, error) {
		rc, err := open()
		if err != nil {
			return nil, err
		}
		return &mrtConn{rc: rc, r: mrt.NewReader(rc), collector: collector}, nil
	})
}

type mrtConn struct {
	rc        io.ReadCloser
	r         *mrt.Reader
	collector string
	// peers threads the dump's PEER_INDEX_TABLE through to RIB entries so
	// each route's vantage point comes from the peer record it names, not
	// from path[0] — route-server peers do not prepend themselves, so the
	// first path hop is not necessarily the peer.
	peers mrt.PeerResolver
	// buf is the reused per-Recv batch (Conn contract: valid until the
	// next Recv).
	buf []feedtypes.Event
}

func (c *mrtConn) Recv() ([]feedtypes.Event, error) {
	for {
		rec, err := c.r.Next()
		if err == io.EOF {
			return nil, ErrDone
		}
		if err != nil {
			return nil, err
		}
		batch := c.buf[:0]
		switch m := rec.(type) {
		case *mrt.BGP4MPMessage:
			u, ok := m.Message.(*bgp.Update)
			if !ok {
				continue
			}
			at := dumps.SimTimeOf(m.Timestamp)
			for _, p := range u.Withdrawn {
				batch = append(batch, feedtypes.Event{
					Source:       dumps.SourceName,
					Collector:    c.collector,
					VantagePoint: m.PeerAS,
					Kind:         feedtypes.Withdraw,
					Prefix:       p,
					SeenAt:       at,
					EmittedAt:    at,
				})
			}
			if path, ok := u.ASPath(); ok {
				for _, p := range u.NLRI {
					batch = append(batch, feedtypes.Event{
						Source:       dumps.SourceName,
						Collector:    c.collector,
						VantagePoint: m.PeerAS,
						Kind:         feedtypes.Announce,
						Prefix:       p,
						Path:         path,
						SeenAt:       at,
						EmittedAt:    at,
					})
				}
			}
		case *mrt.PeerIndexTable:
			c.peers.Observe(m)
			continue
		case *mrt.RIBEntry:
			at := dumps.SimTimeOf(m.Timestamp)
			for _, rt := range m.Routes {
				u := &bgp.Update{Attrs: rt.Attrs}
				path, ok := u.ASPath()
				if !ok {
					continue
				}
				peer, err := c.peers.Peer(rt.PeerIndex)
				if err != nil {
					return nil, err
				}
				vp := peer.AS
				batch = append(batch, feedtypes.Event{
					Source:       dumps.SourceName,
					Collector:    c.collector,
					VantagePoint: vp,
					Kind:         feedtypes.Announce,
					Prefix:       m.Prefix,
					Path:         path,
					SeenAt:       dumps.SimTimeOf(rt.Originated),
					EmittedAt:    at,
				})
			}
		default:
			continue
		}
		c.buf = batch
		if len(batch) > 0 {
			return batch, nil
		}
	}
}

func (c *mrtConn) Close() error { return c.rc.Close() }
