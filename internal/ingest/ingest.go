// Package ingest is the supervised multi-source fan-in tier between the
// monitoring feeds and the detection pipeline. ARTEMIS's detection delay
// is "the min of the delays" across its sources (§2) — which only holds
// operationally if many feed connections can be fanned into one pipeline
// without the slowest or flakiest connection dragging the rest down. The
// supervisor owns N feed connections and provides what the raw clients do
// not:
//
//   - Per-source lifecycle: dial, health state (connecting / healthy /
//     degraded / dead), exponential-backoff reconnect with jitter, and hot
//     add/remove of sources at runtime.
//   - Cross-source dedup with first-wins semantics: the same route change
//     seen at the same vantage point via two sources (or two collectors)
//     is classified once, from whichever source delivered it first — so
//     adding sources reduces detection delay instead of multiplying sink
//     load. The seen-set is a bounded, TTL'd cache (internal/ttlset).
//   - Per-source backpressure accounting and an explicit drop policy:
//     each source owns a bounded queue and sheds its own load when it
//     falls behind; a stalled or flapping source never stalls the
//     pipeline or its sibling sources.
//   - Per-source counters and histograms (events, batches, dedup hits,
//     drops, reconnects, delivery latency EmittedAt-SeenAt), exported
//     through the /metrics endpoint via stats.IngestSnapshot.
package ingest

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
	"artemis/internal/ring"
	"artemis/internal/stats"
	"artemis/internal/ttlset"
)

// State is a supervised source's lifecycle state.
type State uint32

const (
	// StateConnecting: the supervisor is dialing (first connect or
	// redial).
	StateConnecting State = iota
	// StateHealthy: connected and delivering.
	StateHealthy
	// StateDegraded: the connection failed; the supervisor is backing off
	// before the next dial.
	StateDegraded
	// StateDead: the source ended for good — removed, supervisor closed,
	// or retry budget exhausted.
	StateDead
	// StateFinished: a finite stream (MRT archive, eventlog replay)
	// completed normally with ErrDone. Terminal like StateDead — the
	// supervisor will not redial — but healthy: a finished replay is a
	// success, not an outage, and must not page anyone (Node.Health
	// treats finished sources as ok where dead live sources escalate).
	StateFinished
)

func (s State) String() string {
	switch s {
	case StateConnecting:
		return "connecting"
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateDead:
		return "dead"
	case StateFinished:
		return "finished"
	}
	return "unknown"
}

// Terminal reports whether the state is an end state the supervisor
// will not leave (no redial scheduled).
func (s State) Terminal() bool { return s == StateDead || s == StateFinished }

// ErrDone is returned by a Conn's Recv when a finite stream (an MRT
// archive replay, an eventlog replay, a scripted test feed) is
// complete: the supervisor marks the source finished — terminal but
// healthy — instead of redialing.
var ErrDone = errors.New("ingest: source stream complete")

// Conn is one live feed connection: Recv blocks for the next batch of
// events (emission order within the batch). A Recv may return both a
// final batch and an error. Close must unblock a pending Recv.
//
// The returned slice (and its events' Path slices) is only valid until
// the next Recv or Close call: connections are free to reuse one
// backing buffer across calls, and the built-in dialers do. The
// supervisor honors this by copying each batch into its own pooled
// storage before queueing (see Supervisor's pool), so a Conn never has
// a batch retained behind its back.
type Conn interface {
	Recv() ([]feedtypes.Event, error)
	Close() error
}

// Dialer establishes feed connections; the supervisor dials through it on
// every (re)connect.
type Dialer interface {
	Dial() (Conn, error)
}

// DialFunc adapts a function to the Dialer interface.
type DialFunc func() (Conn, error)

// Dial implements Dialer.
func (f DialFunc) Dial() (Conn, error) { return f() }

// Config tunes the supervisor. The zero value selects the noted defaults.
type Config struct {
	// QueueDepth bounds each source's pending-batch queue; beyond it the
	// source's drop policy applies (default 64).
	QueueDepth int
	// DedupTTL is how long a seen route change suppresses copies from
	// other sources (default 10min; negative disables dedup entirely).
	DedupTTL time.Duration
	// DedupMax caps the seen-set size; the oldest identity is evicted
	// beyond it (default 65536).
	DedupMax int
	// BackoffBase is the first reconnect delay (default 250ms).
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff (default 30s).
	BackoffMax time.Duration
	// MaxRetries bounds consecutive failed connection attempts before a
	// source is declared dead (0 = retry forever).
	MaxRetries int
	// Synchronous makes in-process sources (AddSource) deliver inline on
	// the publisher's goroutine — no queue, no supervisor goroutines.
	// The virtual-time experiments need this: an event's consequences
	// must be in place when the feed's publish returns. Dial sources are
	// unaffected.
	Synchronous bool
	// Seed seeds the backoff jitter (0 → 1); tests pin it for
	// reproducible schedules.
	Seed int64
	// AutoWiden closes coverage holes left by dead sources: when a source
	// reaches StateDead, every surviving source whose filter does not
	// already cover the dead source's watched prefixes has them merged
	// into its own filter. In-process sources are re-subscribed with the
	// widened filter immediately; dial sources are bounced so the redial
	// picks it up (their dialers must consult EffectiveFilter). Sources
	// whose filter the supervisor does not know (dial sources without a
	// Covers declaration) neither contribute a hole nor widen.
	AutoWiden bool
	// OnHealth, when non-nil, is invoked on every source lifecycle
	// transition (connecting→healthy, healthy→degraded, …). It runs on
	// the source's own goroutine and must not block or call back into the
	// supervisor; operators use it to surface degraded/dead sources as
	// alerts rather than just metrics.
	OnHealth func(HealthTransition)
}

// HealthTransition is one source lifecycle state change.
type HealthTransition struct {
	// ID and Name identify the source.
	ID   SourceID
	Name string
	// From and To are the states before and after the transition.
	From, To State
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DedupTTL == 0 {
		c.DedupTTL = 10 * time.Minute
	}
	if c.DedupMax <= 0 {
		c.DedupMax = 1 << 16
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 250 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// SourceID identifies a supervised source; Remove detaches it.
type SourceID int

// Supervisor fans N feed sources into one delivery function (typically
// core.Pipeline.Submit, or SubmitWait in synchronous trials). It is safe
// for concurrent use.
type Supervisor struct {
	deliver func([]feedtypes.Event)
	cfg     Config

	dedup *dedupCache // nil when disabled

	// pool recycles the queued copies: every batch accepted into a source
	// queue is first deep-copied (events and AS paths) into a pooled
	// batch, because the producer's storage — a feed's pooled publish
	// batch, or a Conn's reused Recv buffer — is only valid for the
	// duration of the callback. The forwarder releases each copy after
	// delivery, so at steady state the fan-in path allocates nothing.
	pool *feedtypes.BatchPool

	rngMu sync.Mutex
	rng   *rand.Rand

	mu      sync.Mutex
	sources map[SourceID]*source
	nextID  SourceID
	closed  bool
	wg      sync.WaitGroup
}

// New builds a supervisor delivering into deliver. deliver is called from
// per-source goroutines (or inline from publishers in Synchronous mode)
// and must be safe for concurrent use; the pipeline's Submit/SubmitWait
// both are. The slice passed to deliver is only valid for the duration of
// the call — the supervisor reuses its buffers — so a deliver that needs
// the events afterwards must copy them (the pipeline does).
func New(deliver func([]feedtypes.Event), cfg Config) *Supervisor {
	cfg = cfg.withDefaults()
	s := &Supervisor{
		deliver: deliver,
		cfg:     cfg,
		pool:    feedtypes.NewBatchPool(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		sources: make(map[SourceID]*source),
	}
	if cfg.DedupTTL > 0 {
		s.dedup = newDedupCache(cfg.DedupTTL, cfg.DedupMax)
	}
	return s
}

// source is one supervised feed connection or in-process subscription.
type source struct {
	id   SourceID
	name string

	state atomic.Uint32

	// stop is closed exactly once when the source is removed or the
	// supervisor closes; it interrupts backoff sleeps and Recv loops.
	stop     chan struct{}
	stopOnce sync.Once

	// kick, when signalled, makes the dial loop skip its next backoff:
	// Bounce uses it so a deliberate redial (filter change) does not pay
	// an outage's penalty.
	kick chan struct{}

	// onHealth mirrors Config.OnHealth; setState dispatches transitions.
	onHealth func(HealthTransition)

	// blocking switches the enqueue policy from drop-newest to blocking —
	// for replay sources, whose "transport" can be flow-controlled.
	blocking bool

	// limit is the optional per-source token bucket (RateLimit). Only
	// the forwarder touches it, so it needs no lock.
	limit *tokenBucket

	// connMu guards the live connection so Remove/Close can unblock a
	// pending Recv.
	connMu sync.Mutex
	conn   Conn

	// cancel detaches an in-process subscription (nil for dial sources).
	cancel func()

	// feed is the in-process source being supervised (nil for dial
	// sources); auto-widening re-subscribes through it.
	feed feedtypes.Source
	// eff is the source's effective filter: the base subscription filter
	// (AddSource's, or a dial source's Covers declaration) plus any
	// coverage widened in from dead siblings. hasFilter marks it known.
	// Both are guarded by the supervisor's mu once registered.
	eff       feedtypes.Filter
	hasFilter bool

	// qmu guards qclosed for producers that outlive their cancel call
	// (hub callbacks may still be in flight when Remove returns), and
	// serializes those callbacks into the ring's single logical producer.
	qmu     sync.Mutex
	qclosed bool
	// queue is an SPSC ring of pooled batch copies; the forwarder is its
	// only consumer and releases each batch after delivery.
	queue *ring.Ring[*feedtypes.Batch]

	events, batches, dedupHits, drops, reconnects, rateShed stats.Counter
	latency                                                 *stats.Histogram
}

func (src *source) setState(st State) {
	was := State(src.state.Swap(uint32(st)))
	if was != st && src.onHealth != nil {
		src.onHealth(HealthTransition{ID: src.id, Name: src.name, From: was, To: st})
	}
}

// State reports the source's current lifecycle state.
func (src *source) getState() State { return State(src.state.Load()) }

// SourceOption customizes one source.
type SourceOption func(*source)

// Blocking makes the source's enqueue wait for queue space instead of
// dropping — correct for replay sources (MRT archives, captured batches)
// where losing events would falsify the replay and the producer can
// simply be paused. Live network sources should keep the default drop
// policy: stalling their reader would push backpressure into the remote
// server's slow-client handling instead. Only honored for dial sources.
func Blocking() SourceOption {
	return func(src *source) { src.blocking = true }
}

// RateLimit caps the source's delivery rate at eventsPerSec with a token
// bucket, de-prioritizing it relative to its siblings: a chatty or
// low-value feed can be pinned below the pipeline's capacity so it can
// never crowd out higher-priority sources. Blocking sources are paced
// (the forwarder waits for tokens, pushing backpressure into the
// source's flow-controlled queue); drop-policy sources shed over-limit
// batches, counted in the RateShed snapshot field. The burst allowance
// is two full receive batches, so a coalesced batch always fits and a
// quiet source keeps its low latency. Non-positive rates are ignored.
func RateLimit(eventsPerSec int) SourceOption {
	return func(src *source) {
		if eventsPerSec <= 0 {
			return
		}
		const burst = 2 * maxRecvBatch
		src.limit = &tokenBucket{rate: float64(eventsPerSec), burst: burst, tokens: burst}
	}
}

// Covers declares the filter a dial source's connections subscribe with.
// The supervisor cannot see a dialer's server-side subscription, so this
// is what the auto-widen bookkeeping (Config.AutoWiden) works from: it
// defines both the hole the source leaves behind when it dies and the
// base the survivors widen from. Dialers of covered sources should read
// EffectiveFilter at Dial time so a post-widen bounce reconnects with the
// merged filter. In-process sources get this automatically from their
// AddSource filter.
func Covers(f feedtypes.Filter) SourceOption {
	return func(src *source) {
		src.eff = f
		src.eff.Prefixes = append([]prefix.Prefix(nil), f.Prefixes...)
		src.hasFilter = true
	}
}

// tokenBucket is a per-source rate limiter. Only the source's forwarder
// goroutine touches it, so it needs no synchronization.
type tokenBucket struct {
	rate   float64 // tokens (events) added per second
	burst  float64 // cap on accumulated tokens
	tokens float64
	last   time.Time
}

// refill credits tokens for the time elapsed since the last call.
func (tb *tokenBucket) refill(now time.Time) {
	if !tb.last.IsZero() {
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
}

// admit decides whether an n-event batch may be delivered now. For a
// blocking source it always returns true, first sleeping (interruptible
// by stop, so Close still drains promptly) until the bucket covers the
// debt; for a drop-policy source it returns false when the bucket lacks
// n tokens and the batch should be shed.
func (src *source) admit(n int) bool {
	tb := src.limit
	tb.refill(time.Now())
	if src.blocking {
		tb.tokens -= float64(n)
		if tb.tokens < 0 {
			wait := time.Duration(-tb.tokens / tb.rate * float64(time.Second))
			if src.sleepStop(wait) {
				tb.refill(time.Now())
			} else {
				// Stopping: deliver without pacing so the queue drains fast.
				tb.tokens = 0
			}
		}
		return true
	}
	if tb.tokens < float64(n) {
		return false
	}
	tb.tokens -= float64(n)
	return true
}

// sleepStop waits d unless the source is stopped first. Unlike sleep it
// ignores kicks: a Bounce must not consume the kick the dial loop relies
// on, and pacing is not a backoff to be skipped.
func (src *source) sleepStop(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-src.stop:
		return false
	case <-t.C:
		return true
	}
}

func (s *Supervisor) newSource(name string) *source {
	src := &source{
		name:     name,
		stop:     make(chan struct{}),
		kick:     make(chan struct{}, 1),
		queue:    ring.New[*feedtypes.Batch](s.cfg.QueueDepth),
		latency:  stats.NewHistogram(),
		onHealth: s.cfg.OnHealth,
	}
	if s.cfg.AutoWiden {
		// Every death — retry exhaustion, Remove, a replay source's stop —
		// triggers the coverage-hole check; widenFrom itself ignores
		// supervisor shutdown. Runs before the user's OnHealth so an
		// operator notified of the death already sees the widened state.
		user := src.onHealth
		src.onHealth = func(tr HealthTransition) {
			if tr.To == StateDead {
				s.widenFrom(src)
			}
			if user != nil {
				user(tr)
			}
		}
	}
	return src
}

// widenFrom closes the coverage hole a dead source leaves: every
// surviving source with a known filter absorbs the dead source's watched
// prefixes. In-process survivors are re-subscribed with the widened
// filter under the supervisor lock (events published in the gap are
// missed exactly as across any reconnect); dial survivors are bounced
// after the lock is released so their next Dial reads EffectiveFilter.
func (s *Supervisor) widenFrom(dead *source) {
	s.mu.Lock()
	if s.closed || !dead.hasFilter {
		s.mu.Unlock()
		return
	}
	hole := dead.eff
	var bounce []SourceID
	for _, src := range s.sources {
		if src == dead || !src.hasFilter || src.getState().Terminal() {
			continue
		}
		if !widenFilter(&src.eff, hole) {
			continue // already covers the hole
		}
		if src.cancel != nil && src.feed != nil {
			src.cancel()
			f := src.eff
			f.Prefixes = append([]prefix.Prefix(nil), f.Prefixes...)
			sub := src
			if s.cfg.Synchronous {
				src.cancel = subscribeBatches(src.feed, f, func(batch []feedtypes.Event) {
					s.deliverBatch(sub, batch)
				})
			} else {
				src.cancel = subscribeBatches(src.feed, f, func(batch []feedtypes.Event) {
					s.enqueueGuarded(sub, batch)
				})
			}
		} else if src.cancel == nil {
			bounce = append(bounce, src.id)
		}
	}
	s.mu.Unlock()
	for _, id := range bounce {
		s.Bounce(id)
	}
}

// widenFilter merges hole into dst, reporting whether dst changed. A
// filter that already matches everything never changes; a match-all hole
// turns dst into match-all.
func widenFilter(dst *feedtypes.Filter, hole feedtypes.Filter) bool {
	if dst.MatchAll() {
		return false
	}
	if hole.MatchAll() {
		dst.Prefixes = nil
		return true
	}
	changed := false
	for _, p := range hole.Prefixes {
		covered := false
		for _, w := range dst.Prefixes {
			if w == p ||
				(dst.MoreSpecific && w.Contains(p)) ||
				(dst.LessSpecific && p.Contains(w)) {
				covered = true
				break
			}
		}
		if !covered {
			dst.Prefixes = append(dst.Prefixes, p)
			changed = true
		}
	}
	if hole.MoreSpecific && !dst.MoreSpecific {
		dst.MoreSpecific = true
		changed = true
	}
	if hole.LessSpecific && !dst.LessSpecific {
		dst.LessSpecific = true
		changed = true
	}
	return changed
}

// EffectiveFilter returns a source's current filter: its base plus any
// coverage widened in from dead siblings (Config.AutoWiden). The second
// result is false for unknown sources and for dial sources that never
// declared Covers. Dialers serving a covered source should build their
// subscription from this at Dial time.
func (s *Supervisor) EffectiveFilter(id SourceID) (feedtypes.Filter, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	src, ok := s.sources[id]
	if !ok || !src.hasFilter {
		return feedtypes.Filter{}, false
	}
	f := src.eff
	f.Prefixes = append([]prefix.Prefix(nil), f.Prefixes...)
	return f, true
}

// register assigns an id and installs the source; reports false when the
// supervisor is closed. Must be called with s.mu held.
func (s *Supervisor) registerLocked(src *source, goroutines int) bool {
	if s.closed {
		return false
	}
	src.id = s.nextID
	s.nextID++
	s.sources[src.id] = src
	s.wg.Add(goroutines)
	return true
}

// AddDialer supervises a dial-based source: the supervisor dials, reads
// batches, redials on failure with exponential backoff and jitter, and
// feeds the source's bounded queue. Returns -1 if the supervisor is
// already closed.
func (s *Supervisor) AddDialer(name string, d Dialer, opts ...SourceOption) SourceID {
	src := s.newSource(name)
	for _, o := range opts {
		o(src)
	}
	s.mu.Lock()
	ok := s.registerLocked(src, 2)
	s.mu.Unlock()
	if !ok {
		return -1
	}
	go s.runDial(src, d)
	go s.forward(src)
	return src.id
}

// AddSource supervises an in-process feed (anything implementing
// feedtypes.Source; batch-capable sources are subscribed batch-wise).
// In Synchronous mode delivery happens inline on the publisher's
// goroutine; otherwise batches flow through the source's bounded queue
// like a dial source's. Returns -1 if the supervisor is already closed.
//
// The subscription is made (and src.cancel assigned) under the
// supervisor lock, before a concurrent Close/Remove can observe the
// source — otherwise they could see a nil cancel and leave the
// subscription attached (and the forward goroutine waiting) forever.
func (s *Supervisor) AddSource(name string, feed feedtypes.Source, f feedtypes.Filter) SourceID {
	src := s.newSource(name)
	src.feed = feed
	src.eff = f
	src.eff.Prefixes = append([]prefix.Prefix(nil), f.Prefixes...)
	src.hasFilter = true
	s.mu.Lock()
	if s.cfg.Synchronous {
		if !s.registerLocked(src, 0) {
			s.mu.Unlock()
			return -1
		}
		src.setState(StateHealthy)
		src.cancel = subscribeBatches(feed, f, func(batch []feedtypes.Event) {
			s.deliverBatch(src, batch)
		})
		s.mu.Unlock()
		return src.id
	}
	if !s.registerLocked(src, 1) {
		s.mu.Unlock()
		return -1
	}
	src.setState(StateHealthy)
	src.cancel = subscribeBatches(feed, f, func(batch []feedtypes.Event) {
		s.enqueueGuarded(src, batch)
	})
	s.mu.Unlock()
	go s.forward(src)
	return src.id
}

// subscribeBatches attaches fn to feed at batch granularity, adapting
// per-event sources.
func subscribeBatches(feed feedtypes.Source, f feedtypes.Filter, fn func([]feedtypes.Event)) func() {
	if bs, ok := feed.(feedtypes.BatchSource); ok {
		return bs.SubscribeBatch(f, fn)
	}
	return feed.Subscribe(f, func(ev feedtypes.Event) { fn([]feedtypes.Event{ev}) })
}

// Bounce forces a dial source to drop its connection and redial
// immediately, skipping the backoff schedule. Live reconfiguration uses
// it: a dialer that captures its filter at Dial time (server-side
// subscriptions like RIS, or client-side filters bound per connection
// like BGPmon) picks up the new filter on the redial. Already-queued
// batches still drain; events the remote emits during the redial window
// are missed from this source exactly as they would be across any
// reconnect — the cross-source dedup's first-wins semantics mean a
// sibling source covering the same vantage points fills the gap.
// In-process and unknown sources are no-ops.
func (s *Supervisor) Bounce(id SourceID) {
	s.mu.Lock()
	src, ok := s.sources[id]
	s.mu.Unlock()
	if !ok || src.cancel != nil {
		return
	}
	select {
	case src.kick <- struct{}{}:
	default: // a kick is already pending
	}
	src.connMu.Lock()
	c := src.conn
	src.connMu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Remove hot-removes a source: its connection is closed (or subscription
// cancelled), queued batches still drain, and it disappears from future
// snapshots. Unknown ids are no-ops.
func (s *Supervisor) Remove(id SourceID) {
	s.mu.Lock()
	src, ok := s.sources[id]
	if ok {
		delete(s.sources, id)
	}
	s.mu.Unlock()
	if ok {
		s.stopSource(src)
	}
}

// stopSource signals the source's goroutines and unblocks anything
// pending. Idempotent.
func (s *Supervisor) stopSource(src *source) {
	src.stopOnce.Do(func() { close(src.stop) })
	if src.cancel != nil {
		// In-process source: detach from the hub, then retire the queue.
		// Publishes already in flight are absorbed by the qclosed guard.
		src.cancel()
		src.closeQueue()
		src.setState(StateDead)
		return
	}
	// Dial source: closing the live conn unblocks Recv; the reader
	// goroutine observes stop and retires the queue itself.
	src.connMu.Lock()
	c := src.conn
	src.connMu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Close stops every source, waits for queued batches to drain into the
// pipeline, and releases all supervisor goroutines. Sources stay visible
// in Snapshot with their final counters. Idempotent.
func (s *Supervisor) Close() {
	s.mu.Lock()
	s.closed = true
	srcs := make([]*source, 0, len(s.sources))
	for _, src := range s.sources {
		srcs = append(srcs, src)
	}
	s.mu.Unlock()
	for _, src := range srcs {
		s.stopSource(src)
	}
	s.wg.Wait()
}

// Wait blocks until every source's goroutines have exited. Meaningful for
// finite (replay) sources, which end with ErrDone; live sources only exit
// on Remove or Close.
func (s *Supervisor) Wait() { s.wg.Wait() }

// runDial is a dial source's connection loop: dial, stream, and on any
// failure back off exponentially (with jitter) before redialing. The
// backoff resets once a connection delivers, so a healthy reconnect does
// not inherit an outage's ceiling.
func (s *Supervisor) runDial(src *source, d Dialer) {
	defer s.wg.Done()
	defer src.closeQueue()
	backoff := s.cfg.BackoffBase
	fails := 0
	attempt := 0
	for {
		select {
		case <-src.stop:
			src.setState(StateDead)
			return
		default:
		}
		if attempt > 0 {
			src.reconnects.Inc()
		}
		attempt++
		src.setState(StateConnecting)
		conn, err := d.Dial()
		if err == nil {
			// Install under connMu, re-checking stop: a Remove/Close that
			// ran while Dial was in flight saw a nil conn and closed
			// nothing, so a connection installed blindly here would block
			// in Recv with nobody left to close it.
			src.connMu.Lock()
			select {
			case <-src.stop:
				src.connMu.Unlock()
				conn.Close()
				src.setState(StateDead)
				return
			default:
			}
			select {
			case <-src.kick:
				// A bounce arrived while this dial was in flight, so the
				// connection may have been established with a stale filter.
				// Drop it and redial: Dial reads its filter provider per
				// call, so the retry is guaranteed to see post-bounce state.
				src.connMu.Unlock()
				conn.Close()
				fails, backoff = 0, s.cfg.BackoffBase
				continue
			default:
			}
			src.conn = conn
			src.connMu.Unlock()
			src.setState(StateHealthy)
			var delivered bool
			delivered, err = s.stream(src, conn)
			src.connMu.Lock()
			src.conn = nil
			src.connMu.Unlock()
			conn.Close()
			if errors.Is(err, ErrDone) {
				src.setState(StateFinished)
				return
			}
			if delivered {
				// The connection was productive: the next outage starts
				// its backoff schedule from the base, not wherever the
				// previous outage left it.
				fails, backoff = 0, s.cfg.BackoffBase
			}
		}
		select {
		case <-src.stop:
			src.setState(StateDead)
			return
		default:
		}
		select {
		case <-src.kick:
			// Deliberate bounce (filter change): redial immediately and
			// don't let it count against the retry budget.
			fails, backoff = 0, s.cfg.BackoffBase
			continue
		default:
		}
		fails++
		if s.cfg.MaxRetries > 0 && fails >= s.cfg.MaxRetries {
			src.setState(StateDead)
			return
		}
		src.setState(StateDegraded)
		if !src.sleep(s.jitter(backoff)) {
			src.setState(StateDead)
			return
		}
		if backoff *= 2; backoff > s.cfg.BackoffMax {
			backoff = s.cfg.BackoffMax
		}
	}
}

// stream drains one connection into the source queue until it errors,
// reporting whether it delivered anything.
func (s *Supervisor) stream(src *source, conn Conn) (delivered bool, err error) {
	for {
		batch, err := conn.Recv()
		if len(batch) > 0 {
			delivered = true
			s.enqueue(src, batch)
		}
		if err != nil {
			return delivered, err
		}
	}
}

// copyIn snapshots batch into a pooled batch the queue can own: the
// producer's storage (a Conn's reused Recv buffer, a feed's pooled
// publish batch) is only valid for the duration of the callback, and the
// queue outlives it. This copy is what fixes the old retained-batch bug:
// the queue used to hold the producer's slice itself, which a pooling
// producer would overwrite before the forwarder delivered it.
func (s *Supervisor) copyIn(batch []feedtypes.Event) *feedtypes.Batch {
	b := s.pool.Get()
	b.AppendEvents(batch)
	return b
}

// enqueue applies the source's queue policy. Only the dial reader calls
// it, so it never races with the reader's own closeQueue.
func (s *Supervisor) enqueue(src *source, batch []feedtypes.Event) {
	b := s.copyIn(batch)
	if src.blocking {
		// Push blocks for backpressure and only fails once the ring is
		// closed. The forwarder drains the ring until it is closed, and for
		// a dial source the ring is closed by this same goroutine (runDial's
		// defer), so a blocked Push always completes — a flow-controlled
		// replay loses nothing even across Remove/Close.
		if !src.queue.Push(b) {
			src.drops.Add(int64(len(batch)))
			b.Release()
		}
		return
	}
	if !src.queue.TryPush(b) {
		// Queue full: this source sheds its own load. Siblings and the
		// pipeline are unaffected.
		src.drops.Add(int64(len(batch)))
		b.Release()
	}
}

// enqueueGuarded is the in-process variant: hub callbacks may run
// concurrently with Remove (and with each other, when several publishers
// share a hub), so the closed check and the push are under one lock —
// which also makes the callbacks the ring's single logical producer.
func (s *Supervisor) enqueueGuarded(src *source, batch []feedtypes.Event) {
	src.qmu.Lock()
	defer src.qmu.Unlock()
	if src.qclosed {
		src.drops.Add(int64(len(batch)))
		return
	}
	b := s.copyIn(batch)
	if !src.queue.TryPush(b) {
		src.drops.Add(int64(len(batch)))
		b.Release()
	}
}

func (src *source) closeQueue() {
	src.qmu.Lock()
	if !src.qclosed {
		src.qclosed = true
		src.queue.Close()
	}
	src.qmu.Unlock()
}

// sleep waits d unless the source is stopped first. A Bounce during the
// wait (kick) ends it early: the backoff is deliberately skipped so a
// filter change reaches a degraded source as fast as a healthy one, and
// consuming the kick here keeps it from later dropping the fresh
// connection at install time.
func (src *source) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-src.stop:
		return false
	case <-src.kick:
		return true
	case <-t.C:
		return true
	}
}

// jitter spreads reconnect storms: d plus 0–50%.
func (s *Supervisor) jitter(d time.Duration) time.Duration {
	s.rngMu.Lock()
	f := s.rng.Float64()
	s.rngMu.Unlock()
	return d + time.Duration(f*0.5*float64(d))
}

// forward is a source's delivery loop: dedup, account, hand to the
// pipeline. It drains the queue fully after the source stops, so accepted
// batches are never lost on Remove/Close. The scratch buffer absorbs the
// dedup's copy-on-write without a per-batch allocation: the forwarder is
// the source's only delivery goroutine and deliver must not retain the
// slice, so the buffer can be reused immediately.
func (s *Supervisor) forward(src *source) {
	defer s.wg.Done()
	var scratch []feedtypes.Event
	for {
		b, ok := src.queue.Pop()
		if !ok {
			return
		}
		if src.limit != nil && !src.admit(len(b.Events)) {
			src.rateShed.Add(int64(len(b.Events)))
			b.Release()
			continue
		}
		scratch = s.deliverBatchBuf(src, b.Events, scratch)
		// The delivered slice must not be retained by deliver (the
		// pipeline deep-copies), so the pooled copy can be recycled now.
		b.Release()
	}
}

// deliverBatch runs the delivery path without buffer reuse — the inline
// (synchronous in-process) entry point, where concurrent publishers may
// share the source.
func (s *Supervisor) deliverBatch(src *source, batch []feedtypes.Event) {
	s.deliverBatchBuf(src, batch, nil)
}

// deliverBatchBuf dedups batch (reusing buf for the filtered copy when
// one is needed), accounts it, and hands it to deliver. It returns the
// scratch buffer for the caller to reuse.
func (s *Supervisor) deliverBatchBuf(src *source, batch []feedtypes.Event, buf []feedtypes.Event) []feedtypes.Event {
	if s.dedup != nil {
		out := s.dedup.filter(batch, &src.dedupHits, buf)
		if len(out) != len(batch) {
			buf = out // the filter copied into (and possibly grew) buf
		}
		batch = out
	}
	if len(batch) == 0 {
		return buf
	}
	for i := range batch {
		src.latency.Observe(batch[i].EmittedAt - batch[i].SeenAt)
	}
	src.events.Add(int64(len(batch)))
	src.batches.Inc()
	s.deliver(batch)
	return buf
}

// Snapshot reports every supervised source's counters plus the dedup
// cache occupancy.
func (s *Supervisor) Snapshot() stats.IngestSnapshot {
	s.mu.Lock()
	srcs := make([]*source, 0, len(s.sources))
	for _, src := range s.sources {
		srcs = append(srcs, src)
	}
	s.mu.Unlock()
	for i := 1; i < len(srcs); i++ { // insertion sort by id; N is small
		for j := i; j > 0 && srcs[j-1].id > srcs[j].id; j-- {
			srcs[j-1], srcs[j] = srcs[j], srcs[j-1]
		}
	}
	snap := stats.IngestSnapshot{DedupSize: -1}
	if s.dedup != nil {
		snap.DedupSize = s.dedup.size()
	}
	for _, src := range srcs {
		snap.Sources = append(snap.Sources, stats.IngestSourceSnapshot{
			ID:         int(src.id),
			Name:       src.name,
			State:      src.getState().String(),
			Events:     src.events.Load(),
			Batches:    src.batches.Load(),
			DedupHits:  src.dedupHits.Load(),
			Drops:      src.drops.Load(),
			RateShed:   src.rateShed.Load(),
			Reconnects: src.reconnects.Load(),
			QueueLen:   src.queue.Len(),
			QueueCap:   src.queue.Cap(),
			Latency:    src.latency.Snapshot(),
		})
	}
	return snap
}

// SourceState reports one source's lifecycle state (StateDead for unknown
// ids).
func (s *Supervisor) SourceState(id SourceID) State {
	s.mu.Lock()
	src, ok := s.sources[id]
	s.mu.Unlock()
	if !ok {
		return StateDead
	}
	return src.getState()
}

// --- cross-source dedup ---

// keyOf reduces a route change's identity — the vantage point, what
// changed (kind, prefix, path), and when the vantage point's route
// changed — to a 64-bit FNV-1a fingerprint. Source, collector and
// emission time are deliberately excluded: those differ between copies of
// the same change delivered by different feeds. Two distinct changes
// collide with probability ~2^-64; the fingerprint keeps the seen-set's
// per-copy cost to one cheap hash and one small-key map operation, which
// is what lets 8-source fan-in track single-source throughput
// (BenchmarkIngestFanIn).
func keyOf(ev *feedtypes.Event) uint64 {
	const (
		offset = 1469598103934665603
		prime  = 1099511628211
	)
	h := uint64(offset)
	h = (h ^ uint64(ev.VantagePoint)) * prime
	h = (h ^ uint64(ev.Kind)) * prime
	// The prefix folds in as its full dual-stack identity: 128 address bits
	// plus a family tag packed beside the length (prefix.FoldIdentity), so
	// a v4 prefix and the numerically identical v4-mapped v6 prefix
	// fingerprint differently.
	h = prefix.FoldIdentity(h, ev.Prefix)
	h = (h ^ uint64(ev.SeenAt)) * prime
	for _, as := range ev.Path {
		h = (h ^ uint64(as)) * prime
	}
	// Finalize so the low bits (shard index) depend on every field.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// dedupShards spreads the seen-set over independently locked shards so
// concurrent forwarders don't serialize on one mutex.
const dedupShards = 16

// dedupCache is the shared first-wins seen-set, sharded by fingerprint.
type dedupCache struct {
	shards [dedupShards]struct {
		mu  sync.Mutex
		set *ttlset.Set[uint64]
	}
}

func newDedupCache(ttl time.Duration, max int) *dedupCache {
	d := &dedupCache{}
	per := max / dedupShards
	if per < 1 {
		per = 1
	}
	for i := range d.shards {
		d.shards[i].set = ttlset.New[uint64](ttl, per)
	}
	return d
}

// add records one event's identity, reporting whether it was fresh.
func (d *dedupCache) add(ev *feedtypes.Event) bool {
	k := keyOf(ev)
	sh := &d.shards[k%dedupShards]
	sh.mu.Lock()
	fresh := sh.set.Add(k, ev.EmittedAt)
	sh.mu.Unlock()
	return fresh
}

// filter returns the events of batch not already seen, preserving order.
// Like feedtypes.FilterEvents it returns the batch unchanged (no copy)
// when everything is fresh — the common case once sources stop
// overlapping — and never mutates the shared input. When a copy is
// needed it appends into buf (which may be nil), so a caller owning a
// scratch buffer pays no allocation. hits is incremented once per
// suppressed event.
func (d *dedupCache) filter(batch []feedtypes.Event, hits *stats.Counter, buf []feedtypes.Event) []feedtypes.Event {
	n := 0
	for n < len(batch) && d.add(&batch[n]) {
		n++
	}
	if n == len(batch) {
		return batch
	}
	hits.Inc()
	out := append(buf[:0], batch[:n]...)
	for i := n + 1; i < len(batch); i++ {
		if d.add(&batch[i]) {
			out = append(out, batch[i])
		} else {
			hits.Inc()
		}
	}
	return out
}

func (d *dedupCache) size() int {
	total := 0
	for i := range d.shards {
		d.shards[i].mu.Lock()
		total += d.shards[i].set.Len()
		d.shards[i].mu.Unlock()
	}
	return total
}
