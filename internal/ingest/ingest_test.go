package ingest_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/ingest"
	"artemis/internal/prefix"
)

// hubSource names a feedtypes.Hub so it satisfies feedtypes.Source /
// BatchSource — the in-process feed shape the experiments use.
type hubSource struct {
	*feedtypes.Hub
	name string
}

func (h hubSource) Name() string { return h.name }

// fakeConn is a scriptable live connection: batches arrive on ch; closing
// ch simulates a connection loss, Close simulates a local teardown.
type fakeConn struct {
	ch        chan []feedtypes.Event
	done      chan struct{}
	closeOnce sync.Once
}

func newFakeConn() *fakeConn {
	return &fakeConn{ch: make(chan []feedtypes.Event, 16), done: make(chan struct{})}
}

func (c *fakeConn) Recv() ([]feedtypes.Event, error) {
	select {
	case b, ok := <-c.ch:
		if !ok {
			return nil, errors.New("connection lost")
		}
		return b, nil
	case <-c.done:
		return nil, errors.New("connection closed")
	}
}

func (c *fakeConn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	return nil
}

// flakyDialer fails a scripted number of dials before each success and
// hands out fakeConns.
type flakyDialer struct {
	mu       sync.Mutex
	failures int // remaining dials to fail
	dials    int
	conns    []*fakeConn
}

func (d *flakyDialer) Dial() (ingest.Conn, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dials++
	if d.failures > 0 {
		d.failures--
		return nil, errors.New("dial refused")
	}
	c := newFakeConn()
	d.conns = append(d.conns, c)
	return c, nil
}

func (d *flakyDialer) dialCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials
}

func (d *flakyDialer) lastConn() *fakeConn {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.conns) == 0 {
		return nil
	}
	return d.conns[len(d.conns)-1]
}

func (d *flakyDialer) setFailures(n int) {
	d.mu.Lock()
	d.failures = n
	d.mu.Unlock()
}

func ev(vp bgp.ASN, p string, at time.Duration, origin bgp.ASN) feedtypes.Event {
	return feedtypes.Event{
		Source: "fake", Collector: "c0", VantagePoint: vp,
		Kind: feedtypes.Announce, Prefix: prefix.MustParse(p),
		Path: []bgp.ASN{vp, 2000, origin}, SeenAt: at, EmittedAt: at,
	}
}

// collector is a thread-safe delivery target.
type collector struct {
	mu  sync.Mutex
	evs []feedtypes.Event
}

func (c *collector) deliver(batch []feedtypes.Event) {
	c.mu.Lock()
	// Deep-copy: the supervisor recycles the delivered batch (and its
	// events' Path arenas) as soon as deliver returns.
	for _, e := range batch {
		if len(e.Path) > 0 {
			e.Path = append([]bgp.ASN(nil), e.Path...)
		}
		c.evs = append(c.evs, e)
	}
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.evs)
}

func (c *collector) all() []feedtypes.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]feedtypes.Event(nil), c.evs...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestDialReconnectAfterConnectionLoss(t *testing.T) {
	var got collector
	sup := ingest.New(got.deliver, ingest.Config{BackoffBase: time.Millisecond, Seed: 7})
	defer sup.Close()

	d := &flakyDialer{failures: 2} // two refused dials before the first conn
	id := sup.AddDialer("flaky", d)
	waitFor(t, "first connection", func() bool { return d.lastConn() != nil })
	d.lastConn().ch <- []feedtypes.Event{ev(100, "10.0.0.0/24", time.Second, 666)}
	waitFor(t, "first delivery", func() bool { return got.count() == 1 })
	if st := sup.SourceState(id); st != ingest.StateHealthy {
		t.Fatalf("state after delivery = %v", st)
	}

	// Kill the connection; the supervisor must redial and resume.
	first := d.lastConn()
	d.setFailures(1)
	close(first.ch)
	waitFor(t, "reconnect", func() bool { return d.lastConn() != first })
	d.lastConn().ch <- []feedtypes.Event{ev(101, "10.0.1.0/24", 2*time.Second, 666)}
	waitFor(t, "delivery after reconnect", func() bool { return got.count() == 2 })

	snap := sup.Snapshot()
	if len(snap.Sources) != 1 {
		t.Fatalf("sources = %+v", snap.Sources)
	}
	s := snap.Sources[0]
	// 2 failed dials + 1 success + 1 failed + 1 success = 5 dials, 4 of
	// them beyond the first.
	if s.Reconnects != 4 {
		t.Fatalf("reconnects = %d, want 4 (dials=%d)", s.Reconnects, d.dialCount())
	}
	if s.Events != 2 || s.Drops != 0 {
		t.Fatalf("events=%d drops=%d", s.Events, s.Drops)
	}
}

func TestDialBackoffBoundsRetriesAndDies(t *testing.T) {
	var got collector
	base := 20 * time.Millisecond
	sup := ingest.New(got.deliver, ingest.Config{BackoffBase: base, MaxRetries: 3, Seed: 7})
	defer sup.Close()

	d := &flakyDialer{failures: 1 << 30} // never succeeds
	start := time.Now()
	id := sup.AddDialer("dead-end", d)
	waitFor(t, "source death", func() bool { return sup.SourceState(id) == ingest.StateDead })
	elapsed := time.Since(start)
	if n := d.dialCount(); n != 3 {
		t.Fatalf("dials = %d, want MaxRetries = 3", n)
	}
	// Two sleeps happen between the three dials: at least base + 2*base
	// even without jitter.
	if elapsed < 3*base {
		t.Fatalf("died after %v; backoff sleeps should enforce >= %v", elapsed, 3*base)
	}
	if snap := sup.Snapshot(); snap.Sources[0].State != "dead" {
		t.Fatalf("snapshot state = %q", snap.Sources[0].State)
	}
}

func TestFlappingSourceDoesNotStallSibling(t *testing.T) {
	var got collector
	sup := ingest.New(got.deliver, ingest.Config{BackoffBase: time.Millisecond, Seed: 3})
	defer sup.Close()

	flap := &flakyDialer{}
	sup.AddDialer("flapper", flap)
	steady := &flakyDialer{}
	sup.AddDialer("steady", steady)
	waitFor(t, "both connected", func() bool { return flap.lastConn() != nil && steady.lastConn() != nil })

	// Kill the flapper's connection over and over while the steady source
	// delivers; every steady event must arrive.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var killed *fakeConn
		for i := 0; i < 20; i++ {
			if c := flap.lastConn(); c != nil && c != killed {
				close(c.ch)
				killed = c
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	for i := 0; i < 50; i++ {
		steady.lastConn().ch <- []feedtypes.Event{ev(bgp.ASN(100+i), "10.0.0.0/24", time.Duration(i)*time.Millisecond, 666)}
	}
	waitFor(t, "steady deliveries", func() bool { return got.count() == 50 })
	<-done
}

func TestDropPolicyShedsWhenQueueFull(t *testing.T) {
	release := make(chan struct{})
	var delivered atomic.Int64
	deliver := func(batch []feedtypes.Event) {
		<-release // wedge the pipeline
		delivered.Add(int64(len(batch)))
	}
	sup := ingest.New(deliver, ingest.Config{QueueDepth: 2, BackoffBase: time.Millisecond, Seed: 1})
	d := &flakyDialer{}
	id := sup.AddDialer("hot", d)
	waitFor(t, "connection", func() bool { return d.lastConn() != nil })

	const sent = 32
	for i := 0; i < sent; i++ {
		d.lastConn().ch <- []feedtypes.Event{ev(100, "10.0.0.0/24", time.Duration(i)*time.Millisecond, 666)}
	}
	// The reader must shed: queue holds 2, one batch wedged in deliver.
	waitFor(t, "drops", func() bool {
		snap := sup.Snapshot()
		return len(snap.Sources) == 1 && snap.Sources[0].Drops > 0
	})
	if st := sup.SourceState(id); st != ingest.StateHealthy {
		t.Fatalf("shedding source should stay healthy, got %v", st)
	}
	close(release)
	// Every batch the reader received ends up accounted as delivered or
	// dropped; wait out the conn buffer before closing.
	waitFor(t, "full accounting", func() bool {
		s := sup.Snapshot().Sources[0]
		return s.Events+s.Drops+s.DedupHits == sent
	})
	sup.Close()
	snap := sup.Snapshot()
	s := snap.Sources[0]
	if delivered.Load() != s.Events {
		t.Fatalf("delivered %d != accounted events %d", delivered.Load(), s.Events)
	}
}

func TestCloseDuringInFlightBatches(t *testing.T) {
	var got collector
	sup := ingest.New(got.deliver, ingest.Config{QueueDepth: 4, BackoffBase: time.Millisecond, Seed: 1})
	d := &flakyDialer{}
	sup.AddDialer("busy", d)
	waitFor(t, "connection", func() bool { return d.lastConn() != nil })

	stop := make(chan struct{})
	var produced atomic.Int64
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			select {
			case d.lastConn().ch <- []feedtypes.Event{ev(100, "10.0.0.0/24", time.Duration(i)*time.Millisecond, 666)}:
				produced.Add(1)
			case <-stop:
				return
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	sup.Close() // must not race with the in-flight producer or panic
	close(stop)
	snap := sup.Snapshot()
	s := snap.Sources[0]
	if s.State != "dead" {
		t.Fatalf("state after close = %q", s.State)
	}
	if int64(got.count()) != s.Events {
		t.Fatalf("delivered %d != accounted %d", got.count(), s.Events)
	}
}

func TestSynchronousDedupFirstWins(t *testing.T) {
	var got collector
	sup := ingest.New(got.deliver, ingest.Config{Synchronous: true, DedupTTL: time.Minute})
	defer sup.Close()

	a := hubSource{feedtypes.NewHub(), "a"}
	b := hubSource{feedtypes.NewHub(), "b"}
	idA := sup.AddSource("a", a, feedtypes.Filter{})
	idB := sup.AddSource("b", b, feedtypes.Filter{})

	// The same route change observed via both sources: a's copy lands
	// first and must win; b's is suppressed.
	change := ev(100, "10.0.0.0/24", time.Second, 666)
	viaA, viaB := change, change
	viaA.Source, viaA.EmittedAt = "a", change.SeenAt+10*time.Second
	viaB.Source, viaB.EmittedAt = "b", change.SeenAt+20*time.Second
	a.Publish([]feedtypes.Event{viaA})
	b.Publish([]feedtypes.Event{viaB})

	if got.count() != 1 || got.all()[0].Source != "a" {
		t.Fatalf("delivered = %+v, want exactly a's copy", got.all())
	}
	snap := sup.Snapshot()
	for _, s := range snap.Sources {
		switch ingest.SourceID(s.ID) {
		case idA:
			if s.Events != 1 || s.DedupHits != 0 {
				t.Fatalf("a: %+v", s)
			}
		case idB:
			if s.Events != 0 || s.DedupHits != 1 {
				t.Fatalf("b: %+v", s)
			}
		}
	}

	// A genuinely different change (new SeenAt) from b passes.
	later := ev(100, "10.0.0.0/24", 2*time.Second, 666)
	later.Source = "b"
	b.Publish([]feedtypes.Event{later})
	if got.count() != 2 {
		t.Fatalf("new change suppressed: %+v", got.all())
	}

	// Past the dedup TTL the original identity passes again.
	stale := viaB
	stale.EmittedAt = viaB.EmittedAt + 2*time.Minute
	b.Publish([]feedtypes.Event{stale})
	if got.count() != 3 {
		t.Fatalf("expired identity still suppressed: %+v", got.all())
	}
}

func TestHotAddRemove(t *testing.T) {
	var got collector
	sup := ingest.New(got.deliver, ingest.Config{Synchronous: true})
	defer sup.Close()

	h := hubSource{feedtypes.NewHub(), "h"}
	id := sup.AddSource("h", h, feedtypes.Filter{})
	h.Publish([]feedtypes.Event{ev(100, "10.0.0.0/24", time.Second, 666)})
	if got.count() != 1 {
		t.Fatal("no delivery before remove")
	}
	sup.Remove(id)
	h.Publish([]feedtypes.Event{ev(100, "10.0.1.0/24", 2*time.Second, 666)})
	if got.count() != 1 {
		t.Fatal("removed source still delivering")
	}
	if len(sup.Snapshot().Sources) != 0 {
		t.Fatalf("snapshot still lists removed source: %+v", sup.Snapshot().Sources)
	}
	// Hot add after remove keeps working, with a fresh id.
	h2 := hubSource{feedtypes.NewHub(), "h2"}
	id2 := sup.AddSource("h2", h2, feedtypes.Filter{})
	if id2 == id {
		t.Fatal("source id reused")
	}
	h2.Publish([]feedtypes.Event{ev(101, "10.0.2.0/24", 3*time.Second, 666)})
	if got.count() != 2 {
		t.Fatal("hot-added source not delivering")
	}
}

func TestRemoveDialSourceUnblocksRecv(t *testing.T) {
	var got collector
	sup := ingest.New(got.deliver, ingest.Config{BackoffBase: time.Millisecond, Seed: 1})
	defer sup.Close()
	d := &flakyDialer{}
	id := sup.AddDialer("gone", d)
	waitFor(t, "connection", func() bool { return d.lastConn() != nil })
	sup.Remove(id) // Recv is blocked; Remove must unblock and kill it
	waitFor(t, "removal", func() bool { return len(sup.Snapshot().Sources) == 0 })
	sup.Wait() // both goroutines must exit
}

func TestBlockingReplayDeliversEverythingInOrder(t *testing.T) {
	var got collector
	slow := func(batch []feedtypes.Event) {
		time.Sleep(100 * time.Microsecond)
		got.deliver(batch)
	}
	sup := ingest.New(slow, ingest.Config{QueueDepth: 2, DedupTTL: -1})
	const n = 200
	batches := make([][]feedtypes.Event, n)
	for i := range batches {
		batches[i] = []feedtypes.Event{ev(100, "10.0.0.0/24", time.Duration(i)*time.Millisecond, 666)}
	}
	id := sup.AddDialer("replay", ingest.ReplayDialer(batches), ingest.Blocking())
	sup.Wait()
	defer sup.Close()
	if st := sup.SourceState(id); st != ingest.StateFinished {
		t.Fatalf("replay source state = %v, want finished after ErrDone", st)
	}
	all := got.all()
	if len(all) != n {
		t.Fatalf("delivered %d events, want %d (drops forbidden for blocking replay)", len(all), n)
	}
	for i := range all {
		if all[i].SeenAt != time.Duration(i)*time.Millisecond {
			t.Fatalf("order broken at %d: %v", i, all[i].SeenAt)
		}
	}
	if s := sup.Snapshot().Sources[0]; s.Drops != 0 {
		t.Fatalf("blocking replay dropped %d events", s.Drops)
	}
}

func TestAddAfterCloseRejected(t *testing.T) {
	sup := ingest.New(func([]feedtypes.Event) {}, ingest.Config{})
	sup.Close()
	if id := sup.AddDialer("late", &flakyDialer{}); id != -1 {
		t.Fatalf("AddDialer after Close = %v, want -1", id)
	}
	if id := sup.AddSource("late", hubSource{feedtypes.NewHub(), "x"}, feedtypes.Filter{}); id != -1 {
		t.Fatalf("AddSource after Close = %v, want -1", id)
	}
}

func TestSnapshotNamesAndIDsStable(t *testing.T) {
	sup := ingest.New(func([]feedtypes.Event) {}, ingest.Config{Synchronous: true})
	defer sup.Close()
	var ids []ingest.SourceID
	for i := 0; i < 4; i++ {
		ids = append(ids, sup.AddSource(fmt.Sprintf("s%d", i), hubSource{feedtypes.NewHub(), "x"}, feedtypes.Filter{}))
	}
	snap := sup.Snapshot()
	if len(snap.Sources) != 4 {
		t.Fatalf("sources = %d", len(snap.Sources))
	}
	for i, s := range snap.Sources {
		if s.Name != fmt.Sprintf("s%d", i) || ingest.SourceID(s.ID) != ids[i] {
			t.Fatalf("snapshot order broken: %+v", snap.Sources)
		}
	}
}

// blockingDialer parks inside Dial until released — the window in which
// a Close/Remove used to leak the freshly dialed connection.
type blockingDialer struct {
	entered chan struct{}
	release chan struct{}
	conn    *fakeConn
}

func (d *blockingDialer) Dial() (ingest.Conn, error) {
	close(d.entered)
	<-d.release
	return d.conn, nil
}

func TestCloseDuringInFlightDial(t *testing.T) {
	sup := ingest.New(func([]feedtypes.Event) {}, ingest.Config{BackoffBase: time.Millisecond, Seed: 1})
	d := &blockingDialer{entered: make(chan struct{}), release: make(chan struct{}), conn: newFakeConn()}
	sup.AddDialer("slow-dial", d)
	<-d.entered // the reader is parked inside Dial

	closed := make(chan struct{})
	go func() {
		sup.Close() // must not hang once the dial completes
		close(closed)
	}()
	// Give Close a moment to pass its conn==nil window, then let the dial
	// return a live connection; the supervisor must notice it is stopped
	// and close that connection instead of blocking in Recv forever.
	time.Sleep(5 * time.Millisecond)
	close(d.release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung: connection dialed during shutdown was never torn down")
	}
	select {
	case <-d.conn.done:
	default:
		t.Fatal("the connection handed out mid-shutdown was not closed")
	}
}

func TestConcurrentAddSourceAndClose(t *testing.T) {
	for i := 0; i < 100; i++ {
		sup := ingest.New(func([]feedtypes.Event) {}, ingest.Config{})
		h := hubSource{feedtypes.NewHub(), "h"}
		added := make(chan struct{})
		go func() {
			defer close(added)
			for j := 0; j < 8; j++ {
				sup.AddSource(fmt.Sprintf("s%d", j), h, feedtypes.Filter{})
			}
		}()
		sup.Close()
		<-added
		// Whatever made it in before Close must be fully detached: a
		// publish after Close can at most be counted as a drop, never
		// hang or deliver.
		h.Publish([]feedtypes.Event{ev(100, "10.0.0.0/24", time.Second, 666)})
		sup.Close() // idempotent
	}
}
