package ingest_test

import (
	"sync"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/bgp/bmp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/ingest"
	"artemis/internal/prefix"
)

func bmpTestPeer(addr string, as bgp.ASN, ts time.Time) bmp.PerPeerHeader {
	return bmp.PerPeerHeader{
		Addr:      prefix.MustParseAddr(addr),
		AS:        as,
		BGPID:     0x0a000001,
		Timestamp: ts,
	}
}

func bmpPeerUp(peer bmp.PerPeerHeader) *bmp.PeerUp {
	return &bmp.PeerUp{
		Peer:       peer,
		LocalAddr:  prefix.MustParseAddr("192.0.2.1"),
		LocalPort:  179,
		RemotePort: 30000,
		SentOpen:   bgp.NewOpen(64512, 90, prefix.MustParseAddr("192.0.2.1")),
		RecvOpen:   bgp.NewOpen(peer.AS, 90, prefix.MustParseAddr("192.0.2.99")),
	}
}

func bmpAnnounce(peer bmp.PerPeerHeader, path []bgp.ASN, prefixes ...string) *bmp.RouteMonitoring {
	u := &bgp.Update{
		Attrs: []bgp.PathAttr{
			&bgp.OriginAttr{Value: bgp.OriginIGP},
			bgp.NewASPath(path),
			&bgp.NextHopAttr{Addr: prefix.MustParseAddr("192.0.2.1")},
		},
	}
	for _, p := range prefixes {
		u.NLRI = append(u.NLRI, prefix.MustParse(p))
	}
	return &bmp.RouteMonitoring{Peer: peer, Update: u}
}

// peerLog records BMPPeerEvent callbacks.
type peerLog struct {
	mu  sync.Mutex
	evs []ingest.BMPPeerEvent
}

func (l *peerLog) observe(ev ingest.BMPPeerEvent) {
	l.mu.Lock()
	l.evs = append(l.evs, ev)
	l.mu.Unlock()
}

func (l *peerLog) all() []ingest.BMPPeerEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]ingest.BMPPeerEvent(nil), l.evs...)
}

// TestBMPDialerEndToEnd drives a full station session against the sim
// exporter: Initiation names the collector, Peer Up replay precedes
// route monitoring, the client-side filter discards unwatched prefixes,
// and losing the last monitored peer degrades the source (which then
// redials and finds the session again).
func TestBMPDialerEndToEnd(t *testing.T) {
	exp, err := bmp.NewExporter("127.0.0.1:0", "rtr-test", bgp.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	ts := time.Unix(1466000100, 0).UTC() // 100s after the sim epoch
	peer := bmpTestPeer("192.0.2.10", 65010, ts)
	exp.PeerUp(bmpPeerUp(peer))

	var got collector
	var peers peerLog
	sup := ingest.New(got.deliver, ingest.Config{DedupTTL: -1, BackoffBase: 5 * time.Millisecond, Seed: 3})
	defer sup.Close()
	watch := feedtypes.Filter{Prefixes: []prefix.Prefix{prefix.MustParse("10.0.0.0/23")}, MoreSpecific: true}
	id := sup.AddDialer("bmp", ingest.BMPDialerConfig(exp.Addr(), ingest.BMPConfig{
		Filter: ingest.StaticFilter(watch),
		OnPeer: peers.observe,
	}))

	waitFor(t, "peer up observed", func() bool {
		evs := peers.all()
		return len(evs) >= 1 && evs[0].Up
	})
	if up := peers.all()[0]; up.Collector != "rtr-test" || up.AS != 65010 {
		t.Fatalf("peer up = %+v", up)
	}

	// One update carrying a watched sub-prefix and an unwatched prefix:
	// only the watched one passes the station's filter.
	exp.Publish(bmpAnnounce(peer, []bgp.ASN{65010, 65002, 64666}, "10.0.0.0/24", "172.16.0.0/16"))
	waitFor(t, "filtered delivery", func() bool { return got.count() == 1 })
	ev := got.all()[0]
	if ev.Source != ingest.BMPSourceName || ev.Collector != "rtr-test" {
		t.Fatalf("identity: %+v", ev)
	}
	if ev.VantagePoint != 65010 || ev.Prefix != prefix.MustParse("10.0.0.0/24") {
		t.Fatalf("content: %+v", ev)
	}
	if len(ev.Path) != 3 || ev.Path[0] != 65010 || ev.Path[2] != 64666 {
		t.Fatalf("path: %+v", ev.Path)
	}
	// The router's timestamp maps onto the sim clock like MRT replay.
	if ev.SeenAt != 100*time.Second || ev.EmittedAt != 100*time.Second {
		t.Fatalf("times: seen=%v emitted=%v", ev.SeenAt, ev.EmittedAt)
	}
	if st := sup.SourceState(id); st != ingest.StateHealthy {
		t.Fatalf("state = %v, want healthy", st)
	}

	// Last monitored peer drops: the station is blind, so the source
	// must leave healthy (degraded + redial), then recover — the session
	// table replay on reconnect finds the peer up again.
	exp.PeerDown(&bmp.PeerDown{Peer: peer, Reason: bmp.PeerDownRemoteNoNotify})
	waitFor(t, "peer down observed", func() bool {
		for _, ev := range peers.all() {
			if !ev.Up && ev.Reason == bmp.PeerDownRemoteNoNotify {
				return true
			}
		}
		return false
	})
	exp.PeerUp(bmpPeerUp(peer)) // session re-established on the router
	waitFor(t, "redial after peers down", func() bool {
		return sup.Snapshot().Sources[0].Reconnects >= 1 && sup.SourceState(id) == ingest.StateHealthy
	})

	// The redialed session still delivers.
	exp.Publish(bmpAnnounce(peer, []bgp.ASN{65010, 64666}, "10.0.1.0/24"))
	waitFor(t, "post-redial delivery", func() bool { return got.count() == 2 })
}

// TestBMPDialerV6AndWithdraw: a v6 session's MP_REACH/MP_UNREACH
// updates decode through the same path, and withdrawals map to Withdraw
// events.
func TestBMPDialerV6AndWithdraw(t *testing.T) {
	exp, err := bmp.NewExporter("127.0.0.1:0", "rtr6", bgp.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	peer := bmpTestPeer("2001:db8::10", 65020, time.Unix(1466000200, 0).UTC())
	exp.PeerUp(bmpPeerUp(peer))

	var got collector
	var peers peerLog
	sup := ingest.New(got.deliver, ingest.Config{DedupTTL: -1, BackoffBase: 5 * time.Millisecond, Seed: 4})
	defer sup.Close()
	sup.AddDialer("bmp6", ingest.BMPDialerConfig(exp.Addr(), ingest.BMPConfig{OnPeer: peers.observe}))

	// The greeting's Peer Up replay proves the station is connected and
	// will see subsequent broadcasts.
	waitFor(t, "peer up", func() bool { return len(peers.all()) >= 1 })
	exp.Publish(bmpAnnounce(peer, []bgp.ASN{65020, 64666}, "2001:db8:beef::/48"))
	exp.Publish(&bmp.RouteMonitoring{Peer: peer, Update: &bgp.Update{
		Withdrawn: []prefix.Prefix{prefix.MustParse("2001:db8:beef::/48")},
	}})
	waitFor(t, "v6 announce + withdraw", func() bool { return got.count() == 2 })
	evs := got.all()
	if evs[0].Kind != feedtypes.Announce || evs[0].Prefix != prefix.MustParse("2001:db8:beef::/48") {
		t.Fatalf("announce: %+v", evs[0])
	}
	if evs[1].Kind != feedtypes.Withdraw || evs[1].VantagePoint != 65020 {
		t.Fatalf("withdraw: %+v", evs[1])
	}
}
