package ingest

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/feeds/periscope"
	"artemis/internal/prefix"
)

// PeriscopeConfig tunes a PeriscopeDialer.
type PeriscopeConfig struct {
	// LGs selects the looking glasses to poll by id ("lg-1001"). Empty
	// discovers the server's full inventory at every (re)dial.
	LGs []string
	// Filter supplies the watch list; its Prefixes are queried at each
	// poll. Re-read every round, so hot-added owned prefixes are picked up
	// at the next poll without a reconnect.
	Filter FilterFunc
	// PollInterval is the per-round poll period — the Periscope rate
	// limit. Default 3 minutes, matching the in-process service.
	PollInterval time.Duration
	// Now supplies event timestamps (the daemon's clock). Default: wall
	// time since the first poll.
	Now func() time.Duration
}

// PeriscopeDialer returns a Dialer that polls a Periscope-style REST
// looking-glass aggregation server (internal/feeds/periscope.Server) and
// turns answer changes into feed events — the fourth transport next to
// the RIS websocket, BGPmon TCP and MRT replay dialers. A looking glass
// reads an operational router directly, so events carry no pipeline
// latency: SeenAt equals EmittedAt equals the poll time, and the delay
// profile is the polling schedule.
//
// Each poll round queries every selected LG for every watched prefix,
// diffs the answers against the previous round, and delivers one batch
// per round of changes: new or re-pathed routes as announcements,
// disappeared answers as withdrawals. An HTTP failure ends the stream
// (the supervisor redials with backoff); the fresh connection re-announces
// the current view, which the cross-source dedup and the detector's
// incident dedup absorb.
func PeriscopeDialer(baseURL string, cfg PeriscopeConfig) Dialer {
	if cfg.Filter == nil {
		cfg.Filter = StaticFilter(feedtypes.Filter{})
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 3 * time.Minute
	}
	if cfg.Now == nil {
		start := time.Now()
		cfg.Now = func() time.Duration { return time.Since(start) }
	}
	return DialFunc(func() (Conn, error) {
		lgs := cfg.LGs
		if len(lgs) == 0 {
			var err error
			lgs, err = periscope.HTTPListLGs(baseURL)
			if err != nil {
				return nil, fmt.Errorf("ingest: periscope %s: list LGs: %w", baseURL, err)
			}
		}
		if len(lgs) == 0 {
			return nil, fmt.Errorf("ingest: periscope %s: no looking glasses", baseURL)
		}
		return &periscopeConn{
			base:  baseURL,
			lgs:   lgs,
			cfg:   cfg,
			state: make(map[string]lgAnswer),
			stop:  make(chan struct{}),
		}, nil
	})
}

// lgAnswer is the remembered answer for one (lg, watched, answered
// prefix) key: the path signature for change detection and the vantage
// point so a later withdrawal can be attributed.
type lgAnswer struct {
	sig string
	vp  bgp.ASN
}

type periscopeConn struct {
	base     string
	lgs      []string
	cfg      PeriscopeConfig
	state    map[string]lgAnswer
	first    bool
	stop     chan struct{}
	stopOnce sync.Once
	// buf is the reused per-round change batch (Conn contract: the batch
	// a Recv returns is valid only until the next Recv).
	buf []feedtypes.Event
}

// errPeriscopeClosed reports a Recv interrupted by Close.
var errPeriscopeClosed = errors.New("ingest: periscope source closed")

// Recv blocks until a poll round observes changes, then returns them as
// one batch (announcements and withdrawals in LG order).
func (c *periscopeConn) Recv() ([]feedtypes.Event, error) {
	for {
		if c.first {
			t := time.NewTimer(c.cfg.PollInterval)
			select {
			case <-c.stop:
				t.Stop()
				return nil, errPeriscopeClosed
			case <-t.C:
			}
		}
		c.first = true
		select {
		case <-c.stop:
			return nil, errPeriscopeClosed
		default:
		}
		batch, err := c.poll()
		if err != nil {
			return nil, err
		}
		if len(batch) > 0 {
			return batch, nil
		}
	}
}

// poll runs one round over every LG and watched prefix.
func (c *periscopeConn) poll() ([]feedtypes.Event, error) {
	watch := c.cfg.Filter().Prefixes
	now := c.cfg.Now()
	changed := c.buf[:0]
	defer func() { c.buf = changed }()
	for _, lgID := range c.lgs {
		for _, watched := range watch {
			answers, err := periscope.HTTPQuery(c.base, lgID, watched)
			if err != nil {
				return nil, err
			}
			current := map[string]bool{}
			for _, a := range answers {
				key := lgID + "|" + watched.String() + "|" + a.Prefix.String()
				current[key] = true
				var vp bgp.ASN
				if len(a.Path) > 0 {
					vp = a.Path[0] // Query prepends the LG's own ASN
				}
				sig := pathSig(a.Path)
				if prev, ok := c.state[key]; ok && prev.sig == sig {
					continue
				}
				c.state[key] = lgAnswer{sig: sig, vp: vp}
				changed = append(changed, feedtypes.Event{
					Source:       periscope.SourceName,
					Collector:    lgID,
					VantagePoint: vp,
					Kind:         feedtypes.Announce,
					Prefix:       a.Prefix,
					Path:         a.Path,
					SeenAt:       now,
					EmittedAt:    now,
				})
			}
			// Answers that disappeared since the last round are withdrawals.
			keyPfx := lgID + "|" + watched.String() + "|"
			for key, prev := range c.state {
				if len(key) <= len(keyPfx) || key[:len(keyPfx)] != keyPfx || current[key] {
					continue
				}
				delete(c.state, key)
				p, err := prefix.Parse(key[len(keyPfx):])
				if err != nil {
					continue
				}
				changed = append(changed, feedtypes.Event{
					Source:       periscope.SourceName,
					Collector:    lgID,
					VantagePoint: prev.vp,
					Kind:         feedtypes.Withdraw,
					Prefix:       p,
					SeenAt:       now,
					EmittedAt:    now,
				})
			}
		}
	}
	return changed, nil
}

func (c *periscopeConn) Close() error {
	c.stopOnce.Do(func() { close(c.stop) })
	return nil
}

// pathSig reduces an AS path to a comparable signature (the same encoding
// the in-process periscope service uses for change detection).
func pathSig(path []bgp.ASN) string {
	sig := make([]byte, 0, len(path)*5)
	for _, a := range path {
		sig = append(sig, byte(a>>24), byte(a>>16), byte(a>>8), byte(a), '.')
	}
	return string(sig)
}
