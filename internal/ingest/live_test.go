package ingest_test

import (
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/core"
	"artemis/internal/feeds/bgpmon"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/feeds/ris"
	"artemis/internal/ingest"
	"artemis/internal/prefix"
	"artemis/internal/sim"
	"artemis/internal/simnet"
	"artemis/internal/topo"
)

// liveSim is a small simulated Internet serving a real RIS websocket
// server whose lifecycle the tests control (kill / restart on the same
// address).
type liveSim struct {
	eng *sim.Engine
	nw  *simnet.Network
	ris *ris.Service
}

func newLiveSim(batchDelay time.Duration) *liveSim {
	tp := topo.Line(4, 10*time.Millisecond)
	eng := sim.NewEngine(1)
	nw := simnet.New(tp, eng, simnet.Config{MRAI: simnet.Disabled, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond})
	svc := ris.New(nw, []ris.CollectorConfig{
		{Name: "rrc00", Peers: []bgp.ASN{topo.FirstASN + 2, topo.FirstASN + 3}, BatchDelay: batchDelay},
	})
	return &liveSim{eng: eng, nw: nw, ris: svc}
}

// risInstance is one serving incarnation of the RIS websocket endpoint.
// kill tears down both the listener and the hijacked websocket
// connections (http.Server.Close alone leaves hijacked conns alive).
type risInstance struct {
	http    *http.Server
	handler *ris.Server
	addr    string
}

func (r *risInstance) kill() {
	r.http.Close()
	r.handler.Close()
}

// serveRIS starts a websocket server for the sim's RIS service on addr
// ("127.0.0.1:0" or a previous address to rebind).
func (s *liveSim) serveRIS(t *testing.T, addr string) *risInstance {
	t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ { // the old port may need a beat to release
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	h := ris.NewServer(s.ris)
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return &risInstance{http: srv, handler: h, addr: ln.Addr().String()}
}

var watchFilter = feedtypes.Filter{
	Prefixes:     []prefix.Prefix{prefix.MustParse("10.0.0.0/23")},
	MoreSpecific: true,
	LessSpecific: true,
}

// TestRISServerKillReconnectAndMetrics is the acceptance path: a killed
// in-process RIS server must be redialed automatically, events must flow
// again after the restart, and the outage must be visible in the
// /metrics rendering (reconnect counter, state gauge).
func TestRISServerKillReconnectAndMetrics(t *testing.T) {
	s := newLiveSim(2 * time.Second)
	srv := s.serveRIS(t, "127.0.0.1:0")
	addr := srv.addr

	var got collector
	sup := ingest.New(got.deliver, ingest.Config{
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Seed:        1,
	})
	defer sup.Close()
	id := sup.AddDialer("ris[0]", ingest.RISDialer("ws://"+addr+"/v1/ws", watchFilter))
	waitFor(t, "initial connect", func() bool { return sup.SourceState(id) == ingest.StateHealthy })

	// Toggle a route until events arrive: the server registers the
	// subscription asynchronously, so the first changes can be missed.
	churnUntil := func(what string, target int) {
		deadline := time.Now().Add(5 * time.Second)
		on := false
		for got.count() < target {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (have %d events, want %d)", what, got.count(), target)
			}
			if on {
				s.nw.Withdraw(topo.FirstASN, prefix.MustParse("10.0.0.0/23"))
			} else {
				s.nw.Announce(topo.FirstASN, prefix.MustParse("10.0.0.0/23"))
			}
			on = !on
			s.eng.Run()
			time.Sleep(20 * time.Millisecond)
		}
	}
	churnUntil("events from epoch 1", 2)

	// Kill the server: the supervisor must notice and start redialing.
	srv.kill()
	waitFor(t, "outage detected", func() bool {
		st := sup.SourceState(id)
		return st == ingest.StateDegraded || st == ingest.StateConnecting
	})

	// Restart on the same address; the supervisor reconnects by itself.
	srv2 := s.serveRIS(t, addr)
	defer srv2.kill()
	waitFor(t, "reconnect", func() bool { return sup.SourceState(id) == ingest.StateHealthy })
	churnUntil("events after reconnect", got.count()+2)

	snap := sup.Snapshot()
	src := snap.Sources[0]
	if src.Reconnects < 1 {
		t.Fatalf("reconnects = %d, outage not recorded", src.Reconnects)
	}
	var b strings.Builder
	snap.WriteProm(&b)
	prom := b.String()
	for _, want := range []string{
		`artemis_ingest_source_reconnects_total{source="ris[0]"}`,
		`artemis_ingest_source_state{source="ris[0]",state="healthy"} 1`,
		`artemis_ingest_source_events_total{source="ris[0]"}`,
		`artemis_ingest_source_delivery_latency_seconds_count{source="ris[0]"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/metrics rendering missing %q:\n%s", want, prom)
		}
	}
	if strings.Contains(prom, `reconnects_total{source="ris[0]"} 0`) {
		t.Fatalf("/metrics shows zero reconnects after an outage:\n%s", prom)
	}
}

// TestSoakFlappingFeeds runs the full ingest stack — simulated Internet,
// real RIS websocket + BGPmon XML servers, supervisor, sharded pipeline —
// while both servers are killed and restarted continuously. It is the
// `make soak` target (ARTEMIS_SOAK=10s go test -race -run SoakFlapping)
// and runs briefly in normal test mode. The pass criterion is survival:
// no panic, no deadlock, reconnects recorded, and events still flowing
// once the flapping stops.
func TestSoakFlappingFeeds(t *testing.T) {
	soak := 1200 * time.Millisecond
	if env := os.Getenv("ARTEMIS_SOAK"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("bad ARTEMIS_SOAK %q: %v", env, err)
		}
		soak = d
	}

	const scale = 120 // simulated seconds per wall second
	s := newLiveSim(5 * time.Second)
	bmonSvc := bgpmon.New(s.nw, bgpmon.Config{
		Peers: []bgp.ASN{topo.FirstASN + 1}, MinDelay: 5 * time.Second, MaxDelay: 10 * time.Second,
	})

	risSrv := s.serveRIS(t, "127.0.0.1:0")
	risAddr := risSrv.addr
	bmonSrv, err := bgpmon.NewServer(bmonSvc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bmonAddr := bmonSrv.Addr()

	// Continuous route churn: the owned prefix plus a rotating
	// more-specific flap, announced and withdrawn forever.
	owned := prefix.MustParse("10.0.0.0/23")
	s.nw.Announce(topo.FirstASN, owned)
	var churn func()
	flap, on := prefix.MustParse("10.0.1.0/24"), false
	churn = func() {
		if on {
			s.nw.Withdraw(topo.FirstASN, flap)
		} else {
			s.nw.Announce(topo.FirstASN, flap)
		}
		on = !on
		s.eng.After(10*time.Second, churn)
	}
	s.eng.After(10*time.Second, churn)
	go s.eng.RunPaced(scale, 4*time.Hour, time.Second)
	defer s.eng.Stop()

	// Full data path: supervisor -> sharded pipeline -> detector+monitor.
	cfg := &core.Config{
		OwnedPrefixes: []prefix.Prefix{owned},
		LegitOrigins:  []bgp.ASN{topo.FirstASN},
		AlertDedupTTL: time.Hour,
		AlertDedupMax: 1 << 10,
	}
	det := core.NewDetector(cfg)
	mon := core.NewMonitor(cfg)
	pl := core.NewPipeline(det, mon, core.PipelineConfig{Shards: 2})
	defer pl.Close()
	sup := ingest.New(pl.Submit, ingest.Config{
		QueueDepth:  32,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Seed:        1,
	})
	defer sup.Close()
	risID := sup.AddDialer("ris[0]", ingest.RISDialer("ws://"+risAddr+"/v1/ws", watchFilter))
	bmonID := sup.AddDialer("bgpmon[0]", ingest.BGPmonDialer(bmonAddr, watchFilter))

	// Flap both servers until the soak deadline.
	deadline := time.Now().Add(soak)
	for round := 0; time.Now().Before(deadline); round++ {
		time.Sleep(60 * time.Millisecond)
		if round%2 == 0 {
			risSrv.kill()
			time.Sleep(40 * time.Millisecond)
			risSrv = s.serveRIS(t, risAddr)
		} else {
			bmonSrv.Close()
			time.Sleep(40 * time.Millisecond)
			if bmonSrv, err = bgpmon.NewServer(bmonSvc, bmonAddr); err != nil {
				// The OS may hold the port briefly; retry once.
				time.Sleep(50 * time.Millisecond)
				if bmonSrv, err = bgpmon.NewServer(bmonSvc, bmonAddr); err != nil {
					t.Fatalf("bgpmon restart: %v", err)
				}
			}
		}
	}
	defer func() {
		risSrv.kill()
		bmonSrv.Close()
	}()

	// Flapping over: both sources must recover and deliver.
	waitFor(t, "ris recovery", func() bool { return sup.SourceState(risID) == ingest.StateHealthy })
	waitFor(t, "bgpmon recovery", func() bool { return sup.SourceState(bmonID) == ingest.StateHealthy })
	start := pl.Snapshot().Events
	waitFor(t, "events after recovery", func() bool { return pl.Snapshot().Events > start })

	snap := sup.Snapshot()
	var reconnects int64
	for _, src := range snap.Sources {
		reconnects += src.Reconnects
	}
	if reconnects == 0 {
		t.Fatal("soak flapped both servers but recorded no reconnects")
	}
	if pl.Snapshot().Events == 0 {
		t.Fatal("no events reached the pipeline during the soak")
	}
	t.Logf("soak: %v, reconnects=%d, pipeline events=%d, dedup size=%d",
		soak, reconnects, pl.Snapshot().Events, snap.DedupSize)
}
