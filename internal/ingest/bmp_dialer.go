package ingest

import (
	"errors"
	"fmt"
	"net"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/bgp/bmp"
	"artemis/internal/feeds/dumps"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

// BMPSourceName identifies the BMP feed in events.
const BMPSourceName = "bmp"

// bmpDialTimeout bounds the TCP connect to a BMP exporter; the
// supervisor's backoff handles the retries.
const bmpDialTimeout = 5 * time.Second

// BMPPeerEvent reports one monitored peer's session transition, decoded
// from a BMP Peer Up or Peer Down message.
type BMPPeerEvent struct {
	// Collector is the exporting router's name (Initiation sysName).
	Collector string
	// Addr/AS identify the peer whose session changed.
	Addr prefix.Addr
	AS   bgp.ASN
	// Up is true for Peer Up; for Peer Down, Reason carries the RFC 7854
	// reason code.
	Up     bool
	Reason uint8
}

// BMPConfig tunes a BMP station source beyond the dial address.
type BMPConfig struct {
	// Filter is resolved at every (re)dial and applied client-side: BMP
	// has no subscription message, the router mirrors everything, so the
	// station discards non-matching routes before they enter the
	// pipeline. Nil watches everything.
	Filter FilterFunc
	// Now supplies the event-time clock used for EmittedAt (and for
	// SeenAt when a router omits the per-peer timestamp). Nil means
	// EmittedAt mirrors the router's timestamp — correct for replay into
	// virtual-time experiments, where no other clock exists.
	Now func() time.Duration
	// OnPeer, when set, observes every peer session transition. Called
	// from the source's dial goroutine; must not block.
	OnPeer func(BMPPeerEvent)
}

// BMPDialer returns a Dialer speaking BMP station mode (RFC 7854): the
// router is the passive party, listening for the monitoring station to
// connect, then mirroring every peer's UPDATEs as Route Monitoring
// messages. Peer Down messages degrade the source when the last
// monitored session drops — the station is blind then, exactly the
// condition the supervisor's health states exist to surface.
func BMPDialer(addr string, f feedtypes.Filter) Dialer {
	return BMPDialerConfig(addr, BMPConfig{Filter: StaticFilter(f)})
}

// BMPDialerConfig is BMPDialer with peer-transition observation and an
// explicit event-time clock.
func BMPDialerConfig(addr string, cfg BMPConfig) Dialer {
	return DialFunc(func() (Conn, error) {
		nc, err := net.DialTimeout("tcp", addr, bmpDialTimeout)
		if err != nil {
			return nil, err
		}
		var filter feedtypes.Filter
		if cfg.Filter != nil {
			filter = cfg.Filter()
		}
		return &bmpConn{
			nc: nc,
			// RFC 7854 §4.9: peers are assumed 4-octet-AS capable; the
			// encapsulated messages use the modern encoding.
			r:         bmp.NewReader(nc, bgp.DefaultOptions),
			collector: addr,
			filter:    filter,
			now:       cfg.Now,
			onPeer:    cfg.OnPeer,
			peers:     make(map[bmpPeerKey]bool),
		}, nil
	})
}

// bmpPeerKey identifies one monitored peer session.
type bmpPeerKey struct {
	addr prefix.Addr
	as   bgp.ASN
}

// errBMPPeersDown ends a session whose last monitored peer went down:
// the router is still talking to us, but mirrors nothing. Surfacing it
// as a Recv error turns the condition into a supervisor health
// transition (degraded + redial) instead of a silent stall.
var errBMPPeersDown = errors.New("bmp: all monitored peers down")

type bmpConn struct {
	nc        net.Conn
	r         *bmp.Reader
	collector string
	filter    feedtypes.Filter
	now       func() time.Duration
	onPeer    func(BMPPeerEvent)
	// peers tracks sessions currently up; sawPeer latches once the first
	// Peer Up arrives so an initially empty mirror isn't "all down".
	peers   map[bmpPeerKey]bool
	sawPeer bool
	// buf/paths are the reused per-Recv batch and its path arena (Conn
	// contract: valid until the next Recv).
	buf   []feedtypes.Event
	paths []bgp.ASN
}

func (c *bmpConn) Recv() ([]feedtypes.Event, error) {
	for {
		msg, err := c.r.Next()
		if err != nil {
			return nil, err
		}
		switch m := msg.(type) {
		case *bmp.Initiation:
			if name, ok := m.SysName(); ok && name != "" {
				c.collector = name
			}
		case *bmp.Termination:
			return nil, errors.New("bmp: termination received")
		case *bmp.PeerUp:
			c.peers[bmpPeerKey{m.Peer.Addr, m.Peer.AS}] = true
			c.sawPeer = true
			if c.onPeer != nil {
				c.onPeer(BMPPeerEvent{Collector: c.collector, Addr: m.Peer.Addr, AS: m.Peer.AS, Up: true})
			}
		case *bmp.PeerDown:
			delete(c.peers, bmpPeerKey{m.Peer.Addr, m.Peer.AS})
			if c.onPeer != nil {
				c.onPeer(BMPPeerEvent{Collector: c.collector, Addr: m.Peer.Addr, AS: m.Peer.AS, Reason: m.Reason})
			}
			if c.sawPeer && len(c.peers) == 0 {
				return nil, fmt.Errorf("%w (last: %s AS%d reason %d)", errBMPPeersDown, m.Peer.Addr, m.Peer.AS, m.Reason)
			}
		case *bmp.RouteMonitoring:
			if batch := c.convert(m); len(batch) > 0 {
				return batch, nil
			}
		}
		// Stats reports and unmatched route monitoring fall through to the
		// next message.
	}
}

// convert maps one mirrored UPDATE to events, reusing the conn's batch
// buffer and path arena so a hot session allocates only when the update
// outgrows every previous one.
func (c *bmpConn) convert(m *bmp.RouteMonitoring) []feedtypes.Event {
	u := m.Update
	if u == nil {
		return nil
	}
	seen, emitted := c.times(m.Peer.Timestamp)
	batch := c.buf[:0]
	arena := c.paths[:0]
	for _, p := range u.Withdrawn {
		if !c.filter.Match(p) {
			continue
		}
		batch = append(batch, feedtypes.Event{
			Source:       BMPSourceName,
			Collector:    c.collector,
			VantagePoint: m.Peer.AS,
			Kind:         feedtypes.Withdraw,
			Prefix:       p,
			SeenAt:       seen,
			EmittedAt:    emitted,
		})
	}
	if path, ok := u.ASPath(); ok {
		// Copy the decoded path into the arena once; every NLRI of this
		// update shares it, like the vantage point shares one route.
		start := len(arena)
		arena = append(arena, path...)
		shared := arena[start:len(arena):len(arena)]
		for _, p := range u.NLRI {
			if !c.filter.Match(p) {
				continue
			}
			batch = append(batch, feedtypes.Event{
				Source:       BMPSourceName,
				Collector:    c.collector,
				VantagePoint: m.Peer.AS,
				Kind:         feedtypes.Announce,
				Prefix:       p,
				Path:         shared,
				SeenAt:       seen,
				EmittedAt:    emitted,
			})
		}
	}
	c.buf = batch
	c.paths = arena
	return batch
}

// times derives the event clocks from the per-peer header timestamp:
// SeenAt is when the router saw the route change (its own clock, mapped
// onto the sim epoch like MRT replay), EmittedAt when the station
// received it (Now, when configured; otherwise the mirror is assumed
// instantaneous).
func (c *bmpConn) times(ts time.Time) (seen, emitted time.Duration) {
	if c.now != nil {
		emitted = c.now()
	}
	if ts.IsZero() {
		// Router declined to timestamp (allowed by RFC 7854): the best
		// estimate of observation time is arrival time.
		return emitted, emitted
	}
	seen = dumps.SimTimeOf(ts)
	if c.now == nil {
		emitted = seen
	}
	return seen, emitted
}

func (c *bmpConn) Close() error { return c.nc.Close() }
