package ingest_test

import (
	"testing"
	"time"

	"artemis/internal/feeds/feedtypes"
	"artemis/internal/ingest"
	"artemis/internal/prefix"
)

func watch(p string) feedtypes.Filter {
	return feedtypes.Filter{
		Prefixes:     []prefix.Prefix{prefix.MustParse(p)},
		MoreSpecific: true,
		LessSpecific: true,
	}
}

// Removing an in-process source must widen the survivor's subscription to
// cover the dead source's prefixes — events the survivor used to filter
// out start flowing.
func TestAutoWidenInProcessResubscribes(t *testing.T) {
	var got collector
	sup := ingest.New(got.deliver, ingest.Config{
		Synchronous: true, AutoWiden: true, DedupTTL: -1,
	})
	defer sup.Close()

	a := hubSource{feedtypes.NewHub(), "a"}
	b := hubSource{feedtypes.NewHub(), "b"}
	idA := sup.AddSource("a", a, watch("10.0.0.0/24"))
	idB := sup.AddSource("b", b, watch("10.1.0.0/24"))

	// b's slice flows; a's slice via b is filtered out.
	b.Publish([]feedtypes.Event{ev(100, "10.1.0.0/24", time.Second, 666)})
	b.Publish([]feedtypes.Event{ev(100, "10.0.0.0/24", 2*time.Second, 666)})
	if got.count() != 1 {
		t.Fatalf("pre-widen deliveries = %d, want 1", got.count())
	}

	sup.Remove(idA)

	f, ok := sup.EffectiveFilter(idB)
	if !ok || len(f.Prefixes) != 2 {
		t.Fatalf("survivor filter = %+v ok=%v, want both slices", f, ok)
	}
	b.Publish([]feedtypes.Event{ev(100, "10.0.0.0/24", 3*time.Second, 666)})
	if got.count() != 2 {
		t.Fatalf("post-widen deliveries = %d, want 2 (hole closed)", got.count())
	}
	// The dead source's id no longer resolves.
	if _, ok := sup.EffectiveFilter(idA); ok {
		t.Fatal("removed source still reports a filter")
	}
}

// A dial source dying on retry exhaustion leaves its declared (Covers)
// hole to both kinds of survivors: in-process sources re-subscribe, dial
// sources are bounced so the redial can pick up EffectiveFilter.
func TestAutoWidenDialDeathBouncesSurvivors(t *testing.T) {
	var got collector
	sup := ingest.New(got.deliver, ingest.Config{
		Synchronous: true, AutoWiden: true, DedupTTL: -1,
		BackoffBase: time.Millisecond, MaxRetries: 2,
	})
	defer sup.Close()

	inproc := hubSource{feedtypes.NewHub(), "inproc"}
	idIn := sup.AddSource("inproc", inproc, watch("10.1.0.0/24"))

	survivor := &flakyDialer{}
	idSurv := sup.AddDialer("survivor", survivor, ingest.Covers(watch("10.2.0.0/24")))
	waitFor(t, "survivor connect", func() bool { return survivor.lastConn() != nil })

	dying := &flakyDialer{}
	dying.setFailures(1 << 20) // never connects; dies after MaxRetries
	idDying := sup.AddDialer("dying", dying, ingest.Covers(watch("10.0.0.0/24")))
	waitFor(t, "dying source death", func() bool {
		return sup.SourceState(idDying) == ingest.StateDead
	})

	// Both survivors absorbed the hole.
	waitFor(t, "in-process widen", func() bool {
		f, ok := sup.EffectiveFilter(idIn)
		return ok && len(f.Prefixes) == 2
	})
	f, ok := sup.EffectiveFilter(idSurv)
	if !ok || len(f.Prefixes) != 2 {
		t.Fatalf("dial survivor filter = %+v ok=%v", f, ok)
	}
	// The dial survivor was bounced: its connection was dropped so the
	// redial can subscribe with the widened filter.
	waitFor(t, "survivor redial", func() bool { return survivor.dialCount() >= 2 })
	// And the in-process survivor's new subscription delivers the hole.
	inproc.Publish([]feedtypes.Event{ev(100, "10.0.0.0/24", time.Second, 666)})
	if got.count() != 1 {
		t.Fatalf("deliveries = %d, want the widened event", got.count())
	}
}

// A survivor whose filter already matches everything (or already covers
// the hole) must not churn: no resubscribe-visible change, no bounce.
func TestAutoWidenNoOpWhenCovered(t *testing.T) {
	var got collector
	sup := ingest.New(got.deliver, ingest.Config{
		Synchronous: true, AutoWiden: true, DedupTTL: -1,
	})
	defer sup.Close()

	all := hubSource{feedtypes.NewHub(), "all"}
	idAll := sup.AddSource("all", all, feedtypes.Filter{}) // match-all
	wide := hubSource{feedtypes.NewHub(), "wide"}
	idWide := sup.AddSource("wide", wide, watch("10.0.0.0/16"))
	narrow := hubSource{feedtypes.NewHub(), "narrow"}
	idNarrow := sup.AddSource("narrow", narrow, watch("10.0.0.0/24"))

	sup.Remove(idNarrow)

	if f, ok := sup.EffectiveFilter(idAll); !ok || !f.MatchAll() {
		t.Fatalf("match-all survivor changed: %+v", f)
	}
	// /16 with MoreSpecific already covers the /24 hole.
	if f, ok := sup.EffectiveFilter(idWide); !ok || len(f.Prefixes) != 1 {
		t.Fatalf("covering survivor widened needlessly: %+v", f)
	}
}
