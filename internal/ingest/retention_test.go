package ingest_test

import (
	"fmt"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/ingest"
	"artemis/internal/prefix"
)

// These are the regression tests for the queued-batch retention bug: the
// supervisor's per-source queue used to hold the producer's own slice,
// so a producer that recycles its batch storage — a feed releasing its
// pooled publish batch, a Conn reusing its Recv buffer — would overwrite
// events the forwarder had not yet delivered. Poisoning released batches
// turns that corruption deterministic: if the queue retains producer
// storage, the collector observes PoisonPrefix/PoisonASN sentinels
// instead of the published events.

// checkNotPoisoned fails the test if any collected event carries poison
// sentinels or diverges from the expected per-index identity.
func checkNotPoisoned(t *testing.T, evs []feedtypes.Event) {
	t.Helper()
	for i := range evs {
		if evs[i].Prefix == feedtypes.PoisonPrefix || evs[i].Source == "poisoned" {
			t.Fatalf("event %d is poisoned — the queue retained released producer storage: %+v", i, evs[i])
		}
		for _, as := range evs[i].Path {
			if as == feedtypes.PoisonASN {
				t.Fatalf("event %d path holds the poison ASN — its arena was recycled while queued: %v", i, evs[i].Path)
			}
		}
	}
}

// TestQueuedBatchSurvivesPublisherRelease publishes pooled, poisoned
// batches through a hub into an asynchronous in-process source, releasing
// each batch the moment Publish returns — exactly the feed lifecycle. The
// supervisor's queue must deliver intact copies, not the recycled storage.
func TestQueuedBatchSurvivesPublisherRelease(t *testing.T) {
	var got collector
	sup := ingest.New(got.deliver, ingest.Config{QueueDepth: 64, DedupTTL: -1})
	defer sup.Close()

	hub := hubSource{Hub: feedtypes.NewHub(), name: "pooled"}
	sup.AddSource("pooled", hub, feedtypes.Filter{})

	pool := feedtypes.NewBatchPool()
	pool.SetPoison(true)
	const rounds, perBatch = 50, 8
	for r := 0; r < rounds; r++ {
		b := pool.Get()
		for i := 0; i < perBatch; i++ {
			path := b.NewPath(3)
			path[0], path[1], path[2] = 100, 2000, bgp.ASN(61000+r)
			b.Append(feedtypes.Event{
				Source:       "pooled",
				Collector:    fmt.Sprintf("c%d", r),
				VantagePoint: 100,
				Kind:         feedtypes.Announce,
				Prefix:       prefix.MustParse(fmt.Sprintf("10.%d.%d.0/24", r, i)),
				Path:         path,
				SeenAt:       time.Duration(r) * time.Millisecond,
				EmittedAt:    time.Duration(r) * time.Millisecond,
			})
		}
		hub.Publish(b.Events)
		b.Release() // storage is poisoned and recycled here
	}

	waitFor(t, "all batches delivered", func() bool { return got.count() == rounds*perBatch })
	evs := got.all()
	checkNotPoisoned(t, evs)
	for i, e := range evs {
		r, j := i/perBatch, i%perBatch
		want := prefix.MustParse(fmt.Sprintf("10.%d.%d.0/24", r, j))
		if e.Prefix != want || e.Path[2] != bgp.ASN(61000+r) {
			t.Fatalf("event %d corrupted: got %s origin %v, want %s origin %d", i, e.Prefix, e.Path[2], want, 61000+r)
		}
	}
}

// reuseConn is a finite Conn that rebuilds every batch in ONE reused
// buffer — the strongest form of the "batch valid only until the next
// Recv" contract. Before handing out batch i it first smashes the buffer
// with poison, so a supervisor that queued the previous return value by
// reference delivers garbage.
type reuseConn struct {
	i   int
	n   int
	buf []feedtypes.Event
}

func (c *reuseConn) Recv() ([]feedtypes.Event, error) {
	if c.i >= c.n {
		return nil, ingest.ErrDone
	}
	for j := range c.buf { // poison the previous batch in place
		c.buf[j] = feedtypes.Event{Source: "poisoned", Prefix: feedtypes.PoisonPrefix}
	}
	c.buf = c.buf[:0]
	for j := 0; j < 4; j++ {
		c.buf = append(c.buf, ev(100, fmt.Sprintf("10.%d.%d.0/24", c.i, j), time.Duration(c.i)*time.Millisecond, 666))
	}
	c.i++
	return c.buf, nil
}

func (c *reuseConn) Close() error { return nil }

// TestDialConnMayReuseRecvBuffer verifies the dial path honors the Conn
// contract: batches queued from a connection that overwrites its Recv
// buffer must still be delivered intact and in order.
func TestDialConnMayReuseRecvBuffer(t *testing.T) {
	var got collector
	sup := ingest.New(got.deliver, ingest.Config{QueueDepth: 2, DedupTTL: -1})
	const n = 64
	sup.AddDialer("reuse", ingest.DialFunc(func() (ingest.Conn, error) {
		return &reuseConn{n: n}, nil
	}), ingest.Blocking())
	sup.Wait()
	sup.Close()

	evs := got.all()
	if len(evs) != n*4 {
		t.Fatalf("delivered %d events, want %d", len(evs), n*4)
	}
	checkNotPoisoned(t, evs)
	for i, e := range evs {
		want := prefix.MustParse(fmt.Sprintf("10.%d.%d.0/24", i/4, i%4))
		if e.Prefix != want {
			t.Fatalf("event %d out of order or corrupted: got %s want %s", i, e.Prefix, want)
		}
	}
}
