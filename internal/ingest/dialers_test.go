package ingest_test

import (
	"bytes"
	"io"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/bgp/mrt"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/ingest"
	"artemis/internal/prefix"
)

// TestMRTReplayDialer replays a hand-built MRT update archive through the
// supervisor and checks the decoded events: one announce per NLRI, one
// withdraw per withdrawn prefix, vantage point from the peer AS, and a
// dead source at EOF.
func TestMRTReplayDialer(t *testing.T) {
	epoch := time.Unix(1466000000, 0).UTC() // dumps' simEpoch
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	announce := &bgp.Update{
		Attrs: []bgp.PathAttr{
			&bgp.OriginAttr{Value: bgp.OriginIGP},
			bgp.NewASPath([]bgp.ASN{100, 2000, 666}),
			&bgp.NextHopAttr{Addr: prefix.MustParseAddr("192.0.2.1")},
		},
		NLRI: []prefix.Prefix{prefix.MustParse("10.0.0.0/24"), prefix.MustParse("10.0.1.0/24")},
	}
	if err := w.Write(&mrt.BGP4MPMessage{
		Timestamp: epoch.Add(42 * time.Second),
		PeerAS:    100,
		PeerIP:    prefix.MustParseAddr("192.0.2.1"),
		Message:   announce,
	}); err != nil {
		t.Fatal(err)
	}
	withdraw := &bgp.Update{Withdrawn: []prefix.Prefix{prefix.MustParse("10.0.0.0/24")}}
	if err := w.Write(&mrt.BGP4MPMessage{
		Timestamp: epoch.Add(90 * time.Second),
		PeerAS:    100,
		PeerIP:    prefix.MustParseAddr("192.0.2.1"),
		Message:   withdraw,
	}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	var got collector
	sup := ingest.New(got.deliver, ingest.Config{DedupTTL: -1})
	defer sup.Close()
	open := func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(data)), nil }
	id := sup.AddDialer("mrt", ingest.MRTReplayDialer(open, "rv0"), ingest.Blocking())
	sup.Wait()
	if st := sup.SourceState(id); st != ingest.StateFinished {
		t.Fatalf("state = %v, want finished at EOF", st)
	}

	evs := got.all()
	if len(evs) != 3 {
		t.Fatalf("events = %+v, want 2 announces + 1 withdraw", evs)
	}
	for i, want := range []struct {
		kind feedtypes.Kind
		pfx  string
		at   time.Duration
	}{
		{feedtypes.Announce, "10.0.0.0/24", 42 * time.Second},
		{feedtypes.Announce, "10.0.1.0/24", 42 * time.Second},
		{feedtypes.Withdraw, "10.0.0.0/24", 90 * time.Second},
	} {
		ev := evs[i]
		if ev.Kind != want.kind || ev.Prefix != prefix.MustParse(want.pfx) || ev.SeenAt != want.at {
			t.Fatalf("event %d = %+v, want %v %s at %v", i, ev, want.kind, want.pfx, want.at)
		}
		if ev.VantagePoint != 100 || ev.Collector != "rv0" {
			t.Fatalf("event %d identity = %+v", i, ev)
		}
	}
	origin, ok := evs[0].Origin()
	if !ok || origin != 666 {
		t.Fatalf("origin = %v,%v", origin, ok)
	}
}
