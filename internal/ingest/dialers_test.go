package ingest_test

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/bgp/mrt"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/ingest"
	"artemis/internal/prefix"
)

// TestMRTReplayDialer replays a hand-built MRT update archive through the
// supervisor and checks the decoded events: one announce per NLRI, one
// withdraw per withdrawn prefix, vantage point from the peer AS, and a
// dead source at EOF.
func TestMRTReplayDialer(t *testing.T) {
	epoch := time.Unix(1466000000, 0).UTC() // dumps' simEpoch
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	announce := &bgp.Update{
		Attrs: []bgp.PathAttr{
			&bgp.OriginAttr{Value: bgp.OriginIGP},
			bgp.NewASPath([]bgp.ASN{100, 2000, 666}),
			&bgp.NextHopAttr{Addr: prefix.MustParseAddr("192.0.2.1")},
		},
		NLRI: []prefix.Prefix{prefix.MustParse("10.0.0.0/24"), prefix.MustParse("10.0.1.0/24")},
	}
	if err := w.Write(&mrt.BGP4MPMessage{
		Timestamp: epoch.Add(42 * time.Second),
		PeerAS:    100,
		PeerIP:    prefix.MustParseAddr("192.0.2.1"),
		Message:   announce,
	}); err != nil {
		t.Fatal(err)
	}
	withdraw := &bgp.Update{Withdrawn: []prefix.Prefix{prefix.MustParse("10.0.0.0/24")}}
	if err := w.Write(&mrt.BGP4MPMessage{
		Timestamp: epoch.Add(90 * time.Second),
		PeerAS:    100,
		PeerIP:    prefix.MustParseAddr("192.0.2.1"),
		Message:   withdraw,
	}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	var got collector
	sup := ingest.New(got.deliver, ingest.Config{DedupTTL: -1})
	defer sup.Close()
	open := func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(data)), nil }
	id := sup.AddDialer("mrt", ingest.MRTReplayDialer(open, "rv0"), ingest.Blocking())
	sup.Wait()
	if st := sup.SourceState(id); st != ingest.StateFinished {
		t.Fatalf("state = %v, want finished at EOF", st)
	}

	evs := got.all()
	if len(evs) != 3 {
		t.Fatalf("events = %+v, want 2 announces + 1 withdraw", evs)
	}
	for i, want := range []struct {
		kind feedtypes.Kind
		pfx  string
		at   time.Duration
	}{
		{feedtypes.Announce, "10.0.0.0/24", 42 * time.Second},
		{feedtypes.Announce, "10.0.1.0/24", 42 * time.Second},
		{feedtypes.Withdraw, "10.0.0.0/24", 90 * time.Second},
	} {
		ev := evs[i]
		if ev.Kind != want.kind || ev.Prefix != prefix.MustParse(want.pfx) || ev.SeenAt != want.at {
			t.Fatalf("event %d = %+v, want %v %s at %v", i, ev, want.kind, want.pfx, want.at)
		}
		if ev.VantagePoint != 100 || ev.Collector != "rv0" {
			t.Fatalf("event %d identity = %+v", i, ev)
		}
	}
	origin, ok := evs[0].Origin()
	if !ok || origin != 666 {
		t.Fatalf("origin = %v,%v", origin, ok)
	}
}

// ribAttrs builds the path-attribute block of one RIB peer route.
func ribAttrs(path ...bgp.ASN) []bgp.PathAttr {
	return []bgp.PathAttr{
		&bgp.OriginAttr{Value: bgp.OriginIGP},
		bgp.NewASPath(path),
		&bgp.NextHopAttr{Addr: prefix.MustParseAddr("192.0.2.1")},
	}
}

// TestMRTReplayRIBVantagePoint replays a TABLE_DUMP_V2 snapshot whose peer
// is a route server: the peer AS (64999) does not appear in the AS path at
// all. The vantage point must come from the PEER_INDEX_TABLE via the RIB
// route's peer index, not from path[0].
func TestMRTReplayRIBVantagePoint(t *testing.T) {
	epoch := time.Unix(1466000000, 0).UTC()
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	pit := &mrt.PeerIndexTable{
		Timestamp:   epoch,
		CollectorID: prefix.MustParseAddr("198.51.100.1"),
		ViewName:    "rv0",
		Peers: []mrt.Peer{
			{BGPID: prefix.MustParseAddr("203.0.113.7"), IP: prefix.MustParseAddr("203.0.113.7"), AS: 64999},
			{BGPID: prefix.MustParseAddr("203.0.113.9"), IP: prefix.MustParseAddr("203.0.113.9"), AS: 100},
		},
	}
	if err := w.Write(pit); err != nil {
		t.Fatal(err)
	}
	// Route seen via peer 0 (route server 64999, absent from the path) and
	// peer 1 (a normal peer that prepends itself).
	if err := w.Write(&mrt.RIBEntry{
		Timestamp: epoch.Add(10 * time.Second),
		Prefix:    prefix.MustParse("10.0.0.0/24"),
		Routes: []mrt.RIBPeerRoute{
			{PeerIndex: 0, Originated: epoch, Attrs: ribAttrs(2000, 666)},
			{PeerIndex: 1, Originated: epoch, Attrs: ribAttrs(100, 666)},
		},
	}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	var got collector
	sup := ingest.New(got.deliver, ingest.Config{DedupTTL: -1})
	defer sup.Close()
	open := func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(data)), nil }
	id := sup.AddDialer("mrt", ingest.MRTReplayDialer(open, "rv0"), ingest.Blocking())
	sup.Wait()
	if st := sup.SourceState(id); st != ingest.StateFinished {
		t.Fatalf("state = %v, want finished at EOF", st)
	}
	evs := got.all()
	if len(evs) != 2 {
		t.Fatalf("events = %+v, want 2 announces", evs)
	}
	if evs[0].VantagePoint != 64999 {
		t.Fatalf("route-server VP = %d, want 64999 (from peer index table, not path[0]=2000)", evs[0].VantagePoint)
	}
	if evs[1].VantagePoint != 100 {
		t.Fatalf("second VP = %d, want 100", evs[1].VantagePoint)
	}
}

// TestMRTReplayRIBWithoutPeerIndex feeds a RIB entry with no preceding
// PEER_INDEX_TABLE: the connection must fail with a descriptive error
// instead of guessing vantage points.
func TestMRTReplayRIBWithoutPeerIndex(t *testing.T) {
	epoch := time.Unix(1466000000, 0).UTC()
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	if err := w.Write(&mrt.RIBEntry{
		Timestamp: epoch,
		Prefix:    prefix.MustParse("10.0.0.0/24"),
		Routes:    []mrt.RIBPeerRoute{{PeerIndex: 0, Originated: epoch, Attrs: ribAttrs(100, 666)}},
	}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	open := func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(data)), nil }
	conn, err := ingest.MRTReplayDialer(open, "rv0").Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Recv(); err == nil || !strings.Contains(err.Error(), "PEER_INDEX_TABLE") {
		t.Fatalf("Recv err = %v, want RIB-before-peer-index error", err)
	}
}
