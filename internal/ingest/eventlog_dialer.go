package ingest

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"artemis/internal/feeds/eventlog"
	"artemis/internal/feeds/feedtypes"
)

// EventLogReplay tunes an event-log replay source.
type EventLogReplay struct {
	// Speed is the time-compression factor: 1 replays at the recorded
	// cadence, 16 at sixteen times it. Zero (or negative) replays as
	// fast as possible. Pacing uses the gap between recorded EmittedAt
	// clocks; the events themselves keep their recorded times either
	// way, so dedup TTLs and quota windows — which run on event time —
	// behave identically at any speed.
	Speed float64
}

// EventLogReplayDialer replays an event-log archive (as written by
// eventlog.Writer / the -record sink) as one finite source ending in
// ErrDone. open is called on every (re)dial, so an interrupted replay
// restarts from the top. Combine with Blocking so the replay is
// flow-controlled instead of shed.
func EventLogReplayDialer(open func() (io.ReadCloser, error), cfg EventLogReplay) Dialer {
	return DialFunc(func() (Conn, error) {
		rc, err := open()
		if err != nil {
			return nil, err
		}
		return &evlogConn{
			rc:     rc,
			r:      eventlog.NewReader(rc),
			speed:  cfg.Speed,
			closed: make(chan struct{}),
		}, nil
	})
}

// EventLogFileDialer replays the rotated segment files matching the
// glob pattern (e.g. "capture-*.evlog"), concatenated in name order —
// the order the recorder wrote them, since segment numbers are
// zero-padded. A pattern matching nothing is a dial error, retried with
// backoff, so a replay can be started before its capture finishes
// rotating the first segment out.
func EventLogFileDialer(pattern string, cfg EventLogReplay) Dialer {
	return EventLogReplayDialer(func() (io.ReadCloser, error) {
		paths, err := filepath.Glob(pattern)
		if err != nil {
			return nil, err
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("eventlog: no segments match %q", pattern)
		}
		sort.Strings(paths)
		return &chainReader{paths: paths}, nil
	}, cfg)
}

type evlogConn struct {
	rc    io.ReadCloser
	r     *eventlog.Reader
	speed float64

	closed    chan struct{}
	closeOnce sync.Once

	// Pacing anchors the first record's event time to the wall clock;
	// every later record is due (EmittedAt-base)/speed after that.
	started bool
	base    time.Duration
	start   time.Time

	// pending holds a record read ahead of its due time, returned with
	// the next batch.
	pending     feedtypes.Event
	havePending bool

	// buf is the reused per-Recv batch (Conn contract: valid until the
	// next Recv).
	buf []feedtypes.Event
}

func (c *evlogConn) Recv() ([]feedtypes.Event, error) {
	batch := c.buf[:0]
	for {
		var ev feedtypes.Event
		if c.havePending {
			ev, c.havePending = c.pending, false
		} else {
			rec, err := c.r.Next()
			if err == io.EOF {
				if len(batch) > 0 {
					c.buf = batch
					return batch, nil
				}
				return nil, ErrDone
			}
			if err != nil {
				return nil, err
			}
			ev = rec.Event
		}
		if c.speed > 0 {
			if !c.started {
				c.started, c.base, c.start = true, ev.EmittedAt, time.Now()
			}
			wait := time.Duration(float64(ev.EmittedAt-c.base)/c.speed) - time.Since(c.start)
			if wait > 0 {
				if len(batch) > 0 {
					// Deliver what is due; the read-ahead record waits for
					// its own time on the next Recv.
					c.pending, c.havePending = ev, true
					c.buf = batch
					return batch, nil
				}
				if !c.sleep(wait) {
					return nil, errors.New("eventlog: replay closed")
				}
			}
		}
		batch = append(batch, ev)
		if len(batch) >= maxRecvBatch {
			c.buf = batch
			return batch, nil
		}
	}
}

// sleep waits d unless the conn is closed first — Remove/Close must not
// hang behind a long recorded gap.
func (c *evlogConn) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.closed:
		return false
	case <-t.C:
		return true
	}
}

func (c *evlogConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.rc.Close()
}

// chainReader concatenates files, opening each lazily so a replay over
// many rotated segments holds one descriptor at a time.
type chainReader struct {
	paths []string
	cur   io.ReadCloser
}

func (c *chainReader) Read(p []byte) (int, error) {
	for {
		if c.cur == nil {
			if len(c.paths) == 0 {
				return 0, io.EOF
			}
			f, err := os.Open(c.paths[0])
			if err != nil {
				return 0, err
			}
			c.paths = c.paths[1:]
			c.cur = f
		}
		n, err := c.cur.Read(p)
		if err == io.EOF {
			c.cur.Close()
			c.cur = nil
			if n > 0 {
				return n, nil
			}
			continue
		}
		return n, err
	}
}

func (c *chainReader) Close() error {
	if c.cur != nil {
		err := c.cur.Close()
		c.cur = nil
		return err
	}
	return nil
}
