package prefix

import (
	"strings"
	"testing"
)

// The fuzz wall around the dual-stack parse/format core. Each target is
// run continuously by `make fuzz` (and a short CI smoke job); the checked-
// in corpora under testdata/fuzz/ keep the interesting ::-compression and
// family edge cases regression-tested in every ordinary `go test` run.

// FuzzParseAddr: anything ParseAddr accepts must round-trip through String
// exactly (same address, same family), and String must be canonical (a
// second round trip is a fixed point).
func FuzzParseAddr(f *testing.F) {
	for _, s := range []string{
		"0.0.0.0", "255.255.255.255", "10.0.0.1", "192.168.1.200",
		"::", "::1", "1::", "2001:db8::1", "1:2:3:4:5:6:7:8",
		"1:2:3:4:5:6:7::", "::2:3:4:5:6:7:8", "2001:db8:0:0:1:0:0:1",
		"::ffff:10.0.0.1", "64:ff9b::1.2.3.4", "1:2:3:4:5:6:1.2.3.4",
		"fe80::1%eth0", "1:::2", "12345::", "1.2.3.4.5", ":",
		"ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		if err != nil {
			return
		}
		if a.Is4() == strings.ContainsRune(s, ':') {
			t.Fatalf("ParseAddr(%q): family flag disagrees with text form", s)
		}
		c := a.String()
		a2, err := ParseAddr(c)
		if err != nil {
			t.Fatalf("ParseAddr(%q) ok but String %q does not reparse: %v", s, c, err)
		}
		if a2 != a {
			t.Fatalf("round trip %q -> %q -> %v != %v", s, c, a2, a)
		}
		if c2 := a2.String(); c2 != c {
			t.Fatalf("String not canonical: %q -> %q", c, c2)
		}
	})
}

// FuzzParsePrefix: anything Parse accepts must have no host bits, a length
// within the family bound, and round-trip through String exactly.
func FuzzParsePrefix(f *testing.F) {
	for _, s := range []string{
		"0.0.0.0/0", "10.0.0.0/23", "255.255.255.255/32", "10.0.0.1/23",
		"::/0", "2001:db8::/32", "::1/128", "2001:db8::/129", "2001:db8::1/32",
		"::ffff:a00:0/112", "1:2:3:4:5:6:7:8/128", "2001:db8:0:0:8000::/65",
		"10.0.0.0", "10.0.0.0/x", "/24", "::/",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		if p.Bits() < 0 || p.Bits() > p.MaxBits() {
			t.Fatalf("Parse(%q): length %d out of range for family", s, p.Bits())
		}
		if p.Addr() != p.Addr().mask(p.Bits()) {
			t.Fatalf("Parse(%q): host bits survived", s)
		}
		c := p.String()
		p2, err := Parse(c)
		if err != nil {
			t.Fatalf("Parse(%q) ok but String %q does not reparse: %v", s, c, err)
		}
		if p2 != p {
			t.Fatalf("round trip %q -> %q -> %v != %v", s, c, p2, p)
		}
		if c2 := p2.String(); c2 != c {
			t.Fatalf("String not canonical: %q -> %q", c, c2)
		}
	})
}

// FuzzPrefixString drives the formatter from raw bits instead of text, so
// the ::-compression logic sees address patterns no parser output would:
// every zero-run shape, both word halves, both families, every length.
// It also cross-checks the wire-byte codec on the same prefix.
func FuzzPrefixString(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint32(0), uint8(0), false)
	f.Add(uint64(0x20010db800000000), uint64(1), uint32(0x0a000000), uint8(48), true)
	f.Add(^uint64(0), ^uint64(0), ^uint32(0), uint8(128), true)
	f.Add(uint64(1), uint64(1<<63), uint32(1), uint8(65), true)
	f.Add(uint64(0), uint64(0xffff0a000001), uint32(0), uint8(112), true)
	f.Fuzz(func(t *testing.T, hi, lo uint64, v4 uint32, bits uint8, is6 bool) {
		var p Prefix
		if is6 {
			p = New(AddrFrom16(hi, lo), int(bits)%129)
		} else {
			p = New(AddrFrom4(v4), int(bits)%33)
		}
		s := p.String()
		p2, err := Parse(s)
		if err != nil {
			t.Fatalf("String %q of %#v does not reparse: %v", s, p, err)
		}
		if p2 != p {
			t.Fatalf("round trip %#v -> %q -> %#v", p, s, p2)
		}
		wire := p.AppendBytes(nil)
		if len(wire) != (p.Bits()+7)/8 {
			t.Fatalf("AppendBytes(%s): %d bytes", p, len(wire))
		}
		p3, err := FromBytes(wire, p.Bits(), p.Is6())
		if err != nil || p3 != p {
			t.Fatalf("wire round trip %s -> %x -> %v (%v)", p, wire, p3, err)
		}
	})
}
