package prefix

import (
	"math/rand"
	"testing"
)

// oracle is the naive reference the trie is checked against: a flat set of
// prefixes with linear-scan longest-prefix match.
type oracle struct {
	set map[Prefix]int
}

func newOracle() *oracle { return &oracle{set: map[Prefix]int{}} }

func (o *oracle) insert(p Prefix, v int) bool {
	_, had := o.set[p]
	o.set[p] = v
	return !had
}

func (o *oracle) delete(p Prefix) bool {
	_, had := o.set[p]
	delete(o.set, p)
	return had
}

func (o *oracle) longestMatch(a Addr) (Prefix, int, bool) {
	best, bestV, ok := Prefix{}, 0, false
	for p, v := range o.set {
		if p.ContainsAddr(a) && (!ok || p.Bits() > best.Bits()) {
			best, bestV, ok = p, v, true
		}
	}
	return best, bestV, ok
}

func (o *oracle) longestMatchPrefix(q Prefix) (Prefix, int, bool) {
	best, bestV, ok := Prefix{}, 0, false
	for p, v := range o.set {
		if p.Contains(q) && (!ok || p.Bits() > best.Bits()) {
			best, bestV, ok = p, v, true
		}
	}
	return best, bestV, ok
}

// randPrefix draws a mixed-family prefix from a deliberately collision-happy
// space (few distinct address bits, all lengths) so inserts, replacements,
// deletes, and nested prefixes all occur.
func randPrefix(rng *rand.Rand) Prefix {
	if rng.Intn(2) == 0 {
		return New(AddrFrom4(rng.Uint32()&0xfff00000), rng.Intn(13))
	}
	hi := uint64(0x20010db800000000) | uint64(rng.Intn(1<<12))<<20
	lo := uint64(rng.Intn(4)) << 62
	bits := rng.Intn(67) // 0..66 straddles the hi/lo word boundary
	return New(AddrFrom16(hi, lo), bits)
}

func randAddr(rng *rand.Rand) Addr {
	if rng.Intn(2) == 0 {
		return AddrFrom4(rng.Uint32() & 0xffff0000)
	}
	return AddrFrom16(uint64(0x20010db800000000)|uint64(rng.Intn(1<<12))<<20, uint64(rng.Uint32())<<32)
}

// TestTrieMatchesOracleDualStack drives randomized insert/delete/lookup
// interleavings over mixed v4+v6 prefix sets and checks every operation's
// result — and, periodically, full LPM agreement — against the linear-scan
// oracle. This is the property wall around the dual-stack generalization:
// any divergence between the 128-bit radix walk and first-principles
// containment fails here.
func TestTrieMatchesOracleDualStack(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTrie[int]()
		ref := newOracle()
		for op := 0; op < 4000; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // insert
				p := randPrefix(rng)
				if got, want := tr.Insert(p, op), ref.insert(p, op); got != want {
					t.Fatalf("seed %d op %d: Insert(%s) added=%v, oracle %v", seed, op, p, got, want)
				}
			case 4, 5: // delete
				p := randPrefix(rng)
				if got, want := tr.Delete(p), ref.delete(p); got != want {
					t.Fatalf("seed %d op %d: Delete(%s) = %v, oracle %v", seed, op, p, got, want)
				}
			case 6, 7: // address LPM
				a := randAddr(rng)
				gotP, gotV, gotOK := tr.LongestMatch(a)
				wantP, wantV, wantOK := ref.longestMatch(a)
				if gotOK != wantOK || (gotOK && (gotP != wantP || gotV != wantV)) {
					t.Fatalf("seed %d op %d: LongestMatch(%s) = %s,%d,%v; oracle %s,%d,%v",
						seed, op, a, gotP, gotV, gotOK, wantP, wantV, wantOK)
				}
			case 8: // prefix LPM
				q := randPrefix(rng)
				gotP, gotV, gotOK := tr.LongestMatchPrefix(q)
				wantP, wantV, wantOK := ref.longestMatchPrefix(q)
				if gotOK != wantOK || (gotOK && (gotP != wantP || gotV != wantV)) {
					t.Fatalf("seed %d op %d: LongestMatchPrefix(%s) = %s,%d,%v; oracle %s,%d,%v",
						seed, op, q, gotP, gotV, gotOK, wantP, wantV, wantOK)
				}
			case 9: // exact get
				p := randPrefix(rng)
				gotV, gotOK := tr.Get(p)
				wantV, wantOK := ref.set[p]
				if gotOK != wantOK || (gotOK && gotV != wantV) {
					t.Fatalf("seed %d op %d: Get(%s) = %d,%v; oracle %d,%v", seed, op, p, gotV, gotOK, wantV, wantOK)
				}
			}
			if tr.Len() != len(ref.set) {
				t.Fatalf("seed %d op %d: Len = %d, oracle %d", seed, op, tr.Len(), len(ref.set))
			}
		}
		// Final sweep: the walk enumerates exactly the oracle's set.
		walked := map[Prefix]int{}
		tr.Walk(func(p Prefix, v int) bool {
			walked[p] = v
			return true
		})
		if len(walked) != len(ref.set) {
			t.Fatalf("seed %d: Walk saw %d prefixes, oracle has %d", seed, len(walked), len(ref.set))
		}
		for p, v := range ref.set {
			if walked[p] != v {
				t.Fatalf("seed %d: Walk missed %s=%d", seed, p, v)
			}
		}
	}
}

// TestTrieCoveredByMatchesOracleDualStack checks subtree enumeration (the
// squat-detection path) against the oracle.
func TestTrieCoveredByMatchesOracleDualStack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := NewTrie[int]()
	ref := newOracle()
	for i := 0; i < 2000; i++ {
		p := randPrefix(rng)
		tr.Insert(p, i)
		ref.insert(p, i)
	}
	for i := 0; i < 500; i++ {
		q := randPrefix(rng)
		got := map[Prefix]bool{}
		tr.CoveredBy(q, func(p Prefix, _ int) bool {
			got[p] = true
			return true
		})
		want := map[Prefix]bool{}
		for p := range ref.set {
			if q.Contains(p) {
				want[p] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("CoveredBy(%s): %d prefixes, oracle %d", q, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("CoveredBy(%s) missed %s", q, p)
			}
		}
	}
}
