// Package prefix provides IPv4 prefix (CIDR) arithmetic for BGP routing:
// parsing, containment, splitting, de-aggregation, and a binary radix trie
// with longest-prefix matching.
//
// ARTEMIS reasons exclusively about IPv4 prefixes (the paper's evaluation
// hijacks an IPv4 /23), so the package is deliberately v4-only; addresses
// are uint32 in host byte order, which keeps every operation allocation-free.
package prefix

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	var parts [4]uint64
	rest := s
	for i := 0; i < 4; i++ {
		var tok string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("prefix: invalid IPv4 address %q", s)
			}
			tok, rest = rest[:dot], rest[dot+1:]
		} else {
			tok = rest
		}
		v, err := strconv.ParseUint(tok, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("prefix: invalid IPv4 address %q", s)
		}
		parts[i] = v
	}
	return Addr(parts[0]<<24 | parts[1]<<16 | parts[2]<<8 | parts[3]), nil
}

// MustParseAddr is ParseAddr that panics on error; for tests and constants.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String returns the dotted-quad form of the address.
func (a Addr) String() string {
	var b [15]byte
	buf := strconv.AppendUint(b[:0], uint64(a>>24), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>16&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>8&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a&0xff), 10)
	return string(buf)
}

// Prefix is an IPv4 CIDR prefix. The zero value is 0.0.0.0/0 (the default
// route), which is a valid prefix.
type Prefix struct {
	addr Addr
	bits uint8
}

// New returns the prefix addr/bits with host bits zeroed. It panics if
// bits > 32 so that an impossible prefix cannot circulate silently.
func New(addr Addr, bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic(fmt.Sprintf("prefix: invalid length %d", bits))
	}
	return Prefix{addr: addr & Mask(bits), bits: uint8(bits)}
}

// Mask returns the network mask for a prefix length.
func Mask(bits int) Addr {
	if bits <= 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - uint(bits)))
}

// Parse parses "a.b.c.d/len" CIDR notation. Host bits set beyond the mask
// are an error (BGP NLRI never carries them).
func Parse(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("prefix: missing '/' in %q", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("prefix: invalid length in %q", s)
	}
	if addr&^Mask(bits) != 0 {
		return Prefix{}, fmt.Errorf("prefix: host bits set in %q", s)
	}
	return Prefix{addr: addr, bits: uint8(bits)}, nil
}

// MustParse is Parse that panics on error; for tests and table literals.
func MustParse(s string) Prefix {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Addr returns the network address of the prefix.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return int(p.bits) }

// String returns CIDR notation.
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// Contains reports whether p contains (or equals) q: q's network falls
// inside p and q is at least as specific.
func (p Prefix) Contains(q Prefix) bool {
	return p.bits <= q.bits && q.addr&Mask(int(p.bits)) == p.addr
}

// ContainsAddr reports whether the address falls inside p.
func (p Prefix) ContainsAddr(a Addr) bool {
	return a&Mask(int(p.bits)) == p.addr
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q) || q.Contains(p)
}

// Last returns the highest address inside the prefix.
func (p Prefix) Last() Addr {
	return p.addr | ^Mask(int(p.bits))
}

// Split returns the two halves of p, each one bit more specific.
// It panics on a /32, which cannot be split.
func (p Prefix) Split() (lo, hi Prefix) {
	if p.bits >= 32 {
		panic("prefix: cannot split a /32")
	}
	nb := p.bits + 1
	lo = Prefix{addr: p.addr, bits: nb}
	hi = Prefix{addr: p.addr | 1<<(32-uint(nb)), bits: nb}
	return lo, hi
}

// Parent returns the prefix one bit less specific that contains p.
// It panics on a /0.
func (p Prefix) Parent() Prefix {
	if p.bits == 0 {
		panic("prefix: /0 has no parent")
	}
	return New(p.addr, int(p.bits)-1)
}

// Deaggregate returns the 2^(bits-p.Bits()) sub-prefixes of p at the given
// length, in address order. This is the mitigation primitive of ARTEMIS §2:
// a hijacked /23 de-aggregates into its two /24s, which are more specific
// than the attacker's announcement and therefore preferred everywhere.
// If bits <= p.Bits() the prefix itself is returned. Requesting more than
// 2^16 sub-prefixes is an error: no operator floods the table like that,
// and refusing protects callers from typos (e.g. de-aggregating a /8 to /32s).
func (p Prefix) Deaggregate(bits int) ([]Prefix, error) {
	if bits < 0 || bits > 32 {
		return nil, fmt.Errorf("prefix: invalid target length %d", bits)
	}
	if bits <= int(p.bits) {
		return []Prefix{p}, nil
	}
	n := bits - int(p.bits)
	if n > 16 {
		return nil, fmt.Errorf("prefix: refusing to de-aggregate %s into 2^%d /%ds", p, n, bits)
	}
	count := 1 << uint(n)
	step := Addr(1) << (32 - uint(bits))
	out := make([]Prefix, count)
	for i := 0; i < count; i++ {
		out[i] = Prefix{addr: p.addr + Addr(i)*step, bits: uint8(bits)}
	}
	return out, nil
}

// Compare orders prefixes by network address, then by length (less
// specific first). It returns -1, 0, or +1.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.addr < q.addr:
		return -1
	case p.addr > q.addr:
		return 1
	case p.bits < q.bits:
		return -1
	case p.bits > q.bits:
		return 1
	}
	return 0
}

// bit returns the i-th most significant bit (0-indexed) of the network
// address; used by the trie.
func (p Prefix) bit(i int) int {
	return int(p.addr >> (31 - uint(i)) & 1)
}
