// Package prefix provides dual-stack (IPv4 + IPv6) prefix (CIDR) arithmetic
// for BGP routing: parsing, containment, splitting, de-aggregation, and a
// binary radix trie with longest-prefix matching.
//
// # Representation
//
// Addr is a 128-bit value (two uint64 words, network bit order: hi carries
// bits 0–63, lo bits 64–127) plus a family flag. An IPv4 address lives in
// the low 32 bits of lo with the flag clear, so the v4 fast path is a single
// 64-bit operation and every operation on either family is allocation-free.
// The family bit is preserved through parse and format: a v4 address round-
// trips through dotted-quad text exactly, and never compares equal to any
// v6 address.
//
// # v4-mapping rules
//
// The two families are distinct key spaces everywhere: 10.0.0.1 and
// ::ffff:10.0.0.1 are different addresses, 10.0.0.0/24 and a v6 prefix
// never contain one another, and the trie keeps one radix tree per family.
// ::ffff:a.b.c.d parses (the textual form is valid RFC 4291) but stays a v6
// address — BGP carries v4 and v6 NLRI in separate address families, and
// identifying them would let a v6 announcement shadow v4 owned space.
// Prefix lengths are family-relative: /24 of a v4 prefix means 24 of 32
// bits, /48 of a v6 prefix means 48 of 128.
package prefix

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 or IPv6 address. The zero value is the IPv4 address
// 0.0.0.0. Addr is comparable and usable as a map key; == distinguishes
// families.
type Addr struct {
	// hi/lo hold the address in network bit order: for v6, hi is the first
	// 8 bytes and lo the last 8; for v4 the 32-bit value sits in the low
	// half of lo with hi zero.
	hi, lo uint64
	is6    bool
}

// AddrFrom4 returns the IPv4 address with the given 32-bit value in host
// byte order (e.g. 10.0.0.1 = 0x0a000001).
func AddrFrom4(v uint32) Addr { return Addr{lo: uint64(v)} }

// AddrFrom16 returns the IPv6 address with the given 128-bit value: hi is
// the first 8 bytes in network order, lo the last 8.
func AddrFrom16(hi, lo uint64) Addr { return Addr{hi: hi, lo: lo, is6: true} }

// AddrFrom16Bytes returns the IPv6 address encoded in the first 16 bytes
// of b (network order) — the inverse of As16 for v6 addresses. It panics
// if b is shorter than 16 bytes, like the encoding/binary readers; wire
// parsers (MP_REACH next hops, MRT v6 peers) length-check first.
func AddrFrom16Bytes(b []byte) Addr {
	_ = b[15]
	var hi, lo uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(b[i])
		lo = lo<<8 | uint64(b[8+i])
	}
	return Addr{hi: hi, lo: lo, is6: true}
}

// Is4 reports whether the address is IPv4.
func (a Addr) Is4() bool { return !a.is6 }

// Is6 reports whether the address is IPv6.
func (a Addr) Is6() bool { return a.is6 }

// V4 returns the 32-bit value of an IPv4 address in host byte order. For a
// v6 address it returns the low 32 bits (callers should gate on Is4).
func (a Addr) V4() uint32 { return uint32(a.lo) }

// Uint128 returns the address as a 128-bit value (hi first). For a v4
// address the value occupies the low 32 bits.
func (a Addr) Uint128() (hi, lo uint64) { return a.hi, a.lo }

// MaxBits returns the address family's prefix-length bound: 32 or 128.
func (a Addr) MaxBits() int {
	if a.is6 {
		return 128
	}
	return 32
}

// As16 returns the 16-byte network-order form: the full v6 address, or the
// RFC 4291 v4-mapped form (::ffff:a.b.c.d) for a v4 address.
func (a Addr) As16() (b [16]byte) {
	hi, lo := a.hi, a.lo
	if !a.is6 {
		hi, lo = 0, 0xffff00000000|a.lo
	}
	for i := 0; i < 8; i++ {
		b[i] = byte(hi >> (56 - 8*uint(i)))
		b[8+i] = byte(lo >> (56 - 8*uint(i)))
	}
	return b
}

// Compare orders addresses: every v4 address before every v6 address, then
// numerically. It returns -1, 0, or +1.
func (a Addr) Compare(b Addr) int {
	switch {
	case !a.is6 && b.is6:
		return -1
	case a.is6 && !b.is6:
		return 1
	case a.hi < b.hi:
		return -1
	case a.hi > b.hi:
		return 1
	case a.lo < b.lo:
		return -1
	case a.lo > b.lo:
		return 1
	}
	return 0
}

// Less reports a.Compare(b) < 0.
func (a Addr) Less(b Addr) bool { return a.Compare(b) < 0 }

// Next returns the address plus one, wrapping within the family (as the
// former uint32 representation did).
func (a Addr) Next() Addr {
	if !a.is6 {
		return Addr{lo: uint64(uint32(a.lo) + 1)}
	}
	lo := a.lo + 1
	hi := a.hi
	if lo == 0 {
		hi++
	}
	return Addr{hi: hi, lo: lo, is6: true}
}

// bit returns the i-th most significant bit (0-indexed, family-relative)
// of the address; used by the trie.
func (a Addr) bit(i int) int {
	if !a.is6 {
		return int(a.lo >> (31 - uint(i)) & 1)
	}
	if i < 64 {
		return int(a.hi >> (63 - uint(i)) & 1)
	}
	return int(a.lo >> (127 - uint(i)) & 1)
}

// mask returns the address ANDed with the family-relative network mask.
func (a Addr) mask(bits int) Addr {
	if !a.is6 {
		return Addr{lo: a.lo & v4mask(bits)}
	}
	mh, ml := mask128(bits)
	return Addr{hi: a.hi & mh, lo: a.lo & ml, is6: true}
}

// lastIn returns the address ORed with the family-relative host mask — the
// highest address sharing the first `bits` bits.
func (a Addr) lastIn(bits int) Addr {
	if !a.is6 {
		return Addr{lo: a.lo | (^v4mask(bits) & 0xffffffff)}
	}
	mh, ml := mask128(bits)
	return Addr{hi: a.hi | ^mh, lo: a.lo | ^ml, is6: true}
}

// withBit returns the address with family-relative bit i set.
func (a Addr) withBit(i int) Addr {
	if !a.is6 {
		return Addr{lo: a.lo | 1<<(31-uint(i))}
	}
	if i < 64 {
		return Addr{hi: a.hi | 1<<(63-uint(i)), lo: a.lo, is6: true}
	}
	return Addr{hi: a.hi, lo: a.lo | 1<<(127-uint(i)), is6: true}
}

// v4mask is the 32-bit network mask for bits in 0..32, widened to uint64.
func v4mask(bits int) uint64 {
	if bits <= 0 {
		return 0
	}
	return (^uint64(0) << (32 - uint(bits))) & 0xffffffff
}

// mask128 is the 128-bit network mask for bits in 0..128.
func mask128(bits int) (hi, lo uint64) {
	switch {
	case bits <= 0:
		return 0, 0
	case bits <= 64:
		return ^uint64(0) << (64 - uint(bits)), 0
	case bits < 128:
		return ^uint64(0), ^uint64(0) << (128 - uint(bits))
	default:
		return ^uint64(0), ^uint64(0)
	}
}

// addrAdd returns a + (delta << shift) within a's family, wrapping like
// fixed-width integer arithmetic. Used by Deaggregate to step sub-prefixes.
func (a Addr) addrAdd(delta uint64, shift uint) Addr {
	if !a.is6 {
		return Addr{lo: uint64(uint32(a.lo) + uint32(delta<<shift))}
	}
	var dh, dl uint64
	switch {
	case shift >= 128:
	case shift >= 64:
		dh = delta << (shift - 64)
	default:
		dl = delta << shift
		if shift > 0 {
			dh = delta >> (64 - shift)
		}
	}
	lo := a.lo + dl
	hi := a.hi + dh
	if lo < a.lo {
		hi++
	}
	return Addr{hi: hi, lo: lo, is6: true}
}

// ParseAddr parses a textual IP address: dotted-quad IPv4, or RFC 4291
// IPv6 (hex groups, at most one "::" compression, optional embedded
// dotted-quad tail). The family of the text determines the family of the
// result; ::ffff:a.b.c.d stays IPv6 (see the package comment).
func ParseAddr(s string) (Addr, error) {
	if strings.IndexByte(s, ':') >= 0 {
		return parseAddr6(s)
	}
	v, err := parseAddr4(s)
	if err != nil {
		return Addr{}, err
	}
	return AddrFrom4(v), nil
}

func parseAddr4(s string) (uint32, error) {
	var parts [4]uint64
	rest := s
	for i := 0; i < 4; i++ {
		var tok string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("prefix: invalid IPv4 address %q", s)
			}
			tok, rest = rest[:dot], rest[dot+1:]
		} else {
			tok = rest
		}
		// Reject leading zeros: inet_aton-style parsers read "010" as
		// octal 8, so accepting it as decimal 10 would guard the wrong
		// owned space on such a config. net/netip rejects these too.
		if len(tok) > 1 && tok[0] == '0' {
			return 0, fmt.Errorf("prefix: invalid IPv4 address %q", s)
		}
		v, err := strconv.ParseUint(tok, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("prefix: invalid IPv4 address %q", s)
		}
		parts[i] = v
	}
	return uint32(parts[0]<<24 | parts[1]<<16 | parts[2]<<8 | parts[3]), nil
}

func parseAddr6(s string) (Addr, error) {
	bad := func() (Addr, error) { return Addr{}, fmt.Errorf("prefix: invalid IPv6 address %q", s) }
	if s == "" {
		return bad()
	}
	// Split around at most one "::".
	var head, tail string
	gap := strings.Index(s, "::")
	if gap >= 0 {
		head, tail = s[:gap], s[gap+2:]
		if strings.Contains(tail, "::") {
			return bad()
		}
	} else {
		head = s
	}
	// groups holds the 16-bit words of each side; a trailing dotted quad
	// counts as two words.
	split := func(part string, allowV4Tail bool) ([]uint16, error) {
		if part == "" {
			return nil, nil
		}
		toks := strings.Split(part, ":")
		var out []uint16
		for i, tok := range toks {
			if tok == "" {
				return nil, fmt.Errorf("empty group")
			}
			if allowV4Tail && i == len(toks)-1 && strings.IndexByte(tok, '.') >= 0 {
				v4, err := parseAddr4(tok)
				if err != nil {
					return nil, err
				}
				out = append(out, uint16(v4>>16), uint16(v4))
				continue
			}
			if len(tok) > 4 {
				return nil, fmt.Errorf("group too long")
			}
			v, err := strconv.ParseUint(tok, 16, 16)
			if err != nil {
				return nil, err
			}
			out = append(out, uint16(v))
		}
		return out, nil
	}
	hw, err := split(head, gap < 0) // a v4 tail in head is only valid with no "::" after it
	if err != nil {
		return bad()
	}
	tw, err := split(tail, true)
	if err != nil {
		return bad()
	}
	var words [8]uint16
	if gap < 0 {
		if len(hw) != 8 {
			return bad()
		}
		copy(words[:], hw)
	} else {
		// "::" must stand for at least one zero group.
		if len(hw)+len(tw) >= 8 {
			return bad()
		}
		copy(words[:], hw)
		copy(words[8-len(tw):], tw)
	}
	var hi, lo uint64
	for i := 0; i < 4; i++ {
		hi = hi<<16 | uint64(words[i])
		lo = lo<<16 | uint64(words[4+i])
	}
	return AddrFrom16(hi, lo), nil
}

// MustParseAddr is ParseAddr that panics on error; for tests and constants.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String returns the canonical text form: dotted-quad for v4, RFC 5952 for
// v6 (lowercase hex, longest run of two or more zero groups compressed,
// leftmost run on ties).
func (a Addr) String() string {
	var b [41]byte
	return string(a.AppendText(b[:0]))
}

// AppendText appends the canonical text form (see String) to dst and
// returns the extended slice. It never allocates when dst has capacity,
// which keeps hot-path encoders (the eventlog codec) allocation-free.
func (a Addr) AppendText(dst []byte) []byte {
	if !a.is6 {
		v := uint32(a.lo)
		dst = strconv.AppendUint(dst, uint64(v>>24), 10)
		dst = append(dst, '.')
		dst = strconv.AppendUint(dst, uint64(v>>16&0xff), 10)
		dst = append(dst, '.')
		dst = strconv.AppendUint(dst, uint64(v>>8&0xff), 10)
		dst = append(dst, '.')
		return strconv.AppendUint(dst, uint64(v&0xff), 10)
	}
	var words [8]uint16
	for i := 0; i < 4; i++ {
		words[i] = uint16(a.hi >> (48 - 16*uint(i)))
		words[4+i] = uint16(a.lo >> (48 - 16*uint(i)))
	}
	// Longest run of >= 2 zero groups, leftmost wins ties.
	zStart, zLen := -1, 0
	for i := 0; i < 8; {
		if words[i] != 0 {
			i++
			continue
		}
		j := i
		for j < 8 && words[j] == 0 {
			j++
		}
		if j-i >= 2 && j-i > zLen {
			zStart, zLen = i, j-i
		}
		i = j
	}
	start := len(dst)
	for i := 0; i < 8; i++ {
		if i == zStart {
			dst = append(dst, ':', ':')
			i += zLen - 1
			continue
		}
		if len(dst) > start && dst[len(dst)-1] != ':' {
			dst = append(dst, ':')
		}
		dst = strconv.AppendUint(dst, uint64(words[i]), 16)
	}
	if len(dst) == start {
		dst = append(dst, ':', ':')
	}
	return dst
}

// Prefix is a CIDR prefix of either family. The zero value is 0.0.0.0/0
// (the IPv4 default route), which is a valid prefix. Prefix lengths are
// family-relative (0..32 for v4, 0..128 for v6).
type Prefix struct {
	addr Addr
	bits uint8
}

// New returns the prefix addr/bits with host bits zeroed. It panics if
// bits exceeds the address family's bound so that an impossible prefix
// cannot circulate silently.
func New(addr Addr, bits int) Prefix {
	if bits < 0 || bits > addr.MaxBits() {
		panic(fmt.Sprintf("prefix: invalid length %d for %s", bits, addr))
	}
	return Prefix{addr: addr.mask(bits), bits: uint8(bits)}
}

// Parse parses "addr/len" CIDR notation of either family. Host bits set
// beyond the mask are an error (BGP NLRI never carries them).
func Parse(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("prefix: missing '/' in %q", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	lenTok := s[slash+1:]
	// ParseUint rejects signs; leading zeros ("/08") are rejected here so
	// every valid prefix has exactly one textual form.
	if len(lenTok) > 1 && lenTok[0] == '0' {
		return Prefix{}, fmt.Errorf("prefix: invalid length in %q", s)
	}
	bits64, err := strconv.ParseUint(lenTok, 10, 8)
	if err != nil || int(bits64) > addr.MaxBits() {
		return Prefix{}, fmt.Errorf("prefix: invalid length in %q", s)
	}
	bits := int(bits64)
	if addr != addr.mask(bits) {
		return Prefix{}, fmt.Errorf("prefix: host bits set in %q", s)
	}
	return Prefix{addr: addr, bits: uint8(bits)}, nil
}

// MustParse is Parse that panics on error; for tests and table literals.
func MustParse(s string) Prefix {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Addr returns the network address of the prefix.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length (family-relative).
func (p Prefix) Bits() int { return int(p.bits) }

// MaxBits returns the family's prefix-length bound: 32 or 128.
func (p Prefix) MaxBits() int { return p.addr.MaxBits() }

// Is4 reports whether the prefix is IPv4.
func (p Prefix) Is4() bool { return !p.addr.is6 }

// Is6 reports whether the prefix is IPv6.
func (p Prefix) Is6() bool { return p.addr.is6 }

// String returns CIDR notation.
func (p Prefix) String() string {
	var b [45]byte
	return string(p.AppendText(b[:0]))
}

// AppendText appends CIDR notation to dst (see Addr.AppendText).
func (p Prefix) AppendText(dst []byte) []byte {
	dst = p.addr.AppendText(dst)
	dst = append(dst, '/')
	return strconv.AppendUint(dst, uint64(p.bits), 10)
}

// Contains reports whether p contains (or equals) q: same family, q's
// network falls inside p, and q is at least as specific.
func (p Prefix) Contains(q Prefix) bool {
	return p.addr.is6 == q.addr.is6 && p.bits <= q.bits && q.addr.mask(int(p.bits)) == p.addr
}

// ContainsAddr reports whether the address falls inside p (families must
// match).
func (p Prefix) ContainsAddr(a Addr) bool {
	return p.addr.is6 == a.is6 && a.mask(int(p.bits)) == p.addr
}

// Overlaps reports whether p and q share any address. Prefixes of
// different families never overlap.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q) || q.Contains(p)
}

// Last returns the highest address inside the prefix.
func (p Prefix) Last() Addr {
	return p.addr.lastIn(int(p.bits))
}

// Split returns the two halves of p, each one bit more specific.
// It panics on a full-length prefix (/32 or /128), which cannot be split.
func (p Prefix) Split() (lo, hi Prefix) {
	if int(p.bits) >= p.MaxBits() {
		panic(fmt.Sprintf("prefix: cannot split a /%d", p.bits))
	}
	nb := p.bits + 1
	lo = Prefix{addr: p.addr, bits: nb}
	hi = Prefix{addr: p.addr.withBit(int(nb) - 1), bits: nb}
	return lo, hi
}

// Parent returns the prefix one bit less specific that contains p.
// It panics on a /0.
func (p Prefix) Parent() Prefix {
	if p.bits == 0 {
		panic("prefix: /0 has no parent")
	}
	return New(p.addr, int(p.bits)-1)
}

// Deaggregate returns the 2^(bits-p.Bits()) sub-prefixes of p at the given
// length, in address order. This is the mitigation primitive of ARTEMIS §2:
// a hijacked /23 de-aggregates into its two /24s (a v6 /47 into its two
// /48s), which are more specific than the attacker's announcement and
// therefore preferred everywhere. If bits <= p.Bits() the prefix itself is
// returned. Requesting more than 2^16 sub-prefixes is an error: no operator
// floods the table like that, and refusing protects callers from typos
// (e.g. de-aggregating a /8 to /32s).
func (p Prefix) Deaggregate(bits int) ([]Prefix, error) {
	if bits < 0 || bits > p.MaxBits() {
		return nil, fmt.Errorf("prefix: invalid target length %d", bits)
	}
	if bits <= int(p.bits) {
		return []Prefix{p}, nil
	}
	n := bits - int(p.bits)
	if n > 16 {
		return nil, fmt.Errorf("prefix: refusing to de-aggregate %s into 2^%d /%ds", p, n, bits)
	}
	count := 1 << uint(n)
	shift := uint(p.MaxBits() - bits)
	out := make([]Prefix, count)
	for i := 0; i < count; i++ {
		out[i] = Prefix{addr: p.addr.addrAdd(uint64(i), shift), bits: uint8(bits)}
	}
	return out, nil
}

// Compare orders prefixes: v4 before v6, then by network address, then by
// length (less specific first). It returns -1, 0, or +1.
func (p Prefix) Compare(q Prefix) int {
	if c := p.addr.Compare(q.addr); c != 0 {
		return c
	}
	switch {
	case p.bits < q.bits:
		return -1
	case p.bits > q.bits:
		return 1
	}
	return 0
}

// bit returns the i-th most significant bit (0-indexed, family-relative)
// of the network address; used by the trie.
func (p Prefix) bit(i int) int { return p.addr.bit(i) }

// Identity returns the prefix's full dual-stack identity as three words:
// the 128 address bits plus the family tag packed beside the length. Two
// prefixes are equal iff their identities are equal, so hashing consumers
// (the pipeline's shard router, the ingest dedup fingerprint) fold exactly
// these words — one audited packing rule instead of per-caller copies.
func (p Prefix) Identity() (hi, lo, meta uint64) {
	fam := uint64(0)
	if p.addr.is6 {
		fam = 1
	}
	return p.addr.hi, p.addr.lo, fam<<8 | uint64(p.bits)
}

// FoldIdentity folds p's Identity into an FNV-1a style hash state h
// (xor-then-multiply with the 64-bit FNV prime, one step per identity
// word). The pipeline's shard router and the ingest dedup fingerprint
// both fold prefixes through here, so the fold order and constant live in
// one place alongside the packing rule they depend on.
func FoldIdentity(h uint64, p Prefix) uint64 {
	const prime = 1099511628211
	hi, lo, meta := p.Identity()
	h = (h ^ hi) * prime
	h = (h ^ lo) * prime
	h = (h ^ meta) * prime
	return h
}

// AppendBytes appends the prefix's network address truncated to
// (Bits()+7)/8 bytes in network order — the NLRI encoding shared by BGP
// UPDATE (RFC 4271 §4.3, RFC 4760) and MRT RIB entries.
func (p Prefix) AppendBytes(dst []byte) []byte {
	n := (int(p.bits) + 7) / 8
	if !p.addr.is6 {
		for i := 0; i < n; i++ {
			dst = append(dst, byte(p.addr.lo>>(24-8*uint(i))))
		}
		return dst
	}
	b := p.addr.As16()
	return append(dst, b[:n]...)
}

// FromBytes reconstructs a prefix from its truncated network-order byte
// form (the inverse of AppendBytes) in the given family. Trailing bits set
// beyond the prefix length are an error, as in BGP NLRI validation.
func FromBytes(b []byte, bits int, is6 bool) (Prefix, error) {
	max := 32
	if is6 {
		max = 128
	}
	if bits < 0 || bits > max {
		return Prefix{}, fmt.Errorf("prefix: invalid length %d", bits)
	}
	n := (bits + 7) / 8
	if len(b) < n {
		return Prefix{}, fmt.Errorf("prefix: %d bytes for a /%d", len(b), bits)
	}
	var addr Addr
	if !is6 {
		var v uint64
		for i := 0; i < n; i++ {
			v |= uint64(b[i]) << (24 - 8*uint(i))
		}
		addr = Addr{lo: v}
	} else {
		var hi, lo uint64
		for i := 0; i < n && i < 8; i++ {
			hi |= uint64(b[i]) << (56 - 8*uint(i))
		}
		for i := 8; i < n; i++ {
			lo |= uint64(b[i]) << (56 - 8*uint(i-8))
		}
		addr = Addr{hi: hi, lo: lo, is6: true}
	}
	if addr != addr.mask(bits) {
		return Prefix{}, fmt.Errorf("prefix: trailing bits set in /%d", bits)
	}
	return Prefix{addr: addr, bits: uint8(bits)}, nil
}
