package prefix

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestTrieInsertGet(t *testing.T) {
	tr := NewTrie[int]()
	if !tr.Insert(MustParse("10.0.0.0/23"), 1) {
		t.Fatal("first insert should add")
	}
	if tr.Insert(MustParse("10.0.0.0/23"), 2) {
		t.Fatal("second insert should replace, not add")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	v, ok := tr.Get(MustParse("10.0.0.0/23"))
	if !ok || v != 2 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	if _, ok := tr.Get(MustParse("10.0.0.0/24")); ok {
		t.Fatal("Get of absent, more specific prefix should miss")
	}
	if _, ok := tr.Get(MustParse("10.0.0.0/22")); ok {
		t.Fatal("Get of absent, less specific prefix should miss")
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(MustParse("0.0.0.0/0"), "default")
	p, v, ok := tr.LongestMatch(MustParseAddr("203.0.113.7"))
	if !ok || v != "default" || p.String() != "0.0.0.0/0" {
		t.Fatalf("LongestMatch via default route = %s %q %v", p, v, ok)
	}
	tr.Insert(MustParse("203.0.113.0/24"), "specific")
	_, v, _ = tr.LongestMatch(MustParseAddr("203.0.113.7"))
	if v != "specific" {
		t.Fatalf("more specific should win, got %q", v)
	}
}

func TestTrieLongestMatch(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(MustParse("10.0.0.0/8"), "/8")
	tr.Insert(MustParse("10.0.0.0/23"), "/23")
	tr.Insert(MustParse("10.0.0.0/24"), "/24")

	cases := []struct {
		addr string
		want string
		ok   bool
	}{
		{"10.0.0.1", "/24", true},
		{"10.0.1.1", "/23", true},
		{"10.9.0.1", "/8", true},
		{"11.0.0.1", "", false},
	}
	for _, c := range cases {
		_, v, ok := tr.LongestMatch(MustParseAddr(c.addr))
		if ok != c.ok || v != c.want {
			t.Errorf("LongestMatch(%s) = %q,%v want %q,%v", c.addr, v, ok, c.want, c.ok)
		}
	}
}

func TestTrieLongestMatchPrefix(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(MustParse("10.0.0.0/16"), "/16")
	tr.Insert(MustParse("10.0.0.0/23"), "/23")

	p, v, ok := tr.LongestMatchPrefix(MustParse("10.0.0.0/24"))
	if !ok || v != "/23" || p.String() != "10.0.0.0/23" {
		t.Fatalf("got %s %q %v", p, v, ok)
	}
	// Exact prefix is itself the longest match.
	p, v, ok = tr.LongestMatchPrefix(MustParse("10.0.0.0/23"))
	if !ok || v != "/23" || p.String() != "10.0.0.0/23" {
		t.Fatalf("exact: got %s %q %v", p, v, ok)
	}
	// A *less* specific query matches only shorter stored prefixes.
	p, v, ok = tr.LongestMatchPrefix(MustParse("10.0.0.0/20"))
	if !ok || v != "/16" || p.String() != "10.0.0.0/16" {
		t.Fatalf("shorter query: got %s %q %v", p, v, ok)
	}
	if _, _, ok := tr.LongestMatchPrefix(MustParse("11.0.0.0/8")); ok {
		t.Fatal("unrelated prefix should not match")
	}
}

func TestTrieDelete(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(MustParse("10.0.0.0/23"), 1)
	tr.Insert(MustParse("10.0.0.0/24"), 2)
	if !tr.Delete(MustParse("10.0.0.0/23")) {
		t.Fatal("delete of present prefix failed")
	}
	if tr.Delete(MustParse("10.0.0.0/23")) {
		t.Fatal("second delete should be a no-op")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if _, v, ok := tr.LongestMatch(MustParseAddr("10.0.0.9")); !ok || v != 2 {
		t.Fatalf("remaining /24 unreachable: %v %v", v, ok)
	}
	if _, _, ok := tr.LongestMatch(MustParseAddr("10.0.1.9")); ok {
		t.Fatal("deleted /23 still matching")
	}
}

func TestTrieDeletePrunes(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(MustParse("10.0.0.0/24"), 1)
	tr.Delete(MustParse("10.0.0.0/24"))
	// After pruning, the root must have no children.
	if tr.root4.child[0] != nil || tr.root4.child[1] != nil {
		t.Fatal("trie not pruned after delete")
	}
	tr.Insert(MustParse("2001:db8::/48"), 1)
	tr.Delete(MustParse("2001:db8::/48"))
	if tr.root6.child[0] != nil || tr.root6.child[1] != nil {
		t.Fatal("v6 trie not pruned after delete")
	}
}

func TestTrieCoveredBy(t *testing.T) {
	tr := NewTrie[int]()
	for i, s := range []string{"10.0.0.0/22", "10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/23", "10.4.0.0/24", "0.0.0.0/0"} {
		tr.Insert(MustParse(s), i)
	}
	var got []string
	tr.CoveredBy(MustParse("10.0.0.0/22"), func(p Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"10.0.0.0/22", "10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/23"}
	if len(got) != len(want) {
		t.Fatalf("CoveredBy = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("CoveredBy = %v, want %v", got, want)
		}
	}
}

func TestTrieWalkOrderAndStop(t *testing.T) {
	tr := NewTrie[int]()
	ins := []string{"192.168.0.0/16", "10.0.0.0/8", "10.0.0.0/24", "172.16.0.0/12",
		"2001:db8::/32", "2001:db8::/48", "::/0"}
	for i, s := range ins {
		tr.Insert(MustParse(s), i)
	}
	var got []string
	tr.Walk(func(p Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := append([]string(nil), ins...)
	sort.Slice(want, func(i, j int) bool {
		return MustParse(want[i]).Compare(MustParse(want[j])) < 0
	})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Walk order = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	tr.Walk(func(Prefix, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Walk did not stop early: %d visits", n)
	}
}

func TestTrieAgainstLinearScan(t *testing.T) {
	// Property: LongestMatch agrees with a brute-force linear scan.
	rng := rand.New(rand.NewSource(42))
	tr := NewTrie[int]()
	var stored []Prefix
	for i := 0; i < 500; i++ {
		p := New(AddrFrom4(rng.Uint32()), 8+rng.Intn(25))
		if tr.Insert(p, i) {
			stored = append(stored, p)
		}
	}
	linear := func(a Addr) (Prefix, bool) {
		best, ok := Prefix{}, false
		for _, p := range stored {
			if p.ContainsAddr(a) && (!ok || p.Bits() > best.Bits()) {
				best, ok = p, true
			}
		}
		return best, ok
	}
	for i := 0; i < 5000; i++ {
		a := AddrFrom4(rng.Uint32())
		wantP, wantOK := linear(a)
		gotP, _, gotOK := tr.LongestMatch(a)
		if gotOK != wantOK || (gotOK && gotP != wantP) {
			t.Fatalf("LongestMatch(%s) = %v,%v; linear scan says %v,%v", a, gotP, gotOK, wantP, wantOK)
		}
	}
}

func TestTrieQuickInsertDeleteInvariant(t *testing.T) {
	// Property: after any sequence of inserts and deletes, Len equals the
	// size of the reference set and Get agrees with it.
	prop := func(ops []uint32) bool {
		tr := NewTrie[bool]()
		ref := map[Prefix]bool{}
		for _, op := range ops {
			p := New(AddrFrom4(op&^0xff), 16+int(op%9)) // /16../24
			if op&0x80 != 0 {
				tr.Delete(p)
				delete(ref, p)
			} else {
				tr.Insert(p, true)
				ref[p] = true
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for p := range ref {
			if _, ok := tr.Get(p); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTrieSupernets(t *testing.T) {
	tr := NewTrie[string]()
	for _, s := range []string{"0.0.0.0/0", "10.0.0.0/8", "10.0.0.0/23", "10.0.0.0/24", "10.0.1.0/24", "192.0.2.0/24"} {
		tr.Insert(MustParse(s), s)
	}

	collect := func(q string) []string {
		var got []string
		tr.Supernets(MustParse(q), func(_ Prefix, v string) bool {
			got = append(got, v)
			return true
		})
		return got
	}

	// Shortest-first along the descent path, including q itself when stored.
	if got, want := collect("10.0.0.0/24"), []string{"0.0.0.0/0", "10.0.0.0/8", "10.0.0.0/23", "10.0.0.0/24"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Supernets(10.0.0.0/24) = %v, want %v", got, want)
	}
	// Sibling branches never leak in: 10.0.1.0/24 is not a supernet of
	// 10.0.0.0/25.
	if got, want := collect("10.0.0.0/25"), []string{"0.0.0.0/0", "10.0.0.0/8", "10.0.0.0/23", "10.0.0.0/24"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Supernets(10.0.0.0/25) = %v, want %v", got, want)
	}
	// A prefix shorter than everything stored (except the default) sees
	// only the default route.
	if got, want := collect("10.0.0.0/7"), []string{"0.0.0.0/0"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Supernets(10.0.0.0/7) = %v, want %v", got, want)
	}
	// Returning false stops the walk.
	var first []string
	tr.Supernets(MustParse("10.0.0.0/24"), func(_ Prefix, v string) bool {
		first = append(first, v)
		return false
	})
	if !reflect.DeepEqual(first, []string{"0.0.0.0/0"}) {
		t.Fatalf("early stop visited %v", first)
	}
	// Families are disjoint: a v6 query never sees v4 prefixes.
	tr.Insert(MustParse("2001:db8::/32"), "v6/32")
	var got6 []string
	tr.Supernets(MustParse("2001:db8::/48"), func(_ Prefix, v string) bool {
		got6 = append(got6, v)
		return true
	})
	if !reflect.DeepEqual(got6, []string{"v6/32"}) {
		t.Fatalf("v6 Supernets = %v", got6)
	}
}

// TestTrieSupernetsAgainstLinearScan cross-checks Supernets against a
// brute-force contains scan on random prefix sets.
func TestTrieSupernetsAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := NewTrie[string]()
	var stored []Prefix
	for i := 0; i < 300; i++ {
		p := New(AddrFrom4(rng.Uint32()&0xffffff00), 8+rng.Intn(17))
		if tr.Insert(p, p.String()) {
			stored = append(stored, p)
		}
	}
	for i := 0; i < 500; i++ {
		q := New(AddrFrom4(rng.Uint32()&0xffffff00), 8+rng.Intn(25))
		var got []string
		tr.Supernets(q, func(_ Prefix, v string) bool {
			got = append(got, v)
			return true
		})
		var want []string
		for _, p := range stored {
			if p == q || p.Contains(q) {
				want = append(want, p.String())
			}
		}
		sort.Slice(want, func(a, b int) bool {
			return MustParse(want[a]).Bits() < MustParse(want[b]).Bits()
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Supernets(%s): got %v want %v", q, got, want)
		}
	}
}
