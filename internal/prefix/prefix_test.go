package prefix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", AddrFrom4(0), true},
		{"255.255.255.255", AddrFrom4(0xffffffff), true},
		{"10.0.0.1", AddrFrom4(0x0a000001), true},
		{"192.168.1.200", AddrFrom4(0xc0a801c8), true},
		{"1.2.3", Addr{}, false},
		{"1.2.3.4.5", Addr{}, false},
		{"256.0.0.1", Addr{}, false},
		{"-1.0.0.1", Addr{}, false},
		{"a.b.c.d", Addr{}, false},
		{"", Addr{}, false},
		{"1..2.3", Addr{}, false},
		{"010.0.0.1", Addr{}, false}, // leading zero: octal ambiguity
		{"10.0.0.01", Addr{}, false},
		{"0.0.0.0", AddrFrom4(0), true}, // but a bare zero octet is fine
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseAddr6(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"::", AddrFrom16(0, 0), true},
		{"::1", AddrFrom16(0, 1), true},
		{"1::", AddrFrom16(0x0001000000000000, 0), true},
		{"2001:db8::", AddrFrom16(0x20010db800000000, 0), true},
		{"2001:db8::1", AddrFrom16(0x20010db800000000, 1), true},
		{"1:2:3:4:5:6:7:8", AddrFrom16(0x0001000200030004, 0x0005000600070008), true},
		{"1:2:3:4:5:6:7::", AddrFrom16(0x0001000200030004, 0x0005000600070000), true},
		{"::2:3:4:5:6:7:8", AddrFrom16(0x0000000200030004, 0x0005000600070008), true},
		{"ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff", AddrFrom16(^uint64(0), ^uint64(0)), true},
		{"::ffff:10.0.0.1", AddrFrom16(0, 0x0000ffff0a000001), true},
		{"64:ff9b::1.2.3.4", AddrFrom16(0x0064ff9b00000000, 0x0000000001020304), true},
		{"1:2:3:4:5:6:1.2.3.4", AddrFrom16(0x0001000200030004, 0x0005000601020304), true},
		{"1:2:3:4:5:6:7:8:9", Addr{}, false}, // too many groups
		{"1:2:3:4:5:6:7", Addr{}, false},     // too few without ::
		{"1:2:3:4::5:6:7:8", Addr{}, false},  // :: must cover >= 1 group
		{"1:::2", Addr{}, false},
		{"::1::", Addr{}, false},
		{":", Addr{}, false},
		{":1::", Addr{}, false},
		{"12345::", Addr{}, false}, // group too long
		{"g::", Addr{}, false},
		{"1.2.3.4::", Addr{}, false},   // v4 tail before ::
		{"::1.2.3.4:5", Addr{}, false}, // v4 tail not last
		{"::1.2.3", Addr{}, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
		if c.ok && !got.Is6() {
			t.Errorf("ParseAddr(%q).Is6() = false", c.in)
		}
	}
}

func TestAddrString6Canonical(t *testing.T) {
	// RFC 5952: lowercase, longest zero run compressed, leftmost tie,
	// single zero groups never compressed.
	cases := []struct{ in, want string }{
		{"::", "::"},
		{"::1", "::1"},
		{"1::", "1::"},
		{"2001:DB8::1", "2001:db8::1"},
		{"2001:db8:0:0:1:0:0:1", "2001:db8::1:0:0:1"}, // leftmost of two equal runs
		{"1:0:2:0:0:0:3:4", "1:0:2::3:4"},             // longest run wins
		{"1:2:3:4:5:6:7:0", "1:2:3:4:5:6:7:0"},        // single zero not compressed
		{"0:1:2:3:4:5:6:7", "0:1:2:3:4:5:6:7"},
		{"::ffff:10.0.0.1", "::ffff:a00:1"}, // pure-hex canonical form
	}
	for _, c := range cases {
		a := MustParseAddr(c.in)
		if got := a.String(); got != c.want {
			t.Errorf("String(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := AddrFrom4(rng.Uint32())
		got, err := ParseAddr(a.String())
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", a.String(), err)
		}
		if got != a {
			t.Fatalf("round trip %v -> %q -> %v", a, a.String(), got)
		}
	}
	for i := 0; i < 1000; i++ {
		a := AddrFrom16(rng.Uint64(), rng.Uint64())
		if i%4 == 0 {
			// Bias toward sparse addresses so :: compression is exercised.
			a = AddrFrom16(rng.Uint64()&0xffff, rng.Uint64()&0xffff0000ffff)
		}
		got, err := ParseAddr(a.String())
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", a.String(), err)
		}
		if got != a {
			t.Fatalf("round trip %v -> %q -> %v", a, a.String(), got)
		}
	}
}

func TestAddrFamilies(t *testing.T) {
	v4 := MustParseAddr("10.0.0.1")
	mapped := MustParseAddr("::ffff:10.0.0.1")
	if v4 == mapped {
		t.Fatal("v4 and v4-mapped v6 must be distinct addresses")
	}
	if v4.Compare(mapped) != -1 || mapped.Compare(v4) != 1 {
		t.Fatal("v4 addresses must order before v6")
	}
	if v4.MaxBits() != 32 || mapped.MaxBits() != 128 {
		t.Fatal("MaxBits wrong")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"10.0.0.0/23", true},
		{"0.0.0.0/0", true},
		{"255.255.255.255/32", true},
		{"10.0.0.0/33", false},
		{"10.0.0.0/-1", false},
		{"10.0.0.0", false},
		{"10.0.0.1/23", false}, // host bits set
		{"10.0.1.0/23", false}, // host bits set
		{"10.0.0.0/x", false},
		{"10.0.0.0/08", false}, // zero-padded length
		{"10.0.0.0/+8", false}, // signed length
		{"0.0.0.0/00", false},
		{"2001:db8::/32", true},
		{"::/0", true},
		{"::1/128", true},
		{"2001:db8::/129", false},
		{"2001:db8::1/32", false}, // host bits set
		{"2001:db8::/24", false},  // host bits set (db8 beyond /24)
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if c.ok != (err == nil) {
			t.Errorf("Parse(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && p.String() != c.in {
			t.Errorf("Parse(%q).String() = %q", c.in, p.String())
		}
	}
}

func TestNewMasksHostBits(t *testing.T) {
	p := New(MustParseAddr("10.0.1.77"), 23)
	if got := p.String(); got != "10.0.0.0/23" {
		t.Errorf("New masked = %q, want 10.0.0.0/23", got)
	}
	p = New(MustParseAddr("2001:db8:dead:beef::1"), 48)
	if got := p.String(); got != "2001:db8:dead::/48" {
		t.Errorf("New masked = %q, want 2001:db8:dead::/48", got)
	}
}

func TestNewPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(v4, 33) did not panic")
		}
	}()
	New(Addr{}, 33)
}

func TestNewPanicsOnBadLength6(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(v6, 129) did not panic")
		}
	}()
	New(MustParseAddr("::"), 129)
}

func TestContains(t *testing.T) {
	cases := []struct {
		p, q string
		want bool
	}{
		{"10.0.0.0/23", "10.0.0.0/24", true},
		{"10.0.0.0/23", "10.0.1.0/24", true},
		{"10.0.0.0/23", "10.0.2.0/24", false},
		{"10.0.0.0/23", "10.0.0.0/23", true},
		{"10.0.0.0/24", "10.0.0.0/23", false},
		{"0.0.0.0/0", "203.0.113.0/24", true},
		{"10.0.0.0/8", "11.0.0.0/8", false},
		{"2001:db8::/32", "2001:db8:1::/48", true},
		{"2001:db8::/32", "2001:db9::/48", false},
		{"2001:db8::/48", "2001:db8::/32", false},
		{"::/0", "2001:db8::/32", true},
		// Families never contain each other, even the default routes.
		{"0.0.0.0/0", "2001:db8::/32", false},
		{"::/0", "10.0.0.0/8", false},
	}
	for _, c := range cases {
		p, q := MustParse(c.p), MustParse(c.q)
		if got := p.Contains(q); got != c.want {
			t.Errorf("%s.Contains(%s) = %v, want %v", p, q, got, c.want)
		}
	}
}

func TestContainsAddr(t *testing.T) {
	p := MustParse("10.0.0.0/23")
	if !p.ContainsAddr(MustParseAddr("10.0.1.255")) {
		t.Error("10.0.1.255 should be inside 10.0.0.0/23")
	}
	if p.ContainsAddr(MustParseAddr("10.0.2.0")) {
		t.Error("10.0.2.0 should be outside 10.0.0.0/23")
	}
	p6 := MustParse("2001:db8::/32")
	if !p6.ContainsAddr(MustParseAddr("2001:db8:ffff::1")) {
		t.Error("2001:db8:ffff::1 should be inside 2001:db8::/32")
	}
	if p6.ContainsAddr(MustParseAddr("2001:db9::")) {
		t.Error("2001:db9:: should be outside 2001:db8::/32")
	}
	if p6.ContainsAddr(MustParseAddr("10.0.0.1")) {
		t.Error("a v4 address is never inside a v6 prefix")
	}
}

func TestOverlaps(t *testing.T) {
	a := MustParse("10.0.0.0/23")
	b := MustParse("10.0.1.0/24")
	c := MustParse("10.0.2.0/24")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c should not overlap")
	}
	v6 := MustParse("2001:db8::/32")
	if v6.Overlaps(a) || a.Overlaps(v6) {
		t.Error("families never overlap")
	}
	if !v6.Overlaps(MustParse("2001:db8:42::/48")) {
		t.Error("v6 super/sub should overlap")
	}
}

func TestSplit(t *testing.T) {
	lo, hi := MustParse("10.0.0.0/23").Split()
	if lo.String() != "10.0.0.0/24" || hi.String() != "10.0.1.0/24" {
		t.Errorf("Split = %s, %s", lo, hi)
	}
	lo, hi = MustParse("2001:db8::/32").Split()
	if lo.String() != "2001:db8::/33" || hi.String() != "2001:db8:8000::/33" {
		t.Errorf("Split v6 = %s, %s", lo, hi)
	}
	// Splitting across the hi/lo word boundary.
	lo, hi = MustParse("2001:db8::/64").Split()
	if lo.String() != "2001:db8::/65" || hi.String() != "2001:db8:0:0:8000::/65" {
		t.Errorf("Split /64 = %s, %s", lo, hi)
	}
}

func TestSplitPanicsOnFullLength(t *testing.T) {
	for _, s := range []string{"10.0.0.1/32", "::1/128"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Split of %s did not panic", s)
				}
			}()
			MustParse(s).Split()
		}()
	}
}

func TestParent(t *testing.T) {
	if got := MustParse("10.0.1.0/24").Parent(); got.String() != "10.0.0.0/23" {
		t.Errorf("Parent = %s", got)
	}
	if got := MustParse("2001:db8:8000::/33").Parent(); got.String() != "2001:db8::/32" {
		t.Errorf("Parent v6 = %s", got)
	}
}

func TestParentPanicsOnDefault(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Parent of /0 did not panic")
		}
	}()
	MustParse("0.0.0.0/0").Parent()
}

func TestDeaggregate(t *testing.T) {
	p := MustParse("10.0.0.0/22")
	subs, err := p.Deaggregate(24)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"}
	if len(subs) != len(want) {
		t.Fatalf("got %d sub-prefixes, want %d", len(subs), len(want))
	}
	for i, s := range subs {
		if s.String() != want[i] {
			t.Errorf("sub[%d] = %s, want %s", i, s, want[i])
		}
	}
}

func TestDeaggregate6(t *testing.T) {
	p := MustParse("2001:db8::/46")
	subs, err := p.Deaggregate(48)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"2001:db8::/48", "2001:db8:1::/48", "2001:db8:2::/48", "2001:db8:3::/48"}
	if len(subs) != len(want) {
		t.Fatalf("got %d sub-prefixes, want %d", len(subs), len(want))
	}
	for i, s := range subs {
		if s.String() != want[i] {
			t.Errorf("sub[%d] = %s, want %s", i, s, want[i])
		}
	}
	// Stepping that carries across the hi/lo word boundary.
	p = MustParse("2001:db8::/63")
	subs, err = p.Deaggregate(65)
	if err != nil {
		t.Fatal(err)
	}
	want = []string{"2001:db8::/65", "2001:db8:0:0:8000::/65", "2001:db8:0:1::/65", "2001:db8:0:1:8000::/65"}
	for i, s := range subs {
		if s.String() != want[i] {
			t.Errorf("sub[%d] = %s, want %s", i, s, want[i])
		}
	}
}

func TestDeaggregateIdentity(t *testing.T) {
	p := MustParse("10.0.0.0/24")
	subs, err := p.Deaggregate(24)
	if err != nil || len(subs) != 1 || subs[0] != p {
		t.Fatalf("Deaggregate to same length = %v, %v", subs, err)
	}
	subs, err = p.Deaggregate(20) // less specific: identity too
	if err != nil || len(subs) != 1 || subs[0] != p {
		t.Fatalf("Deaggregate to shorter length = %v, %v", subs, err)
	}
}

func TestDeaggregateRefusesExplosion(t *testing.T) {
	if _, err := MustParse("10.0.0.0/8").Deaggregate(32); err == nil {
		t.Fatal("expected error de-aggregating /8 to /32s")
	}
	if _, err := MustParse("10.0.0.0/8").Deaggregate(33); err == nil {
		t.Fatal("expected error for invalid target length")
	}
	if _, err := MustParse("2001:db8::/32").Deaggregate(64); err == nil {
		t.Fatal("expected error de-aggregating v6 /32 to /64s")
	}
	if _, err := MustParse("2001:db8::/32").Deaggregate(129); err == nil {
		t.Fatal("expected error for invalid v6 target length")
	}
}

func TestDeaggregateCoversExactly(t *testing.T) {
	// Property: de-aggregations partition the parent exactly.
	prop := func(raw uint32, plen8, tlen8 uint8) bool {
		plen := int(plen8%17) + 8 // 8..24
		tlen := plen + int(tlen8%8)
		if tlen > 32 {
			tlen = 32
		}
		p := New(AddrFrom4(raw), plen)
		subs, err := p.Deaggregate(tlen)
		if err != nil {
			return false
		}
		// Contiguous, in order, all inside p, covering p end to end.
		if subs[0].Addr() != p.Addr() {
			return false
		}
		for i, s := range subs {
			if !p.Contains(s) {
				return false
			}
			if i > 0 && s.Addr() != subs[i-1].Last().Next() {
				return false
			}
		}
		return subs[len(subs)-1].Last() == p.Last()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDeaggregateCoversExactly6(t *testing.T) {
	// Same partition property over the full 128-bit space, with lengths
	// straddling the hi/lo word boundary.
	prop := func(hi, lo uint64, plen8, tlen8 uint8) bool {
		plen := int(plen8 % 121) // 0..120
		tlen := plen + int(tlen8%8)
		if tlen > 128 {
			tlen = 128
		}
		p := New(AddrFrom16(hi, lo), plen)
		subs, err := p.Deaggregate(tlen)
		if err != nil {
			return false
		}
		if subs[0].Addr() != p.Addr() {
			return false
		}
		for i, s := range subs {
			if !p.Contains(s) {
				return false
			}
			if i > 0 && s.Addr() != subs[i-1].Last().Next() {
				return false
			}
		}
		return subs[len(subs)-1].Last() == p.Last()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	a := MustParse("10.0.0.0/23")
	b := MustParse("10.0.0.0/24")
	c := MustParse("10.0.1.0/24")
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("shorter prefix should order first at same address")
	}
	if b.Compare(c) != -1 || c.Compare(b) != 1 {
		t.Error("lower address should order first")
	}
	if a.Compare(a) != 0 {
		t.Error("equal prefixes should compare 0")
	}
	v6 := MustParse("::/0")
	if a.Compare(v6) != -1 || v6.Compare(a) != 1 {
		t.Error("v4 prefixes should order before v6")
	}
}

func TestLast(t *testing.T) {
	if got := MustParse("10.0.0.0/23").Last(); got != MustParseAddr("10.0.1.255") {
		t.Errorf("Last = %s", got)
	}
	if got := MustParse("10.0.0.4/32").Last(); got != MustParseAddr("10.0.0.4") {
		t.Errorf("Last /32 = %s", got)
	}
	if got := MustParse("2001:db8::/32").Last(); got != MustParseAddr("2001:db8:ffff:ffff:ffff:ffff:ffff:ffff") {
		t.Errorf("Last v6 = %s", got)
	}
}

func TestContainmentProperty(t *testing.T) {
	// Property: p.Contains(q) iff every address formed inside q is inside p.
	prop := func(raw1, raw2 uint32, l1, l2 uint8) bool {
		p := New(AddrFrom4(raw1), int(l1%33))
		q := New(AddrFrom4(raw2), int(l2%33))
		want := p.ContainsAddr(q.Addr()) && p.ContainsAddr(q.Last()) && p.Bits() <= q.Bits()
		return p.Contains(q) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestContainmentProperty6(t *testing.T) {
	prop := func(hi1, lo1, hi2, lo2 uint64, l1, l2 uint8) bool {
		p := New(AddrFrom16(hi1, lo1), int(l1%129))
		q := New(AddrFrom16(hi2, lo2), int(l2%129))
		want := p.ContainsAddr(q.Addr()) && p.ContainsAddr(q.Last()) && p.Bits() <= q.Bits()
		return p.Contains(q) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestWireBytesRoundTrip(t *testing.T) {
	prop := func(hi, lo uint64, raw uint32, len4, len6 uint8, pick bool) bool {
		var p Prefix
		if pick {
			p = New(AddrFrom4(raw), int(len4%33))
		} else {
			p = New(AddrFrom16(hi, lo), int(len6%129))
		}
		b := p.AppendBytes(nil)
		if len(b) != (p.Bits()+7)/8 {
			return false
		}
		got, err := FromBytes(b, p.Bits(), p.Is6())
		return err == nil && got == p
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestFromBytesRejectsTrailingBits(t *testing.T) {
	if _, err := FromBytes([]byte{10, 0, 1}, 23, false); err == nil {
		t.Fatal("trailing v4 bits accepted")
	}
	// Bit 32 (0x80 in the fifth byte) is inside a /33; bit 33 (0x40) is not.
	if _, err := FromBytes([]byte{0x20, 0x01, 0x0d, 0xb8, 0x80}, 33, true); err != nil {
		t.Fatalf("in-range bit rejected: %v", err)
	}
	if _, err := FromBytes([]byte{0x20, 0x01, 0x0d, 0xb8, 0x40}, 33, true); err == nil {
		t.Fatal("trailing v6 bits accepted")
	}
	if _, err := FromBytes([]byte{10}, 16, false); err == nil {
		t.Fatal("short buffer accepted")
	}
}
