package prefix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"10.0.0.1", 0x0a000001, true},
		{"192.168.1.200", 0xc0a801c8, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"-1.0.0.1", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"1..2.3", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Addr(rng.Uint32())
		got, err := ParseAddr(a.String())
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", a.String(), err)
		}
		if got != a {
			t.Fatalf("round trip %#x -> %q -> %#x", a, a.String(), got)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"10.0.0.0/23", true},
		{"0.0.0.0/0", true},
		{"255.255.255.255/32", true},
		{"10.0.0.0/33", false},
		{"10.0.0.0/-1", false},
		{"10.0.0.0", false},
		{"10.0.0.1/23", false}, // host bits set
		{"10.0.1.0/23", false}, // host bits set
		{"10.0.0.0/x", false},
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if c.ok != (err == nil) {
			t.Errorf("Parse(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && p.String() != c.in {
			t.Errorf("Parse(%q).String() = %q", c.in, p.String())
		}
	}
}

func TestNewMasksHostBits(t *testing.T) {
	p := New(MustParseAddr("10.0.1.77"), 23)
	if got := p.String(); got != "10.0.0.0/23" {
		t.Errorf("New masked = %q, want 10.0.0.0/23", got)
	}
}

func TestNewPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(_, 33) did not panic")
		}
	}()
	New(0, 33)
}

func TestContains(t *testing.T) {
	cases := []struct {
		p, q string
		want bool
	}{
		{"10.0.0.0/23", "10.0.0.0/24", true},
		{"10.0.0.0/23", "10.0.1.0/24", true},
		{"10.0.0.0/23", "10.0.2.0/24", false},
		{"10.0.0.0/23", "10.0.0.0/23", true},
		{"10.0.0.0/24", "10.0.0.0/23", false},
		{"0.0.0.0/0", "203.0.113.0/24", true},
		{"10.0.0.0/8", "11.0.0.0/8", false},
	}
	for _, c := range cases {
		p, q := MustParse(c.p), MustParse(c.q)
		if got := p.Contains(q); got != c.want {
			t.Errorf("%s.Contains(%s) = %v, want %v", p, q, got, c.want)
		}
	}
}

func TestContainsAddr(t *testing.T) {
	p := MustParse("10.0.0.0/23")
	if !p.ContainsAddr(MustParseAddr("10.0.1.255")) {
		t.Error("10.0.1.255 should be inside 10.0.0.0/23")
	}
	if p.ContainsAddr(MustParseAddr("10.0.2.0")) {
		t.Error("10.0.2.0 should be outside 10.0.0.0/23")
	}
}

func TestOverlaps(t *testing.T) {
	a := MustParse("10.0.0.0/23")
	b := MustParse("10.0.1.0/24")
	c := MustParse("10.0.2.0/24")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c should not overlap")
	}
}

func TestSplit(t *testing.T) {
	lo, hi := MustParse("10.0.0.0/23").Split()
	if lo.String() != "10.0.0.0/24" || hi.String() != "10.0.1.0/24" {
		t.Errorf("Split = %s, %s", lo, hi)
	}
}

func TestSplitPanicsOn32(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Split of /32 did not panic")
		}
	}()
	MustParse("10.0.0.1/32").Split()
}

func TestParent(t *testing.T) {
	if got := MustParse("10.0.1.0/24").Parent(); got.String() != "10.0.0.0/23" {
		t.Errorf("Parent = %s", got)
	}
}

func TestParentPanicsOnDefault(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Parent of /0 did not panic")
		}
	}()
	MustParse("0.0.0.0/0").Parent()
}

func TestDeaggregate(t *testing.T) {
	p := MustParse("10.0.0.0/22")
	subs, err := p.Deaggregate(24)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"}
	if len(subs) != len(want) {
		t.Fatalf("got %d sub-prefixes, want %d", len(subs), len(want))
	}
	for i, s := range subs {
		if s.String() != want[i] {
			t.Errorf("sub[%d] = %s, want %s", i, s, want[i])
		}
	}
}

func TestDeaggregateIdentity(t *testing.T) {
	p := MustParse("10.0.0.0/24")
	subs, err := p.Deaggregate(24)
	if err != nil || len(subs) != 1 || subs[0] != p {
		t.Fatalf("Deaggregate to same length = %v, %v", subs, err)
	}
	subs, err = p.Deaggregate(20) // less specific: identity too
	if err != nil || len(subs) != 1 || subs[0] != p {
		t.Fatalf("Deaggregate to shorter length = %v, %v", subs, err)
	}
}

func TestDeaggregateRefusesExplosion(t *testing.T) {
	if _, err := MustParse("10.0.0.0/8").Deaggregate(32); err == nil {
		t.Fatal("expected error de-aggregating /8 to /32s")
	}
	if _, err := MustParse("10.0.0.0/8").Deaggregate(33); err == nil {
		t.Fatal("expected error for invalid target length")
	}
}

func TestDeaggregateCoversExactly(t *testing.T) {
	// Property: de-aggregations partition the parent exactly.
	prop := func(raw uint32, plen8, tlen8 uint8) bool {
		plen := int(plen8%17) + 8 // 8..24
		tlen := plen + int(tlen8%8)
		if tlen > 32 {
			tlen = 32
		}
		p := New(Addr(raw), plen)
		subs, err := p.Deaggregate(tlen)
		if err != nil {
			return false
		}
		// Contiguous, in order, all inside p, covering p end to end.
		if subs[0].Addr() != p.Addr() {
			return false
		}
		for i, s := range subs {
			if !p.Contains(s) {
				return false
			}
			if i > 0 && s.Addr() != subs[i-1].Last()+1 {
				return false
			}
		}
		return subs[len(subs)-1].Last() == p.Last()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	a := MustParse("10.0.0.0/23")
	b := MustParse("10.0.0.0/24")
	c := MustParse("10.0.1.0/24")
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("shorter prefix should order first at same address")
	}
	if b.Compare(c) != -1 || c.Compare(b) != 1 {
		t.Error("lower address should order first")
	}
	if a.Compare(a) != 0 {
		t.Error("equal prefixes should compare 0")
	}
}

func TestLast(t *testing.T) {
	if got := MustParse("10.0.0.0/23").Last(); got != MustParseAddr("10.0.1.255") {
		t.Errorf("Last = %s", got)
	}
	if got := MustParse("10.0.0.4/32").Last(); got != MustParseAddr("10.0.0.4") {
		t.Errorf("Last /32 = %s", got)
	}
}

func TestContainmentProperty(t *testing.T) {
	// Property: p.Contains(q) iff every address formed inside q is inside p.
	prop := func(raw1, raw2 uint32, l1, l2 uint8) bool {
		p := New(Addr(raw1), int(l1%33))
		q := New(Addr(raw2), int(l2%33))
		want := p.ContainsAddr(q.Addr()) && p.ContainsAddr(q.Last()) && p.Bits() <= q.Bits()
		return p.Contains(q) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
