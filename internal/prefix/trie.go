package prefix

// Trie is a binary radix trie keyed by Prefix, mapping each prefix to a
// value of type V. It supports exact lookup, longest-prefix match (the BGP
// forwarding rule that makes de-aggregation an effective mitigation), and
// subtree enumeration ("all announced prefixes covered by my /22").
//
// The trie is dual-stack: one radix tree per address family, selected by
// the key's family, so v4 and v6 prefixes never shadow each other and the
// v4 path pays nothing for the wider keys. Walk order is all v4 prefixes
// (trie order) followed by all v6 prefixes.
//
// The trie is not safe for concurrent mutation; routers in the simulator
// are single-goroutine actors, and ARTEMIS guards its own trie with a mutex.
type Trie[V any] struct {
	root4, root6 *node[V]
	size         int
}

type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

// NewTrie returns an empty trie.
func NewTrie[V any]() *Trie[V] {
	return &Trie[V]{root4: &node[V]{}, root6: &node[V]{}}
}

func (t *Trie[V]) root(is6 bool) *node[V] {
	if is6 {
		return t.root6
	}
	return t.root4
}

// Len returns the number of prefixes stored (both families).
func (t *Trie[V]) Len() int { return t.size }

// Insert stores val under p, replacing any existing value.
// It reports whether the prefix was newly added.
func (t *Trie[V]) Insert(p Prefix, val V) bool {
	n := t.root(p.Is6())
	for i := 0; i < p.Bits(); i++ {
		b := p.bit(i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	added := !n.set
	n.val, n.set = val, true
	if added {
		t.size++
	}
	return added
}

// Get returns the value stored exactly at p.
func (t *Trie[V]) Get(p Prefix) (V, bool) {
	n := t.root(p.Is6())
	for i := 0; i < p.Bits(); i++ {
		n = n.child[p.bit(i)]
		if n == nil {
			var zero V
			return zero, false
		}
	}
	if !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Delete removes p. It reports whether the prefix was present.
// Empty interior nodes are pruned so long-lived tries do not leak.
func (t *Trie[V]) Delete(p Prefix) bool {
	// Record the path so we can prune bottom-up.
	path := make([]*node[V], 0, p.Bits()+1)
	n := t.root(p.Is6())
	path = append(path, n)
	for i := 0; i < p.Bits(); i++ {
		n = n.child[p.bit(i)]
		if n == nil {
			return false
		}
		path = append(path, n)
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	for i := len(path) - 1; i > 0; i-- {
		cur := path[i]
		if cur.set || cur.child[0] != nil || cur.child[1] != nil {
			break
		}
		path[i-1].child[p.bit(i-1)] = nil
	}
	return true
}

// LongestMatch returns the most specific stored prefix containing addr,
// with its value. ok is false when nothing in addr's family covers addr.
//
// The descent is specialized per family — a word-shift walk instead of
// per-bit index arithmetic — so the v4 hot path pays nothing for the
// 128-bit widening (BenchmarkTrieLPM).
func (t *Trie[V]) LongestMatch(addr Addr) (p Prefix, val V, ok bool) {
	bestLen, bestVal := t.descend(addr, addr.MaxBits())
	if bestLen < 0 {
		return Prefix{}, bestVal, false
	}
	return New(addr, bestLen), bestVal, true
}

// LongestMatchPrefix returns the most specific stored prefix that contains q
// (including q itself when stored).
func (t *Trie[V]) LongestMatchPrefix(q Prefix) (p Prefix, val V, ok bool) {
	bestLen, bestVal := t.descend(q.addr, q.Bits())
	if bestLen < 0 {
		return Prefix{}, bestVal, false
	}
	return New(q.Addr(), bestLen), bestVal, true
}

// descend walks at most maxDepth bits of addr's tree and returns the
// length and value of the deepest stored prefix on the path (-1 when the
// path holds none).
func (t *Trie[V]) descend(addr Addr, maxDepth int) (bestLen int, bestVal V) {
	bestLen = -1
	if !addr.is6 {
		n := t.root4
		if n.set {
			bestLen, bestVal = 0, n.val
		}
		w := uint32(addr.lo)
		for i := 0; i < maxDepth; i++ {
			n = n.child[w>>31]
			if n == nil {
				return bestLen, bestVal
			}
			w <<= 1
			if n.set {
				bestLen, bestVal = i+1, n.val
			}
		}
		return bestLen, bestVal
	}
	n := t.root6
	if n.set {
		bestLen, bestVal = 0, n.val
	}
	w := addr.hi
	for i := 0; i < maxDepth; i++ {
		if i == 64 {
			w = addr.lo
		}
		n = n.child[w>>63]
		if n == nil {
			return bestLen, bestVal
		}
		w <<= 1
		if n.set {
			bestLen, bestVal = i+1, n.val
		}
	}
	return bestLen, bestVal
}

// Supernets calls fn for every stored prefix that contains q (including q
// itself when stored), shortest first — the root-to-leaf order of q's
// descent path. Together with CoveredBy it gives a caller every stored
// prefix related to q in one direction or the other; visiting supernets
// shortest-first means the last call per interested party is its longest
// match, which is how the multi-tenant router computes a per-tenant LPM
// over one shared trie. Returning false stops the walk. The walk performs
// no allocations.
func (t *Trie[V]) Supernets(q Prefix, fn func(Prefix, V) bool) {
	n := t.root(q.Is6())
	if n.set && !fn(New(q.Addr(), 0), n.val) {
		return
	}
	for i := 0; i < q.Bits(); i++ {
		n = n.child[q.bit(i)]
		if n == nil {
			return
		}
		if n.set && !fn(New(q.Addr(), i+1), n.val) {
			return
		}
	}
}

// CoveredBy calls fn for every stored prefix contained in p (including p
// itself when stored), in trie order. Returning false stops the walk.
func (t *Trie[V]) CoveredBy(p Prefix, fn func(Prefix, V) bool) {
	n := t.root(p.Is6())
	for i := 0; i < p.Bits(); i++ {
		n = n.child[p.bit(i)]
		if n == nil {
			return
		}
	}
	walk(n, p, fn)
}

// Walk calls fn for every stored prefix: all v4 prefixes in trie order
// (address order, shorter prefixes before their sub-prefixes), then all v6
// prefixes likewise. Returning false stops.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	if !walk(t.root4, Prefix{}, fn) {
		return
	}
	walk(t.root6, Prefix{addr: Addr{is6: true}}, fn)
}

func walk[V any](n *node[V], at Prefix, fn func(Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set && !fn(at, n.val) {
		return false
	}
	if at.Bits() == at.MaxBits() {
		return true
	}
	lo, hi := at.Split()
	if !walk(n.child[0], lo, fn) {
		return false
	}
	return walk(n.child[1], hi, fn)
}
