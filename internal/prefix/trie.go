package prefix

// Trie is a binary radix trie keyed by Prefix, mapping each prefix to a
// value of type V. It supports exact lookup, longest-prefix match (the BGP
// forwarding rule that makes de-aggregation an effective mitigation), and
// subtree enumeration ("all announced prefixes covered by my /22").
//
// The trie is not safe for concurrent mutation; routers in the simulator
// are single-goroutine actors, and ARTEMIS guards its own trie with a mutex.
type Trie[V any] struct {
	root *node[V]
	size int
}

type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

// NewTrie returns an empty trie.
func NewTrie[V any]() *Trie[V] { return &Trie[V]{root: &node[V]{}} }

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// Insert stores val under p, replacing any existing value.
// It reports whether the prefix was newly added.
func (t *Trie[V]) Insert(p Prefix, val V) bool {
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		b := p.bit(i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	added := !n.set
	n.val, n.set = val, true
	if added {
		t.size++
	}
	return added
}

// Get returns the value stored exactly at p.
func (t *Trie[V]) Get(p Prefix) (V, bool) {
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		n = n.child[p.bit(i)]
		if n == nil {
			var zero V
			return zero, false
		}
	}
	if !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Delete removes p. It reports whether the prefix was present.
// Empty interior nodes are pruned so long-lived tries do not leak.
func (t *Trie[V]) Delete(p Prefix) bool {
	// Record the path so we can prune bottom-up.
	path := make([]*node[V], 0, p.Bits()+1)
	n := t.root
	path = append(path, n)
	for i := 0; i < p.Bits(); i++ {
		n = n.child[p.bit(i)]
		if n == nil {
			return false
		}
		path = append(path, n)
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	for i := len(path) - 1; i > 0; i-- {
		cur := path[i]
		if cur.set || cur.child[0] != nil || cur.child[1] != nil {
			break
		}
		path[i-1].child[p.bit(i-1)] = nil
	}
	return true
}

// LongestMatch returns the most specific stored prefix containing addr,
// with its value. ok is false when nothing covers addr.
func (t *Trie[V]) LongestMatch(addr Addr) (p Prefix, val V, ok bool) {
	n := t.root
	var (
		bestLen  = -1
		bestVal  V
		bestBits int
	)
	if n.set {
		bestLen, bestVal, bestBits = 0, n.val, 0
	}
	for i := 0; i < 32 && n != nil; i++ {
		b := int(addr >> (31 - uint(i)) & 1)
		n = n.child[b]
		if n != nil && n.set {
			bestLen, bestVal, bestBits = i+1, n.val, i+1
		}
	}
	if bestLen < 0 {
		return Prefix{}, bestVal, false
	}
	return New(addr, bestBits), bestVal, true
}

// LongestMatchPrefix returns the most specific stored prefix that contains q
// (including q itself when stored).
func (t *Trie[V]) LongestMatchPrefix(q Prefix) (p Prefix, val V, ok bool) {
	n := t.root
	bestLen := -1
	var bestVal V
	if n.set {
		bestLen, bestVal = 0, n.val
	}
	for i := 0; i < q.Bits() && n != nil; i++ {
		n = n.child[q.bit(i)]
		if n != nil && n.set {
			bestLen, bestVal = i+1, n.val
		}
	}
	if bestLen < 0 {
		return Prefix{}, bestVal, false
	}
	return New(q.Addr(), bestLen), bestVal, true
}

// CoveredBy calls fn for every stored prefix contained in p (including p
// itself when stored), in trie order. Returning false stops the walk.
func (t *Trie[V]) CoveredBy(p Prefix, fn func(Prefix, V) bool) {
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		n = n.child[p.bit(i)]
		if n == nil {
			return
		}
	}
	walk(n, p, fn)
}

// Walk calls fn for every stored prefix, in trie order (address order,
// shorter prefixes before their sub-prefixes). Returning false stops.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	walk(t.root, Prefix{}, fn)
}

func walk[V any](n *node[V], at Prefix, fn func(Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set && !fn(at, n.val) {
		return false
	}
	if at.Bits() == 32 {
		return true
	}
	lo, hi := at.Split()
	if !walk(n.child[0], lo, fn) {
		return false
	}
	return walk(n.child[1], hi, fn)
}
