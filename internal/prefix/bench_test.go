package prefix

import (
	"math/rand"
	"testing"
)

// BenchmarkTrieLPM measures longest-prefix match on the routing hot path:
// the v4-only case (the pre-dual-stack workload, which the 128-bit widening
// must not regress) against a mixed v4+v6 table, and the pure-v6 walk whose
// keys are four times deeper. CI's benchdiff job compares these against the
// PR base.
func BenchmarkTrieLPM(b *testing.B) {
	const tableSize = 4096
	build := func(rng *rand.Rand, v6Every int) (*Trie[int], []Addr) {
		tr := NewTrie[int]()
		for i := 0; i < tableSize; i++ {
			if v6Every > 0 && i%v6Every == 0 {
				hi := uint64(0x20010db800000000) | uint64(rng.Uint32())<<8
				tr.Insert(New(AddrFrom16(hi, 0), 32+rng.Intn(17)), i)
			} else {
				tr.Insert(New(AddrFrom4(rng.Uint32()), 8+rng.Intn(17)), i)
			}
		}
		addrs := make([]Addr, 1024)
		for i := range addrs {
			if v6Every > 0 && i%v6Every == 0 {
				addrs[i] = AddrFrom16(uint64(0x20010db800000000)|uint64(rng.Uint32())<<8, rng.Uint64())
			} else {
				addrs[i] = AddrFrom4(rng.Uint32())
			}
		}
		return tr, addrs
	}
	run := func(b *testing.B, v6Every int) {
		tr, addrs := build(rand.New(rand.NewSource(1)), v6Every)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.LongestMatch(addrs[i%len(addrs)])
		}
	}
	b.Run("v4-only", func(b *testing.B) { run(b, 0) })
	b.Run("dual-stack", func(b *testing.B) { run(b, 4) })
	b.Run("v6-only", func(b *testing.B) { run(b, 1) })
}
