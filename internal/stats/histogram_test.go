package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(time.Millisecond, 10*time.Millisecond, 100*time.Millisecond)
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (le is inclusive)
	h.Observe(2 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // +Inf overflow
	h.Observe(-time.Second)           // clamped to 0 → bucket 0

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	want := []int64{3, 1, 0, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", s.Counts, want)
		}
	}
	if s.Sum != 500*time.Microsecond+3*time.Millisecond+time.Second {
		t.Fatalf("sum = %v", s.Sum)
	}
	if got := s.Mean(); got != s.Sum/5 {
		t.Fatalf("mean = %v", got)
	}
}

func TestHistogramDefaultBucketsAndConcurrency(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d", s.Count)
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

func TestWritePromShapes(t *testing.T) {
	h := NewHistogram(time.Millisecond, time.Second)
	h.Observe(2 * time.Millisecond)
	snap := PipelineSnapshot{
		Submitted: 10, Applied: 9, Events: 1000,
		SinkApply: h.Snapshot(),
		Shards: []ShardSnapshot{
			{Shard: 0, Events: 600, Batches: 6, QueueLen: 1, QueueCap: 128, Service: h.Snapshot()},
		},
	}
	var b strings.Builder
	snap.WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		"artemis_pipeline_batches_submitted_total 10",
		"artemis_pipeline_inflight_batches 1",
		`artemis_pipeline_shard_events_total{shard="0"} 600`,
		`artemis_pipeline_sink_apply_seconds_bucket{le="0.001"} 0`,
		`artemis_pipeline_sink_apply_seconds_bucket{le="+Inf"} 1`,
		"artemis_pipeline_sink_apply_seconds_count 1",
		`artemis_pipeline_shard_service_seconds_bucket{shard="0",le="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}

	var mb strings.Builder
	MitigationQueueSnapshot{Enqueued: 5, Handled: 4, QueueLen: 1, QueueCap: 64,
		Wait: h.Snapshot(), Handle: h.Snapshot(), Synchronous: false, Failures: 2}.WriteProm(&mb)
	mout := mb.String()
	for _, want := range []string{
		"artemis_mitigation_enqueued_total 5",
		"artemis_mitigation_failures_total 2",
		"artemis_mitigation_queue_depth 1",
		"artemis_mitigation_synchronous 0",
		`artemis_mitigation_wait_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(mout, want) {
			t.Fatalf("missing %q in:\n%s", want, mout)
		}
	}
}
