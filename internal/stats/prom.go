package stats

import (
	"fmt"
	"io"
)

// This file renders snapshots in the Prometheus text exposition shape
// ("name{label="v"} value" lines) so cmd/artemisd can serve a /metrics
// endpoint without pulling in a client library. Only the subset of the
// format the snapshots need is implemented: untyped samples and classic
// cumulative histograms.

// WriteProm renders the pipeline's counters.
func (s PipelineSnapshot) WriteProm(w io.Writer) {
	fmt.Fprintf(w, "artemis_pipeline_batches_submitted_total %d\n", s.Submitted)
	fmt.Fprintf(w, "artemis_pipeline_batches_applied_total %d\n", s.Applied)
	fmt.Fprintf(w, "artemis_pipeline_events_total %d\n", s.Events)
	fmt.Fprintf(w, "artemis_pipeline_reconfigs_total %d\n", s.Reconfigs)
	fmt.Fprintf(w, "artemis_pipeline_inflight_batches %d\n", s.Submitted-s.Applied)
	s.SinkApply.writeProm(w, "artemis_pipeline_sink_apply_seconds", "")
	for _, sh := range s.Shards {
		l := fmt.Sprintf(`shard="%d"`, sh.Shard)
		fmt.Fprintf(w, "artemis_pipeline_shard_events_total{%s} %d\n", l, sh.Events)
		fmt.Fprintf(w, "artemis_pipeline_shard_batches_total{%s} %d\n", l, sh.Batches)
		fmt.Fprintf(w, "artemis_pipeline_shard_queue_depth{%s} %d\n", l, sh.QueueLen)
		fmt.Fprintf(w, "artemis_pipeline_shard_queue_capacity{%s} %d\n", l, sh.QueueCap)
		sh.Service.writeProm(w, "artemis_pipeline_shard_service_seconds", l)
	}
}

// ingestStates are the lifecycle states a supervised source can be in,
// rendered one-hot so dashboards can alert on "any source not healthy".
var ingestStates = []string{"connecting", "healthy", "degraded", "dead", "finished"}

// WriteProm renders the ingest supervisor's counters.
func (s IngestSnapshot) WriteProm(w io.Writer) {
	fmt.Fprintf(w, "artemis_ingest_sources %d\n", len(s.Sources))
	if s.DedupSize >= 0 {
		fmt.Fprintf(w, "artemis_ingest_dedup_size %d\n", s.DedupSize)
	}
	for _, src := range s.Sources {
		l := fmt.Sprintf(`source="%s"`, src.Name)
		fmt.Fprintf(w, "artemis_ingest_source_events_total{%s} %d\n", l, src.Events)
		fmt.Fprintf(w, "artemis_ingest_source_batches_total{%s} %d\n", l, src.Batches)
		fmt.Fprintf(w, "artemis_ingest_source_dedup_hits_total{%s} %d\n", l, src.DedupHits)
		fmt.Fprintf(w, "artemis_ingest_source_dropped_events_total{%s} %d\n", l, src.Drops)
		fmt.Fprintf(w, "artemis_ingest_source_rate_shed_total{%s} %d\n", l, src.RateShed)
		fmt.Fprintf(w, "artemis_ingest_source_reconnects_total{%s} %d\n", l, src.Reconnects)
		fmt.Fprintf(w, "artemis_ingest_source_queue_depth{%s} %d\n", l, src.QueueLen)
		fmt.Fprintf(w, "artemis_ingest_source_queue_capacity{%s} %d\n", l, src.QueueCap)
		known := false
		for _, st := range ingestStates {
			v := 0
			if src.State == st {
				v, known = 1, true
			}
			fmt.Fprintf(w, "artemis_ingest_source_state{%s} %d\n", joinLabels(l, fmt.Sprintf(`state="%s"`, st)), v)
		}
		if !known {
			fmt.Fprintf(w, "artemis_ingest_source_state{%s} 1\n", joinLabels(l, fmt.Sprintf(`state="%s"`, src.State)))
		}
		src.Latency.writeProm(w, "artemis_ingest_source_delivery_latency_seconds", l)
	}
}

// WriteProm renders the mitigation queue's counters.
func (s MitigationQueueSnapshot) WriteProm(w io.Writer) {
	fmt.Fprintf(w, "artemis_mitigation_enqueued_total %d\n", s.Enqueued)
	fmt.Fprintf(w, "artemis_mitigation_handled_total %d\n", s.Handled)
	fmt.Fprintf(w, "artemis_mitigation_dropped_total %d\n", s.Dropped)
	fmt.Fprintf(w, "artemis_mitigation_blocked_total %d\n", s.Blocked)
	fmt.Fprintf(w, "artemis_mitigation_failures_total %d\n", s.Failures)
	fmt.Fprintf(w, "artemis_mitigation_queue_depth %d\n", s.QueueLen)
	fmt.Fprintf(w, "artemis_mitigation_queue_capacity %d\n", s.QueueCap)
	sync := 0
	if s.Synchronous {
		sync = 1
	}
	fmt.Fprintf(w, "artemis_mitigation_synchronous %d\n", sync)
	s.Wait.writeProm(w, "artemis_mitigation_wait_seconds", "")
	s.Handle.writeProm(w, "artemis_mitigation_handle_seconds", "")
}

// writeProm renders one histogram as cumulative _bucket/_sum/_count
// samples, optionally merged with extra labels ("k=\"v\"" form, no braces).
func (s HistogramSnapshot) writeProm(w io.Writer, name, labels string) {
	cum := int64(0)
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = fmt.Sprintf("%g", s.Bounds[i].Seconds())
		}
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, joinLabels(labels, fmt.Sprintf(`le="%s"`, le)), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, braced(labels), s.Sum.Seconds())
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(labels), s.Count)
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}
