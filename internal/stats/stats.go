// Package stats provides the small statistical toolkit the experiment
// harness uses to report results the way the paper does: means over a few
// dozen trials, percentiles, and empirical CDFs.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N                int
	Mean, Stddev     float64
	Min, Median, Max float64
	P10, P90         float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	s.Mean = sum / float64(len(sorted))
	if len(sorted) > 1 {
		variance := (sumSq - sum*sum/float64(len(sorted))) / float64(len(sorted)-1)
		if variance > 0 {
			s.Stddev = math.Sqrt(variance)
		}
	}
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = Percentile(sorted, 0.5)
	s.P10 = Percentile(sorted, 0.10)
	s.P90 = Percentile(sorted, 0.90)
	return s
}

// Percentile returns the q-quantile (0..1) of an ascending-sorted sample
// using linear interpolation.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// DurationSummary is Summary over time.Durations.
type DurationSummary struct {
	N                int
	Mean, Stddev     time.Duration
	Min, Median, Max time.Duration
	P10, P90         time.Duration
}

// SummarizeDurations computes a DurationSummary.
func SummarizeDurations(ds []time.Duration) DurationSummary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d)
	}
	s := Summarize(xs)
	return DurationSummary{
		N:    s.N,
		Mean: time.Duration(s.Mean), Stddev: time.Duration(s.Stddev),
		Min: time.Duration(s.Min), Median: time.Duration(s.Median), Max: time.Duration(s.Max),
		P10: time.Duration(s.P10), P90: time.Duration(s.P90),
	}
}

func (s DurationSummary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v median=%v p90=%v min=%v max=%v",
		s.N, s.Mean.Round(time.Millisecond), s.Median.Round(time.Millisecond),
		s.P90.Round(time.Millisecond), s.Min.Round(time.Millisecond), s.Max.Round(time.Millisecond))
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64
	F float64 // fraction of samples <= X
}

// CDF computes the empirical distribution of xs.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, 0, len(sorted))
	for i, x := range sorted {
		// collapse duplicates to the highest fraction
		if len(out) > 0 && out[len(out)-1].X == x {
			out[len(out)-1].F = float64(i+1) / float64(len(sorted))
			continue
		}
		out = append(out, CDFPoint{X: x, F: float64(i+1) / float64(len(sorted))})
	}
	return out
}

// FractionBelow reports the share of samples strictly below x.
func FractionBelow(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v < x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
