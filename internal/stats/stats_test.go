package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-9 {
		t.Fatalf("stddev = %v", s.Stddev)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Stddev != 0 || s.Median != 7 || s.P90 != 7 {
		t.Fatalf("single = %+v", s)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Percentile(sorted, 0.5); got != 5 {
		t.Fatalf("P50 = %v", got)
	}
	if Percentile(sorted, 0) != 0 || Percentile(sorted, 1) != 10 {
		t.Fatal("extremes broken")
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestPercentileMonotonic(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		s := Summarize(xs)
		return s.Min <= s.P10 && s.P10 <= s.Median && s.Median <= s.P90 && s.P90 <= s.Max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if s.Mean != 2*time.Second || s.N != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" || SummarizeDurations(nil).String() != "n=0" {
		t.Fatal("String broken")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{1, 2, 2, 3})
	if len(pts) != 3 {
		t.Fatalf("points = %+v", pts)
	}
	if pts[0].F != 0.25 || pts[1].X != 2 || pts[1].F != 0.75 || pts[2].F != 1 {
		t.Fatalf("points = %+v", pts)
	}
	if CDF(nil) != nil {
		t.Fatal("empty CDF")
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{1, 5, 10}
	if FractionBelow(xs, 6) != 2.0/3.0 {
		t.Fatal("FractionBelow broken")
	}
	if FractionBelow(nil, 1) != 0 {
		t.Fatal("empty FractionBelow")
	}
	if FractionBelow(xs, 1) != 0 {
		t.Fatal("strictness broken")
	}
}
