package stats

import (
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the upper bounds used when a Histogram is
// built without explicit buckets: exponential from 10µs to 10s, the span
// between a cheap in-memory sink apply and a stalled southbound call.
var DefaultLatencyBuckets = []time.Duration{
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// Histogram is a concurrency-safe duration histogram for hot-path
// instrumentation (queue waits, per-shard service times). Like Counter it
// is written on the data path itself: one atomic add per observation, no
// locks, no allocation. Bucket bounds are fixed at construction; an
// implicit +Inf bucket catches the overflow.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64   // nanoseconds
	n      atomic.Int64
}

// NewHistogram builds a histogram with the given ascending upper bounds,
// or DefaultLatencyBuckets when none are given.
func NewHistogram(bounds ...time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.n.Add(1)
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]time.Duration(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    time.Duration(h.sum.Load()),
		Count:  h.n.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Counts are
// per-bucket (NOT cumulative): Counts[i] is the number of observations
// that fell between Bounds[i-1] (exclusive) and Bounds[i] (inclusive);
// the final entry is the +Inf overflow bucket. The Prometheus renderer
// accumulates them into cumulative `le` buckets.
type HistogramSnapshot struct {
	Bounds []time.Duration
	Counts []int64
	Sum    time.Duration
	Count  int64
}

// Mean returns the average observation, or 0 when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}
