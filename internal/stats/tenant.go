package stats

import (
	"fmt"
	"io"
)

// TenantSnapshot is one tenant's share of a hosted node's work: how many
// matched events were routed to it, how many its isolation limits shed,
// and what its policy raised. The node's /metrics endpoint renders one
// per tenant so a hosting operator can see per-customer load and verify
// that drops are counted, never silent.
type TenantSnapshot struct {
	Name string
	// Events counts matched events routed to the tenant's classification.
	Events int64
	// QuotaDrops counts classifications shed by the tenant's
	// MaxEventsPerSec fair-share quota.
	QuotaDrops int64
	// Alerts counts incidents the tenant's policy raised.
	Alerts int64
	// MitigationRateDrops counts alerts the tenant's mitigation rate
	// limit kept out of auto-mitigation.
	MitigationRateDrops int64
}

// WriteProm renders the tenant's counters with a tenant label.
func (s TenantSnapshot) WriteProm(w io.Writer) {
	l := fmt.Sprintf(`tenant="%s"`, s.Name)
	fmt.Fprintf(w, "artemis_tenant_events_total{%s} %d\n", l, s.Events)
	fmt.Fprintf(w, "artemis_tenant_quota_drops_total{%s} %d\n", l, s.QuotaDrops)
	fmt.Fprintf(w, "artemis_tenant_alerts_total{%s} %d\n", l, s.Alerts)
	fmt.Fprintf(w, "artemis_tenant_mitigation_rate_drops_total{%s} %d\n", l, s.MitigationRateDrops)
}

// Merge folds other into s field-wise — the multi-tenant node sums its
// per-tenant mitigation queues into the one unlabeled queue family the
// single-tenant daemon always exported. Histograms merge bucket-wise
// (every queue uses the default bounds); QueueCap sums so depth/capacity
// ratios stay meaningful.
func (s MitigationQueueSnapshot) Merge(other MitigationQueueSnapshot) MitigationQueueSnapshot {
	s.Enqueued += other.Enqueued
	s.Handled += other.Handled
	s.Dropped += other.Dropped
	s.Blocked += other.Blocked
	s.Failures += other.Failures
	s.QueueLen += other.QueueLen
	s.QueueCap += other.QueueCap
	s.Synchronous = s.Synchronous && other.Synchronous
	s.Wait = s.Wait.merge(other.Wait)
	s.Handle = s.Handle.merge(other.Handle)
	return s
}

// merge folds two histogram snapshots with identical bounds; on a bounds
// mismatch the larger-count side wins (never happens for the default
// bounds every queue shares).
func (s HistogramSnapshot) merge(other HistogramSnapshot) HistogramSnapshot {
	if len(s.Counts) != len(other.Counts) {
		if other.Count > s.Count {
			return other
		}
		return s
	}
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Sum:    s.Sum + other.Sum,
		Count:  s.Count + other.Count,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + other.Counts[i]
	}
	return out
}
