package stats

import "sync/atomic"

// Counter is a concurrency-safe monotonic counter for hot-path
// instrumentation (events processed, batches flushed). The zero value is
// ready to use. Unlike the sampling helpers in this package, a Counter is
// written on the data path itself, so it is a single atomic — no locks,
// no allocation.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// ShardSnapshot is one detection-pipeline shard's counters at a point in
// time: cumulative throughput plus instantaneous queue depth, the two
// numbers needed to spot a hot shard (skewed prefix ownership) or a
// backpressured one (queue pinned at capacity).
type ShardSnapshot struct {
	// Shard is the shard index.
	Shard int
	// Events is the cumulative number of events this shard classified.
	Events int64
	// Batches is the cumulative number of sub-batches it processed.
	Batches int64
	// QueueLen is the number of sub-batches currently waiting; QueueCap is
	// the bound that triggers backpressure.
	QueueLen, QueueCap int
	// Service is the distribution of this shard's per-sub-batch
	// classification time.
	Service HistogramSnapshot
}

// PipelineSnapshot aggregates a pipeline's observability counters.
type PipelineSnapshot struct {
	// Submitted and Applied count whole ingest batches: Submitted-Applied
	// is the in-flight depth of the pipeline.
	Submitted, Applied int64
	// Events is the cumulative number of events ingested.
	Events int64
	// Reconfigs counts applied live-reconfiguration barriers (each also
	// counts as one submitted and applied batch).
	Reconfigs int64
	// SinkApply is the distribution of the sink's per-batch apply time
	// (alert commit + handler dispatch + monitor fold).
	SinkApply HistogramSnapshot
	// Shards holds the per-shard view.
	Shards []ShardSnapshot
}

// IngestSourceSnapshot is one supervised feed source's counters: health
// state, cumulative throughput, how much of its traffic the cross-source
// dedup absorbed, what its own drop policy shed, and the distribution of
// its delivery latency (EmittedAt - SeenAt — the source's contribution to
// detection delay).
type IngestSourceSnapshot struct {
	// ID is the supervisor-assigned source id; Name the operator-facing
	// label ("ris[0]").
	ID   int
	Name string
	// State is the lifecycle state ("connecting", "healthy", "degraded",
	// "dead", "finished").
	State string
	// Events/Batches count deliveries into the pipeline after dedup.
	Events, Batches int64
	// DedupHits counts events suppressed because another source (or an
	// earlier batch) already delivered the same route change.
	DedupHits int64
	// Drops counts events shed by this source's own queue bound — the
	// drop policy that keeps a stalled source from wedging its siblings.
	Drops int64
	// RateShed counts events shed by the source's token-bucket rate
	// limit (drop-policy sources only; blocking sources are paced, not
	// shed).
	RateShed int64
	// Reconnects counts dial attempts beyond the first (redials after a
	// connection loss plus retries of failed dials).
	Reconnects int64
	// QueueLen/QueueCap describe the per-source bounded queue right now
	// (zero capacity for synchronous in-process sources, which have none).
	QueueLen, QueueCap int
	// Latency is the distribution of EmittedAt - SeenAt over delivered
	// events.
	Latency HistogramSnapshot
}

// IngestSnapshot aggregates the ingest supervisor's observability
// counters.
type IngestSnapshot struct {
	// DedupSize is the current number of route-change identities in the
	// shared TTL'd seen-set; -1 when dedup is disabled.
	DedupSize int
	// Sources holds the per-source view, in source-id order.
	Sources []IngestSourceSnapshot
}

// MitigationQueueSnapshot is the async mitigation stage's counters: how
// many alerts entered and left the queue, how long they waited, and how
// long the handler (mitigation computation + controller calls) took.
type MitigationQueueSnapshot struct {
	// Enqueued/Handled count alerts through the queue; Enqueued-Handled is
	// the stage's in-flight depth. Dropped counts alerts rejected after
	// Close. Blocked counts enqueues that hit a full queue (backpressure
	// onto the sink).
	Enqueued, Handled, Dropped, Blocked int64
	// Failures counts mitigations that ended in a controller/injector
	// error (the incident stays retryable).
	Failures int64
	// QueueLen/QueueCap describe the bounded queue right now.
	QueueLen, QueueCap int
	// Wait is time spent queued; Handle is handler execution time.
	Wait, Handle HistogramSnapshot
	// Synchronous reports the queue's mode (true = handler runs inline on
	// the caller, the virtual-time experiments' semantics).
	Synchronous bool
}
