package stats

import "sync/atomic"

// Counter is a concurrency-safe monotonic counter for hot-path
// instrumentation (events processed, batches flushed). The zero value is
// ready to use. Unlike the sampling helpers in this package, a Counter is
// written on the data path itself, so it is a single atomic — no locks,
// no allocation.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// ShardSnapshot is one detection-pipeline shard's counters at a point in
// time: cumulative throughput plus instantaneous queue depth, the two
// numbers needed to spot a hot shard (skewed prefix ownership) or a
// backpressured one (queue pinned at capacity).
type ShardSnapshot struct {
	// Shard is the shard index.
	Shard int
	// Events is the cumulative number of events this shard classified.
	Events int64
	// Batches is the cumulative number of sub-batches it processed.
	Batches int64
	// QueueLen is the number of sub-batches currently waiting; QueueCap is
	// the bound that triggers backpressure.
	QueueLen, QueueCap int
}

// PipelineSnapshot aggregates a pipeline's observability counters.
type PipelineSnapshot struct {
	// Submitted and Applied count whole ingest batches: Submitted-Applied
	// is the in-flight depth of the pipeline.
	Submitted, Applied int64
	// Events is the cumulative number of events ingested.
	Events int64
	// Shards holds the per-shard view.
	Shards []ShardSnapshot
}
