package stats

import "sync/atomic"

// Counter is a concurrency-safe monotonic counter for hot-path
// instrumentation (events processed, batches flushed). The zero value is
// ready to use. Unlike the sampling helpers in this package, a Counter is
// written on the data path itself, so it is a single atomic — no locks,
// no allocation.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// ShardSnapshot is one detection-pipeline shard's counters at a point in
// time: cumulative throughput plus instantaneous queue depth, the two
// numbers needed to spot a hot shard (skewed prefix ownership) or a
// backpressured one (queue pinned at capacity).
type ShardSnapshot struct {
	// Shard is the shard index.
	Shard int
	// Events is the cumulative number of events this shard classified.
	Events int64
	// Batches is the cumulative number of sub-batches it processed.
	Batches int64
	// QueueLen is the number of sub-batches currently waiting; QueueCap is
	// the bound that triggers backpressure.
	QueueLen, QueueCap int
	// Service is the distribution of this shard's per-sub-batch
	// classification time.
	Service HistogramSnapshot
}

// PipelineSnapshot aggregates a pipeline's observability counters.
type PipelineSnapshot struct {
	// Submitted and Applied count whole ingest batches: Submitted-Applied
	// is the in-flight depth of the pipeline.
	Submitted, Applied int64
	// Events is the cumulative number of events ingested.
	Events int64
	// SinkApply is the distribution of the sink's per-batch apply time
	// (alert commit + handler dispatch + monitor fold).
	SinkApply HistogramSnapshot
	// Shards holds the per-shard view.
	Shards []ShardSnapshot
}

// MitigationQueueSnapshot is the async mitigation stage's counters: how
// many alerts entered and left the queue, how long they waited, and how
// long the handler (mitigation computation + controller calls) took.
type MitigationQueueSnapshot struct {
	// Enqueued/Handled count alerts through the queue; Enqueued-Handled is
	// the stage's in-flight depth. Dropped counts alerts rejected after
	// Close. Blocked counts enqueues that hit a full queue (backpressure
	// onto the sink).
	Enqueued, Handled, Dropped, Blocked int64
	// Failures counts mitigations that ended in a controller/injector
	// error (the incident stays retryable).
	Failures int64
	// QueueLen/QueueCap describe the bounded queue right now.
	QueueLen, QueueCap int
	// Wait is time spent queued; Handle is handler execution time.
	Wait, Handle HistogramSnapshot
	// Synchronous reports the queue's mode (true = handler runs inline on
	// the caller, the virtual-time experiments' semantics).
	Synchronous bool
}
