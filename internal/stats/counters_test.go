package stats

import (
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
			}
			c.Add(2)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*(each+2) {
		t.Fatalf("Counter = %d, want %d", got, workers*(each+2))
	}
}
