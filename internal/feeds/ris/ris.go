// Package ris reproduces a RIS-style live BGP streaming service: route
// collectors peer with a set of vantage-point ASes in the simulated
// Internet, batch the routing changes they observe (the pipeline latency
// that dominated streamed BGP data in the paper's era), and publish them —
// in-process for the virtual-time experiments, and as JSON over WebSocket
// (internal/wsock) for the live demo mode, mirroring the RIS Live API
// shape.
package ris

import (
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/simnet"
)

// SourceName identifies this feed in events.
const SourceName = "ris"

// DefaultBatchDelay is the collector pipeline latency: observed changes
// become visible to subscribers this long after they happen. 30s matches
// the tens-of-seconds latency of streamed collector data in 2016.
const DefaultBatchDelay = 30 * time.Second

// CollectorConfig describes one route collector.
type CollectorConfig struct {
	// Name is the collector identifier (e.g. "rrc00").
	Name string
	// Peers are the vantage-point ASes the collector sessions with.
	Peers []bgp.ASN
	// BatchDelay overrides DefaultBatchDelay when non-zero.
	BatchDelay time.Duration
}

// Service is the collector infrastructure plus its in-process pub/sub.
type Service struct {
	nw  *simnet.Network
	hub *feedtypes.Hub
	// pool recycles the collectors' flush batches: each batch-delay window
	// accumulates into a pooled batch (AS paths in its arena) that is
	// published and released in flush, so a steady stream of route changes
	// allocates nothing per flush.
	pool *feedtypes.BatchPool

	collectors []*collector
}

type collector struct {
	svc     *Service
	name    string
	peers   []bgp.ASN
	delay   time.Duration
	pending *feedtypes.Batch // nil between windows
	armed   bool
}

// New attaches collectors to the network. Each peer's best-route changes
// are observed immediately and published after the collector's batch delay.
func New(nw *simnet.Network, configs []CollectorConfig) *Service {
	svc := &Service{nw: nw, hub: feedtypes.NewHub(), pool: feedtypes.NewBatchPool()}
	for _, cfg := range configs {
		c := &collector{svc: svc, name: cfg.Name, delay: cfg.BatchDelay}
		if c.delay == 0 {
			c.delay = DefaultBatchDelay
		}
		for _, asn := range cfg.Peers {
			node := nw.Node(asn)
			if node == nil {
				continue
			}
			vp := asn
			c.peers = append(c.peers, vp)
			node.OnChange(func(ev simnet.RouteChange) { c.observe(vp, ev) })
		}
		svc.collectors = append(svc.collectors, c)
	}
	return svc
}

// Name implements feedtypes.Source.
func (s *Service) Name() string { return SourceName }

// VantagePoints returns the union of all collectors' peers — the set of
// viewpoints the monitoring service can reason about.
func (s *Service) VantagePoints() []bgp.ASN {
	seen := map[bgp.ASN]bool{}
	var out []bgp.ASN
	for _, c := range s.collectors {
		for _, vp := range c.peers {
			if !seen[vp] {
				seen[vp] = true
				out = append(out, vp)
			}
		}
	}
	return out
}

// Subscribe registers fn for events matching f. It may be called from any
// goroutine (the live servers subscribe from connection handlers).
func (s *Service) Subscribe(f feedtypes.Filter, fn func(feedtypes.Event)) (cancel func()) {
	return s.hub.Subscribe(f, fn)
}

// SubscribeBatch registers fn for whole collector flushes: each collector's
// batch-delay window yields one delivery, matching the real RIS pipeline's
// burst shape.
func (s *Service) SubscribeBatch(f feedtypes.Filter, fn func([]feedtypes.Event)) (cancel func()) {
	return s.hub.SubscribeBatch(f, fn)
}

func (c *collector) observe(vp bgp.ASN, ev simnet.RouteChange) {
	now := c.svc.nw.Engine.Now()
	if c.pending == nil {
		c.pending = c.svc.pool.Get()
	}
	out := feedtypes.Event{
		Source:       SourceName,
		Collector:    c.name,
		VantagePoint: vp,
		Prefix:       ev.Prefix,
		SeenAt:       now,
	}
	if ev.New != nil {
		out.Kind = feedtypes.Announce
		// The vantage point prepends itself to its best route's path;
		// build the combined path directly in the batch's arena.
		path := c.pending.NewPath(1 + len(ev.New.Path))
		path[0] = vp
		copy(path[1:], ev.New.Path)
		out.Path = path
	} else {
		out.Kind = feedtypes.Withdraw
	}
	c.pending.Append(out)
	if !c.armed {
		c.armed = true
		c.svc.nw.Engine.After(c.delay, c.flush)
	}
}

func (c *collector) flush() {
	c.armed = false
	if c.pending == nil || len(c.pending.Events) == 0 {
		return
	}
	batch := c.pending
	c.pending = nil
	now := c.svc.nw.Engine.Now()
	for i := range batch.Events {
		batch.Events[i].EmittedAt = now
	}
	c.svc.hub.Publish(batch.Events)
	batch.Release()
}

var (
	_ feedtypes.Source      = (*Service)(nil)
	_ feedtypes.BatchSource = (*Service)(nil)
)
