// Package ris reproduces a RIS-style live BGP streaming service: route
// collectors peer with a set of vantage-point ASes in the simulated
// Internet, batch the routing changes they observe (the pipeline latency
// that dominated streamed BGP data in the paper's era), and publish them —
// in-process for the virtual-time experiments, and as JSON over WebSocket
// (internal/wsock) for the live demo mode, mirroring the RIS Live API
// shape.
package ris

import (
	"sync"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/simnet"
)

// SourceName identifies this feed in events.
const SourceName = "ris"

// DefaultBatchDelay is the collector pipeline latency: observed changes
// become visible to subscribers this long after they happen. 30s matches
// the tens-of-seconds latency of streamed collector data in 2016.
const DefaultBatchDelay = 30 * time.Second

// CollectorConfig describes one route collector.
type CollectorConfig struct {
	// Name is the collector identifier (e.g. "rrc00").
	Name string
	// Peers are the vantage-point ASes the collector sessions with.
	Peers []bgp.ASN
	// BatchDelay overrides DefaultBatchDelay when non-zero.
	BatchDelay time.Duration
}

// Service is the collector infrastructure plus its in-process pub/sub.
type Service struct {
	nw *simnet.Network

	mu     sync.Mutex
	subs   map[int]*subscriber
	nextID int

	collectors []*collector
}

type subscriber struct {
	filter feedtypes.Filter
	fn     func(feedtypes.Event)
}

type collector struct {
	svc     *Service
	name    string
	peers   []bgp.ASN
	delay   time.Duration
	pending []feedtypes.Event
	armed   bool
}

// New attaches collectors to the network. Each peer's best-route changes
// are observed immediately and published after the collector's batch delay.
func New(nw *simnet.Network, configs []CollectorConfig) *Service {
	svc := &Service{nw: nw, subs: make(map[int]*subscriber)}
	for _, cfg := range configs {
		c := &collector{svc: svc, name: cfg.Name, delay: cfg.BatchDelay}
		if c.delay == 0 {
			c.delay = DefaultBatchDelay
		}
		for _, asn := range cfg.Peers {
			node := nw.Node(asn)
			if node == nil {
				continue
			}
			vp := asn
			c.peers = append(c.peers, vp)
			node.OnChange(func(ev simnet.RouteChange) { c.observe(vp, ev) })
		}
		svc.collectors = append(svc.collectors, c)
	}
	return svc
}

// Name implements feedtypes.Source.
func (s *Service) Name() string { return SourceName }

// VantagePoints returns the union of all collectors' peers — the set of
// viewpoints the monitoring service can reason about.
func (s *Service) VantagePoints() []bgp.ASN {
	seen := map[bgp.ASN]bool{}
	var out []bgp.ASN
	for _, c := range s.collectors {
		for _, vp := range c.peers {
			if !seen[vp] {
				seen[vp] = true
				out = append(out, vp)
			}
		}
	}
	return out
}

// Subscribe registers fn for events matching f. It may be called from any
// goroutine (the live servers subscribe from connection handlers).
func (s *Service) Subscribe(f feedtypes.Filter, fn func(feedtypes.Event)) (cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	s.subs[id] = &subscriber{filter: f, fn: fn}
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.subs, id)
	}
}

func (c *collector) observe(vp bgp.ASN, ev simnet.RouteChange) {
	now := c.svc.nw.Engine.Now()
	out := feedtypes.Event{
		Source:       SourceName,
		Collector:    c.name,
		VantagePoint: vp,
		Prefix:       ev.Prefix,
		SeenAt:       now,
	}
	if ev.New != nil {
		out.Kind = feedtypes.Announce
		out.Path = append([]bgp.ASN{vp}, ev.New.Path...)
	} else {
		out.Kind = feedtypes.Withdraw
	}
	c.pending = append(c.pending, out)
	if !c.armed {
		c.armed = true
		c.svc.nw.Engine.After(c.delay, c.flush)
	}
}

func (c *collector) flush() {
	c.armed = false
	if len(c.pending) == 0 {
		return
	}
	batch := c.pending
	c.pending = nil
	now := c.svc.nw.Engine.Now()
	for i := range batch {
		batch[i].EmittedAt = now
		c.svc.publish(batch[i])
	}
}

func (s *Service) publish(ev feedtypes.Event) {
	s.mu.Lock()
	subs := make([]*subscriber, 0, len(s.subs))
	for _, sub := range s.subs {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	for _, sub := range subs {
		if sub.filter.Match(ev.Prefix) {
			sub.fn(ev)
		}
	}
}

var _ feedtypes.Source = (*Service)(nil)
