package ris

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
	"artemis/internal/sim"
	"artemis/internal/simnet"
	"artemis/internal/topo"
)

func setup(t *testing.T) (*simnet.Network, *sim.Engine, *Service) {
	t.Helper()
	tp := topo.Line(4, 10*time.Millisecond)
	eng := sim.NewEngine(1)
	nw := simnet.New(tp, eng, simnet.Config{MRAI: simnet.Disabled, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond})
	svc := New(nw, []CollectorConfig{
		{Name: "rrc00", Peers: []bgp.ASN{topo.FirstASN + 2, topo.FirstASN + 3}, BatchDelay: 5 * time.Second},
	})
	return nw, eng, svc
}

func TestCollectorEmitsAfterBatchDelay(t *testing.T) {
	nw, eng, svc := setup(t)
	var events []feedtypes.Event
	svc.Subscribe(feedtypes.Filter{}, func(ev feedtypes.Event) { events = append(events, ev) })
	p := prefix.MustParse("10.0.0.0/23")
	nw.Announce(topo.FirstASN, p)
	eng.Run()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (two monitored VPs)", len(events))
	}
	for _, ev := range events {
		if ev.Source != SourceName || ev.Collector != "rrc00" {
			t.Fatalf("bad identity: %+v", ev)
		}
		if ev.Kind != feedtypes.Announce || ev.Prefix != p {
			t.Fatalf("bad content: %+v", ev)
		}
		lag := ev.EmittedAt - ev.SeenAt
		if lag < 4*time.Second || lag > 6*time.Second {
			t.Fatalf("pipeline lag = %v, want ~5s", lag)
		}
		if ev.Path[0] != ev.VantagePoint {
			t.Fatalf("path should start at the VP: %+v", ev)
		}
		origin, ok := ev.Origin()
		if !ok || origin != topo.FirstASN {
			t.Fatalf("origin = %v,%v", origin, ok)
		}
	}
}

func TestWithdrawEventKind(t *testing.T) {
	nw, eng, svc := setup(t)
	var kinds []feedtypes.Kind
	svc.Subscribe(feedtypes.Filter{}, func(ev feedtypes.Event) { kinds = append(kinds, ev.Kind) })
	p := prefix.MustParse("10.0.0.0/23")
	nw.Announce(topo.FirstASN, p)
	eng.Run()
	nw.Withdraw(topo.FirstASN, p)
	eng.Run()
	if len(kinds) != 4 {
		t.Fatalf("got %d events", len(kinds))
	}
	if kinds[2] != feedtypes.Withdraw || kinds[3] != feedtypes.Withdraw {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestSubscribeFilter(t *testing.T) {
	nw, eng, svc := setup(t)
	var got int
	svc.Subscribe(feedtypes.Filter{
		Prefixes:     []prefix.Prefix{prefix.MustParse("10.0.0.0/23")},
		MoreSpecific: true,
	}, func(ev feedtypes.Event) { got++ })
	nw.Announce(topo.FirstASN, prefix.MustParse("10.0.0.0/24"))  // covered
	nw.Announce(topo.FirstASN, prefix.MustParse("192.0.2.0/24")) // unrelated
	eng.Run()
	if got != 2 { // 2 VPs x 1 matching prefix
		t.Fatalf("filtered events = %d, want 2", got)
	}
}

func TestUnsubscribe(t *testing.T) {
	nw, eng, svc := setup(t)
	var got int
	cancel := svc.Subscribe(feedtypes.Filter{}, func(feedtypes.Event) { got++ })
	cancel()
	nw.Announce(topo.FirstASN, prefix.MustParse("10.0.0.0/23"))
	eng.Run()
	if got != 0 {
		t.Fatalf("events after cancel: %d", got)
	}
}

func TestVantagePoints(t *testing.T) {
	_, _, svc := setup(t)
	vps := svc.VantagePoints()
	if len(vps) != 2 {
		t.Fatalf("VantagePoints = %v", vps)
	}
}

func TestBatchCoalescesMultipleChanges(t *testing.T) {
	nw, eng, svc := setup(t)
	var emitted []time.Duration
	svc.Subscribe(feedtypes.Filter{}, func(ev feedtypes.Event) { emitted = append(emitted, ev.EmittedAt) })
	// Two prefixes announced close together land in one batch window.
	nw.Announce(topo.FirstASN, prefix.MustParse("10.0.0.0/24"))
	nw.Announce(topo.FirstASN, prefix.MustParse("10.0.1.0/24"))
	eng.Run()
	if len(emitted) != 4 {
		t.Fatalf("got %d events", len(emitted))
	}
	for _, at := range emitted[1:] {
		if at != emitted[0] {
			t.Fatalf("batch not coalesced: %v", emitted)
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	ev := feedtypes.Event{
		Source:       SourceName,
		Collector:    "rrc01",
		VantagePoint: 65001,
		Kind:         feedtypes.Announce,
		Prefix:       prefix.MustParse("10.0.0.0/23"),
		Path:         []bgp.ASN{65001, 65002, 196615},
		SeenAt:       42 * time.Second,
		EmittedAt:    47 * time.Second,
	}
	got, err := wireToEvent(eventToWire(ev))
	if err != nil {
		t.Fatal(err)
	}
	if got.Collector != ev.Collector || got.VantagePoint != ev.VantagePoint ||
		got.Prefix != ev.Prefix || got.SeenAt != ev.SeenAt || got.EmittedAt != ev.EmittedAt {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ev)
	}
	for i := range ev.Path {
		if got.Path[i] != ev.Path[i] {
			t.Fatalf("path mismatch: %v vs %v", got.Path, ev.Path)
		}
	}
}

func TestFilterWireRoundTrip(t *testing.T) {
	f := feedtypes.Filter{
		Prefixes:     []prefix.Prefix{prefix.MustParse("10.0.0.0/23"), prefix.MustParse("192.0.2.0/24")},
		MoreSpecific: true,
		LessSpecific: true,
	}
	got, err := wireToFilter(filterToWire(f))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Prefixes) != 2 || !got.MoreSpecific || !got.LessSpecific {
		t.Fatalf("got %+v", got)
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	nw, eng, svc := setup(t)
	srv := NewServer(svc)
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer srv.Close()

	url := "ws://" + strings.TrimPrefix(hs.URL, "http://") + "/v1/ws"
	client, err := DialClient(url, feedtypes.Filter{
		Prefixes:     []prefix.Prefix{prefix.MustParse("10.0.0.0/23")},
		MoreSpecific: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Run the sim in a paced goroutine so server pushes happen while the
	// client reads. 1000x compression: the 5s batch delay becomes 5ms.
	nw.Announce(topo.FirstASN, prefix.MustParse("10.0.0.0/23"))
	go eng.RunPaced(1000, 0, 200*time.Millisecond)

	var got []feedtypes.Event
	timeout := time.After(5 * time.Second)
	for len(got) < 2 {
		select {
		case ev, ok := <-client.Events():
			if !ok {
				t.Fatalf("stream closed early: %v", client.Err())
			}
			got = append(got, ev)
		case <-timeout:
			t.Fatalf("timed out with %d events", len(got))
		}
	}
	for _, ev := range got {
		if ev.Prefix.String() != "10.0.0.0/23" || ev.Kind != feedtypes.Announce {
			t.Fatalf("unexpected event %+v", ev)
		}
		origin, ok := ev.Origin()
		if !ok || origin != topo.FirstASN {
			t.Fatalf("origin over the wire = %v,%v", origin, ok)
		}
	}
}

func TestServerRejectsGarbageSubscription(t *testing.T) {
	_, _, svc := setup(t)
	srv := NewServer(svc)
	hs := httptest.NewServer(srv)
	defer hs.Close()
	url := "ws://" + strings.TrimPrefix(hs.URL, "http://") + "/v1/ws"

	ws, err := dialRaw(url)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	if err := ws.WriteMessage(1, []byte("not json")); err != nil {
		t.Fatal(err)
	}
	// Server should close on us.
	done := make(chan error, 1)
	go func() {
		_, _, err := ws.ReadMessage()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("server kept garbage subscriber")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("server did not close garbage subscriber")
	}
}
