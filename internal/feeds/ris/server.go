package ris

import (
	"encoding/json"
	"net/http"
	"sync"

	"artemis/internal/feeds/feedtypes"
	"artemis/internal/wsock"
)

// Server exposes a Service as a RIS Live-style WebSocket endpoint.
//
// Protocol: the client upgrades at the handler's path, sends one
// ris_subscribe envelope, then receives a stream of ris_message envelopes.
// A slow client whose buffer overflows is disconnected rather than allowed
// to stall the simulation's event loop.
type Server struct {
	svc *Service

	mu    sync.Mutex
	conns map[*clientConn]bool
}

type clientConn struct {
	ws     *wsock.Conn
	out    chan []byte
	cancel func()
}

// clientBuffer is the per-connection event backlog before the server gives
// up on a slow consumer.
const clientBuffer = 4096

// NewServer wraps svc for network serving.
func NewServer(svc *Service) *Server {
	return &Server{svc: svc, conns: make(map[*clientConn]bool)}
}

// ServeHTTP implements the WebSocket endpoint.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ws, err := wsock.Upgrade(w, r)
	if err != nil {
		return // Upgrade already replied
	}
	_, raw, err := ws.ReadMessage()
	if err != nil {
		ws.Close()
		return
	}
	var env wireEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		ws.Close()
		return
	}
	filter, err := wireToFilter(env)
	if err != nil {
		ws.Close()
		return
	}
	cc := &clientConn{ws: ws, out: make(chan []byte, clientBuffer)}
	cc.cancel = s.svc.Subscribe(filter, func(ev feedtypes.Event) {
		b, err := json.Marshal(eventToWire(ev))
		if err != nil {
			return
		}
		select {
		case cc.out <- b:
		default:
			// Client too slow; drop it. Closing the socket makes the
			// writer loop exit and unsubscribe.
			ws.Close()
		}
	})
	s.mu.Lock()
	s.conns[cc] = true
	s.mu.Unlock()

	go s.writeLoop(cc)
	// Reader loop: we expect no further client messages, but reading keeps
	// ping/pong alive and detects close.
	go func() {
		for {
			if _, _, err := ws.ReadMessage(); err != nil {
				s.drop(cc)
				return
			}
		}
	}()
}

func (s *Server) writeLoop(cc *clientConn) {
	for b := range cc.out {
		if err := cc.ws.WriteMessage(wsock.OpText, b); err != nil {
			s.drop(cc)
			return
		}
	}
}

func (s *Server) drop(cc *clientConn) {
	s.mu.Lock()
	if !s.conns[cc] {
		s.mu.Unlock()
		return
	}
	delete(s.conns, cc)
	s.mu.Unlock()
	cc.cancel()
	cc.ws.Close()
	close(cc.out)
}

// Close disconnects all clients.
func (s *Server) Close() {
	s.mu.Lock()
	conns := make([]*clientConn, 0, len(s.conns))
	for cc := range s.conns {
		conns = append(conns, cc)
	}
	s.mu.Unlock()
	for _, cc := range conns {
		s.drop(cc)
	}
}
