package ris

import (
	"encoding/json"
	"fmt"

	"artemis/internal/feeds/feedtypes"
	"artemis/internal/wsock"
)

// Client consumes a RIS server over WebSocket and surfaces events on a
// channel. It is the network-transport twin of Service.Subscribe: the
// ARTEMIS daemon uses Client against a live server, while the virtual-time
// experiments subscribe in-process.
type Client struct {
	ws     *wsock.Conn
	events chan feedtypes.Event
	errs   chan error
}

// DialClient connects to url (ws://host:port/path), subscribes with f, and
// starts streaming.
func DialClient(url string, f feedtypes.Filter) (*Client, error) {
	ws, err := wsock.Dial(url)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(filterToWire(f))
	if err != nil {
		ws.Close()
		return nil, err
	}
	if err := ws.WriteMessage(wsock.OpText, b); err != nil {
		ws.Close()
		return nil, err
	}
	c := &Client{ws: ws, events: make(chan feedtypes.Event, 256), errs: make(chan error, 1)}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer close(c.events)
	for {
		_, raw, err := c.ws.ReadMessage()
		if err != nil {
			c.errs <- err
			return
		}
		var env wireEnvelope
		if err := json.Unmarshal(raw, &env); err != nil {
			c.errs <- fmt.Errorf("ris: bad server message: %w", err)
			return
		}
		ev, err := wireToEvent(env)
		if err != nil {
			c.errs <- err
			return
		}
		c.events <- ev
	}
}

// Events returns the stream of decoded events. The channel closes when the
// connection ends; Err then reports why.
func (c *Client) Events() <-chan feedtypes.Event { return c.events }

// Err returns the terminal error after Events closes, if any.
func (c *Client) Err() error {
	select {
	case err := <-c.errs:
		return err
	default:
		return nil
	}
}

// Close tears down the connection.
func (c *Client) Close() error { return c.ws.Close() }
