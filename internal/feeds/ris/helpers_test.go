package ris

import "artemis/internal/wsock"

// dialRaw exposes the raw websocket dial for protocol-violation tests.
func dialRaw(url string) (*wsock.Conn, error) { return wsock.Dial(url) }
