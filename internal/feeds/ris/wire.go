package ris

import (
	"fmt"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

// The wire format mirrors the shape of the RIS Live JSON API: an envelope
// with a type tag and a data object. Subscriptions flow client→server,
// ris_message events flow server→client.

type wireEnvelope struct {
	Type string    `json:"type"`
	Data *wireData `json:"data,omitempty"`
}

type wireData struct {
	// ris_message fields
	Timestamp float64  `json:"timestamp,omitempty"` // emission time, seconds of sim time
	SeenAt    float64  `json:"seen_at,omitempty"`   // VP change time, seconds of sim time
	Host      string   `json:"host,omitempty"`
	PeerASN   uint32   `json:"peer_asn,omitempty"`
	MsgType   string   `json:"msg_type,omitempty"` // "announcement" | "withdrawal"
	Prefix    string   `json:"prefix,omitempty"`
	Path      []uint32 `json:"path,omitempty"`

	// ris_subscribe fields
	Prefixes     []string `json:"prefixes,omitempty"`
	MoreSpecific bool     `json:"moreSpecific,omitempty"`
	LessSpecific bool     `json:"lessSpecific,omitempty"`
}

func eventToWire(ev feedtypes.Event) wireEnvelope {
	d := &wireData{
		Timestamp: ev.EmittedAt.Seconds(),
		SeenAt:    ev.SeenAt.Seconds(),
		Host:      ev.Collector,
		PeerASN:   uint32(ev.VantagePoint),
		MsgType:   ev.Kind.String(),
		Prefix:    ev.Prefix.String(),
	}
	for _, a := range ev.Path {
		d.Path = append(d.Path, uint32(a))
	}
	return wireEnvelope{Type: "ris_message", Data: d}
}

func wireToEvent(e wireEnvelope) (feedtypes.Event, error) {
	if e.Type != "ris_message" || e.Data == nil {
		return feedtypes.Event{}, fmt.Errorf("ris: unexpected message type %q", e.Type)
	}
	p, err := prefix.Parse(e.Data.Prefix)
	if err != nil {
		return feedtypes.Event{}, fmt.Errorf("ris: bad prefix: %w", err)
	}
	ev := feedtypes.Event{
		Source:       SourceName,
		Collector:    e.Data.Host,
		VantagePoint: bgp.ASN(e.Data.PeerASN),
		Prefix:       p,
		SeenAt:       time.Duration(e.Data.SeenAt * float64(time.Second)),
		EmittedAt:    time.Duration(e.Data.Timestamp * float64(time.Second)),
	}
	if e.Data.MsgType == feedtypes.Withdraw.String() {
		ev.Kind = feedtypes.Withdraw
	} else {
		for _, a := range e.Data.Path {
			ev.Path = append(ev.Path, bgp.ASN(a))
		}
	}
	return ev, nil
}

func filterToWire(f feedtypes.Filter) wireEnvelope {
	d := &wireData{MoreSpecific: f.MoreSpecific, LessSpecific: f.LessSpecific}
	for _, p := range f.Prefixes {
		d.Prefixes = append(d.Prefixes, p.String())
	}
	return wireEnvelope{Type: "ris_subscribe", Data: d}
}

func wireToFilter(e wireEnvelope) (feedtypes.Filter, error) {
	if e.Type != "ris_subscribe" || e.Data == nil {
		return feedtypes.Filter{}, fmt.Errorf("ris: expected ris_subscribe, got %q", e.Type)
	}
	f := feedtypes.Filter{MoreSpecific: e.Data.MoreSpecific, LessSpecific: e.Data.LessSpecific}
	for _, s := range e.Data.Prefixes {
		p, err := prefix.Parse(s)
		if err != nil {
			return feedtypes.Filter{}, fmt.Errorf("ris: bad subscription prefix: %w", err)
		}
		f.Prefixes = append(f.Prefixes, p)
	}
	return f, nil
}
