package bgpmon

import (
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
	"artemis/internal/sim"
	"artemis/internal/simnet"
	"artemis/internal/topo"
)

func setup(t *testing.T, minD, maxD time.Duration) (*simnet.Network, *sim.Engine, *Service) {
	t.Helper()
	tp := topo.Line(4, 10*time.Millisecond)
	eng := sim.NewEngine(1)
	nw := simnet.New(tp, eng, simnet.Config{MRAI: simnet.Disabled, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond})
	svc := New(nw, Config{
		Peers:    []bgp.ASN{topo.FirstASN + 2, topo.FirstASN + 3},
		MinDelay: minD, MaxDelay: maxD,
	})
	return nw, eng, svc
}

func TestPerEventDelay(t *testing.T) {
	nw, eng, svc := setup(t, 10*time.Second, 20*time.Second)
	var events []feedtypes.Event
	svc.Subscribe(feedtypes.Filter{}, func(ev feedtypes.Event) { events = append(events, ev) })
	nw.Announce(topo.FirstASN, prefix.MustParse("10.0.0.0/23"))
	eng.Run()
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	for _, ev := range events {
		lag := ev.EmittedAt - ev.SeenAt
		if lag < 10*time.Second || lag > 20*time.Second {
			t.Fatalf("lag = %v, want within [10s,20s]", lag)
		}
		if ev.Source != SourceName || ev.Collector != "bmon0" {
			t.Fatalf("identity: %+v", ev)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Collector != "bmon0" || cfg.MinDelay != 20*time.Second || cfg.MaxDelay != 60*time.Second {
		t.Fatalf("defaults = %+v", cfg)
	}
	inverted := Config{MinDelay: 30 * time.Second, MaxDelay: time.Second}.withDefaults()
	if inverted.MaxDelay != inverted.MinDelay {
		t.Fatal("inverted bounds not clamped")
	}
}

func TestXMLRoundTripAnnouncement(t *testing.T) {
	ev := feedtypes.Event{
		Source:       SourceName,
		Collector:    "bmon0",
		VantagePoint: 65001,
		Kind:         feedtypes.Announce,
		Prefix:       prefix.MustParse("10.0.0.0/23"),
		Path:         []bgp.ASN{65001, 65002, 196615},
		SeenAt:       3 * time.Second,
		EmittedAt:    33 * time.Second,
	}
	evs, err := xmlToEvents(eventToXML(ev))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	got := evs[0]
	if got.Prefix != ev.Prefix || got.VantagePoint != ev.VantagePoint ||
		got.SeenAt != ev.SeenAt || got.EmittedAt != ev.EmittedAt || len(got.Path) != 3 {
		t.Fatalf("round trip: %+v", got)
	}
	if o, _ := got.Origin(); o != 196615 {
		t.Fatalf("origin = %v", o)
	}
}

func TestXMLRoundTripWithdrawal(t *testing.T) {
	ev := feedtypes.Event{
		Collector: "bmon0", VantagePoint: 65001,
		Kind: feedtypes.Withdraw, Prefix: prefix.MustParse("10.0.0.0/23"),
	}
	evs, err := xmlToEvents(eventToXML(ev))
	if err != nil || len(evs) != 1 || evs[0].Kind != feedtypes.Withdraw {
		t.Fatalf("evs=%v err=%v", evs, err)
	}
}

func TestXMLRejectsGarbage(t *testing.T) {
	if _, err := xmlToEvents(xmlMessage{Update: xmlUpdate{NLRI: []string{"bogus"}}}); err == nil {
		t.Fatal("bad NLRI accepted")
	}
	if _, err := xmlToEvents(xmlMessage{Update: xmlUpdate{Withdraw: []string{"x/99"}}}); err == nil {
		t.Fatal("bad WITHDRAW accepted")
	}
	if _, err := xmlToEvents(xmlMessage{Update: xmlUpdate{NLRI: []string{"10.0.0.0/24"}, ASPath: "1 banana"}}); err == nil {
		t.Fatal("bad AS_PATH accepted")
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	nw, eng, svc := setup(t, 2*time.Second, 2*time.Second)
	srv, err := NewServer(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := DialClient(srv.Addr(), feedtypes.Filter{
		Prefixes: []prefix.Prefix{prefix.MustParse("10.0.0.0/23")},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	nw.Announce(topo.FirstASN, prefix.MustParse("10.0.0.0/23"))
	nw.Announce(topo.FirstASN, prefix.MustParse("192.0.2.0/24")) // filtered out client-side
	go eng.RunPaced(1000, 0, 200*time.Millisecond)

	var got []feedtypes.Event
	timeout := time.After(5 * time.Second)
	for len(got) < 2 {
		select {
		case ev, ok := <-client.Events():
			if !ok {
				t.Fatalf("stream closed: %v", client.Err())
			}
			got = append(got, ev)
		case <-timeout:
			t.Fatalf("timeout with %d events", len(got))
		}
	}
	for _, ev := range got {
		if ev.Prefix.String() != "10.0.0.0/23" {
			t.Fatalf("filter leaked %v", ev.Prefix)
		}
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	nw, eng, svc := setup(t, time.Second, time.Second)
	n := 0
	cancel := svc.Subscribe(feedtypes.Filter{}, func(feedtypes.Event) { n++ })
	cancel()
	nw.Announce(topo.FirstASN, prefix.MustParse("10.0.0.0/23"))
	eng.Run()
	if n != 0 {
		t.Fatalf("delivered after cancel: %d", n)
	}
}
