package bgpmon

import (
	"encoding/xml"
	"io"
	"net"

	"artemis/internal/feeds/feedtypes"
)

// Client consumes a BGPmon server's XML stream, applying a prefix filter
// locally (the server streams everything, as BGPmon did).
type Client struct {
	conn   net.Conn
	filter feedtypes.Filter
	events chan feedtypes.Event
	errs   chan error
}

// DialClient connects to a Server and starts decoding.
func DialClient(addr string, f feedtypes.Filter) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, filter: f, events: make(chan feedtypes.Event, 256), errs: make(chan error, 1)}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer close(c.events)
	dec := xml.NewDecoder(c.conn)
	for {
		var m xmlMessage
		if err := dec.Decode(&m); err != nil {
			if err != io.EOF {
				c.errs <- err
			}
			return
		}
		evs, err := xmlToEvents(m)
		if err != nil {
			c.errs <- err
			return
		}
		for _, ev := range evs {
			if c.filter.Match(ev.Prefix) {
				c.events <- ev
			}
		}
	}
}

// Events returns the filtered stream; the channel closes on disconnect.
func (c *Client) Events() <-chan feedtypes.Event { return c.events }

// Err reports the terminal error, if any, after Events closes.
func (c *Client) Err() error {
	select {
	case err := <-c.errs:
		return err
	default:
		return nil
	}
}

// Close disconnects.
func (c *Client) Close() error { return c.conn.Close() }
