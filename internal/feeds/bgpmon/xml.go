package bgpmon

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

// xmlMessage is the on-wire XML element, shaped after BGPmon's XFB stream:
// one BGP_MESSAGE element per event.
type xmlMessage struct {
	XMLName   xml.Name   `xml:"BGP_MESSAGE"`
	Timestamp float64    `xml:"TIME,attr"`
	SeenAt    float64    `xml:"SEEN,attr"`
	Collector string     `xml:"COLLECTOR,attr"`
	Peer      xmlPeering `xml:"PEERING"`
	Update    xmlUpdate  `xml:"UPDATE"`
}

type xmlPeering struct {
	AS uint32 `xml:"AS,attr"`
}

type xmlUpdate struct {
	Withdraw []string `xml:"WITHDRAW"`
	NLRI     []string `xml:"NLRI"`
	ASPath   string   `xml:"AS_PATH"`
}

func eventToXML(ev feedtypes.Event) xmlMessage {
	m := xmlMessage{
		Timestamp: ev.EmittedAt.Seconds(),
		SeenAt:    ev.SeenAt.Seconds(),
		Collector: ev.Collector,
		Peer:      xmlPeering{AS: uint32(ev.VantagePoint)},
	}
	if ev.Kind == feedtypes.Withdraw {
		m.Update.Withdraw = []string{ev.Prefix.String()}
		return m
	}
	m.Update.NLRI = []string{ev.Prefix.String()}
	parts := make([]string, len(ev.Path))
	for i, a := range ev.Path {
		parts[i] = strconv.FormatUint(uint64(a), 10)
	}
	m.Update.ASPath = strings.Join(parts, " ")
	return m
}

// xmlToEvents converts one XML message to events (a message carries either
// withdrawals or announcements; both lists are honored for robustness).
func xmlToEvents(m xmlMessage) ([]feedtypes.Event, error) {
	base := feedtypes.Event{
		Source:       SourceName,
		Collector:    m.Collector,
		VantagePoint: bgp.ASN(m.Peer.AS),
		SeenAt:       time.Duration(m.SeenAt * float64(time.Second)),
		EmittedAt:    time.Duration(m.Timestamp * float64(time.Second)),
	}
	var out []feedtypes.Event
	for _, w := range m.Update.Withdraw {
		p, err := prefix.Parse(w)
		if err != nil {
			return nil, fmt.Errorf("bgpmon: bad WITHDRAW: %w", err)
		}
		ev := base
		ev.Kind = feedtypes.Withdraw
		ev.Prefix = p
		out = append(out, ev)
	}
	var path []bgp.ASN
	if m.Update.ASPath != "" {
		for _, tok := range strings.Fields(m.Update.ASPath) {
			v, err := strconv.ParseUint(tok, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bgpmon: bad AS_PATH token %q", tok)
			}
			path = append(path, bgp.ASN(v))
		}
	}
	for _, n := range m.Update.NLRI {
		p, err := prefix.Parse(n)
		if err != nil {
			return nil, fmt.Errorf("bgpmon: bad NLRI: %w", err)
		}
		ev := base
		ev.Kind = feedtypes.Announce
		ev.Prefix = p
		ev.Path = path
		out = append(out, ev)
	}
	return out, nil
}
