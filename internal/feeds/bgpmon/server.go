package bgpmon

import (
	"encoding/xml"
	"net"
	"sync"

	"artemis/internal/feeds/feedtypes"
)

// Server streams the full feed to every TCP client as a sequence of XML
// BGP_MESSAGE elements (no framing beyond XML itself, like BGPmon).
// Filtering is the client's job.
type Server struct {
	svc *Service
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]func() // conn -> unsubscribe
	closed bool
}

// NewServer starts listening on addr ("127.0.0.1:0" for tests) and serving
// the feed.
func NewServer(svc *Service, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{svc: svc, ln: ln, conns: make(map[net.Conn]func())}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.attach(conn)
	}
}

func (s *Server) attach(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	// Per-connection serialized writer; events are small so a modest
	// buffer suffices, and a stuck client is dropped.
	out := make(chan []byte, 4096)
	cancel := s.svc.Subscribe(feedtypes.Filter{}, func(ev feedtypes.Event) {
		b, err := xml.Marshal(eventToXML(ev))
		if err != nil {
			return
		}
		b = append(b, '\n')
		select {
		case out <- b:
		default:
			conn.Close()
		}
	})
	s.conns[conn] = cancel
	s.mu.Unlock()

	go func() {
		defer s.drop(conn)
		for b := range out {
			if _, err := conn.Write(b); err != nil {
				return
			}
		}
	}()
	go func() {
		// Detect client hangup by reading (clients never send).
		buf := make([]byte, 1)
		for {
			if _, err := conn.Read(buf); err != nil {
				s.drop(conn)
				return
			}
		}
	}()
}

func (s *Server) drop(conn net.Conn) {
	s.mu.Lock()
	cancel, ok := s.conns[conn]
	if ok {
		delete(s.conns, conn)
	}
	s.mu.Unlock()
	if ok {
		cancel()
		conn.Close()
	}
}

// Close stops the listener and disconnects all clients.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		s.drop(c)
	}
}
