// Package bgpmon reproduces a BGPmon-style monitoring feed: BGP updates
// observed at vantage points, passed through a processing pipeline with a
// per-event delay, and streamed to clients as XML messages over a raw TCP
// connection — the XFB-flavored transport BGPmon used.
//
// Unlike the RIS-style feed (batched per collector), BGPmon models a
// per-event processing latency, so the two sources have different delay
// profiles; ARTEMIS's detection latency is the minimum across them (§2).
package bgpmon

import (
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/simnet"
)

// SourceName identifies this feed in events.
const SourceName = "bgpmon"

// Config tunes the simulated processing pipeline.
type Config struct {
	// Collector is the feed instance name (default "bmon0").
	Collector string
	// Peers are the vantage-point ASes monitored.
	Peers []bgp.ASN
	// MinDelay/MaxDelay bound the per-event processing latency.
	// Defaults 20s-60s, the order BGPmon exhibited in the paper's era.
	MinDelay, MaxDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.Collector == "" {
		c.Collector = "bmon0"
	}
	if c.MinDelay == 0 && c.MaxDelay == 0 {
		c.MinDelay, c.MaxDelay = 20*time.Second, 60*time.Second
	}
	if c.MaxDelay < c.MinDelay {
		c.MaxDelay = c.MinDelay
	}
	return c
}

// Service observes the simulated network and publishes delayed events.
type Service struct {
	nw  *simnet.Network
	cfg Config
	hub *feedtypes.Hub
	// pool recycles the per-event publish batches: each observed change
	// snapshots its path into a pooled batch's arena, holds the batch
	// through the processing delay, and releases it right after the
	// publish.
	pool *feedtypes.BatchPool
}

// New attaches the feed to the network's vantage points.
func New(nw *simnet.Network, cfg Config) *Service {
	cfg = cfg.withDefaults()
	svc := &Service{nw: nw, cfg: cfg, hub: feedtypes.NewHub(), pool: feedtypes.NewBatchPool()}
	for _, asn := range cfg.Peers {
		node := nw.Node(asn)
		if node == nil {
			continue
		}
		vp := asn
		node.OnChange(func(ev simnet.RouteChange) { svc.observe(vp, ev) })
	}
	return svc
}

// Name implements feedtypes.Source.
func (s *Service) Name() string { return SourceName }

// Subscribe registers fn for events matching f.
func (s *Service) Subscribe(f feedtypes.Filter, fn func(feedtypes.Event)) (cancel func()) {
	return s.hub.Subscribe(f, fn)
}

// SubscribeBatch registers fn for event batches matching f. BGPmon's
// per-event processing delay means batches are usually singletons; the
// batch form exists so consumers ingest every feed uniformly.
func (s *Service) SubscribeBatch(f feedtypes.Filter, fn func([]feedtypes.Event)) (cancel func()) {
	return s.hub.SubscribeBatch(f, fn)
}

func (s *Service) observe(vp bgp.ASN, ev simnet.RouteChange) {
	now := s.nw.Engine.Now()
	out := feedtypes.Event{
		Source:       SourceName,
		Collector:    s.cfg.Collector,
		VantagePoint: vp,
		Prefix:       ev.Prefix,
		SeenAt:       now,
	}
	// Snapshot into a pooled batch now — the route's path may change
	// during the processing delay — and carry the batch to the emit.
	b := s.pool.Get()
	if ev.New != nil {
		out.Kind = feedtypes.Announce
		path := b.NewPath(1 + len(ev.New.Path))
		path[0] = vp
		copy(path[1:], ev.New.Path)
		out.Path = path
	} else {
		out.Kind = feedtypes.Withdraw
	}
	b.Append(out)
	delay := s.cfg.MinDelay
	if s.cfg.MaxDelay > s.cfg.MinDelay {
		delay += time.Duration(s.nw.Engine.Rand().Int63n(int64(s.cfg.MaxDelay - s.cfg.MinDelay)))
	}
	s.nw.Engine.After(delay, func() {
		b.Events[0].EmittedAt = s.nw.Engine.Now()
		s.hub.Publish(b.Events)
		b.Release()
	})
}

var (
	_ feedtypes.Source      = (*Service)(nil)
	_ feedtypes.BatchSource = (*Service)(nil)
)
