package feedtypes_test

import (
	"fmt"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

// ExampleBatchPool shows the batch lifecycle every feed follows: take a
// batch from the pool, build events whose AS paths live in the batch's
// arena, publish, release. After Publish returns the batch belongs to
// the pool again — subscribers saw it synchronously inside Publish and
// must have copied anything they keep (feedtypes.CopyEvents, or
// Batch.AppendEvents into a pooled batch of their own). At steady state
// the loop below allocates nothing per batch.
func ExampleBatchPool() {
	pool := feedtypes.NewBatchPool()
	hub := feedtypes.NewHub()
	hub.SubscribeBatch(feedtypes.Filter{}, func(batch []feedtypes.Event) {
		for i := range batch {
			fmt.Println(batch[i].Prefix, batch[i].Path)
		}
	})

	b := pool.Get()
	path := b.NewPath(3) // arena-backed: no per-event allocation
	path[0], path[1], path[2] = 64500, 64501, 64502
	b.Append(feedtypes.Event{
		Kind:   feedtypes.Announce,
		Prefix: prefix.MustParse("203.0.113.0/24"),
		Path:   path,
	})
	b.AppendCopy(feedtypes.Event{ // copies the path into the arena
		Kind:   feedtypes.Announce,
		Prefix: prefix.MustParse("198.51.100.0/24"),
		Path:   []bgp.ASN{64500, 64510},
	})

	hub.Publish(b.Events)
	b.Release() // ownership returns to the pool; b is now invalid

	// Output:
	// 203.0.113.0/24 [AS64500 AS64501 AS64502]
	// 198.51.100.0/24 [AS64500 AS64510]
}
