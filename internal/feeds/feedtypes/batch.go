package feedtypes

import "sync"

// BatchSource is a monitoring feed that delivers events in batches. All
// feed services in this repo implement it natively: collectors batch by
// construction (RIS pipeline flushes, Periscope poll rounds), so handing
// subscribers the whole batch at once preserves that structure and lets
// consumers amortize per-delivery overhead (the detection pipeline ingests
// batches directly). Events within a batch are in emission order.
type BatchSource interface {
	Name() string
	SubscribeBatch(f Filter, fn func([]Event)) (cancel func())
}

// FilterEvents returns the events of batch that pass f, preserving order.
// When every event matches (the common case for a subscriber whose filter
// mirrors the feed's own watch list) the batch is returned as-is, without
// copying; callers must therefore treat the result as shared and not
// mutate it.
func FilterEvents(f Filter, batch []Event) []Event {
	if f.MatchAll() {
		return batch
	}
	n := 0
	for i := range batch {
		if !f.Match(batch[i].Prefix) {
			break
		}
		n++
	}
	if n == len(batch) {
		return batch
	}
	out := make([]Event, 0, len(batch)-1)
	out = append(out, batch[:n]...)
	for i := n + 1; i < len(batch); i++ {
		if f.Match(batch[i].Prefix) {
			out = append(out, batch[i])
		}
	}
	return out
}

// Hub is the in-process pub/sub every feed service embeds: subscribers
// register a filter plus a callback, publishers hand it finished batches.
// It supports both delivery granularities — batch subscribers get each
// publication as one call, per-event subscribers get one call per matching
// event — so legacy consumers keep working while batch consumers avoid the
// per-event fan-out cost.
//
// A Hub is safe for concurrent use. Callbacks run on the publisher's
// goroutine, outside the Hub's lock.
type Hub struct {
	mu     sync.Mutex
	subs   map[int]*hubSub
	nextID int
}

type hubSub struct {
	filter Filter
	fn     func([]Event)
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[int]*hubSub)}
}

// SubscribeBatch registers fn for batches containing at least one event
// matching f. fn receives only the matching events.
func (h *Hub) SubscribeBatch(f Filter, fn func([]Event)) (cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	id := h.nextID
	h.nextID++
	h.subs[id] = &hubSub{filter: f, fn: fn}
	return func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		delete(h.subs, id)
	}
}

// Subscribe registers fn for single events matching f. It is the
// compatibility shim over SubscribeBatch for consumers that want one call
// per event (network stream handlers, taps).
func (h *Hub) Subscribe(f Filter, fn func(Event)) (cancel func()) {
	return h.SubscribeBatch(f, func(batch []Event) {
		for i := range batch {
			fn(batch[i])
		}
	})
}

// Publish delivers one batch to every subscriber whose filter matches at
// least one event. It may be called from any goroutine; subscribers see
// batches in publication order only when publications themselves are
// ordered (feeds publish from a single goroutine).
//
// Ownership: the batch — the slice and its events' Path slices — remains
// the publisher's. It is valid only for the duration of Publish;
// publishers recycle batches through a BatchPool as soon as Publish
// returns. A subscriber that retains events past its callback must
// deep-copy them (CopyEvents, or Batch.AppendEvents into its own pooled
// batch), Path included.
func (h *Hub) Publish(batch []Event) {
	if len(batch) == 0 {
		return
	}
	h.mu.Lock()
	subs := make([]*hubSub, 0, len(h.subs))
	for _, sub := range h.subs {
		subs = append(subs, sub)
	}
	h.mu.Unlock()
	for _, sub := range subs {
		if matched := FilterEvents(sub.filter, batch); len(matched) > 0 {
			sub.fn(matched)
		}
	}
}
