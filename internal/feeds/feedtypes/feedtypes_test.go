package feedtypes

import (
	"testing"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

func TestEventOrigin(t *testing.T) {
	e := Event{Kind: Announce, Path: []bgp.ASN{10, 20, 30}}
	o, ok := e.Origin()
	if !ok || o != 30 {
		t.Fatalf("Origin = %v,%v", o, ok)
	}
	w := Event{Kind: Withdraw}
	if _, ok := w.Origin(); ok {
		t.Fatal("withdrawal has no origin")
	}
	empty := Event{Kind: Announce}
	if _, ok := empty.Origin(); ok {
		t.Fatal("empty path has no origin")
	}
}

func TestKindString(t *testing.T) {
	if Announce.String() != "announcement" || Withdraw.String() != "withdrawal" {
		t.Fatal("Kind.String broken")
	}
}

func TestFilterExact(t *testing.T) {
	f := Filter{Prefixes: []prefix.Prefix{prefix.MustParse("10.0.0.0/23")}}
	if !f.Match(prefix.MustParse("10.0.0.0/23")) {
		t.Fatal("exact match failed")
	}
	if f.Match(prefix.MustParse("10.0.0.0/24")) {
		t.Fatal("more specific matched without flag")
	}
	if f.Match(prefix.MustParse("10.0.0.0/16")) {
		t.Fatal("less specific matched without flag")
	}
}

func TestFilterMoreSpecific(t *testing.T) {
	f := Filter{Prefixes: []prefix.Prefix{prefix.MustParse("10.0.0.0/23")}, MoreSpecific: true}
	if !f.Match(prefix.MustParse("10.0.1.0/24")) {
		t.Fatal("sub-prefix should match")
	}
	if f.Match(prefix.MustParse("10.0.2.0/24")) {
		t.Fatal("sibling prefix matched")
	}
}

func TestFilterLessSpecific(t *testing.T) {
	f := Filter{Prefixes: []prefix.Prefix{prefix.MustParse("10.0.0.0/23")}, LessSpecific: true}
	if !f.Match(prefix.MustParse("10.0.0.0/16")) {
		t.Fatal("covering prefix should match")
	}
	if f.Match(prefix.MustParse("10.0.0.0/24")) {
		t.Fatal("sub-prefix matched with only LessSpecific")
	}
}

func TestFilterMatchAll(t *testing.T) {
	var f Filter
	if !f.MatchAll() || !f.Match(prefix.MustParse("203.0.113.0/24")) {
		t.Fatal("empty filter should match everything")
	}
}

func TestFilterMultiplePrefixes(t *testing.T) {
	f := Filter{Prefixes: []prefix.Prefix{
		prefix.MustParse("10.0.0.0/23"),
		prefix.MustParse("192.0.2.0/24"),
	}, MoreSpecific: true}
	if !f.Match(prefix.MustParse("192.0.2.128/25")) {
		t.Fatal("second watched prefix not honored")
	}
}
