package feedtypes

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

func TestEventOrigin(t *testing.T) {
	e := Event{Kind: Announce, Path: []bgp.ASN{10, 20, 30}}
	o, ok := e.Origin()
	if !ok || o != 30 {
		t.Fatalf("Origin = %v,%v", o, ok)
	}
	w := Event{Kind: Withdraw}
	if _, ok := w.Origin(); ok {
		t.Fatal("withdrawal has no origin")
	}
	empty := Event{Kind: Announce}
	if _, ok := empty.Origin(); ok {
		t.Fatal("empty path has no origin")
	}
}

func TestKindString(t *testing.T) {
	if Announce.String() != "announcement" || Withdraw.String() != "withdrawal" {
		t.Fatal("Kind.String broken")
	}
}

func TestFilterExact(t *testing.T) {
	f := Filter{Prefixes: []prefix.Prefix{prefix.MustParse("10.0.0.0/23")}}
	if !f.Match(prefix.MustParse("10.0.0.0/23")) {
		t.Fatal("exact match failed")
	}
	if f.Match(prefix.MustParse("10.0.0.0/24")) {
		t.Fatal("more specific matched without flag")
	}
	if f.Match(prefix.MustParse("10.0.0.0/16")) {
		t.Fatal("less specific matched without flag")
	}
}

func TestFilterMoreSpecific(t *testing.T) {
	f := Filter{Prefixes: []prefix.Prefix{prefix.MustParse("10.0.0.0/23")}, MoreSpecific: true}
	if !f.Match(prefix.MustParse("10.0.1.0/24")) {
		t.Fatal("sub-prefix should match")
	}
	if f.Match(prefix.MustParse("10.0.2.0/24")) {
		t.Fatal("sibling prefix matched")
	}
}

func TestFilterLessSpecific(t *testing.T) {
	f := Filter{Prefixes: []prefix.Prefix{prefix.MustParse("10.0.0.0/23")}, LessSpecific: true}
	if !f.Match(prefix.MustParse("10.0.0.0/16")) {
		t.Fatal("covering prefix should match")
	}
	if f.Match(prefix.MustParse("10.0.0.0/24")) {
		t.Fatal("sub-prefix matched with only LessSpecific")
	}
}

func TestFilterMatchAll(t *testing.T) {
	var f Filter
	if !f.MatchAll() || !f.Match(prefix.MustParse("203.0.113.0/24")) {
		t.Fatal("empty filter should match everything")
	}
}

func TestFilterMultiplePrefixes(t *testing.T) {
	f := Filter{Prefixes: []prefix.Prefix{
		prefix.MustParse("10.0.0.0/23"),
		prefix.MustParse("192.0.2.0/24"),
	}, MoreSpecific: true}
	if !f.Match(prefix.MustParse("192.0.2.128/25")) {
		t.Fatal("second watched prefix not honored")
	}
}

// TestFilterEventsMatchesNaivePerEventFilter is the property test for the
// batch filter: for randomized filters and batches, FilterEvents must
// select exactly the events a per-event Match loop selects, in order, and
// must take the shared-slice no-copy fast path when (and only when) every
// event matches.
func TestFilterEventsMatchesNaivePerEventFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pool := []prefix.Prefix{
		prefix.MustParse("10.0.0.0/23"),
		prefix.MustParse("10.0.0.0/24"),
		prefix.MustParse("10.0.1.0/24"),
		prefix.MustParse("10.0.0.0/16"),
		prefix.MustParse("192.0.2.0/24"),
		prefix.MustParse("192.0.2.0/25"),
		prefix.MustParse("192.0.0.0/16"),
		prefix.MustParse("203.0.113.0/24"),
	}
	for iter := 0; iter < 2000; iter++ {
		f := Filter{MoreSpecific: rng.Intn(2) == 0, LessSpecific: rng.Intn(2) == 0}
		for n := rng.Intn(4); n > 0; n-- {
			f.Prefixes = append(f.Prefixes, pool[rng.Intn(len(pool))])
		}
		batch := make([]Event, rng.Intn(24))
		for i := range batch {
			batch[i] = Event{
				Source:       "s",
				VantagePoint: bgp.ASN(100 + rng.Intn(4)),
				Kind:         Kind(rng.Intn(2)),
				Prefix:       pool[rng.Intn(len(pool))],
				SeenAt:       time.Duration(i),
			}
		}

		var naive []Event
		for i := range batch {
			if f.Match(batch[i].Prefix) {
				naive = append(naive, batch[i])
			}
		}
		got := FilterEvents(f, batch)
		if len(got) != len(naive) {
			t.Fatalf("iter %d: %d events, naive %d (filter %+v)", iter, len(got), len(naive), f)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], naive[i]) {
				t.Fatalf("iter %d: event %d diverges:\n got  %+v\n want %+v", iter, i, got[i], naive[i])
			}
		}
		if len(naive) == len(batch) && len(batch) > 0 {
			// All-match: the contract is zero-copy — the returned slice
			// shares the batch's backing array.
			if &got[0] != &batch[0] {
				t.Fatalf("iter %d: all-match batch was copied", iter)
			}
		} else if len(got) > 0 && &got[0] == &batch[0] && len(got) != len(batch) {
			// Partial match must not alias the input: callers may append.
			t.Fatalf("iter %d: partial result aliases the input batch", iter)
		}
	}
}
