package feedtypes

import (
	"sync"
	"sync/atomic"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

// Batch is a reusable event batch: an Events slice plus a flat AS-path
// arena the events' Path fields can alias. Feeds build their per-flush
// batches in one, publish Events, and return the whole thing to a
// BatchPool — at steady state the feed→hub→pipeline path then performs
// zero allocations per batch, because both the event storage and every
// AS path live in recycled backing arrays.
//
// # Ownership
//
// A Batch obtained from BatchPool.Get is owned by the caller until it
// is released with Release (or BatchPool.Put). Releasing transfers
// ownership back to the pool: the batch, its Events slice, and every
// path obtained from NewPath/AppendPath become invalid immediately —
// the pool will hand the same backing arrays to the next Get. The
// standard lifecycle for a feed is
//
//	b := pool.Get()
//	... b.Append / b.NewPath per event ...
//	hub.Publish(b.Events)
//	b.Release()
//
// which is safe because Hub.Publish is synchronous: subscribers run
// inside Publish and must not retain the slice (see Hub). Consumers
// that need events past the callback — queues, stores, alert logs —
// must deep-copy, including the Path slices (CopyEvents does both).
type Batch struct {
	// Events is the batch under construction, in emission order.
	Events []Event
	// paths is the flat AS-path arena. Growing it can reallocate; paths
	// handed out before a growth keep pointing into the old backing
	// array, which stays valid until the batch is released.
	paths []bgp.ASN
	pool  *BatchPool
}

// Reset empties the batch for reuse, keeping its backing arrays.
func (b *Batch) Reset() {
	clearEvents(b.Events)
	b.Events = b.Events[:0]
	b.paths = b.paths[:0]
}

// Append adds ev to the batch as-is. The event's Path is aliased, not
// copied: use it when the path already lives in this batch's arena
// (NewPath/AppendPath) or when ownership of the slice transfers to the
// batch. Use AppendCopy when the source retains the path.
func (b *Batch) Append(ev Event) {
	b.Events = append(b.Events, ev)
}

// AppendCopy adds ev with its Path deep-copied into the batch's arena,
// so the caller remains free to reuse its own path storage.
func (b *Batch) AppendCopy(ev Event) {
	if len(ev.Path) > 0 {
		ev.Path = b.AppendPath(ev.Path)
	}
	b.Events = append(b.Events, ev)
}

// AppendEvents bulk-appends evs with every Path deep-copied into the
// arena — the "take a snapshot of a published batch" operation for
// consumers that queue events past the publisher's callback.
func (b *Batch) AppendEvents(evs []Event) {
	for i := range evs {
		b.AppendCopy(evs[i])
	}
}

// NewPath reserves an n-element AS path in the batch's arena and
// returns it for the caller to fill. The returned slice has capacity
// exactly n: appending to it copies out of the arena instead of
// corrupting a neighboring path.
func (b *Batch) NewPath(n int) []bgp.ASN {
	start := len(b.paths)
	if start+n <= cap(b.paths) {
		b.paths = b.paths[:start+n]
	} else {
		b.paths = append(b.paths, make([]bgp.ASN, n)...)
	}
	return b.paths[start : start+n : start+n]
}

// AppendPath copies path into the arena and returns the arena-backed
// copy.
func (b *Batch) AppendPath(path []bgp.ASN) []bgp.ASN {
	p := b.NewPath(len(path))
	copy(p, path)
	return p
}

// Release returns the batch to the pool it came from (a no-op for a
// batch not obtained from a pool). The batch and everything it handed
// out become invalid; see the Batch ownership contract.
func (b *Batch) Release() {
	if b.pool != nil {
		b.pool.Put(b)
	}
}

// BatchPool recycles Batches through a sync.Pool so the steady-state
// event path performs no per-batch allocations: after a warmup in which
// Events slices and path arenas grow to the workload's high-water mark,
// Get and Put just move pointers.
//
// The pool is safe for concurrent use. The zero value is ready to use.
type BatchPool struct {
	pool sync.Pool

	// poison, when set, makes Put overwrite released storage with
	// sentinel values. See SetPoison.
	poison atomic.Bool
}

// NewBatchPool returns an empty pool.
func NewBatchPool() *BatchPool { return &BatchPool{} }

// Get returns an empty batch owned by the caller. The batch's backing
// arrays are recycled from previously released batches when available.
func (p *BatchPool) Get() *Batch {
	if b, ok := p.pool.Get().(*Batch); ok && b != nil {
		return b
	}
	return &Batch{pool: p}
}

// Put releases b back to the pool. The caller must not touch b, its
// Events, or any arena path after Put returns. Put(nil) is a no-op.
func (p *BatchPool) Put(b *Batch) {
	if b == nil {
		return
	}
	b.Reset()
	if p.poison.Load() {
		poisonEvents(b.Events[:cap(b.Events)])
		arena := b.paths[:cap(b.paths)]
		for i := range arena {
			arena[i] = PoisonASN
		}
	}
	b.pool = p
	p.pool.Put(b)
}

// SetPoison toggles poisoning: when enabled, every released batch's
// storage — the full capacity of its Events slice and path arena — is
// overwritten with sentinel values (prefix PoisonPrefix, AS paths of
// PoisonASN) before recycling. A consumer that illegally retained a
// released batch then observes the sentinels instead of silently
// reading stale (or worse, plausibly fresh) data. Tests enable it to
// turn use-after-release bugs into deterministic failures; production
// pools leave it off.
func (p *BatchPool) SetPoison(on bool) { p.poison.Store(on) }

// PoisonASN is the sentinel AS number poisoning writes into released
// path arenas.
const PoisonASN = bgp.ASN(0xDEADA5A5)

// PoisonPrefix is the sentinel prefix poisoning writes into released
// events.
var PoisonPrefix = prefix.MustParse("192.0.2.0/32")

// poisonEvents overwrites evs with recognizable garbage.
func poisonEvents(evs []Event) {
	for i := range evs {
		evs[i] = Event{
			Source:       "poisoned",
			Collector:    "poisoned",
			VantagePoint: bgp.ASN(PoisonASN),
			Kind:         Announce,
			Prefix:       PoisonPrefix,
			SeenAt:       -1,
			EmittedAt:    -1,
		}
	}
}

// clearEvents zeroes evs so a pooled batch does not pin path slices,
// source strings, or anything else its previous user referenced.
func clearEvents(evs []Event) {
	for i := range evs {
		evs[i] = Event{}
	}
}

// CopyEvents deep-copies a published batch — events and their Path
// slices — into a caller-owned slice, reusing dst's backing array when
// it is large enough. It is the escape hatch for consumers that must
// retain events past a publisher's callback without taking a pooled
// batch of their own.
func CopyEvents(dst, src []Event) []Event {
	dst = append(dst[:0], src...)
	for i := range dst {
		if len(dst[i].Path) > 0 {
			dst[i].Path = append([]bgp.ASN(nil), dst[i].Path...)
		}
	}
	return dst
}
