package feedtypes

import (
	"testing"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

func poolEvent(p string, path ...bgp.ASN) Event {
	return Event{
		Source: "test", Collector: "c0", VantagePoint: 100,
		Kind: Announce, Prefix: prefix.MustParse(p), Path: path,
	}
}

// TestBatchArenaPaths verifies NewPath/AppendPath hand out arena-backed
// slices that survive arena growth and never alias each other.
func TestBatchArenaPaths(t *testing.T) {
	pool := NewBatchPool()
	b := pool.Get()

	p1 := b.NewPath(3)
	copy(p1, []bgp.ASN{1, 2, 3})
	b.Append(Event{Prefix: prefix.MustParse("10.0.0.0/24"), Kind: Announce, Path: p1})

	// Force arena growth: earlier paths must keep their values.
	for i := 0; i < 100; i++ {
		p := b.NewPath(7)
		for j := range p {
			p[j] = bgp.ASN(1000 + i)
		}
	}
	if p1[0] != 1 || p1[1] != 2 || p1[2] != 3 {
		t.Fatalf("path corrupted by arena growth: %v", p1)
	}

	// Full-capacity cap: appending to an arena path must not clobber the
	// next path.
	a := b.AppendPath([]bgp.ASN{10, 20})
	next := b.AppendPath([]bgp.ASN{30, 40})
	_ = append(a, 99) // would overwrite next[0] without the 3-index cap
	if next[0] != 30 {
		t.Fatalf("appending to one arena path clobbered its neighbor: %v", next)
	}
}

// TestBatchAppendCopy verifies the deep-copy append detaches from the
// caller's storage.
func TestBatchAppendCopy(t *testing.T) {
	pool := NewBatchPool()
	b := pool.Get()
	src := []bgp.ASN{100, 200, 300}
	b.AppendCopy(poolEvent("10.0.0.0/24", src...))
	src[0] = 999
	if got := b.Events[0].Path[0]; got != 100 {
		t.Fatalf("AppendCopy aliased the caller's path: got %d", got)
	}
}

// TestPoolRecycles verifies Get after Put reuses the backing arrays
// (the whole point) and that the recycled batch arrives empty.
func TestPoolRecycles(t *testing.T) {
	pool := NewBatchPool()
	b := pool.Get()
	b.AppendCopy(poolEvent("10.0.0.0/24", 1, 2, 3))
	evCap, pathCap := cap(b.Events), cap(b.paths)
	b.Release()

	b2 := pool.Get()
	if len(b2.Events) != 0 || len(b2.paths) != 0 {
		t.Fatalf("recycled batch not empty: %d events, %d arena", len(b2.Events), len(b2.paths))
	}
	if cap(b2.Events) != evCap || cap(b2.paths) != pathCap {
		t.Fatalf("recycled batch lost its backing arrays: ev %d→%d, arena %d→%d",
			evCap, cap(b2.Events), pathCap, cap(b2.paths))
	}
}

// TestPoisonMarksReleasedStorage verifies the poison knob overwrites a
// released batch's storage so an illegal retainer sees sentinels.
func TestPoisonMarksReleasedStorage(t *testing.T) {
	pool := NewBatchPool()
	pool.SetPoison(true)
	b := pool.Get()
	b.AppendCopy(poolEvent("10.0.0.0/24", 1, 2, 3))

	retainedEvents := b.Events // illegal: retained past Release
	retainedPath := b.Events[0].Path
	b.Release()

	if retainedEvents[0].Source != "poisoned" || retainedEvents[0].Prefix != PoisonPrefix {
		t.Fatalf("released event not poisoned: %+v", retainedEvents[0])
	}
	for i, as := range retainedPath {
		if as != PoisonASN {
			t.Fatalf("released arena path element %d not poisoned: %d", i, as)
		}
	}
}

// TestCopyEvents verifies the retain-past-callback escape hatch
// deep-copies paths.
func TestCopyEvents(t *testing.T) {
	pool := NewBatchPool()
	pool.SetPoison(true)
	b := pool.Get()
	b.AppendCopy(poolEvent("10.0.0.0/24", 7, 8, 9))
	b.AppendCopy(poolEvent("10.0.1.0/24"))

	snap := CopyEvents(nil, b.Events)
	b.Release()

	if snap[0].Path[0] != 7 || snap[0].Path[2] != 9 {
		t.Fatalf("CopyEvents did not detach paths: %v", snap[0].Path)
	}
	if snap[1].Prefix != prefix.MustParse("10.0.1.0/24") {
		t.Fatalf("CopyEvents lost event fields: %+v", snap[1])
	}
}

// TestPublishThenReleaseSafe is the lifecycle test: a feed publishing
// through a hub and immediately releasing must deliver intact events to
// a subscriber that copies, even with poisoning on.
func TestPublishThenReleaseSafe(t *testing.T) {
	pool := NewBatchPool()
	pool.SetPoison(true)
	hub := NewHub()

	var got []Event
	hub.SubscribeBatch(Filter{}, func(batch []Event) {
		got = CopyEvents(got, batch) // the legal way to retain
	})

	for round := 0; round < 3; round++ {
		b := pool.Get()
		ev := poolEvent("10.0.0.0/24", 1, 2, 3)
		b.AppendCopy(ev)
		hub.Publish(b.Events)
		b.Release()

		if len(got) != 1 || got[0].Prefix != ev.Prefix || got[0].Path[2] != 3 {
			t.Fatalf("round %d: subscriber copy corrupted: %+v", round, got)
		}
	}
}
