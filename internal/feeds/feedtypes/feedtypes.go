// Package feedtypes defines the route-event schema shared by every
// monitoring source in the reproduction (RIS-style streaming, BGPmon-style
// XML, Periscope-style looking glasses, and MRT archive dumps), together
// with the prefix filter used for subscriptions.
//
// ARTEMIS's detection latency is "the min of the delays of these sources"
// (§2): every source reduces to this one event type, each stamped with both
// when the route change happened at the vantage point and when the source
// actually made it visible to clients. The difference is the source's
// contribution to detection delay.
//
// # Batch ownership and pooling
//
// Events travel in batches, and batches are pooled: feeds build each
// flush in a Batch from a BatchPool (event storage plus a flat AS-path
// arena), publish it through a Hub, and release it immediately after —
// so the steady-state event path allocates nothing per batch. The
// ownership rule every consumer must follow: a published batch and its
// events' Path slices are valid only for the duration of the
// subscriber callback. Retaining events past the callback requires a
// deep copy — CopyEvents, or Batch.AppendEvents into a pooled batch of
// the consumer's own. BatchPool.SetPoison turns violations of this
// rule into deterministic test failures. See docs/PERFORMANCE.md for
// the full contract and the measured effect.
package feedtypes

import (
	"fmt"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

// Kind distinguishes announcements from withdrawals.
type Kind uint8

const (
	// Announce is a (new or changed) route advertisement.
	Announce Kind = iota
	// Withdraw is a route removal.
	Withdraw
)

func (k Kind) String() string {
	if k == Withdraw {
		return "withdrawal"
	}
	return "announcement"
}

// Event is one observed routing change at a vantage point.
type Event struct {
	// Source identifies the monitoring system ("ris", "bgpmon",
	// "periscope", "dumps").
	Source string
	// Collector names the collector or looking glass within the source.
	Collector string
	// VantagePoint is the AS whose routing view produced the event.
	VantagePoint bgp.ASN
	// Kind is announcement or withdrawal.
	Kind Kind
	// Prefix is the affected prefix.
	Prefix prefix.Prefix
	// Path is the AS path as advertised by the vantage point
	// (Path[0] == VantagePoint, last element is the origin). Empty for
	// withdrawals.
	Path []bgp.ASN
	// SeenAt is the simulation time the vantage point's route changed.
	SeenAt time.Duration
	// EmittedAt is the simulation time the source delivered the event to
	// subscribers; EmittedAt - SeenAt is the source's pipeline latency.
	EmittedAt time.Duration
}

// Origin returns the origin AS of an announcement.
func (e *Event) Origin() (bgp.ASN, bool) {
	if e.Kind != Announce || len(e.Path) == 0 {
		return 0, false
	}
	return e.Path[len(e.Path)-1], true
}

func (e *Event) String() string {
	return fmt.Sprintf("[%s/%s vp=%d] %s %s path=%v at %v",
		e.Source, e.Collector, uint32(e.VantagePoint), e.Kind, e.Prefix, e.Path, e.EmittedAt)
}

// Filter selects the prefixes a subscriber cares about, mirroring the
// prefix filters of RIS Live: exact matches plus optionally more-specific
// (sub-prefix hijacks!) and less-specific (super-prefix squatting)
// announcements.
type Filter struct {
	// Prefixes to watch. Empty means match everything.
	Prefixes []prefix.Prefix
	// MoreSpecific also matches prefixes contained in a watched prefix.
	MoreSpecific bool
	// LessSpecific also matches prefixes containing a watched prefix.
	LessSpecific bool
}

// MatchAll reports whether the filter matches every prefix.
func (f Filter) MatchAll() bool { return len(f.Prefixes) == 0 }

// Match reports whether p passes the filter.
func (f Filter) Match(p prefix.Prefix) bool {
	if f.MatchAll() {
		return true
	}
	for _, w := range f.Prefixes {
		if w == p {
			return true
		}
		if f.MoreSpecific && w.Contains(p) {
			return true
		}
		if f.LessSpecific && p.Contains(w) {
			return true
		}
	}
	return false
}

// Source is a monitoring feed that can be subscribed to in-process. The
// returned cancel function detaches the subscriber.
type Source interface {
	Name() string
	Subscribe(f Filter, fn func(Event)) (cancel func())
}
