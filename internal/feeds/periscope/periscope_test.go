package periscope

import (
	"net/http/httptest"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
	"artemis/internal/sim"
	"artemis/internal/simnet"
	"artemis/internal/topo"
)

func setup(t *testing.T) (*simnet.Network, *sim.Engine) {
	t.Helper()
	tp := topo.Line(4, 10*time.Millisecond)
	eng := sim.NewEngine(1)
	nw := simnet.New(tp, eng, simnet.Config{MRAI: simnet.Disabled, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond})
	return nw, eng
}

func TestLookingGlassQuery(t *testing.T) {
	nw, eng := setup(t)
	p := prefix.MustParse("10.0.0.0/23")
	nw.Announce(topo.FirstASN, p)
	eng.Run()
	lg, err := NewLookingGlass(nw, topo.FirstASN+3)
	if err != nil {
		t.Fatal(err)
	}
	answers := lg.Query(p)
	if len(answers) != 1 {
		t.Fatalf("answers = %+v", answers)
	}
	if answers[0].Origin != topo.FirstASN || answers[0].Path[0] != lg.ASN {
		t.Fatalf("answer = %+v", answers[0])
	}
}

func TestLookingGlassSeesSubPrefix(t *testing.T) {
	nw, eng := setup(t)
	owned := prefix.MustParse("10.0.0.0/23")
	nw.Announce(topo.FirstASN, owned)
	nw.Announce(topo.FirstASN+2, prefix.MustParse("10.0.0.0/24")) // sub-prefix hijack
	eng.Run()
	lg, _ := NewLookingGlass(nw, topo.FirstASN+3)
	answers := lg.Query(owned)
	if len(answers) != 2 {
		t.Fatalf("want /23 and hijacked /24, got %+v", answers)
	}
	if answers[0].Prefix != owned || answers[1].Prefix.String() != "10.0.0.0/24" {
		t.Fatalf("answers = %+v", answers)
	}
	if answers[1].Origin != topo.FirstASN+2 {
		t.Fatalf("hijacked origin = %v", answers[1].Origin)
	}
}

func TestUnknownLGRejected(t *testing.T) {
	nw, _ := setup(t)
	if _, err := NewLookingGlass(nw, 9999); err == nil {
		t.Fatal("unknown AS accepted")
	}
	if _, err := New(nw, Config{LGs: []bgp.ASN{9999}}); err == nil {
		t.Fatal("service with unknown LG accepted")
	}
}

func TestPollingDetectsChange(t *testing.T) {
	nw, eng := setup(t)
	owned := prefix.MustParse("10.0.0.0/23")
	svc, err := New(nw, Config{
		LGs:          []bgp.ASN{topo.FirstASN + 3},
		Prefixes:     []prefix.Prefix{owned},
		PollInterval: 30 * time.Second,
		RTTMin:       time.Second, RTTMax: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var events []feedtypes.Event
	svc.Subscribe(feedtypes.Filter{}, func(ev feedtypes.Event) { events = append(events, ev) })

	nw.Announce(topo.FirstASN, owned)
	eng.RunUntil(40 * time.Second) // first poll at t=0 sees nothing; poll at 30s sees the route
	if len(events) != 1 {
		t.Fatalf("events = %+v", events)
	}
	ev := events[0]
	if ev.Source != SourceName || ev.Kind != feedtypes.Announce || ev.Prefix != owned {
		t.Fatalf("event = %+v", ev)
	}
	if ev.EmittedAt-ev.SeenAt != time.Second {
		t.Fatalf("RTT lag = %v", ev.EmittedAt-ev.SeenAt)
	}

	// Hijack changes the origin; next poll must emit exactly one change.
	nw.Announce(topo.FirstASN+2, owned)
	eng.RunUntil(100 * time.Second)
	if len(events) != 2 {
		t.Fatalf("after hijack events = %d", len(events))
	}
	if o, _ := events[1].Origin(); o != topo.FirstASN+2 {
		t.Fatalf("hijack origin = %v", o)
	}
	svc.Stop()
}

func TestPollingEmitsWithdrawalWhenAnswerDisappears(t *testing.T) {
	nw, eng := setup(t)
	owned := prefix.MustParse("10.0.0.0/23")
	svc, _ := New(nw, Config{
		LGs:          []bgp.ASN{topo.FirstASN + 3},
		Prefixes:     []prefix.Prefix{owned},
		PollInterval: 30 * time.Second,
		RTTMin:       time.Second, RTTMax: time.Second,
	})
	var events []feedtypes.Event
	svc.Subscribe(feedtypes.Filter{}, func(ev feedtypes.Event) { events = append(events, ev) })
	nw.Announce(topo.FirstASN, owned)
	eng.RunUntil(40 * time.Second)
	nw.Withdraw(topo.FirstASN, owned)
	eng.RunUntil(100 * time.Second)
	svc.Stop()
	if len(events) != 2 {
		t.Fatalf("events = %+v", events)
	}
	if events[1].Kind != feedtypes.Withdraw || events[1].Prefix != owned {
		t.Fatalf("second event = %+v", events[1])
	}
}

func TestStaggerSpreadsPolls(t *testing.T) {
	nw, eng := setup(t)
	owned := prefix.MustParse("10.0.0.0/23")
	nw.Announce(topo.FirstASN, owned)
	eng.Run()
	base := eng.Now()
	svc, _ := New(nw, Config{
		LGs:          []bgp.ASN{topo.FirstASN + 1, topo.FirstASN + 2, topo.FirstASN + 3},
		Prefixes:     []prefix.Prefix{owned},
		PollInterval: 90 * time.Second,
		RTTMin:       time.Millisecond, RTTMax: time.Millisecond,
	})
	var first []time.Duration
	svc.Subscribe(feedtypes.Filter{}, func(ev feedtypes.Event) { first = append(first, ev.SeenAt-base) })
	eng.RunUntil(base + 91*time.Second)
	svc.Stop()
	if len(first) != 3 {
		t.Fatalf("events = %v", first)
	}
	// Staggered at 0s, 30s, 60s after service start.
	for i, want := range []time.Duration{0, 30 * time.Second, 60 * time.Second} {
		if first[i] != want {
			t.Fatalf("poll times = %v", first)
		}
	}
}

func TestQueriesCountedAsOverhead(t *testing.T) {
	nw, eng := setup(t)
	svc, _ := New(nw, Config{
		LGs:          []bgp.ASN{topo.FirstASN + 2, topo.FirstASN + 3},
		Prefixes:     []prefix.Prefix{prefix.MustParse("10.0.0.0/23"), prefix.MustParse("192.0.2.0/24")},
		PollInterval: 60 * time.Second,
		NoStagger:    true,
		RTTMin:       time.Millisecond, RTTMax: time.Millisecond,
	})
	eng.RunUntil(121 * time.Second) // polls at 0, 60, 120 → 3 polls x 2 LGs x 2 prefixes
	svc.Stop()
	if got := svc.Queries(); got != 12 {
		t.Fatalf("Queries = %d, want 12", got)
	}
}

func TestHTTPServerEndToEnd(t *testing.T) {
	nw, eng := setup(t)
	owned := prefix.MustParse("10.0.0.0/23")
	nw.Announce(topo.FirstASN, owned)
	eng.Run()

	srv, err := NewServer(nw, []bgp.ASN{topo.FirstASN + 3})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	// The HTTP query path schedules onto the engine; give it a consumer.
	done := make(chan struct{})
	go func() {
		defer close(done)
		eng.RunPaced(1e6, 0, 300*time.Millisecond)
	}()

	ids, err := HTTPListLGs(hs.URL)
	if err != nil || len(ids) != 1 {
		t.Fatalf("ids=%v err=%v", ids, err)
	}
	routes, err := HTTPQuery(hs.URL, ids[0], owned)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 1 || routes[0].Origin != topo.FirstASN {
		t.Fatalf("routes = %+v", routes)
	}
	// Bad inputs.
	if _, err := HTTPQuery(hs.URL, "lg-none", owned); err == nil {
		t.Fatal("unknown LG id accepted over HTTP")
	}
	<-done
}
