package periscope

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
	"artemis/internal/simnet"
)

// Server exposes looking glasses over HTTP, Periscope-API style:
//
//	GET /lg                     → JSON list of LG ids
//	GET /lg/query?id=lg-1001&prefix=10.0.0.0/23 → JSON []LGRoute
//
// Queries executed over HTTP are serialized through the simulation engine
// (an LG reads live router state, which only the engine goroutine may
// touch), so the server is safe to use while the simulation runs paced.
type Server struct {
	nw  *simnet.Network
	lgs map[string]*LookingGlass
}

// NewServer registers an LG for each given AS.
func NewServer(nw *simnet.Network, asns []bgp.ASN) (*Server, error) {
	s := &Server{nw: nw, lgs: make(map[string]*LookingGlass)}
	for _, asn := range asns {
		lg, err := NewLookingGlass(nw, asn)
		if err != nil {
			return nil, err
		}
		s.lgs[lg.ID] = lg
	}
	return s, nil
}

type wireRoute struct {
	Prefix string   `json:"prefix"`
	Path   []uint32 `json:"path"`
	Origin uint32   `json:"origin"`
}

// ServeHTTP implements the two endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/lg":
		ids := make([]string, 0, len(s.lgs))
		for id := range s.lgs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		writeJSON(w, ids)
	case "/lg/query":
		s.handleQuery(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	lg, ok := s.lgs[r.URL.Query().Get("id")]
	if !ok {
		http.Error(w, "unknown looking glass", http.StatusNotFound)
		return
	}
	p, err := prefix.Parse(r.URL.Query().Get("prefix"))
	if err != nil {
		http.Error(w, "bad prefix", http.StatusBadRequest)
		return
	}
	// Run the query inside the engine so it cannot race router state.
	resCh := make(chan []LGRoute, 1)
	s.nw.Engine.After(0, func() { resCh <- lg.Query(p) })
	var answers []LGRoute
	select {
	case answers = <-resCh:
	case <-time.After(5 * time.Second):
		http.Error(w, "simulation not running", http.StatusServiceUnavailable)
		return
	}
	out := make([]wireRoute, 0, len(answers))
	for _, a := range answers {
		wr := wireRoute{Prefix: a.Prefix.String(), Origin: uint32(a.Origin)}
		for _, asn := range a.Path {
			wr.Path = append(wr.Path, uint32(asn))
		}
		out = append(out, wr)
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// HTTPQuery performs one LG query against a Server base URL; it is the
// client half used by the live daemon.
func HTTPQuery(baseURL, lgID string, p prefix.Prefix) ([]LGRoute, error) {
	resp, err := http.Get(fmt.Sprintf("%s/lg/query?id=%s&prefix=%s", baseURL, lgID, p))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("periscope: query %s: HTTP %d", lgID, resp.StatusCode)
	}
	var wires []wireRoute
	if err := json.NewDecoder(resp.Body).Decode(&wires); err != nil {
		return nil, err
	}
	out := make([]LGRoute, 0, len(wires))
	for _, wr := range wires {
		pp, err := prefix.Parse(wr.Prefix)
		if err != nil {
			return nil, err
		}
		route := LGRoute{Prefix: pp, Origin: bgp.ASN(wr.Origin)}
		for _, asn := range wr.Path {
			route.Path = append(route.Path, bgp.ASN(asn))
		}
		out = append(out, route)
	}
	return out, nil
}

// HTTPListLGs fetches the LG inventory from a Server.
func HTTPListLGs(baseURL string) ([]string, error) {
	resp, err := http.Get(baseURL + "/lg")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var ids []string
	if err := json.NewDecoder(resp.Body).Decode(&ids); err != nil {
		return nil, err
	}
	return ids, nil
}
