// Package periscope reproduces a Periscope-style looking-glass
// infrastructure: per-AS looking glasses that answer "show ip bgp
// <prefix> longer-prefixes" queries from the router's live table, plus an
// aggregation client that polls a selected arsenal of LGs on a schedule,
// respecting per-LG rate limits, and turns answer changes into feed events.
//
// Unlike the streaming feeds, a looking glass has no pipeline latency —
// it reads an operational router directly (the paper's motivation for
// using LGs, §1) — but it only *sees* anything when polled, so its delay
// profile is the polling schedule. Experiment E3 sweeps the arsenal size
// and selection strategy to reproduce the paper's monitoring-overhead vs
// detection-speed trade-off.
package periscope

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
	"artemis/internal/route"
	"artemis/internal/simnet"
)

// SourceName identifies this feed in events.
const SourceName = "periscope"

// LGRoute is one looking-glass answer row.
type LGRoute struct {
	Prefix prefix.Prefix `json:"prefix"`
	Path   []bgp.ASN     `json:"path"`
	Origin bgp.ASN       `json:"origin"`
}

// LookingGlass answers queries from one AS's routing table.
type LookingGlass struct {
	ID   string
	ASN  bgp.ASN
	node *simnet.Node
}

// NewLookingGlass attaches an LG to an AS in the network.
func NewLookingGlass(nw *simnet.Network, asn bgp.ASN) (*LookingGlass, error) {
	node := nw.Node(asn)
	if node == nil {
		return nil, fmt.Errorf("periscope: unknown AS %v", asn)
	}
	return &LookingGlass{ID: fmt.Sprintf("lg-%d", uint32(asn)), ASN: asn, node: node}, nil
}

// Query returns the LPM route for p plus all more-specific routes, as the
// AS currently selects them. It must run in the simulation goroutine.
func (lg *LookingGlass) Query(p prefix.Prefix) []LGRoute {
	var out []LGRoute
	seen := map[string]bool{}
	add := func(rp prefix.Prefix, path []bgp.ASN, origin bgp.ASN) {
		key := rp.String()
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, LGRoute{Prefix: rp, Path: append([]bgp.ASN{lg.ASN}, path...), Origin: origin})
	}
	if r, ok := lg.node.Table().ResolveBestFor(p); ok {
		add(r.Prefix, r.Path, r.Origin(lg.ASN))
	}
	lg.node.Table().WalkCovered(p, func(r *route.Route) bool {
		add(r.Prefix, r.Path, r.Origin(lg.ASN))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

// Config tunes the aggregation client.
type Config struct {
	// LGs is the arsenal (vantage ASes to poll).
	LGs []bgp.ASN
	// Prefixes is the watch list queried at each poll.
	Prefixes []prefix.Prefix
	// PollInterval is the per-LG poll period (the Periscope rate limit).
	// Default 3 minutes.
	PollInterval time.Duration
	// Stagger spreads first polls evenly across the interval (default on;
	// NoStagger aligns them, the worst case).
	NoStagger bool
	// RTTMin/RTTMax bound the query round-trip (default 200ms-2s).
	RTTMin, RTTMax time.Duration
}

func (c Config) withDefaults() Config {
	if c.PollInterval == 0 {
		c.PollInterval = 3 * time.Minute
	}
	if c.RTTMin == 0 && c.RTTMax == 0 {
		c.RTTMin, c.RTTMax = 200*time.Millisecond, 2*time.Second
	}
	if c.RTTMax < c.RTTMin {
		c.RTTMax = c.RTTMin
	}
	return c
}

// Service polls the arsenal and publishes answer changes as events.
type Service struct {
	nw  *simnet.Network
	cfg Config
	lgs []*LookingGlass
	hub *feedtypes.Hub
	// pool recycles the per-round publish batches: each poll round that
	// observed changes carries them in a pooled batch (paths copied into
	// its arena) through the RTT delay and releases it after the publish.
	pool *feedtypes.BatchPool

	mu      sync.Mutex
	stopped bool

	// last answer per (lg, watched prefix, answered prefix) to detect change
	state map[string]string

	queries int
}

// New builds the service and schedules the polling loops.
func New(nw *simnet.Network, cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	svc := &Service{
		nw: nw, cfg: cfg, hub: feedtypes.NewHub(),
		pool: feedtypes.NewBatchPool(), state: make(map[string]string),
	}
	for _, asn := range cfg.LGs {
		lg, err := NewLookingGlass(nw, asn)
		if err != nil {
			return nil, err
		}
		svc.lgs = append(svc.lgs, lg)
	}
	for i, lg := range svc.lgs {
		offset := time.Duration(0)
		if !cfg.NoStagger && len(svc.lgs) > 0 {
			offset = time.Duration(i) * cfg.PollInterval / time.Duration(len(svc.lgs))
		}
		lg := lg
		nw.Engine.After(offset, func() { svc.poll(lg) })
	}
	return svc, nil
}

// Name implements feedtypes.Source.
func (s *Service) Name() string { return SourceName }

// Stop ceases polling (pending events still drain).
func (s *Service) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
}

// Queries returns the total number of LG queries issued — the monitoring
// overhead measure of experiment E3.
func (s *Service) Queries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// Subscribe registers fn for events matching f.
func (s *Service) Subscribe(f feedtypes.Filter, fn func(feedtypes.Event)) (cancel func()) {
	return s.hub.Subscribe(f, fn)
}

// SubscribeBatch registers fn for whole poll rounds: each LG poll that
// observed changes yields one delivery.
func (s *Service) SubscribeBatch(f feedtypes.Filter, fn func([]feedtypes.Event)) (cancel func()) {
	return s.hub.SubscribeBatch(f, fn)
}

func (s *Service) poll(lg *LookingGlass) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.queries += len(s.cfg.Prefixes)
	s.mu.Unlock()

	now := s.nw.Engine.Now()
	rtt := s.cfg.RTTMin
	if s.cfg.RTTMax > s.cfg.RTTMin {
		rtt += time.Duration(s.nw.Engine.Rand().Int63n(int64(s.cfg.RTTMax - s.cfg.RTTMin)))
	}
	changed := s.pool.Get()
	for _, watched := range s.cfg.Prefixes {
		answers := lg.Query(watched)
		current := map[string]bool{}
		for _, a := range answers {
			key := lg.ID + "|" + watched.String() + "|" + a.Prefix.String()
			current[key] = true
			sig := pathSig(a.Path)
			if s.state[key] == sig {
				continue
			}
			s.state[key] = sig
			changed.AppendCopy(feedtypes.Event{
				Source:       SourceName,
				Collector:    lg.ID,
				VantagePoint: lg.ASN,
				Kind:         feedtypes.Announce,
				Prefix:       a.Prefix,
				Path:         a.Path,
				SeenAt:       now,
			})
		}
		// Answers that disappeared become withdrawals.
		pfx := lg.ID + "|" + watched.String() + "|"
		for key := range s.state {
			if len(key) > len(pfx) && key[:len(pfx)] == pfx && !current[key] {
				delete(s.state, key)
				p, err := prefix.Parse(key[len(pfx):])
				if err != nil {
					continue
				}
				changed.Append(feedtypes.Event{
					Source:       SourceName,
					Collector:    lg.ID,
					VantagePoint: lg.ASN,
					Kind:         feedtypes.Withdraw,
					Prefix:       p,
					SeenAt:       now,
				})
			}
		}
	}
	if len(changed.Events) > 0 {
		s.nw.Engine.After(rtt, func() {
			at := s.nw.Engine.Now()
			for i := range changed.Events {
				changed.Events[i].EmittedAt = at
			}
			s.hub.Publish(changed.Events)
			changed.Release()
		})
	} else {
		changed.Release()
	}
	s.nw.Engine.After(s.cfg.PollInterval, func() { s.poll(lg) })
}

func pathSig(path []bgp.ASN) string {
	sig := make([]byte, 0, len(path)*5)
	for _, a := range path {
		sig = append(sig, byte(a>>24), byte(a>>16), byte(a>>8), byte(a), '.')
	}
	return string(sig)
}

var (
	_ feedtypes.Source      = (*Service)(nil)
	_ feedtypes.BatchSource = (*Service)(nil)
)
