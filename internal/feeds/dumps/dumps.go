// Package dumps reproduces the RouteViews/RIS *archive* pipeline the paper
// contrasts ARTEMIS against (§1): full RIB snapshots every 2 hours and
// update files every 15 minutes, published as MRT (RFC 6396) files. A
// third-party alert system consuming these archives cannot see a hijack
// until the next file lands — that staleness, plus the operator's manual
// verification, is the baseline of experiment E5.
package dumps

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/bgp/mrt"
	"artemis/internal/prefix"
	"artemis/internal/route"
	"artemis/internal/simnet"
)

// SourceName identifies this feed.
const SourceName = "dumps"

// Config tunes the archive cadence.
type Config struct {
	// Collector names the archive ("rv0").
	Collector string
	// Peers are the vantage-point ASes whose sessions feed the archive.
	Peers []bgp.ASN
	// RIBInterval is the full-table snapshot period (default 2h, §1).
	RIBInterval time.Duration
	// UpdateInterval is the update-file period (default 15m, §1).
	UpdateInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Collector == "" {
		c.Collector = "rv0"
	}
	if c.RIBInterval == 0 {
		c.RIBInterval = 2 * time.Hour
	}
	if c.UpdateInterval == 0 {
		c.UpdateInterval = 15 * time.Minute
	}
	return c
}

// File is one published archive file.
type File struct {
	Name        string
	PublishedAt time.Duration
	Data        []byte
}

// Archive accumulates VP events and periodically publishes MRT files.
type Archive struct {
	nw  *simnet.Network
	cfg Config

	mu      sync.Mutex
	files   []File
	hooks   []func(File)
	stopped bool

	pending []pendingUpdate
}

type pendingUpdate struct {
	vp  bgp.ASN
	at  time.Duration
	msg *bgp.Update
}

// New attaches the archive to the network and schedules publications.
func New(nw *simnet.Network, cfg Config) *Archive {
	cfg = cfg.withDefaults()
	a := &Archive{nw: nw, cfg: cfg}
	for _, asn := range cfg.Peers {
		node := nw.Node(asn)
		if node == nil {
			continue
		}
		vp := asn
		node.OnChange(func(ev simnet.RouteChange) { a.observe(vp, ev) })
	}
	nw.Engine.After(cfg.UpdateInterval, a.publishUpdates)
	nw.Engine.After(cfg.RIBInterval, a.publishRIB)
	return a
}

// Stop ceases future publications.
func (a *Archive) Stop() {
	a.mu.Lock()
	a.stopped = true
	a.mu.Unlock()
}

// OnPublish registers a hook invoked (in the engine goroutine) whenever a
// file is published. The baseline detector attaches here.
func (a *Archive) OnPublish(fn func(File)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.hooks = append(a.hooks, fn)
}

// Files lists everything published so far, in publication order.
func (a *Archive) Files() []File {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]File(nil), a.files...)
}

// Get returns a file's bytes by name.
func (a *Archive) Get(name string) ([]byte, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, f := range a.files {
		if f.Name == name {
			return f.Data, true
		}
	}
	return nil, false
}

func (a *Archive) observe(vp bgp.ASN, ev simnet.RouteChange) {
	u := &bgp.Update{}
	if ev.New != nil {
		path := append([]bgp.ASN{vp}, ev.New.Path...)
		u.Attrs = []bgp.PathAttr{
			&bgp.OriginAttr{Value: bgp.OriginIGP},
			bgp.NewASPath(path),
			&bgp.NextHopAttr{Addr: prefix.AddrFrom4(uint32(vp))},
		}
		u.NLRI = []prefix.Prefix{ev.Prefix}
	} else {
		u.Withdrawn = []prefix.Prefix{ev.Prefix}
	}
	a.pending = append(a.pending, pendingUpdate{vp: vp, at: a.nw.Engine.Now(), msg: u})
}

func (a *Archive) publishUpdates() {
	a.mu.Lock()
	stopped := a.stopped
	a.mu.Unlock()
	if stopped {
		return
	}
	now := a.nw.Engine.Now()
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	for _, p := range a.pending {
		rec := &mrt.BGP4MPMessage{
			Timestamp: simEpoch.Add(p.at),
			PeerAS:    p.vp,
			LocalAS:   0,
			PeerIP:    prefix.AddrFrom4(uint32(p.vp)),
			Message:   p.msg,
		}
		if err := w.Write(rec); err != nil {
			// Encoding our own records cannot fail with valid inputs;
			// surface loudly in development.
			panic(fmt.Sprintf("dumps: encode update record: %v", err))
		}
	}
	a.pending = nil
	a.publish(File{
		Name:        fmt.Sprintf("updates.%d.mrt", int(now.Seconds())),
		PublishedAt: now,
		Data:        append([]byte(nil), buf.Bytes()...),
	})
	a.nw.Engine.After(a.cfg.UpdateInterval, a.publishUpdates)
}

func (a *Archive) publishRIB() {
	a.mu.Lock()
	stopped := a.stopped
	a.mu.Unlock()
	if stopped {
		return
	}
	now := a.nw.Engine.Now()
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)

	pit := &mrt.PeerIndexTable{Timestamp: simEpoch.Add(now), ViewName: a.cfg.Collector}
	peerIdx := map[bgp.ASN]uint16{}
	for i, vp := range a.cfg.Peers {
		peerIdx[vp] = uint16(i)
		pit.Peers = append(pit.Peers, mrt.Peer{BGPID: prefix.AddrFrom4(uint32(vp)), IP: prefix.AddrFrom4(uint32(vp)), AS: vp})
	}
	if err := w.Write(pit); err != nil {
		panic(fmt.Sprintf("dumps: encode peer index: %v", err))
	}

	// Gather each peer's full best-route table, grouped by prefix.
	byPrefix := map[prefix.Prefix][]mrt.RIBPeerRoute{}
	var order []prefix.Prefix
	for _, vp := range a.cfg.Peers {
		node := a.nw.Node(vp)
		if node == nil {
			continue
		}
		idx := peerIdx[vp]
		node.Table().WalkBest(func(r *route.Route) bool {
			path := append([]bgp.ASN{vp}, r.Path...)
			attrs := []bgp.PathAttr{
				&bgp.OriginAttr{Value: bgp.OriginIGP},
				bgp.NewASPath(path),
				&bgp.NextHopAttr{Addr: prefix.AddrFrom4(uint32(vp))},
			}
			if _, seen := byPrefix[r.Prefix]; !seen {
				order = append(order, r.Prefix)
			}
			byPrefix[r.Prefix] = append(byPrefix[r.Prefix], mrt.RIBPeerRoute{
				PeerIndex:  idx,
				Originated: simEpoch.Add(now),
				Attrs:      attrs,
			})
			return true
		})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Compare(order[j]) < 0 })
	for seq, p := range order {
		rec := &mrt.RIBEntry{
			Timestamp: simEpoch.Add(now),
			Sequence:  uint32(seq),
			Prefix:    p,
			Routes:    byPrefix[p],
		}
		if err := w.Write(rec); err != nil {
			panic(fmt.Sprintf("dumps: encode rib entry: %v", err))
		}
	}
	a.publish(File{
		Name:        fmt.Sprintf("rib.%d.mrt", int(now.Seconds())),
		PublishedAt: now,
		Data:        append([]byte(nil), buf.Bytes()...),
	})
	a.nw.Engine.After(a.cfg.RIBInterval, a.publishRIB)
}

func (a *Archive) publish(f File) {
	a.mu.Lock()
	a.files = append(a.files, f)
	hooks := make([]func(File), len(a.hooks))
	copy(hooks, a.hooks)
	a.mu.Unlock()
	for _, fn := range hooks {
		fn(f)
	}
}

// simEpoch anchors simulation durations to MRT wall-clock timestamps.
// June 2016: the paper's SIGCOMM.
var simEpoch = time.Unix(1466000000, 0).UTC()

// SimTimeOf converts an MRT record timestamp back to simulation time.
func SimTimeOf(t time.Time) time.Duration { return t.Sub(simEpoch) }
