package dumps

import (
	"bytes"
	"io"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/bgp/mrt"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
	"artemis/internal/sim"
	"artemis/internal/simnet"
	"artemis/internal/topo"
)

func setup(t *testing.T) (*simnet.Network, *sim.Engine) {
	t.Helper()
	tp := topo.Line(4, 10*time.Millisecond)
	eng := sim.NewEngine(1)
	nw := simnet.New(tp, eng, simnet.Config{MRAI: simnet.Disabled, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond})
	return nw, eng
}

func peers() []bgp.ASN { return []bgp.ASN{topo.FirstASN + 2, topo.FirstASN + 3} }

func TestUpdateFilesPublishedOnSchedule(t *testing.T) {
	nw, eng := setup(t)
	a := New(nw, Config{Peers: peers(), UpdateInterval: 15 * time.Minute, RIBInterval: 2 * time.Hour})
	nw.Announce(topo.FirstASN, prefix.MustParse("10.0.0.0/23"))
	eng.RunUntil(46 * time.Minute)
	a.Stop()
	files := a.Files()
	if len(files) != 3 {
		t.Fatalf("files = %d, want 3 update files in 46min", len(files))
	}
	if files[0].PublishedAt != 15*time.Minute {
		t.Fatalf("first publication at %v", files[0].PublishedAt)
	}
	// First file contains the announcement, later ones are empty.
	recs := parseAll(t, files[0].Data)
	if len(recs) != 2 {
		t.Fatalf("first update file has %d records, want 2 (two VPs)", len(recs))
	}
	m := recs[0].(*mrt.BGP4MPMessage)
	u := m.Message.(*bgp.Update)
	if len(u.NLRI) != 1 || u.NLRI[0].String() != "10.0.0.0/23" {
		t.Fatalf("record NLRI = %v", u.NLRI)
	}
	if origin, _ := u.Origin(); origin != topo.FirstASN {
		t.Fatalf("origin = %v", origin)
	}
	if len(parseAll(t, files[1].Data)) != 0 {
		t.Fatal("quiet interval should publish an empty update file")
	}
}

func TestRIBSnapshotRoundTrips(t *testing.T) {
	nw, eng := setup(t)
	a := New(nw, Config{Peers: peers(), UpdateInterval: time.Hour, RIBInterval: 30 * time.Minute})
	nw.Announce(topo.FirstASN, prefix.MustParse("10.0.0.0/23"))
	nw.Announce(topo.FirstASN+1, prefix.MustParse("192.0.2.0/24"))
	eng.RunUntil(31 * time.Minute)
	a.Stop()
	var rib File
	for _, f := range a.Files() {
		if f.Name[:3] == "rib" {
			rib = f
		}
	}
	if rib.Name == "" {
		t.Fatal("no RIB snapshot published")
	}
	recs := parseAll(t, rib.Data)
	pit, ok := recs[0].(*mrt.PeerIndexTable)
	if !ok || len(pit.Peers) != 2 {
		t.Fatalf("first record should be the peer index: %+v", recs[0])
	}
	entries := 0
	for _, r := range recs[1:] {
		e, ok := r.(*mrt.RIBEntry)
		if !ok {
			t.Fatalf("unexpected record %T", r)
		}
		if len(e.Routes) != 2 {
			t.Fatalf("RIB entry %s has %d peer routes, want 2", e.Prefix, len(e.Routes))
		}
		entries++
	}
	if entries != 2 {
		t.Fatalf("RIB entries = %d, want 2 prefixes", entries)
	}
}

func TestGetByName(t *testing.T) {
	nw, eng := setup(t)
	a := New(nw, Config{Peers: peers()})
	eng.RunUntil(16 * time.Minute)
	a.Stop()
	files := a.Files()
	if len(files) == 0 {
		t.Fatal("nothing published")
	}
	if _, ok := a.Get(files[0].Name); !ok {
		t.Fatal("Get by name failed")
	}
	if _, ok := a.Get("nope.mrt"); ok {
		t.Fatal("Get of unknown name succeeded")
	}
}

func TestBaselineDetectorLatency(t *testing.T) {
	nw, eng := setup(t)
	a := New(nw, Config{Peers: peers(), UpdateInterval: 15 * time.Minute, RIBInterval: 2 * time.Hour})
	owned := prefix.MustParse("10.0.0.0/23")
	victim, attacker := topo.FirstASN, topo.FirstASN+1
	det := NewBaselineDetector(a, feedtypes.Filter{
		Prefixes: []prefix.Prefix{owned}, MoreSpecific: true,
	}, []bgp.ASN{victim}, 10*time.Minute)

	nw.Announce(victim, owned)
	eng.RunUntil(20 * time.Minute) // first file at 15m: legit announcement, no alert
	if len(det.Alerts()) != 0 {
		t.Fatalf("false alert on legit origin: %+v", det.Alerts())
	}
	// Hijack at ~20m; it lands in the file published at 30m.
	nw.Announce(attacker, owned)
	eng.RunUntil(31 * time.Minute)
	a.Stop()
	alerts := det.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v", alerts)
	}
	al := alerts[0]
	if al.Origin != attacker || al.Prefix != owned {
		t.Fatalf("alert = %+v", al)
	}
	if al.PublishedAt != 30*time.Minute {
		t.Fatalf("published at %v, want 30m", al.PublishedAt)
	}
	if al.ActionableAt != 40*time.Minute {
		t.Fatalf("actionable at %v, want 40m", al.ActionableAt)
	}
	if al.ObservedAt < 20*time.Minute || al.ObservedAt > 21*time.Minute {
		t.Fatalf("observed at %v", al.ObservedAt)
	}
}

func TestBaselineDetectorFromRIB(t *testing.T) {
	// A hijack that happened before the detector subscribed is still
	// caught from the next full RIB snapshot.
	nw, eng := setup(t)
	a := New(nw, Config{Peers: peers(), UpdateInterval: 500 * time.Hour, RIBInterval: 2 * time.Hour})
	owned := prefix.MustParse("10.0.0.0/23")
	det := NewBaselineDetector(a, feedtypes.Filter{Prefixes: []prefix.Prefix{owned}}, []bgp.ASN{topo.FirstASN}, 0)
	nw.Announce(topo.FirstASN+1, owned) // hijack, never a legit announcement
	eng.RunUntil(2*time.Hour + time.Minute)
	a.Stop()
	alerts := det.Alerts()
	if len(alerts) != 1 || alerts[0].Origin != topo.FirstASN+1 {
		t.Fatalf("alerts = %+v", alerts)
	}
	if alerts[0].ActionableAt != 2*time.Hour+DefaultNotifyDelay {
		t.Fatalf("default notify delay not applied: %v", alerts[0].ActionableAt)
	}
}

func TestBaselineDeduplicatesAlerts(t *testing.T) {
	nw, eng := setup(t)
	a := New(nw, Config{Peers: peers(), UpdateInterval: 10 * time.Minute, RIBInterval: time.Hour})
	owned := prefix.MustParse("10.0.0.0/23")
	det := NewBaselineDetector(a, feedtypes.Filter{Prefixes: []prefix.Prefix{owned}}, []bgp.ASN{topo.FirstASN}, 0)
	nw.Announce(topo.FirstASN+1, owned)
	eng.RunUntil(3 * time.Hour) // several update files + RIB dumps see the same conflict
	a.Stop()
	if len(det.Alerts()) != 1 {
		t.Fatalf("duplicate alerts: %+v", det.Alerts())
	}
}

func parseAll(t *testing.T, data []byte) []mrt.Record {
	t.Helper()
	r := mrt.NewReader(bytes.NewReader(data))
	var out []mrt.Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		out = append(out, rec)
	}
}
