package dumps

import (
	"bytes"
	"io"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/bgp/mrt"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

// BaselineDetector models a third-party alert service of the kind the
// paper argues is too slow (§1): it learns about routing changes only when
// the archive publishes a file, parses the MRT data, flags origin
// conflicts for the configured prefixes, and then waits out a notification
// + manual verification delay before the operator can act.
type BaselineDetector struct {
	archive *Archive
	filter  feedtypes.Filter
	// NotifyDelay is the time from alert generation to the operator having
	// verified it by hand — the paper cites ~80 minutes for YouTube; a
	// diligent operator is modeled at 10 minutes by default.
	notifyDelay time.Duration
	legit       map[bgp.ASN]bool
	alerts      []BaselineAlert
	seen        map[string]bool
}

// BaselineAlert is one detected conflict, with the full latency breakdown.
type BaselineAlert struct {
	Prefix prefix.Prefix
	Origin bgp.ASN
	// VantagePoint is the collector peer that observed the conflicting
	// route: the BGP4MP peer AS for update files, the PEER_INDEX_TABLE
	// peer for RIB snapshots (never inferred from the AS path — route
	// servers do not prepend themselves).
	VantagePoint bgp.ASN
	// ObservedAt is when the VP actually changed (from the MRT record).
	ObservedAt time.Duration
	// PublishedAt is when the file containing it was released.
	PublishedAt time.Duration
	// ActionableAt adds the notification/verification delay.
	ActionableAt time.Duration
}

// DefaultNotifyDelay is the post-publication human verification latency.
const DefaultNotifyDelay = 10 * time.Minute

// NewBaselineDetector attaches a detector to an archive. legitOrigins are
// the ASes allowed to originate the filtered prefixes.
func NewBaselineDetector(a *Archive, f feedtypes.Filter, legitOrigins []bgp.ASN, notifyDelay time.Duration) *BaselineDetector {
	if notifyDelay == 0 {
		notifyDelay = DefaultNotifyDelay
	}
	d := &BaselineDetector{
		archive:     a,
		filter:      f,
		notifyDelay: notifyDelay,
		legit:       make(map[bgp.ASN]bool),
		seen:        make(map[string]bool),
	}
	for _, o := range legitOrigins {
		d.legit[o] = true
	}
	a.OnPublish(d.processFile)
	return d
}

// Alerts returns all conflicts found so far.
func (d *BaselineDetector) Alerts() []BaselineAlert {
	return append([]BaselineAlert(nil), d.alerts...)
}

func (d *BaselineDetector) processFile(f File) {
	r := mrt.NewReader(bytes.NewReader(f.Data))
	var peers mrt.PeerResolver
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			return // a corrupt archive file yields whatever parsed so far
		}
		peers.Observe(rec)
		switch m := rec.(type) {
		case *mrt.BGP4MPMessage:
			u, ok := m.Message.(*bgp.Update)
			if !ok {
				continue
			}
			origin, ok := u.Origin()
			if !ok {
				continue
			}
			for _, p := range u.NLRI {
				d.check(p, origin, m.PeerAS, SimTimeOf(m.Timestamp), f.PublishedAt)
			}
		case *mrt.RIBEntry:
			for _, rt := range m.Routes {
				u := &bgp.Update{Attrs: rt.Attrs}
				origin, ok := u.Origin()
				if !ok {
					continue
				}
				peer, err := peers.Peer(rt.PeerIndex)
				if err != nil {
					continue // unresolvable peer index: skip, as with corrupt data
				}
				d.check(m.Prefix, origin, peer.AS, SimTimeOf(m.Timestamp), f.PublishedAt)
			}
		}
	}
}

func (d *BaselineDetector) check(p prefix.Prefix, origin, vp bgp.ASN, observed, published time.Duration) {
	if !d.filter.Match(p) || d.legit[origin] {
		return
	}
	key := p.String() + "|" + origin.String()
	if d.seen[key] {
		return
	}
	d.seen[key] = true
	d.alerts = append(d.alerts, BaselineAlert{
		Prefix:       p,
		Origin:       origin,
		VantagePoint: vp,
		ObservedAt:   observed,
		PublishedAt:  published,
		ActionableAt: published + d.notifyDelay,
	})
}
