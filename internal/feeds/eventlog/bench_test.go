package eventlog

import (
	"testing"
)

// BenchmarkEventJSONRoundTrip measures the interchange cost per event:
// one AppendRecord into a reused buffer (the recorder's hot path —
// gated at zero-and-a-bit allocs) plus one ParseRecord (the replay
// path, which allocates the decoded path slice and strings).
func BenchmarkEventJSONRoundTrip(b *testing.B) {
	evs := sampleEvents()
	rec := Record{Seq: 42, Event: evs[0]}
	buf := AppendRecord(nil, rec)

	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(buf)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = AppendRecord(buf[:0], rec)
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(buf)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ParseRecord(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}
