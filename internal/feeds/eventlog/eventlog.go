// Package eventlog defines the canonical interchange form for
// feedtypes.Event — a bgpipe-style JSON envelope, one event per line —
// and the machinery built on it: an allocation-free encoder, a stream
// decoder, and a rotating file Recorder that archives the post-dedup
// event stream off the hot path (recorder.go).
//
// # The envelope
//
// Each line is a six-element JSON array, in the style of bgpipe's
// message form (see docs/INTERCHANGE.md for the field-by-field table):
//
//	["R", seq, time, type, data, meta]
//
//	[0] dir   "R" — received from monitoring (reserved for future use)
//	[1] seq   monotonic uint64, assigned per stream
//	[2] time  event time: EmittedAt as integer nanoseconds of sim time
//	[3] type  "announce" | "withdraw"
//	[4] data  {"prefix": "...", "vp": asn, "path": [asn, ...]}
//	[5] meta  {"src": "...", "col": "...", "seen": nanoseconds}
//
// Integer nanoseconds (not wall-clock strings) keep the encoder
// allocation-free and the event-time clocks exact across record→replay:
// dedup TTLs and tenant quotas run on event time, so a replayed
// incident reproduces the live run bit for bit.
package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
	"unicode/utf8"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

// MaxLineLen bounds one encoded event line; a line is one prefix plus
// one AS path, so even pathological paths stay far below this.
const MaxLineLen = 1 << 20

// Record is one sequenced event: what one envelope line carries.
type Record struct {
	Seq   uint64
	Event feedtypes.Event
}

// AppendRecord appends r's envelope line (including the trailing
// newline) to dst and returns the extended slice. It performs no
// allocations when dst has capacity.
func AppendRecord(dst []byte, r Record) []byte {
	ev := &r.Event
	dst = append(dst, `["R",`...)
	dst = strconv.AppendUint(dst, r.Seq, 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(ev.EmittedAt), 10)
	if ev.Kind == feedtypes.Withdraw {
		dst = append(dst, `,"withdraw",`...)
	} else {
		dst = append(dst, `,"announce",`...)
	}
	dst = append(dst, `{"prefix":"`...)
	dst = ev.Prefix.AppendText(dst)
	dst = append(dst, `","vp":`...)
	dst = strconv.AppendUint(dst, uint64(ev.VantagePoint), 10)
	dst = append(dst, `,"path":[`...)
	for i, asn := range ev.Path {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendUint(dst, uint64(asn), 10)
	}
	dst = append(dst, `]},{"src":`...)
	dst = appendJSONString(dst, ev.Source)
	dst = append(dst, `,"col":`...)
	dst = appendJSONString(dst, ev.Collector)
	dst = append(dst, `,"seen":`...)
	dst = strconv.AppendInt(dst, int64(ev.SeenAt), 10)
	dst = append(dst, '}', ']', '\n')
	return dst
}

// appendJSONString appends s as a JSON string literal. Only the
// characters JSON requires escaped ('"', '\\', controls) are escaped;
// invalid UTF-8 is replaced with U+FFFD, matching encoding/json, so
// the encoder's output is always what its own decoder returns.
func appendJSONString(dst []byte, s string) []byte {
	const hex = "0123456789abcdef"
	dst = append(dst, '"')
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			switch {
			case b == '"' || b == '\\':
				dst = append(dst, '\\', b)
			case b >= 0x20:
				dst = append(dst, b)
			case b == '\n':
				dst = append(dst, '\\', 'n')
			case b == '\r':
				dst = append(dst, '\\', 'r')
			case b == '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hex[b>>4], hex[b&0xf])
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, "�"...)
			i++
			continue
		}
		dst = append(dst, s[i:i+size]...)
		i += size
	}
	return append(dst, '"')
}

// envelope mirrors the wire array for decoding; the heterogeneous
// fields arrive as raw JSON and are typed individually.
type wireData struct {
	Prefix string   `json:"prefix"`
	VP     uint32   `json:"vp"`
	Path   []uint32 `json:"path"`
}

type wireMeta struct {
	Src  string `json:"src"`
	Col  string `json:"col"`
	Seen int64  `json:"seen"`
}

// ParseRecord decodes one envelope line (with or without the trailing
// newline).
func ParseRecord(line []byte) (Record, error) {
	var arr [6]json.RawMessage
	elems := arr[:0]
	if err := json.Unmarshal(line, &elems); err != nil {
		return Record{}, fmt.Errorf("eventlog: %w", err)
	}
	if len(elems) != 6 {
		return Record{}, fmt.Errorf("eventlog: envelope has %d elements, want 6", len(elems))
	}
	var dir, typ string
	var r Record
	var emitted int64
	var data wireData
	var meta wireMeta
	for i, dst := range []any{&dir, &r.Seq, &emitted, &typ, &data, &meta} {
		if err := json.Unmarshal(elems[i], dst); err != nil {
			return Record{}, fmt.Errorf("eventlog: envelope[%d]: %w", i, err)
		}
	}
	if dir != "R" {
		return Record{}, fmt.Errorf("eventlog: unknown direction %q", dir)
	}
	ev := &r.Event
	switch typ {
	case "announce":
		ev.Kind = feedtypes.Announce
	case "withdraw":
		ev.Kind = feedtypes.Withdraw
	default:
		return Record{}, fmt.Errorf("eventlog: unknown event type %q", typ)
	}
	p, err := prefix.Parse(data.Prefix)
	if err != nil {
		return Record{}, fmt.Errorf("eventlog: %w", err)
	}
	ev.Prefix = p
	ev.VantagePoint = bgp.ASN(data.VP)
	if len(data.Path) > 0 {
		ev.Path = make([]bgp.ASN, len(data.Path))
		for i, asn := range data.Path {
			ev.Path[i] = bgp.ASN(asn)
		}
	}
	ev.Source = meta.Src
	ev.Collector = meta.Col
	ev.SeenAt = time.Duration(meta.Seen)
	ev.EmittedAt = time.Duration(emitted)
	return r, nil
}

// Writer encodes events to an io.Writer, assigning a monotonic
// sequence. It buffers one batch at a time in a reused scratch buffer,
// so a WriteBatch is one underlying Write call and zero allocations at
// steady state.
type Writer struct {
	w   io.Writer
	seq uint64
	buf []byte
}

// NewWriter returns a Writer whose first record has sequence 0.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Seq returns the sequence number the next record will be assigned.
func (w *Writer) Seq() uint64 { return w.seq }

// WriteBatch encodes evs as consecutive records and writes them with a
// single underlying Write.
func (w *Writer) WriteBatch(evs []feedtypes.Event) error {
	if len(evs) == 0 {
		return nil
	}
	w.buf = w.buf[:0]
	for i := range evs {
		w.buf = AppendRecord(w.buf, Record{Seq: w.seq, Event: evs[i]})
		w.seq++
	}
	_, err := w.w.Write(w.buf)
	return err
}

// WriteEvent encodes one event.
func (w *Writer) WriteEvent(ev feedtypes.Event) error {
	return w.WriteBatch([]feedtypes.Event{ev})
}

// Reader decodes an envelope stream line by line.
type Reader struct {
	s *bufio.Scanner
}

// NewReader wraps r. Lines beyond MaxLineLen are an error.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64<<10), MaxLineLen)
	return &Reader{s: s}
}

// Next returns the next record, or io.EOF at a clean end of stream.
// Blank lines are skipped so concatenated segment files read cleanly.
func (r *Reader) Next() (Record, error) {
	for r.s.Scan() {
		line := r.s.Bytes()
		if len(line) == 0 {
			continue
		}
		return ParseRecord(line)
	}
	if err := r.s.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}
