package eventlog

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

func sampleEvents() []feedtypes.Event {
	return []feedtypes.Event{
		{
			Source: "ris", Collector: "rrc00", VantagePoint: 65002,
			Kind:   feedtypes.Announce,
			Prefix: prefix.MustParse("208.65.152.0/22"),
			Path:   []bgp.ASN{65002, 65001, 36561},
			SeenAt: 1500 * time.Millisecond, EmittedAt: 2 * time.Second,
		},
		{
			Source: "bmp", Collector: "rtr-edge1", VantagePoint: 65003,
			Kind:   feedtypes.Withdraw,
			Prefix: prefix.MustParse("2001:db8:beef::/48"),
			SeenAt: 3 * time.Second, EmittedAt: 3100 * time.Millisecond,
		},
		{
			// Hostile metadata: quotes, controls, non-ASCII.
			Source: "s\"rc\\\n", Collector: "cöl\t\x01", VantagePoint: 1,
			Kind:   feedtypes.Announce,
			Prefix: prefix.MustParse("0.0.0.0/0"),
			Path:   []bgp.ASN{1},
		},
	}
}

// TestRecordRoundTrip: encode→decode is the identity on records, and
// every line the encoder emits is valid JSON of the documented shape.
func TestRecordRoundTrip(t *testing.T) {
	for i, ev := range sampleEvents() {
		r := Record{Seq: uint64(i) + 7, Event: ev}
		line := AppendRecord(nil, r)
		if line[len(line)-1] != '\n' {
			t.Fatalf("no trailing newline: %q", line)
		}
		var arr []any
		if err := json.Unmarshal(line, &arr); err != nil {
			t.Fatalf("event %d: not valid JSON: %v\n%s", i, err, line)
		}
		if len(arr) != 6 || arr[0] != "R" {
			t.Fatalf("event %d: envelope shape wrong: %v", i, arr)
		}
		got, err := ParseRecord(line)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("event %d round trip:\n got %#v\nwant %#v", i, got, r)
		}
	}
}

// TestWriterReaderStream: a batch written through Writer reads back in
// order with consecutive sequence numbers, and blank lines between
// concatenated segments are tolerated.
func TestWriterReaderStream(t *testing.T) {
	evs := sampleEvents()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteBatch(evs[:2]); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("\n") // segment boundary noise
	if err := w.WriteEvent(evs[2]); err != nil {
		t.Fatal(err)
	}
	if w.Seq() != 3 {
		t.Fatalf("Seq = %d, want 3", w.Seq())
	}
	rd := NewReader(&buf)
	for i, want := range evs {
		rec, err := rd.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Seq != uint64(i) {
			t.Fatalf("record %d: seq %d", i, rec.Seq)
		}
		if !reflect.DeepEqual(rec.Event, want) {
			t.Fatalf("record %d mismatch:\n got %#v\nwant %#v", i, rec.Event, want)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

// TestParseRejects: malformed envelopes error rather than panic or
// silently succeed.
func TestParseRejects(t *testing.T) {
	good := string(AppendRecord(nil, Record{Event: sampleEvents()[0]}))
	for name, line := range map[string]string{
		"not json":      "nope",
		"wrong arity":   `["R",1,2,"announce",{}]`,
		"bad dir":       strings.Replace(good, `["R"`, `["L"`, 1),
		"bad type":      strings.Replace(good, "announce", "reannounce", 1),
		"bad prefix":    strings.Replace(good, "208.65.152.0/22", "999.1.1.1/22", 1),
		"object":        `{"seq":1}`,
		"non-int seq":   `["R","x",0,"announce",{"prefix":"10.0.0.0/8","vp":1,"path":[1]},{"src":"","col":"","seen":0}]`,
		"non-int time":  `["R",1,"x","announce",{"prefix":"10.0.0.0/8","vp":1,"path":[1]},{"src":"","col":"","seen":0}]`,
		"data not obj":  `["R",1,0,"announce",7,{"src":"","col":"","seen":0}]`,
		"trailing junk": good + "]",
	} {
		if _, err := ParseRecord([]byte(line)); err == nil {
			t.Errorf("%s: accepted %q", name, line)
		}
	}
}

// TestRecorderRotation: the recorder splits the archive into size-
// rotated segments, sequence numbers continue across the boundary, and
// the concatenated segments replay the full stream.
func TestRecorderRotation(t *testing.T) {
	dir := t.TempDir()
	rec, err := NewRecorder(RecorderConfig{
		Prefix:       filepath.Join(dir, "cap"),
		MaxFileBytes: 256, // force rotations quickly
		QueueDepth:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := sampleEvents()[:2]
	const rounds = 20
	for i := 0; i < rounds; i++ {
		rec.Record(evs)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if snap.Dropped != 0 {
		t.Fatalf("dropped %d events with an idle writer", snap.Dropped)
	}
	if snap.Events != int64(rounds*len(evs)) {
		t.Fatalf("recorded %d events, want %d", snap.Events, rounds*len(evs))
	}
	if snap.Rotations == 0 {
		t.Fatal("no rotations despite 256-byte segments")
	}

	segs, err := filepath.Glob(filepath.Join(dir, "cap-*.evlog"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("segments = %v (err %v), want >= 2", segs, err)
	}
	var all bytes.Buffer
	for _, seg := range segs { // glob order == write order by the name scheme
		b, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		all.Write(b)
	}
	rd := NewReader(&all)
	for i := 0; i < rounds*len(evs); i++ {
		recd, err := rd.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if recd.Seq != uint64(i) {
			t.Fatalf("record %d: seq %d — sequence broke across rotation", i, recd.Seq)
		}
		if !reflect.DeepEqual(recd.Event, evs[i%len(evs)]) {
			t.Fatalf("record %d: event mismatch", i)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}

	var prom strings.Builder
	snap.WriteProm(&prom)
	for _, want := range []string{"artemis_record_events_total", "artemis_record_rotations_total"} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prom rendering missing %s", want)
		}
	}
}

// TestRecorderSheds: with the writer wedged behind a full queue, Record
// drops instead of blocking.
func TestRecorderSheds(t *testing.T) {
	dir := t.TempDir()
	rec, err := NewRecorder(RecorderConfig{Prefix: filepath.Join(dir, "cap"), QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	evs := sampleEvents()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Far more batches than the queue holds; must return promptly
		// whether or not the writer keeps up.
		for i := 0; i < 10000; i++ {
			rec.Record(evs)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Record blocked on a saturated queue")
	}
}
