package eventlog

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"artemis/internal/feeds/feedtypes"
	"artemis/internal/ring"
)

// RecorderConfig configures a rotating event archive.
type RecorderConfig struct {
	// Prefix is the segment path prefix: segments are written as
	// <Prefix>-NNNNNN.evlog, numbered from 000001 in write order, so a
	// shell glob replays an archive in sequence.
	Prefix string
	// MaxFileBytes rotates the active segment when its size reaches
	// this. Default 64 MiB.
	MaxFileBytes int64
	// MaxFileAge rotates the active segment after this wall-clock age
	// even if small, so quiet periods still produce bounded files.
	// 0 disables age rotation.
	MaxFileAge time.Duration
	// QueueDepth bounds the batch queue between the hot path and the
	// writer goroutine. Default 64 batches. When the queue is full the
	// batch is dropped and counted — recording never stalls ingest.
	QueueDepth int
}

// RecorderSnapshot is a point-in-time view of recorder counters.
type RecorderSnapshot struct {
	Events    int64 // events written to segments
	Dropped   int64 // events shed because the queue was full
	Bytes     int64 // bytes written across all segments
	Rotations int64 // completed segment rotations
	Queue     int   // batches queued right now
}

// WriteProm renders the snapshot in Prometheus text exposition format,
// matching the artemis_* families in internal/stats.
func (s RecorderSnapshot) WriteProm(w io.Writer) {
	fmt.Fprintf(w, "# TYPE artemis_record_events_total counter\nartemis_record_events_total %d\n", s.Events)
	fmt.Fprintf(w, "# TYPE artemis_record_dropped_total counter\nartemis_record_dropped_total %d\n", s.Dropped)
	fmt.Fprintf(w, "# TYPE artemis_record_bytes_total counter\nartemis_record_bytes_total %d\n", s.Bytes)
	fmt.Fprintf(w, "# TYPE artemis_record_rotations_total counter\nartemis_record_rotations_total %d\n", s.Rotations)
	fmt.Fprintf(w, "# TYPE artemis_record_queue_depth gauge\nartemis_record_queue_depth %d\n", s.Queue)
}

// Recorder archives an event stream to size/time-rotated segment
// files. Record is the hot-path half: it deep-copies the batch into a
// pooled buffer and hands it to a single writer goroutine over a
// bounded SPSC ring, so the caller never blocks on the filesystem —
// if the writer cannot keep up the batch is shed and counted, never
// queued unboundedly.
type Recorder struct {
	cfg  RecorderConfig
	pool *feedtypes.BatchPool
	q    *ring.Ring[*feedtypes.Batch]

	mu sync.Mutex // serializes Record (ring producer side) and Close

	events    atomic.Int64
	dropped   atomic.Int64
	bytes     atomic.Int64
	rotations atomic.Int64

	done   chan struct{}
	closed bool

	// writer-goroutine state
	w       *Writer
	file    *os.File
	fileLen int64
	fileAt  time.Time // wall time the active segment was opened
	seg     int
}

// NewRecorder opens the first segment and starts the writer.
func NewRecorder(cfg RecorderConfig) (*Recorder, error) {
	if cfg.Prefix == "" {
		return nil, fmt.Errorf("eventlog: recorder needs a path prefix")
	}
	if cfg.MaxFileBytes <= 0 {
		cfg.MaxFileBytes = 64 << 20
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	r := &Recorder{
		cfg:  cfg,
		pool: feedtypes.NewBatchPool(),
		q:    ring.New[*feedtypes.Batch](cfg.QueueDepth),
		done: make(chan struct{}),
	}
	if err := r.rotate(); err != nil {
		return nil, err
	}
	go r.run()
	return r, nil
}

// SegmentName returns the path of segment n (1-based), the scheme
// documented on RecorderConfig.Prefix.
func SegmentName(prefix string, n int) string {
	return fmt.Sprintf("%s-%06d.evlog", prefix, n)
}

// rotate opens the next segment (writer goroutine only, and once
// during construction).
func (r *Recorder) rotate() error {
	if r.file != nil {
		if err := r.file.Close(); err != nil {
			return err
		}
		r.rotations.Add(1)
	}
	r.seg++
	f, err := os.Create(SegmentName(r.cfg.Prefix, r.seg))
	if err != nil {
		return err
	}
	r.file = f
	r.fileLen = 0
	r.fileAt = time.Now()
	if r.w == nil {
		r.w = &Writer{}
	}
	r.w.w = f // sequence continues across segments
	return nil
}

// Record archives a copy of evs. It is safe for concurrent callers and
// never blocks on I/O; on a full queue the batch is dropped and
// counted in the Dropped counter.
func (r *Recorder) Record(evs []feedtypes.Event) {
	if len(evs) == 0 {
		return
	}
	b := r.pool.Get()
	b.AppendEvents(evs)
	r.mu.Lock()
	if r.closed || !r.q.TryPush(b) {
		r.mu.Unlock()
		b.Release()
		r.dropped.Add(int64(len(evs)))
		return
	}
	r.mu.Unlock()
}

func (r *Recorder) run() {
	defer close(r.done)
	for {
		b, ok := r.q.Pop()
		if !ok {
			break
		}
		r.write(b.Events)
		b.Release()
	}
	r.file.Close()
}

func (r *Recorder) write(evs []feedtypes.Event) {
	if r.cfg.MaxFileAge > 0 && time.Since(r.fileAt) >= r.cfg.MaxFileAge {
		if err := r.rotate(); err != nil {
			r.dropped.Add(int64(len(evs)))
			return
		}
	}
	if err := r.w.WriteBatch(evs); err != nil {
		r.dropped.Add(int64(len(evs)))
		return
	}
	n := int64(len(r.w.buf))
	r.fileLen += n
	r.bytes.Add(n)
	r.events.Add(int64(len(evs)))
	if r.fileLen >= r.cfg.MaxFileBytes {
		if err := r.rotate(); err != nil {
			// Keep writing to the oversized segment rather than lose data.
			r.fileLen = 0
		}
	}
}

// Snapshot returns current counters.
func (r *Recorder) Snapshot() RecorderSnapshot {
	return RecorderSnapshot{
		Events:    r.events.Load(),
		Dropped:   r.dropped.Load(),
		Bytes:     r.bytes.Load(),
		Rotations: r.rotations.Load(),
		Queue:     r.q.Len(),
	}
}

// Close drains the queue, flushes, and closes the active segment.
func (r *Recorder) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.done
		return nil
	}
	r.closed = true
	r.q.Close()
	r.mu.Unlock()
	<-r.done
	return nil
}
