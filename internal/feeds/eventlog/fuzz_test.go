package eventlog

import (
	"reflect"
	"testing"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

// FuzzEventJSON: any line ParseRecord accepts must re-encode, and the
// re-encoded line must be a decode fixed point (decode→encode→decode
// is the identity). This pins the envelope as canonical: whatever
// fields a foreign writer adds, what our encoder emits is exactly what
// our decoder returns, so archives survive round trips bit for bit.
func FuzzEventJSON(f *testing.F) {
	seedEvents := []feedtypes.Event{
		{Source: "ris", Collector: "rrc00", VantagePoint: 65002, Kind: feedtypes.Announce,
			Prefix: prefix.MustParse("208.65.153.0/24"), Path: []bgp.ASN{65002, 64666}, SeenAt: 1, EmittedAt: 2},
		{Source: "bmp", Collector: "rtr1", VantagePoint: 65003, Kind: feedtypes.Withdraw,
			Prefix: prefix.MustParse("2001:db8::/32"), EmittedAt: -5},
		{Source: "s\"\\\n\x01ö", Collector: "", Kind: feedtypes.Announce,
			Prefix: prefix.MustParse("0.0.0.0/0"), Path: []bgp.ASN{4200000000}},
	}
	for i, ev := range seedEvents {
		f.Add(AppendRecord(nil, Record{Seq: uint64(i), Event: ev}))
	}
	f.Add([]byte(`["R",0,0,"announce",{"prefix":"10.0.0.0/8","vp":0,"path":[]},{"src":"","col":"","seen":0}]`))
	f.Add([]byte(`["R",18446744073709551615,0,"withdraw",{"prefix":"::/0","vp":4294967295,"path":null},{"src":"x","col":"y","seen":-1}]`))
	f.Add([]byte(`["L",0,0,"announce",{},{}]`))

	f.Fuzz(func(t *testing.T, line []byte) {
		r1, err := ParseRecord(line)
		if err != nil {
			return
		}
		enc := AppendRecord(nil, r1)
		r2, err := ParseRecord(enc)
		if err != nil {
			t.Fatalf("own encoding does not decode: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(r2, r1) {
			t.Fatalf("decode not a fixed point:\n first %#v\nsecond %#v\nline %s", r1, r2, enc)
		}
		// Canonical form is stable: encoding r2 yields identical bytes.
		if enc2 := AppendRecord(nil, r2); string(enc2) != string(enc) {
			t.Fatalf("encoder not deterministic:\n%s\n%s", enc, enc2)
		}
	})
}
