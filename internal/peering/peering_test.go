package peering

import (
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
	"artemis/internal/sim"
	"artemis/internal/simnet"
	"artemis/internal/topo"
)

func TestAttachValidation(t *testing.T) {
	tp := topo.Line(3, time.Millisecond)
	if _, err := Attach(tp, topo.FirstASN, []bgp.ASN{topo.FirstASN + 1}, time.Millisecond); err == nil {
		t.Fatal("existing ASN accepted")
	}
	if _, err := Attach(tp, 61000, nil, time.Millisecond); err == nil {
		t.Fatal("empty mux list accepted")
	}
	if _, err := Attach(tp, 61000, []bgp.ASN{9999}, time.Millisecond); err == nil {
		t.Fatal("unknown mux accepted")
	}
}

func TestVirtualASAnnouncesFromAllSites(t *testing.T) {
	tp := topo.Line(4, time.Millisecond)
	vas, err := Attach(tp, 61000, []bgp.ASN{topo.FirstASN, topo.FirstASN + 3}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Degree(61000) != 2 {
		t.Fatalf("virtual AS degree = %d", tp.Degree(61000))
	}
	if _, ok := tp.Geo(61000); !ok {
		t.Fatal("virtual AS has no geo placement")
	}
	eng := sim.NewEngine(1)
	nw := simnet.New(tp, eng, simnet.Config{MRAI: simnet.Disabled, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond})
	p := prefix.MustParse("10.0.0.0/23")
	if err := vas.Announce(nw, p); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Every AS should route to the virtual AS; the middle of the line
	// reaches it via whichever mux is nearer.
	for _, asn := range tp.ASes() {
		origin, ok := nw.Node(asn).ResolveOrigin(prefix.MustParseAddr("10.0.0.1"))
		if !ok || origin != 61000 {
			t.Fatalf("AS %v origin = %v,%v", asn, origin, ok)
		}
	}
	// Withdraw removes it everywhere.
	if err := vas.Withdraw(nw, p); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if _, ok := nw.Node(topo.FirstASN + 1).BestRoute(p); ok {
		t.Fatal("route survived withdrawal")
	}
}

func TestBoundVirtualASAsInjector(t *testing.T) {
	tp := topo.Line(3, time.Millisecond)
	vas, err := Attach(tp, 61000, []bgp.ASN{topo.FirstASN}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	nw := simnet.New(tp, eng, simnet.Config{MRAI: simnet.Disabled, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond})
	bound := vas.Bind(nw)
	p := prefix.MustParse("10.0.0.0/24")
	if err := bound.AnnounceRoute(p); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if origin, ok := nw.Node(topo.FirstASN + 2).ResolveOrigin(prefix.MustParseAddr("10.0.0.1")); !ok || origin != 61000 {
		t.Fatalf("origin = %v,%v", origin, ok)
	}
	if err := bound.WithdrawRoute(p); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if _, ok := nw.Node(topo.FirstASN + 2).BestRoute(p); ok {
		t.Fatal("withdraw failed")
	}
}
