// Package peering reproduces the PEERING-testbed setup of the paper's
// evaluation (§3): a virtual AS, holding a real ASN and prefix, attached
// to the Internet at multiple sites ("muxes"). The victim runs one virtual
// AS and announces its prefix; the attacker runs a second virtual AS at
// different sites and announces the same prefix.
package peering

import (
	"fmt"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
	"artemis/internal/simnet"
	"artemis/internal/topo"
)

// VirtualAS is one PEERING-style virtual AS.
type VirtualAS struct {
	ASN   bgp.ASN
	Muxes []bgp.ASN
}

// Attach adds the virtual AS to the topology as a customer of each mux.
// It must be called before simnet.New materializes the network.
func Attach(t *topo.Topology, asn bgp.ASN, muxes []bgp.ASN, linkDelay time.Duration) (*VirtualAS, error) {
	if t.Has(asn) {
		return nil, fmt.Errorf("peering: AS %v already exists", asn)
	}
	if len(muxes) == 0 {
		return nil, fmt.Errorf("peering: need at least one mux")
	}
	var lat, lon float64
	for _, mux := range muxes {
		if !t.Has(mux) {
			return nil, fmt.Errorf("peering: unknown mux AS %v", mux)
		}
	}
	t.AddAS(asn)
	for _, mux := range muxes {
		if err := t.AddC2P(asn, mux, linkDelay); err != nil {
			return nil, err
		}
		if g, ok := t.Geo(mux); ok {
			lat += g.Lat / float64(len(muxes))
			lon += g.Lon / float64(len(muxes))
		}
	}
	t.SetGeo(asn, topo.GeoPoint{Lat: lat, Lon: lon, Region: "peering"})
	return &VirtualAS{ASN: asn, Muxes: append([]bgp.ASN(nil), muxes...)}, nil
}

// Announce originates p from the virtual AS.
func (v *VirtualAS) Announce(nw *simnet.Network, p prefix.Prefix) error {
	return nw.Announce(v.ASN, p)
}

// Withdraw withdraws p from the virtual AS.
func (v *VirtualAS) Withdraw(nw *simnet.Network, p prefix.Prefix) error {
	return nw.Withdraw(v.ASN, p)
}

// AnnounceRoute implements controller.RouteInjector when bound to a
// network via Bind.
type BoundVirtualAS struct {
	v  *VirtualAS
	nw *simnet.Network
}

// Bind couples the virtual AS to a materialized network so it can serve
// as the controller's southbound injector.
func (v *VirtualAS) Bind(nw *simnet.Network) *BoundVirtualAS {
	return &BoundVirtualAS{v: v, nw: nw}
}

// AnnounceRoute implements controller.RouteInjector.
func (b *BoundVirtualAS) AnnounceRoute(p prefix.Prefix) error { return b.v.Announce(b.nw, p) }

// WithdrawRoute implements controller.RouteInjector.
func (b *BoundVirtualAS) WithdrawRoute(p prefix.Prefix) error { return b.v.Withdraw(b.nw, p) }
