// Package simnet is the discrete-event BGP Internet simulator that stands
// in for the live Internet in the reproduced ARTEMIS experiments.
//
// Every AS from the topology becomes a Node running the route package's
// decision process. Updates propagate along links with per-link delays,
// are rate-limited per adjacency by the MRAI (MinRouteAdvertisementInterval,
// RFC 4271 §9.2.1.1 — the dominant term in BGP convergence time), and are
// subject to the ingress filtering of very specific prefixes (more specific
// than /24) that makes the paper's §2 caveat about /24 de-aggregation real.
//
// The simulator answers two kinds of questions:
//
//   - control plane: which route does AS X select for prefix P over time
//     (observed by collectors, looking glasses, and the detector);
//   - data plane: which origin AS receives traffic for address A from AS
//     X's viewpoint (longest-prefix match over the Loc-RIB), which defines
//     hijack impact and mitigation success.
package simnet

import (
	"fmt"
	"sort"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
	"artemis/internal/route"
	"artemis/internal/sim"
	"artemis/internal/topo"
)

// Config tunes protocol timing. Zero values select defaults.
type Config struct {
	// MRAI is the per-adjacency MinRouteAdvertisementInterval. Default 30s
	// (the classic eBGP default). 0 selects the default; use Disabled to
	// turn rate limiting off entirely.
	MRAI time.Duration
	// MRAIJitter applies the RFC's suggested random jitter, arming each
	// timer at U[0.75,1.0]*MRAI. Default on (disable with NoJitter).
	NoJitter bool
	// ProcMin/ProcMax bound the per-message processing delay a router adds
	// before its updates become visible. Defaults 10ms–100ms.
	ProcMin, ProcMax time.Duration
	// FilterMoreSpecificThan drops announcements of IPv4 prefixes more
	// specific than this length at ingress. Default 24 — "BGP
	// advertisements of prefixes smaller than /24 are filtered" (§2). Set
	// to 32 to disable.
	FilterMoreSpecificThan int
	// FilterMoreSpecificThan6 is the IPv6 ingress filter length. Default
	// 48, the v6 analogue of the /24 convention. Set to 128 to disable.
	FilterMoreSpecificThan6 int
	// FilterFraction is the fraction of ASes that apply the ingress
	// filter. Default 1.0 (conservative: /25+ effectively never
	// propagates); lower it for the E4 ablation.
	FilterFraction float64
}

// Disabled turns off a timer that would otherwise default.
const Disabled = time.Duration(-1)

func (c Config) withDefaults() Config {
	if c.MRAI == 0 {
		c.MRAI = 30 * time.Second
	}
	if c.MRAI == Disabled {
		c.MRAI = 0
	}
	if c.ProcMin == 0 && c.ProcMax == 0 {
		c.ProcMin, c.ProcMax = 10*time.Millisecond, 100*time.Millisecond
	}
	if c.FilterMoreSpecificThan == 0 {
		c.FilterMoreSpecificThan = 24
	}
	if c.FilterMoreSpecificThan6 == 0 {
		c.FilterMoreSpecificThan6 = 48
	}
	if c.FilterFraction == 0 {
		c.FilterFraction = 1.0
	}
	return c
}

// RouteChange reports one AS changing its best route for a prefix.
// Old and New may be nil (no previous route / route lost).
type RouteChange struct {
	Time   time.Duration
	AS     bgp.ASN
	Prefix prefix.Prefix
	Old    *route.Route
	New    *route.Route
}

// Network is the simulated Internet.
type Network struct {
	Topo   *topo.Topology
	Engine *sim.Engine

	cfg        Config
	nodes      map[bgp.ASN]*Node
	taps       []func(RouteChange)
	lastChange time.Duration

	updatesSent      int
	updatesProcessed int
	prefixesDropped  int
}

// New builds a network over the topology. The engine supplies time and
// randomness; construction itself schedules nothing.
func New(t *topo.Topology, engine *sim.Engine, cfg Config) *Network {
	cfg = cfg.withDefaults()
	nw := &Network{Topo: t, Engine: engine, cfg: cfg, nodes: make(map[bgp.ASN]*Node, t.Len())}
	for _, asn := range t.ASes() {
		filters := cfg.FilterFraction >= 1.0 || engine.Rand().Float64() < cfg.FilterFraction
		nw.nodes[asn] = newNode(nw, asn, t.Neighbors(asn), filters)
	}
	return nw
}

// Node returns the simulated router of an AS.
func (nw *Network) Node(asn bgp.ASN) *Node { return nw.nodes[asn] }

// Nodes returns all nodes keyed by ASN. The map is owned by the network.
func (nw *Network) Nodes() map[bgp.ASN]*Node { return nw.nodes }

// OnChange registers a network-wide tap invoked on every best-route change
// anywhere. Collectors and the experiment harness attach here.
func (nw *Network) OnChange(fn func(RouteChange)) { nw.taps = append(nw.taps, fn) }

// Announce schedules a local origination of p at asn, now.
func (nw *Network) Announce(asn bgp.ASN, p prefix.Prefix) error {
	n := nw.nodes[asn]
	if n == nil {
		return fmt.Errorf("simnet: unknown AS %v", asn)
	}
	nw.Engine.After(0, func() { n.originate(p) })
	return nil
}

// AnnounceWithPath schedules a local origination of p at asn whose AS path
// already carries the forged suffix (origin last). The announcing router
// still prepends its own ASN on export, so neighbors see [asn, suffix...] —
// the mechanics of a type-1/type-N hijack or prepend forgery, where the
// attacker fabricates an adjacency (or a whole tail) to a legitimate origin.
// ASes that appear in the suffix drop the announcement via standard loop
// detection, exactly as on the real Internet. Withdraw removes it.
func (nw *Network) AnnounceWithPath(asn bgp.ASN, p prefix.Prefix, suffix []bgp.ASN) error {
	n := nw.nodes[asn]
	if n == nil {
		return fmt.Errorf("simnet: unknown AS %v", asn)
	}
	forged := append([]bgp.ASN(nil), suffix...)
	nw.Engine.After(0, func() { n.originateWithPath(p, forged) })
	return nil
}

// Withdraw schedules withdrawal of a local origination of p at asn, now.
func (nw *Network) Withdraw(asn bgp.ASN, p prefix.Prefix) error {
	n := nw.nodes[asn]
	if n == nil {
		return fmt.Errorf("simnet: unknown AS %v", asn)
	}
	nw.Engine.After(0, func() { n.withdrawLocal(p) })
	return nil
}

// SetLeaking toggles route-leak mode on an AS: while leaking, the node
// re-exports every best route to every neighbor regardless of valley-free
// export policy — the classic "customer leaks provider routes to its other
// provider" incident shape. Enabling re-floods the full table through the
// now-open export; disabling withdraws the leaked routes again.
func (nw *Network) SetLeaking(asn bgp.ASN, on bool) error {
	n := nw.nodes[asn]
	if n == nil {
		return fmt.Errorf("simnet: unknown AS %v", asn)
	}
	nw.Engine.After(0, func() { n.setLeaking(on) })
	return nil
}

// LastChange returns the virtual time of the most recent best-route change
// anywhere in the network — the convergence detector used by experiments.
func (nw *Network) LastChange() time.Duration { return nw.lastChange }

// Stats reports message-level counters since construction.
func (nw *Network) Stats() (updatesSent, updatesProcessed, prefixesDropped int) {
	return nw.updatesSent, nw.updatesProcessed, nw.prefixesDropped
}

func (nw *Network) emit(ev RouteChange) {
	nw.lastChange = ev.Time
	for _, fn := range nw.taps {
		fn(ev)
	}
}

func (nw *Network) procDelay() time.Duration {
	if nw.cfg.ProcMax <= nw.cfg.ProcMin {
		return nw.cfg.ProcMin
	}
	return nw.cfg.ProcMin + time.Duration(nw.Engine.Rand().Int63n(int64(nw.cfg.ProcMax-nw.cfg.ProcMin)))
}

func (nw *Network) mraiInterval() time.Duration {
	if nw.cfg.MRAI <= 0 {
		return 0
	}
	if nw.cfg.NoJitter {
		return nw.cfg.MRAI
	}
	// RFC 4271 §9.2.1.1: jitter timers to 0.75-1.0 of the configured value.
	f := 0.75 + 0.25*nw.Engine.Rand().Float64()
	return time.Duration(f * float64(nw.cfg.MRAI))
}

// announcement is one advertised prefix inside an update message.
type announcement struct {
	prefix prefix.Prefix
	path   []bgp.ASN // sender first, origin last
}

// updateMsg is the in-simulator representation of one BGP UPDATE.
type updateMsg struct {
	from      bgp.ASN
	announce  []announcement
	withdrawn []prefix.Prefix
}

// Node is one simulated AS router.
type Node struct {
	nw        *Network
	asn       bgp.ASN
	table     *route.Table
	neighbors []topo.Neighbor
	peers     map[bgp.ASN]*peerState
	filters   bool
	leaks     bool
	listeners []func(RouteChange)
}

type peerState struct {
	nbr    topo.Neighbor
	adjOut map[prefix.Prefix][]bgp.ASN // advertised path per prefix
	dirty  map[prefix.Prefix]bool
	armed  bool
}

func newNode(nw *Network, asn bgp.ASN, neighbors []topo.Neighbor, filters bool) *Node {
	n := &Node{
		nw:        nw,
		asn:       asn,
		table:     route.NewTable(asn),
		neighbors: neighbors,
		peers:     make(map[bgp.ASN]*peerState, len(neighbors)),
		filters:   filters,
	}
	for _, nbr := range neighbors {
		n.peers[nbr.ASN] = &peerState{
			nbr:    nbr,
			adjOut: make(map[prefix.Prefix][]bgp.ASN),
			dirty:  make(map[prefix.Prefix]bool),
		}
	}
	return n
}

// ASN returns the node's AS number.
func (n *Node) ASN() bgp.ASN { return n.asn }

// Table exposes the node's routing table (read-only use).
func (n *Node) Table() *route.Table { return n.table }

// BestRoute returns the selected route for exactly p.
func (n *Node) BestRoute(p prefix.Prefix) (*route.Route, bool) { return n.table.Best(p) }

// ResolveOrigin answers the data-plane question: which origin AS receives
// this node's traffic for addr right now.
func (n *Node) ResolveOrigin(addr prefix.Addr) (bgp.ASN, bool) {
	return n.table.ResolveOrigin(addr)
}

// OnChange registers a per-node listener for best-route changes — the
// attachment point for route collectors peering with this AS.
func (n *Node) OnChange(fn func(RouteChange)) { n.listeners = append(n.listeners, fn) }

func (n *Node) originate(p prefix.Prefix) {
	old, best, changed := n.table.Originate(p)
	if changed {
		n.bestChanged(p, old, best)
	}
}

func (n *Node) originateWithPath(p prefix.Prefix, suffix []bgp.ASN) {
	old, best, changed := n.table.OriginateWithPath(p, suffix)
	if changed {
		n.bestChanged(p, old, best)
	}
}

func (n *Node) setLeaking(on bool) {
	if n.leaks == on {
		return
	}
	n.leaks = on
	// Every selected route may change export status toward every
	// adjacency; mark them all dirty and let flush sort out announce vs
	// withdraw against adjOut.
	for _, nbr := range n.neighbors {
		ps := n.peers[nbr.ASN]
		n.table.WalkBest(func(r *route.Route) bool {
			ps.dirty[r.Prefix] = true
			return true
		})
		n.kick(ps)
	}
}

func (n *Node) withdrawLocal(p prefix.Prefix) {
	old, best, changed := n.table.WithdrawLocal(p)
	if changed {
		n.bestChanged(p, old, best)
	}
}

// receive processes one update message from a neighbor.
func (n *Node) receive(msg updateMsg) {
	n.nw.updatesProcessed++
	ps := n.peers[msg.from]
	if ps == nil {
		return // session no longer exists; stale in-flight message
	}
	for _, p := range msg.withdrawn {
		old, best, changed := n.table.Withdraw(p, msg.from)
		if changed {
			n.bestChanged(p, old, best)
		}
	}
	for _, a := range msg.announce {
		limit := n.nw.cfg.FilterMoreSpecificThan
		if a.prefix.Is6() {
			limit = n.nw.cfg.FilterMoreSpecificThan6
		}
		if n.filters && a.prefix.Bits() > limit {
			n.nw.prefixesDropped++
			continue
		}
		r := &route.Route{Prefix: a.prefix, Path: a.path, From: msg.from, Rel: ps.nbr.Rel}
		if r.HasLoop(n.asn) {
			// RFC 4271 loop detection: treat as implicit withdraw of any
			// previous route from this neighbor.
			old, best, changed := n.table.Withdraw(a.prefix, msg.from)
			if changed {
				n.bestChanged(a.prefix, old, best)
			}
			continue
		}
		old, best, changed := n.table.Update(r)
		if changed {
			n.bestChanged(a.prefix, old, best)
		}
	}
}

// bestChanged reacts to a change of this node's best route for p: notify
// observers and mark the prefix dirty towards every adjacency.
func (n *Node) bestChanged(p prefix.Prefix, old, best *route.Route) {
	ev := RouteChange{Time: n.nw.Engine.Now(), AS: n.asn, Prefix: p, Old: old, New: best}
	for _, fn := range n.listeners {
		fn(ev)
	}
	n.nw.emit(ev)
	// Iterate adjacencies in topology order so runs stay deterministic
	// (map iteration order would reorder RNG draws).
	for _, nbr := range n.neighbors {
		ps := n.peers[nbr.ASN]
		ps.dirty[p] = true
		n.kick(ps)
	}
}

// kick flushes the adjacency immediately when its MRAI timer is idle,
// otherwise leaves the dirty set for the armed timer to pick up.
func (n *Node) kick(ps *peerState) {
	if ps.armed {
		return
	}
	n.flush(ps)
	if ivl := n.nw.mraiInterval(); ivl > 0 {
		ps.armed = true
		n.nw.Engine.After(ivl, func() { n.mraiExpired(ps) })
	}
}

func (n *Node) mraiExpired(ps *peerState) {
	ps.armed = false
	if len(ps.dirty) == 0 {
		return
	}
	n.flush(ps)
	ps.armed = true
	n.nw.Engine.After(n.nw.mraiInterval(), func() { n.mraiExpired(ps) })
}

// flush turns the adjacency's dirty set into one update message and
// delivers it across the link.
func (n *Node) flush(ps *peerState) {
	if len(ps.dirty) == 0 {
		return
	}
	var msg updateMsg
	msg.from = n.asn
	dirty := make([]prefix.Prefix, 0, len(ps.dirty))
	for p := range ps.dirty {
		dirty = append(dirty, p)
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].Compare(dirty[j]) < 0 })
	for _, p := range dirty {
		delete(ps.dirty, p)
		best, ok := n.table.Best(p)
		shouldAnnounce := ok && (n.leaks || route.Exportable(best, ps.nbr.Rel)) && best.From != ps.nbr.ASN
		if shouldAnnounce {
			path := append([]bgp.ASN{n.asn}, best.Path...)
			ps.adjOut[p] = path
			msg.announce = append(msg.announce, announcement{prefix: p, path: path})
		} else if _, advertised := ps.adjOut[p]; advertised {
			delete(ps.adjOut, p)
			msg.withdrawn = append(msg.withdrawn, p)
		}
	}
	if len(msg.announce) == 0 && len(msg.withdrawn) == 0 {
		return
	}
	n.nw.updatesSent++
	dst := n.nw.nodes[ps.nbr.ASN]
	delay := ps.nbr.Delay + n.nw.procDelay()
	n.nw.Engine.After(delay, func() { dst.receive(msg) })
}

// AdvertisedTo reports the AS path this node last advertised to the given
// neighbor for p — the view a route collector peering with n sees.
func (n *Node) AdvertisedTo(neighbor bgp.ASN, p prefix.Prefix) ([]bgp.ASN, bool) {
	ps := n.peers[neighbor]
	if ps == nil {
		return nil, false
	}
	path, ok := ps.adjOut[p]
	return path, ok
}
