package simnet

import (
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
	"artemis/internal/route"
	"artemis/internal/sim"
	"artemis/internal/topo"
)

// These tests check global invariants of the converged simulator over
// generated Internets — properties that must hold for *every* AS and
// every route, not just hand-picked cases.

func convergedInternet(t *testing.T, seed int64) (*topo.Topology, *Network) {
	t.Helper()
	cfg := topo.DefaultGenConfig()
	cfg.Stubs = 120
	cfg.Transit = 30
	cfg.Seed = seed
	tp, err := topo.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(seed)
	nw := New(tp, eng, Config{MRAI: Disabled, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond})
	// Announce several prefixes from scattered origins.
	origins := []bgp.ASN{
		topo.FirstASN,                                     // tier-1
		topo.FirstASN + bgp.ASN(cfg.Tier1),                // transit
		topo.FirstASN + bgp.ASN(cfg.Tier1+cfg.Transit),    // stub
		topo.FirstASN + bgp.ASN(cfg.Tier1+cfg.Transit+50), // another stub
	}
	for i, o := range origins {
		nw.Announce(o, prefix.New(prefix.AddrFrom4(uint32(10+i)<<24), 23))
	}
	eng.Run()
	return tp, nw
}

// pathIsValleyFree checks Gao–Rexford: once a path goes "down" (provider→
// customer) or sideways (peer), it may never go "up" or sideways again.
func pathIsValleyFree(tp *topo.Topology, path []bgp.ASN) bool {
	// path[0] is nearest, path[len-1] the origin. Walk from origin toward
	// the receiver: each step origin-side AS exports to the next AS.
	wentDownOrSideways := false
	for i := len(path) - 1; i > 0; i-- {
		from, to := path[i], path[i-1]
		rel, ok := tp.Rel(from, to) // what `to` is relative to `from`
		if !ok {
			return false // path uses a non-existent link
		}
		switch rel {
		case topo.Provider:
			// from exported to its provider: only legal while still on
			// the ascending (customer) leg.
			if wentDownOrSideways {
				return false
			}
		case topo.Peer, topo.Customer:
			wentDownOrSideways = true
		}
	}
	return true
}

func TestInvariantValleyFreePathsEverywhere(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		tp, nw := convergedInternet(t, seed)
		checked := 0
		for _, asn := range tp.ASes() {
			self := asn
			nw.Node(asn).Table().WalkBest(func(r *route.Route) bool {
				if r.Local() {
					return true
				}
				full := append([]bgp.ASN{self}, r.Path...)
				if !pathIsValleyFree(tp, full) {
					t.Fatalf("seed %d: AS %v holds non-valley-free path %v", seed, asn, full)
				}
				checked++
				return true
			})
		}
		if checked == 0 {
			t.Fatal("no routes checked")
		}
	}
}

func TestInvariantPathsAreLoopFreeAndLinked(t *testing.T) {
	tp, nw := convergedInternet(t, 4)
	for _, asn := range tp.ASes() {
		nw.Node(asn).Table().WalkBest(func(r *route.Route) bool {
			seen := map[bgp.ASN]bool{asn: true}
			for _, hop := range r.Path {
				if seen[hop] {
					t.Fatalf("AS %v best path has a loop: %v", asn, r.Path)
				}
				seen[hop] = true
			}
			// First hop must be an actual neighbor.
			if len(r.Path) > 0 {
				if _, ok := tp.Rel(asn, r.Path[0]); !ok {
					t.Fatalf("AS %v learned route from non-neighbor %v", asn, r.Path[0])
				}
				if r.Path[0] != r.From {
					t.Fatalf("AS %v: path head %v != From %v", asn, r.Path[0], r.From)
				}
			}
			return true
		})
	}
}

func TestInvariantPathsExistInTopology(t *testing.T) {
	tp, nw := convergedInternet(t, 5)
	for _, asn := range tp.ASes() {
		nw.Node(asn).Table().WalkBest(func(r *route.Route) bool {
			hops := append([]bgp.ASN{asn}, r.Path...)
			for i := 0; i+1 < len(hops); i++ {
				if _, ok := tp.Rel(hops[i], hops[i+1]); !ok {
					t.Fatalf("AS %v path %v uses missing link %v-%v", asn, r.Path, hops[i], hops[i+1])
				}
			}
			return true
		})
	}
}

func TestInvariantCustomerRouteUniversallyVisible(t *testing.T) {
	// A stub-originated prefix is a customer route for its providers and
	// must reach every AS (the Internet sells transit to everyone).
	tp, nw := convergedInternet(t, 6)
	addr := prefix.MustParseAddr("12.0.0.1") // third announced prefix: first stub
	for _, asn := range tp.ASes() {
		if _, ok := nw.Node(asn).ResolveOrigin(addr); !ok {
			t.Fatalf("AS %v cannot reach the stub prefix", asn)
		}
	}
}

func TestInvariantWithdrawRestoresCleanState(t *testing.T) {
	tp, nw := convergedInternet(t, 7)
	p := prefix.MustParse("99.0.0.0/23")
	extra := topo.FirstASN + 40
	nw.Announce(extra, p)
	nw.Engine.Run()
	nw.Withdraw(extra, p)
	nw.Engine.Run()
	for _, asn := range tp.ASes() {
		if _, ok := nw.Node(asn).BestRoute(p); ok {
			t.Fatalf("AS %v retains withdrawn prefix", asn)
		}
	}
}

func TestInvariantHijackCaptureIsProximityBiased(t *testing.T) {
	// After an exact-prefix hijack converges, every AS routes to exactly
	// one of victim/attacker, and both camps are non-empty on a
	// generated Internet with scattered placement.
	cfg := topo.DefaultGenConfig()
	cfg.Stubs = 120
	cfg.Seed = 8
	tp, err := topo.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(8)
	nw := New(tp, eng, Config{MRAI: Disabled, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond})
	p := prefix.MustParse("10.0.0.0/23")
	victim := topo.FirstASN + bgp.ASN(cfg.Tier1+cfg.Transit)
	attacker := victim + 60
	nw.Announce(victim, p)
	eng.Run()
	nw.Announce(attacker, p)
	eng.Run()
	addr := prefix.MustParseAddr("10.0.0.1")
	campV, campA := 0, 0
	for _, asn := range tp.ASes() {
		origin, ok := nw.Node(asn).ResolveOrigin(addr)
		if !ok {
			t.Fatalf("AS %v lost the prefix during the hijack", asn)
		}
		switch origin {
		case victim:
			campV++
		case attacker:
			campA++
		default:
			t.Fatalf("AS %v routes to a third party %v", asn, origin)
		}
	}
	if campV == 0 || campA == 0 {
		t.Fatalf("hijack did not split the Internet: victim=%d attacker=%d", campV, campA)
	}
	// The attacker and victim always keep themselves.
	if o, _ := nw.Node(attacker).ResolveOrigin(addr); o != attacker {
		t.Fatal("attacker not routing to itself")
	}
	if o, _ := nw.Node(victim).ResolveOrigin(addr); o != victim {
		t.Fatal("victim not routing to itself")
	}
}
