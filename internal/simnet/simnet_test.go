package simnet

import (
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
	"artemis/internal/sim"
	"artemis/internal/topo"
)

// fastCfg removes MRAI so unit tests converge in a handful of events.
func fastCfg() Config {
	return Config{MRAI: Disabled, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond}
}

func build(t *testing.T, tp *topo.Topology, cfg Config) (*Network, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine(1)
	return New(tp, eng, cfg), eng
}

func TestAnnouncePropagatesLine(t *testing.T) {
	tp := topo.Line(5, 10*time.Millisecond)
	nw, eng := build(t, tp, fastCfg())
	p := prefix.MustParse("10.0.0.0/23")
	origin := topo.FirstASN // bottom of the chain
	if err := nw.Announce(origin, p); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for i := 0; i < 5; i++ {
		asn := topo.FirstASN + bgp.ASN(i)
		r, ok := nw.Node(asn).BestRoute(p)
		if !ok {
			t.Fatalf("AS %v has no route", asn)
		}
		if got := r.Origin(asn); got != origin {
			t.Fatalf("AS %v origin = %v", asn, got)
		}
		if i > 0 && len(r.Path) != i {
			t.Fatalf("AS %v path length = %d, want %d (%v)", asn, len(r.Path), i, r.Path)
		}
	}
}

func TestUnknownASRejected(t *testing.T) {
	nw, _ := build(t, topo.Line(2, time.Millisecond), fastCfg())
	if err := nw.Announce(9999, prefix.MustParse("10.0.0.0/24")); err == nil {
		t.Fatal("announce from unknown AS accepted")
	}
	if err := nw.Withdraw(9999, prefix.MustParse("10.0.0.0/24")); err == nil {
		t.Fatal("withdraw from unknown AS accepted")
	}
}

func TestWithdrawRemovesEverywhere(t *testing.T) {
	tp := topo.Line(4, 10*time.Millisecond)
	nw, eng := build(t, tp, fastCfg())
	p := prefix.MustParse("10.0.0.0/23")
	nw.Announce(topo.FirstASN, p)
	eng.Run()
	nw.Withdraw(topo.FirstASN, p)
	eng.Run()
	for i := 0; i < 4; i++ {
		if _, ok := nw.Node(topo.FirstASN + bgp.ASN(i)).BestRoute(p); ok {
			t.Fatalf("AS index %d still has a route after withdraw", i)
		}
	}
}

func TestValleyFreeExport(t *testing.T) {
	// stub1 and stub2 are customers of t1 and t2 respectively; t1 and t2
	// peer. A route originated by stub1 must reach t2 and stub2 (customer
	// route exported over the peering), but a route originated by t1's
	// *provider-learned* side must never transit the peering.
	//
	//   prov
	//     |         (prov is t1's provider)
	//    t1 ---- t2    (peering)
	//     |        \
	//   stub1     stub2
	tp := topo.New()
	var prov, t1, t2, stub1, stub2 bgp.ASN = 100, 10, 20, 1, 2
	tp.AddC2P(t1, prov, time.Millisecond)
	tp.AddPeering(t1, t2, time.Millisecond)
	tp.AddC2P(stub1, t1, time.Millisecond)
	tp.AddC2P(stub2, t2, time.Millisecond)

	nw, eng := build(t, tp, fastCfg())
	pCust := prefix.MustParse("10.0.0.0/24")
	nw.Announce(stub1, pCust)
	eng.Run()
	// Customer route reaches everyone.
	for _, asn := range []bgp.ASN{prov, t1, t2, stub1, stub2} {
		if _, ok := nw.Node(asn).BestRoute(pCust); !ok {
			t.Fatalf("AS %v missing customer-originated route", asn)
		}
	}

	pProv := prefix.MustParse("192.0.2.0/24")
	nw.Announce(prov, pProv)
	eng.Run()
	// Provider-originated route reaches t1 and its customers (stub1), but
	// must NOT cross the t1-t2 peering (valley-free).
	if _, ok := nw.Node(stub1).BestRoute(pProv); !ok {
		t.Fatal("stub1 should hear provider route via t1")
	}
	if _, ok := nw.Node(t2).BestRoute(pProv); ok {
		t.Fatal("valley-free violation: provider route crossed a peering")
	}
	if _, ok := nw.Node(stub2).BestRoute(pProv); ok {
		t.Fatal("valley-free violation: provider route reached stub2")
	}
}

func TestCustomerPreferredOverPeer(t *testing.T) {
	// dst is reachable both via a customer edge and a peering; the node
	// must pick the customer route even when longer.
	//
	//    x ---- peer ----> dst   (x peers with dst)
	//    x <- c1 <- c2 <- dst-as-customer-chain
	tp := topo.New()
	var x, dst, c1, c2 bgp.ASN = 10, 20, 30, 40
	tp.AddPeering(x, dst, time.Millisecond)
	tp.AddC2P(c1, x, time.Millisecond)   // c1 customer of x
	tp.AddC2P(c2, c1, time.Millisecond)  // c2 customer of c1
	tp.AddC2P(dst, c2, time.Millisecond) // dst customer of c2
	// dst originates; x hears: direct peer path [dst], and a customer
	// path [c1 c2 dst] climbing the customer chain.
	nw, eng := build(t, tp, fastCfg())
	p := prefix.MustParse("10.0.0.0/23")
	nw.Announce(dst, p)
	eng.Run()
	r, ok := nw.Node(x).BestRoute(p)
	if !ok {
		t.Fatal("x has no route")
	}
	if r.Rel != topo.Customer {
		t.Fatalf("x selected %v route %v; customer must win", r.Rel, r)
	}
	if len(r.Path) != 3 {
		t.Fatalf("unexpected path %v", r.Path)
	}
}

func TestSubPrefixWinsDataPlane(t *testing.T) {
	// The mitigation mechanism: a /24 pulls traffic away from the /23
	// everywhere, regardless of path preference.
	tp := topo.Line(3, time.Millisecond)
	nw, eng := build(t, tp, fastCfg())
	victimPfx := prefix.MustParse("10.0.0.0/23")
	top := topo.FirstASN + 2
	nw.Announce(topo.FirstASN, victimPfx)
	eng.Run()
	if origin, _ := nw.Node(top).ResolveOrigin(prefix.MustParseAddr("10.0.0.1")); origin != topo.FirstASN {
		t.Fatalf("pre: origin = %v", origin)
	}
	// top announces the more specific half.
	nw.Announce(top, prefix.MustParse("10.0.0.0/24"))
	eng.Run()
	if origin, _ := nw.Node(topo.FirstASN).ResolveOrigin(prefix.MustParseAddr("10.0.0.1")); origin != top {
		t.Fatalf("sub-prefix did not capture data plane: origin = %v", origin)
	}
	// Other half still with the /23 owner.
	if origin, _ := nw.Node(topo.FirstASN + 1).ResolveOrigin(prefix.MustParseAddr("10.0.1.1")); origin != topo.FirstASN {
		t.Fatalf("/23 should still own 10.0.1.0: origin = %v", origin)
	}
}

func TestSlash25FilteredEverywhere(t *testing.T) {
	tp := topo.Line(3, time.Millisecond)
	nw, eng := build(t, tp, fastCfg()) // FilterMoreSpecificThan defaults to 24
	p25 := prefix.MustParse("10.0.0.0/25")
	nw.Announce(topo.FirstASN, p25)
	eng.Run()
	// Originator keeps its own route; nobody else accepts it.
	if _, ok := nw.Node(topo.FirstASN).BestRoute(p25); !ok {
		t.Fatal("originator should keep its local /25")
	}
	for i := 1; i < 3; i++ {
		if _, ok := nw.Node(topo.FirstASN + bgp.ASN(i)).BestRoute(p25); ok {
			t.Fatalf("/25 leaked to AS index %d despite ingress filter", i)
		}
	}
	_, _, dropped := nw.Stats()
	if dropped == 0 {
		t.Fatal("filter drop counter not incremented")
	}
}

func TestFilterDisabled(t *testing.T) {
	cfg := fastCfg()
	cfg.FilterMoreSpecificThan = 32
	tp := topo.Line(3, time.Millisecond)
	nw, eng := build(t, tp, cfg)
	p25 := prefix.MustParse("10.0.0.0/25")
	nw.Announce(topo.FirstASN, p25)
	eng.Run()
	if _, ok := nw.Node(topo.FirstASN + 2).BestRoute(p25); !ok {
		t.Fatal("/25 should propagate with filtering disabled")
	}
}

func TestOriginHijackSplitsInternet(t *testing.T) {
	// Victim and attacker announce the same /23 from opposite ends of a
	// line; ASes closer to the attacker choose the attacker (shorter path).
	tp := topo.Line(6, time.Millisecond)
	nw, eng := build(t, tp, fastCfg())
	p := prefix.MustParse("10.0.0.0/23")
	victim := topo.FirstASN
	attacker := topo.FirstASN + 5
	nw.Announce(victim, p)
	eng.Run()
	nw.Announce(attacker, p)
	eng.Run()
	addr := prefix.MustParseAddr("10.0.0.1")
	var hijacked int
	for i := 0; i < 6; i++ {
		origin, ok := nw.Node(topo.FirstASN + bgp.ASN(i)).ResolveOrigin(addr)
		if !ok {
			t.Fatalf("AS index %d lost the route", i)
		}
		if origin == attacker {
			hijacked++
		}
	}
	if hijacked == 0 || hijacked == 6 {
		t.Fatalf("hijack should split the line, got %d/6 captured", hijacked)
	}
}

func TestRouteChangeEvents(t *testing.T) {
	tp := topo.Line(3, time.Millisecond)
	nw, eng := build(t, tp, fastCfg())
	var events []RouteChange
	nw.OnChange(func(ev RouteChange) { events = append(events, ev) })
	var nodeEvents int
	nw.Node(topo.FirstASN + 2).OnChange(func(RouteChange) { nodeEvents++ })
	p := prefix.MustParse("10.0.0.0/23")
	nw.Announce(topo.FirstASN, p)
	eng.Run()
	if len(events) != 3 {
		t.Fatalf("expected 3 best-route changes, got %d", len(events))
	}
	if nodeEvents != 1 {
		t.Fatalf("per-node listener fired %d times", nodeEvents)
	}
	for _, ev := range events[1:] {
		if ev.Time <= 0 {
			t.Fatal("propagated events must carry positive sim time")
		}
		if ev.Old != nil || ev.New == nil {
			t.Fatalf("first-route event malformed: %+v", ev)
		}
	}
	if nw.LastChange() != events[len(events)-1].Time {
		t.Fatal("LastChange out of sync")
	}
}

func TestAdvertisedTo(t *testing.T) {
	tp := topo.Line(3, time.Millisecond)
	nw, eng := build(t, tp, fastCfg())
	p := prefix.MustParse("10.0.0.0/23")
	nw.Announce(topo.FirstASN, p)
	eng.Run()
	mid := topo.FirstASN + 1
	path, ok := nw.Node(mid).AdvertisedTo(topo.FirstASN+2, p)
	if !ok || len(path) != 2 || path[0] != mid || path[1] != topo.FirstASN {
		t.Fatalf("AdvertisedTo = %v,%v", path, ok)
	}
	if _, ok := nw.Node(mid).AdvertisedTo(9999, p); ok {
		t.Fatal("AdvertisedTo unknown neighbor")
	}
}

func TestMRAIDelaysSubsequentUpdates(t *testing.T) {
	// With MRAI on, a second change shortly after the first must not reach
	// the neighbor until the timer fires (~22.5-30s later).
	cfg := Config{MRAI: 30 * time.Second, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond}
	tp := topo.Line(2, time.Millisecond)
	nw, eng := build(t, tp, cfg)
	p1 := prefix.MustParse("10.0.0.0/24")
	p2 := prefix.MustParse("10.0.1.0/24")
	up := topo.FirstASN + 1
	var gotP2 time.Duration = -1
	nw.Node(up).OnChange(func(ev RouteChange) {
		if ev.Prefix == p2 {
			gotP2 = ev.Time
		}
	})
	nw.Announce(topo.FirstASN, p1)
	eng.RunUntil(5 * time.Second)
	nw.Announce(topo.FirstASN, p2) // MRAI timer armed by p1's send
	eng.Run()
	if gotP2 < 0 {
		t.Fatal("p2 never arrived")
	}
	if gotP2 < 20*time.Second {
		t.Fatalf("p2 arrived at %v; MRAI should have held it ~22.5-30s", gotP2)
	}
	if gotP2 > 35*time.Second {
		t.Fatalf("p2 arrived at %v; too late", gotP2)
	}
}

func TestMRAIFirstUpdateImmediate(t *testing.T) {
	cfg := Config{MRAI: 30 * time.Second, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond}
	tp := topo.Line(2, time.Millisecond)
	nw, eng := build(t, tp, cfg)
	p := prefix.MustParse("10.0.0.0/24")
	var got time.Duration = -1
	nw.Node(topo.FirstASN + 1).OnChange(func(ev RouteChange) { got = ev.Time })
	nw.Announce(topo.FirstASN, p)
	eng.RunUntil(time.Second)
	if got < 0 || got > 100*time.Millisecond {
		t.Fatalf("first update delayed by MRAI: arrived %v", got)
	}
}

func TestLoopSuppressed(t *testing.T) {
	// Triangle of peers: updates must not cycle forever.
	tp := topo.New()
	tp.AddPeering(1, 2, time.Millisecond)
	tp.AddPeering(2, 3, time.Millisecond)
	tp.AddPeering(1, 3, time.Millisecond)
	// Make 1 a customer chain origin: announce from a customer of 1 so
	// routes are exportable across peerings.
	tp.AddC2P(9, 1, time.Millisecond)
	nw, eng := build(t, tp, fastCfg())
	nw.Announce(9, prefix.MustParse("10.0.0.0/24"))
	end := eng.Run() // must terminate
	if end > time.Second {
		t.Fatalf("convergence took %v; loop suspected", end)
	}
	sent, processed, _ := nw.Stats()
	if sent == 0 || processed == 0 {
		t.Fatal("stats not counted")
	}
}

func TestGeneratedInternetConverges(t *testing.T) {
	cfg := topo.DefaultGenConfig()
	cfg.Stubs = 150 // keep the test quick
	tp, err := topo.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw, eng := build(t, tp, fastCfg())
	p := prefix.MustParse("10.0.0.0/23")
	stub := topo.FirstASN + bgp.ASN(cfg.Tier1+cfg.Transit) // first stub
	nw.Announce(stub, p)
	eng.Run()
	missing := 0
	for _, asn := range tp.ASes() {
		if origin, ok := nw.Node(asn).ResolveOrigin(prefix.MustParseAddr("10.0.0.1")); !ok || origin != stub {
			missing++
		}
	}
	if missing != 0 {
		t.Fatalf("%d ASes did not learn the stub's prefix", missing)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (time.Duration, int) {
		cfg := topo.DefaultGenConfig()
		cfg.Stubs = 60
		tp, _ := topo.Generate(cfg)
		eng := sim.NewEngine(7)
		nw := New(tp, eng, Config{})
		nw.Announce(topo.FirstASN+bgp.ASN(cfg.Tier1+cfg.Transit), prefix.MustParse("10.0.0.0/23"))
		end := eng.Run()
		sent, _, _ := nw.Stats()
		return end, sent
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("runs diverge: (%v,%d) vs (%v,%d)", e1, s1, e2, s2)
	}
}

func TestAnnounceWithPathForgedOrigin(t *testing.T) {
	// Attacker at the top of a line forges origination with the victim's
	// ASN as the path tail (type-1 shape). Remote ASes attribute the
	// prefix to the victim but route toward the attacker; the victim
	// itself drops the announcement via loop detection.
	tp := topo.Line(5, time.Millisecond)
	nw, eng := build(t, tp, fastCfg())
	p := prefix.MustParse("10.0.0.0/23")
	victim := topo.FirstASN
	attacker := topo.FirstASN + 4
	if err := nw.AnnounceWithPath(attacker, p, []bgp.ASN{victim}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	mid := topo.FirstASN + 2
	r, ok := nw.Node(mid).BestRoute(p)
	if !ok {
		t.Fatal("mid AS has no route")
	}
	if got := r.Origin(mid); got != victim {
		t.Fatalf("forged origin = %v, want victim %v", got, victim)
	}
	var viaAttacker bool
	for _, a := range r.Path {
		if a == attacker {
			viaAttacker = true
		}
	}
	if !viaAttacker {
		t.Fatalf("path %v does not traverse the attacker", r.Path)
	}
	// Loop detection: the victim sees its own ASN in the path and drops.
	if _, ok := nw.Node(victim).BestRoute(p); ok {
		t.Fatal("victim accepted a path containing its own ASN")
	}
	// Withdraw cleans up like any local origination.
	nw.Withdraw(attacker, p)
	eng.Run()
	if _, ok := nw.Node(mid).BestRoute(p); ok {
		t.Fatal("forged route survived withdraw")
	}
	if err := nw.AnnounceWithPath(9999, p, nil); err == nil {
		t.Fatal("unknown AS accepted")
	}
}

func TestRouteLeakCrossesPeering(t *testing.T) {
	// Same shape as TestValleyFreeExport, but t1 leaks: the
	// provider-originated route must now cross the t1-t2 peering, and be
	// withdrawn again when the leak stops.
	tp := topo.New()
	var prov, t1, t2, stub2 bgp.ASN = 100, 10, 20, 2
	tp.AddC2P(t1, prov, time.Millisecond)
	tp.AddPeering(t1, t2, time.Millisecond)
	tp.AddC2P(stub2, t2, time.Millisecond)

	nw, eng := build(t, tp, fastCfg())
	pProv := prefix.MustParse("192.0.2.0/24")
	nw.Announce(prov, pProv)
	eng.Run()
	if _, ok := nw.Node(t2).BestRoute(pProv); ok {
		t.Fatal("provider route crossed the peering before the leak")
	}

	if err := nw.SetLeaking(t1, true); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	r, ok := nw.Node(t2).BestRoute(pProv)
	if !ok {
		t.Fatal("leak did not export the provider route over the peering")
	}
	if got := r.Origin(t2); got != prov {
		t.Fatalf("leaked route origin = %v, want %v (leaks keep the true origin)", got, prov)
	}
	if _, ok := nw.Node(stub2).BestRoute(pProv); !ok {
		t.Fatal("leaked route should propagate to t2's customers")
	}

	if err := nw.SetLeaking(t1, false); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if _, ok := nw.Node(t2).BestRoute(pProv); ok {
		t.Fatal("leaked route survived leak disable")
	}
	if err := nw.SetLeaking(9999, true); err == nil {
		t.Fatal("unknown AS accepted")
	}
}
