package ttlset

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestUnboundedBehavesLikePlainSet(t *testing.T) {
	s := New[string](0, 0)
	if !s.Add("a", 0) {
		t.Fatal("first add should report absent")
	}
	if s.Add("a", time.Hour) {
		t.Fatal("re-add should report present, no TTL configured")
	}
	if !s.Contains("a", 24*time.Hour) {
		t.Fatal("entry must never expire with ttl=0")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestTTLExpiry(t *testing.T) {
	s := New[string](10*time.Millisecond, 0)
	if !s.Add("k", 0) {
		t.Fatal("first add")
	}
	if s.Add("k", 5*time.Millisecond) {
		t.Fatal("still live at 5ms")
	}
	if s.Add("k", 10*time.Millisecond) {
		t.Fatal("still live exactly at the TTL boundary")
	}
	if !s.Add("k", 11*time.Millisecond) {
		t.Fatal("expired after the TTL, add must succeed again")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after re-add", s.Len())
	}
}

func TestNoRefreshOnReAdd(t *testing.T) {
	s := New[string](10*time.Millisecond, 0)
	s.Add("k", 0)
	s.Add("k", 9*time.Millisecond) // duplicate must NOT refresh expiry
	if s.Contains("k", 12*time.Millisecond) {
		t.Fatal("entry should expire 10ms after FIRST sighting")
	}
}

func TestCapacityEvictsOldest(t *testing.T) {
	s := New[int](0, 2)
	s.Add(1, 0)
	s.Add(2, 1)
	s.Add(3, 2) // evicts 1
	if s.Contains(1, 2) {
		t.Fatal("oldest entry should be evicted at capacity")
	}
	if !s.Contains(2, 2) || !s.Contains(3, 2) {
		t.Fatal("newer entries must survive")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestOutOfOrderTimesClampToHighWater(t *testing.T) {
	s := New[string](10*time.Millisecond, 0)
	s.Add("a", 20*time.Millisecond)
	// A stale-timestamped key is stamped at the high-water mark, so it
	// expires relative to 20ms, not 1ms.
	s.Add("b", time.Millisecond)
	if !s.Contains("b", 25*time.Millisecond) {
		t.Fatal("b stamped at high-water 20ms must survive until 30ms")
	}
	if s.Contains("b", 31*time.Millisecond) {
		t.Fatal("b must expire after 30ms")
	}
}

// TestAgainstNaiveModel cross-checks the queue/compaction implementation
// against a naive map model under random operations.
func TestAgainstNaiveModel(t *testing.T) {
	const ttl = 50 * time.Millisecond
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := New[int](ttl, 0)
		model := map[int]time.Duration{} // key -> inserted-at (high-water stamped)
		var hw time.Duration
		now := time.Duration(0)
		for i := 0; i < 5000; i++ {
			now += time.Duration(rng.Intn(4)) * time.Millisecond
			// The model sees the same clamped clock.
			if now > hw {
				hw = now
			}
			for k, at := range model {
				if hw-at > ttl {
					delete(model, k)
				}
			}
			k := rng.Intn(64)
			_, present := model[k]
			if got := s.Add(k, now); got != !present {
				t.Fatalf("seed %d op %d: Add(%d) = %v, model says present=%v", seed, i, k, got, present)
			}
			if !present {
				model[k] = hw
			}
			if s.Len() != len(model) {
				t.Fatalf("seed %d op %d: Len = %d, model %d", seed, i, s.Len(), len(model))
			}
		}
	}
}

func TestCompactionKeepsEntriesIntact(t *testing.T) {
	s := New[string](time.Millisecond, 0)
	// Push enough churn through to trigger compaction repeatedly.
	for i := 0; i < 10000; i++ {
		now := time.Duration(i) * time.Millisecond
		if !s.Add(fmt.Sprintf("k%d", i), now) {
			t.Fatalf("add %d failed", i)
		}
		if s.Len() > 2 {
			t.Fatalf("at most 2 entries can be live with 1ms ttl and 1ms steps, got %d", s.Len())
		}
	}
}

func TestSetBoundsShrinkTTLExpires(t *testing.T) {
	s := New[string](0, 0) // unbounded: the detector's historical semantics
	s.Add("old", 0)
	s.Add("mid", 30*time.Second)
	s.Add("new", 90*time.Second)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Shrinking the TTL expires against the current high-water mark (90s):
	// "old" (age 90s) is over-age; "mid" sits exactly at the new TTL (ages
	// must exceed it to expire) and "new" survive.
	s.SetBounds(time.Minute, 0)
	if s.Len() != 2 || !s.Contains("new", 90*time.Second) || !s.Contains("mid", 90*time.Second) {
		t.Fatalf("after TTL shrink: Len=%d", s.Len())
	}
	if s.Contains("old", 90*time.Second) {
		t.Fatal("over-age entry survived the shrink")
	}
	// The retuned TTL governs future adds too.
	if !s.Add("old", 91*time.Second) {
		t.Fatal("expired entry should re-add")
	}
}

func TestSetBoundsShrinkMaxEvicts(t *testing.T) {
	s := New[int](0, 0)
	for i := 0; i < 6; i++ {
		s.Add(i, time.Duration(i)*time.Second)
	}
	s.SetBounds(0, 2)
	if s.Len() != 2 {
		t.Fatalf("Len after max shrink = %d, want 2", s.Len())
	}
	// Oldest went first; the two newest remain.
	if !s.Contains(4, 6*time.Second) || !s.Contains(5, 6*time.Second) {
		t.Fatal("eviction did not keep the newest entries")
	}
	// And the cap keeps applying: a new add evicts the now-oldest.
	s.Add(6, 7*time.Second)
	if s.Len() != 2 || s.Contains(4, 7*time.Second) {
		t.Fatalf("cap not enforced after retune: Len=%d", s.Len())
	}
}

func TestSetBoundsGrowTTLExtends(t *testing.T) {
	s := New[string](time.Minute, 0)
	s.Add("k", 0)
	// Entries keep their insertion stamps, so growing the TTL extends the
	// life of what is already in the set.
	s.SetBounds(time.Hour, 0)
	if !s.Contains("k", 30*time.Minute) {
		t.Fatal("grown TTL did not extend a live entry")
	}
	if s.Contains("k", 2*time.Hour) {
		t.Fatal("entry outlived even the grown TTL")
	}
}
