// Package ttlset provides a bounded set of recently seen keys with
// event-time expiry. It backs the two dedup caches that must not grow
// without bound in a long-running daemon: the ingest supervisor's
// cross-source seen-set and the detector's alert-incident set.
//
// Time is supplied by the caller on every operation (an event's emission
// time in the virtual-time experiments, a wall-clock-since-start duration
// in live daemons), so the set works identically under both clocks and
// stays fully deterministic in simulation. The set keeps a high-water
// mark of the times it has seen; entries expire once the high-water mark
// moves more than the TTL past their insertion time. Membership is
// first-wins: re-adding a live key does not refresh its expiry, so a key
// is guaranteed to pass again at most one TTL after it was first seen.
package ttlset

import "time"

type entry[K comparable] struct {
	key K
	at  time.Duration
}

// Set is the bounded TTL'd set. The zero value is not usable; construct
// with New. A Set is not safe for concurrent use — callers that share one
// (the ingest dedup cache, the detector) guard it with their own lock.
type Set[K comparable] struct {
	ttl time.Duration
	max int

	m map[K]time.Duration
	// q holds live entries in insertion order: expiry and capacity
	// eviction both pop from the head. head indexes the first live entry;
	// the slice is compacted when the dead prefix grows.
	q    []entry[K]
	head int
	// now is the high-water mark of observed time.
	now time.Duration
}

// New builds a set. ttl == 0 disables age expiry (entries live forever);
// max == 0 disables the size bound. With both zero the set degenerates to
// a plain grow-only set, which is the detector's historical semantics.
func New[K comparable](ttl time.Duration, max int) *Set[K] {
	return &Set[K]{ttl: ttl, max: max, m: make(map[K]time.Duration)}
}

// SetBounds retunes the TTL and size bound of a live set. A shrunk TTL
// expires over-age entries immediately (against the current high-water
// mark); a shrunk max evicts oldest entries down to the new bound. Entries
// keep their original insertion stamps, so a grown TTL extends the life of
// everything still in the set. This is what makes the dedup windows
// hot-tunable on Reconfigure instead of construction-time-only.
func (s *Set[K]) SetBounds(ttl time.Duration, max int) {
	s.ttl, s.max = ttl, max
	s.advance(s.now)
	for s.max > 0 && len(s.m) > s.max {
		s.evictOldest()
	}
}

// Add inserts key at the given time and reports whether it was absent
// (true = first sighting within the current window). Re-adding a live key
// returns false without refreshing its expiry.
func (s *Set[K]) Add(key K, now time.Duration) bool {
	s.advance(now)
	if _, ok := s.m[key]; ok {
		return false
	}
	if s.max > 0 && len(s.m) >= s.max {
		s.evictOldest()
	}
	s.m[key] = s.now
	s.q = append(s.q, entry[K]{key: key, at: s.now})
	return true
}

// Contains reports whether key is live at the given time.
func (s *Set[K]) Contains(key K, now time.Duration) bool {
	s.advance(now)
	_, ok := s.m[key]
	return ok
}

// Len returns the number of live entries.
func (s *Set[K]) Len() int { return len(s.m) }

// advance moves the high-water mark and expires aged-out entries. Times
// may arrive out of order across sources; entries are stamped with the
// high-water mark at insertion, so the queue stays sorted and expiry is a
// head pop.
func (s *Set[K]) advance(now time.Duration) {
	if now > s.now {
		s.now = now
	}
	if s.ttl <= 0 {
		return
	}
	for s.head < len(s.q) && s.now-s.q[s.head].at > s.ttl {
		delete(s.m, s.q[s.head].key)
		s.head++
	}
	s.compact()
}

// evictOldest drops the oldest live entry to make room.
func (s *Set[K]) evictOldest() {
	if s.head >= len(s.q) {
		return
	}
	delete(s.m, s.q[s.head].key)
	s.head++
	s.compact()
}

// compact reclaims the dead prefix of q once it dominates the slice.
func (s *Set[K]) compact() {
	if s.head > 32 && s.head > len(s.q)/2 {
		s.q = append(s.q[:0], s.q[s.head:]...)
		s.head = 0
	}
}
