package core

import (
	"sync"
	"time"

	"artemis/internal/stats"
)

// MitigationQueue decouples alert handling from the goroutine that raises
// alerts. The detection pipeline's sink commits alerts and dispatches
// handlers inline; before this stage existed, a slow controller southbound
// (a REST call, a bgpd session) stalled the sink and therefore the whole
// ingest path. The queue gives mitigation its own goroutine behind a
// bounded, ordered channel:
//
//   - Ordered: alerts are handled in enqueue order — the order the sink
//     committed them — so mitigation records stay deterministic.
//   - Bounded, explicit backpressure: when the queue is full, Enqueue
//     blocks the caller (no silent dropping; the pipeline's own
//     backpressure then propagates to the feeds). Blocked enqueues are
//     counted so the condition is visible in /metrics.
//   - Drained on Close: alerts already accepted are always handled.
//   - Synchronous mode runs the handler inline on the caller, preserving
//     the virtual-time experiments' semantics (a feed's publish returns
//     only after mitigation is scheduled on the engine clock).
type MitigationQueue struct {
	handler func(Alert)
	cfg     MitigationQueueConfig

	// life guards the enqueue/close race exactly like the pipeline's:
	// enqueuers hold it shared, Close takes it exclusive to flip closed
	// and close the channel.
	life   sync.RWMutex
	closed bool
	ch     chan queuedAlert
	done   chan struct{}

	enqueued, handled, dropped, blocked stats.Counter
	wait, handle                        *stats.Histogram
	failures                            func() int64
}

type queuedAlert struct {
	alert Alert
	at    time.Time
}

// MitigationQueueConfig tunes the queue.
type MitigationQueueConfig struct {
	// Depth bounds the number of waiting alerts before Enqueue blocks
	// (default 64).
	Depth int
	// Synchronous runs the handler inline on the enqueuing goroutine —
	// the pre-queue semantics the virtual-time experiments require.
	Synchronous bool
}

func (c MitigationQueueConfig) withDefaults() MitigationQueueConfig {
	if c.Depth <= 0 {
		c.Depth = 64
	}
	return c
}

// NewMitigationQueue builds the queue over a handler and, unless
// Synchronous, starts its worker goroutine. failures, when non-nil,
// supplies the handler's cumulative failure count for snapshots (the
// Mitigator's counter). Close releases the worker.
func NewMitigationQueue(handler func(Alert), cfg MitigationQueueConfig, failures func() int64) *MitigationQueue {
	cfg = cfg.withDefaults()
	q := &MitigationQueue{
		handler:  handler,
		cfg:      cfg,
		done:     make(chan struct{}),
		wait:     stats.NewHistogram(),
		handle:   stats.NewHistogram(),
		failures: failures,
	}
	if cfg.Synchronous {
		// No queue exists in synchronous mode: ch stays nil (len/cap 0 in
		// snapshots) and there is no worker to wait for.
		close(q.done)
		return q
	}
	q.ch = make(chan queuedAlert, cfg.Depth)
	go q.run()
	return q
}

func (q *MitigationQueue) run() {
	defer close(q.done)
	for item := range q.ch {
		q.wait.Observe(time.Since(item.at))
		start := time.Now()
		q.handler(item.alert)
		q.handle.Observe(time.Since(start))
		q.handled.Inc()
	}
}

// Enqueue hands one alert to the mitigation stage. In synchronous mode
// the handler runs inline; otherwise the alert joins the bounded queue,
// blocking when it is full. Alerts enqueued after Close are dropped (and
// counted), matching the pipeline's submit-after-close behavior.
func (q *MitigationQueue) Enqueue(a Alert) {
	if q.cfg.Synchronous {
		q.life.RLock()
		defer q.life.RUnlock()
		if q.closed {
			q.dropped.Inc()
			return
		}
		q.enqueued.Inc()
		start := time.Now()
		q.handler(a)
		q.handle.Observe(time.Since(start))
		q.handled.Inc()
		return
	}
	q.life.RLock()
	defer q.life.RUnlock()
	if q.closed {
		q.dropped.Inc()
		return
	}
	// Count before the send: the worker may handle the alert before this
	// goroutine runs again, and Handled must never exceed Enqueued.
	q.enqueued.Inc()
	item := queuedAlert{alert: a, at: time.Now()}
	select {
	case q.ch <- item:
	default:
		// Full: block, visibly. The worker keeps draining (it only stops
		// once the channel is closed, and Close waits for our read lock),
		// so this send always completes.
		q.blocked.Inc()
		q.ch <- item
	}
}

// Close stops accepting new alerts, drains everything already accepted
// through the handler, and stops the worker. Idempotent.
func (q *MitigationQueue) Close() {
	q.life.Lock()
	if q.closed {
		q.life.Unlock()
		<-q.done
		return
	}
	q.closed = true
	if !q.cfg.Synchronous {
		close(q.ch)
	}
	q.life.Unlock()
	<-q.done
}

// Depth reports the number of alerts currently waiting.
func (q *MitigationQueue) Depth() int { return len(q.ch) }

// Snapshot reports the stage's counters.
func (q *MitigationQueue) Snapshot() stats.MitigationQueueSnapshot {
	s := stats.MitigationQueueSnapshot{
		Enqueued:    q.enqueued.Load(),
		Handled:     q.handled.Load(),
		Dropped:     q.dropped.Load(),
		Blocked:     q.blocked.Load(),
		QueueLen:    len(q.ch),
		QueueCap:    cap(q.ch),
		Wait:        q.wait.Snapshot(),
		Handle:      q.handle.Snapshot(),
		Synchronous: q.cfg.Synchronous,
	}
	if q.failures != nil {
		s.Failures = q.failures()
	}
	return s
}
