package core

import (
	"sort"
	"sync"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

// Monitor is the monitoring service (§2): it consumes the same feeds as
// the detector and maintains, per vantage point, which origin AS currently
// captures the owned address space — the real-time view of hijack spread
// and mitigation progress that the demo visualizes (§4).
type Monitor struct {
	cfg *Config

	mu      sync.Mutex
	vps     map[bgp.ASN]*vpState
	history []Sample
	cancels []func()
	probes  []prefix.Addr
}

type vpState struct {
	// entries: announced prefix → (origin, last change time) as seen from
	// this vantage point, across all feeds (freshest wins).
	entries *prefix.Trie[vpEntry]
	last    map[prefix.Prefix]time.Duration
}

type vpEntry struct {
	origin bgp.ASN
}

// Sample is one point of the mitigation-progress time series.
type Sample struct {
	Time time.Duration
	// LegitVPs / HijackedVPs / UnknownVPs partition the vantage points:
	// all probes legit / any probe captured by an illegitimate origin /
	// no routing information yet.
	LegitVPs, HijackedVPs, UnknownVPs int
}

// FractionLegit is the share of informed vantage points that route every
// probe to a legitimate origin.
func (s Sample) FractionLegit() float64 {
	informed := s.LegitVPs + s.HijackedVPs
	if informed == 0 {
		return 0
	}
	return float64(s.LegitVPs) / float64(informed)
}

// NewMonitor builds the monitoring service.
func NewMonitor(cfg *Config) *Monitor {
	m := &Monitor{cfg: cfg, vps: make(map[bgp.ASN]*vpState)}
	m.probes = probeAddrs(cfg.OwnedPrefixes)
	return m
}

// probeAddrs picks representative addresses inside the owned space: the
// first address of each /24 (capped at 8 per owned prefix) so sub-prefix
// hijacks of any half are noticed.
func probeAddrs(owned []prefix.Prefix) []prefix.Addr {
	var out []prefix.Addr
	for _, p := range owned {
		bits := p.Bits()
		if bits > 24 {
			out = append(out, p.Addr())
			continue
		}
		subs, err := p.Deaggregate(24)
		if err != nil || len(subs) > 8 {
			// Very large owned block: probe 8 evenly spaced /24s.
			step := (uint64(p.Last()-p.Addr()) + 1) / 8
			for i := 0; i < 8; i++ {
				out = append(out, p.Addr()+prefix.Addr(uint64(i)*step))
			}
			continue
		}
		for _, s := range subs {
			out = append(out, s.Addr())
		}
	}
	return out
}

// Start subscribes the monitor to the sources.
func (m *Monitor) Start(sources ...feedtypes.Source) {
	filter := feedtypes.Filter{Prefixes: m.cfg.OwnedPrefixes, MoreSpecific: true, LessSpecific: true}
	for _, src := range sources {
		cancel := src.Subscribe(filter, m.Process)
		m.mu.Lock()
		m.cancels = append(m.cancels, cancel)
		m.mu.Unlock()
	}
}

// Stop detaches from all sources.
func (m *Monitor) Stop() {
	m.mu.Lock()
	cancels := m.cancels
	m.cancels = nil
	m.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// Process folds one feed event into the per-VP view. Exported for network
// clients that deliver events themselves.
func (m *Monitor) Process(ev feedtypes.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.vps[ev.VantagePoint]
	if st == nil {
		st = &vpState{entries: prefix.NewTrie[vpEntry](), last: make(map[prefix.Prefix]time.Duration)}
		m.vps[ev.VantagePoint] = st
	}
	// Freshest observation wins across sources; a stale LG poll must not
	// roll back a newer streamed update.
	if last, ok := st.last[ev.Prefix]; ok && ev.SeenAt < last {
		return
	}
	st.last[ev.Prefix] = ev.SeenAt
	if ev.Kind == feedtypes.Withdraw {
		st.entries.Delete(ev.Prefix)
	} else if origin, ok := ev.Origin(); ok {
		st.entries.Insert(ev.Prefix, vpEntry{origin: origin})
	}
	m.history = append(m.history, m.sampleLocked(ev.EmittedAt))
}

// ProcessBatch folds a batch of feed events in order. Semantics are
// identical to calling Process per event (one history sample per event),
// so the pipeline's sink and the serial path produce the same series.
func (m *Monitor) ProcessBatch(evs []feedtypes.Event) {
	for i := range evs {
		m.Process(evs[i])
	}
}

// vpVerdict classifies one vantage point right now.
func (m *Monitor) vpVerdict(st *vpState) (legit, informed bool) {
	informed = false
	legit = true
	for _, addr := range m.probes {
		_, e, ok := st.entries.LongestMatch(addr)
		if !ok {
			continue
		}
		informed = true
		if !m.cfg.originLegit(e.origin) {
			legit = false
		}
	}
	return legit && informed, informed
}

func (m *Monitor) sampleLocked(at time.Duration) Sample {
	s := Sample{Time: at}
	for _, st := range m.vps {
		legit, informed := m.vpVerdict(st)
		switch {
		case !informed:
			s.UnknownVPs++
		case legit:
			s.LegitVPs++
		default:
			s.HijackedVPs++
		}
	}
	return s
}

// Snapshot returns the current partition of vantage points.
func (m *Monitor) Snapshot(at time.Duration) Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sampleLocked(at)
}

// History returns the full time series of samples.
func (m *Monitor) History() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Sample(nil), m.history...)
}

// VPOrigins reports, per vantage point, the origin AS serving each probe
// address — the data behind the demo's geographic visualization.
func (m *Monitor) VPOrigins() map[bgp.ASN][]bgp.ASN {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[bgp.ASN][]bgp.ASN, len(m.vps))
	for vp, st := range m.vps {
		origins := make([]bgp.ASN, 0, len(m.probes))
		for _, addr := range m.probes {
			if _, e, ok := st.entries.LongestMatch(addr); ok {
				origins = append(origins, e.origin)
			} else {
				origins = append(origins, 0)
			}
		}
		out[vp] = origins
	}
	return out
}

// VantagePoints lists the VPs the monitor has heard from, sorted.
func (m *Monitor) VantagePoints() []bgp.ASN {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]bgp.ASN, 0, len(m.vps))
	for vp := range m.vps {
		out = append(out, vp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
