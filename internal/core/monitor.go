package core

import (
	"sort"
	"sync"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

// Monitor is the monitoring service (§2): it consumes the same feeds as
// the detector and maintains, per vantage point, which origin AS currently
// captures the owned address space — the real-time view of hijack spread
// and mitigation progress that the demo visualizes (§4).
//
// The partition of vantage points (legit / hijacked / unknown) is
// maintained incrementally: each VP caches a per-probe verdict plus its
// informed/bad counts, and each event recomputes only the probes its
// prefix can affect (an announce or withdraw of P changes a probe's
// longest-prefix match only when P contains the probe address). Folding
// an event is therefore O(affected probes × trie depth) instead of the
// O(VPs × probes) full rescore the pre-incremental sink paid per event —
// Rescore keeps that fold around as the verification oracle.
type Monitor struct {
	cfg *Config

	mu      sync.Mutex
	vps     map[bgp.ASN]*vpState
	history []Sample
	cancels []func()
	probes  []prefix.Addr
	// byAddr indexes probes in ascending address order so the probes a
	// prefix covers resolve with one binary search.
	byAddr []int
	// tally is the running partition, updated as VP verdicts change.
	tally Sample
	// lastAt is the latest event time folded; History uses it to close
	// the series with the final plateau even when the partition has not
	// changed for a long quiet tail.
	lastAt time.Duration
}

// vpVerdictKind is a vantage point's cached classification.
type vpVerdictKind uint8

const (
	vpUnknown vpVerdictKind = iota
	vpLegit
	vpHijacked
)

// probeStatus is a VP's cached view of one probe address.
type probeStatus uint8

const (
	probeUnmatched probeStatus = iota // no announced prefix covers it
	probeLegit                        // covered, legitimate origin
	probeBad                          // covered, illegitimate origin
)

type vpState struct {
	// entries: announced prefix → (origin, last change time) as seen from
	// this vantage point, across all feeds (freshest wins).
	entries *prefix.Trie[vpEntry]
	last    map[prefix.Prefix]time.Duration
	// status caches the per-probe verdict; informed and bad are the counts
	// of matched and illegitimately-originated probes, so the VP's verdict
	// is O(1) to read after an O(affected) update.
	status   []probeStatus
	informed int
	bad      int
}

func (st *vpState) verdict() vpVerdictKind {
	switch {
	case st.informed == 0:
		return vpUnknown
	case st.bad > 0:
		return vpHijacked
	default:
		return vpLegit
	}
}

type vpEntry struct {
	origin bgp.ASN
}

// Sample is one point of the mitigation-progress time series.
type Sample struct {
	Time time.Duration
	// LegitVPs / HijackedVPs / UnknownVPs partition the vantage points:
	// all probes legit / any probe captured by an illegitimate origin /
	// no routing information yet.
	LegitVPs, HijackedVPs, UnknownVPs int
}

// samePartition reports whether two samples carry the same VP partition
// (ignoring time) — the history coalescing criterion.
func (s Sample) samePartition(o Sample) bool {
	return s.LegitVPs == o.LegitVPs && s.HijackedVPs == o.HijackedVPs && s.UnknownVPs == o.UnknownVPs
}

// FractionLegit is the share of informed vantage points that route every
// probe to a legitimate origin.
func (s Sample) FractionLegit() float64 {
	informed := s.LegitVPs + s.HijackedVPs
	if informed == 0 {
		return 0
	}
	return float64(s.LegitVPs) / float64(informed)
}

// NewMonitor builds the monitoring service.
func NewMonitor(cfg *Config) *Monitor {
	m := &Monitor{cfg: cfg, vps: make(map[bgp.ASN]*vpState)}
	m.probes = probeAddrs(cfg.OwnedPrefixes)
	m.byAddr = make([]int, len(m.probes))
	for i := range m.byAddr {
		m.byAddr[i] = i
	}
	sort.Slice(m.byAddr, func(a, b int) bool {
		return m.probes[m.byAddr[a]].Less(m.probes[m.byAddr[b]])
	})
	return m
}

// probeAddrs picks representative addresses inside the owned space: the
// first address of each /24 (v4) or /48 (v6) — the filtering granularities
// — capped at 8 per owned prefix, so sub-prefix hijacks of any slice are
// noticed. Larger owned blocks probe 8 evenly spaced sub-prefix starts.
func probeAddrs(owned []prefix.Prefix) []prefix.Addr {
	var out []prefix.Prefix // reuse Deaggregate; addresses extracted below
	for _, p := range owned {
		probeLen := 24
		if p.Is6() {
			probeLen = 48
		}
		bits := p.Bits()
		if bits > probeLen {
			out = append(out, p)
			continue
		}
		target := probeLen
		if target > bits+3 {
			target = bits + 3 // 8 evenly spaced sub-prefixes
		}
		subs, err := p.Deaggregate(target)
		if err != nil {
			out = append(out, p)
			continue
		}
		out = append(out, subs...)
	}
	addrs := make([]prefix.Addr, len(out))
	for i, s := range out {
		addrs[i] = s.Addr()
	}
	return addrs
}

// SetConfig swaps the monitor to a new configuration snapshot: the probe
// set is rebuilt for the new owned space, every vantage point's cached
// per-probe verdicts are recomputed from its (preserved) routing view, and
// the partition tallies are re-derived. If the partition changes — a VP
// hijacked only on a removed prefix becomes legit, a VP already routing a
// newly added prefix to an attacker becomes hijacked — the history gains a
// change-point at the latest folded event time. Called by the service's
// reconfiguration barrier, i.e. at a fixed serial position in the event
// stream.
func (m *Monitor) SetConfig(next *Config) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cfg = next
	m.probes = probeAddrs(next.OwnedPrefixes)
	m.byAddr = make([]int, len(m.probes))
	for i := range m.byAddr {
		m.byAddr[i] = i
	}
	sort.Slice(m.byAddr, func(a, b int) bool {
		return m.probes[m.byAddr[a]].Less(m.probes[m.byAddr[b]])
	})
	m.tally = Sample{}
	for _, st := range m.vps {
		st.status = make([]probeStatus, len(m.probes))
		st.informed, st.bad = 0, 0
		for idx, addr := range m.probes {
			if pfx, e, ok := st.entries.LongestMatch(addr); ok {
				st.informed++
				if m.cfg.entryLegit(pfx, e.origin) {
					st.status[idx] = probeLegit
				} else {
					st.status[idx] = probeBad
					st.bad++
				}
			}
		}
		m.tallyAdd(st.verdict())
	}
	if len(m.history) > 0 {
		m.coalesceLocked(m.lastAt)
	}
}

// Start subscribes the monitor to the sources.
func (m *Monitor) Start(sources ...feedtypes.Source) {
	m.mu.Lock()
	filter := feedtypes.Filter{Prefixes: m.cfg.OwnedPrefixes, MoreSpecific: true, LessSpecific: true}
	m.mu.Unlock()
	for _, src := range sources {
		cancel := src.Subscribe(filter, m.Process)
		m.mu.Lock()
		m.cancels = append(m.cancels, cancel)
		m.mu.Unlock()
	}
}

// Stop detaches from all sources.
func (m *Monitor) Stop() {
	m.mu.Lock()
	cancels := m.cancels
	m.cancels = nil
	m.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// Process folds one feed event into the per-VP view. Exported for network
// clients that deliver events themselves.
func (m *Monitor) Process(ev feedtypes.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.processLocked(ev)
}

// ProcessBatch folds a batch of feed events in order under one lock
// acquisition — the sink's fast path. Semantics are identical to calling
// Process per event.
func (m *Monitor) ProcessBatch(evs []feedtypes.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range evs {
		m.processLocked(evs[i])
	}
}

func (m *Monitor) processLocked(ev feedtypes.Event) {
	st := m.vps[ev.VantagePoint]
	if st == nil {
		st = &vpState{
			entries: prefix.NewTrie[vpEntry](),
			last:    make(map[prefix.Prefix]time.Duration),
			status:  make([]probeStatus, len(m.probes)),
		}
		m.vps[ev.VantagePoint] = st
		m.tally.UnknownVPs++ // a fresh VP has no routing information yet
	}
	// Freshest observation wins across sources; a stale LG poll must not
	// roll back a newer streamed update.
	if last, ok := st.last[ev.Prefix]; ok && ev.SeenAt < last {
		return
	}
	st.last[ev.Prefix] = ev.SeenAt
	old := st.verdict()
	if ev.Kind == feedtypes.Withdraw {
		st.entries.Delete(ev.Prefix)
	} else if origin, ok := ev.Origin(); ok {
		st.entries.Insert(ev.Prefix, vpEntry{origin: origin})
	} else {
		// Malformed announcement: no trie change, no verdict change.
		m.coalesceLocked(ev.EmittedAt)
		return
	}
	m.rescoreProbesLocked(st, ev.Prefix)
	if now := st.verdict(); now != old {
		m.tallySub(old)
		m.tallyAdd(now)
	}
	m.coalesceLocked(ev.EmittedAt)
}

// rescoreProbesLocked recomputes the cached status of every probe the
// prefix covers for one VP, maintaining the VP's informed/bad counts.
func (m *Monitor) rescoreProbesLocked(st *vpState, p prefix.Prefix) {
	// Probes sort family-first (v4 before v6), so the [lo, hi] window of a
	// prefix only spans probes of its own family.
	lo, hi := p.Addr(), p.Last()
	i := sort.Search(len(m.byAddr), func(i int) bool { return m.probes[m.byAddr[i]].Compare(lo) >= 0 })
	for ; i < len(m.byAddr) && m.probes[m.byAddr[i]].Compare(hi) <= 0; i++ {
		idx := m.byAddr[i]
		var now probeStatus
		if pfx, e, ok := st.entries.LongestMatch(m.probes[idx]); ok {
			if m.cfg.entryLegit(pfx, e.origin) {
				now = probeLegit
			} else {
				now = probeBad
			}
		}
		was := st.status[idx]
		if was == now {
			continue
		}
		if was != probeUnmatched {
			st.informed--
			if was == probeBad {
				st.bad--
			}
		}
		if now != probeUnmatched {
			st.informed++
			if now == probeBad {
				st.bad++
			}
		}
		st.status[idx] = now
	}
}

func (m *Monitor) tallyAdd(v vpVerdictKind) {
	switch v {
	case vpUnknown:
		m.tally.UnknownVPs++
	case vpLegit:
		m.tally.LegitVPs++
	default:
		m.tally.HijackedVPs++
	}
}

func (m *Monitor) tallySub(v vpVerdictKind) {
	switch v {
	case vpUnknown:
		m.tally.UnknownVPs--
	case vpLegit:
		m.tally.LegitVPs--
	default:
		m.tally.HijackedVPs--
	}
}

// coalesceLocked appends a history sample only when the partition changed
// since the previous sample, so repeated events with an unchanged VP
// partition cost zero history growth (History is a change-point series).
func (m *Monitor) coalesceLocked(at time.Duration) {
	if at > m.lastAt {
		m.lastAt = at
	}
	s := m.tally
	s.Time = at
	if n := len(m.history); n > 0 && m.history[n-1].samePartition(s) {
		return
	}
	m.history = append(m.history, s)
}

// Snapshot returns the current partition of vantage points. It reads the
// incrementally maintained tallies: O(1).
func (m *Monitor) Snapshot(at time.Duration) Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.tally
	s.Time = at
	return s
}

// Rescore recomputes the partition from scratch — the O(VPs × probes)
// fold the pre-incremental sink paid on every event. It is the
// verification oracle for the incremental tallies (tests assert
// Rescore == Snapshot) and the baseline side of BenchmarkSinkApply.
func (m *Monitor) Rescore(at time.Duration) Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Sample{Time: at}
	for _, st := range m.vps {
		informed, bad := 0, 0
		for _, addr := range m.probes {
			pfx, e, ok := st.entries.LongestMatch(addr)
			if !ok {
				continue
			}
			informed++
			if !m.cfg.entryLegit(pfx, e.origin) {
				bad++
			}
		}
		switch {
		case informed == 0:
			s.UnknownVPs++
		case bad > 0:
			s.HijackedVPs++
		default:
			s.LegitVPs++
		}
	}
	return s
}

// History returns the time series of partition change-points: one sample
// per event that changed the legit/hijacked/unknown partition (plus the
// initial sample). Events that leave the partition unchanged are
// coalesced into the preceding sample, so the series is bounded by the
// number of state transitions, not the feed volume. When the feed ran
// quietly past the last transition, a closing sample at the latest event
// time repeats the final partition, so time-axis consumers (vis.Timeline,
// E6 plots) keep spanning the whole observation window.
func (m *Monitor) History() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]Sample(nil), m.history...)
	if n := len(out); n > 0 && m.lastAt > out[n-1].Time {
		closing := m.tally
		closing.Time = m.lastAt
		out = append(out, closing)
	}
	return out
}

// VPOrigins reports, per vantage point, the origin AS serving each probe
// address — the data behind the demo's geographic visualization.
func (m *Monitor) VPOrigins() map[bgp.ASN][]bgp.ASN {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[bgp.ASN][]bgp.ASN, len(m.vps))
	for vp, st := range m.vps {
		origins := make([]bgp.ASN, 0, len(m.probes))
		for _, addr := range m.probes {
			if _, e, ok := st.entries.LongestMatch(addr); ok {
				origins = append(origins, e.origin)
			} else {
				origins = append(origins, 0)
			}
		}
		out[vp] = origins
	}
	return out
}

// VantagePoints lists the VPs the monitor has heard from, sorted.
func (m *Monitor) VantagePoints() []bgp.ASN {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]bgp.ASN, 0, len(m.vps))
	for vp := range m.vps {
		out = append(out, vp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
