package core

import (
	"fmt"
	"sync"
	"time"

	"artemis/internal/prefix"
	"artemis/internal/stats"
)

// TenantPolicy is one tenant's slice of a shared detection pipeline: a
// named config scope (owned prefixes, legitimate origins, neighbor and
// mitigation policy) plus the per-tenant service objects classification
// results land in. The hosted deployment shape: one pipeline, one feed
// union, N tenants — per-tenant policy is a scoped overlay on a single
// data path, not N copies of it.
type TenantPolicy struct {
	// Name identifies the tenant in alerts, metrics and the control plane.
	// A single-tenant pipeline may leave it empty.
	Name string
	// Config is the tenant's immutable config snapshot.
	Config *Config
	// Detector receives the tenant's classification results (tallies,
	// alert commit, dedup, handlers). Required.
	Detector *Detector
	// Monitor, when non-nil, is folded with the tenant's matched events.
	Monitor *Monitor
	// Runtime carries mutable per-tenant state (counters, quota buckets)
	// across table swaps. Nil builds a fresh one.
	Runtime *TenantRuntime
}

// TenantRuntime is the mutable per-tenant state that survives policy-table
// swaps: counters the metrics endpoint reads and the classification-quota
// token bucket. One TenantRuntime must be shared by every snapshot of the
// same logical tenant, or quota state would reset on each reconfiguration.
type TenantRuntime struct {
	events     stats.Counter
	quotaDrops stats.Counter

	// The classification-quota token bucket, clocked by event time (like
	// the ttlset dedup windows) so it is deterministic under the
	// virtual-time experiments and needs no wall clock on the hot path.
	quotaMu sync.Mutex
	tokens  float64
	lastAt  time.Duration
	seeded  bool
}

// Events reports how many matched events were routed to the tenant.
func (rt *TenantRuntime) Events() int64 { return rt.events.Load() }

// QuotaDrops reports how many (event, tenant) classifications the
// tenant's MaxEventsPerSecond quota shed.
func (rt *TenantRuntime) QuotaDrops() int64 { return rt.quotaDrops.Load() }

// allow spends one token from the tenant's event-time bucket. The bucket
// holds at most one second's allowance (burst = perSec) and starts full at
// the first observed event time. Event times can regress across sources;
// the bucket only ever advances.
func (rt *TenantRuntime) allow(now time.Duration, perSec int) bool {
	rt.quotaMu.Lock()
	defer rt.quotaMu.Unlock()
	if !rt.seeded {
		rt.seeded = true
		rt.lastAt = now
		rt.tokens = float64(perSec)
	}
	if now > rt.lastAt {
		rt.tokens += (now - rt.lastAt).Seconds() * float64(perSec)
		if max := float64(perSec); rt.tokens > max {
			rt.tokens = max
		}
		rt.lastAt = now
	}
	if rt.tokens >= 1 {
		rt.tokens--
		return true
	}
	return false
}

// ownedRef locates one owned prefix: whose it is (tenant index in the
// table) and where it sits in that tenant's Config.OwnedPrefixes.
type ownedRef struct {
	tenant   int32
	ownedIdx int32
}

// tableEntry is one tenant's resolved slot in a PolicyTable.
type tableEntry struct {
	name string
	cfg  *Config
	det  *Detector
	mon  *Monitor
	rt   *TenantRuntime
}

// PolicyTable is the immutable multi-tenant routing and classification
// snapshot the pipeline routes batches under: a shared dual-stack trie
// mapping each owned prefix to the set of tenants that own it, plus the
// per-tenant (config, detector, monitor) triples. Reconfiguration swaps
// whole tables at a sink barrier, exactly like single-tenant config
// snapshots — a batch in flight never mixes two tables.
type PolicyTable struct {
	entries []tableEntry
	trie    *prefix.Trie[[]ownedRef]
	// quotas is true when any tenant enforces MaxEventsPerSecond; the
	// router then skips the equal-prefix run sharing (quota decisions are
	// per event, not per prefix).
	quotas bool
	// onQuotaDrop, when set, is invoked on the sink goroutine with each
	// batch's per-tenant quota-drop tally (only for tenants that dropped),
	// so hosts can surface drops as events instead of silent counters.
	onQuotaDrop func(tenant string, n int64)
}

// NewPolicyTable validates and assembles a table. Tenant names must be
// unique; each tenant's config must validate on its own. Tenants may own
// overlapping or identical prefixes — the router fans matching events out
// to every owner, each classified under its own policy.
func NewPolicyTable(tenants []TenantPolicy) (*PolicyTable, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("core: policy table needs at least one tenant")
	}
	t := &PolicyTable{trie: prefix.NewTrie[[]ownedRef]()}
	seen := make(map[string]bool, len(tenants))
	for ti, tp := range tenants {
		if tp.Detector == nil {
			return nil, fmt.Errorf("core: tenant %q has no detector", tp.Name)
		}
		if tp.Config == nil {
			return nil, fmt.Errorf("core: tenant %q has no config", tp.Name)
		}
		if err := tp.Config.Validate(); err != nil {
			return nil, fmt.Errorf("core: tenant %q: %w", tp.Name, err)
		}
		if seen[tp.Name] {
			return nil, fmt.Errorf("core: duplicate tenant name %q", tp.Name)
		}
		seen[tp.Name] = true
		rt := tp.Runtime
		if rt == nil {
			rt = &TenantRuntime{}
		}
		t.entries = append(t.entries, tableEntry{
			name: tp.Name, cfg: tp.Config, det: tp.Detector, mon: tp.Monitor, rt: rt,
		})
		if tp.Config.MaxEventsPerSecond > 0 {
			t.quotas = true
		}
		for oi, o := range tp.Config.OwnedPrefixes {
			t.addOwned(o, ownedRef{tenant: int32(ti), ownedIdx: int32(oi)})
		}
	}
	return t, nil
}

// addOwned registers one owned prefix in the shared trie. A tenant listing
// the same prefix twice keeps the last config entry (the single-tenant
// router's Insert-replace semantics); distinct tenants accumulate.
func (t *PolicyTable) addOwned(o prefix.Prefix, ref ownedRef) {
	refs, _ := t.trie.Get(o)
	for i := range refs {
		if refs[i].tenant == ref.tenant {
			refs[i] = ref
			t.trie.Insert(o, refs)
			return
		}
	}
	t.trie.Insert(o, append(refs, ref))
}

// newSingleTable wraps one (config, detector, monitor) triple in an
// unchecked table — NewPipeline's compatibility path, which must accept
// any config its Detector accepted (including ones Validate would refuse,
// e.g. intermediate states in tests). rt == nil builds a fresh runtime.
func newSingleTable(cfg *Config, det *Detector, mon *Monitor, rt *TenantRuntime) *PolicyTable {
	if rt == nil {
		rt = &TenantRuntime{}
	}
	t := &PolicyTable{
		entries: []tableEntry{{cfg: cfg, det: det, mon: mon, rt: rt}},
		trie:    prefix.NewTrie[[]ownedRef](),
		quotas:  cfg.MaxEventsPerSecond > 0,
	}
	for oi, o := range cfg.OwnedPrefixes {
		t.addOwned(o, ownedRef{tenant: 0, ownedIdx: int32(oi)})
	}
	return t
}

// WithConfig derives the next table from t with tenant i's config replaced
// by next: every tenant's detector, monitor and runtime (and the
// quota-drop callback) carries over, and the shared trie is rebuilt. This
// is Pipeline.Reconfigure's path — retune one tenant without touching the
// others.
func (t *PolicyTable) WithConfig(i int, next *Config) *PolicyTable {
	nt := &PolicyTable{
		entries:     append([]tableEntry(nil), t.entries...),
		trie:        prefix.NewTrie[[]ownedRef](),
		onQuotaDrop: t.onQuotaDrop,
	}
	nt.entries[i].cfg = next
	for ti := range nt.entries {
		e := &nt.entries[ti]
		if e.cfg.MaxEventsPerSecond > 0 {
			nt.quotas = true
		}
		for oi, o := range e.cfg.OwnedPrefixes {
			nt.addOwned(o, ownedRef{tenant: int32(ti), ownedIdx: int32(oi)})
		}
	}
	return nt
}

// OnQuotaDrop registers fn to receive per-batch quota-drop tallies on the
// sink goroutine. fn must not block (it runs on the apply path) and must
// not submit to the same pipeline.
func (t *PolicyTable) OnQuotaDrop(fn func(tenant string, n int64)) { t.onQuotaDrop = fn }

// Tenants returns the table's tenant names, in table order.
func (t *PolicyTable) Tenants() []string {
	names := make([]string, len(t.entries))
	for i, e := range t.entries {
		names[i] = e.name
	}
	return names
}

// Runtime returns the named tenant's persistent runtime state (to carry
// into the next table snapshot, and for metrics).
func (t *PolicyTable) Runtime(name string) *TenantRuntime {
	for i := range t.entries {
		if t.entries[i].name == name {
			return t.entries[i].rt
		}
	}
	return nil
}

// single reports whether the table degenerates to the classic one-tenant
// pipeline, whose exact observable behavior (monitor folds every submitted
// event, unmatched announcements still tally per source) is preserved.
func (t *PolicyTable) single() bool { return len(t.entries) == 1 }

// UnionFilter is the feed subscription covering every tenant's owned
// space, both directions — the shared deployment subscribes once for all
// tenants and fans matched events out per tenant inside the pipeline.
func (t *PolicyTable) UnionFilter() []prefix.Prefix {
	var all []prefix.Prefix
	for _, e := range t.entries {
		all = append(all, e.cfg.OwnedPrefixes...)
	}
	return all
}
