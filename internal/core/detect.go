package core

import (
	"fmt"
	"sync"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

// AlertType classifies a detected hijack.
type AlertType uint8

const (
	// AlertExactOrigin: the owned prefix announced with a wrong origin.
	AlertExactOrigin AlertType = iota + 1
	// AlertSubPrefix: a more-specific slice of owned space announced by an
	// illegitimate origin — the most damaging variant (wins LPM).
	AlertSubPrefix
	// AlertSquat: a covering super-prefix announced by an illegitimate
	// origin; it captures traffic wherever the owned route is not known.
	AlertSquat
	// AlertPathAnomaly: origin looks legitimate but the adjacent upstream
	// in the path is not an allowed neighbor (Type-1 hijack).
	AlertPathAnomaly
)

func (t AlertType) String() string {
	switch t {
	case AlertExactOrigin:
		return "exact-origin"
	case AlertSubPrefix:
		return "sub-prefix"
	case AlertSquat:
		return "squat"
	case AlertPathAnomaly:
		return "path-anomaly"
	}
	return fmt.Sprintf("AlertType(%d)", uint8(t))
}

// Alert is one detected hijack incident (deduplicated across feeds and
// vantage points).
type Alert struct {
	Type AlertType
	// Prefix is the offending announcement's prefix.
	Prefix prefix.Prefix
	// Owned is the protected prefix it collides with.
	Owned prefix.Prefix
	// Origin is the illegitimate origin AS (for path anomalies, the AS
	// spliced next to the legitimate origin).
	Origin bgp.ASN
	// Evidence is the first feed event that triggered the alert.
	Evidence feedtypes.Event
	// DetectedAt is when ARTEMIS learned of it — the evidence's emission
	// time (feed latency included).
	DetectedAt time.Duration
}

// Key identifies the incident for deduplication.
func (a Alert) Key() string {
	return fmt.Sprintf("%d|%s|%d", a.Type, a.Prefix, uint32(a.Origin))
}

// Detector is the detection service: it subscribes to every configured
// source and raises deduplicated alerts.
type Detector struct {
	cfg *Config

	mu       sync.Mutex
	seen     map[string]bool
	alerts   []Alert
	handlers []func(Alert)
	cancels  []func()
	// perSource counts matching events per source name (diagnostics and
	// the E2 per-source experiment).
	perSource map[string]int
}

// NewDetector builds the service; call Start to attach sources.
func NewDetector(cfg *Config) *Detector {
	return &Detector{cfg: cfg, seen: make(map[string]bool), perSource: make(map[string]int)}
}

// OnAlert registers a handler invoked synchronously for each new alert.
func (d *Detector) OnAlert(fn func(Alert)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.handlers = append(d.handlers, fn)
}

// Start subscribes to the sources with a filter covering the owned space
// in both directions (sub- and super-prefixes).
func (d *Detector) Start(sources ...feedtypes.Source) {
	filter := feedtypes.Filter{
		Prefixes:     d.cfg.OwnedPrefixes,
		MoreSpecific: true,
		LessSpecific: true,
	}
	for _, src := range sources {
		cancel := src.Subscribe(filter, d.Process)
		d.mu.Lock()
		d.cancels = append(d.cancels, cancel)
		d.mu.Unlock()
	}
}

// Stop detaches from all sources.
func (d *Detector) Stop() {
	d.mu.Lock()
	cancels := d.cancels
	d.cancels = nil
	d.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// Process classifies one feed event. It is exported so network clients
// (which deliver events on their own goroutines) can push into the
// detector directly.
func (d *Detector) Process(ev feedtypes.Event) {
	if ev.Kind != feedtypes.Announce {
		return // withdrawals never signal a hijack by themselves
	}
	origin, ok := ev.Origin()
	if !ok {
		return
	}
	d.mu.Lock()
	d.perSource[ev.Source]++
	d.mu.Unlock()

	owned, rel, ok := d.cfg.matchOwned(ev.Prefix)
	if !ok {
		return
	}
	var alert Alert
	if d.cfg.originLegit(origin) {
		// Origin fine; check the adjacent upstream when a policy exists.
		// Path[len-1] is the origin; Path[len-2] its neighbor. A path of
		// length 1 is the origin's own vantage point — nothing to check.
		if len(ev.Path) < 2 {
			return
		}
		upstream := ev.Path[len(ev.Path)-2]
		if d.cfg.upstreamAllowed(origin, upstream) {
			return
		}
		alert = Alert{Type: AlertPathAnomaly, Prefix: ev.Prefix, Owned: owned, Origin: upstream}
	} else {
		alert = Alert{Type: rel, Prefix: ev.Prefix, Owned: owned, Origin: origin}
	}
	alert.Evidence = ev
	alert.DetectedAt = ev.EmittedAt

	d.mu.Lock()
	if d.seen[alert.Key()] {
		d.mu.Unlock()
		return
	}
	d.seen[alert.Key()] = true
	d.alerts = append(d.alerts, alert)
	handlers := make([]func(Alert), len(d.handlers))
	copy(handlers, d.handlers)
	d.mu.Unlock()
	for _, fn := range handlers {
		fn(alert)
	}
}

// Alerts returns all alerts raised so far.
func (d *Detector) Alerts() []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Alert(nil), d.alerts...)
}

// EventsBySource reports how many matching events each source delivered.
func (d *Detector) EventsBySource() map[string]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int, len(d.perSource))
	for k, v := range d.perSource {
		out[k] = v
	}
	return out
}
