package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
	"artemis/internal/rpki"
	"artemis/internal/ttlset"
)

// AlertType classifies a detected hijack.
type AlertType uint8

const (
	// AlertExactOrigin: the owned prefix announced with a wrong origin.
	AlertExactOrigin AlertType = iota + 1
	// AlertSubPrefix: a more-specific slice of owned space announced by an
	// illegitimate origin — the most damaging variant (wins LPM).
	AlertSubPrefix
	// AlertSquat: a covering super-prefix announced by an illegitimate
	// origin; it captures traffic wherever the owned route is not known.
	AlertSquat
	// AlertPathAnomaly: origin looks legitimate but the adjacent upstream
	// in the path is not an allowed neighbor (Type-1 hijack).
	AlertPathAnomaly
)

func (t AlertType) String() string {
	switch t {
	case AlertExactOrigin:
		return "exact-origin"
	case AlertSubPrefix:
		return "sub-prefix"
	case AlertSquat:
		return "squat"
	case AlertPathAnomaly:
		return "path-anomaly"
	}
	return fmt.Sprintf("AlertType(%d)", uint8(t))
}

// Alert is one detected hijack incident (deduplicated across feeds and
// vantage points).
type Alert struct {
	Type AlertType
	// Prefix is the offending announcement's prefix.
	Prefix prefix.Prefix
	// Owned is the protected prefix it collides with.
	Owned prefix.Prefix
	// Origin is the illegitimate origin AS (for path anomalies, the AS
	// spliced next to the legitimate origin).
	Origin bgp.ASN
	// RPKI is the origin-validation verdict for the offending announcement
	// ("invalid" or "unknown"), empty when no ROA table is configured or
	// the alert is a path anomaly (whose origin is legitimate — RPKI has
	// nothing to say about the spliced upstream).
	RPKI string
	// Evidence is the first feed event that triggered the alert.
	Evidence feedtypes.Event
	// DetectedAt is when ARTEMIS learned of it — the evidence's emission
	// time (feed latency included).
	DetectedAt time.Duration
}

// Key identifies the incident as a string, for consumers that key
// external state by incident (mitigation retries, REST clients). The hot
// path's dedup uses the comparable incidentKey instead — building this
// string per event was once the single largest allocation source in the
// whole pipeline.
func (a Alert) Key() string {
	return fmt.Sprintf("%d|%s|%d", a.Type, a.Prefix, uint32(a.Origin))
}

// incidentKey is Alert.Key as a comparable struct: same identity
// (type, prefix, origin), zero allocations to construct or look up.
type incidentKey struct {
	typ    AlertType
	prefix prefix.Prefix
	origin bgp.ASN
}

func (a *Alert) incident() incidentKey {
	return incidentKey{typ: a.Type, prefix: a.Prefix, origin: a.Origin}
}

// Detector is the detection service: it subscribes to every configured
// source and raises deduplicated alerts.
type Detector struct {
	// cfg is the active configuration. It is an atomic pointer so the
	// serial Process path can be reconfigured at runtime without locking
	// the classification hot path; the pipeline instead stamps each batch
	// with the config it was routed under (see Pipeline.Reconfigure for
	// the serial-equivalence argument).
	cfg atomic.Pointer[Config]

	mu sync.Mutex
	// seen deduplicates incidents. With the default config it keeps every
	// incident forever (the experiments' semantics); Config.AlertDedupTTL
	// and AlertDedupMax bound it for long-running daemons, at which point
	// a recurring hijack re-alerts once per TTL window.
	seen     *ttlset.Set[incidentKey]
	alerts   []Alert
	handlers []func(Alert)
	cancels  []func()
	// perSource counts matching events per source name (diagnostics and
	// the E2 per-source experiment). Cardinality is bounded: beyond
	// maxTrackedSources distinct names, counts fold into "other".
	perSource map[string]int
}

// maxTrackedSources caps the per-source diagnostics map so a daemon fed
// by a misbehaving feed (unique source strings per event) cannot grow it
// without bound.
const maxTrackedSources = 64

// otherSources is the overflow bucket once maxTrackedSources is reached.
const otherSources = "other"

// NewDetector builds the service; call Start to attach sources.
func NewDetector(cfg *Config) *Detector {
	d := &Detector{
		seen:      ttlset.New[incidentKey](cfg.AlertDedupTTL, cfg.AlertDedupMax),
		perSource: make(map[string]int),
	}
	d.cfg.Store(cfg)
	return d
}

// Config returns the active configuration snapshot. Treat it as
// immutable: reconfiguration installs a new snapshot instead of mutating
// the current one.
func (d *Detector) Config() *Config { return d.cfg.Load() }

// setConfig installs a new configuration snapshot. The alert dedup set
// carries over (an incident seen under the old config stays deduplicated)
// and is retuned to the snapshot's TTL/size bounds: a shrunk window
// expires or evicts immediately, a grown one extends the life of what is
// already in the set.
func (d *Detector) setConfig(next *Config) {
	d.cfg.Store(next)
	d.mu.Lock()
	d.seen.SetBounds(next.AlertDedupTTL, next.AlertDedupMax)
	d.mu.Unlock()
}

// OnAlert registers a handler invoked synchronously for each new alert.
func (d *Detector) OnAlert(fn func(Alert)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.handlers = append(d.handlers, fn)
}

// Start subscribes to the sources with a filter covering the owned space
// in both directions (sub- and super-prefixes).
func (d *Detector) Start(sources ...feedtypes.Source) {
	filter := feedtypes.Filter{
		Prefixes:     d.Config().OwnedPrefixes,
		MoreSpecific: true,
		LessSpecific: true,
	}
	for _, src := range sources {
		cancel := src.Subscribe(filter, d.Process)
		d.mu.Lock()
		d.cancels = append(d.cancels, cancel)
		d.mu.Unlock()
	}
}

// Stop detaches from all sources.
func (d *Detector) Stop() {
	d.mu.Lock()
	cancels := d.cancels
	d.cancels = nil
	d.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// classify is the pure (stateless, lock-free) detection stage: it decides
// whether one feed event evidences a hijack of the owned space. counted
// reports whether the event is a well-formed announcement (the per-source
// diagnostics counter's criterion); isAlert reports whether alert carries
// a hijack candidate. This serial form resolves the owned-space match with
// a linear scan; the pipeline resolves it once per event during shard
// routing (trie LPM) and calls classifyRouted directly.
func (c *Config) classify(ev *feedtypes.Event) (alert Alert, counted, isAlert bool) {
	if ev.Kind != feedtypes.Announce {
		return Alert{}, false, false // withdrawals never signal a hijack by themselves
	}
	owned, rel, _ := c.matchOwned(ev.Prefix) // rel is 0 when nothing collides
	return c.classifyRouted(ev, owned, rel)
}

// classifyRouted is classify with the owned-space match already resolved
// (rel == 0 means "no collision"). The pipeline's router finds the owned
// prefix once per event via the prefix trie — a single LPM walk instead of
// the serial path's linear scan over every owned prefix — and shards reuse
// that answer here, so the expensive half of classification is not
// repeated. For disjoint owned prefixes (the operational norm) the result
// is identical to classify; with nested owned prefixes the router resolves
// the overlap by specificity where the linear scan uses config order.
func (c *Config) classifyRouted(ev *feedtypes.Event, owned prefix.Prefix, rel AlertType) (alert Alert, counted, isAlert bool) {
	if ev.Kind != feedtypes.Announce {
		return Alert{}, false, false
	}
	origin, ok := ev.Origin()
	if !ok {
		return Alert{}, false, false
	}
	counted = true
	if rel == 0 {
		return Alert{}, counted, false
	}
	if c.originLegit(origin) {
		// A more-specific announcement of owned space that we did not make
		// ourselves is a hijack regardless of the claimed origin: the
		// operator knows exactly what it announces (§2), and an attacker
		// can put the legitimate origin at the tail of a forged path — the
		// "hidden" sub-prefix hijack. Owned prefixes themselves and
		// registered self-announcements (mitigation de-aggregations coming
		// back through the feeds) are expected; everything else alerts. No
		// RPKI fast-reject here: a ROA covering the origin says nothing
		// when the origin itself is forged.
		if rel == AlertSubPrefix && !c.expectedAnnouncement(ev.Prefix) {
			alert = Alert{Type: AlertSubPrefix, Prefix: ev.Prefix, Owned: owned, Origin: origin}
			alert.Evidence = *ev
			alert.DetectedAt = ev.EmittedAt
			return alert, counted, true
		}
		// Origin fine; check the adjacent upstream when a policy exists.
		// Path[len-1] is the origin, but origins routinely prepend
		// themselves for traffic engineering (…, upstream, origin,
		// origin), so the true upstream is the last hop before the run of
		// origin copies — naively taking Path[len-2] would flag the origin
		// as its own disallowed neighbor. A path that is only the origin
		// (prepended or not) is its own vantage point — nothing to check.
		up := len(ev.Path) - 2
		for up >= 0 && ev.Path[up] == origin {
			up--
		}
		if up < 0 {
			return Alert{}, counted, false
		}
		upstream := ev.Path[up]
		if c.upstreamAllowed(origin, upstream) {
			return Alert{}, counted, false
		}
		alert = Alert{Type: AlertPathAnomaly, Prefix: ev.Prefix, Owned: owned, Origin: upstream}
	} else {
		verdict := ""
		if c.RPKI != nil {
			// Origin validation runs only on the rare alert-raising path,
			// so the allocation-free hot path is untouched; the verdict
			// strings are constants.
			switch c.RPKI.Validate(ev.Prefix, origin) {
			case rpki.Valid:
				// A ROA authorizes this (origin, prefix): not an origin
				// hijack, whatever the local origin list says. Fast-reject
				// before any alert bookkeeping.
				return Alert{}, counted, false
			case rpki.Invalid:
				verdict = rpki.Invalid.String()
			default:
				verdict = rpki.NotFound.String()
			}
		}
		alert = Alert{Type: rel, Prefix: ev.Prefix, Owned: owned, Origin: origin, RPKI: verdict}
	}
	alert.Evidence = *ev
	alert.DetectedAt = ev.EmittedAt
	return alert, counted, true
}

// commit deduplicates a classified alert and dispatches handlers. It is
// the serialized stage: whatever goroutine runs it (callers of Process, or
// the pipeline's sink) sees alerts in a single total order.
func (d *Detector) commit(alert Alert) {
	d.mu.Lock()
	if !d.seen.Add(alert.incident(), alert.DetectedAt) {
		d.mu.Unlock()
		return
	}
	// Fresh incident (rare): the evidence's Path still aliases the
	// submitting batch's pooled arena, and the alert log outlives it.
	if len(alert.Evidence.Path) > 0 {
		alert.Evidence.Path = append([]bgp.ASN(nil), alert.Evidence.Path...)
	}
	d.alerts = append(d.alerts, alert)
	handlers := make([]func(Alert), len(d.handlers))
	copy(handlers, d.handlers)
	d.mu.Unlock()
	for _, fn := range handlers {
		fn(alert)
	}
}

// addSourceCount folds one source's event count into the diagnostics
// counter — the pipeline's sink calls it per (tenant, source) tally entry,
// so the allocation-free path needs no maps.
func (d *Detector) addSourceCount(src string, n int) {
	d.mu.Lock()
	d.perSource[d.sourceBucketLocked(src)] += n
	d.mu.Unlock()
}

// sourceBucketLocked maps a source name to its counter key, folding new
// names into the overflow bucket once the map is at capacity.
func (d *Detector) sourceBucketLocked(src string) string {
	if _, ok := d.perSource[src]; ok || len(d.perSource) < maxTrackedSources {
		return src
	}
	return otherSources
}

// Process classifies one feed event. It is exported so network clients
// (which deliver events on their own goroutines) can push into the
// detector directly.
func (d *Detector) Process(ev feedtypes.Event) {
	alert, counted, isAlert := d.Config().classify(&ev)
	if counted {
		d.mu.Lock()
		d.perSource[d.sourceBucketLocked(ev.Source)]++
		d.mu.Unlock()
	}
	if isAlert {
		d.commit(alert)
	}
}

// ProcessBatch classifies a batch of feed events in order on the calling
// goroutine — the serial reference path the sharded pipeline is measured
// against (and the fallback for consumers that don't need one).
func (d *Detector) ProcessBatch(evs []feedtypes.Event) {
	for i := range evs {
		d.Process(evs[i])
	}
}

// Alerts returns all alerts raised so far.
func (d *Detector) Alerts() []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Alert(nil), d.alerts...)
}

// AlertCount reports the number of alerts raised so far without copying
// them — the metrics-scrape path.
func (d *Detector) AlertCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.alerts)
}

// DedupSize reports how many incidents the dedup set currently holds —
// with AlertDedupTTL/AlertDedupMax configured it is bounded, and the
// metrics endpoint exposes it so operators can verify that.
func (d *Detector) DedupSize() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seen.Len()
}

// EventsBySource reports how many matching events each source delivered.
func (d *Detector) EventsBySource() map[string]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int, len(d.perSource))
	for k, v := range d.perSource {
		out[k] = v
	}
	return out
}
