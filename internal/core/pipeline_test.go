package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

// multiOwnedConfig spreads ownership over several prefixes so sharding has
// something to key on.
func multiOwnedConfig() *Config {
	return &Config{
		OwnedPrefixes: []prefix.Prefix{
			prefix.MustParse("10.0.0.0/23"),
			prefix.MustParse("10.1.0.0/22"),
			prefix.MustParse("192.0.2.0/24"),
			prefix.MustParse("198.51.100.0/24"),
			prefix.MustParse("203.0.113.0/24"),
		},
		LegitOrigins: []bgp.ASN{61000},
	}
}

func TestPipelineShardRouting(t *testing.T) {
	cfg := multiOwnedConfig()
	p := NewPipeline(NewDetector(cfg), nil, PipelineConfig{Shards: 3})
	defer p.Close()

	// Deterministic: the same prefix always routes to the same shard.
	for _, s := range []string{"10.0.0.0/23", "10.0.1.0/24", "10.1.2.0/24", "10.0.0.0/8", "172.16.0.0/12"} {
		pfx := prefix.MustParse(s)
		want := p.shardFor(pfx)
		for i := 0; i < 10; i++ {
			if got := p.shardFor(pfx); got != want {
				t.Fatalf("shardFor(%s) flapped: %d then %d", s, want, got)
			}
		}
	}
	// Everything under one owned prefix shares that prefix's shard.
	ownedShard := p.shardFor(prefix.MustParse("10.0.0.0/23"))
	for _, s := range []string{"10.0.0.0/24", "10.0.1.0/24", "10.0.0.128/25", "10.0.1.192/26"} {
		if got := p.shardFor(prefix.MustParse(s)); got != ownedShard {
			t.Errorf("shardFor(%s) = %d, want owned prefix's shard %d", s, got, ownedShard)
		}
	}
	// A covering super-prefix (squat evidence) routes to a shard of some
	// owned prefix it covers — stably.
	super := prefix.MustParse("10.0.0.0/15")
	if got := p.shardFor(super); got != p.shardFor(super) {
		t.Errorf("super-prefix routing unstable")
	}
}

// mixedEvents builds a deterministic stream touching every classification
// branch: benign announcements, exact/sub/squat hijacks, withdrawals, and
// unrelated prefixes.
func mixedEvents(n int) []feedtypes.Event {
	sources := []string{"ris", "bgpmon", "periscope"}
	evs := make([]feedtypes.Event, 0, n)
	for i := 0; i < n; i++ {
		vp := bgp.ASN(100 + i%7)
		at := time.Duration(i) * time.Millisecond
		ev := feedtypes.Event{
			Source:       sources[i%len(sources)],
			Collector:    "c0",
			VantagePoint: vp,
			Kind:         feedtypes.Announce,
			SeenAt:       at,
			EmittedAt:    at,
		}
		switch i % 11 {
		case 0: // benign: owned prefix from the legit origin
			ev.Prefix = prefix.MustParse("10.0.0.0/23")
			ev.Path = []bgp.ASN{vp, 1001, 61000}
		case 1: // exact-origin hijack
			ev.Prefix = prefix.MustParse("10.1.0.0/22")
			ev.Path = []bgp.ASN{vp, 1001, bgp.ASN(660 + i%5)}
		case 2: // sub-prefix hijack
			ev.Prefix = prefix.MustParse("10.0.1.0/24")
			ev.Path = []bgp.ASN{vp, 1002, bgp.ASN(660 + i%5)}
		case 3: // squat
			ev.Prefix = prefix.MustParse("192.0.0.0/16")
			ev.Path = []bgp.ASN{vp, 1003, bgp.ASN(660 + i%5)}
		case 4: // withdrawal — detector ignores, monitor folds
			ev.Kind = feedtypes.Withdraw
			ev.Prefix = prefix.MustParse("10.0.0.0/23")
		default: // unrelated prefixes
			ev.Prefix = prefix.New(prefix.AddrFrom4(uint32(172<<24)|uint32(i)<<8), 24)
			ev.Path = []bgp.ASN{vp, 2000, bgp.ASN(3000 + i%17)}
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestPipelineMatchesSerial is the equivalence oracle: the pipeline must
// produce exactly the serial path's alerts, per-source counters, and
// monitor state for the same ordered stream.
func TestPipelineMatchesSerial(t *testing.T) {
	evs := mixedEvents(500)

	serialDet := NewDetector(multiOwnedConfig())
	serialMon := NewMonitor(multiOwnedConfig())
	for _, ev := range evs {
		serialDet.Process(ev)
		serialMon.Process(ev)
	}

	pipeDet := NewDetector(multiOwnedConfig())
	pipeMon := NewMonitor(multiOwnedConfig())
	p := NewPipeline(pipeDet, pipeMon, PipelineConfig{Shards: 4, QueueDepth: 8})
	for i := 0; i < len(evs); i += 37 { // uneven batch boundaries
		end := min(i+37, len(evs))
		p.SubmitWait(evs[i:end])
	}
	p.Close()

	if got, want := pipeDet.Alerts(), serialDet.Alerts(); !reflect.DeepEqual(got, want) {
		t.Errorf("alerts diverge:\n pipeline %+v\n serial   %+v", got, want)
	}
	if got, want := pipeDet.EventsBySource(), serialDet.EventsBySource(); !reflect.DeepEqual(got, want) {
		t.Errorf("per-source counts diverge: pipeline %v serial %v", got, want)
	}
	if got, want := pipeMon.History(), serialMon.History(); !reflect.DeepEqual(got, want) {
		t.Errorf("monitor history diverges: %d vs %d samples", len(got), len(want))
	}
	if got, want := pipeMon.VPOrigins(), serialMon.VPOrigins(); !reflect.DeepEqual(got, want) {
		t.Errorf("VP origins diverge: pipeline %v serial %v", got, want)
	}
}

// TestPipelineAlertHandlerOrder checks that handlers fire on the sink in
// submission order, first occurrence only (dedup), exactly as serially.
func TestPipelineAlertHandlerOrder(t *testing.T) {
	det := NewDetector(multiOwnedConfig())
	var mu sync.Mutex
	var order []string
	det.OnAlert(func(a Alert) {
		mu.Lock()
		order = append(order, a.Key())
		mu.Unlock()
	})
	p := NewPipeline(det, nil, PipelineConfig{Shards: 4})

	mk := func(pfx string, origin bgp.ASN) feedtypes.Event {
		return feedtypes.Event{
			Source: "ris", VantagePoint: 1, Kind: feedtypes.Announce,
			Prefix: prefix.MustParse(pfx), Path: []bgp.ASN{1, origin},
		}
	}
	batch := []feedtypes.Event{
		mk("10.0.0.0/23", 666),  // alert 1
		mk("10.1.0.0/22", 777),  // alert 2
		mk("10.0.0.0/23", 666),  // dup of 1
		mk("192.0.2.0/24", 888), // alert 3
	}
	p.SubmitWait(batch)
	p.SubmitWait(batch) // all dups now
	p.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 {
		t.Fatalf("handler fired %d times, want 3: %v", len(order), order)
	}
	want := []string{
		Alert{Type: AlertExactOrigin, Prefix: prefix.MustParse("10.0.0.0/23"), Origin: 666}.Key(),
		Alert{Type: AlertExactOrigin, Prefix: prefix.MustParse("10.1.0.0/22"), Origin: 777}.Key(),
		Alert{Type: AlertExactOrigin, Prefix: prefix.MustParse("192.0.2.0/24"), Origin: 888}.Key(),
	}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("handler order %v, want %v", order, want)
	}
}

// TestPipelineCloseFlushesPending: batches already submitted when Close is
// called must still be classified and applied.
func TestPipelineCloseFlushesPending(t *testing.T) {
	det := NewDetector(multiOwnedConfig())
	p := NewPipeline(det, nil, PipelineConfig{Shards: 2, QueueDepth: 4})
	evs := mixedEvents(300)
	for i := 0; i < len(evs); i += 10 {
		p.Submit(evs[i : i+10]) // async: no waiting
	}
	p.Close()

	snap := p.Snapshot()
	if snap.Submitted != 30 || snap.Applied != 30 {
		t.Fatalf("submitted %d applied %d, want 30/30", snap.Submitted, snap.Applied)
	}
	if snap.Events != int64(len(evs)) {
		t.Fatalf("events %d, want %d", snap.Events, len(evs))
	}
	// Serial reference for the same stream.
	ref := NewDetector(multiOwnedConfig())
	ref.ProcessBatch(evs)
	if got, want := len(det.Alerts()), len(ref.Alerts()); got != want {
		t.Fatalf("alerts after close: %d, want %d", got, want)
	}
	// Submission after Close is dropped, not processed or deadlocked.
	p.Submit(evs[:10])
	if p.Snapshot().Submitted != 30 {
		t.Fatal("submit after close was accepted")
	}
}

// TestPipelineStress drives ≥10k events from concurrent submitters through
// a small-queue pipeline (forcing backpressure) under -race, and checks
// conservation: every event counted, totals matching a serial reference.
func TestPipelineStress(t *testing.T) {
	const (
		submitters = 8
		perSub     = 1500 // 12000 events total
		batchSize  = 25
	)
	cfg := multiOwnedConfig()
	det := NewDetector(cfg)
	mon := NewMonitor(cfg)
	p := NewPipeline(det, mon, PipelineConfig{Shards: 4, QueueDepth: 2})

	streams := make([][]feedtypes.Event, submitters)
	for s := range streams {
		evs := mixedEvents(perSub)
		// Distinct sources and VPs per submitter so cross-stream totals are
		// order-independent.
		for i := range evs {
			evs[i].Source = fmt.Sprintf("src-%d", s)
			evs[i].VantagePoint = bgp.ASN(1000*(s+1)) + evs[i].VantagePoint
			if len(evs[i].Path) > 0 {
				evs[i].Path[0] = evs[i].VantagePoint
			}
		}
		streams[s] = evs
	}

	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(evs []feedtypes.Event) {
			defer wg.Done()
			for i := 0; i < len(evs); i += batchSize {
				p.Submit(evs[i : i+batchSize])
			}
		}(streams[s])
	}
	wg.Wait()
	p.Flush()

	snap := p.Snapshot()
	if snap.Events != submitters*perSub {
		t.Fatalf("ingested %d events, want %d", snap.Events, submitters*perSub)
	}
	if snap.Submitted != snap.Applied {
		t.Fatalf("flush incomplete: submitted %d applied %d", snap.Submitted, snap.Applied)
	}
	var shardEvents int64
	for _, sh := range snap.Shards {
		shardEvents += sh.Events
	}
	if shardEvents != snap.Events {
		t.Fatalf("shards classified %d events, ingested %d", shardEvents, snap.Events)
	}
	p.Close()

	// Per-source counts must match a serial run of each stream.
	want := map[string]int{}
	for _, evs := range streams {
		ref := NewDetector(multiOwnedConfig())
		ref.ProcessBatch(evs)
		for src, n := range ref.EventsBySource() {
			want[src] += n
		}
	}
	if got := det.EventsBySource(); !reflect.DeepEqual(got, want) {
		t.Fatalf("per-source counts diverge:\n got  %v\n want %v", got, want)
	}
	// Alert *set* must match the union (order across streams is unordered).
	wantKeys := map[string]bool{}
	for _, evs := range streams {
		ref := NewDetector(multiOwnedConfig())
		ref.ProcessBatch(evs)
		for _, a := range ref.Alerts() {
			wantKeys[a.Key()] = true
		}
	}
	gotKeys := map[string]bool{}
	for _, a := range det.Alerts() {
		gotKeys[a.Key()] = true
	}
	if !reflect.DeepEqual(gotKeys, wantKeys) {
		t.Fatalf("alert sets diverge: got %d want %d", len(gotKeys), len(wantKeys))
	}
}

// TestPipelineSynchronousStart wires the pipeline to an in-process batch
// source and checks that a publish returns only after its alerts are
// visible — the property the virtual-time experiments rely on.
func TestPipelineSynchronousStart(t *testing.T) {
	cfg := multiOwnedConfig()
	det := NewDetector(cfg)
	p := NewPipeline(det, nil, PipelineConfig{Shards: 2, Synchronous: true})
	defer p.Close()

	hub := feedtypes.NewHub()
	src := &hubSource{name: "ris", hub: hub}
	p.Start(src)

	hub.Publish([]feedtypes.Event{{
		Source: "ris", VantagePoint: 1, Kind: feedtypes.Announce,
		Prefix: prefix.MustParse("10.0.0.0/24"), Path: []bgp.ASN{1, 666},
	}})
	// Synchronous: the alert is committed by the time Publish returns.
	if alerts := det.Alerts(); len(alerts) != 1 || alerts[0].Type != AlertSubPrefix {
		t.Fatalf("alert not visible after synchronous publish: %+v", alerts)
	}
	// Out-of-filter publishes never reach the pipeline.
	hub.Publish([]feedtypes.Event{{
		Source: "ris", VantagePoint: 1, Kind: feedtypes.Announce,
		Prefix: prefix.MustParse("172.16.0.0/16"), Path: []bgp.ASN{1, 666},
	}})
	p.Flush()
	if got := p.Snapshot().Events; got != 1 {
		t.Fatalf("pipeline ingested %d events, want 1 (filter leak)", got)
	}
}

type hubSource struct {
	name string
	hub  *feedtypes.Hub
}

func (s *hubSource) Name() string { return s.name }
func (s *hubSource) Subscribe(f feedtypes.Filter, fn func(feedtypes.Event)) func() {
	return s.hub.Subscribe(f, fn)
}
func (s *hubSource) SubscribeBatch(f feedtypes.Filter, fn func([]feedtypes.Event)) func() {
	return s.hub.SubscribeBatch(f, fn)
}
