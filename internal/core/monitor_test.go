package core

import (
	"math/rand"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

func monEvent(vp bgp.ASN, p string, seen time.Duration, path ...bgp.ASN) feedtypes.Event {
	return feedtypes.Event{
		Source: "test", VantagePoint: vp, Kind: feedtypes.Announce,
		Prefix: prefix.MustParse(p), Path: path, SeenAt: seen, EmittedAt: seen,
	}
}

func TestMonitorTracksHijackAndRecovery(t *testing.T) {
	m := NewMonitor(testConfig()) // owns 10.0.0.0/23, legit 61000
	// Two VPs learn the legit route.
	m.Process(monEvent(1, "10.0.0.0/23", time.Second, 1, 61000))
	m.Process(monEvent(2, "10.0.0.0/23", time.Second, 2, 61000))
	s := m.Snapshot(time.Second)
	if s.LegitVPs != 2 || s.HijackedVPs != 0 {
		t.Fatalf("after legit: %+v", s)
	}
	// VP 2 flips to the attacker.
	m.Process(monEvent(2, "10.0.0.0/23", 2*time.Second, 2, 666))
	s = m.Snapshot(2 * time.Second)
	if s.LegitVPs != 1 || s.HijackedVPs != 1 {
		t.Fatalf("after hijack: %+v", s)
	}
	if got := s.FractionLegit(); got != 0.5 {
		t.Fatalf("FractionLegit = %v", got)
	}
	// Mitigation: VP 2 gets the two /24s back from the owner. The stale
	// /23 still points at the attacker but LPM prefers the /24s. The
	// mitigator registers its de-aggregations before announcing; an
	// unregistered more-specific with a legit origin would count as a
	// hidden hijack, not as recovery.
	m.cfg.Self = NewSelfAnnounced()
	m.cfg.Self.Add(prefix.MustParse("10.0.0.0/24"))
	m.cfg.Self.Add(prefix.MustParse("10.0.1.0/24"))
	m.Process(monEvent(2, "10.0.0.0/24", 3*time.Second, 2, 61000))
	m.Process(monEvent(2, "10.0.1.0/24", 3*time.Second, 2, 61000))
	s = m.Snapshot(3 * time.Second)
	if s.LegitVPs != 2 || s.HijackedVPs != 0 {
		t.Fatalf("after mitigation: %+v", s)
	}
}

func TestMonitorSubPrefixHijackPartial(t *testing.T) {
	m := NewMonitor(testConfig())
	m.Process(monEvent(1, "10.0.0.0/23", time.Second, 1, 61000))
	// Attacker takes only the low /24: VP is hijacked (one probe bad).
	m.Process(monEvent(1, "10.0.0.0/24", 2*time.Second, 1, 666))
	s := m.Snapshot(2 * time.Second)
	if s.HijackedVPs != 1 {
		t.Fatalf("sub-prefix hijack unnoticed: %+v", s)
	}
}

func TestMonitorStaleEventIgnored(t *testing.T) {
	m := NewMonitor(testConfig())
	m.Process(monEvent(1, "10.0.0.0/23", 5*time.Second, 1, 61000))
	// A slow looking glass reports the old attacker state with an older
	// SeenAt; it must not roll the view back.
	m.Process(monEvent(1, "10.0.0.0/23", 2*time.Second, 1, 666))
	s := m.Snapshot(5 * time.Second)
	if s.LegitVPs != 1 || s.HijackedVPs != 0 {
		t.Fatalf("stale event applied: %+v", s)
	}
}

func TestMonitorWithdrawalMakesUnknown(t *testing.T) {
	m := NewMonitor(testConfig())
	m.Process(monEvent(1, "10.0.0.0/23", time.Second, 1, 61000))
	w := feedtypes.Event{
		Source: "test", VantagePoint: 1, Kind: feedtypes.Withdraw,
		Prefix: prefix.MustParse("10.0.0.0/23"), SeenAt: 2 * time.Second, EmittedAt: 2 * time.Second,
	}
	m.Process(w)
	s := m.Snapshot(2 * time.Second)
	if s.UnknownVPs != 1 || s.LegitVPs != 0 {
		t.Fatalf("after withdraw: %+v", s)
	}
}

func TestMonitorHistoryGrows(t *testing.T) {
	m := NewMonitor(testConfig())
	m.Process(monEvent(1, "10.0.0.0/23", time.Second, 1, 61000))
	m.Process(monEvent(2, "10.0.0.0/23", 2*time.Second, 2, 666))
	h := m.History()
	if len(h) != 2 {
		t.Fatalf("history = %+v", h)
	}
	if h[0].Time != time.Second || h[1].Time != 2*time.Second {
		t.Fatalf("history times = %+v", h)
	}
}

// TestMonitorHistoryCoalesced: events that leave the VP partition
// unchanged must not append samples — History is a change-point series,
// bounded by state transitions rather than feed volume.
func TestMonitorHistoryCoalesced(t *testing.T) {
	m := NewMonitor(testConfig())
	m.Process(monEvent(1, "10.0.0.0/23", time.Second, 1, 61000))
	// 100 re-announcements of the same legit route: partition unchanged,
	// so history holds the change-point plus one closing sample at the
	// latest event time (keeping time-axis plots spanning the quiet tail).
	for i := 0; i < 100; i++ {
		m.Process(monEvent(1, "10.0.0.0/23", time.Duration(i+2)*time.Second, 1, 61000))
	}
	h := m.History()
	if len(h) != 2 {
		t.Fatalf("history grew to %d samples for an unchanged partition", len(h))
	}
	if h[1].Time != 101*time.Second || !h[1].samePartition(h[0]) {
		t.Fatalf("closing sample = %+v", h[1])
	}
	// A real transition appends exactly one more change-point (and, being
	// the latest event, needs no separate closing sample).
	m.Process(monEvent(1, "10.0.0.0/24", 200*time.Second, 1, 666))
	h = m.History()
	if len(h) != 2 || h[1].HijackedVPs != 1 || h[1].Time != 200*time.Second {
		t.Fatalf("history = %+v", h)
	}
}

// TestMonitorIncrementalMatchesRescore streams a randomized event mix and
// checks, at every step, that the incrementally maintained tallies equal
// the from-scratch Rescore fold — the invariant the O(1)-amortized sink
// rests on.
func TestMonitorIncrementalMatchesRescore(t *testing.T) {
	cfg := &Config{
		OwnedPrefixes: []prefix.Prefix{
			prefix.MustParse("10.0.0.0/22"),
			prefix.MustParse("192.0.2.0/24"),
		},
		LegitOrigins: []bgp.ASN{61000, 61001},
	}
	m := NewMonitor(cfg)
	rng := rand.New(rand.NewSource(7))
	prefixes := []string{
		"10.0.0.0/22", "10.0.0.0/23", "10.0.2.0/23", "10.0.1.0/24",
		"10.0.3.0/24", "10.0.0.0/16", "192.0.2.0/24", "192.0.2.128/25",
		"192.0.0.0/20",
	}
	origins := []bgp.ASN{61000, 61001, 666, 667}
	for i := 0; i < 2000; i++ {
		vp := bgp.ASN(1 + rng.Intn(12))
		ev := monEvent(vp, prefixes[rng.Intn(len(prefixes))],
			time.Duration(rng.Intn(500))*time.Second, vp, origins[rng.Intn(len(origins))])
		if rng.Intn(5) == 0 {
			ev.Kind = feedtypes.Withdraw
			ev.Path = nil
		}
		m.Process(ev)
		at := time.Duration(i) * time.Second
		got, want := m.Snapshot(at), m.Rescore(at)
		if got != want {
			t.Fatalf("step %d: incremental %+v != rescore %+v", i, got, want)
		}
	}
}

func TestMonitorVPOriginsAndList(t *testing.T) {
	m := NewMonitor(testConfig())
	m.Process(monEvent(7, "10.0.0.0/23", time.Second, 7, 61000))
	m.Process(monEvent(3, "10.0.0.0/24", time.Second, 3, 666))
	vps := m.VantagePoints()
	if len(vps) != 2 || vps[0] != 3 || vps[1] != 7 {
		t.Fatalf("VPs = %v", vps)
	}
	origins := m.VPOrigins()
	// Owned /23 probes at 10.0.0.0 and 10.0.1.0.
	if got := origins[7]; got[0] != 61000 || got[1] != 61000 {
		t.Fatalf("vp7 origins = %v", got)
	}
	if got := origins[3]; got[0] != 666 || got[1] != 0 {
		t.Fatalf("vp3 origins = %v", got)
	}
}

func TestProbeAddrs(t *testing.T) {
	probes := probeAddrs([]prefix.Prefix{prefix.MustParse("10.0.0.0/23")})
	if len(probes) != 2 || probes[0] != prefix.MustParseAddr("10.0.0.0") || probes[1] != prefix.MustParseAddr("10.0.1.0") {
		t.Fatalf("probes = %v", probes)
	}
	// A /25 owned prefix probes just itself.
	cfg := &Config{MaxDeaggregationLen: 25}
	_ = cfg
	probes = probeAddrs([]prefix.Prefix{prefix.MustParse("10.0.0.128/25")})
	if len(probes) != 1 || probes[0] != prefix.MustParseAddr("10.0.0.128") {
		t.Fatalf("/25 probes = %v", probes)
	}
	// A huge block caps at 8 probes.
	probes = probeAddrs([]prefix.Prefix{prefix.MustParse("10.0.0.0/8")})
	if len(probes) != 8 {
		t.Fatalf("/8 probes = %d", len(probes))
	}
}
