package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

// reconfigStage is one segment of a reconfiguration schedule: process
// events [from, to) under the config active when the stage starts, then
// (unless it is the last stage) swap to next.
type reconfigStage struct {
	to   int
	next *Config
}

// swapSerial applies a config snapshot to raw serial components the same
// way Service.swapConfig does.
func swapSerial(det *Detector, mon *Monitor, mit *Mitigator, next *Config) {
	det.setConfig(next)
	mon.SetConfig(next)
	mit.setConfig(next)
}

// TestReconfigureSerialPipelineEquivalence is the oracle for live
// reconfiguration: a randomized stream with config swaps interleaved at
// fixed stream positions must yield identical alerts, mitigation records,
// controller announcements, monitor history and final snapshot whether it
// runs through (a) the serial Detector/Monitor with inline swaps or
// (b) the sharded pipeline with swaps injected via Reconfigure barriers
// while batches are in flight.
func TestReconfigureSerialPipelineEquivalence(t *testing.T) {
	base := equivalenceConfig()
	// grown adds owned space that randomEvents' "unrelated" branch hits
	// (172.0.0.0/12 covers every 172.x/24 it generates), so post-swap
	// traffic that was benign becomes sub-prefix hijacks.
	grown := base.Clone()
	grown.OwnedPrefixes = append(grown.OwnedPrefixes, prefix.MustParse("172.0.0.0/12"))
	// shrunk then removes one original prefix, so incidents on it stop
	// alerting while its dedup history survives.
	shrunk := grown.Clone()
	shrunk.OwnedPrefixes = append([]prefix.Prefix(nil), grown.OwnedPrefixes[1:]...)

	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			evs := randomEvents(rng, 3000)
			k1 := 500 + rng.Intn(1000)
			k2 := k1 + 100 + rng.Intn(1000)
			stages := []reconfigStage{
				{to: k1, next: grown},
				{to: k2, next: shrunk},
				{to: len(evs)},
			}
			now := func() time.Duration { return 0 }

			// Serial reference: per-event processing, swaps inline.
			serialAnn := &recordingAnnouncer{}
			serialDet := NewDetector(base)
			serialMon := NewMonitor(base)
			serialMit := NewMitigator(base, serialAnn, now)
			serialQ := NewMitigationQueue(serialMit.HandleAlert, MitigationQueueConfig{Synchronous: true}, nil)
			serialDet.OnAlert(serialQ.Enqueue)
			from := 0
			for _, st := range stages {
				for _, ev := range evs[from:st.to] {
					serialDet.Process(ev)
					serialMon.Process(ev)
				}
				from = st.to
				if st.next != nil {
					swapSerial(serialDet, serialMon, serialMit, st.next)
				}
			}
			serialQ.Close()

			// Pipeline under test: batched submission with Reconfigure
			// barriers at the same stream positions.
			pipeAnn := &recordingAnnouncer{}
			pipeDet := NewDetector(base)
			pipeMon := NewMonitor(base)
			pipeMit := NewMitigator(base, pipeAnn, now)
			pipeQ := NewMitigationQueue(pipeMit.HandleAlert, MitigationQueueConfig{Depth: 2}, nil)
			pipeDet.OnAlert(pipeQ.Enqueue)
			p := NewPipeline(pipeDet, pipeMon, PipelineConfig{Shards: 4, QueueDepth: 4})
			from = 0
			for _, st := range stages {
				for i := from; i < st.to; i += 37 { // uneven batch boundaries
					end := min(i+37, st.to)
					p.Submit(evs[i:end])
				}
				from = st.to
				if st.next != nil {
					next := st.next
					p.Reconfigure(next, func() {
						pipeDet.setConfig(next)
						pipeMon.SetConfig(next)
						pipeMit.setConfig(next)
					})
				}
			}
			p.Close()
			pipeQ.Close()

			if got, want := pipeDet.Alerts(), serialDet.Alerts(); !reflect.DeepEqual(got, want) {
				t.Fatalf("alerts diverge: pipeline %d serial %d", len(got), len(want))
			}
			if got, want := pipeMit.Records(), serialMit.Records(); !reflect.DeepEqual(got, want) {
				t.Fatalf("mitigation records diverge:\n pipeline %+v\n serial   %+v", got, want)
			}
			if got, want := pipeAnn.all(), serialAnn.all(); !reflect.DeepEqual(got, want) {
				t.Fatalf("controller announcements diverge:\n pipeline %v\n serial   %v", got, want)
			}
			if got, want := pipeMon.History(), serialMon.History(); !reflect.DeepEqual(got, want) {
				t.Fatalf("history diverges: %d vs %d change-points", len(got), len(want))
			}
			gotSnap, wantSnap := pipeMon.Snapshot(0), serialMon.Snapshot(0)
			if gotSnap != wantSnap {
				t.Fatalf("final snapshot diverges: %+v vs %+v", gotSnap, wantSnap)
			}
			// The incrementally maintained partition agrees with the
			// from-scratch oracle after probe-set swaps.
			if re := pipeMon.Rescore(0); re != gotSnap {
				t.Fatalf("rescore oracle disagrees after reconfig: %+v vs %+v", re, gotSnap)
			}
			if snap := p.Snapshot(); snap.Reconfigs != 2 {
				t.Fatalf("expected 2 reconfig barriers, got %d", snap.Reconfigs)
			}
		})
	}
}

// TestReconfigureConcurrentSubmitters exercises the swap under the race
// detector with many goroutines submitting while reconfigurations cycle
// the owned set: every batch must classify against exactly one snapshot
// (no torn rel/ownedIdx), and the pipeline must stay consistent.
func TestReconfigureConcurrentSubmitters(t *testing.T) {
	cfgA := equivalenceConfig()
	cfgB := cfgA.Clone()
	cfgB.OwnedPrefixes = append(cfgB.OwnedPrefixes, prefix.MustParse("172.0.0.0/12"))

	det := NewDetector(cfgA)
	mon := NewMonitor(cfgA)
	p := NewPipeline(det, mon, PipelineConfig{Shards: 4, QueueDepth: 8})

	stop := make(chan struct{})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				p.Submit(randomEvents(rng, 50))
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		next := cfgA
		if i%2 == 0 {
			next = cfgB
		}
		p.Reconfigure(next, func() {
			det.setConfig(next)
			mon.SetConfig(next)
		})
	}
	close(stop)
	for g := 0; g < 4; g++ {
		<-done
	}
	p.Close()
	// Sanity: the final partition agrees with the oracle.
	if got, want := mon.Snapshot(0), mon.Rescore(0); got != want {
		t.Fatalf("snapshot %+v disagrees with rescore %+v", got, want)
	}
}

// TestServiceReconfigureSerial covers the pipeline-less path: a Service
// without a bound pipeline swaps immediately, and validation rejects bad
// configs without touching the running state.
func TestServiceReconfigureSerial(t *testing.T) {
	cfg := &Config{
		OwnedPrefixes: []prefix.Prefix{prefix.MustParse("10.0.0.0/23")},
		LegitOrigins:  []bgp.ASN{61000},
		// Keep mitigation manual: this test drives the detector directly.
		ManualMitigation: true,
	}
	svc, err := NewService(cfg, nil, func() time.Duration { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	hijack := feedtypes.Event{
		Source: "test", VantagePoint: 100, Kind: feedtypes.Announce,
		Prefix: prefix.MustParse("172.16.0.0/24"), Path: []bgp.ASN{100, 2000, 666},
	}
	svc.Detector.Process(hijack)
	if n := svc.Detector.AlertCount(); n != 0 {
		t.Fatalf("alert for unowned prefix: %d", n)
	}

	next := svc.CurrentConfig().Clone()
	next.OwnedPrefixes = append(next.OwnedPrefixes, prefix.MustParse("172.16.0.0/22"))
	if err := svc.Reconfigure(next); err != nil {
		t.Fatal(err)
	}
	svc.Detector.Process(hijack)
	if n := svc.Detector.AlertCount(); n != 1 {
		t.Fatalf("hot-added prefix not detected: %d alerts", n)
	}
	if got := svc.CurrentConfig().OwnedPrefixes; len(got) != 2 {
		t.Fatalf("CurrentConfig not updated: %v", got)
	}

	if err := svc.Reconfigure(&Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if got := svc.CurrentConfig().OwnedPrefixes; len(got) != 2 {
		t.Fatalf("failed reconfig mutated state: %v", got)
	}
}
