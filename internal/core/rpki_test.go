package core

import (
	"testing"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
	"artemis/internal/rpki"
)

// rpkiConfig is testConfig plus a ROA table: the owned /23 is ROA'd to the
// legitimate origin (max length /24), and 10.0.1.0/24 is additionally
// ROA'd to AS64900.
func rpkiConfig() *Config {
	cfg := testConfig()
	tb := rpki.NewTable()
	tb.AddROA(rpki.ROA{Prefix: prefix.MustParse("10.0.0.0/23"), ASN: 61000, MaxLength: 24})
	tb.AddROA(rpki.ROA{Prefix: prefix.MustParse("10.0.1.0/24"), ASN: 64900, MaxLength: 24})
	cfg.RPKI = tb
	return cfg
}

func TestRPKIInvalidVerdictOnAlert(t *testing.T) {
	d := NewDetector(rpkiConfig())
	// Sub-prefix hijack by 666: covered by the /23 ROA, wrong origin.
	d.Process(announceEvent("10.0.0.0/24", 1001, 1002, 666))
	alerts := d.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v", alerts)
	}
	if alerts[0].Type != AlertSubPrefix || alerts[0].RPKI != "invalid" {
		t.Fatalf("alert = %+v, want sub-prefix with rpki=invalid", alerts[0])
	}
}

func TestRPKIValidFastReject(t *testing.T) {
	d := NewDetector(rpkiConfig())
	// AS64900 is not in LegitOrigins, but a ROA authorizes it for
	// 10.0.1.0/24: fast-rejected, no alert.
	d.Process(announceEvent("10.0.1.0/24", 1001, 1002, 64900))
	if got := d.Alerts(); len(got) != 0 {
		t.Fatalf("ROA-valid announcement alerted: %+v", got)
	}
	// The event still counts toward per-source diagnostics.
	if n := d.EventsBySource()["test"]; n != 1 {
		t.Fatalf("counted = %d, want 1", n)
	}
	_, valid, _ := d.Config().RPKI.VerdictCounts()
	if valid != 1 {
		t.Fatalf("valid verdicts = %d, want 1", valid)
	}
	// The same origin beyond the ROA's maxLength is invalid again.
	d.Process(announceEvent("10.0.1.128/25", 1001, 1002, 64900))
	alerts := d.Alerts()
	if len(alerts) != 1 || alerts[0].RPKI != "invalid" {
		t.Fatalf("alerts = %+v, want one rpki=invalid", alerts)
	}
}

func TestRPKIUnknownVerdict(t *testing.T) {
	cfg := testConfig()
	cfg.OwnedPrefixes = append(cfg.OwnedPrefixes, prefix.MustParse("192.0.2.0/24"))
	tb := rpki.NewTable()
	tb.AddROA(rpki.ROA{Prefix: prefix.MustParse("10.0.0.0/23"), ASN: 61000})
	cfg.RPKI = tb
	d := NewDetector(cfg)
	// 192.0.2.0/24 has no covering ROA: alert fires with verdict unknown.
	d.Process(announceEvent("192.0.2.0/24", 1001, 666))
	alerts := d.Alerts()
	if len(alerts) != 1 || alerts[0].RPKI != "unknown" {
		t.Fatalf("alerts = %+v, want one rpki=unknown", alerts)
	}
}

func TestNoRPKITableNoVerdict(t *testing.T) {
	d := NewDetector(testConfig())
	d.Process(announceEvent("10.0.0.0/23", 1001, 666))
	alerts := d.Alerts()
	if len(alerts) != 1 || alerts[0].RPKI != "" {
		t.Fatalf("alerts = %+v, want empty verdict without a table", alerts)
	}
}

func TestRPKIPathAnomalyCarriesNoVerdict(t *testing.T) {
	cfg := rpkiConfig()
	cfg.AllowedUpstreams = map[bgp.ASN][]bgp.ASN{61000: {1002}}
	d := NewDetector(cfg)
	// Legit origin via a disallowed upstream: path anomaly, no RPKI verdict
	// (the origin itself is fine).
	d.Process(announceEvent("10.0.0.0/23", 1001, 9999, 61000))
	alerts := d.Alerts()
	if len(alerts) != 1 || alerts[0].Type != AlertPathAnomaly || alerts[0].RPKI != "" {
		t.Fatalf("alerts = %+v", alerts)
	}
}
