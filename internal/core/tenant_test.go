package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/controller"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
	"artemis/internal/sim"
)

// tenantConfigs builds three tenant configs with deliberately hostile
// overlap: bravo's /24 is nested inside alpha's /23, charlie's 192.0.2.0/24
// is identical to alpha's, and charlie's /9 covers both of alpha's 10.x
// blocks — so most 10.x events fan out to two or three tenants, each with
// a different relation (sub-prefix for one, exact for another).
func tenantConfigs() map[string]*Config {
	return map[string]*Config{
		"alpha": {
			OwnedPrefixes: []prefix.Prefix{
				prefix.MustParse("10.0.0.0/23"),
				prefix.MustParse("10.1.0.0/22"),
				prefix.MustParse("192.0.2.0/24"),
			},
			LegitOrigins:     []bgp.ASN{61000},
			AllowedUpstreams: map[bgp.ASN][]bgp.ASN{61000: {2000, 2001}},
		},
		"bravo": {
			OwnedPrefixes: []prefix.Prefix{
				prefix.MustParse("10.0.0.0/24"),
				prefix.MustParse("198.51.100.0/24"),
			},
			LegitOrigins: []bgp.ASN{61001},
		},
		"charlie": {
			OwnedPrefixes: []prefix.Prefix{
				prefix.MustParse("192.0.2.0/24"),
				prefix.MustParse("10.0.0.0/9"),
				prefix.MustParse("203.0.113.0/24"),
			},
			LegitOrigins: []bgp.ASN{61000, 61002},
		},
	}
}

// tenantHarness is one tenant's full observable surface: detector,
// monitor, synchronous mitigation, recorded announcements.
type tenantHarness struct {
	cfg *Config
	det *Detector
	mon *Monitor
	mit *Mitigator
	q   *MitigationQueue
	ann *recordingAnnouncer
}

func newTenantHarness(cfg *Config) *tenantHarness {
	h := &tenantHarness{
		cfg: cfg,
		det: NewDetector(cfg),
		mon: NewMonitor(cfg),
		ann: &recordingAnnouncer{},
	}
	h.mit = NewMitigator(cfg, h.ann, func() time.Duration { return 0 })
	h.q = NewMitigationQueue(h.mit.HandleAlert, MitigationQueueConfig{Synchronous: true}, nil)
	h.det.OnAlert(h.q.Enqueue)
	return h
}

// TestMultiTenantEquivalence is the hosted-detection oracle: one shared
// multi-tenant pipeline fed the full event stream must be observably
// identical, per tenant, to N independent single-tenant pipelines each fed
// the slice of the stream its own feed filter (owned space, both
// directions) would have passed — alerts, per-source tallies, mitigation
// records, controller announcements, monitor history, snapshot and
// rescore all agree, across overlapping and nested cross-tenant prefixes.
func TestMultiTenantEquivalence(t *testing.T) {
	names := []string{"alpha", "bravo", "charlie"}
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			evs := randomEvents(rand.New(rand.NewSource(seed)), 3000)

			// Independent reference: one pipeline per tenant, fed the
			// filter-passed slice of the stream with the same (uneven)
			// batch boundaries.
			indep := map[string]*tenantHarness{}
			for _, name := range names {
				h := newTenantHarness(tenantConfigs()[name])
				p := NewPipeline(h.det, h.mon, PipelineConfig{Shards: 4, QueueDepth: 4})
				filter := feedtypes.Filter{
					Prefixes:     h.cfg.OwnedPrefixes,
					MoreSpecific: true,
					LessSpecific: true,
				}
				var pass []feedtypes.Event
				for i := 0; i < len(evs); i += 41 {
					pass = pass[:0]
					for _, ev := range evs[i:min(i+41, len(evs))] {
						if filter.Match(ev.Prefix) {
							pass = append(pass, ev)
						}
					}
					p.Submit(pass)
				}
				p.Close()
				h.q.Close()
				indep[name] = h
			}

			// Shared pipeline: every tenant on one hot path, full stream.
			shared := map[string]*tenantHarness{}
			var policies []TenantPolicy
			for _, name := range names {
				h := newTenantHarness(tenantConfigs()[name])
				shared[name] = h
				policies = append(policies, TenantPolicy{
					Name: name, Config: h.cfg, Detector: h.det, Monitor: h.mon,
				})
			}
			table, err := NewPolicyTable(policies)
			if err != nil {
				t.Fatal(err)
			}
			p := NewPipelineTable(table, PipelineConfig{Shards: 4, QueueDepth: 4})
			for i := 0; i < len(evs); i += 41 {
				p.Submit(evs[i:min(i+41, len(evs))])
			}
			p.Close()
			for _, name := range names {
				shared[name].q.Close()
			}

			for _, name := range names {
				got, want := shared[name], indep[name]
				if g, w := got.det.Alerts(), want.det.Alerts(); !reflect.DeepEqual(g, w) {
					t.Fatalf("tenant %s alerts diverge: shared %d independent %d", name, len(g), len(w))
				}
				if g, w := got.det.EventsBySource(), want.det.EventsBySource(); !reflect.DeepEqual(g, w) {
					t.Fatalf("tenant %s per-source tallies diverge:\n shared      %v\n independent %v", name, g, w)
				}
				if g, w := got.mit.Records(), want.mit.Records(); !reflect.DeepEqual(g, w) {
					t.Fatalf("tenant %s mitigation records diverge:\n shared      %+v\n independent %+v", name, g, w)
				}
				if g, w := got.ann.all(), want.ann.all(); !reflect.DeepEqual(g, w) {
					t.Fatalf("tenant %s announcements diverge:\n shared      %v\n independent %v", name, g, w)
				}
				if g, w := got.mon.History(), want.mon.History(); !reflect.DeepEqual(g, w) {
					t.Fatalf("tenant %s history diverges: %d vs %d change-points", name, len(g), len(w))
				}
				gs, ws := got.mon.Snapshot(0), want.mon.Snapshot(0)
				if gs != ws {
					t.Fatalf("tenant %s snapshot diverges: %+v vs %+v", name, gs, ws)
				}
				if re := got.mon.Rescore(0); re != gs {
					t.Fatalf("tenant %s incremental snapshot %+v != rescore %+v", name, gs, re)
				}
			}
		})
	}
}

// TestMultiTenantReconfigureOne: retuning one tenant through the table
// derivation used by Pipeline.Reconfigure swaps that tenant's policy at a
// barrier while the other tenants' state (and runtime counters) carry
// over untouched.
func TestMultiTenantReconfigureOne(t *testing.T) {
	cfgs := tenantConfigs()
	a, b := newTenantHarness(cfgs["alpha"]), newTenantHarness(cfgs["bravo"])
	table, err := NewPolicyTable([]TenantPolicy{
		{Name: "alpha", Config: a.cfg, Detector: a.det, Monitor: a.mon},
		{Name: "bravo", Config: b.cfg, Detector: b.det, Monitor: b.mon},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipelineTable(table, PipelineConfig{Shards: 2})
	defer p.Close()

	p.SubmitWait([]feedtypes.Event{announceEvent("10.0.0.0/24", 1001, 666)})
	if got := len(a.det.Alerts()); got != 1 { // sub-prefix of alpha's /23
		t.Fatalf("alpha alerts = %d", got)
	}
	if got := len(b.det.Alerts()); got != 1 { // exact hijack of bravo's /24
		t.Fatalf("bravo alerts = %d", got)
	}
	bravoEvents := table.Runtime("bravo").Events()

	// Alpha sheds its 10.x space; bravo must be unaffected.
	next := a.cfg.Clone()
	next.OwnedPrefixes = []prefix.Prefix{prefix.MustParse("192.0.2.0/24")}
	p.Reconfigure(next, func() { a.det.setConfig(next) })

	p.SubmitWait([]feedtypes.Event{announceEvent("10.0.0.0/24", 1002, 667)})
	if got := len(a.det.Alerts()); got != 1 {
		t.Fatalf("alpha still matched after shedding 10.x: %d alerts", got)
	}
	if got := len(b.det.Alerts()); got != 2 {
		t.Fatalf("bravo alerts after alpha's reconfigure = %d, want 2", got)
	}
	if got := p.Table().Runtime("bravo").Events(); got != bravoEvents+1 {
		t.Fatalf("bravo runtime did not carry across the swap: %d -> %d", bravoEvents, got)
	}
}

// TestNoisyTenantQuotaIsolation is the adversarial fairness test: a tenant
// with a 50k-prefix-scale event storm and a MaxEventsPerSecond quota must
// have its classification work bounded by the quota — the drops are
// counted and reported — while a quiet tenant sharing the pipeline keeps
// exact, loss-free detection. Work done per tenant, not wall-clock, is the
// asserted bound: it is what caps the noisy tenant's latency impact on
// everyone else regardless of machine speed.
func TestNoisyTenantQuotaIsolation(t *testing.T) {
	quietCfg := &Config{
		OwnedPrefixes: []prefix.Prefix{prefix.MustParse("192.0.2.0/24")},
		LegitOrigins:  []bgp.ASN{61000},
	}
	noisyCfg := &Config{
		OwnedPrefixes:      []prefix.Prefix{prefix.MustParse("10.0.0.0/8")},
		LegitOrigins:       []bgp.ASN{61001},
		MaxEventsPerSecond: 100,
	}
	quiet, noisy := newTenantHarness(quietCfg), newTenantHarness(noisyCfg)
	table, err := NewPolicyTable([]TenantPolicy{
		{Name: "quiet", Config: quietCfg, Detector: quiet.det, Monitor: quiet.mon},
		{Name: "noisy", Config: noisyCfg, Detector: noisy.det, Monitor: noisy.mon},
	})
	if err != nil {
		t.Fatal(err)
	}
	var dropMu sync.Mutex
	reported := int64(0)
	table.OnQuotaDrop(func(tenant string, n int64) {
		dropMu.Lock()
		defer dropMu.Unlock()
		if tenant != "noisy" {
			t.Errorf("quota drop attributed to %q", tenant)
		}
		reported += n
	})
	p := NewPipelineTable(table, PipelineConfig{Shards: 4})

	// Half a second of a 10k events/sec hijack storm against the noisy
	// tenant, with the quiet tenant's trickle interleaved on the same
	// timeline.
	const storm = 5000
	quietSent := 0
	batch := make([]feedtypes.Event, 0, 64)
	for i := 0; i < storm; i++ {
		at := time.Duration(i) * 100 * time.Microsecond
		ev := feedtypes.Event{
			Source: "storm", Collector: "c0", VantagePoint: 1001,
			Kind:   feedtypes.Announce,
			Prefix: prefix.New(prefix.AddrFrom4(uint32(10<<24)|uint32(i%1024)<<8), 24),
			Path:   []bgp.ASN{1001, 2000, 666},
			SeenAt: at, EmittedAt: at,
		}
		batch = append(batch, ev)
		if i%10 == 0 {
			quietSent++
			batch = append(batch, feedtypes.Event{
				Source: "quiet-src", Collector: "c0", VantagePoint: 1002,
				Kind:   feedtypes.Announce,
				Prefix: prefix.MustParse("192.0.2.0/24"),
				Path:   []bgp.ASN{1002, 2000, bgp.ASN(660 + i%3)},
				SeenAt: at, EmittedAt: at,
			})
		}
		if len(batch) >= 60 {
			p.SubmitWait(batch)
			batch = batch[:0]
		}
	}
	p.SubmitWait(batch)
	p.Close()
	quiet.q.Close()
	noisy.q.Close()

	// The quiet tenant lost nothing: every event classified, every
	// distinct incident alerted, zero drops.
	if got := quiet.det.EventsBySource()["quiet-src"]; got != quietSent {
		t.Fatalf("quiet tenant classified %d/%d events", got, quietSent)
	}
	if got := len(quiet.det.Alerts()); got != 3 { // one per attacker origin
		t.Fatalf("quiet tenant alerts = %d, want 3", got)
	}
	if got := table.Runtime("quiet").QuotaDrops(); got != 0 {
		t.Fatalf("quiet tenant recorded %d quota drops", got)
	}

	// The noisy tenant's classification work is bounded by its quota:
	// a 100/sec budget over a 0.5s storm admits the 100-token burst plus
	// ~50 refilled tokens, not 5000 events.
	rt := table.Runtime("noisy")
	classified, dropped := rt.Events(), rt.QuotaDrops()
	if classified+dropped != storm {
		t.Fatalf("noisy accounting leak: %d classified + %d dropped != %d", classified, dropped, storm)
	}
	if classified > 200 {
		t.Fatalf("noisy tenant classified %d events, quota should bound it near 150", classified)
	}
	if dropped == 0 {
		t.Fatal("storm produced no quota drops")
	}
	dropMu.Lock()
	defer dropMu.Unlock()
	if reported != dropped {
		t.Fatalf("OnQuotaDrop reported %d, counter says %d", reported, dropped)
	}
}

// TestHotTuneDedupBounds: Reconfigure retunes the live alert-dedup window
// in place — shrinking the TTL expires aged incidents immediately (so a
// recurring hijack re-alerts), and shrinking the size bound evicts down to
// the new cap. Both were construction-time-only before.
func TestHotTuneDedupBounds(t *testing.T) {
	cfg := &Config{
		OwnedPrefixes: []prefix.Prefix{prefix.MustParse("10.0.0.0/23")},
		LegitOrigins:  []bgp.ASN{61000},
	}
	det := NewDetector(cfg) // TTL 0: incidents dedup forever
	hijack := func(at time.Duration) feedtypes.Event {
		return feedtypes.Event{
			Source: "test", Collector: "c0", VantagePoint: 1001,
			Kind: feedtypes.Announce, Prefix: prefix.MustParse("10.0.0.0/23"),
			Path: []bgp.ASN{1001, 2000, 666}, SeenAt: at, EmittedAt: at,
		}
	}
	det.Process(hijack(0))
	det.Process(hijack(time.Hour))
	if got := len(det.Alerts()); got != 1 {
		t.Fatalf("alerts with unbounded dedup = %d, want 1", got)
	}

	next := cfg.Clone()
	next.AlertDedupTTL = time.Minute
	det.setConfig(next)
	if got := det.DedupSize(); got != 0 {
		t.Fatalf("dedup set after TTL shrink = %d, want 0 (incident aged out)", got)
	}
	det.Process(hijack(time.Hour + time.Second))
	if got := len(det.Alerts()); got != 2 {
		t.Fatalf("recurring hijack after TTL shrink raised %d alerts, want 2", got)
	}

	// Size-bound shrink evicts oldest down to the cap.
	for i := 0; i < 8; i++ {
		det.Process(announceEvent("10.0.0.0/23", 1001, bgp.ASN(700+i)))
	}
	if got := det.DedupSize(); got < 8 {
		t.Fatalf("dedup set = %d, want >= 8", got)
	}
	capped := next.Clone()
	capped.AlertDedupMax = 2
	det.setConfig(capped)
	if got := det.DedupSize(); got != 2 {
		t.Fatalf("dedup set after max shrink = %d, want 2", got)
	}
}

// TestMitigationRateLimit: MitigationRatePerMin bounds automatic
// alert→mitigation dispatches; excess alerts stay visible (and counted)
// but are not mitigated, and the drop callback observes them.
func TestMitigationRateLimit(t *testing.T) {
	eng := sim.NewEngine(1)
	inj := &flakyInjector{} // always succeeds
	ctrl := controller.New(inj, eng.Now, eng.After, controller.WithConfigDelay(time.Second))
	cfg := &Config{
		OwnedPrefixes:        []prefix.Prefix{prefix.MustParse("10.0.0.0/23")},
		LegitOrigins:         []bgp.ASN{61000},
		MitigationRatePerMin: 2,
	}
	svc, err := NewService(cfg, ctrl, eng.Now)
	if err != nil {
		t.Fatal(err)
	}
	var dropped []Alert
	svc.OnMitigationDrop(func(a Alert) { dropped = append(dropped, a) })

	for i := 0; i < 5; i++ {
		svc.Detector.Process(announceEvent("10.0.0.0/23", 1001, bgp.ASN(666+i)))
	}
	eng.Run()
	if got := len(svc.Detector.Alerts()); got != 5 {
		t.Fatalf("alerts = %d, want 5 (detection is never rate-limited)", got)
	}
	if got := len(svc.Mitigator.Records()); got != 2 {
		t.Fatalf("mitigations = %d, want 2 (burst allowance)", got)
	}
	if got := svc.MitigationRateDrops(); got != 3 {
		t.Fatalf("rate drops = %d, want 3", got)
	}
	if len(dropped) != 3 {
		t.Fatalf("drop callback saw %d alerts, want 3", len(dropped))
	}

	// A minute later the bucket has refilled.
	eng.After(time.Minute, func() {
		svc.Detector.Process(announceEvent("10.0.0.0/23", 1001, 900))
	})
	eng.Run()
	if got := len(svc.Mitigator.Records()); got != 3 {
		t.Fatalf("mitigations after refill = %d, want 3", got)
	}
	svc.Close()
}

// TestHotTuneMitigationRetries: the retry bound is read from the active
// snapshot on every southbound failure, so retuning it mid-incident
// applies immediately.
func TestHotTuneMitigationRetries(t *testing.T) {
	cfg := &Config{
		OwnedPrefixes:        []prefix.Prefix{prefix.MustParse("10.0.0.0/23")},
		LegitOrigins:         []bgp.ASN{61000},
		MaxMitigationRetries: 3,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(cfg, nil, func() time.Duration { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if got := svc.CurrentConfig().MaxMitigationRetries; got != 3 {
		t.Fatalf("MaxMitigationRetries = %d", got)
	}
	next := cfg.Clone()
	next.MaxMitigationRetries = 1
	if err := svc.Reconfigure(next); err != nil {
		t.Fatal(err)
	}
	if got := svc.CurrentConfig().MaxMitigationRetries; got != 1 {
		t.Fatalf("MaxMitigationRetries after reconfigure = %d", got)
	}
}
