package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

// recordingAnnouncer is a deterministic RouteAnnouncer: it accepts
// everything and remembers the order of announcements.
type recordingAnnouncer struct {
	mu        sync.Mutex
	announced []prefix.Prefix
}

func (r *recordingAnnouncer) Announce(p prefix.Prefix) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.announced = append(r.announced, p)
	return nil
}

func (r *recordingAnnouncer) all() []prefix.Prefix {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]prefix.Prefix(nil), r.announced...)
}

// randomEvents builds a seeded stream exercising every classification
// branch: benign routes (with and without origin prepending), exact-,
// sub- and super-prefix hijacks, path anomalies, withdrawals, stale
// re-deliveries, and unrelated prefixes.
func randomEvents(rng *rand.Rand, n int) []feedtypes.Event {
	owned := []string{"10.0.0.0/23", "10.1.0.0/22", "192.0.2.0/24", "198.51.100.0/24", "203.0.113.0/24"}
	sources := []string{"ris", "bgpmon", "periscope"}
	evs := make([]feedtypes.Event, 0, n)
	for i := 0; i < n; i++ {
		vp := bgp.ASN(100 + rng.Intn(16))
		at := time.Duration(rng.Intn(n)) * time.Millisecond // deliberately non-monotonic: stale paths
		ev := feedtypes.Event{
			Source:       sources[rng.Intn(len(sources))],
			Collector:    "c0",
			VantagePoint: vp,
			Kind:         feedtypes.Announce,
			SeenAt:       at,
			EmittedAt:    time.Duration(i) * time.Millisecond,
		}
		switch rng.Intn(10) {
		case 0, 1, 2: // benign, possibly prepended
			ev.Prefix = prefix.MustParse(owned[rng.Intn(len(owned))])
			ev.Path = []bgp.ASN{vp, 2000, 61000}
			for p := rng.Intn(3); p > 0; p-- {
				ev.Path = append(ev.Path, 61000)
			}
		case 3: // exact-origin hijack from a small attacker pool
			ev.Prefix = prefix.MustParse(owned[rng.Intn(len(owned))])
			ev.Path = []bgp.ASN{vp, 2000, bgp.ASN(660 + rng.Intn(4))}
		case 4: // sub-prefix hijack
			ev.Prefix = prefix.MustParse("10.1.2.0/24")
			ev.Path = []bgp.ASN{vp, 2000, bgp.ASN(660 + rng.Intn(4))}
		case 5: // squat
			ev.Prefix = prefix.MustParse("192.0.0.0/16")
			ev.Path = []bgp.ASN{vp, 2000, bgp.ASN(660 + rng.Intn(4))}
		case 6: // path anomaly candidate: legit origin, random upstream
			ev.Prefix = prefix.MustParse("10.0.0.0/23")
			ev.Path = []bgp.ASN{vp, bgp.ASN(2000 + rng.Intn(4)), 61000, 61000}
		case 7: // withdrawal
			ev.Kind = feedtypes.Withdraw
			ev.Prefix = prefix.MustParse(owned[rng.Intn(len(owned))])
		default: // unrelated
			ev.Prefix = prefix.New(prefix.AddrFrom4(uint32(172<<24)|uint32(rng.Intn(1<<12))<<8), 24)
			ev.Path = []bgp.ASN{vp, 2000, bgp.ASN(3000 + rng.Intn(16))}
		}
		evs = append(evs, ev)
	}
	return evs
}

func equivalenceConfig() *Config {
	cfg := multiOwnedConfig()
	cfg.AllowedUpstreams = map[bgp.ASN][]bgp.ASN{61000: {2000, 2001}}
	return cfg
}

// TestSerialPipelineMitigationEquivalence is the end-to-end oracle for
// the incremental sink: the same randomized stream through (a) the serial
// Detector+Monitor with inline mitigation and (b) the sharded pipeline
// with the incremental monitor and an async mitigation queue must yield
// identical alerts, mitigation records, controller announcements, history
// and final snapshot.
func TestSerialPipelineMitigationEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			evs := randomEvents(rand.New(rand.NewSource(seed)), 3000)
			now := func() time.Duration { return 0 }

			// Serial reference: inline (synchronous) mitigation.
			serialAnn := &recordingAnnouncer{}
			serialDet := NewDetector(equivalenceConfig())
			serialMon := NewMonitor(equivalenceConfig())
			serialMit := NewMitigator(equivalenceConfig(), serialAnn, now)
			serialQ := NewMitigationQueue(serialMit.HandleAlert, MitigationQueueConfig{Synchronous: true}, nil)
			serialDet.OnAlert(serialQ.Enqueue)
			for _, ev := range evs {
				serialDet.Process(ev)
				serialMon.Process(ev)
			}
			serialQ.Close()

			// Pipeline under test: async mitigation, small queues for
			// backpressure coverage.
			pipeAnn := &recordingAnnouncer{}
			pipeDet := NewDetector(equivalenceConfig())
			pipeMon := NewMonitor(equivalenceConfig())
			pipeMit := NewMitigator(equivalenceConfig(), pipeAnn, now)
			pipeQ := NewMitigationQueue(pipeMit.HandleAlert, MitigationQueueConfig{Depth: 2}, nil)
			pipeDet.OnAlert(pipeQ.Enqueue)
			p := NewPipeline(pipeDet, pipeMon, PipelineConfig{Shards: 4, QueueDepth: 4})
			for i := 0; i < len(evs); i += 41 { // uneven batch boundaries
				end := min(i+41, len(evs))
				p.Submit(evs[i:end])
			}
			p.Close()
			pipeQ.Close()

			if got, want := pipeDet.Alerts(), serialDet.Alerts(); !reflect.DeepEqual(got, want) {
				t.Fatalf("alerts diverge: pipeline %d serial %d", len(got), len(want))
			}
			if got, want := pipeMit.Records(), serialMit.Records(); !reflect.DeepEqual(got, want) {
				t.Fatalf("mitigation records diverge:\n pipeline %+v\n serial   %+v", got, want)
			}
			if got, want := pipeAnn.all(), serialAnn.all(); !reflect.DeepEqual(got, want) {
				t.Fatalf("controller announcements diverge:\n pipeline %v\n serial   %v", got, want)
			}
			if got, want := pipeMon.History(), serialMon.History(); !reflect.DeepEqual(got, want) {
				t.Fatalf("history diverges: %d vs %d change-points", len(got), len(want))
			}
			gotSnap, wantSnap := pipeMon.Snapshot(0), serialMon.Snapshot(0)
			if gotSnap != wantSnap {
				t.Fatalf("final snapshot diverges: %+v vs %+v", gotSnap, wantSnap)
			}
			// And both agree with the from-scratch oracle.
			if re := pipeMon.Rescore(0); re != gotSnap {
				t.Fatalf("incremental snapshot %+v != rescore %+v", gotSnap, re)
			}
		})
	}
}
