package core

import (
	"sync"

	"artemis/internal/prefix"
)

// SelfAnnounced is the registry of more-specific announcements ARTEMIS
// itself originates — today that is the mitigation de-aggregations. The
// detector treats any *other* more-specific announcement of owned space as
// a hijack even when its path tail claims a legitimate origin (the paper's
// §2 position: the operator knows exactly what it announces, so sub-prefix
// hijacks of all types are detectable). Without this registry the fix
// would bite its own tail: mitigation announces owned/2^k sub-prefixes,
// the feeds deliver them back, and the detector would raise a sub-prefix
// alert against its own response.
//
// The registry is shared by reference across configuration snapshots
// (Clone copies the pointer, like the RPKI table), so a registration made
// while mitigating under one snapshot is visible to classification under
// the next. The mitigator registers prefixes *before* handing them to the
// controller, so no feed can echo an announcement that is not yet
// expected.
type SelfAnnounced struct {
	mu  sync.RWMutex
	set map[prefix.Prefix]struct{}
}

// NewSelfAnnounced returns an empty registry.
func NewSelfAnnounced() *SelfAnnounced {
	return &SelfAnnounced{set: make(map[prefix.Prefix]struct{})}
}

// Add registers p as an announcement of our own. Nil-safe no-op.
func (s *SelfAnnounced) Add(p prefix.Prefix) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.set[p] = struct{}{}
	s.mu.Unlock()
}

// Remove forgets p (e.g. when a mitigation is rolled back).
func (s *SelfAnnounced) Remove(p prefix.Prefix) {
	if s == nil {
		return
	}
	s.mu.Lock()
	delete(s.set, p)
	s.mu.Unlock()
}

// Has reports whether p is a registered self-announcement. Nil-safe.
func (s *SelfAnnounced) Has(p prefix.Prefix) bool {
	if s == nil {
		return false
	}
	s.mu.RLock()
	_, ok := s.set[p]
	s.mu.RUnlock()
	return ok
}

// List returns the registered prefixes in unspecified order. Nil-safe.
// Used to snapshot the registry into offline reproducers, where the
// mitigation announcements echoed by the feeds must stay whitelisted.
func (s *SelfAnnounced) List() []prefix.Prefix {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]prefix.Prefix, 0, len(s.set))
	for p := range s.set {
		out = append(out, p)
	}
	return out
}

// Len reports the number of registered prefixes (diagnostics).
func (s *SelfAnnounced) Len() int {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.set)
}
