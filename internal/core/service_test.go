package core

import (
	"fmt"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/controller"
	"artemis/internal/feeds/ris"
	"artemis/internal/peering"
	"artemis/internal/prefix"
	"artemis/internal/sim"
	"artemis/internal/simnet"
	"artemis/internal/topo"
)

// TestEndToEndDetectAndMitigate runs the paper's §3 protocol on a small
// deterministic topology: announce, hijack, detect via a feed, mitigate
// via the controller, verify the data plane returns to the victim.
func TestEndToEndDetectAndMitigate(t *testing.T) {
	cfg := topo.DefaultGenConfig()
	cfg.Stubs = 80
	tp, err := topo.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stub0 := topo.FirstASN + bgp.ASN(cfg.Tier1+cfg.Transit)
	victim, err := peering.Attach(tp, 61000, []bgp.ASN{stub0, stub0 + 1}, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := peering.Attach(tp, 61001, []bgp.ASN{stub0 + 20, stub0 + 21}, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	eng := sim.NewEngine(42)
	nw := simnet.New(tp, eng, simnet.Config{})
	owned := prefix.MustParse("10.0.0.0/23")

	// Monitoring: one RIS-style collector peering with a few transit ASes.
	feed := ris.New(nw, []ris.CollectorConfig{{
		Name:       "rrc00",
		Peers:      []bgp.ASN{topo.FirstASN + 10, topo.FirstASN + 20, topo.FirstASN + 40},
		BatchDelay: 10 * time.Second,
	}})

	ctrl := controller.NewSim(nw, victim.Bind(nw))
	artemis, err := NewService(&Config{
		OwnedPrefixes: []prefix.Prefix{owned},
		LegitOrigins:  []bgp.ASN{victim.ASN},
	}, ctrl, eng.Now)
	if err != nil {
		t.Fatal(err)
	}
	artemis.Start(feed)

	// Phase 1: victim announces, wait for convergence.
	victim.Announce(nw, owned)
	eng.Run()
	if len(artemis.Detector.Alerts()) != 0 {
		t.Fatalf("false alert during setup: %+v", artemis.Detector.Alerts())
	}

	// Phase 2: hijack.
	hijackAt := eng.Now()
	attacker.Announce(nw, owned)
	eng.Run()

	alerts := artemis.Detector.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v", alerts)
	}
	if alerts[0].Type != AlertExactOrigin || alerts[0].Origin != attacker.ASN {
		t.Fatalf("alert = %+v", alerts[0])
	}
	detectionDelay := alerts[0].DetectedAt - hijackAt
	if detectionDelay <= 0 || detectionDelay > 90*time.Second {
		t.Fatalf("detection delay = %v", detectionDelay)
	}

	// Phase 3 happened automatically: mitigation announced the /24s and
	// the network converged back. Check the data plane at every AS.
	recs := artemis.Mitigator.Records()
	if len(recs) != 1 || len(recs[0].Prefixes) != 2 {
		t.Fatalf("mitigation records = %+v", recs)
	}
	captured := 0
	for _, asn := range tp.ASes() {
		for _, addr := range []prefix.Addr{prefix.MustParseAddr("10.0.0.1"), prefix.MustParseAddr("10.0.1.1")} {
			origin, ok := nw.Node(asn).ResolveOrigin(addr)
			if !ok {
				t.Fatalf("AS %v lost the route", asn)
			}
			if origin == attacker.ASN {
				captured++
			}
		}
	}
	if captured != 0 {
		t.Fatalf("%d (AS, probe) pairs still captured after mitigation", captured)
	}
}

func TestManualMitigationMode(t *testing.T) {
	tp := topo.Line(3, time.Millisecond)
	eng := sim.NewEngine(1)
	nw := simnet.New(tp, eng, simnet.Config{MRAI: simnet.Disabled, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond})
	inj, _ := controller.NewSimInjector(nw, topo.FirstASN)
	ctrl := controller.NewSim(nw, inj, controller.WithConfigDelay(time.Second))
	feed := ris.New(nw, []ris.CollectorConfig{{Name: "c", Peers: []bgp.ASN{topo.FirstASN + 2}, BatchDelay: time.Second}})

	svc, err := NewService(&Config{
		OwnedPrefixes:    []prefix.Prefix{prefix.MustParse("10.0.0.0/23")},
		LegitOrigins:     []bgp.ASN{topo.FirstASN},
		ManualMitigation: true,
	}, ctrl, eng.Now)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start(feed)
	nw.Announce(topo.FirstASN, prefix.MustParse("10.0.0.0/23"))
	eng.Run()
	nw.Announce(topo.FirstASN+1, prefix.MustParse("10.0.0.0/23")) // hijack
	eng.Run()
	if len(svc.Detector.Alerts()) != 1 {
		t.Fatalf("alerts = %+v", svc.Detector.Alerts())
	}
	if len(svc.Mitigator.Records()) != 0 {
		t.Fatal("mitigation ran despite manual mode")
	}
	// Operator pulls the trigger.
	svc.Mitigator.HandleAlert(svc.Detector.Alerts()[0])
	eng.Run()
	if len(svc.Mitigator.Records()) != 1 {
		t.Fatal("manual mitigation did not run")
	}
	svc.Stop()
}

// flakyInjector fails every announce until the failure budget is spent —
// a southbound outage that heals.
type flakyInjector struct{ failures int }

func (f *flakyInjector) AnnounceRoute(prefix.Prefix) error {
	if f.failures > 0 {
		f.failures--
		return fmt.Errorf("southbound down")
	}
	return nil
}
func (f *flakyInjector) WithdrawRoute(prefix.Prefix) error { return nil }

// TestServiceRetriesFailedMitigation: a transient southbound outage must
// not leave the hijack unmitigated — the controller failure feedback
// releases the incident and the service re-enqueues it (bounded by
// MaxMitigationRetries), so the announcements eventually apply.
func TestServiceRetriesFailedMitigation(t *testing.T) {
	eng := sim.NewEngine(1)
	inj := &flakyInjector{failures: 3}
	ctrl := controller.New(inj, eng.Now, eng.After, controller.WithConfigDelay(time.Second))
	svc, err := NewService(&Config{
		OwnedPrefixes: []prefix.Prefix{prefix.MustParse("10.0.0.0/23")},
		LegitOrigins:  []bgp.ASN{topo.FirstASN},
	}, ctrl, eng.Now)
	if err != nil {
		t.Fatal(err)
	}
	// One hijack alert straight into the detector.
	svc.Detector.Process(announceEvent("10.0.0.0/23", 1001, 666))
	eng.Run() // drains announce → fail → release → retry cycles

	if svc.Mitigator.Failures() == 0 {
		t.Fatal("southbound failures not counted")
	}
	applied := map[string]bool{}
	for _, a := range ctrl.Applied() {
		applied[a.Prefix.String()] = true
	}
	if !applied["10.0.0.0/24"] || !applied["10.0.1.0/24"] {
		t.Fatalf("mitigation never fully applied after retries: %v (failures=%d)", applied, svc.Mitigator.Failures())
	}
	svc.Close()
}

// TestServiceRetryBounded: a permanently dead southbound stops retrying
// after MaxMitigationRetries instead of looping forever.
func TestServiceRetryBounded(t *testing.T) {
	eng := sim.NewEngine(1)
	inj := &flakyInjector{failures: 1 << 30}
	ctrl := controller.New(inj, eng.Now, eng.After, controller.WithConfigDelay(time.Second))
	svc, err := NewService(&Config{
		OwnedPrefixes: []prefix.Prefix{prefix.MustParse("10.0.0.0/23")},
		LegitOrigins:  []bgp.ASN{topo.FirstASN},
	}, ctrl, eng.Now)
	if err != nil {
		t.Fatal(err)
	}
	svc.Detector.Process(announceEvent("10.0.0.0/23", 1001, 666))
	eng.Run() // must terminate: the retry loop is bounded

	if got := ctrl.Failures(); got == 0 {
		t.Fatal("no controller failures recorded")
	}
	if len(ctrl.Applied()) != 0 {
		t.Fatalf("dead southbound applied actions: %+v", ctrl.Applied())
	}
	svc.Close()
}

func TestServiceRejectsBadConfig(t *testing.T) {
	if _, err := NewService(&Config{}, nil, func() time.Duration { return 0 }); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestServiceStopDetaches(t *testing.T) {
	tp := topo.Line(3, time.Millisecond)
	eng := sim.NewEngine(1)
	nw := simnet.New(tp, eng, simnet.Config{MRAI: simnet.Disabled, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond})
	inj, _ := controller.NewSimInjector(nw, topo.FirstASN)
	ctrl := controller.NewSim(nw, inj)
	feed := ris.New(nw, []ris.CollectorConfig{{Name: "c", Peers: []bgp.ASN{topo.FirstASN + 2}, BatchDelay: time.Second}})
	svc, _ := NewService(&Config{
		OwnedPrefixes: []prefix.Prefix{prefix.MustParse("10.0.0.0/23")},
		LegitOrigins:  []bgp.ASN{topo.FirstASN},
	}, ctrl, eng.Now)
	svc.Start(feed)
	svc.Stop()
	nw.Announce(topo.FirstASN+1, prefix.MustParse("10.0.0.0/23"))
	eng.Run()
	if len(svc.Detector.Alerts()) != 0 {
		t.Fatal("detector still attached after Stop")
	}
}
