package core

import (
	"sync"
	"sync/atomic"
	"time"

	"artemis/internal/controller"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/stats"
)

// Service is the assembled ARTEMIS instance: detection, mitigation and
// monitoring wired together per Fig. 1 of the paper. Alerts flow from the
// detector through the MitigationQueue to the Mitigator, so a slow
// controller southbound never stalls whichever goroutine commits alerts
// (the pipeline's sink in daemon mode).
type Service struct {
	// Config is the configuration the service was constructed with. Live
	// reconfiguration installs new snapshots without touching it; use
	// CurrentConfig for the active one.
	Config    *Config
	Detector  *Detector
	Mitigator *Mitigator
	Monitor   *Monitor
	// Mitigation is the queue between alert commit and mitigation. It is
	// synchronous by default (the virtual-time experiments' semantics);
	// WithAsyncMitigation turns it into a bounded background worker.
	Mitigation *MitigationQueue

	// retries counts mitigation re-attempts per incident, bounding the
	// southbound-failure retry loop.
	retryMu sync.Mutex
	retries map[string]int

	// cur is the active configuration snapshot; Reconfigure swaps it.
	cur atomic.Pointer[Config]
	// reconfigMu serializes Reconfigure calls; pl is the bound pipeline
	// whose barrier mechanism gives reconfiguration its serial position
	// (or reconfigureVia, when a host owns a shared multi-tenant pipeline).
	reconfigMu     sync.Mutex
	plMu           sync.Mutex
	pl             *Pipeline
	reconfigureVia func(next *Config, onApply func())

	// now clocks the mitigation rate limiter (wall clock in daemons, the
	// engine clock in experiments).
	now func() time.Duration
	// mitMu guards the MitigationRatePerMin token bucket.
	mitMu     sync.Mutex
	mitTokens float64
	mitLast   time.Duration
	mitSeeded bool
	// mitRateDrops counts alerts the rate limit kept out of auto-mitigation.
	mitRateDrops stats.Counter
	// onMitigationDrop, when set, observes each rate-limited alert.
	onMitigationDrop func(Alert)
}

// DefaultMaxMitigationRetries bounds how many times a failed mitigation is
// automatically re-attempted before the incident is left to the operator,
// when Config.MaxMitigationRetries does not say otherwise.
const DefaultMaxMitigationRetries = 5

// ServiceOption configures NewService.
type ServiceOption func(*serviceOptions)

type serviceOptions struct {
	queue MitigationQueueConfig
}

// WithAsyncMitigation runs alert handling on a bounded background worker
// with the given queue depth (0 → default) instead of inline on the
// alert-committing goroutine. Live daemons want this; virtual-time
// experiments must not use it.
func WithAsyncMitigation(depth int) ServiceOption {
	return func(o *serviceOptions) {
		o.queue = MitigationQueueConfig{Depth: depth, Synchronous: false}
	}
}

// NewService validates the configuration and assembles the services.
// now supplies timestamps (the simulation engine's clock, or a wall-clock
// adapter in live mode).
func NewService(cfg *Config, ctrl *controller.Controller, now func() time.Duration, opts ...ServiceOption) (*Service, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := serviceOptions{queue: MitigationQueueConfig{Synchronous: true}}
	for _, opt := range opts {
		opt(&o)
	}
	if cfg.Self == nil {
		// The self-announcement registry ties mitigation to detection: the
		// mitigator registers its de-aggregations here so the detector does
		// not flag them as sub-prefix hijacks when the feeds echo them back.
		cfg.Self = NewSelfAnnounced()
	}
	s := &Service{
		Config:    cfg,
		Detector:  NewDetector(cfg),
		Mitigator: NewMitigator(cfg, ctrl, now),
		Monitor:   NewMonitor(cfg),
		retries:   make(map[string]int),
		now:       now,
	}
	s.cur.Store(cfg)
	s.Mitigation = NewMitigationQueue(s.Mitigator.HandleAlert, o.queue, s.Mitigator.Failures)
	if !cfg.ManualMitigation {
		s.Detector.OnAlert(func(a Alert) {
			if !s.allowMitigation() {
				s.mitRateDrops.Inc()
				s.mitMu.Lock()
				fn := s.onMitigationDrop
				s.mitMu.Unlock()
				if fn != nil {
					fn(a)
				}
				return
			}
			s.Mitigation.Enqueue(a)
		})
	}
	if ctrl != nil {
		// The controller's southbound is asynchronous: Announce returns
		// before the injector runs, so mitigation failures only surface
		// through the action results. Feed them back so failed incidents
		// are marked and released, then re-enqueue them: the detector's
		// dedup never re-delivers an alert for an incident it has seen, so
		// without this loop a transient southbound outage would leave the
		// hijack unmitigated forever. Retries are bounded per incident;
		// each cycle is naturally paced by the controller's config delay.
		ctrl.OnResult(func(a controller.Action) {
			if a.Err == nil || a.Kind != controller.ActionAnnounce {
				return
			}
			// The bound is read from the active snapshot on every failure,
			// so retuning Config.MaxMitigationRetries applies to incidents
			// already in the retry loop. Retries bypass the mitigation rate
			// limit: the incident was already admitted once.
			max := s.CurrentConfig().MaxMitigationRetries
			if max == 0 {
				max = DefaultMaxMitigationRetries
			}
			for _, alert := range s.Mitigator.NoteAnnounceFailure(a.Prefix, a.Err) {
				s.retryMu.Lock()
				s.retries[alert.Key()]++
				n := s.retries[alert.Key()]
				s.retryMu.Unlock()
				if n <= max {
					s.Mitigation.Enqueue(alert)
				}
			}
		})
	}
	return s, nil
}

// BindPipeline registers the pipeline the service's feeds flow through.
// Reconfigure then routes config swaps through the pipeline's barrier so
// they land at a well-defined serial position in the event stream. A
// service without a bound pipeline (the serial trial path) reconfigures
// immediately.
func (s *Service) BindPipeline(pl *Pipeline) {
	s.plMu.Lock()
	s.pl = pl
	s.plMu.Unlock()
}

// BindReconfigureVia registers a custom barrier executor: fn must install
// next at a well-defined serial position and run onApply there (the
// multi-tenant host does this by rebuilding the shared policy table and
// calling Pipeline.ReconfigureTable). It takes precedence over a bound
// pipeline.
func (s *Service) BindReconfigureVia(fn func(next *Config, onApply func())) {
	s.plMu.Lock()
	s.reconfigureVia = fn
	s.plMu.Unlock()
}

func (s *Service) boundPipeline() *Pipeline {
	s.plMu.Lock()
	defer s.plMu.Unlock()
	return s.pl
}

// allowMitigation spends one token from the MitigationRatePerMin bucket
// (burst = one minute's allowance, clocked by s.now). Unlimited when the
// active config does not set a rate.
func (s *Service) allowMitigation() bool {
	perMin := s.CurrentConfig().MitigationRatePerMin
	if perMin <= 0 {
		return true
	}
	now := s.now()
	s.mitMu.Lock()
	defer s.mitMu.Unlock()
	if !s.mitSeeded {
		s.mitSeeded = true
		s.mitLast = now
		s.mitTokens = float64(perMin)
	}
	if now > s.mitLast {
		s.mitTokens += (now - s.mitLast).Minutes() * float64(perMin)
		if max := float64(perMin); s.mitTokens > max {
			s.mitTokens = max
		}
		s.mitLast = now
	}
	if s.mitTokens >= 1 {
		s.mitTokens--
		return true
	}
	return false
}

// MitigationRateDrops reports how many alerts the MitigationRatePerMin
// limit kept out of auto-mitigation (they remain visible as alerts, and
// the operator can still mitigate manually).
func (s *Service) MitigationRateDrops() int64 { return s.mitRateDrops.Load() }

// OnMitigationDrop registers fn to observe each rate-limited alert.
// Register before events flow; fn runs on the alert-committing goroutine
// and must not block.
func (s *Service) OnMitigationDrop(fn func(Alert)) {
	s.mitMu.Lock()
	s.onMitigationDrop = fn
	s.mitMu.Unlock()
}

// CurrentConfig returns the active configuration snapshot. Treat it as
// immutable: derive changes with Clone and apply them via Reconfigure.
func (s *Service) CurrentConfig() *Config { return s.cur.Load() }

// Reconfigure validates next and atomically swaps the whole service —
// detector classification, pipeline shard routing, monitor probe set and
// mitigation clamps — to it. With a bound pipeline the swap happens at a
// barrier in the sink's serial order (see Pipeline.Reconfigure for the
// equivalence argument) and Reconfigure returns once it has been applied;
// without one it happens immediately. next is cloned, so the caller may
// keep mutating its copy. Reconfigure must not be called from an alert
// handler or another callback running on the pipeline's sink goroutine.
//
// Hot-tunable alongside the prefix/origin/upstream sets: the
// AlertDedupTTL/AlertDedupMax dedup bounds (the live set is retuned in
// place), MaxMitigationRetries (read on every failure) and the
// MaxEventsPerSecond / MitigationRatePerMin limits. Not hot-swappable:
// the ManualMitigation wiring, fixed at construction.
func (s *Service) Reconfigure(next *Config) error {
	if err := next.Validate(); err != nil {
		return err
	}
	next = next.Clone()
	if next.Self == nil {
		// Carry the self-announcement registry across reconfiguration:
		// mitigations dispatched under the old snapshot stay expected.
		next.Self = s.CurrentConfig().Self
	}
	s.reconfigMu.Lock()
	defer s.reconfigMu.Unlock()
	s.plMu.Lock()
	via, pl := s.reconfigureVia, s.pl
	s.plMu.Unlock()
	if via != nil {
		via(next, func() { s.swapConfig(next) })
		return nil
	}
	if pl != nil {
		pl.Reconfigure(next, func() { s.swapConfig(next) })
		return nil
	}
	s.swapConfig(next)
	return nil
}

// swapConfig applies a validated snapshot to every subsystem. It runs
// either inline (serial mode) or on the pipeline's sink goroutine (at the
// reconfiguration barrier's sequence position).
func (s *Service) swapConfig(next *Config) {
	s.Detector.setConfig(next)
	s.Monitor.SetConfig(next)
	s.Mitigator.setConfig(next)
	s.cur.Store(next)
}

// Start attaches both the detector and the monitor to the sources.
func (s *Service) Start(sources ...feedtypes.Source) {
	s.Detector.Start(sources...)
	s.Monitor.Start(sources...)
}

// Stop detaches everything from the sources. The mitigation queue keeps
// running (manual mitigation stays possible); Close releases it.
func (s *Service) Stop() {
	s.Detector.Stop()
	s.Monitor.Stop()
}

// Close stops the service and drains the mitigation queue: every alert
// already accepted is handled before Close returns. Safe to call more
// than once.
func (s *Service) Close() {
	s.Stop()
	s.Mitigation.Close()
}
