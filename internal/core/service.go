package core

import (
	"time"

	"artemis/internal/controller"
	"artemis/internal/feeds/feedtypes"
)

// Service is the assembled ARTEMIS instance: detection, mitigation and
// monitoring wired together per Fig. 1 of the paper.
type Service struct {
	Config    *Config
	Detector  *Detector
	Mitigator *Mitigator
	Monitor   *Monitor
}

// NewService validates the configuration and assembles the services.
// now supplies timestamps (the simulation engine's clock, or a wall-clock
// adapter in live mode).
func NewService(cfg *Config, ctrl *controller.Controller, now func() time.Duration) (*Service, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Service{
		Config:    cfg,
		Detector:  NewDetector(cfg),
		Mitigator: NewMitigator(cfg, ctrl, now),
		Monitor:   NewMonitor(cfg),
	}
	if !cfg.ManualMitigation {
		s.Detector.OnAlert(s.Mitigator.HandleAlert)
	}
	return s, nil
}

// Start attaches both the detector and the monitor to the sources.
func (s *Service) Start(sources ...feedtypes.Source) {
	s.Detector.Start(sources...)
	s.Monitor.Start(sources...)
}

// Stop detaches everything.
func (s *Service) Stop() {
	s.Detector.Stop()
	s.Monitor.Stop()
}
