package core

import (
	"sync"
	"testing"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

// TestAsyncMitigationDoesNotStallSink: with the queue in async mode, a
// blocked alert handler must not stall the pipeline's sink — Submit and
// Flush keep completing while mitigation is stuck. (Before the queue, the
// handler ran on the sink goroutine and this test would deadlock.)
func TestAsyncMitigationDoesNotStallSink(t *testing.T) {
	gate := make(chan struct{}) // handler blocks until the test opens it
	var mu sync.Mutex
	var handled []string
	q := NewMitigationQueue(func(a Alert) {
		<-gate
		mu.Lock()
		handled = append(handled, a.Key())
		mu.Unlock()
	}, MitigationQueueConfig{Depth: 64}, nil)

	det := NewDetector(multiOwnedConfig())
	det.OnAlert(q.Enqueue)
	p := NewPipeline(det, NewMonitor(multiOwnedConfig()), PipelineConfig{Shards: 2})

	mk := func(pfx string, origin bgp.ASN) feedtypes.Event {
		return feedtypes.Event{
			Source: "ris", VantagePoint: 1, Kind: feedtypes.Announce,
			Prefix: prefix.MustParse(pfx), Path: []bgp.ASN{1, origin},
		}
	}
	// Three distinct incidents: three alerts enqueue behind the gate.
	p.Submit([]feedtypes.Event{mk("10.0.0.0/23", 666)})
	p.Submit([]feedtypes.Event{mk("10.1.0.0/22", 777)})
	p.Submit([]feedtypes.Event{mk("192.0.2.0/24", 888)})
	// Flush returns even though no alert has been handled: the sink only
	// enqueues. With the pre-queue inline handler this would hang forever.
	p.Flush()
	snap := q.Snapshot()
	if snap.Enqueued != 3 || snap.Handled != 0 {
		t.Fatalf("enqueued %d handled %d before gate opened, want 3/0", snap.Enqueued, snap.Handled)
	}
	// Throughput continues while mitigation is stuck.
	p.Submit(mixedEvents(200))
	p.Flush()
	p.Close()

	close(gate)
	q.Close() // drains: all accepted alerts handled
	snap = q.Snapshot()
	if snap.Handled != snap.Enqueued {
		t.Fatalf("close did not drain: handled %d of %d", snap.Handled, snap.Enqueued)
	}
	mu.Lock()
	defer mu.Unlock()
	// Ordered queue: alerts handled in commit order.
	want := []string{
		Alert{Type: AlertExactOrigin, Prefix: prefix.MustParse("10.0.0.0/23"), Origin: 666}.Key(),
		Alert{Type: AlertExactOrigin, Prefix: prefix.MustParse("10.1.0.0/22"), Origin: 777}.Key(),
		Alert{Type: AlertExactOrigin, Prefix: prefix.MustParse("192.0.2.0/24"), Origin: 888}.Key(),
	}
	for i, k := range want {
		if i >= len(handled) || handled[i] != k {
			t.Fatalf("handled order %v, want prefix %v", handled, want)
		}
	}
}

// TestMitigationQueueCloseRace drives concurrent enqueuers against Close
// under -race: no alert may be lost (handled + dropped == enqueue
// attempts) and every accepted alert is handled.
func TestMitigationQueueCloseRace(t *testing.T) {
	const (
		enqueuers = 8
		perEnq    = 200
	)
	var mu sync.Mutex
	handled := 0
	q := NewMitigationQueue(func(Alert) {
		mu.Lock()
		handled++
		mu.Unlock()
	}, MitigationQueueConfig{Depth: 4}, nil)

	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < enqueuers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perEnq; i++ {
				q.Enqueue(Alert{Type: AlertExactOrigin, Origin: bgp.ASN(g*1000 + i)})
			}
		}(g)
	}
	close(start)
	// Close races the enqueuers: some alerts get in, late ones drop.
	q.Close()
	wg.Wait()

	snap := q.Snapshot()
	if snap.Enqueued+snap.Dropped != enqueuers*perEnq {
		t.Fatalf("accounting: enqueued %d + dropped %d != %d", snap.Enqueued, snap.Dropped, enqueuers*perEnq)
	}
	mu.Lock()
	defer mu.Unlock()
	if int64(handled) != snap.Enqueued || snap.Handled != snap.Enqueued {
		t.Fatalf("accepted %d, handled %d (counter %d): accepted alerts lost on Close",
			snap.Enqueued, handled, snap.Handled)
	}
}

// TestMitigationQueueSynchronous: sync mode runs the handler inline —
// the virtual-time experiments' semantics.
func TestMitigationQueueSynchronous(t *testing.T) {
	var handled []bgp.ASN
	q := NewMitigationQueue(func(a Alert) { handled = append(handled, a.Origin) },
		MitigationQueueConfig{Synchronous: true}, nil)
	q.Enqueue(Alert{Origin: 1})
	q.Enqueue(Alert{Origin: 2})
	if len(handled) != 2 || handled[0] != 1 || handled[1] != 2 {
		t.Fatalf("handled = %v", handled) // inline: visible immediately, in order
	}
	q.Close()
	q.Enqueue(Alert{Origin: 3})
	if len(handled) != 2 {
		t.Fatal("enqueue after close ran the handler")
	}
	if s := q.Snapshot(); s.Dropped != 1 || !s.Synchronous {
		t.Fatalf("snapshot = %+v", s)
	}
}
