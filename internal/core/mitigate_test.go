package core

import (
	"testing"
	"time"

	"artemis/internal/controller"
	"artemis/internal/prefix"
	"artemis/internal/sim"
	"artemis/internal/simnet"
	"artemis/internal/topo"
)

func simWorld(t *testing.T) (*simnet.Network, *sim.Engine, *controller.Controller) {
	t.Helper()
	tp := topo.Line(3, time.Millisecond)
	eng := sim.NewEngine(1)
	nw := simnet.New(tp, eng, simnet.Config{MRAI: simnet.Disabled, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond})
	inj, err := controller.NewSimInjector(nw, topo.FirstASN)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := controller.NewSim(nw, inj, controller.WithConfigDelay(time.Second))
	return nw, eng, ctrl
}

func alertOf(typ AlertType, p, owned string) Alert {
	return Alert{Type: typ, Prefix: prefix.MustParse(p), Owned: prefix.MustParse(owned), Origin: 666}
}

func TestMitigationPrefixesExact(t *testing.T) {
	_, _, ctrl := simWorld(t)
	m := NewMitigator(testConfig(), ctrl, func() time.Duration { return 0 })
	prefixes, competitive := m.MitigationPrefixes(alertOf(AlertExactOrigin, "10.0.0.0/23", "10.0.0.0/23"))
	if competitive {
		t.Fatal("a /23 hijack is strictly mitigable")
	}
	if len(prefixes) != 2 || prefixes[0].String() != "10.0.0.0/24" || prefixes[1].String() != "10.0.1.0/24" {
		t.Fatalf("prefixes = %v", prefixes)
	}
}

func TestMitigationPrefixesSubPrefix(t *testing.T) {
	_, _, ctrl := simWorld(t)
	cfg := testConfig()
	cfg.OwnedPrefixes = []prefix.Prefix{prefix.MustParse("10.0.0.0/22")}
	m := NewMitigator(cfg, ctrl, func() time.Duration { return 0 })
	// Attacker announced a /23 inside our /22: respond with its two /24s.
	prefixes, competitive := m.MitigationPrefixes(alertOf(AlertSubPrefix, "10.0.2.0/23", "10.0.0.0/22"))
	if competitive || len(prefixes) != 2 || prefixes[0].String() != "10.0.2.0/24" {
		t.Fatalf("prefixes = %v competitive = %v", prefixes, competitive)
	}
}

func TestMitigationPrefixesSlash24IsCompetitive(t *testing.T) {
	_, _, ctrl := simWorld(t)
	cfg := testConfig()
	cfg.OwnedPrefixes = []prefix.Prefix{prefix.MustParse("10.0.0.0/24")}
	m := NewMitigator(cfg, ctrl, func() time.Duration { return 0 })
	prefixes, competitive := m.MitigationPrefixes(alertOf(AlertExactOrigin, "10.0.0.0/24", "10.0.0.0/24"))
	if !competitive {
		t.Fatal("/24 mitigation must be flagged competitive (§2 caveat)")
	}
	if len(prefixes) != 1 || prefixes[0].String() != "10.0.0.0/24" {
		t.Fatalf("prefixes = %v", prefixes)
	}
}

func TestMitigationPrefixesSquat(t *testing.T) {
	_, _, ctrl := simWorld(t)
	m := NewMitigator(testConfig(), ctrl, func() time.Duration { return 0 })
	prefixes, competitive := m.MitigationPrefixes(alertOf(AlertSquat, "10.0.0.0/16", "10.0.0.0/23"))
	if competitive || len(prefixes) != 1 || prefixes[0].String() != "10.0.0.0/23" {
		t.Fatalf("squat response = %v competitive=%v", prefixes, competitive)
	}
}

func TestHandleAlertAnnouncesViaController(t *testing.T) {
	nw, eng, ctrl := simWorld(t)
	m := NewMitigator(testConfig(), ctrl, nw.Engine.Now)
	m.HandleAlert(alertOf(AlertExactOrigin, "10.0.0.0/23", "10.0.0.0/23"))
	eng.Run()
	for _, s := range []string{"10.0.0.0/24", "10.0.1.0/24"} {
		if _, ok := nw.Node(topo.FirstASN + 2).BestRoute(prefix.MustParse(s)); !ok {
			t.Fatalf("%s not propagated", s)
		}
	}
	recs := m.Records()
	if len(recs) != 1 || len(recs[0].Prefixes) != 2 || recs[0].Competitive {
		t.Fatalf("records = %+v", recs)
	}
}

func TestHandleAlertIdempotent(t *testing.T) {
	nw, eng, ctrl := simWorld(t)
	m := NewMitigator(testConfig(), ctrl, nw.Engine.Now)
	a := alertOf(AlertExactOrigin, "10.0.0.0/23", "10.0.0.0/23")
	m.HandleAlert(a)
	m.HandleAlert(a)
	eng.Run()
	if len(m.Records()) != 1 {
		t.Fatalf("records = %+v", m.Records())
	}
	if len(ctrl.Actions()) != 2 {
		t.Fatalf("controller actions = %+v (duplicate mitigation ran)", ctrl.Actions())
	}
}
