package core

import (
	"fmt"
	"testing"
	"time"

	"artemis/internal/controller"
	"artemis/internal/prefix"
	"artemis/internal/sim"
	"artemis/internal/simnet"
	"artemis/internal/topo"
)

func simWorld(t *testing.T) (*simnet.Network, *sim.Engine, *controller.Controller) {
	t.Helper()
	tp := topo.Line(3, time.Millisecond)
	eng := sim.NewEngine(1)
	nw := simnet.New(tp, eng, simnet.Config{MRAI: simnet.Disabled, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond})
	inj, err := controller.NewSimInjector(nw, topo.FirstASN)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := controller.NewSim(nw, inj, controller.WithConfigDelay(time.Second))
	return nw, eng, ctrl
}

func alertOf(typ AlertType, p, owned string) Alert {
	return Alert{Type: typ, Prefix: prefix.MustParse(p), Owned: prefix.MustParse(owned), Origin: 666}
}

func TestMitigationPrefixesExact(t *testing.T) {
	_, _, ctrl := simWorld(t)
	m := NewMitigator(testConfig(), ctrl, func() time.Duration { return 0 })
	prefixes, competitive := m.MitigationPrefixes(alertOf(AlertExactOrigin, "10.0.0.0/23", "10.0.0.0/23"))
	if competitive {
		t.Fatal("a /23 hijack is strictly mitigable")
	}
	if len(prefixes) != 2 || prefixes[0].String() != "10.0.0.0/24" || prefixes[1].String() != "10.0.1.0/24" {
		t.Fatalf("prefixes = %v", prefixes)
	}
}

func TestMitigationPrefixesSubPrefix(t *testing.T) {
	_, _, ctrl := simWorld(t)
	cfg := testConfig()
	cfg.OwnedPrefixes = []prefix.Prefix{prefix.MustParse("10.0.0.0/22")}
	m := NewMitigator(cfg, ctrl, func() time.Duration { return 0 })
	// Attacker announced a /23 inside our /22: respond with its two /24s.
	prefixes, competitive := m.MitigationPrefixes(alertOf(AlertSubPrefix, "10.0.2.0/23", "10.0.0.0/22"))
	if competitive || len(prefixes) != 2 || prefixes[0].String() != "10.0.2.0/24" {
		t.Fatalf("prefixes = %v competitive = %v", prefixes, competitive)
	}
}

func TestMitigationPrefixesSlash24IsCompetitive(t *testing.T) {
	_, _, ctrl := simWorld(t)
	cfg := testConfig()
	cfg.OwnedPrefixes = []prefix.Prefix{prefix.MustParse("10.0.0.0/24")}
	m := NewMitigator(cfg, ctrl, func() time.Duration { return 0 })
	prefixes, competitive := m.MitigationPrefixes(alertOf(AlertExactOrigin, "10.0.0.0/24", "10.0.0.0/24"))
	if !competitive {
		t.Fatal("/24 mitigation must be flagged competitive (§2 caveat)")
	}
	if len(prefixes) != 1 || prefixes[0].String() != "10.0.0.0/24" {
		t.Fatalf("prefixes = %v", prefixes)
	}
}

func TestMitigationPrefixesSquat(t *testing.T) {
	_, _, ctrl := simWorld(t)
	m := NewMitigator(testConfig(), ctrl, func() time.Duration { return 0 })
	prefixes, competitive := m.MitigationPrefixes(alertOf(AlertSquat, "10.0.0.0/16", "10.0.0.0/23"))
	if competitive || len(prefixes) != 1 || prefixes[0].String() != "10.0.0.0/23" {
		t.Fatalf("squat response = %v competitive=%v", prefixes, competitive)
	}
}

func TestHandleAlertAnnouncesViaController(t *testing.T) {
	nw, eng, ctrl := simWorld(t)
	m := NewMitigator(testConfig(), ctrl, nw.Engine.Now)
	m.HandleAlert(alertOf(AlertExactOrigin, "10.0.0.0/23", "10.0.0.0/23"))
	eng.Run()
	for _, s := range []string{"10.0.0.0/24", "10.0.1.0/24"} {
		if _, ok := nw.Node(topo.FirstASN + 2).BestRoute(prefix.MustParse(s)); !ok {
			t.Fatalf("%s not propagated", s)
		}
	}
	recs := m.Records()
	if len(recs) != 1 || len(recs[0].Prefixes) != 2 || recs[0].Competitive {
		t.Fatalf("records = %+v", recs)
	}
}

// failingAnnouncer rejects announcements after the first `okBefore`
// calls — the shape of a mid-loop southbound failure.
type failingAnnouncer struct {
	calls     int
	okBefore  int
	announced []prefix.Prefix
}

func (f *failingAnnouncer) Announce(p prefix.Prefix) error {
	f.calls++
	if f.calls > f.okBefore {
		return fmt.Errorf("southbound down (call %d)", f.calls)
	}
	f.announced = append(f.announced, p)
	return nil
}

// TestHandleAlertFailureRecordedAndRetryable: a controller failure must
// leave a failed record (with the partial set of announcements already in
// flight), bump the failure counter, and release the incident so a retry
// can succeed — not vanish silently with done[key] set.
func TestHandleAlertFailureRecordedAndRetryable(t *testing.T) {
	ann := &failingAnnouncer{okBefore: 1} // first /24 accepted, second fails
	m := NewMitigator(testConfig(), ann, func() time.Duration { return 0 })
	a := alertOf(AlertExactOrigin, "10.0.0.0/23", "10.0.0.0/23")

	m.HandleAlert(a)
	recs := m.Records()
	if len(recs) != 1 || !recs[0].Failed() {
		t.Fatalf("failed mitigation not recorded: %+v", recs)
	}
	if len(recs[0].Announced) != 1 || recs[0].Announced[0].String() != "10.0.0.0/24" {
		t.Fatalf("partial announcements untracked: %+v", recs[0])
	}
	if m.Failures() != 1 {
		t.Fatalf("failure counter = %d, want 1", m.Failures())
	}

	// The incident was released: a retry runs mitigation again and, with
	// the southbound back, succeeds — announcing only the missing prefix,
	// not duplicating the one already in flight.
	ann.okBefore = 1 << 30
	m.HandleAlert(a)
	recs = m.Records()
	if len(recs) != 2 || recs[1].Failed() {
		t.Fatalf("retry did not run or failed: %+v", recs)
	}
	if len(recs[1].Announced) != 1 || recs[1].Announced[0].String() != "10.0.1.0/24" {
		t.Fatalf("retry announced %v, want just the missing 10.0.1.0/24", recs[1].Announced)
	}
	if len(ann.announced) != 2 {
		t.Fatalf("controller saw %v: duplicate or missing announcements", ann.announced)
	}
	// …and the incident is now done: a third call is a no-op.
	m.HandleAlert(a)
	if len(m.Records()) != 2 {
		t.Fatalf("mitigation re-ran after success: %+v", m.Records())
	}
}

// TestAsyncFailureFeedbackReleasesIncident exercises the path a real
// (asynchronous) controller takes: Announce succeeds immediately, the
// southbound fails later, and the failure comes back via
// NoteAnnounceFailure (wired to controller.OnResult by the Service). The
// incident must be marked failed, counted, and become retryable — with
// the retry re-announcing exactly the failed prefix.
func TestAsyncFailureFeedbackReleasesIncident(t *testing.T) {
	ann := &failingAnnouncer{okBefore: 1 << 30} // controller accepts everything
	m := NewMitigator(testConfig(), ann, func() time.Duration { return 0 })
	a := alertOf(AlertExactOrigin, "10.0.0.0/23", "10.0.0.0/23")

	m.HandleAlert(a)
	if recs := m.Records(); len(recs) != 1 || recs[0].Failed() {
		t.Fatalf("records = %+v", recs)
	}
	// The southbound later rejects BOTH /24s: the second failure must not
	// be swallowed by the already-failed record.
	m.NoteAnnounceFailure(prefix.MustParse("10.0.1.0/24"), fmt.Errorf("session down"))
	m.NoteAnnounceFailure(prefix.MustParse("10.0.0.0/24"), fmt.Errorf("session down"))
	recs := m.Records()
	if !recs[0].Failed() {
		t.Fatalf("async failure not reflected in record: %+v", recs[0])
	}
	if m.Failures() != 2 {
		t.Fatalf("failures = %d, want 2", m.Failures())
	}
	// Retry (e.g. operator-triggered) re-announces both failed /24s.
	m.HandleAlert(a)
	recs = m.Records()
	if len(recs) != 2 || len(recs[1].Announced) != 2 {
		t.Fatalf("retry records = %+v", recs)
	}
	if len(ann.announced) != 4 { // two originals + two re-announces
		t.Fatalf("controller saw %v", ann.announced)
	}
}

// TestAsyncFailureSinglePrefix: when only one of two announcements fails
// downstream, the retry re-announces exactly that one.
func TestAsyncFailureSinglePrefix(t *testing.T) {
	ann := &failingAnnouncer{okBefore: 1 << 30}
	m := NewMitigator(testConfig(), ann, func() time.Duration { return 0 })
	a := alertOf(AlertExactOrigin, "10.0.0.0/23", "10.0.0.0/23")
	m.HandleAlert(a)
	m.NoteAnnounceFailure(prefix.MustParse("10.0.1.0/24"), fmt.Errorf("session down"))
	m.HandleAlert(a)
	recs := m.Records()
	if len(recs) != 2 || len(recs[1].Announced) != 1 || recs[1].Announced[0].String() != "10.0.1.0/24" {
		t.Fatalf("retry records = %+v", recs)
	}
	if len(ann.announced) != 3 {
		t.Fatalf("controller saw %v", ann.announced)
	}
}

func TestHandleAlertIdempotent(t *testing.T) {
	nw, eng, ctrl := simWorld(t)
	m := NewMitigator(testConfig(), ctrl, nw.Engine.Now)
	a := alertOf(AlertExactOrigin, "10.0.0.0/23", "10.0.0.0/23")
	m.HandleAlert(a)
	m.HandleAlert(a)
	eng.Run()
	if len(m.Records()) != 1 {
		t.Fatalf("records = %+v", m.Records())
	}
	if len(ctrl.Actions()) != 2 {
		t.Fatalf("controller actions = %+v (duplicate mitigation ran)", ctrl.Actions())
	}
}
