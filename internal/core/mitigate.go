package core

import (
	"sync"
	"sync/atomic"
	"time"

	"artemis/internal/prefix"
	"artemis/internal/stats"
)

// MitigationRecord documents one mitigation action, successful or not.
type MitigationRecord struct {
	Alert Alert
	// Prefixes are the de-aggregated announcements requested.
	Prefixes []prefix.Prefix
	// Announced are the prefixes the controller accepted; on success it
	// equals Prefixes, on a mid-loop failure it is the partial set already
	// requested (those announcements are in flight and tracked here even
	// though the incident as a whole failed).
	Announced []prefix.Prefix
	// TriggeredAt is when the mitigator asked the controller.
	TriggeredAt time.Duration
	// Competitive marks mitigations that cannot strictly win LPM (the
	// attacked prefix is already at the de-aggregation limit, e.g. a /24):
	// ARTEMIS re-announces the same prefix and competes on path length —
	// "it might not work for /24 prefixes" (§2).
	Competitive bool
	// Err is the controller failure that aborted the action; nil on
	// success. Failed incidents are cleared from the dedup set so a later
	// alert (or an operator retry) runs mitigation again.
	Err error
}

// Failed reports whether the mitigation aborted on a controller error.
func (r MitigationRecord) Failed() bool { return r.Err != nil }

// RouteAnnouncer is the slice of the controller the mitigator drives.
// *controller.Controller implements it; tests substitute failing stubs.
type RouteAnnouncer interface {
	Announce(p prefix.Prefix) error
}

// Mitigator turns alerts into de-aggregated announcements via the
// controller.
type Mitigator struct {
	// cfg is the active configuration snapshot; reconfiguration swaps it
	// atomically. A pending alert picks up whatever snapshot is active
	// when its mitigation is handled — the same semantics as an operator
	// changing the de-aggregation clamp between two incidents.
	cfg  atomic.Pointer[Config]
	ctrl RouteAnnouncer
	now  func() time.Duration

	mu       sync.Mutex
	records  []MitigationRecord
	onRecord []func(MitigationRecord)
	done     map[string]bool
	// requested tracks, per incident, the prefixes the controller has
	// accepted and that are not known to have failed downstream. A retry
	// after a partial failure announces only what is missing instead of
	// duplicating announcements already in flight.
	requested map[string]map[prefix.Prefix]bool

	failures stats.Counter
}

// NewMitigator builds the mitigation service. now supplies timestamps
// (engine clock in simulation).
func NewMitigator(cfg *Config, ctrl RouteAnnouncer, now func() time.Duration) *Mitigator {
	m := &Mitigator{
		ctrl: ctrl, now: now,
		done:      make(map[string]bool),
		requested: make(map[string]map[prefix.Prefix]bool),
	}
	m.cfg.Store(cfg)
	return m
}

// setConfig installs a new configuration snapshot. In-flight incidents
// keep their dedup claims and requested-prefix tracking.
func (m *Mitigator) setConfig(next *Config) { m.cfg.Store(next) }

// OnRecord registers a callback invoked after each mitigation attempt
// completes (successfully or not), and again when an announcement the
// controller had accepted later fails downstream. The record passed is a
// snapshot; callbacks run on the goroutine that handled the alert (or the
// controller's result callback) and must not block.
func (m *Mitigator) OnRecord(fn func(MitigationRecord)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onRecord = append(m.onRecord, fn)
}

// notifyRecord snapshots record idx and dispatches the callbacks.
func (m *Mitigator) notifyRecord(idx int) {
	m.mu.Lock()
	rec := m.records[idx]
	rec.Prefixes = append([]prefix.Prefix(nil), rec.Prefixes...)
	rec.Announced = append([]prefix.Prefix(nil), rec.Announced...)
	fns := make([]func(MitigationRecord), len(m.onRecord))
	copy(fns, m.onRecord)
	m.mu.Unlock()
	for _, fn := range fns {
		fn(rec)
	}
}

// MitigationPrefixes computes the response to an alert: the sub-prefixes
// to announce. For a hijack of prefix P the response covers P with
// announcements one bit more specific (so LPM strictly prefers them),
// clamped at the filtering limit; at the limit, the same prefix is
// re-announced competitively. For squatting (a covering super-prefix),
// the owned prefix itself is (re-)announced: it is already more specific
// than the attacker's.
func (m *Mitigator) MitigationPrefixes(a Alert) (prefixes []prefix.Prefix, competitive bool) {
	scope := a.Prefix
	if a.Type == AlertSquat {
		scope = a.Owned
	}
	maxLen := m.cfg.Load().maxLenFor(scope)
	target := scope.Bits() + 1
	if a.Type == AlertSquat {
		// The owned prefix already beats the squatter's covering prefix.
		return []prefix.Prefix{scope}, false
	}
	if target > maxLen {
		// Cannot out-specific the attacker: compete with the same prefix.
		return []prefix.Prefix{scope}, true
	}
	subs, err := scope.Deaggregate(target)
	if err != nil {
		// Unreachable for target = bits+1; fall back to competition.
		return []prefix.Prefix{scope}, true
	}
	return subs, false
}

// HandleAlert runs mitigation for one alert (idempotent per incident).
// It is the handler wired to the detector when AutoMitigate is on, and
// the entry point an operator UI would call in manual mode. A controller
// failure is recorded (with the partial set of announcements already in
// flight) and the incident is released for retry instead of being
// silently marked done.
func (m *Mitigator) HandleAlert(a Alert) {
	key := a.Key()
	m.mu.Lock()
	if m.done[key] {
		m.mu.Unlock()
		return
	}
	m.done[key] = true // claim the incident so concurrent retries don't race
	m.mu.Unlock()

	prefixes, competitive := m.MitigationPrefixes(a)
	// Register our own de-aggregations before the controller can route
	// them: every feed echoes announcements back into the detector, and an
	// unregistered more-specific of owned space would raise a sub-prefix
	// alert against our own mitigation.
	if self := m.cfg.Load().Self; self != nil {
		for _, p := range prefixes {
			self.Add(p)
		}
	}
	// Register the record before touching the controller: a failure
	// callback (NoteAnnounceFailure) can fire on another goroutine as soon
	// as the first Announce is scheduled, and it must find the incident.
	m.mu.Lock()
	m.records = append(m.records, MitigationRecord{
		Alert:       a,
		Prefixes:    prefixes,
		TriggeredAt: m.now(),
		Competitive: competitive,
	})
	idx := len(m.records) - 1
	m.mu.Unlock()

	for _, p := range prefixes {
		m.mu.Lock()
		if m.requested[key] == nil {
			m.requested[key] = make(map[prefix.Prefix]bool)
		}
		if m.requested[key][p] {
			// A previous (partially failed) attempt already got this one
			// accepted: a retry fills the gaps, it does not duplicate
			// announcements already in flight.
			m.mu.Unlock()
			continue
		}
		m.requested[key][p] = true // claim before Announce: failure feedback matches on it
		m.mu.Unlock()
		if err := m.ctrl.Announce(p); err != nil {
			m.mu.Lock()
			delete(m.requested[key], p) // never accepted
			if m.records[idx].Err == nil {
				m.records[idx].Err = err
			}
			m.failures.Inc()
			delete(m.done, key) // release: the incident may be retried
			m.mu.Unlock()
			m.notifyRecord(idx)
			return
		}
		m.mu.Lock()
		m.records[idx].Announced = append(m.records[idx].Announced, p)
		m.mu.Unlock()
	}
	m.notifyRecord(idx)
}

// NoteAnnounceFailure reports that an announcement the controller had
// accepted failed downstream (the southbound is asynchronous, so
// HandleAlert cannot see this itself — the Service wires it to
// controller.OnResult). The announcement of p is one shared route, so
// every incident that relies on it is unmitigated: each such incident's
// latest record is marked failed, p is forgotten so a retry re-announces
// it, and the incident's dedup claim is released. It returns the alerts
// of the released incidents so the caller can schedule retries (the
// detector's own dedup never re-delivers an alert for the same incident).
func (m *Mitigator) NoteAnnounceFailure(p prefix.Prefix, err error) []Alert {
	m.mu.Lock()
	var released []Alert
	var failedIdx []int
	for key, req := range m.requested {
		if !req[p] {
			continue
		}
		delete(req, p)
		delete(m.done, key)
		m.failures.Inc()
		for i := len(m.records) - 1; i >= 0; i-- {
			if m.records[i].Alert.Key() == key {
				if m.records[i].Err == nil {
					m.records[i].Err = err
				}
				released = append(released, m.records[i].Alert)
				failedIdx = append(failedIdx, i)
				break
			}
		}
	}
	m.mu.Unlock()
	for _, idx := range failedIdx {
		m.notifyRecord(idx)
	}
	return released
}

// Records returns the mitigations attempted so far, including failed
// ones (Err != nil).
func (m *Mitigator) Records() []MitigationRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]MitigationRecord(nil), m.records...)
}

// Failures reports how many mitigation attempts aborted on a controller
// error.
func (m *Mitigator) Failures() int64 { return m.failures.Load() }
