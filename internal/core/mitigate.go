package core

import (
	"sync"
	"time"

	"artemis/internal/controller"
	"artemis/internal/prefix"
)

// MitigationRecord documents one mitigation action.
type MitigationRecord struct {
	Alert Alert
	// Prefixes are the de-aggregated announcements requested.
	Prefixes []prefix.Prefix
	// TriggeredAt is when the mitigator asked the controller.
	TriggeredAt time.Duration
	// Competitive marks mitigations that cannot strictly win LPM (the
	// attacked prefix is already at the de-aggregation limit, e.g. a /24):
	// ARTEMIS re-announces the same prefix and competes on path length —
	// "it might not work for /24 prefixes" (§2).
	Competitive bool
}

// Mitigator turns alerts into de-aggregated announcements via the
// controller.
type Mitigator struct {
	cfg  *Config
	ctrl *controller.Controller
	now  func() time.Duration

	mu      sync.Mutex
	records []MitigationRecord
	done    map[string]bool
}

// NewMitigator builds the mitigation service. now supplies timestamps
// (engine clock in simulation).
func NewMitigator(cfg *Config, ctrl *controller.Controller, now func() time.Duration) *Mitigator {
	return &Mitigator{cfg: cfg, ctrl: ctrl, now: now, done: make(map[string]bool)}
}

// MitigationPrefixes computes the response to an alert: the sub-prefixes
// to announce. For a hijack of prefix P the response covers P with
// announcements one bit more specific (so LPM strictly prefers them),
// clamped at the filtering limit; at the limit, the same prefix is
// re-announced competitively. For squatting (a covering super-prefix),
// the owned prefix itself is (re-)announced: it is already more specific
// than the attacker's.
func (m *Mitigator) MitigationPrefixes(a Alert) (prefixes []prefix.Prefix, competitive bool) {
	maxLen := m.cfg.maxLen()
	scope := a.Prefix
	if a.Type == AlertSquat {
		scope = a.Owned
	}
	target := scope.Bits() + 1
	if a.Type == AlertSquat {
		// The owned prefix already beats the squatter's covering prefix.
		return []prefix.Prefix{scope}, false
	}
	if target > maxLen {
		// Cannot out-specific the attacker: compete with the same prefix.
		return []prefix.Prefix{scope}, true
	}
	subs, err := scope.Deaggregate(target)
	if err != nil {
		// Unreachable for target = bits+1; fall back to competition.
		return []prefix.Prefix{scope}, true
	}
	return subs, false
}

// HandleAlert runs mitigation for one alert (idempotent per incident).
// It is the handler wired to the detector when AutoMitigate is on, and
// the entry point an operator UI would call in manual mode.
func (m *Mitigator) HandleAlert(a Alert) {
	m.mu.Lock()
	if m.done[a.Key()] {
		m.mu.Unlock()
		return
	}
	m.done[a.Key()] = true
	m.mu.Unlock()

	prefixes, competitive := m.MitigationPrefixes(a)
	rec := MitigationRecord{
		Alert:       a,
		Prefixes:    prefixes,
		TriggeredAt: m.now(),
		Competitive: competitive,
	}
	for _, p := range prefixes {
		if err := m.ctrl.Announce(p); err != nil {
			return // controller rejected; leave incident unrecorded as mitigated
		}
	}
	m.mu.Lock()
	m.records = append(m.records, rec)
	m.mu.Unlock()
}

// Records returns the mitigations performed so far.
func (m *Mitigator) Records() []MitigationRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]MitigationRecord(nil), m.records...)
}
