package core

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
	"artemis/internal/ring"
	"artemis/internal/stats"
)

// Pipeline is the sharded, batched detection data path. Feed batches are
// ingested whole, fanned out to N worker shards keyed by the event's
// matched owned prefix (trie LPM, so every event for the same slice of
// owned space lands on the same shard), classified concurrently by the
// pure detection stage, and re-aggregated by a single sink that applies
// results in submission order. Because dedup, alert handlers and the
// monitor all run on the sink, the pipeline's observable behavior is
// identical to the serial Detector/Monitor path — only the per-event
// classification work is parallel.
//
// The pipeline is natively multi-tenant (NewPipelineTable): one shared
// hot path classifies each event once per matched tenant, under that
// tenant's own config snapshot, committing to that tenant's detector and
// monitor. Per-event tenant matches live in pooled job arenas, so tenant
// fan-out adds no allocations. NewPipeline is the single-tenant special
// case; its observable behavior is unchanged.
//
// The steady-state path is allocation-free (docs/PERFORMANCE.md): jobs
// are recycled through a sync.Pool, each job deep-copies the submitted
// batch (events and AS paths) into its own reused backing arrays, the
// per-shard queues are fixed-size SPSC rings (internal/ring), and the
// router amortizes trie lookups over runs of equal prefixes by sorting
// each batch by identity hash. The submitted batch is therefore owned by
// the caller again the moment Submit returns — feeds recycle theirs
// through a feedtypes.BatchPool.
//
// Backpressure is explicit end to end: shard rings and the completion
// channel are bounded, so when the sink (or a slow alert handler) falls
// behind, Submit blocks instead of buffering without limit — the feed's
// transport is the buffer, as in any line-rate ingest design.
//
// Alert handlers run on the sink goroutine. A handler must not call
// Submit/SubmitWait on its own pipeline (it would wait on the goroutine it
// runs on); schedule follow-up work instead, as the mitigation controller
// does.
type Pipeline struct {
	cfg PipelineConfig

	// table is the policy snapshot the router currently routes under: the
	// shared owned-prefix trie (prefix → owning tenants) plus each
	// tenant's config/detector/monitor. It is written only under life held
	// exclusively (Reconfigure/ReconfigureTable) and read under life held
	// shared (submit), so every job is routed against exactly one
	// snapshot, which the job then carries to the shards.
	table *PolicyTable

	shards []*shard
	done   chan *batchJob

	// jobs recycles batchJobs (and all their backing arrays) between
	// submissions; the sink releases each job after applying it.
	jobs sync.Pool

	// life guards the submit/close race: submitters hold it shared while
	// assigning a sequence number and enqueueing, Close takes it exclusive
	// to flip closed and close the shard queues. A sequence number is
	// therefore only ever assigned to a job that is fully enqueued, which
	// the sink's in-order application depends on.
	life    sync.RWMutex
	closed  bool
	nextSeq atomic.Uint64

	// applyMu/applyCond publish sink progress (the applied counter) to
	// Flush waiters.
	applyMu   sync.Mutex
	applyCond *sync.Cond

	cancels  []func()
	cancelMu sync.Mutex

	workers  sync.WaitGroup
	sinkDone chan struct{}

	submitted, applied, events, reconfigs stats.Counter
	// sinkApply is the distribution of the sink's per-batch apply time
	// (alert commit + handler dispatch + monitor fold).
	sinkApply *stats.Histogram
}

// PipelineConfig tunes the pipeline.
type PipelineConfig struct {
	// Shards is the number of classification workers (default GOMAXPROCS).
	Shards int
	// QueueDepth is the per-shard bound on waiting sub-batches before
	// Submit blocks (default 128; rounded up to a power of two by the
	// ring buffer).
	QueueDepth int
	// Synchronous makes Start subscribe with SubmitWait, so a feed's
	// publish call returns only after its batch is fully applied. The
	// virtual-time experiments need this: the simulation engine must
	// observe alerts as soon as the event that caused them is delivered.
	Synchronous bool
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards > 256 {
		c.Shards = 256 // the scatter stage stores shard ids in a byte
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	return c
}

// shard is one classification worker's queue and counters. The task
// queue is a fixed-size ring: the worker is its single consumer, and
// submitters serialize on pushMu to form its single logical producer
// (ring.Ring's SPSC contract).
type shard struct {
	pushMu  sync.Mutex
	in      *ring.Ring[shardTask]
	events  stats.Counter
	batches stats.Counter
	// service is the distribution of per-sub-batch classification time.
	service *stats.Histogram
}

// shardTask is one shard's slice of a submitted batch: the indices of the
// job's events this shard classifies.
type shardTask struct {
	job   *batchJob
	shard int
	idxs  []int32
}

// batchJob is one submitted batch in flight. The router pre-resolves each
// event's per-tenant owned-space matches into a flat match arena, shards
// classify their index slices once per match, and per-shard output slots
// keep everything single-writer — no locks anywhere on the classification
// path. Every slice below is a reused backing array: jobs cycle through
// Pipeline.jobs, so at steady state a submission allocates nothing, no
// matter how many tenants each event fans out to.
type batchJob struct {
	seq uint64
	// table is the policy snapshot the job was routed under; shards
	// classify with it (not with live state), so a reconfiguration
	// concurrent with in-flight batches cannot mix two snapshots within
	// one batch.
	table *PolicyTable
	// swap, when non-nil, marks a reconfiguration barrier: the job carries
	// no events and the sink runs swap() at the job's sequence position.
	swap func()
	// events is the job's own deep copy of the submitted batch; paths is
	// the flat arena its events' Path slices alias, so the caller's batch
	// (typically a pooled feed batch) is released the moment submit
	// returns.
	events []feedtypes.Event
	paths  []bgp.ASN
	// matches is the flat arena of per-event tenant matches: event i's
	// matches are matches[matchOff[i] : matchOff[i]+matchN[i]], at most
	// one per tenant (that tenant's LPM, or its config-order squat).
	// Events with equal prefixes share one arena range.
	matches  []eventMatch
	matchOff []int32
	matchN   []int32
	// drops is the batch's per-tenant classification-quota drop tally.
	drops []tenantDrop
	// mc holds the router's reusable trie-walk callbacks (closures are
	// created once per pooled job, never per event).
	mc matchCollector
	// keys/shardOf/sizes/offsets/fill/backing are the router's scratch:
	// keys sorts the batch by prefix identity for run-amortized trie
	// walks, and the rest is the counting-sort scatter of event indices
	// to shards.
	keys    []uint64
	shardOf []uint8
	sizes   []int32
	offsets []int32
	fill    []int32
	backing []int32
	// counts[s] is shard s's per-(tenant, source) event tally; alerts[s]
	// its hijack candidates in index order. At most one task per shard per
	// job, so slots are single-writer. alertPos[s] is the sink's merge
	// cursor.
	counts    [][]tenantTally
	alerts    [][]indexedAlert
	alertPos  []int32
	remaining atomic.Int32
	// wait, when non-nil, is closed by the sink once the job is applied.
	// Waiters capture the channel before handing the job over — after
	// close, the sink recycles the job immediately.
	wait chan struct{}
}

// eventMatch is one (event, tenant) routing result: which tenant matched,
// which of its owned prefixes (index into that tenant's
// Config.OwnedPrefixes), and the relation (always non-zero in the arena).
type eventMatch struct {
	tenant   int32
	ownedIdx int32
	rel      uint8
}

// tenantTally is one (tenant, source) event count within a batch — the
// allocation-free alternative to nested maps for the pipeline's per-shard
// tallies. Batches carry a handful of distinct (tenant, source) pairs, so
// the linear scan beats a map and reuses the job's backing array.
type tenantTally struct {
	tenant int32
	src    string
	n      int
}

// tallyTenant bumps (tenant, src)'s count, appending a new entry (into
// reused capacity, at steady state) for a pair not yet seen in this batch.
func tallyTenant(tallies []tenantTally, tenant int32, src string) []tenantTally {
	for i := range tallies {
		if tallies[i].tenant == tenant && tallies[i].src == src {
			tallies[i].n++
			return tallies
		}
	}
	return append(tallies, tenantTally{tenant: tenant, src: src, n: 1})
}

// tenantDrop is one tenant's quota-drop count within a batch.
type tenantDrop struct {
	tenant int32
	n      int64
}

func tallyDrop(drops []tenantDrop, tenant int32) []tenantDrop {
	for i := range drops {
		if drops[i].tenant == tenant {
			drops[i].n++
			return drops
		}
	}
	return append(drops, tenantDrop{tenant: tenant, n: 1})
}

// matchCollector is the router's reusable trie-walk state. Its callback
// closures are created once per pooled job (init), never per event —
// closure creation allocates, and the router runs for every event of
// every batch.
type matchCollector struct {
	job    *batchJob
	pfx    prefix.Prefix
	base   int32
	lpmEnd int32
	supFn  func(prefix.Prefix, []ownedRef) bool
	covFn  func(prefix.Prefix, []ownedRef) bool
}

func (c *matchCollector) init(j *batchJob) {
	if c.supFn == nil {
		c.job = j
		c.supFn = c.visitSupernet
		c.covFn = c.visitCovered
	}
}

// visitSupernet records q's owners as exact/sub-prefix matches. Supernets
// arrive shortest-first, so replacing a tenant's earlier entry implements
// per-tenant LPM over the shared trie: the last supernet a tenant owns on
// the event prefix's descent path is that tenant's longest match.
func (c *matchCollector) visitSupernet(q prefix.Prefix, refs []ownedRef) bool {
	j := c.job
	rel := uint8(AlertSubPrefix)
	if q == c.pfx {
		rel = uint8(AlertExactOrigin)
	}
refs:
	for _, r := range refs {
		for i := c.base; i < int32(len(j.matches)); i++ {
			if j.matches[i].tenant == r.tenant {
				j.matches[i] = eventMatch{tenant: r.tenant, ownedIdx: r.ownedIdx, rel: rel}
				continue refs
			}
		}
		j.matches = append(j.matches, eventMatch{tenant: r.tenant, ownedIdx: r.ownedIdx, rel: rel})
	}
	return true
}

// visitCovered records q's owners as squat candidates (the event prefix
// covers q). A tenant already holding an exact/sub entry keeps it — LPM
// beats squat, as in the single-tenant router. Among a tenant's several
// covered prefixes the lowest config index wins, matching the serial
// config-order scan.
func (c *matchCollector) visitCovered(q prefix.Prefix, refs []ownedRef) bool {
	if q == c.pfx {
		return true // exact ownership was already handled by the supernet pass
	}
	j := c.job
refs:
	for _, r := range refs {
		for i := c.base; i < c.lpmEnd; i++ {
			if j.matches[i].tenant == r.tenant {
				continue refs
			}
		}
		for i := c.lpmEnd; i < int32(len(j.matches)); i++ {
			if j.matches[i].tenant == r.tenant {
				if r.ownedIdx < j.matches[i].ownedIdx {
					j.matches[i].ownedIdx = r.ownedIdx
				}
				continue refs
			}
		}
		j.matches = append(j.matches, eventMatch{tenant: r.tenant, ownedIdx: r.ownedIdx, rel: uint8(AlertSquat)})
	}
	return true
}

// reset prepares a pooled job for reuse, keeping every backing array.
func (j *batchJob) reset(nshards int) {
	j.seq = 0
	j.table = nil
	j.swap = nil
	j.wait = nil
	// Drop references held by the previous batch's events so the pool
	// does not pin source strings; the arena itself is reused.
	clear(j.events)
	j.events = j.events[:0]
	j.paths = j.paths[:0]
	j.matches = j.matches[:0]
	j.matchOff = j.matchOff[:0]
	j.matchN = j.matchN[:0]
	j.drops = j.drops[:0]
	j.keys = j.keys[:0]
	j.shardOf = j.shardOf[:0]
	j.remaining.Store(0)
	j.sizes = resizeInt32(j.sizes, nshards)
	j.offsets = resizeInt32(j.offsets, nshards)
	j.fill = resizeInt32(j.fill, nshards)
	j.alertPos = resizeInt32(j.alertPos, nshards)
	for len(j.counts) < nshards {
		j.counts = append(j.counts, nil)
	}
	j.counts = j.counts[:nshards]
	for i := range j.counts {
		// Truncate, keep capacity: a shard with no task this job must not
		// contribute its previous job's tallies. Clear first so the pool
		// does not pin the tallies' source strings.
		clear(j.counts[i])
		j.counts[i] = j.counts[i][:0]
	}
	for len(j.alerts) < nshards {
		j.alerts = append(j.alerts, nil)
	}
	j.alerts = j.alerts[:nshards]
	for i := range j.alerts {
		clear(j.alerts[i]) // drop Alert references (source strings, paths)
		j.alerts[i] = j.alerts[i][:0]
	}
}

// resizeInt32 returns s with length n and every element zeroed.
func resizeInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// indexedAlert tags a candidate alert with its event's position in the
// batch (so the sink can restore submission order across shards) and the
// tenant whose detector it commits to.
type indexedAlert struct {
	idx    int32
	tenant int32
	alert  Alert
}

// NewPipeline builds and starts a single-tenant pipeline: the classic
// shape, one (detector, monitor, config) triple. mon may be nil for a
// detection-only pipeline. Close releases the goroutines.
func NewPipeline(det *Detector, mon *Monitor, cfg PipelineConfig) *Pipeline {
	return NewPipelineTable(newSingleTable(det.Config(), det, mon, nil), cfg)
}

// NewPipelineTable builds and starts a pipeline routing under a
// multi-tenant policy table: one shared hot path, each event classified
// once per matched tenant under that tenant's own config, committing to
// that tenant's detector and monitor. Close releases the goroutines.
func NewPipelineTable(table *PolicyTable, cfg PipelineConfig) *Pipeline {
	cfg = cfg.withDefaults()
	p := &Pipeline{
		table:     table,
		cfg:       cfg,
		done:      make(chan *batchJob, 4*cfg.Shards+16),
		sinkDone:  make(chan struct{}),
		sinkApply: stats.NewHistogram(),
	}
	p.jobs.New = func() any { return new(batchJob) }
	p.applyCond = sync.NewCond(&p.applyMu)
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{in: ring.New[shardTask](cfg.QueueDepth), service: stats.NewHistogram()}
		p.shards = append(p.shards, s)
		p.workers.Add(1)
		go p.work(i, s)
	}
	go p.sink()
	return p
}

// Table returns the active policy snapshot. Treat it as immutable: derive
// the next table from it and install it with ReconfigureTable.
func (p *Pipeline) Table() *PolicyTable {
	p.life.RLock()
	defer p.life.RUnlock()
	return p.table
}

// shardFor routes a prefix to its shard: events matching the same owned
// prefix always land on the same shard; events matching nothing hash over
// all shards (classification drops them; any shard may do it). Routing is
// a pure function of the prefix and the active policy snapshot — the
// quota filter runs after shard choice and never moves an event.
func (p *Pipeline) shardFor(pfx prefix.Prefix) int {
	p.life.RLock()
	defer p.life.RUnlock()
	job := p.jobs.Get().(*batchJob)
	job.reset(len(p.shards))
	job.table = p.table
	mc := &job.mc
	mc.init(job)
	mc.pfx, mc.base = pfx, 0
	p.table.trie.Supernets(pfx, mc.supFn)
	mc.lpmEnd = int32(len(job.matches))
	p.table.trie.CoveredBy(pfx, mc.covFn)
	s := hashPrefix(pfx) % len(p.shards)
	if len(job.matches) > 0 {
		s = int(job.matches[0].ownedIdx) % len(p.shards)
	}
	job.reset(len(p.shards))
	p.jobs.Put(job)
	return s
}

// hashPrefix is FNV-1a over the full dual-stack prefix identity (128
// address bits, family, length).
func hashPrefix(pfx prefix.Prefix) int {
	h := prefix.FoldIdentity(fnvOffset, pfx)
	// Finalize so the low bits depend on every field.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h & 0x7fffffff)
}

const fnvOffset = 1469598103934665603

// routeKeyIdxBits is how many low bits of a routing sort key carry the
// event's batch index; the identity hash keeps the top 44 bits. A hash
// collision between distinct prefixes only merges their sort runs — the
// run walk re-checks actual prefix equality before reusing a result.
const routeKeyIdxBits = 20

// routeBatch fills job.matches/matchOff/matchN/shardOf for every event,
// amortizing the trie over runs of equal prefixes: the batch is sorted by
// prefix identity hash (one uint64 sort key per event, index packed in
// the low bits), and each run of equal prefixes costs a single pair of
// trie walks — the later events of a run alias the head's arena range.
// Real feed batches repeat prefixes heavily — a path-hunting burst or a
// flap emits many updates for one prefix in the same flush — so the
// per-batch trie work shrinks from O(events) to O(distinct prefixes).
// Called under p.life held shared.
func (p *Pipeline) routeBatch(job *batchJob, nshards int) {
	n := len(job.events)
	job.matchOff = append(job.matchOff[:0], make([]int32, n)...)
	job.matchN = append(job.matchN[:0], make([]int32, n)...)
	job.shardOf = append(job.shardOf[:0], make([]uint8, n)...)
	if n >= 1<<routeKeyIdxBits || job.table.quotas {
		// Quota enforcement spends one token per (event, tenant), so equal
		// prefixes cannot share a routing result; batches too large to pack
		// indices into the sort key (never hit by real feeds: flushes are
		// bounded at a few hundred events) route event-by-event too.
		for i := range job.events {
			p.routeOne(job, i, nshards)
		}
		return
	}
	job.keys = job.keys[:0]
	for i := range job.events {
		k := prefix.FoldIdentity(fnvOffset, job.events[i].Prefix)
		job.keys = append(job.keys, k&^uint64(1<<routeKeyIdxBits-1)|uint64(i))
	}
	slices.Sort(job.keys)
	for a := 0; a < n; {
		bEnd := a + 1
		for bEnd < n && job.keys[bEnd]&^uint64(1<<routeKeyIdxBits-1) == job.keys[a]&^uint64(1<<routeKeyIdxBits-1) {
			bEnd++
		}
		head := int(job.keys[a] & (1<<routeKeyIdxBits - 1))
		p.routeOne(job, head, nshards)
		headPfx := job.events[head].Prefix
		for k := a + 1; k < bEnd; k++ {
			i := int(job.keys[k] & (1<<routeKeyIdxBits - 1))
			if job.events[i].Prefix == headPfx {
				job.matchOff[i] = job.matchOff[head]
				job.matchN[i] = job.matchN[head]
				job.shardOf[i] = job.shardOf[head]
			} else {
				// 44-bit hash collision between distinct prefixes: route
				// this event on its own.
				p.routeOne(job, i, nshards)
			}
		}
		a = bEnd
	}
}

// routeOne resolves one event's per-tenant matches (one supernet walk for
// exact/sub relations with per-tenant LPM, one covered walk for squats)
// and its shard, recording everything in the job's arenas. With quotas
// active it also spends each matched tenant's token — at route time,
// under the submit lock, so drops are deterministic in submission order.
func (p *Pipeline) routeOne(job *batchJob, i, nshards int) {
	mc := &job.mc
	mc.init(job)
	mc.pfx = job.events[i].Prefix
	mc.base = int32(len(job.matches))
	t := job.table
	t.trie.Supernets(mc.pfx, mc.supFn)
	mc.lpmEnd = int32(len(job.matches))
	t.trie.CoveredBy(mc.pfx, mc.covFn)
	// Shard choice: the first matched owner's prefix index, so every event
	// for the same slice of owned space lands on the same shard (and the
	// single-tenant assignment is exactly the classic ownedIdx%shards);
	// unmatched events hash over all shards. Decided before the quota
	// filter, so routing stays a pure function of prefix and snapshot.
	if int32(len(job.matches)) > mc.base {
		job.shardOf[i] = uint8(int(job.matches[mc.base].ownedIdx) % nshards)
	} else {
		job.shardOf[i] = uint8(hashPrefix(mc.pfx) % nshards)
	}
	if t.quotas {
		kept := mc.base
		now := job.events[i].EmittedAt
		for k := mc.base; k < int32(len(job.matches)); k++ {
			m := job.matches[k]
			e := &t.entries[m.tenant]
			if perSec := e.cfg.MaxEventsPerSecond; perSec > 0 && !e.rt.allow(now, perSec) {
				job.drops = tallyDrop(job.drops, m.tenant)
				continue
			}
			job.matches[kept] = m
			kept++
		}
		job.matches = job.matches[:kept]
	}
	job.matchOff[i] = mc.base
	job.matchN[i] = int32(len(job.matches)) - mc.base
}

// Submit ingests one batch asynchronously. The batch is deep-copied
// (events and AS paths), so the caller owns it again — and may release
// it to its pool — the moment Submit returns. Submit blocks only for
// backpressure (a full shard ring). Batches submitted from one goroutine
// are applied in submission order; no order is defined across
// goroutines.
func (p *Pipeline) Submit(batch []feedtypes.Event) {
	p.submit(batch, false)
}

// SubmitWait ingests one batch and returns after the sink has fully
// applied it — alerts committed, handlers run, monitor folded. The batch
// ownership contract matches Submit's.
func (p *Pipeline) SubmitWait(batch []feedtypes.Event) {
	p.submit(batch, true)
}

func (p *Pipeline) submit(batch []feedtypes.Event, wait bool) {
	if len(batch) == 0 {
		return
	}
	nshards := len(p.shards)
	job := p.jobs.Get().(*batchJob)
	job.reset(nshards)
	// Deep-copy the batch: events into the job's reused slice, each AS
	// path into the job's flat arena. From here on nothing references the
	// caller's storage.
	job.events = append(job.events, batch...)
	for i := range job.events {
		if path := job.events[i].Path; len(path) > 0 {
			start := len(job.paths)
			job.paths = append(job.paths, path...)
			job.events[i].Path = job.paths[start:len(job.paths):len(job.paths)]
		}
	}
	var waitCh chan struct{}
	if wait {
		waitCh = make(chan struct{})
		job.wait = waitCh
	}
	// Routing, sequencing and shard enqueue all happen under the shared
	// life lock: a Reconfigure (which holds it exclusively) therefore
	// observes every job either fully routed-and-sequenced under the old
	// snapshot or not started — no batch straddles a config swap.
	p.life.RLock()
	if p.closed {
		p.life.RUnlock()
		return // shut down: the batch is dropped, as a detached source's would be
	}
	job.table = p.table
	// Route every event once per distinct prefix (routeBatch), then
	// scatter index slices to shards with a counting sort over one
	// backing array (no per-shard growth).
	p.routeBatch(job, nshards)
	for _, s := range job.shardOf {
		job.sizes[s]++
	}
	job.backing = append(job.backing[:0], make([]int32, len(batch))...)
	tasks := 0
	var off int32
	for s := 0; s < nshards; s++ {
		job.offsets[s] = off
		job.fill[s] = off
		off += job.sizes[s]
		if job.sizes[s] > 0 {
			tasks++
		}
	}
	for i := range job.shardOf {
		s := job.shardOf[i]
		job.backing[job.fill[s]] = int32(i)
		job.fill[s]++
	}
	// The +1 is the submitter's own hold: without it, a shard could finish
	// the job — and the sink recycle it — while this loop still reads
	// job.sizes for the remaining shards.
	job.remaining.Store(int32(tasks) + 1)

	job.seq = p.nextSeq.Add(1) - 1
	p.submitted.Inc()
	p.events.Add(int64(len(batch)))
	for s := 0; s < nshards; s++ {
		if job.sizes[s] > 0 {
			t := shardTask{
				job:   job,
				shard: s,
				idxs:  job.backing[job.offsets[s] : job.offsets[s]+job.sizes[s]],
			}
			sh := p.shards[s]
			// Serialize concurrent submitters into the ring's single
			// logical producer. Push blocks for backpressure; the ring is
			// only closed under the exclusive life lock, which no pusher
			// holds, so a blocked push always drains.
			sh.pushMu.Lock()
			sh.in.Push(t)
			sh.pushMu.Unlock()
		}
	}
	if job.remaining.Add(-1) == 0 {
		p.done <- job
	}
	p.life.RUnlock()
	if wait {
		<-waitCh
	}
}

// work is one shard's loop: classify each assigned event (reusing the
// router's owned-space match), tally sources, and hand the job to the sink
// once the last shard finishes it.
func (p *Pipeline) work(idx int, s *shard) {
	defer p.workers.Done()
	for {
		t, ok := s.in.Pop()
		if !ok {
			return
		}
		start := time.Now()
		// Classify with the job's policy snapshot — the one the router
		// resolved the matches against — not live state, which a concurrent
		// Reconfigure may already have advanced. Each event is classified
		// once per matched tenant, under that tenant's own config.
		table := t.job.table
		single := table.single()
		counts := t.job.counts[t.shard][:0]
		alerts := t.job.alerts[t.shard][:0]
		for _, i := range t.idxs {
			ev := &t.job.events[i]
			off, n := t.job.matchOff[i], t.job.matchN[i]
			if n == 0 {
				if single {
					// Single-tenant compat: an unmatched well-formed
					// announcement still tallies per source, exactly as the
					// serial detector counts every event it is shown.
					if _, counted, _ := table.entries[0].cfg.classifyRouted(ev, prefix.Prefix{}, 0); counted {
						counts = tallyTenant(counts, 0, ev.Source)
					}
				}
				continue
			}
			for _, m := range t.job.matches[off : off+n] {
				e := &table.entries[m.tenant]
				alert, counted, isAlert := e.cfg.classifyRouted(ev, e.cfg.OwnedPrefixes[m.ownedIdx], AlertType(m.rel))
				if counted {
					counts = tallyTenant(counts, m.tenant, ev.Source)
				}
				if isAlert {
					alerts = append(alerts, indexedAlert{idx: i, tenant: m.tenant, alert: alert})
				}
			}
		}
		t.job.counts[t.shard] = counts
		t.job.alerts[t.shard] = alerts
		s.events.Add(int64(len(t.idxs)))
		s.batches.Inc()
		s.service.Observe(time.Since(start))
		if t.job.remaining.Add(-1) == 0 {
			p.done <- t.job
		}
	}
}

// sink re-establishes submission order (shards complete jobs in any order)
// and applies each job exactly as the serial path would have.
func (p *Pipeline) sink() {
	defer close(p.sinkDone)
	reorder := make(map[uint64]*batchJob)
	var next uint64
	for job := range p.done {
		reorder[job.seq] = job
		for {
			j, ok := reorder[next]
			if !ok {
				break
			}
			delete(reorder, next)
			next++
			p.apply(j)
		}
	}
}

func (p *Pipeline) apply(j *batchJob) {
	if j.swap != nil {
		// Reconfiguration barrier: runs at its sequence position, so every
		// batch sequenced before it has been fully applied (alerts
		// committed, monitor folded) and none sequenced after it has.
		j.swap()
		p.finish(j)
		return
	}
	start := time.Now()
	table := j.table
	for _, counts := range j.counts {
		for _, t := range counts {
			table.entries[t.tenant].det.addSourceCount(t.src, t.n)
		}
	}
	// Commit alerts in event order: each shard's list is ascending, so an
	// N-way min-merge (cursors in j.alertPos, no reslicing) restores the
	// batch's submission order. One event's alerts live on one shard, in
	// match order, so a multi-tenant fan-out commits adjacently.
	for {
		best, bestShard := int32(-1), -1
		for s := range j.alerts {
			if pos := j.alertPos[s]; int(pos) < len(j.alerts[s]) {
				if idx := j.alerts[s][pos].idx; best < 0 || idx < best {
					best, bestShard = idx, s
				}
			}
		}
		if bestShard < 0 {
			break
		}
		ia := &j.alerts[bestShard][j.alertPos[bestShard]]
		table.entries[ia.tenant].det.commit(ia.alert)
		j.alertPos[bestShard]++
	}
	if table.single() {
		// The classic shape: the monitor folds every submitted event (an
		// unmatched event still creates vantage-point state), and the
		// tenant counter tracks matched events.
		e := &table.entries[0]
		matched := 0
		for i := range j.events {
			if j.matchN[i] > 0 {
				matched++
			}
		}
		e.rt.events.Add(int64(matched))
		if e.mon != nil {
			e.mon.ProcessBatch(j.events)
		}
	} else {
		// Multi-tenant: each tenant's monitor folds exactly the events that
		// matched that tenant — the stream an independent per-tenant
		// instance would have received from its own feed filter.
		for i := range j.events {
			off, n := j.matchOff[i], j.matchN[i]
			for _, m := range j.matches[off : off+n] {
				e := &table.entries[m.tenant]
				e.rt.events.Inc()
				if e.mon != nil {
					e.mon.Process(j.events[i])
				}
			}
		}
	}
	for _, d := range j.drops {
		e := &table.entries[d.tenant]
		e.rt.quotaDrops.Add(d.n)
		if table.onQuotaDrop != nil {
			table.onQuotaDrop(e.name, d.n)
		}
	}
	p.sinkApply.Observe(time.Since(start))
	p.finish(j)
}

// finish publishes the job's completion to Flush and SubmitWait waiters,
// then recycles it. The wait channel is closed before the job is pooled;
// waiters captured the channel at submit time and never touch the job
// itself.
func (p *Pipeline) finish(j *batchJob) {
	wait := j.wait
	p.applyMu.Lock()
	p.applied.Inc()
	p.applyCond.Broadcast()
	p.applyMu.Unlock()
	if wait != nil {
		close(wait)
	}
	j.reset(len(p.shards))
	p.jobs.Put(j)
}

// Start subscribes the pipeline to sources with the detector's filter
// (owned space, both directions). Sources implementing
// feedtypes.BatchSource deliver whole batches; others are adapted
// per event.
func (p *Pipeline) Start(sources ...feedtypes.Source) {
	p.life.RLock()
	filter := feedtypes.Filter{
		Prefixes:     p.table.UnionFilter(),
		MoreSpecific: true,
		LessSpecific: true,
	}
	p.life.RUnlock()
	deliver := p.Submit
	if p.cfg.Synchronous {
		deliver = p.SubmitWait
	}
	for _, src := range sources {
		var cancel func()
		if bs, ok := src.(feedtypes.BatchSource); ok {
			cancel = bs.SubscribeBatch(filter, deliver)
		} else {
			cancel = src.Subscribe(filter, func(ev feedtypes.Event) {
				deliver([]feedtypes.Event{ev})
			})
		}
		p.cancelMu.Lock()
		p.cancels = append(p.cancels, cancel)
		p.cancelMu.Unlock()
	}
}

// Reconfigure atomically swaps the pipeline's routing state to next and
// runs onApply at the swap's serial position, returning once the swap has
// been applied. The serial-equivalence argument for events in flight:
//
//   - Routing, sequencing and shard enqueue happen under the life lock
//     held shared; Reconfigure holds it exclusively while swapping the
//     trie and enqueueing a barrier job at the next sequence number. Every
//     batch therefore routes entirely under one config snapshot, carries
//     that snapshot to the shards (classification never consults live
//     state), and is sequenced strictly before or after the barrier.
//   - The sink applies jobs in sequence order, so onApply — which should
//     swap the detector/monitor/mitigator to the same snapshot — observes
//     exactly the state the serial path would have after processing every
//     pre-swap event and none of the post-swap ones.
//
// The observable behavior is therefore identical to a serial execution in
// which the reconfiguration happens between the last batch submitted
// before Reconfigure and the first batch submitted after it. Reconfigure
// must not be called from an alert handler or monitor fold (both run on
// the sink goroutine, which the barrier waits on). If the pipeline is
// already closed, the swap (and onApply) still runs, inline.
//
// Reconfigure replaces the first (on a single-tenant pipeline: the only)
// tenant's config; every other tenant's policy, and all per-tenant
// runtime state, carries over. ReconfigureTable swaps the whole table.
func (p *Pipeline) Reconfigure(next *Config, onApply func()) {
	p.life.Lock()
	p.swapTableLocked(p.table.WithConfig(0, next), onApply)
}

// ReconfigureTable atomically swaps the whole policy table — tenants
// added, removed or retuned in one barrier — with the same serial
// position guarantees as Reconfigure. Tenants surviving the swap should
// carry their Runtime (and usually Detector/Monitor) into the next table,
// or their counters and quota state restart from zero.
func (p *Pipeline) ReconfigureTable(next *PolicyTable, onApply func()) {
	p.life.Lock()
	p.swapTableLocked(next, onApply)
}

// swapTableLocked installs next and enqueues the reconfiguration barrier.
// Called with p.life held exclusively; releases it, and blocks until the
// sink has run the barrier.
func (p *Pipeline) swapTableLocked(next *PolicyTable, onApply func()) {
	if p.closed {
		p.life.Unlock()
		if onApply != nil {
			onApply()
		}
		return
	}
	p.table = next
	job := p.jobs.Get().(*batchJob)
	job.reset(len(p.shards))
	job.table = next
	job.swap = func() {}
	if onApply != nil {
		job.swap = onApply
	}
	waitCh := make(chan struct{})
	job.wait = waitCh
	job.seq = p.nextSeq.Add(1) - 1
	p.submitted.Inc()
	p.reconfigs.Inc()
	// The barrier skips the shards (it has no events) and goes straight to
	// the sink's reorder stage.
	p.done <- job
	p.life.Unlock()
	<-waitCh
}

// Flush blocks until every batch submitted before the call has been
// applied. Batches submitted concurrently with or after Flush are not
// waited for, so a flush completes even while sources keep publishing.
func (p *Pipeline) Flush() {
	target := p.submitted.Load()
	p.applyMu.Lock()
	for p.applied.Load() < target {
		p.applyCond.Wait()
	}
	p.applyMu.Unlock()
}

// Close detaches from sources, drains every pending batch through the
// sink, and stops the workers. It is idempotent; Submit after Close drops
// the batch.
func (p *Pipeline) Close() {
	p.cancelMu.Lock()
	cancels := p.cancels
	p.cancels = nil
	p.cancelMu.Unlock()
	for _, c := range cancels {
		c()
	}

	p.life.Lock()
	if p.closed {
		p.life.Unlock()
		return
	}
	p.closed = true
	for _, s := range p.shards {
		s.in.Close()
	}
	p.life.Unlock()

	p.workers.Wait()
	close(p.done)
	<-p.sinkDone
}

// Snapshot reports the pipeline's counters: cumulative ingest totals plus
// per-shard throughput and instantaneous queue depth.
func (p *Pipeline) Snapshot() stats.PipelineSnapshot {
	snap := stats.PipelineSnapshot{
		Submitted: p.submitted.Load(),
		Applied:   p.applied.Load(),
		Events:    p.events.Load(),
		Reconfigs: p.reconfigs.Load(),
		SinkApply: p.sinkApply.Snapshot(),
	}
	for i, s := range p.shards {
		snap.Shards = append(snap.Shards, stats.ShardSnapshot{
			Shard:    i,
			Events:   s.events.Load(),
			Batches:  s.batches.Load(),
			QueueLen: s.in.Len(),
			QueueCap: s.in.Cap(),
			Service:  s.service.Snapshot(),
		})
	}
	return snap
}
