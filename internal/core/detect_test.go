package core

import (
	"fmt"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

func testConfig() *Config {
	return &Config{
		OwnedPrefixes: []prefix.Prefix{prefix.MustParse("10.0.0.0/23")},
		LegitOrigins:  []bgp.ASN{61000},
	}
}

func announceEvent(p string, path ...bgp.ASN) feedtypes.Event {
	return feedtypes.Event{
		Source: "test", Collector: "c0", VantagePoint: path[0],
		Kind: feedtypes.Announce, Prefix: prefix.MustParse(p), Path: path,
		SeenAt: time.Second, EmittedAt: 2 * time.Second,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Config{LegitOrigins: []bgp.ASN{1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("no owned prefixes accepted")
	}
	bad = &Config{OwnedPrefixes: []prefix.Prefix{prefix.MustParse("10.0.0.0/23")}}
	if err := bad.Validate(); err == nil {
		t.Fatal("no legit origins accepted")
	}
	dup := testConfig()
	dup.OwnedPrefixes = append(dup.OwnedPrefixes, dup.OwnedPrefixes[0])
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate owned prefix accepted")
	}
	badLen := testConfig()
	badLen.MaxDeaggregationLen = 40
	if err := badLen.Validate(); err == nil {
		t.Fatal("bad MaxDeaggregationLen accepted")
	}
}

func TestDetectExactOriginHijack(t *testing.T) {
	d := NewDetector(testConfig())
	var got []Alert
	d.OnAlert(func(a Alert) { got = append(got, a) })
	// Legit announcement: no alert.
	d.Process(announceEvent("10.0.0.0/23", 1001, 1002, 61000))
	// Hijack: origin 666.
	d.Process(announceEvent("10.0.0.0/23", 1001, 1002, 666))
	if len(got) != 1 {
		t.Fatalf("alerts = %+v", got)
	}
	a := got[0]
	if a.Type != AlertExactOrigin || a.Origin != 666 || a.Owned.String() != "10.0.0.0/23" {
		t.Fatalf("alert = %+v", a)
	}
	if a.DetectedAt != 2*time.Second {
		t.Fatalf("DetectedAt = %v (must be feed emission time)", a.DetectedAt)
	}
}

func TestDetectSubPrefixHijack(t *testing.T) {
	d := NewDetector(testConfig())
	var got []Alert
	d.OnAlert(func(a Alert) { got = append(got, a) })
	d.Process(announceEvent("10.0.1.0/24", 1001, 666))
	if len(got) != 1 || got[0].Type != AlertSubPrefix {
		t.Fatalf("alerts = %+v", got)
	}
}

func TestDetectSquat(t *testing.T) {
	d := NewDetector(testConfig())
	var got []Alert
	d.OnAlert(func(a Alert) { got = append(got, a) })
	d.Process(announceEvent("10.0.0.0/16", 1001, 666))
	if len(got) != 1 || got[0].Type != AlertSquat {
		t.Fatalf("alerts = %+v", got)
	}
}

func TestUnrelatedPrefixIgnored(t *testing.T) {
	d := NewDetector(testConfig())
	d.Process(announceEvent("192.0.2.0/24", 1001, 666))
	if len(d.Alerts()) != 0 {
		t.Fatalf("alerts = %+v", d.Alerts())
	}
}

func TestWithdrawalsIgnored(t *testing.T) {
	d := NewDetector(testConfig())
	ev := announceEvent("10.0.0.0/23", 1001, 666)
	ev.Kind = feedtypes.Withdraw
	ev.Path = nil
	d.Process(ev)
	if len(d.Alerts()) != 0 {
		t.Fatal("withdrawal raised an alert")
	}
}

func TestDeduplicationAcrossVPsAndSources(t *testing.T) {
	d := NewDetector(testConfig())
	e1 := announceEvent("10.0.0.0/23", 1001, 666)
	e2 := announceEvent("10.0.0.0/23", 1002, 666)
	e2.Source = "other"
	d.Process(e1)
	d.Process(e2)
	if len(d.Alerts()) != 1 {
		t.Fatalf("alerts = %+v", d.Alerts())
	}
	// A different attacker for the same prefix is a new incident.
	d.Process(announceEvent("10.0.0.0/23", 1001, 667))
	if len(d.Alerts()) != 2 {
		t.Fatalf("alerts = %+v", d.Alerts())
	}
	bySource := d.EventsBySource()
	if bySource["test"] != 2 || bySource["other"] != 1 {
		t.Fatalf("per-source counts = %v", bySource)
	}
}

func TestPathAnomalyDetection(t *testing.T) {
	cfg := testConfig()
	cfg.AllowedUpstreams = map[bgp.ASN][]bgp.ASN{61000: {2000, 2001}}
	d := NewDetector(cfg)
	var got []Alert
	d.OnAlert(func(a Alert) { got = append(got, a) })
	// Legit path: upstream 2000 adjacent to origin.
	d.Process(announceEvent("10.0.0.0/23", 1001, 2000, 61000))
	if len(got) != 0 {
		t.Fatalf("false positive on allowed upstream: %+v", got)
	}
	// Type-1 hijack: attacker 666 splices itself next to the origin.
	d.Process(announceEvent("10.0.0.0/23", 1001, 666, 61000))
	if len(got) != 1 || got[0].Type != AlertPathAnomaly || got[0].Origin != 666 {
		t.Fatalf("alerts = %+v", got)
	}
	// Path of just the origin itself (the owner's own VP view): fine.
	d.Process(announceEvent("10.0.0.0/23", 61000))
	if len(got) != 1 {
		t.Fatalf("origin-only path flagged: %+v", got)
	}
}

// TestPathAnomalyWithPrepending: a legitimately prepended path
// (…, upstream, origin, origin, …) must resolve the upstream as the hop
// before the run of origin copies — not flag the origin as its own
// disallowed neighbor.
func TestPathAnomalyWithPrepending(t *testing.T) {
	cfg := testConfig()
	cfg.AllowedUpstreams = map[bgp.ASN][]bgp.ASN{61000: {2000}}
	cases := []struct {
		name      string
		path      []bgp.ASN
		wantAlert bool
		wantUp    bgp.ASN
	}{
		{"no-prepend-allowed", []bgp.ASN{1001, 2000, 61000}, false, 0},
		{"prepend-1-allowed", []bgp.ASN{1001, 2000, 61000, 61000}, false, 0},
		{"prepend-2-allowed", []bgp.ASN{1001, 2000, 61000, 61000, 61000}, false, 0},
		{"prepend-3-allowed", []bgp.ASN{1001, 2000, 61000, 61000, 61000, 61000}, false, 0},
		{"prepend-1-disallowed", []bgp.ASN{1001, 666, 61000, 61000}, true, 666},
		{"prepend-2-disallowed", []bgp.ASN{1001, 666, 61000, 61000, 61000}, true, 666},
		{"prepend-3-disallowed", []bgp.ASN{666, 61000, 61000, 61000, 61000}, true, 666},
		{"origin-only-prepended", []bgp.ASN{61000, 61000, 61000}, false, 0},
	}
	for _, tc := range cases {
		t.Run("serial/"+tc.name, func(t *testing.T) {
			d := NewDetector(cfg)
			d.Process(announceEvent("10.0.0.0/23", tc.path...))
			alerts := d.Alerts()
			if tc.wantAlert {
				if len(alerts) != 1 || alerts[0].Type != AlertPathAnomaly || alerts[0].Origin != tc.wantUp {
					t.Fatalf("alerts = %+v", alerts)
				}
			} else if len(alerts) != 0 {
				t.Fatalf("spurious path-anomaly alert on prepended path: %+v", alerts)
			}
		})
		t.Run("pipeline/"+tc.name, func(t *testing.T) {
			d := NewDetector(cfg)
			p := NewPipeline(d, nil, PipelineConfig{Shards: 2})
			p.SubmitWait([]feedtypes.Event{announceEvent("10.0.0.0/23", tc.path...)})
			p.Close()
			alerts := d.Alerts()
			if tc.wantAlert {
				if len(alerts) != 1 || alerts[0].Type != AlertPathAnomaly || alerts[0].Origin != tc.wantUp {
					t.Fatalf("alerts = %+v", alerts)
				}
			} else if len(alerts) != 0 {
				t.Fatalf("spurious path-anomaly alert on prepended path: %+v", alerts)
			}
		})
	}
}

func TestPathCheckDisabledWithoutPolicy(t *testing.T) {
	d := NewDetector(testConfig()) // no AllowedUpstreams
	d.Process(announceEvent("10.0.0.0/23", 1001, 666, 61000))
	if len(d.Alerts()) != 0 {
		t.Fatal("path anomaly raised without an upstream policy")
	}
}

func TestMultipleOwnedPrefixes(t *testing.T) {
	cfg := testConfig()
	cfg.OwnedPrefixes = append(cfg.OwnedPrefixes, prefix.MustParse("192.0.2.0/24"))
	d := NewDetector(cfg)
	d.Process(announceEvent("192.0.2.0/24", 1001, 666))
	alerts := d.Alerts()
	if len(alerts) != 1 || alerts[0].Owned.String() != "192.0.2.0/24" {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func TestAlertDedupTTLReRaisesExpiredIncidents(t *testing.T) {
	cfg := testConfig()
	cfg.AlertDedupTTL = time.Minute
	d := NewDetector(cfg)
	hijack := func(at time.Duration) feedtypes.Event {
		ev := announceEvent("10.0.0.0/23", 1001, 666)
		ev.SeenAt, ev.EmittedAt = at, at
		return ev
	}
	d.Process(hijack(0))
	d.Process(hijack(30 * time.Second)) // same incident, inside the TTL
	if len(d.Alerts()) != 1 {
		t.Fatalf("alerts = %+v", d.Alerts())
	}
	// Past the TTL the incident is forgotten and re-raised: the hijack is
	// evidently still (or again) live, and a long-running daemon must not
	// stay silent forever on the strength of a years-old dedup entry.
	d.Process(hijack(2 * time.Minute))
	if len(d.Alerts()) != 2 {
		t.Fatalf("expired incident not re-raised: %+v", d.Alerts())
	}
	if d.DedupSize() != 1 {
		t.Fatalf("dedup size = %d, want 1 (expired entry evicted)", d.DedupSize())
	}
}

func TestAlertDedupMaxBoundsTheSet(t *testing.T) {
	cfg := testConfig()
	cfg.AlertDedupMax = 4
	d := NewDetector(cfg)
	for i := 0; i < 16; i++ {
		d.Process(announceEvent("10.0.0.0/23", 1001, bgp.ASN(600+i)))
	}
	if len(d.Alerts()) != 16 {
		t.Fatalf("alerts = %d, want 16 distinct incidents", len(d.Alerts()))
	}
	if d.DedupSize() != 4 {
		t.Fatalf("dedup size = %d, want the configured cap 4", d.DedupSize())
	}
}

func TestPerSourceCounterCardinalityBounded(t *testing.T) {
	d := NewDetector(testConfig())
	for i := 0; i < 3*maxTrackedSources; i++ {
		ev := announceEvent("10.0.0.0/23", 1001, 61000)
		ev.Source = fmt.Sprintf("feed-%d", i)
		d.Process(ev)
	}
	got := d.EventsBySource()
	if len(got) > maxTrackedSources+1 {
		t.Fatalf("per-source map grew to %d entries", len(got))
	}
	if got[otherSources] != 2*maxTrackedSources {
		t.Fatalf("overflow bucket = %d, want %d", got[otherSources], 2*maxTrackedSources)
	}
}

func TestHiddenSubPrefixHijackDetected(t *testing.T) {
	// The attacker announces a more-specific of owned space with a forged
	// path tail ending in the legitimate origin. Origin checks pass, but
	// the operator never announced that prefix — it must alert as a
	// sub-prefix hijack (the paper's "sub-prefix hijacks of all types are
	// detectable" position).
	d := NewDetector(testConfig())
	d.Process(announceEvent("10.0.0.0/24", 50, 666, 61000))
	alerts := d.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("hidden sub-prefix hijack missed: %d alerts", len(alerts))
	}
	if alerts[0].Type != AlertSubPrefix {
		t.Fatalf("alert type = %v, want sub-prefix", alerts[0].Type)
	}
	if alerts[0].Origin != 61000 {
		t.Fatalf("alert origin = %v (the claimed — forged — origin)", alerts[0].Origin)
	}
}

func TestSelfAnnouncedSuppressesOwnMitigation(t *testing.T) {
	// Our own mitigation de-aggregations come back through the feeds as
	// legit-origin sub-prefix announcements. Registered ones never alert;
	// a hijack OF a registered mitigation prefix (wrong origin) still does.
	cfg := testConfig()
	cfg.Self = NewSelfAnnounced()
	cfg.Self.Add(prefix.MustParse("10.0.0.0/24"))
	d := NewDetector(cfg)
	d.Process(announceEvent("10.0.0.0/24", 50, 61000))
	if n := len(d.Alerts()); n != 0 {
		t.Fatalf("registered self-announcement raised %d alerts", n)
	}
	d.Process(announceEvent("10.0.0.0/24", 50, 666))
	if n := len(d.Alerts()); n != 1 {
		t.Fatalf("hijack of the mitigation prefix: %d alerts, want 1", n)
	}
}

func TestNestedOwnedSubPrefixIsExpected(t *testing.T) {
	// A /24 listed in OwnedPrefixes alongside its covering /23 (sub-prefix
	// traffic engineering) is an expected announcement even when the
	// linear scan classifies it as rel=sub-prefix of the /23.
	cfg := testConfig()
	cfg.OwnedPrefixes = append(cfg.OwnedPrefixes, prefix.MustParse("10.0.1.0/24"))
	d := NewDetector(cfg)
	d.Process(announceEvent("10.0.1.0/24", 50, 61000))
	if n := len(d.Alerts()); n != 0 {
		t.Fatalf("owned TE sub-prefix raised %d alerts", n)
	}
}

func TestSelfAnnouncedNilSafe(t *testing.T) {
	var s *SelfAnnounced
	s.Add(prefix.MustParse("10.0.0.0/24"))
	s.Remove(prefix.MustParse("10.0.0.0/24"))
	if s.Has(prefix.MustParse("10.0.0.0/24")) || s.Len() != 0 {
		t.Fatal("nil registry must be empty")
	}
	s = NewSelfAnnounced()
	p := prefix.MustParse("10.0.0.0/24")
	s.Add(p)
	if !s.Has(p) || s.Len() != 1 {
		t.Fatal("add not visible")
	}
	s.Remove(p)
	if s.Has(p) || s.Len() != 0 {
		t.Fatal("remove not visible")
	}
}

func TestMitigatorRegistersSelfAnnouncements(t *testing.T) {
	cfg := testConfig()
	cfg.Self = NewSelfAnnounced()
	m := NewMitigator(cfg, announcerFunc(func(p prefix.Prefix) error { return nil }), func() time.Duration { return 0 })
	m.HandleAlert(Alert{Type: AlertExactOrigin, Prefix: prefix.MustParse("10.0.0.0/23"), Owned: prefix.MustParse("10.0.0.0/23"), Origin: 666})
	for _, want := range []string{"10.0.0.0/24", "10.0.1.0/24"} {
		if !cfg.Self.Has(prefix.MustParse(want)) {
			t.Fatalf("mitigation prefix %s not registered", want)
		}
	}
}

type announcerFunc func(prefix.Prefix) error

func (f announcerFunc) Announce(p prefix.Prefix) error { return f(p) }
