// Package core implements ARTEMIS itself — the paper's contribution: a
// self-operated system that detects hijacks of an AS's own prefixes in
// near real time from multiple BGP monitoring feeds, and automatically
// mitigates them by announcing de-aggregated sub-prefixes through an SDN
// controller (§2, Fig. 1).
//
// Three services, mirroring the paper's architecture:
//
//   - Detector: consumes every configured feed, flags announcements of
//     owned address space with an illegitimate origin (exact-prefix,
//     sub-prefix, or super-prefix/squatting) or an illegitimate first hop
//     (path anomaly), deduplicates, and raises alerts. Because all feeds
//     are watched concurrently, detection delay is the minimum of the
//     sources' delays.
//   - Mitigator: on alert, computes the de-aggregation of the attacked
//     address space (clamped at /24 — longer prefixes are filtered, §2)
//     and asks the controller to announce the sub-prefixes.
//   - Monitor: tracks, per vantage point, which origin currently captures
//     the owned address space, yielding the real-time mitigation-progress
//     view the demo (§4) visualizes.
package core

import (
	"fmt"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
	"artemis/internal/rpki"
)

// Config is the operator-supplied ground truth about the protected AS.
type Config struct {
	// OwnedPrefixes is the address space ARTEMIS protects.
	OwnedPrefixes []prefix.Prefix
	// LegitOrigins are the ASNs allowed to originate the owned prefixes
	// (usually just the protected AS; multi-origin setups list several).
	LegitOrigins []bgp.ASN
	// AllowedUpstreams, when non-empty, enables path-anomaly (Type-1)
	// detection: for each legitimate origin, the set of neighbor ASes that
	// may appear adjacent to it in an AS path. An attacker that fakes the
	// origin but splices itself in as the upstream is caught here.
	AllowedUpstreams map[bgp.ASN][]bgp.ASN
	// MaxDeaggregationLen clamps mitigation sub-prefixes for IPv4 owned
	// space (default 24: more specific prefixes are filtered by ISPs, §2).
	MaxDeaggregationLen int
	// MaxDeaggregationLen6 is the IPv6 clamp (default 48, the v6 analogue
	// of the /24 filtering convention).
	MaxDeaggregationLen6 int
	// ManualMitigation disables the automatic alert→mitigation wiring;
	// the operator must call Mitigator.HandleAlert. The zero value is the
	// paper's headline mode: fully automatic.
	ManualMitigation bool
	// AlertDedupTTL bounds how long a raised incident suppresses duplicate
	// alerts; after it, a recurring hijack is re-raised (and re-mitigated).
	// 0 keeps incidents forever — the virtual-time experiments' semantics.
	// Long-running daemons should set it so the dedup set cannot grow
	// without bound.
	AlertDedupTTL time.Duration
	// AlertDedupMax caps the incident dedup set; beyond it the oldest
	// incident is evicted (and would re-alert if seen again). 0 =
	// unbounded.
	AlertDedupMax int
	// MaxMitigationRetries bounds how many times a failed mitigation is
	// automatically re-attempted before the incident is left to the
	// operator. 0 selects DefaultMaxMitigationRetries. Hot-tunable: the
	// retry loop reads the active snapshot on every failure.
	MaxMitigationRetries int
	// MaxEventsPerSecond, when positive, is this config scope's fair-share
	// classification quota: matched events beyond the budget (token bucket
	// clocked by event time, burst of one second) are dropped for this
	// scope only — counted, not classified, not folded into the monitor.
	// In a multi-tenant pipeline this is what keeps one tenant under a
	// hijack storm from starving the others' classification capacity. 0
	// disables the quota (and keeps classification exactly deterministic).
	MaxEventsPerSecond int
	// RPKI, when set, enables route-origin validation (RFC 6811) in the
	// classifier: a ROA-valid announcement of owned space is fast-rejected
	// (it cannot be an origin hijack), and origin alerts carry the verdict
	// ("invalid" / "unknown") as evidence. The table is an immutable
	// snapshot like the rest of the config — a ROA refresh installs a new
	// config, so the pipeline/serial equivalence argument is untouched.
	RPKI *rpki.Table
	// Self is the registry of more-specific announcements ARTEMIS itself
	// originates (mitigation de-aggregations). Shared by reference across
	// snapshots like RPKI; NewService installs one when nil. It is what
	// lets the detector flag forged-legit-origin sub-prefix hijacks
	// ("hidden" hijacks) without alerting on its own mitigation routes.
	// Operators doing sub-prefix traffic engineering should list those
	// prefixes in OwnedPrefixes — anything announced that is neither owned
	// nor registered here is treated as hijacked space.
	Self *SelfAnnounced
	// MitigationRatePerMin, when positive, bounds automatic
	// alert→mitigation dispatches per minute (wall clock, token bucket,
	// burst of one minute's allowance). Excess alerts are dropped from
	// auto-mitigation (counted and reported); retries of already-dispatched
	// incidents are exempt. 0 disables the limit.
	MitigationRatePerMin int
}

// Clone returns a deep copy of the configuration. Reconfiguration treats
// installed configs as immutable snapshots, so callers that want to derive
// a new config from the current one clone first and mutate the copy.
func (c *Config) Clone() *Config {
	next := *c
	next.OwnedPrefixes = append([]prefix.Prefix(nil), c.OwnedPrefixes...)
	next.LegitOrigins = append([]bgp.ASN(nil), c.LegitOrigins...)
	if c.AllowedUpstreams != nil {
		next.AllowedUpstreams = make(map[bgp.ASN][]bgp.ASN, len(c.AllowedUpstreams))
		for k, v := range c.AllowedUpstreams {
			next.AllowedUpstreams[k] = append([]bgp.ASN(nil), v...)
		}
	}
	return &next
}

// Validate checks internal consistency.
func (c *Config) Validate() error {
	if len(c.OwnedPrefixes) == 0 {
		return fmt.Errorf("core: no owned prefixes configured")
	}
	if len(c.LegitOrigins) == 0 {
		return fmt.Errorf("core: no legitimate origins configured")
	}
	if c.MaxDeaggregationLen < 0 || c.MaxDeaggregationLen > 32 {
		return fmt.Errorf("core: invalid MaxDeaggregationLen %d", c.MaxDeaggregationLen)
	}
	if c.MaxDeaggregationLen6 < 0 || c.MaxDeaggregationLen6 > 128 {
		return fmt.Errorf("core: invalid MaxDeaggregationLen6 %d", c.MaxDeaggregationLen6)
	}
	if c.AlertDedupTTL < 0 {
		return fmt.Errorf("core: negative AlertDedupTTL %v", c.AlertDedupTTL)
	}
	if c.AlertDedupMax < 0 {
		return fmt.Errorf("core: negative AlertDedupMax %d", c.AlertDedupMax)
	}
	if c.MaxMitigationRetries < 0 {
		return fmt.Errorf("core: negative MaxMitigationRetries %d", c.MaxMitigationRetries)
	}
	if c.MaxEventsPerSecond < 0 {
		return fmt.Errorf("core: negative MaxEventsPerSecond %d", c.MaxEventsPerSecond)
	}
	if c.MitigationRatePerMin < 0 {
		return fmt.Errorf("core: negative MitigationRatePerMin %d", c.MitigationRatePerMin)
	}
	for i, p := range c.OwnedPrefixes {
		for j, q := range c.OwnedPrefixes {
			if i != j && p == q {
				return fmt.Errorf("core: duplicate owned prefix %s", p)
			}
		}
	}
	return nil
}

// maxLenFor returns the de-aggregation clamp for p's family.
func (c *Config) maxLenFor(p prefix.Prefix) int {
	if p.Is6() {
		if c.MaxDeaggregationLen6 == 0 {
			return 48
		}
		return c.MaxDeaggregationLen6
	}
	if c.MaxDeaggregationLen == 0 {
		return 24
	}
	return c.MaxDeaggregationLen
}

func (c *Config) originLegit(asn bgp.ASN) bool {
	for _, o := range c.LegitOrigins {
		if o == asn {
			return true
		}
	}
	return false
}

func (c *Config) upstreamAllowed(origin, upstream bgp.ASN) bool {
	allowed, ok := c.AllowedUpstreams[origin]
	if !ok {
		return true // no policy for this origin → path checks disabled
	}
	for _, a := range allowed {
		if a == upstream {
			return true
		}
	}
	return false
}

// expectedAnnouncement reports whether an announcement of exactly p is one
// the operator makes on purpose: an owned prefix itself, or a registered
// self-announcement (mitigation de-aggregation).
func (c *Config) expectedAnnouncement(p prefix.Prefix) bool {
	for _, o := range c.OwnedPrefixes {
		if p == o {
			return true
		}
	}
	return c.Self.Has(p)
}

// entryLegit decides whether a routed (prefix, origin) observation
// represents legitimate custody of the addresses it covers: the origin
// must be configured legit, and a strict more-specific of owned space must
// additionally be an announcement we expect — a forged legitimate origin
// on an unexpected sub-prefix is a hidden hijack, not legitimacy.
func (c *Config) entryLegit(p prefix.Prefix, origin bgp.ASN) bool {
	if !c.originLegit(origin) {
		return false
	}
	if c.expectedAnnouncement(p) {
		return true
	}
	for _, o := range c.OwnedPrefixes {
		if o.Contains(p) && p != o {
			return false
		}
	}
	return true
}

// matchOwned returns the owned prefix related to p, and the relation:
// exact, sub (p inside owned), or super (p covers owned).
func (c *Config) matchOwned(p prefix.Prefix) (owned prefix.Prefix, rel AlertType, ok bool) {
	for _, o := range c.OwnedPrefixes {
		switch {
		case p == o:
			return o, AlertExactOrigin, true
		case o.Contains(p):
			return o, AlertSubPrefix, true
		case p.Contains(o):
			return o, AlertSquat, true
		}
	}
	return prefix.Prefix{}, 0, false
}
