package bgp

import "fmt"

// Error codes for NOTIFICATION messages (RFC 4271 §4.5 and §6).
const (
	ErrMessageHeader    uint8 = 1
	ErrOpenMessage      uint8 = 2
	ErrUpdateMessage    uint8 = 3
	ErrHoldTimerExpired uint8 = 4
	ErrFSMError         uint8 = 5
	ErrCease            uint8 = 6
)

// Message header error subcodes.
const (
	ErrSubConnectionNotSynchronized uint8 = 1
	ErrSubBadMessageLength          uint8 = 2
	ErrSubBadMessageType            uint8 = 3
)

// OPEN message error subcodes.
const (
	ErrSubUnsupportedVersionNumber uint8 = 1
	ErrSubBadPeerAS                uint8 = 2
	ErrSubBadBGPIdentifier         uint8 = 3
	ErrSubUnacceptableHoldTime     uint8 = 6
)

// UPDATE message error subcodes.
const (
	ErrSubMalformedAttributeList    uint8 = 1
	ErrSubUnrecognizedWellKnownAttr uint8 = 2
	ErrSubMissingWellKnownAttr      uint8 = 3
	ErrSubAttributeFlagsError       uint8 = 4
	ErrSubAttributeLengthError      uint8 = 5
	ErrSubInvalidOriginAttribute    uint8 = 6
	ErrSubInvalidNextHopAttribute   uint8 = 8
	ErrSubOptionalAttributeError    uint8 = 9
	ErrSubInvalidNetworkField       uint8 = 10
	ErrSubMalformedASPath           uint8 = 11
)

// MessageError is a protocol violation that, on a live session, is reported
// to the peer as a NOTIFICATION with the carried code/subcode/data.
type MessageError struct {
	Code    uint8
	Subcode uint8
	Data    []byte
	msg     string
}

// NewMessageError builds a MessageError. data may be nil.
func NewMessageError(code, subcode uint8, data []byte, msg string) *MessageError {
	return &MessageError{Code: code, Subcode: subcode, Data: data, msg: msg}
}

func (e *MessageError) Error() string {
	return fmt.Sprintf("%s (code %d subcode %d)", e.msg, e.Code, e.Subcode)
}

// Notification converts the error into the NOTIFICATION message a speaker
// sends before closing the session.
func (e *MessageError) Notification() *Notification {
	return &Notification{Code: e.Code, Subcode: e.Subcode, Data: e.Data}
}
