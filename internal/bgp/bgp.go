// Package bgp implements the BGP-4 wire protocol (RFC 4271) with 4-octet
// AS number support (RFC 6793): message framing, the four message types,
// and the standard path attributes.
//
// The codec is used by every data path in the reproduction: the bgpd
// speaker frames these messages over TCP, the MRT archive (internal/bgp/mrt)
// embeds them in dump records, and the simulated feeds decode them back.
// Unknown path attributes are preserved as raw bytes so that a speaker can
// forward what it does not understand, as the RFC requires for optional
// transitive attributes.
package bgp

import (
	"encoding/binary"
	"fmt"
	"io"

	"artemis/internal/prefix"
)

// ASN is an autonomous system number. The reproduction is 4-octet native
// (every modern speaker negotiates RFC 6793), but the codec can also emit
// the 2-octet legacy encoding with AS_TRANS substitution.
type ASN uint32

// ASTrans is the reserved 2-octet ASN substituted for 4-octet ASNs when
// speaking to a legacy peer (RFC 6793 §4.2.2).
const ASTrans ASN = 23456

func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// Message sizes (RFC 4271 §4.1).
const (
	HeaderLen     = 19
	MaxMessageLen = 4096
)

// MessageType identifies one of the four BGP message types.
type MessageType uint8

const (
	MsgOpen         MessageType = 1
	MsgUpdate       MessageType = 2
	MsgNotification MessageType = 3
	MsgKeepalive    MessageType = 4
)

func (t MessageType) String() string {
	switch t {
	case MsgOpen:
		return "OPEN"
	case MsgUpdate:
		return "UPDATE"
	case MsgNotification:
		return "NOTIFICATION"
	case MsgKeepalive:
		return "KEEPALIVE"
	}
	return fmt.Sprintf("BGP(%d)", uint8(t))
}

// Message is one of *Open, *Update, *Notification, *Keepalive.
type Message interface {
	Type() MessageType
	// marshalBody appends the message body (everything after the common
	// header) to dst.
	marshalBody(dst []byte, opt Options) ([]byte, error)
}

// Options controls encoding variants.
type Options struct {
	// AS4 selects 4-octet AS_PATH encoding (RFC 6793). It is the default
	// for every session in the reproduction; disabling it exercises the
	// legacy 2-octet path with AS_TRANS substitution.
	AS4 bool
}

// DefaultOptions is the modern, 4-octet-AS encoding.
var DefaultOptions = Options{AS4: true}

// Marshal encodes a full BGP message including the 19-byte header.
func Marshal(m Message, opt Options) ([]byte, error) {
	buf := make([]byte, HeaderLen, 64)
	for i := 0; i < 16; i++ {
		buf[i] = 0xff
	}
	buf[18] = byte(m.Type())
	buf, err := m.marshalBody(buf, opt)
	if err != nil {
		return nil, err
	}
	if len(buf) > MaxMessageLen {
		return nil, fmt.Errorf("bgp: %s message length %d exceeds %d", m.Type(), len(buf), MaxMessageLen)
	}
	binary.BigEndian.PutUint16(buf[16:18], uint16(len(buf)))
	return buf, nil
}

// ParseMessage decodes a full BGP message (header included) from wire bytes.
func ParseMessage(b []byte, opt Options) (Message, error) {
	typ, body, err := splitHeader(b)
	if err != nil {
		return nil, err
	}
	return parseBody(typ, body, opt)
}

// ReadMessage reads exactly one framed BGP message from r.
func ReadMessage(r io.Reader, opt Options) (Message, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := int(binary.BigEndian.Uint16(hdr[16:18]))
	if length < HeaderLen || length > MaxMessageLen {
		return nil, NewMessageError(ErrMessageHeader, ErrSubBadMessageLength, hdr[16:18], fmt.Sprintf("bgp: bad message length %d", length))
	}
	full := make([]byte, length)
	copy(full, hdr[:])
	if _, err := io.ReadFull(r, full[HeaderLen:]); err != nil {
		return nil, err
	}
	return ParseMessage(full, opt)
}

// WriteMessage marshals m and writes it to w.
func WriteMessage(w io.Writer, m Message, opt Options) error {
	b, err := Marshal(m, opt)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

func splitHeader(b []byte) (MessageType, []byte, error) {
	if len(b) < HeaderLen {
		return 0, nil, NewMessageError(ErrMessageHeader, ErrSubBadMessageLength, nil, "bgp: short header")
	}
	for i := 0; i < 16; i++ {
		if b[i] != 0xff {
			return 0, nil, NewMessageError(ErrMessageHeader, ErrSubConnectionNotSynchronized, nil, "bgp: bad marker")
		}
	}
	length := int(binary.BigEndian.Uint16(b[16:18]))
	typ := MessageType(b[18])
	if length < HeaderLen || length > MaxMessageLen || length != len(b) {
		return 0, nil, NewMessageError(ErrMessageHeader, ErrSubBadMessageLength, b[16:18], fmt.Sprintf("bgp: bad message length %d (have %d bytes)", length, len(b)))
	}
	return typ, b[HeaderLen:], nil
}

func parseBody(typ MessageType, body []byte, opt Options) (Message, error) {
	switch typ {
	case MsgOpen:
		return parseOpen(body)
	case MsgUpdate:
		return parseUpdate(body, opt)
	case MsgNotification:
		return parseNotification(body)
	case MsgKeepalive:
		if len(body) != 0 {
			return nil, NewMessageError(ErrMessageHeader, ErrSubBadMessageLength, nil, "bgp: KEEPALIVE with body")
		}
		return &Keepalive{}, nil
	}
	return nil, NewMessageError(ErrMessageHeader, ErrSubBadMessageType, []byte{byte(typ)}, fmt.Sprintf("bgp: unknown message type %d", typ))
}

// --- NLRI encoding (RFC 4271 §4.3, RFC 4760 §5) ---

// appendNLRI encodes prefixes in the shared length-plus-truncated-bytes
// form. The caller is responsible for family discipline: classic UPDATE
// fields carry v4 only, MP attributes v6 only.
func appendNLRI(dst []byte, prefixes []prefix.Prefix) []byte {
	for _, p := range prefixes {
		dst = append(dst, byte(p.Bits()))
		dst = p.AppendBytes(dst)
	}
	return dst
}

func parseNLRI(b []byte, is6 bool) ([]prefix.Prefix, error) {
	max := 32
	if is6 {
		max = 128
	}
	var out []prefix.Prefix
	for len(b) > 0 {
		bits := int(b[0])
		if bits > max {
			return nil, NewMessageError(ErrUpdateMessage, ErrSubInvalidNetworkField, nil, fmt.Sprintf("bgp: NLRI length %d", bits))
		}
		n := (bits + 7) / 8
		if len(b) < 1+n {
			return nil, NewMessageError(ErrUpdateMessage, ErrSubInvalidNetworkField, nil, "bgp: truncated NLRI")
		}
		p, err := prefix.FromBytes(b[1:1+n], bits, is6)
		if err != nil {
			return nil, NewMessageError(ErrUpdateMessage, ErrSubInvalidNetworkField, nil, "bgp: NLRI trailing bits set")
		}
		out = append(out, p)
		b = b[1+n:]
	}
	return out, nil
}

// splitFamily partitions prefixes into v4 and v6, preserving order. The
// common all-v4 case returns the input slice unchanged.
func splitFamily(prefixes []prefix.Prefix) (v4, v6 []prefix.Prefix) {
	allV4 := true
	for _, p := range prefixes {
		if p.Is6() {
			allV4 = false
			break
		}
	}
	if allV4 {
		return prefixes, nil
	}
	for _, p := range prefixes {
		if p.Is6() {
			v6 = append(v6, p)
		} else {
			v4 = append(v4, p)
		}
	}
	return v4, v6
}
