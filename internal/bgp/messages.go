package bgp

import (
	"encoding/binary"
	"fmt"

	"artemis/internal/prefix"
)

// --- OPEN ---

// Open is the BGP OPEN message (RFC 4271 §4.2). A 4-octet local ASN is
// carried in the Four-Octet-AS capability with AS_TRANS in the fixed field,
// exactly as RFC 6793 specifies; Open.ASN always exposes the real ASN.
type Open struct {
	Version  uint8 // always 4
	ASN      ASN
	HoldTime uint16 // seconds; 0 disables keepalives
	RouterID prefix.Addr
	Caps     []Capability
}

// Capability is a BGP capability (RFC 5492) from the OPEN optional
// parameters.
type Capability struct {
	Code  uint8
	Value []byte
}

// Capability codes used by the reproduction.
const (
	CapCodeFourOctetAS uint8 = 65
	capParamType       uint8 = 2
)

// NewOpen builds an OPEN for a 4-octet-AS speaker.
func NewOpen(asn ASN, holdTime uint16, routerID prefix.Addr) *Open {
	return &Open{Version: 4, ASN: asn, HoldTime: holdTime, RouterID: routerID,
		Caps: []Capability{FourOctetASCap(asn)}}
}

// FourOctetASCap returns the RFC 6793 capability advertising asn.
func FourOctetASCap(asn ASN) Capability {
	v := make([]byte, 4)
	binary.BigEndian.PutUint32(v, uint32(asn))
	return Capability{Code: CapCodeFourOctetAS, Value: v}
}

// FourOctetAS extracts the peer's 4-octet ASN from its capabilities.
func (o *Open) FourOctetAS() (ASN, bool) {
	for _, c := range o.Caps {
		if c.Code == CapCodeFourOctetAS && len(c.Value) == 4 {
			return ASN(binary.BigEndian.Uint32(c.Value)), true
		}
	}
	return 0, false
}

func (*Open) Type() MessageType { return MsgOpen }

func (o *Open) marshalBody(dst []byte, _ Options) ([]byte, error) {
	dst = append(dst, o.Version)
	wireAS := o.ASN
	if wireAS > 0xffff {
		wireAS = ASTrans
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(wireAS))
	dst = binary.BigEndian.AppendUint16(dst, o.HoldTime)
	// A router ID is a 32-bit value even on v6-only speakers (RFC 6286);
	// reject a v6 address rather than silently truncating it.
	if o.RouterID.Is6() {
		return nil, fmt.Errorf("bgp: router ID must be a 32-bit (v4-form) identifier")
	}
	dst = binary.BigEndian.AppendUint32(dst, o.RouterID.V4())
	// Optional parameters: each capability in its own parameter, the common
	// layout emitted by real speakers.
	var params []byte
	for _, c := range o.Caps {
		if len(c.Value) > 255 {
			return nil, fmt.Errorf("bgp: capability %d value too long", c.Code)
		}
		params = append(params, capParamType, byte(2+len(c.Value)), c.Code, byte(len(c.Value)))
		params = append(params, c.Value...)
	}
	if len(params) > 255 {
		return nil, fmt.Errorf("bgp: optional parameters too long (%d bytes)", len(params))
	}
	dst = append(dst, byte(len(params)))
	return append(dst, params...), nil
}

func parseOpen(b []byte) (*Open, error) {
	if len(b) < 10 {
		return nil, NewMessageError(ErrOpenMessage, ErrSubBadMessageLength, nil, "bgp: short OPEN")
	}
	o := &Open{
		Version:  b[0],
		ASN:      ASN(binary.BigEndian.Uint16(b[1:3])),
		HoldTime: binary.BigEndian.Uint16(b[3:5]),
		RouterID: prefix.AddrFrom4(binary.BigEndian.Uint32(b[5:9])),
	}
	if o.Version != 4 {
		return nil, NewMessageError(ErrOpenMessage, ErrSubUnsupportedVersionNumber, []byte{0, 4}, fmt.Sprintf("bgp: version %d", o.Version))
	}
	optLen := int(b[9])
	opts := b[10:]
	if len(opts) != optLen {
		return nil, NewMessageError(ErrOpenMessage, ErrSubBadMessageLength, nil, "bgp: OPEN optional parameter length mismatch")
	}
	for len(opts) > 0 {
		if len(opts) < 2 {
			return nil, NewMessageError(ErrOpenMessage, ErrSubBadMessageLength, nil, "bgp: truncated optional parameter")
		}
		ptype, plen := opts[0], int(opts[1])
		if len(opts) < 2+plen {
			return nil, NewMessageError(ErrOpenMessage, ErrSubBadMessageLength, nil, "bgp: truncated optional parameter")
		}
		val := opts[2 : 2+plen]
		opts = opts[2+plen:]
		if ptype != capParamType {
			continue // unknown parameter types are skipped
		}
		for len(val) > 0 {
			if len(val) < 2 || len(val) < 2+int(val[1]) {
				return nil, NewMessageError(ErrOpenMessage, ErrSubBadMessageLength, nil, "bgp: truncated capability")
			}
			clen := int(val[1])
			o.Caps = append(o.Caps, Capability{Code: val[0], Value: append([]byte(nil), val[2:2+clen]...)})
			val = val[2+clen:]
		}
	}
	if as4, ok := o.FourOctetAS(); ok {
		o.ASN = as4
	}
	return o, nil
}

// --- UPDATE ---

// Update is the BGP UPDATE message (RFC 4271 §4.3), dual-stack: NLRI and
// Withdrawn may mix v4 and v6 prefixes. On the wire, v4 prefixes travel in
// the classic UPDATE fields and v6 prefixes in MP_REACH_NLRI /
// MP_UNREACH_NLRI attributes (RFC 4760); Marshal splits by family and
// parse folds the MP attributes back, so consumers never see the split.
type Update struct {
	Withdrawn []prefix.Prefix
	Attrs     []PathAttr
	NLRI      []prefix.Prefix
}

func (*Update) Type() MessageType { return MsgUpdate }

func (u *Update) marshalBody(dst []byte, opt Options) ([]byte, error) {
	nlri4, nlri6 := splitFamily(u.NLRI)
	wd4, wd6 := splitFamily(u.Withdrawn)

	wd := appendNLRI(nil, wd4)
	if len(wd) > 0xffff {
		return nil, fmt.Errorf("bgp: withdrawn routes too long")
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(wd)))
	dst = append(dst, wd...)

	// v6 prefixes ride in MP attributes after the caller's other attrs. An
	// explicit MPReachNLRIAttr/MPUnreachNLRIAttr in u.Attrs (a caller
	// supplying a real v6 next hop, or one retained by parse) is merged
	// with the prefixes split from NLRI/Withdrawn so exactly one of each
	// attribute is emitted. The caller's slices are not mutated.
	var mpReach *MPReachNLRIAttr
	var mpUnreach *MPUnreachNLRIAttr
	// An MP attribute for an AFI/SAFI this codec does not model survives
	// parse as a RawAttr with code 14/15; it cannot be merged with the
	// typed form, and emitting both would put duplicate attribute codes on
	// the wire, which every conforming parser rejects.
	var rawMPReach, rawMPUnreach bool
	allAttrs := make([]PathAttr, 0, len(u.Attrs)+2)
	for _, a := range u.Attrs {
		switch mp := a.(type) {
		case *MPReachNLRIAttr:
			if mpReach != nil || rawMPReach {
				return nil, fmt.Errorf("bgp: duplicate MP_REACH_NLRI attribute")
			}
			cp := *mp
			cp.NLRI = append([]prefix.Prefix(nil), mp.NLRI...)
			mpReach = &cp
		case *MPUnreachNLRIAttr:
			if mpUnreach != nil || rawMPUnreach {
				return nil, fmt.Errorf("bgp: duplicate MP_UNREACH_NLRI attribute")
			}
			cp := *mp
			cp.Withdrawn = append([]prefix.Prefix(nil), mp.Withdrawn...)
			mpUnreach = &cp
		case *RawAttr:
			switch mp.AttrCode {
			case AttrMPReachNLRI:
				if mpReach != nil || rawMPReach {
					return nil, fmt.Errorf("bgp: duplicate MP_REACH_NLRI attribute")
				}
				rawMPReach = true
			case AttrMPUnreachNLRI:
				if mpUnreach != nil || rawMPUnreach {
					return nil, fmt.Errorf("bgp: duplicate MP_UNREACH_NLRI attribute")
				}
				rawMPUnreach = true
			}
			allAttrs = append(allAttrs, a)
		default:
			allAttrs = append(allAttrs, a)
		}
	}
	if len(wd6) > 0 {
		if mpUnreach == nil {
			mpUnreach = &MPUnreachNLRIAttr{}
		}
		mpUnreach.Withdrawn = append(mpUnreach.Withdrawn, wd6...)
	}
	if len(nlri6) > 0 {
		if mpReach == nil {
			mpReach = &MPReachNLRIAttr{}
		}
		mpReach.NLRI = append(mpReach.NLRI, nlri6...)
	}
	if mpUnreach != nil && len(mpUnreach.Withdrawn) > 0 {
		if rawMPUnreach {
			return nil, fmt.Errorf("bgp: v6 withdrawals cannot share an UPDATE with an unmodeled MP_UNREACH_NLRI attribute")
		}
		allAttrs = append(allAttrs, mpUnreach)
	}
	// An MP_REACH with no NLRI carries nothing (its next hop is meaningless
	// without routes) and is dropped rather than emitted empty.
	if mpReach != nil && len(mpReach.NLRI) > 0 {
		if rawMPReach {
			return nil, fmt.Errorf("bgp: v6 NLRI cannot share an UPDATE with an unmodeled MP_REACH_NLRI attribute")
		}
		allAttrs = append(allAttrs, mpReach)
	}
	var attrs []byte
	for _, a := range allAttrs {
		var err error
		attrs, err = appendAttr(attrs, a, opt)
		if err != nil {
			return nil, err
		}
	}
	if len(attrs) > 0xffff {
		return nil, fmt.Errorf("bgp: path attributes too long")
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(attrs)))
	dst = append(dst, attrs...)
	return appendNLRI(dst, nlri4), nil
}

func parseUpdate(b []byte, opt Options) (*Update, error) {
	if len(b) < 4 {
		return nil, NewMessageError(ErrUpdateMessage, ErrSubMalformedAttributeList, nil, "bgp: short UPDATE")
	}
	wdLen := int(binary.BigEndian.Uint16(b[:2]))
	if len(b) < 2+wdLen+2 {
		return nil, NewMessageError(ErrUpdateMessage, ErrSubMalformedAttributeList, nil, "bgp: truncated withdrawn routes")
	}
	u := &Update{}
	var err error
	if u.Withdrawn, err = parseNLRI(b[2:2+wdLen], false); err != nil {
		return nil, err
	}
	rest := b[2+wdLen:]
	attrLen := int(binary.BigEndian.Uint16(rest[:2]))
	if len(rest) < 2+attrLen {
		return nil, NewMessageError(ErrUpdateMessage, ErrSubMalformedAttributeList, nil, "bgp: truncated path attributes")
	}
	if u.Attrs, err = parseAttrs(rest[2:2+attrLen], opt); err != nil {
		return nil, err
	}
	if u.NLRI, err = parseNLRI(rest[2+attrLen:], false); err != nil {
		return nil, err
	}
	classicNLRI := len(u.NLRI) > 0
	// Fold MP attributes into the dual-stack prefix lists; the duplicate-
	// attribute check in parseAttrs guarantees at most one of each.
	kept := u.Attrs[:0]
	var mpNLRI bool
	for _, a := range u.Attrs {
		switch mp := a.(type) {
		case *MPReachNLRIAttr:
			u.NLRI = append(u.NLRI, mp.NLRI...)
			mpNLRI = len(mp.NLRI) > 0
			// A real (non-::) next hop is routing information third-party
			// data carries; retain it so parse -> marshal round-trips it.
			if mp.NextHop != prefix.AddrFrom16(0, 0) {
				kept = append(kept, &MPReachNLRIAttr{NextHop: mp.NextHop})
			}
		case *MPUnreachNLRIAttr:
			u.Withdrawn = append(u.Withdrawn, mp.Withdrawn...)
		default:
			kept = append(kept, a)
		}
	}
	u.Attrs = kept
	if len(u.Attrs) == 0 {
		u.Attrs = nil
	}
	if classicNLRI || mpNLRI {
		if err := u.checkMandatoryAttrs(classicNLRI); err != nil {
			return nil, err
		}
	}
	return u, nil
}

// checkMandatoryAttrs enforces RFC 4271 §6.3: an UPDATE that advertises
// NLRI must carry ORIGIN and AS_PATH, plus NEXT_HOP when classic (v4)
// NLRI is present — MP-only updates carry their next hop inside
// MP_REACH_NLRI (RFC 4760 §7).
func (u *Update) checkMandatoryAttrs(needNextHop bool) error {
	need := map[AttrCode]bool{AttrOrigin: true, AttrASPath: true}
	if needNextHop {
		need[AttrNextHop] = true
	}
	for _, a := range u.Attrs {
		delete(need, a.Code())
	}
	for code := range need {
		return NewMessageError(ErrUpdateMessage, ErrSubMissingWellKnownAttr, []byte{byte(code)}, fmt.Sprintf("bgp: missing mandatory attribute %d", code))
	}
	return nil
}

// ASPath returns the flattened AS_PATH (sequence segments expanded in
// order) and true when present.
func (u *Update) ASPath() ([]ASN, bool) {
	for _, a := range u.Attrs {
		if ap, ok := a.(*ASPathAttr); ok {
			return ap.Flatten(), true
		}
	}
	return nil, false
}

// Origin returns the origin AS — the last element of the AS_PATH — and
// true when the path is non-empty. This is the field ARTEMIS's detector
// checks against the legitimate origin set.
func (u *Update) Origin() (ASN, bool) {
	path, ok := u.ASPath()
	if !ok || len(path) == 0 {
		return 0, false
	}
	return path[len(path)-1], true
}

// --- NOTIFICATION ---

// Notification is the BGP NOTIFICATION message (RFC 4271 §4.5).
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

func (*Notification) Type() MessageType { return MsgNotification }

func (n *Notification) marshalBody(dst []byte, _ Options) ([]byte, error) {
	dst = append(dst, n.Code, n.Subcode)
	return append(dst, n.Data...), nil
}

func parseNotification(b []byte) (*Notification, error) {
	if len(b) < 2 {
		return nil, NewMessageError(ErrMessageHeader, ErrSubBadMessageLength, nil, "bgp: short NOTIFICATION")
	}
	return &Notification{Code: b[0], Subcode: b[1], Data: append([]byte(nil), b[2:]...)}, nil
}

func (n *Notification) Error() string {
	return fmt.Sprintf("bgp: notification code %d subcode %d", n.Code, n.Subcode)
}

// --- KEEPALIVE ---

// Keepalive is the (bodyless) BGP KEEPALIVE message.
type Keepalive struct{}

func (*Keepalive) Type() MessageType { return MsgKeepalive }

func (*Keepalive) marshalBody(dst []byte, _ Options) ([]byte, error) { return dst, nil }
