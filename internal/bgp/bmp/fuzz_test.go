package bmp

import (
	"reflect"
	"testing"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

// FuzzBMPMessage: any frame ParseMessage accepts must marshal back
// without error, and the re-marshaled form must be a parse fixed point
// (parse→marshal→parse is the identity on parsed messages). This wall
// covers the common header, the per-peer header, every message body,
// and — through Route Monitoring and Peer Up/Down — the embedded
// internal/bgp UPDATE/OPEN/NOTIFICATION parsers.
func FuzzBMPMessage(f *testing.F) {
	peer := PerPeerHeader{AS: 65010, BGPID: 0x0a000001, Addr: prefix.MustParseAddr("192.0.2.10")}
	peer6 := peer
	peer6.Addr = prefix.MustParseAddr("2001:db8::10")
	upd := &bgp.Update{
		Attrs: []bgp.PathAttr{
			&bgp.OriginAttr{Value: bgp.OriginIGP},
			bgp.NewASPath([]bgp.ASN{65010, 64666}),
			&bgp.NextHopAttr{Addr: prefix.MustParseAddr("192.0.2.1")},
		},
		NLRI: []prefix.Prefix{prefix.MustParse("208.65.153.0/24"), prefix.MustParse("2001:db8::/32")},
	}
	seeds := []Message{
		NewInitiation("rtr", "fuzz seed"),
		&Termination{Info: []TLV{{TLVType: TermReason, Value: []byte{0, 1}}}},
		&RouteMonitoring{Peer: peer, Update: upd},
		&RouteMonitoring{Peer: peer6, Update: &bgp.Update{Withdrawn: upd.NLRI}},
		&PeerUp{Peer: peer, LocalAddr: prefix.MustParseAddr("192.0.2.1"), LocalPort: 179,
			SentOpen: bgp.NewOpen(64512, 90, prefix.MustParseAddr("192.0.2.1")),
			RecvOpen: bgp.NewOpen(65010, 90, prefix.MustParseAddr("192.0.2.10"))},
		&PeerDown{Peer: peer, Reason: PeerDownLocalNoNotify, FSMCode: 17},
		&PeerDown{Peer: peer6, Reason: PeerDownRemoteNotification,
			Notification: &bgp.Notification{Code: 6, Subcode: 4}},
		&StatsReport{Peer: peer, Stats: []Stat{{StatType: 7, Value: []byte{0, 0, 0, 1}}}},
	}
	for _, m := range seeds {
		wire, err := Marshal(m, bgp.DefaultOptions)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	f.Add([]byte{Version, 0, 0, 0, 6, byte(MsgInitiation)})
	f.Add([]byte{Version, 0xff, 0xff, 0xff, 0xff, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := ParseMessage(b, bgp.DefaultOptions)
		if err != nil {
			return
		}
		wire, err := Marshal(m, bgp.DefaultOptions)
		if err != nil {
			t.Fatalf("parsed message does not re-marshal: %v\n%#v", err, m)
		}
		m2, err := ParseMessage(wire, bgp.DefaultOptions)
		if err != nil {
			t.Fatalf("re-marshaled message does not re-parse: %v", err)
		}
		if !reflect.DeepEqual(m2, m) {
			t.Fatalf("parse not a fixed point:\n first %#v\nsecond %#v", m, m2)
		}
	})
}
