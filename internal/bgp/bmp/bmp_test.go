package bmp

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

func roundTrip(t *testing.T, m Message, opt bgp.Options) Message {
	t.Helper()
	wire, err := Marshal(m, opt)
	if err != nil {
		t.Fatalf("marshal %s: %v", m.Type(), err)
	}
	got, err := ParseMessage(wire, opt)
	if err != nil {
		t.Fatalf("parse %s: %v", m.Type(), err)
	}
	return got
}

func testPeer(v6 bool) PerPeerHeader {
	p := PerPeerHeader{
		AS:        65010,
		BGPID:     0x0a000001,
		Timestamp: time.Unix(1466000123, 250_000_000).UTC(),
		Addr:      prefix.MustParseAddr("192.0.2.10"),
	}
	if v6 {
		p.Addr = prefix.MustParseAddr("2001:db8::10")
	}
	return p
}

func testUpdate() *bgp.Update {
	return &bgp.Update{
		Attrs: []bgp.PathAttr{
			&bgp.OriginAttr{Value: bgp.OriginIGP},
			bgp.NewASPath([]bgp.ASN{65010, 65002, 64666}),
			&bgp.NextHopAttr{Addr: prefix.MustParseAddr("192.0.2.1")},
		},
		NLRI: []prefix.Prefix{
			prefix.MustParse("208.65.153.0/24"),
			prefix.MustParse("2001:db8:beef::/48"),
		},
	}
}

func TestRouteMonitoringRoundTrip(t *testing.T) {
	for _, v6 := range []bool{false, true} {
		m := &RouteMonitoring{Peer: testPeer(v6), Update: testUpdate()}
		got := roundTrip(t, m, bgp.DefaultOptions).(*RouteMonitoring)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("v6=%v round trip mismatch:\n got %#v\nwant %#v", v6, got, m)
		}
	}
}

func TestPeerUpDownRoundTrip(t *testing.T) {
	up := &PeerUp{
		Peer:       testPeer(false),
		LocalAddr:  prefix.MustParseAddr("192.0.2.1"),
		LocalPort:  179,
		RemotePort: 30012,
		SentOpen:   bgp.NewOpen(64512, 90, prefix.MustParseAddr("192.0.2.1")),
		RecvOpen:   bgp.NewOpen(65010, 90, prefix.MustParseAddr("192.0.2.10")),
		Info:       []TLV{{TLVType: InfoString, Value: []byte("session up")}},
	}
	if got := roundTrip(t, up, bgp.DefaultOptions).(*PeerUp); !reflect.DeepEqual(got, up) {
		t.Fatalf("Peer Up mismatch:\n got %#v\nwant %#v", got, up)
	}

	for _, down := range []*PeerDown{
		{Peer: testPeer(false), Reason: PeerDownRemoteNotification,
			Notification: &bgp.Notification{Code: 6, Subcode: 2, Data: []byte{1}}},
		{Peer: testPeer(true), Reason: PeerDownLocalNoNotify, FSMCode: 17},
		{Peer: testPeer(false), Reason: PeerDownRemoteNoNotify},
		{Peer: testPeer(false), Reason: PeerDownDeconfigured},
		{Peer: testPeer(false), Reason: 99, Data: []byte{0xde, 0xad}},
	} {
		got := roundTrip(t, down, bgp.DefaultOptions).(*PeerDown)
		if !reflect.DeepEqual(got, down) {
			t.Fatalf("Peer Down reason %d mismatch:\n got %#v\nwant %#v", down.Reason, got, down)
		}
	}
}

func TestInitiationTerminationStatsRoundTrip(t *testing.T) {
	init := NewInitiation("rrc-sim", "unit test")
	got := roundTrip(t, init, bgp.DefaultOptions).(*Initiation)
	if name, ok := got.SysName(); !ok || name != "rrc-sim" {
		t.Fatalf("SysName = %q, %v", name, ok)
	}
	if !reflect.DeepEqual(got, init) {
		t.Fatalf("Initiation mismatch: %#v", got)
	}

	term := &Termination{Info: []TLV{{TLVType: TermReason, Value: []byte{0, 0}}}}
	if got := roundTrip(t, term, bgp.DefaultOptions).(*Termination); !reflect.DeepEqual(got, term) {
		t.Fatalf("Termination mismatch: %#v", got)
	}

	stats := &StatsReport{Peer: testPeer(true), Stats: []Stat{
		{StatType: 0, Value: []byte{0, 0, 0, 7}},
		{StatType: 7, Value: []byte{0, 0, 0, 0, 0, 0, 1, 0}},
	}}
	if got := roundTrip(t, stats, bgp.DefaultOptions).(*StatsReport); !reflect.DeepEqual(got, stats) {
		t.Fatalf("StatsReport mismatch: %#v", got)
	}
}

// TestZeroTimestamp: an all-zero timestamp field means "not available"
// and must decode back to the zero time, not the Unix epoch.
func TestZeroTimestamp(t *testing.T) {
	p := testPeer(false)
	p.Timestamp = time.Time{}
	m := &RouteMonitoring{Peer: p, Update: testUpdate()}
	got := roundTrip(t, m, bgp.DefaultOptions).(*RouteMonitoring)
	if !got.Peer.Timestamp.IsZero() {
		t.Fatalf("zero timestamp decoded as %v", got.Peer.Timestamp)
	}
}

// TestReaderStream: a Reader must deliver a full session stream in
// order from one buffer, and report clean EOF at a message boundary.
func TestReaderStream(t *testing.T) {
	msgs := []Message{
		NewInitiation("rtr1", "stream test"),
		&PeerUp{Peer: testPeer(false), LocalAddr: prefix.MustParseAddr("192.0.2.1"),
			SentOpen: bgp.NewOpen(64512, 90, prefix.MustParseAddr("192.0.2.1")),
			RecvOpen: bgp.NewOpen(65010, 90, prefix.MustParseAddr("192.0.2.10"))},
		&RouteMonitoring{Peer: testPeer(false), Update: testUpdate()},
		&PeerDown{Peer: testPeer(false), Reason: PeerDownRemoteNoNotify},
		&Termination{Info: []TLV{{TLVType: TermString, Value: []byte("bye")}}},
	}
	var stream bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&stream, m, bgp.DefaultOptions); err != nil {
			t.Fatal(err)
		}
	}
	rd := NewReader(&stream, bgp.DefaultOptions)
	for i, want := range msgs {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("message %d mismatch:\n got %#v\nwant %#v", i, got, want)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("after stream: err = %v, want io.EOF", err)
	}
}

// TestParseRejects: structurally broken frames must error, not panic.
func TestParseRejects(t *testing.T) {
	good, err := Marshal(&RouteMonitoring{Peer: testPeer(false), Update: testUpdate()}, bgp.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"short header":    good[:4],
		"bad version":     append([]byte{9}, good[1:]...),
		"length mismatch": good[:len(good)-1],
		"unknown type":    func() []byte { b := append([]byte(nil), good...); b[5] = 42; return b }(),
		"truncated peer":  good[:HeaderLen+10],
	}
	for name, b := range cases {
		if name == "truncated peer" {
			// Re-frame so the length field matches the truncated body.
			b = append([]byte(nil), b...)
			b[1], b[2], b[3], b[4] = 0, 0, 0, byte(len(b))
		}
		if _, err := ParseMessage(b, bgp.DefaultOptions); err == nil {
			t.Errorf("%s: parse accepted corrupt input", name)
		}
	}
}
