// Package bmp implements the BGP Monitoring Protocol (RFC 7854): the
// wire form real routers use to export their BGP sessions to a
// monitoring station. A BMP stream is a sequence of framed messages —
// an Initiation handshake, then Peer Up / Peer Down session events and
// Route Monitoring messages, each Route Monitoring message carrying one
// verbatim BGP UPDATE for one monitored peer.
//
// The codec mirrors internal/bgp: Marshal/ParseMessage operate on full
// framed messages, ReadMessage/WriteMessage speak to streams, and the
// embedded BGP messages (the UPDATE in Route Monitoring, the OPEN pair
// in Peer Up, the NOTIFICATION in Peer Down) reuse the internal/bgp
// parser — including its MP_REACH/MP_UNREACH v6 path, so a v6 hijack
// seen via BMP decodes exactly like one seen via RIS.
//
// The station side of a live session is internal/ingest.BMPDialer; the
// router side used by tests and simulations is Exporter (exporter.go).
package bmp

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

// Version is the only BMP version this package speaks (RFC 7854 §4.1).
const Version = 3

// Message sizes. The common header is version(1) + length(4) + type(1);
// the per-peer header is fixed 42 bytes. MaxMessageLen bounds what the
// reader will buffer: a Route Monitoring message is one BGP UPDATE
// (≤4096 bytes) plus headers, and even a Peer Up with two full OPENs
// stays far below this, so the cap exists only to keep a malicious
// length field from ballooning the reader.
const (
	HeaderLen        = 6
	PerPeerHeaderLen = 42
	MaxMessageLen    = 1 << 16
)

// MessageType identifies a BMP message (RFC 7854 §4.1).
type MessageType uint8

const (
	MsgRouteMonitoring MessageType = 0
	MsgStatsReport     MessageType = 1
	MsgPeerDown        MessageType = 2
	MsgPeerUp          MessageType = 3
	MsgInitiation      MessageType = 4
	MsgTermination     MessageType = 5
)

func (t MessageType) String() string {
	switch t {
	case MsgRouteMonitoring:
		return "ROUTE_MONITORING"
	case MsgStatsReport:
		return "STATS_REPORT"
	case MsgPeerDown:
		return "PEER_DOWN"
	case MsgPeerUp:
		return "PEER_UP"
	case MsgInitiation:
		return "INITIATION"
	case MsgTermination:
		return "TERMINATION"
	}
	return fmt.Sprintf("BMP(%d)", uint8(t))
}

// Peer flags (RFC 7854 §4.2). V selects the 16-byte v6 form of the peer
// address; the codec sets it from the address family automatically.
const (
	PeerFlagV uint8 = 0x80
	PeerFlagL uint8 = 0x40
	PeerFlagA uint8 = 0x20
)

// PerPeerHeader identifies the monitored BGP session a message is about
// (RFC 7854 §4.2).
type PerPeerHeader struct {
	PeerType      uint8 // 0 = global instance peer
	Flags         uint8 // PeerFlagL/PeerFlagA; PeerFlagV is derived from Addr
	Distinguisher uint64
	Addr          prefix.Addr
	AS            bgp.ASN
	BGPID         uint32
	Timestamp     time.Time // time the encapsulated data was received; zero if unknown
}

func (p PerPeerHeader) append(dst []byte) []byte {
	flags := p.Flags &^ PeerFlagV
	if p.Addr.Is6() {
		flags |= PeerFlagV
	}
	dst = append(dst, p.PeerType, flags)
	dst = binary.BigEndian.AppendUint64(dst, p.Distinguisher)
	if p.Addr.Is6() {
		a16 := p.Addr.As16()
		dst = append(dst, a16[:]...)
	} else {
		var a16 [16]byte
		binary.BigEndian.PutUint32(a16[12:], p.Addr.V4())
		dst = append(dst, a16[:]...)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(p.AS))
	dst = binary.BigEndian.AppendUint32(dst, p.BGPID)
	var sec, usec uint32
	if !p.Timestamp.IsZero() {
		sec = uint32(p.Timestamp.Unix())
		usec = uint32(p.Timestamp.Nanosecond() / 1e3)
	}
	dst = binary.BigEndian.AppendUint32(dst, sec)
	dst = binary.BigEndian.AppendUint32(dst, usec)
	return dst
}

func parsePerPeerHeader(b []byte) (PerPeerHeader, []byte, error) {
	if len(b) < PerPeerHeaderLen {
		return PerPeerHeader{}, nil, fmt.Errorf("bmp: truncated per-peer header (%d bytes)", len(b))
	}
	p := PerPeerHeader{
		PeerType:      b[0],
		Flags:         b[1] &^ PeerFlagV,
		Distinguisher: binary.BigEndian.Uint64(b[2:10]),
		AS:            bgp.ASN(binary.BigEndian.Uint32(b[26:30])),
		BGPID:         binary.BigEndian.Uint32(b[30:34]),
	}
	if b[1]&PeerFlagV != 0 {
		p.Addr = prefix.AddrFrom16Bytes(b[10:26])
	} else {
		p.Addr = prefix.AddrFrom4(binary.BigEndian.Uint32(b[22:26]))
	}
	sec := binary.BigEndian.Uint32(b[34:38])
	usec := binary.BigEndian.Uint32(b[38:42])
	if sec != 0 || usec != 0 {
		if usec > 999_999 {
			return PerPeerHeader{}, nil, fmt.Errorf("bmp: per-peer timestamp with %d microseconds", usec)
		}
		p.Timestamp = time.Unix(int64(sec), int64(usec)*1e3).UTC()
	}
	return p, b[PerPeerHeaderLen:], nil
}

// Message is one of *RouteMonitoring, *StatsReport, *PeerDown, *PeerUp,
// *Initiation, *Termination.
type Message interface {
	Type() MessageType
	// marshalBody appends everything after the 6-byte common header.
	marshalBody(dst []byte, opt bgp.Options) ([]byte, error)
}

// --- Route Monitoring (§4.6) ---

// RouteMonitoring carries one BGP UPDATE exactly as received from the
// monitored peer. This is the message type that makes BMP a feed: every
// route the router learns (or loses) from the peer arrives here.
type RouteMonitoring struct {
	Peer   PerPeerHeader
	Update *bgp.Update
}

func (*RouteMonitoring) Type() MessageType { return MsgRouteMonitoring }

func (m *RouteMonitoring) marshalBody(dst []byte, opt bgp.Options) ([]byte, error) {
	dst = m.Peer.append(dst)
	if m.Update == nil {
		return nil, fmt.Errorf("bmp: Route Monitoring without UPDATE")
	}
	wire, err := bgp.Marshal(m.Update, opt)
	if err != nil {
		return nil, err
	}
	return append(dst, wire...), nil
}

func parseRouteMonitoring(b []byte, opt bgp.Options) (*RouteMonitoring, error) {
	peer, rest, err := parsePerPeerHeader(b)
	if err != nil {
		return nil, err
	}
	inner, err := bgp.ParseMessage(rest, opt)
	if err != nil {
		return nil, fmt.Errorf("bmp: Route Monitoring payload: %w", err)
	}
	upd, ok := inner.(*bgp.Update)
	if !ok {
		return nil, fmt.Errorf("bmp: Route Monitoring carrying %s, want UPDATE", inner.Type())
	}
	return &RouteMonitoring{Peer: peer, Update: upd}, nil
}

// --- Statistics Report (§4.8) ---

// Stat is one statistics TLV. Values are kept raw: the counters a
// router exports vary by vendor, and the station treats them as opaque
// gauges keyed by type.
type Stat struct {
	StatType uint16
	Value    []byte
}

// StatsReport is a periodic counter dump for one monitored peer.
type StatsReport struct {
	Peer  PerPeerHeader
	Stats []Stat
}

func (*StatsReport) Type() MessageType { return MsgStatsReport }

func (m *StatsReport) marshalBody(dst []byte, _ bgp.Options) ([]byte, error) {
	dst = m.Peer.append(dst)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Stats)))
	for _, s := range m.Stats {
		if len(s.Value) > 0xffff {
			return nil, fmt.Errorf("bmp: stat value of %d bytes", len(s.Value))
		}
		dst = binary.BigEndian.AppendUint16(dst, s.StatType)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(s.Value)))
		dst = append(dst, s.Value...)
	}
	return dst, nil
}

func parseStatsReport(b []byte) (*StatsReport, error) {
	peer, rest, err := parsePerPeerHeader(b)
	if err != nil {
		return nil, err
	}
	if len(rest) < 4 {
		return nil, fmt.Errorf("bmp: truncated stats count")
	}
	count := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	m := &StatsReport{Peer: peer}
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("bmp: truncated stat TLV header")
		}
		typ := binary.BigEndian.Uint16(rest)
		n := int(binary.BigEndian.Uint16(rest[2:]))
		if len(rest) < 4+n {
			return nil, fmt.Errorf("bmp: truncated stat TLV value")
		}
		m.Stats = append(m.Stats, Stat{StatType: typ, Value: append([]byte(nil), rest[4:4+n]...)})
		rest = rest[4+n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("bmp: %d trailing bytes after stats", len(rest))
	}
	return m, nil
}

// --- Peer Down (§4.9) ---

// Peer Down reason codes.
const (
	PeerDownLocalNotification  uint8 = 1 // local close, NOTIFICATION sent
	PeerDownLocalNoNotify      uint8 = 2 // local close, FSM event code
	PeerDownRemoteNotification uint8 = 3 // remote close, NOTIFICATION received
	PeerDownRemoteNoNotify     uint8 = 4 // remote close, no data
	PeerDownDeconfigured       uint8 = 5 // peer monitoring de-configured
)

// PeerDown announces the loss of a monitored session. Which auxiliary
// field is set depends on Reason: a NOTIFICATION for reasons 1 and 3,
// an FSM event code for reason 2, nothing for 4 and 5; unknown reasons
// keep their payload raw in Data.
type PeerDown struct {
	Peer         PerPeerHeader
	Reason       uint8
	Notification *bgp.Notification
	FSMCode      uint16
	Data         []byte
}

func (*PeerDown) Type() MessageType { return MsgPeerDown }

func (m *PeerDown) marshalBody(dst []byte, opt bgp.Options) ([]byte, error) {
	dst = m.Peer.append(dst)
	dst = append(dst, m.Reason)
	switch m.Reason {
	case PeerDownLocalNotification, PeerDownRemoteNotification:
		if m.Notification == nil {
			return nil, fmt.Errorf("bmp: Peer Down reason %d without NOTIFICATION", m.Reason)
		}
		wire, err := bgp.Marshal(m.Notification, opt)
		if err != nil {
			return nil, err
		}
		dst = append(dst, wire...)
	case PeerDownLocalNoNotify:
		dst = binary.BigEndian.AppendUint16(dst, m.FSMCode)
	case PeerDownRemoteNoNotify, PeerDownDeconfigured:
		// no data
	default:
		dst = append(dst, m.Data...)
	}
	return dst, nil
}

func parsePeerDown(b []byte, opt bgp.Options) (*PeerDown, error) {
	peer, rest, err := parsePerPeerHeader(b)
	if err != nil {
		return nil, err
	}
	if len(rest) < 1 {
		return nil, fmt.Errorf("bmp: Peer Down without reason")
	}
	m := &PeerDown{Peer: peer, Reason: rest[0]}
	rest = rest[1:]
	switch m.Reason {
	case PeerDownLocalNotification, PeerDownRemoteNotification:
		inner, err := bgp.ParseMessage(rest, opt)
		if err != nil {
			return nil, fmt.Errorf("bmp: Peer Down payload: %w", err)
		}
		notif, ok := inner.(*bgp.Notification)
		if !ok {
			return nil, fmt.Errorf("bmp: Peer Down carrying %s, want NOTIFICATION", inner.Type())
		}
		m.Notification = notif
	case PeerDownLocalNoNotify:
		if len(rest) != 2 {
			return nil, fmt.Errorf("bmp: Peer Down FSM code of %d bytes", len(rest))
		}
		m.FSMCode = binary.BigEndian.Uint16(rest)
	case PeerDownRemoteNoNotify, PeerDownDeconfigured:
		if len(rest) != 0 {
			return nil, fmt.Errorf("bmp: Peer Down reason %d with %d data bytes", m.Reason, len(rest))
		}
	default:
		if len(rest) > 0 {
			m.Data = append([]byte(nil), rest...)
		}
	}
	return m, nil
}

// --- Peer Up (§4.10) ---

// PeerUp announces a newly established (or pre-existing, at session
// start) monitored session, carrying both OPENs so the station can
// recover the negotiated capabilities.
type PeerUp struct {
	Peer       PerPeerHeader
	LocalAddr  prefix.Addr
	LocalPort  uint16
	RemotePort uint16
	SentOpen   *bgp.Open
	RecvOpen   *bgp.Open
	Info       []TLV
}

func (*PeerUp) Type() MessageType { return MsgPeerUp }

func (m *PeerUp) marshalBody(dst []byte, opt bgp.Options) ([]byte, error) {
	dst = m.Peer.append(dst)
	if m.LocalAddr.Is6() {
		a16 := m.LocalAddr.As16()
		dst = append(dst, a16[:]...)
	} else {
		var a16 [16]byte
		binary.BigEndian.PutUint32(a16[12:], m.LocalAddr.V4())
		dst = append(dst, a16[:]...)
	}
	dst = binary.BigEndian.AppendUint16(dst, m.LocalPort)
	dst = binary.BigEndian.AppendUint16(dst, m.RemotePort)
	if m.SentOpen == nil || m.RecvOpen == nil {
		return nil, fmt.Errorf("bmp: Peer Up without both OPENs")
	}
	for _, o := range []*bgp.Open{m.SentOpen, m.RecvOpen} {
		wire, err := bgp.Marshal(o, opt)
		if err != nil {
			return nil, err
		}
		dst = append(dst, wire...)
	}
	return appendTLVs(dst, m.Info)
}

func parsePeerUp(b []byte, opt bgp.Options) (*PeerUp, error) {
	peer, rest, err := parsePerPeerHeader(b)
	if err != nil {
		return nil, err
	}
	if len(rest) < 20 {
		return nil, fmt.Errorf("bmp: truncated Peer Up")
	}
	m := &PeerUp{Peer: peer}
	// The local address shares the peer address family (same session).
	if peer.Addr.Is6() {
		m.LocalAddr = prefix.AddrFrom16Bytes(rest[:16])
	} else {
		m.LocalAddr = prefix.AddrFrom4(binary.BigEndian.Uint32(rest[12:16]))
	}
	m.LocalPort = binary.BigEndian.Uint16(rest[16:18])
	m.RemotePort = binary.BigEndian.Uint16(rest[18:20])
	rest = rest[20:]
	for _, slot := range []**bgp.Open{&m.SentOpen, &m.RecvOpen} {
		if len(rest) < bgp.HeaderLen {
			return nil, fmt.Errorf("bmp: truncated Peer Up OPEN")
		}
		n := int(binary.BigEndian.Uint16(rest[16:18]))
		if n < bgp.HeaderLen || n > len(rest) {
			return nil, fmt.Errorf("bmp: bad Peer Up OPEN length %d", n)
		}
		inner, err := bgp.ParseMessage(rest[:n], opt)
		if err != nil {
			return nil, fmt.Errorf("bmp: Peer Up OPEN: %w", err)
		}
		open, ok := inner.(*bgp.Open)
		if !ok {
			return nil, fmt.Errorf("bmp: Peer Up carrying %s, want OPEN", inner.Type())
		}
		*slot = open
		rest = rest[n:]
	}
	if m.Info, err = parseTLVs(rest); err != nil {
		return nil, err
	}
	return m, nil
}

// --- Initiation / Termination (§4.3, §4.5) ---

// Information TLV types (Initiation).
const (
	InfoString   uint16 = 0
	InfoSysDescr uint16 = 1
	InfoSysName  uint16 = 2
)

// Termination TLV types.
const (
	TermString uint16 = 0
	TermReason uint16 = 1
)

// TLV is a type-length-value element used by Initiation, Termination,
// and Peer Up information sections.
type TLV struct {
	TLVType uint16
	Value   []byte
}

func appendTLVs(dst []byte, tlvs []TLV) ([]byte, error) {
	for _, t := range tlvs {
		if len(t.Value) > 0xffff {
			return nil, fmt.Errorf("bmp: TLV value of %d bytes", len(t.Value))
		}
		dst = binary.BigEndian.AppendUint16(dst, t.TLVType)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(t.Value)))
		dst = append(dst, t.Value...)
	}
	return dst, nil
}

func parseTLVs(b []byte) ([]TLV, error) {
	var out []TLV
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("bmp: truncated TLV header")
		}
		typ := binary.BigEndian.Uint16(b)
		n := int(binary.BigEndian.Uint16(b[2:]))
		if len(b) < 4+n {
			return nil, fmt.Errorf("bmp: truncated TLV value")
		}
		out = append(out, TLV{TLVType: typ, Value: append([]byte(nil), b[4:4+n]...)})
		b = b[4+n:]
	}
	return out, nil
}

// Initiation opens a BMP stream; routers send sysName/sysDescr here.
type Initiation struct{ Info []TLV }

func (*Initiation) Type() MessageType { return MsgInitiation }

func (m *Initiation) marshalBody(dst []byte, _ bgp.Options) ([]byte, error) {
	return appendTLVs(dst, m.Info)
}

// SysName returns the sysName information string, if present. The
// station uses it as the collector label on events from this stream.
func (m *Initiation) SysName() (string, bool) {
	for _, t := range m.Info {
		if t.TLVType == InfoSysName {
			return string(t.Value), true
		}
	}
	return "", false
}

// NewInitiation builds the minimal Initiation a sim router sends.
func NewInitiation(sysName, sysDescr string) *Initiation {
	return &Initiation{Info: []TLV{
		{TLVType: InfoSysName, Value: []byte(sysName)},
		{TLVType: InfoSysDescr, Value: []byte(sysDescr)},
	}}
}

// Termination closes a BMP stream.
type Termination struct{ Info []TLV }

func (*Termination) Type() MessageType { return MsgTermination }

func (m *Termination) marshalBody(dst []byte, _ bgp.Options) ([]byte, error) {
	return appendTLVs(dst, m.Info)
}

// --- Framing ---

// Marshal encodes a full BMP message including the 6-byte common header.
func Marshal(m Message, opt bgp.Options) ([]byte, error) {
	buf := make([]byte, HeaderLen, 128)
	buf[0] = Version
	buf[5] = byte(m.Type())
	buf, err := m.marshalBody(buf, opt)
	if err != nil {
		return nil, err
	}
	if len(buf) > MaxMessageLen {
		return nil, fmt.Errorf("bmp: %s message length %d exceeds %d", m.Type(), len(buf), MaxMessageLen)
	}
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(buf)))
	return buf, nil
}

// ParseMessage decodes a full BMP message (common header included).
func ParseMessage(b []byte, opt bgp.Options) (Message, error) {
	if len(b) < HeaderLen {
		return nil, fmt.Errorf("bmp: short header (%d bytes)", len(b))
	}
	if b[0] != Version {
		return nil, fmt.Errorf("bmp: version %d, want %d", b[0], Version)
	}
	length := int(binary.BigEndian.Uint32(b[1:5]))
	if length != len(b) || length > MaxMessageLen {
		return nil, fmt.Errorf("bmp: bad message length %d (have %d bytes)", length, len(b))
	}
	typ := MessageType(b[5])
	body := b[HeaderLen:]
	switch typ {
	case MsgRouteMonitoring:
		return parseRouteMonitoring(body, opt)
	case MsgStatsReport:
		return parseStatsReport(body)
	case MsgPeerDown:
		return parsePeerDown(body, opt)
	case MsgPeerUp:
		return parsePeerUp(body, opt)
	case MsgInitiation:
		m := &Initiation{}
		var err error
		if m.Info, err = parseTLVs(body); err != nil {
			return nil, err
		}
		return m, nil
	case MsgTermination:
		m := &Termination{}
		var err error
		if m.Info, err = parseTLVs(body); err != nil {
			return nil, err
		}
		return m, nil
	}
	return nil, fmt.Errorf("bmp: unknown message type %d", typ)
}

// WriteMessage marshals m and writes it to w.
func WriteMessage(w io.Writer, m Message, opt bgp.Options) error {
	b, err := Marshal(m, opt)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadMessage reads exactly one framed BMP message from r. Use a Reader
// for streams: it reuses its buffer across messages.
func ReadMessage(r io.Reader, opt bgp.Options) (Message, error) {
	rd := Reader{r: r, opt: opt}
	return rd.Next()
}

// Reader decodes a BMP stream, reusing one internal buffer across
// messages so steady-state reads allocate only the parsed message
// structures, not the wire bytes.
type Reader struct {
	r   io.Reader
	opt bgp.Options
	buf []byte
}

// NewReader wraps r with a reusable-buffer BMP stream decoder.
func NewReader(r io.Reader, opt bgp.Options) *Reader {
	return &Reader{r: r, opt: opt}
}

// Next reads and parses the next message. io.EOF is returned unchanged
// at a clean message boundary.
func (rd *Reader) Next() (Message, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(rd.r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != Version {
		return nil, fmt.Errorf("bmp: version %d, want %d", hdr[0], Version)
	}
	length := int(binary.BigEndian.Uint32(hdr[1:5]))
	if length < HeaderLen || length > MaxMessageLen {
		return nil, fmt.Errorf("bmp: bad message length %d", length)
	}
	if cap(rd.buf) < length {
		rd.buf = make([]byte, length)
	}
	full := rd.buf[:length]
	copy(full, hdr[:])
	if _, err := io.ReadFull(rd.r, full[HeaderLen:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return ParseMessage(full, rd.opt)
}
