package bmp

import (
	"fmt"
	"net"
	"sync"

	"artemis/internal/bgp"
)

// Exporter is the router side of a BMP session for tests and
// simulations: a TCP listener (the "passive" monitored router) that
// speaks the stream a real router would — Initiation on connect, a
// Peer Up replay of every session currently established, then whatever
// the caller publishes. The station side (internal/ingest.BMPDialer)
// dials in, exactly as a monitoring station dials a passive router.
//
// Slow consumers are disconnected rather than allowed to backpressure
// the router, mirroring how BMP implementations shed stations that
// cannot keep up.
type Exporter struct {
	ln  net.Listener
	opt bgp.Options

	mu     sync.Mutex
	conns  map[net.Conn]chan []byte
	peers  map[peerKey]*PeerUp // sessions currently up, replayed to new stations
	closed bool
	init   *Initiation
}

type peerKey struct {
	hi, lo uint64
	as     bgp.ASN
}

func keyOfPeer(p PerPeerHeader) peerKey {
	hi, lo := p.Addr.Uint128()
	return peerKey{hi: hi, lo: lo, as: p.AS}
}

// NewExporter starts a BMP exporter listening on addr ("127.0.0.1:0"
// for an ephemeral test port). sysName becomes the Initiation sysName,
// which stations use as the collector label.
func NewExporter(addr, sysName string, opt bgp.Options) (*Exporter, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	e := &Exporter{
		ln:    ln,
		opt:   opt,
		conns: make(map[net.Conn]chan []byte),
		peers: make(map[peerKey]*PeerUp),
		init:  NewInitiation(sysName, "artemis sim BMP exporter"),
	}
	go e.accept()
	return e, nil
}

// Addr returns the listen address to dial.
func (e *Exporter) Addr() string { return e.ln.Addr().String() }

func (e *Exporter) accept() {
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return
		}
		// Greeting: Initiation plus the current session table, queued
		// before the conn joins the broadcast set so ordering holds.
		out := make(chan []byte, 256)
		greeting := [][]byte{mustMarshal(e.init, e.opt)}
		for _, p := range e.peers {
			greeting = append(greeting, mustMarshal(p, e.opt))
		}
		for _, b := range greeting {
			out <- b
		}
		e.conns[c] = out
		e.mu.Unlock()
		go e.serve(c, out)
	}
}

func (e *Exporter) serve(c net.Conn, out chan []byte) {
	defer func() {
		e.mu.Lock()
		delete(e.conns, c)
		e.mu.Unlock()
		c.Close()
	}()
	for b := range out {
		if _, err := c.Write(b); err != nil {
			return
		}
	}
}

func mustMarshal(m Message, opt bgp.Options) []byte {
	b, err := Marshal(m, opt)
	if err != nil {
		panic(fmt.Sprintf("bmp: exporter marshal: %v", err))
	}
	return b
}

// PeerUp records the session as established and broadcasts the Peer Up
// to every connected station.
func (e *Exporter) PeerUp(p *PeerUp) {
	wire := mustMarshal(p, e.opt) // before the lock: a marshal panic must not wedge Close
	e.mu.Lock()
	e.peers[keyOfPeer(p.Peer)] = p
	e.broadcastLocked(wire)
	e.mu.Unlock()
}

// PeerDown removes the session and broadcasts the Peer Down.
func (e *Exporter) PeerDown(p *PeerDown) {
	wire := mustMarshal(p, e.opt)
	e.mu.Lock()
	delete(e.peers, keyOfPeer(p.Peer))
	e.broadcastLocked(wire)
	e.mu.Unlock()
}

// Publish broadcasts any message (typically Route Monitoring) verbatim.
func (e *Exporter) Publish(m Message) {
	wire := mustMarshal(m, e.opt)
	e.mu.Lock()
	e.broadcastLocked(wire)
	e.mu.Unlock()
}

func (e *Exporter) broadcastLocked(wire []byte) {
	for c, out := range e.conns {
		select {
		case out <- wire:
		default:
			// Station too slow: shed it. serve() cleans up on close.
			delete(e.conns, c)
			close(out)
		}
	}
}

// Close tears down the listener and every station connection.
func (e *Exporter) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	for c, out := range e.conns {
		delete(e.conns, c)
		close(out)
		c.Close()
	}
	e.mu.Unlock()
	e.ln.Close()
}
