package bmp

import (
	"bytes"
	"testing"

	"artemis/internal/bgp"
)

// BenchmarkBMPDecode measures the station's per-message cost on the
// Route Monitoring fast path: stream-read one framed message (reused
// buffer) and fully parse the embedded UPDATE. The allocs/op gate in
// bench.gates bounds the parse allocations — the Reader itself
// contributes zero at steady state.
func BenchmarkBMPDecode(b *testing.B) {
	m := &RouteMonitoring{Peer: testPeer(false), Update: testUpdate()}
	wire, err := Marshal(m, bgp.DefaultOptions)
	if err != nil {
		b.Fatal(err)
	}
	stream := bytes.NewReader(nil)
	rd := NewReader(stream, bgp.DefaultOptions)
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.Reset(wire)
		if _, err := rd.Next(); err != nil {
			b.Fatal(err)
		}
	}
}
