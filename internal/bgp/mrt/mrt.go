// Package mrt implements the MRT export format (RFC 6396) that RouteViews
// and RIPE RIS use for their archived BGP data: BGP4MP update records and
// TABLE_DUMP_V2 RIB snapshots.
//
// In the paper's framing, these archives are the *slow* path — full RIBs
// every 2 hours, update files every 15 minutes — that make third-party
// hijack detection too late for short-lived events. The reproduction's
// baseline detector (internal/feeds/dumps) consumes exactly this format so
// the ARTEMIS-vs-archive comparison (experiment E5) exercises a faithful
// pipeline, not a toy stand-in.
package mrt

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

// Record types and subtypes used by the reproduction (RFC 6396 §4).
const (
	TypeTableDumpV2 uint16 = 13
	TypeBGP4MP      uint16 = 16

	SubtypePeerIndexTable   uint16 = 1
	SubtypeRIBIPv4Unicast   uint16 = 2
	SubtypeRIBIPv6Unicast   uint16 = 4
	SubtypeBGP4MPMessageAS4 uint16 = 4
)

// Record is a decoded MRT record: one of *BGP4MPMessage, *PeerIndexTable,
// or *RIBEntry.
type Record interface {
	// Timestamp is the capture time carried in the MRT common header.
	Time() time.Time
	appendBody(dst []byte) ([]byte, error)
	typeSubtype() (uint16, uint16)
}

// BGP4MPMessage is a BGP4MP_MESSAGE_AS4 record: one BGP message as seen on
// a collector's peering session.
type BGP4MPMessage struct {
	Timestamp time.Time
	PeerAS    bgp.ASN
	LocalAS   bgp.ASN
	Interface uint16
	PeerIP    prefix.Addr
	LocalIP   prefix.Addr
	Message   bgp.Message
}

func (m *BGP4MPMessage) Time() time.Time               { return m.Timestamp }
func (m *BGP4MPMessage) typeSubtype() (uint16, uint16) { return TypeBGP4MP, SubtypeBGP4MPMessageAS4 }

// appendAddr writes an address in the width its family dictates (4 or 16
// bytes); parseAddrAt reads one back.
func appendAddr(dst []byte, a prefix.Addr) []byte {
	if a.Is6() {
		b := a.As16()
		return append(dst, b[:]...)
	}
	return binary.BigEndian.AppendUint32(dst, a.V4())
}

func parseAddrAt(b []byte, is6 bool) (prefix.Addr, int, error) {
	if !is6 {
		if len(b) < 4 {
			return prefix.Addr{}, 0, fmt.Errorf("mrt: truncated v4 address")
		}
		return prefix.AddrFrom4(binary.BigEndian.Uint32(b[:4])), 4, nil
	}
	if len(b) < 16 {
		return prefix.Addr{}, 0, fmt.Errorf("mrt: truncated v6 address")
	}
	return prefix.AddrFrom16Bytes(b), 16, nil
}

func (m *BGP4MPMessage) appendBody(dst []byte) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.PeerAS))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.LocalAS))
	dst = binary.BigEndian.AppendUint16(dst, m.Interface)
	// The AFI describes the peering session's transport addresses; the BGP
	// message inside may still carry either family's NLRI (v6 via MP
	// attributes), exactly as real collectors emit.
	afi := bgp.AFIIPv4
	if m.PeerIP.Is6() {
		afi = bgp.AFIIPv6
	}
	if m.LocalIP.Is6() != m.PeerIP.Is6() && m.LocalIP != (prefix.Addr{}) {
		return nil, fmt.Errorf("mrt: BGP4MP peer/local address families differ")
	}
	dst = binary.BigEndian.AppendUint16(dst, afi)
	dst = appendAddr(dst, m.PeerIP)
	if afi == bgp.AFIIPv6 && !m.LocalIP.Is6() {
		dst = appendAddr(dst, prefix.AddrFrom16(0, 0)) // unset local on a v6 session
	} else {
		dst = appendAddr(dst, m.LocalIP)
	}
	msg, err := bgp.Marshal(m.Message, bgp.DefaultOptions)
	if err != nil {
		return nil, err
	}
	return append(dst, msg...), nil
}

func parseBGP4MP(ts time.Time, b []byte) (*BGP4MPMessage, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("mrt: short BGP4MP body (%d bytes)", len(b))
	}
	afi := binary.BigEndian.Uint16(b[10:12])
	if afi != bgp.AFIIPv4 && afi != bgp.AFIIPv6 {
		return nil, fmt.Errorf("mrt: unsupported AFI %d", afi)
	}
	is6 := afi == bgp.AFIIPv6
	rec := &BGP4MPMessage{
		Timestamp: ts,
		PeerAS:    bgp.ASN(binary.BigEndian.Uint32(b[0:4])),
		LocalAS:   bgp.ASN(binary.BigEndian.Uint32(b[4:8])),
		Interface: binary.BigEndian.Uint16(b[8:10]),
	}
	rest := b[12:]
	peer, n, err := parseAddrAt(rest, is6)
	if err != nil {
		return nil, err
	}
	rec.PeerIP = peer
	rest = rest[n:]
	local, n, err := parseAddrAt(rest, is6)
	if err != nil {
		return nil, err
	}
	rec.LocalIP = local
	rest = rest[n:]
	msg, err := bgp.ParseMessage(rest, bgp.DefaultOptions)
	if err != nil {
		return nil, fmt.Errorf("mrt: embedded BGP message: %w", err)
	}
	rec.Message = msg
	return rec, nil
}

// Peer describes one collector peer in a PEER_INDEX_TABLE.
type Peer struct {
	BGPID prefix.Addr
	IP    prefix.Addr
	AS    bgp.ASN
}

// PeerIndexTable is the TABLE_DUMP_V2 peer index that RIB entries refer
// into by position.
type PeerIndexTable struct {
	Timestamp   time.Time
	CollectorID prefix.Addr
	ViewName    string
	Peers       []Peer
}

func (p *PeerIndexTable) Time() time.Time { return p.Timestamp }
func (p *PeerIndexTable) typeSubtype() (uint16, uint16) {
	return TypeTableDumpV2, SubtypePeerIndexTable
}

func (p *PeerIndexTable) appendBody(dst []byte) ([]byte, error) {
	// A collector ID is a BGP identifier: 32-bit even on v6 collectors.
	if p.CollectorID.Is6() {
		return nil, fmt.Errorf("mrt: collector ID must be a 32-bit (v4-form) identifier")
	}
	dst = binary.BigEndian.AppendUint32(dst, p.CollectorID.V4())
	if len(p.ViewName) > 0xffff {
		return nil, fmt.Errorf("mrt: view name too long")
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.ViewName)))
	dst = append(dst, p.ViewName...)
	if len(p.Peers) > 0xffff {
		return nil, fmt.Errorf("mrt: too many peers")
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.Peers)))
	for _, pe := range p.Peers {
		typ := byte(0x02) // 4-octet AS
		if pe.IP.Is6() {
			typ |= 0x01 // 16-byte peer address
		}
		dst = append(dst, typ)
		if pe.BGPID.Is6() {
			return nil, fmt.Errorf("mrt: peer BGP ID must be a 32-bit (v4-form) identifier")
		}
		dst = binary.BigEndian.AppendUint32(dst, pe.BGPID.V4())
		dst = appendAddr(dst, pe.IP)
		dst = binary.BigEndian.AppendUint32(dst, uint32(pe.AS))
	}
	return dst, nil
}

func parsePeerIndexTable(ts time.Time, b []byte) (*PeerIndexTable, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("mrt: short PEER_INDEX_TABLE")
	}
	p := &PeerIndexTable{Timestamp: ts, CollectorID: prefix.AddrFrom4(binary.BigEndian.Uint32(b[:4]))}
	nameLen := int(binary.BigEndian.Uint16(b[4:6]))
	if len(b) < 6+nameLen+2 {
		return nil, fmt.Errorf("mrt: truncated view name")
	}
	p.ViewName = string(b[6 : 6+nameLen])
	b = b[6+nameLen:]
	count := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	for i := 0; i < count; i++ {
		if len(b) < 5 {
			return nil, fmt.Errorf("mrt: truncated peer entry")
		}
		typ := b[0]
		is6 := typ&0x01 != 0
		asLen := 2
		if typ&0x02 != 0 {
			asLen = 4
		}
		pe := Peer{BGPID: prefix.AddrFrom4(binary.BigEndian.Uint32(b[1:5]))}
		rest := b[5:]
		ip, n, err := parseAddrAt(rest, is6)
		if err != nil {
			return nil, fmt.Errorf("mrt: truncated peer entry")
		}
		pe.IP = ip
		rest = rest[n:]
		if len(rest) < asLen {
			return nil, fmt.Errorf("mrt: truncated peer entry")
		}
		if asLen == 4 {
			pe.AS = bgp.ASN(binary.BigEndian.Uint32(rest[:4]))
		} else {
			pe.AS = bgp.ASN(binary.BigEndian.Uint16(rest[:2]))
		}
		p.Peers = append(p.Peers, pe)
		b = b[5+n+asLen:]
	}
	return p, nil
}

// RIBPeerRoute is one peer's route for the prefix of a RIB entry.
type RIBPeerRoute struct {
	PeerIndex  uint16
	Originated time.Time
	Attrs      []bgp.PathAttr
}

// RIBEntry is a TABLE_DUMP_V2 RIB_IPV4_UNICAST or RIB_IPV6_UNICAST record
// (the subtype follows the prefix's family): every peer's route for one
// prefix at snapshot time.
type RIBEntry struct {
	Timestamp time.Time
	Sequence  uint32
	Prefix    prefix.Prefix
	Routes    []RIBPeerRoute
}

func (r *RIBEntry) Time() time.Time { return r.Timestamp }
func (r *RIBEntry) typeSubtype() (uint16, uint16) {
	if r.Prefix.Is6() {
		return TypeTableDumpV2, SubtypeRIBIPv6Unicast
	}
	return TypeTableDumpV2, SubtypeRIBIPv4Unicast
}

func (r *RIBEntry) appendBody(dst []byte) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, r.Sequence)
	dst = append(dst, byte(r.Prefix.Bits()))
	dst = r.Prefix.AppendBytes(dst)
	if len(r.Routes) > 0xffff {
		return nil, fmt.Errorf("mrt: too many RIB routes")
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Routes)))
	for _, rt := range r.Routes {
		dst = binary.BigEndian.AppendUint16(dst, rt.PeerIndex)
		dst = binary.BigEndian.AppendUint32(dst, uint32(rt.Originated.Unix()))
		attrs, err := marshalAttrs(rt.Attrs)
		if err != nil {
			return nil, err
		}
		if len(attrs) > 0xffff {
			return nil, fmt.Errorf("mrt: RIB attributes too long")
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(attrs)))
		dst = append(dst, attrs...)
	}
	return dst, nil
}

func parseRIBEntry(ts time.Time, b []byte, is6 bool) (*RIBEntry, error) {
	if len(b) < 5 {
		return nil, fmt.Errorf("mrt: short RIB entry")
	}
	r := &RIBEntry{Timestamp: ts, Sequence: binary.BigEndian.Uint32(b[:4])}
	bits := int(b[4])
	max := 32
	if is6 {
		max = 128
	}
	if bits > max {
		return nil, fmt.Errorf("mrt: RIB prefix length %d", bits)
	}
	n := (bits + 7) / 8
	if len(b) < 5+n+2 {
		return nil, fmt.Errorf("mrt: truncated RIB prefix")
	}
	p, err := prefix.FromBytes(b[5:5+n], bits, is6)
	if err != nil {
		return nil, fmt.Errorf("mrt: RIB prefix: %w", err)
	}
	r.Prefix = p
	b = b[5+n:]
	count := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	for i := 0; i < count; i++ {
		if len(b) < 8 {
			return nil, fmt.Errorf("mrt: truncated RIB route")
		}
		rt := RIBPeerRoute{
			PeerIndex:  binary.BigEndian.Uint16(b[:2]),
			Originated: time.Unix(int64(binary.BigEndian.Uint32(b[2:6])), 0).UTC(),
		}
		alen := int(binary.BigEndian.Uint16(b[6:8]))
		if len(b) < 8+alen {
			return nil, fmt.Errorf("mrt: truncated RIB attributes")
		}
		attrs, err := parseAttrsViaUpdate(b[8 : 8+alen])
		if err != nil {
			return nil, err
		}
		rt.Attrs = attrs
		r.Routes = append(r.Routes, rt)
		b = b[8+alen:]
	}
	return r, nil
}

// marshalAttrs encodes a bare path-attribute block by round-tripping
// through an UPDATE body, reusing the bgp package's attribute codec.
func marshalAttrs(attrs []bgp.PathAttr) ([]byte, error) {
	u := &bgp.Update{Attrs: attrs}
	msg, err := bgp.Marshal(u, bgp.DefaultOptions)
	if err != nil {
		return nil, err
	}
	body := msg[bgp.HeaderLen:]
	// body = 2-byte withdrawn len (0) + 2-byte attr len + attrs
	attrLen := int(binary.BigEndian.Uint16(body[2:4]))
	return body[4 : 4+attrLen], nil
}

func parseAttrsViaUpdate(attrBytes []byte) ([]bgp.PathAttr, error) {
	body := make([]byte, 0, 4+len(attrBytes))
	body = binary.BigEndian.AppendUint16(body, 0)
	body = binary.BigEndian.AppendUint16(body, uint16(len(attrBytes)))
	body = append(body, attrBytes...)
	full := make([]byte, bgp.HeaderLen, bgp.HeaderLen+len(body))
	for i := 0; i < 16; i++ {
		full[i] = 0xff
	}
	full = append(full, body...)
	binary.BigEndian.PutUint16(full[16:18], uint16(len(full)))
	full[18] = byte(bgp.MsgUpdate)
	m, err := bgp.ParseMessage(full, bgp.DefaultOptions)
	if err != nil {
		return nil, fmt.Errorf("mrt: RIB attributes: %w", err)
	}
	return m.(*bgp.Update).Attrs, nil
}

// Marshal encodes a full MRT record (common header + body).
func Marshal(r Record) ([]byte, error) {
	typ, sub := r.typeSubtype()
	hdr := make([]byte, 0, 12)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(r.Time().Unix()))
	hdr = binary.BigEndian.AppendUint16(hdr, typ)
	hdr = binary.BigEndian.AppendUint16(hdr, sub)
	body, err := r.appendBody(nil)
	if err != nil {
		return nil, err
	}
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(body)))
	return append(hdr, body...), nil
}

// Writer writes MRT records to an underlying stream.
type Writer struct{ w io.Writer }

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write encodes and writes one record.
func (w *Writer) Write(r Record) error {
	b, err := Marshal(r)
	if err != nil {
		return err
	}
	_, err = w.w.Write(b)
	return err
}

// Reader reads MRT records from an underlying stream.
type Reader struct{ r io.Reader }

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// maxRecordLen bounds a single MRT record; real RIB entries stay far below
// this, and the cap keeps a corrupt length field from allocating gigabytes.
const maxRecordLen = 1 << 20

// Next reads the next record. It returns io.EOF at a clean end of stream.
func (r *Reader) Next() (Record, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("mrt: truncated header: %w", err)
		}
		return nil, err
	}
	ts := time.Unix(int64(binary.BigEndian.Uint32(hdr[:4])), 0).UTC()
	typ := binary.BigEndian.Uint16(hdr[4:6])
	sub := binary.BigEndian.Uint16(hdr[6:8])
	length := binary.BigEndian.Uint32(hdr[8:12])
	if length > maxRecordLen {
		return nil, fmt.Errorf("mrt: record length %d exceeds cap", length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r.r, body); err != nil {
		return nil, fmt.Errorf("mrt: truncated body: %w", err)
	}
	switch {
	case typ == TypeBGP4MP && sub == SubtypeBGP4MPMessageAS4:
		return parseBGP4MP(ts, body)
	case typ == TypeTableDumpV2 && sub == SubtypePeerIndexTable:
		return parsePeerIndexTable(ts, body)
	case typ == TypeTableDumpV2 && sub == SubtypeRIBIPv4Unicast:
		return parseRIBEntry(ts, body, false)
	case typ == TypeTableDumpV2 && sub == SubtypeRIBIPv6Unicast:
		return parseRIBEntry(ts, body, true)
	}
	return nil, fmt.Errorf("mrt: unsupported record type %d subtype %d", typ, sub)
}
