package mrt

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

var t0 = time.Unix(1466000000, 0).UTC() // June 2016, the paper's era

func sampleUpdate() *bgp.Update {
	return &bgp.Update{
		Attrs: []bgp.PathAttr{
			&bgp.OriginAttr{Value: bgp.OriginIGP},
			bgp.NewASPath([]bgp.ASN{65001, 65002, 196615}),
			&bgp.NextHopAttr{Addr: prefix.MustParseAddr("192.0.2.1")},
		},
		NLRI: []prefix.Prefix{prefix.MustParse("10.0.0.0/23")},
	}
}

func TestBGP4MPRoundTrip(t *testing.T) {
	rec := &BGP4MPMessage{
		Timestamp: t0,
		PeerAS:    65001,
		LocalAS:   196615,
		PeerIP:    prefix.MustParseAddr("192.0.2.1"),
		LocalIP:   prefix.MustParseAddr("192.0.2.2"),
		Message:   sampleUpdate(),
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(rec); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*BGP4MPMessage)
	if g.PeerAS != rec.PeerAS || g.LocalAS != rec.LocalAS || g.PeerIP != rec.PeerIP || !g.Timestamp.Equal(t0) {
		t.Fatalf("header mismatch: %+v", g)
	}
	u := g.Message.(*bgp.Update)
	if !reflect.DeepEqual(u, rec.Message) {
		t.Fatalf("embedded update mismatch:\n got %#v\nwant %#v", u, rec.Message)
	}
}

func TestPeerIndexTableRoundTrip(t *testing.T) {
	rec := &PeerIndexTable{
		Timestamp:   t0,
		CollectorID: prefix.MustParseAddr("198.51.100.1"),
		ViewName:    "rrc00",
		Peers: []Peer{
			{BGPID: prefix.AddrFrom4(1), IP: prefix.MustParseAddr("192.0.2.1"), AS: 65001},
			{BGPID: prefix.AddrFrom4(2), IP: prefix.MustParseAddr("192.0.2.9"), AS: 4200000000},
		},
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(rec); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*PeerIndexTable)
	if g.ViewName != "rrc00" || g.CollectorID != rec.CollectorID {
		t.Fatalf("got %+v", g)
	}
	if !reflect.DeepEqual(g.Peers, rec.Peers) {
		t.Fatalf("peers mismatch: %+v vs %+v", g.Peers, rec.Peers)
	}
}

func TestRIBEntryRoundTrip(t *testing.T) {
	rec := &RIBEntry{
		Timestamp: t0,
		Sequence:  7,
		Prefix:    prefix.MustParse("10.0.0.0/23"),
		Routes: []RIBPeerRoute{
			{
				PeerIndex:  0,
				Originated: t0.Add(-time.Hour),
				Attrs: []bgp.PathAttr{
					&bgp.OriginAttr{Value: bgp.OriginIGP},
					bgp.NewASPath([]bgp.ASN{65001, 196615}),
					&bgp.NextHopAttr{Addr: prefix.AddrFrom4(42)},
				},
			},
			{
				PeerIndex:  1,
				Originated: t0.Add(-2 * time.Hour),
				Attrs: []bgp.PathAttr{
					&bgp.OriginAttr{Value: bgp.OriginIncomplete},
					bgp.NewASPath([]bgp.ASN{65002, 65003, 196615}),
					&bgp.NextHopAttr{Addr: prefix.AddrFrom4(43)},
				},
			},
		},
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(rec); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*RIBEntry)
	if g.Sequence != 7 || g.Prefix != rec.Prefix || len(g.Routes) != 2 {
		t.Fatalf("got %+v", g)
	}
	for i := range g.Routes {
		if g.Routes[i].PeerIndex != rec.Routes[i].PeerIndex {
			t.Fatalf("route %d peer index mismatch", i)
		}
		if !g.Routes[i].Originated.Equal(rec.Routes[i].Originated) {
			t.Fatalf("route %d originated mismatch", i)
		}
		if !reflect.DeepEqual(g.Routes[i].Attrs, rec.Routes[i].Attrs) {
			t.Fatalf("route %d attrs mismatch:\n%#v\n%#v", i, g.Routes[i].Attrs, rec.Routes[i].Attrs)
		}
	}
}

func TestStreamOfMixedRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	records := []Record{
		&PeerIndexTable{Timestamp: t0, ViewName: "v", Peers: []Peer{{AS: 65001}}},
		&RIBEntry{Timestamp: t0, Prefix: prefix.MustParse("10.0.0.0/24")},
		&BGP4MPMessage{Timestamp: t0.Add(time.Second), PeerAS: 65001, LocalAS: 2, Message: &bgp.Keepalive{}},
		&BGP4MPMessage{Timestamp: t0.Add(2 * time.Second), PeerAS: 65001, LocalAS: 2, Message: sampleUpdate()},
	}
	for _, r := range records {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i := range records {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		wt, ws := records[i].typeSubtype()
		gt, gs := got.typeSubtype()
		if wt != gt || ws != gs {
			t.Fatalf("record %d type = %d/%d, want %d/%d", i, gt, gs, wt, ws)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	rec := &BGP4MPMessage{Timestamp: t0, Message: &bgp.Keepalive{}}
	full, err := Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(full); i++ {
		_, err := NewReader(bytes.NewReader(full[:i])).Next()
		if err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
		if err == io.EOF {
			t.Fatalf("truncation at %d reported clean EOF", i)
		}
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	b := make([]byte, 12)
	b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0xff
	if _, err := NewReader(bytes.NewReader(b)).Next(); err == nil {
		t.Fatal("oversize record accepted")
	}
}

func TestUnsupportedTypeRejected(t *testing.T) {
	b := make([]byte, 12)
	b[5] = 99 // type 99
	if _, err := NewReader(bytes.NewReader(b)).Next(); err == nil {
		t.Fatal("unsupported type accepted")
	}
}

func TestFuzzedRecordsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(80)
		b := make([]byte, 12+n)
		rng.Read(b)
		// Constrain to supported type/subtype half the time, and keep the
		// declared length consistent so body parsing is reached.
		if rng.Intn(2) == 0 {
			b[4], b[6] = 0, 0
			if rng.Intn(2) == 0 {
				b[5], b[7] = 16, 4
			} else {
				b[5], b[7] = 13, byte(1+rng.Intn(2))
			}
		}
		b[8], b[9] = 0, 0
		b[10], b[11] = byte(n>>8), byte(n)
		NewReader(bytes.NewReader(b)).Next() // must not panic
	}
}

func TestBGP4MPv6RoundTrip(t *testing.T) {
	// A v6 peering session (AFI 2, 16-byte addresses) carrying a v6
	// announcement via MP_REACH_NLRI.
	rec := &BGP4MPMessage{
		Timestamp: t0,
		PeerAS:    65001,
		LocalAS:   196615,
		PeerIP:    prefix.MustParseAddr("2001:db8::1"),
		LocalIP:   prefix.MustParseAddr("2001:db8::2"),
		Message: &bgp.Update{
			Attrs: []bgp.PathAttr{
				&bgp.OriginAttr{Value: bgp.OriginIGP},
				bgp.NewASPath([]bgp.ASN{65001, 196615}),
			},
			NLRI: []prefix.Prefix{prefix.MustParse("2001:db8:42::/48")},
		},
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(rec); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*BGP4MPMessage)
	if g.PeerIP != rec.PeerIP || g.LocalIP != rec.LocalIP || g.PeerAS != rec.PeerAS {
		t.Fatalf("v6 session header mismatch: %+v", g)
	}
	if !reflect.DeepEqual(g.Message, rec.Message) {
		t.Fatalf("embedded v6 update mismatch:\n got %#v\nwant %#v", g.Message, rec.Message)
	}
}

func TestPeerIndexTableV6Peers(t *testing.T) {
	rec := &PeerIndexTable{
		Timestamp:   t0,
		CollectorID: prefix.MustParseAddr("198.51.100.1"),
		ViewName:    "rrc00",
		Peers: []Peer{
			{BGPID: prefix.AddrFrom4(1), IP: prefix.MustParseAddr("192.0.2.1"), AS: 65001},
			{BGPID: prefix.AddrFrom4(2), IP: prefix.MustParseAddr("2001:db8::9"), AS: 4200000000},
		},
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(rec); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.(*PeerIndexTable).Peers, rec.Peers) {
		t.Fatalf("mixed-family peers mismatch:\n got %+v\nwant %+v", got.(*PeerIndexTable).Peers, rec.Peers)
	}
}

func TestRIBEntryV6RoundTrip(t *testing.T) {
	rec := &RIBEntry{
		Timestamp: t0,
		Sequence:  7,
		Prefix:    prefix.MustParse("2001:db8::/32"),
		Routes: []RIBPeerRoute{{
			PeerIndex:  0,
			Originated: t0.Add(-time.Hour),
			Attrs: []bgp.PathAttr{
				&bgp.OriginAttr{Value: bgp.OriginIGP},
				bgp.NewASPath([]bgp.ASN{65001, 196615}),
			},
		}},
	}
	// The subtype must follow the family.
	if _, sub := rec.typeSubtype(); sub != SubtypeRIBIPv6Unicast {
		t.Fatalf("v6 RIB entry subtype = %d", sub)
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(rec); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*RIBEntry)
	if g.Prefix != rec.Prefix || g.Sequence != rec.Sequence || !reflect.DeepEqual(g.Routes, rec.Routes) {
		t.Fatalf("v6 RIB round trip mismatch:\n got %#v\nwant %#v", g, rec)
	}
}
