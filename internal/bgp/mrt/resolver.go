package mrt

import "fmt"

// PeerResolver threads a TABLE_DUMP_V2 PEER_INDEX_TABLE through to the RIB
// entries that refer into it by position. Every TABLE_DUMP_V2 consumer (the
// ingest MRT dialer, the RIB bootstrap loader, the baseline detector) needs
// the same bookkeeping: remember the most recent index table, resolve
// RIBPeerRoute.PeerIndex against it, and fail loudly when a RIB entry
// arrives before any index table — guessing the vantage point from the AS
// path is wrong for route-server peers, which do not prepend themselves.
type PeerResolver struct {
	pit *PeerIndexTable
}

// Observe feeds one decoded record through the resolver. Only
// *PeerIndexTable records change its state; everything else is ignored, so
// callers can unconditionally Observe every record they read.
func (r *PeerResolver) Observe(rec Record) {
	if pit, ok := rec.(*PeerIndexTable); ok {
		r.pit = pit
	}
}

// Ready reports whether a peer index table has been seen.
func (r *PeerResolver) Ready() bool { return r.pit != nil }

// Peers returns the number of peers in the current index table.
func (r *PeerResolver) Peers() int {
	if r.pit == nil {
		return 0
	}
	return len(r.pit.Peers)
}

// Peer resolves a RIB route's peer index to the collector peer it names.
// It returns a descriptive error when no PEER_INDEX_TABLE has been seen yet
// or the index is out of range — both indicate a malformed or truncated
// dump, not a condition to paper over.
func (r *PeerResolver) Peer(idx uint16) (Peer, error) {
	if r.pit == nil {
		return Peer{}, fmt.Errorf("mrt: RIB entry before any PEER_INDEX_TABLE record")
	}
	if int(idx) >= len(r.pit.Peers) {
		return Peer{}, fmt.Errorf("mrt: RIB peer index %d out of range (table has %d peers)", idx, len(r.pit.Peers))
	}
	return r.pit.Peers[idx], nil
}
