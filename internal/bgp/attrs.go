package bgp

import (
	"encoding/binary"
	"fmt"

	"artemis/internal/prefix"
)

// AttrCode identifies a path attribute type (RFC 4271 §5).
type AttrCode uint8

const (
	AttrOrigin          AttrCode = 1
	AttrASPath          AttrCode = 2
	AttrNextHop         AttrCode = 3
	AttrMED             AttrCode = 4
	AttrLocalPref       AttrCode = 5
	AttrAtomicAggregate AttrCode = 6
	AttrAggregator      AttrCode = 7
	AttrCommunities     AttrCode = 8
	AttrMPReachNLRI     AttrCode = 14
	AttrMPUnreachNLRI   AttrCode = 15
	AttrAS4Path         AttrCode = 17
)

// Address family identifiers (RFC 4760). The codec types AFI 2 (IPv6)
// unicast; other AFI/SAFI pairs are preserved as RawAttr.
const (
	AFIIPv4 uint16 = 1
	AFIIPv6 uint16 = 2

	SAFIUnicast uint8 = 1
)

// Attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagPartial    = 0x20
	flagExtLen     = 0x10
)

// PathAttr is a decoded BGP path attribute.
type PathAttr interface {
	Code() AttrCode
	// appendValue appends only the attribute value (no type/flags/length).
	appendValue(dst []byte, opt Options) ([]byte, error)
	flags() uint8
}

// Origin values (RFC 4271 §5.1.1).
const (
	OriginIGP        uint8 = 0
	OriginEGP        uint8 = 1
	OriginIncomplete uint8 = 2
)

// OriginAttr is ORIGIN (type 1).
type OriginAttr struct{ Value uint8 }

func (*OriginAttr) Code() AttrCode { return AttrOrigin }
func (*OriginAttr) flags() uint8   { return flagTransitive }
func (o *OriginAttr) appendValue(dst []byte, _ Options) ([]byte, error) {
	return append(dst, o.Value), nil
}

// AS path segment types (RFC 4271 §5.1.2).
const (
	SegSet      uint8 = 1
	SegSequence uint8 = 2
)

// ASPathSegment is one segment of an AS_PATH.
type ASPathSegment struct {
	Type uint8 // SegSet or SegSequence
	ASNs []ASN
}

// ASPathAttr is AS_PATH (type 2).
type ASPathAttr struct{ Segments []ASPathSegment }

// NewASPath builds a single-sequence AS_PATH, the form every route in the
// simulator carries.
func NewASPath(path []ASN) *ASPathAttr {
	if len(path) == 0 {
		return &ASPathAttr{}
	}
	return &ASPathAttr{Segments: []ASPathSegment{{Type: SegSequence, ASNs: path}}}
}

func (*ASPathAttr) Code() AttrCode { return AttrASPath }
func (*ASPathAttr) flags() uint8   { return flagTransitive }

// Flatten expands sequence segments in order; set segments are appended in
// their listed order too (the simulator never aggregates, so sets only
// appear in hand-crafted inputs).
func (a *ASPathAttr) Flatten() []ASN {
	var out []ASN
	for _, s := range a.Segments {
		out = append(out, s.ASNs...)
	}
	return out
}

func (a *ASPathAttr) appendValue(dst []byte, opt Options) ([]byte, error) {
	for _, s := range a.Segments {
		if len(s.ASNs) > 255 {
			return nil, fmt.Errorf("bgp: AS_PATH segment with %d ASNs", len(s.ASNs))
		}
		dst = append(dst, s.Type, byte(len(s.ASNs)))
		for _, asn := range s.ASNs {
			if opt.AS4 {
				dst = binary.BigEndian.AppendUint32(dst, uint32(asn))
			} else {
				w := asn
				if w > 0xffff {
					w = ASTrans
				}
				dst = binary.BigEndian.AppendUint16(dst, uint16(w))
			}
		}
	}
	return dst, nil
}

func parseASPath(b []byte, as4 bool) (*ASPathAttr, error) {
	a := &ASPathAttr{}
	width := 2
	if as4 {
		width = 4
	}
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, NewMessageError(ErrUpdateMessage, ErrSubMalformedASPath, nil, "bgp: truncated AS_PATH segment header")
		}
		typ, n := b[0], int(b[1])
		if typ != SegSet && typ != SegSequence {
			return nil, NewMessageError(ErrUpdateMessage, ErrSubMalformedASPath, nil, fmt.Sprintf("bgp: AS_PATH segment type %d", typ))
		}
		if len(b) < 2+n*width {
			return nil, NewMessageError(ErrUpdateMessage, ErrSubMalformedASPath, nil, "bgp: truncated AS_PATH segment")
		}
		seg := ASPathSegment{Type: typ, ASNs: make([]ASN, n)}
		for i := 0; i < n; i++ {
			off := 2 + i*width
			if as4 {
				seg.ASNs[i] = ASN(binary.BigEndian.Uint32(b[off : off+4]))
			} else {
				seg.ASNs[i] = ASN(binary.BigEndian.Uint16(b[off : off+2]))
			}
		}
		a.Segments = append(a.Segments, seg)
		b = b[2+n*width:]
	}
	return a, nil
}

// NextHopAttr is NEXT_HOP (type 3). It is IPv4-only by definition
// (RFC 4271); a v6 next hop travels inside MP_REACH_NLRI.
type NextHopAttr struct{ Addr prefix.Addr }

func (*NextHopAttr) Code() AttrCode { return AttrNextHop }
func (*NextHopAttr) flags() uint8   { return flagTransitive }
func (n *NextHopAttr) appendValue(dst []byte, _ Options) ([]byte, error) {
	if n.Addr.Is6() {
		return nil, fmt.Errorf("bgp: NEXT_HOP cannot carry a v6 address (use MP_REACH_NLRI)")
	}
	return binary.BigEndian.AppendUint32(dst, n.Addr.V4()), nil
}

// MEDAttr is MULTI_EXIT_DISC (type 4).
type MEDAttr struct{ Value uint32 }

func (*MEDAttr) Code() AttrCode { return AttrMED }
func (*MEDAttr) flags() uint8   { return flagOptional }
func (m *MEDAttr) appendValue(dst []byte, _ Options) ([]byte, error) {
	return binary.BigEndian.AppendUint32(dst, m.Value), nil
}

// LocalPrefAttr is LOCAL_PREF (type 5).
type LocalPrefAttr struct{ Value uint32 }

func (*LocalPrefAttr) Code() AttrCode { return AttrLocalPref }
func (*LocalPrefAttr) flags() uint8   { return flagTransitive }
func (l *LocalPrefAttr) appendValue(dst []byte, _ Options) ([]byte, error) {
	return binary.BigEndian.AppendUint32(dst, l.Value), nil
}

// AtomicAggregateAttr is ATOMIC_AGGREGATE (type 6).
type AtomicAggregateAttr struct{}

func (*AtomicAggregateAttr) Code() AttrCode { return AttrAtomicAggregate }
func (*AtomicAggregateAttr) flags() uint8   { return flagTransitive }
func (*AtomicAggregateAttr) appendValue(dst []byte, _ Options) ([]byte, error) {
	return dst, nil
}

// AggregatorAttr is AGGREGATOR (type 7), 4-octet-AS form.
type AggregatorAttr struct {
	ASN  ASN
	Addr prefix.Addr
}

func (*AggregatorAttr) Code() AttrCode { return AttrAggregator }
func (*AggregatorAttr) flags() uint8   { return flagOptional | flagTransitive }
func (a *AggregatorAttr) appendValue(dst []byte, opt Options) ([]byte, error) {
	if opt.AS4 {
		dst = binary.BigEndian.AppendUint32(dst, uint32(a.ASN))
	} else {
		w := a.ASN
		if w > 0xffff {
			w = ASTrans
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(w))
	}
	if a.Addr.Is6() {
		return nil, fmt.Errorf("bgp: AGGREGATOR address must be v4")
	}
	return binary.BigEndian.AppendUint32(dst, a.Addr.V4()), nil
}

// MPReachNLRIAttr is MP_REACH_NLRI (type 14, RFC 4760) for IPv6 unicast:
// the reachable v6 prefixes with their v6 next hop. The codec synthesizes
// it when an Update's NLRI contains v6 prefixes and folds it back into
// Update.NLRI on parse, so consumers see one dual-stack prefix list.
type MPReachNLRIAttr struct {
	NextHop prefix.Addr // a v6 address; the zero v6 address (::) when unknown
	NLRI    []prefix.Prefix
}

func (*MPReachNLRIAttr) Code() AttrCode { return AttrMPReachNLRI }
func (*MPReachNLRIAttr) flags() uint8   { return flagOptional }
func (m *MPReachNLRIAttr) appendValue(dst []byte, _ Options) ([]byte, error) {
	nh := m.NextHop
	if !nh.Is6() {
		if nh != (prefix.Addr{}) {
			return nil, fmt.Errorf("bgp: MP_REACH_NLRI next hop must be v6")
		}
		nh = prefix.AddrFrom16(0, 0) // unspecified ::
	}
	dst = binary.BigEndian.AppendUint16(dst, AFIIPv6)
	dst = append(dst, SAFIUnicast, 16)
	b := nh.As16()
	dst = append(dst, b[:]...)
	dst = append(dst, 0) // reserved
	for _, p := range m.NLRI {
		if !p.Is6() {
			return nil, fmt.Errorf("bgp: v4 prefix %s in MP_REACH_NLRI", p)
		}
	}
	return appendNLRI(dst, m.NLRI), nil
}

// MPUnreachNLRIAttr is MP_UNREACH_NLRI (type 15, RFC 4760) for IPv6
// unicast: withdrawn v6 prefixes. Folded into Update.Withdrawn on parse.
type MPUnreachNLRIAttr struct {
	Withdrawn []prefix.Prefix
}

func (*MPUnreachNLRIAttr) Code() AttrCode { return AttrMPUnreachNLRI }
func (*MPUnreachNLRIAttr) flags() uint8   { return flagOptional }
func (m *MPUnreachNLRIAttr) appendValue(dst []byte, _ Options) ([]byte, error) {
	dst = binary.BigEndian.AppendUint16(dst, AFIIPv6)
	dst = append(dst, SAFIUnicast)
	for _, p := range m.Withdrawn {
		if !p.Is6() {
			return nil, fmt.Errorf("bgp: v4 prefix %s in MP_UNREACH_NLRI", p)
		}
	}
	return appendNLRI(dst, m.Withdrawn), nil
}

func parseMPReach(fl uint8, val []byte) (PathAttr, error) {
	if len(val) < 5 {
		return nil, NewMessageError(ErrUpdateMessage, ErrSubAttributeLengthError, nil, "bgp: short MP_REACH_NLRI")
	}
	afi := binary.BigEndian.Uint16(val[:2])
	safi := val[2]
	if afi != AFIIPv6 || safi != SAFIUnicast {
		// Not a family the codec models: preserve verbatim.
		return &RawAttr{AttrFlags: fl, AttrCode: AttrMPReachNLRI, Value: append([]byte(nil), val...)}, nil
	}
	nhLen := int(val[3])
	if len(val) < 4+nhLen+1 {
		return nil, NewMessageError(ErrUpdateMessage, ErrSubAttributeLengthError, nil, "bgp: truncated MP_REACH_NLRI next hop")
	}
	a := &MPReachNLRIAttr{}
	// RFC 4760 allows a global (16) or global+link-local (32) next hop; the
	// link-local half carries no routing information here and is dropped.
	if nhLen != 16 && nhLen != 32 {
		return nil, NewMessageError(ErrUpdateMessage, ErrSubAttributeLengthError, nil, fmt.Sprintf("bgp: MP_REACH_NLRI next hop length %d", nhLen))
	}
	a.NextHop = prefix.AddrFrom16Bytes(val[4:])
	nlri, err := parseNLRI(val[4+nhLen+1:], true)
	if err != nil {
		return nil, err
	}
	a.NLRI = nlri
	return a, nil
}

func parseMPUnreach(fl uint8, val []byte) (PathAttr, error) {
	if len(val) < 3 {
		return nil, NewMessageError(ErrUpdateMessage, ErrSubAttributeLengthError, nil, "bgp: short MP_UNREACH_NLRI")
	}
	afi := binary.BigEndian.Uint16(val[:2])
	safi := val[2]
	if afi != AFIIPv6 || safi != SAFIUnicast {
		return &RawAttr{AttrFlags: fl, AttrCode: AttrMPUnreachNLRI, Value: append([]byte(nil), val...)}, nil
	}
	wd, err := parseNLRI(val[3:], true)
	if err != nil {
		return nil, err
	}
	return &MPUnreachNLRIAttr{Withdrawn: wd}, nil
}

// Community is a BGP community value (RFC 1997).
type Community uint32

// CommunitiesAttr is COMMUNITIES (type 8).
type CommunitiesAttr struct{ Communities []Community }

func (*CommunitiesAttr) Code() AttrCode { return AttrCommunities }
func (*CommunitiesAttr) flags() uint8   { return flagOptional | flagTransitive }
func (c *CommunitiesAttr) appendValue(dst []byte, _ Options) ([]byte, error) {
	for _, v := range c.Communities {
		dst = binary.BigEndian.AppendUint32(dst, uint32(v))
	}
	return dst, nil
}

// RawAttr preserves an attribute the codec does not model. Flags are kept
// verbatim so optional transitive attributes survive a decode/encode cycle.
type RawAttr struct {
	AttrFlags uint8
	AttrCode  AttrCode
	Value     []byte
}

func (r *RawAttr) Code() AttrCode { return r.AttrCode }
func (r *RawAttr) flags() uint8   { return r.AttrFlags &^ flagExtLen }
func (r *RawAttr) appendValue(dst []byte, _ Options) ([]byte, error) {
	return append(dst, r.Value...), nil
}

func appendAttr(dst []byte, a PathAttr, opt Options) ([]byte, error) {
	val, err := a.appendValue(nil, opt)
	if err != nil {
		return nil, err
	}
	fl := a.flags()
	if len(val) > 255 {
		fl |= flagExtLen
	}
	dst = append(dst, fl, byte(a.Code()))
	if fl&flagExtLen != 0 {
		if len(val) > 0xffff {
			return nil, fmt.Errorf("bgp: attribute %d value too long", a.Code())
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(val)))
	} else {
		dst = append(dst, byte(len(val)))
	}
	return append(dst, val...), nil
}

func parseAttrs(b []byte, opt Options) ([]PathAttr, error) {
	var out []PathAttr
	seen := map[AttrCode]bool{}
	for len(b) > 0 {
		if len(b) < 3 {
			return nil, NewMessageError(ErrUpdateMessage, ErrSubMalformedAttributeList, nil, "bgp: truncated attribute header")
		}
		fl, code := b[0], AttrCode(b[1])
		var vlen, hlen int
		if fl&flagExtLen != 0 {
			if len(b) < 4 {
				return nil, NewMessageError(ErrUpdateMessage, ErrSubMalformedAttributeList, nil, "bgp: truncated extended length")
			}
			vlen, hlen = int(binary.BigEndian.Uint16(b[2:4])), 4
		} else {
			vlen, hlen = int(b[2]), 3
		}
		if len(b) < hlen+vlen {
			return nil, NewMessageError(ErrUpdateMessage, ErrSubAttributeLengthError, nil, "bgp: truncated attribute value")
		}
		val := b[hlen : hlen+vlen]
		b = b[hlen+vlen:]
		if seen[code] {
			return nil, NewMessageError(ErrUpdateMessage, ErrSubMalformedAttributeList, nil, fmt.Sprintf("bgp: duplicate attribute %d", code))
		}
		seen[code] = true

		a, err := parseAttrValue(fl, code, val, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

func fixedLen(code AttrCode, val []byte, want int) error {
	if len(val) != want {
		return NewMessageError(ErrUpdateMessage, ErrSubAttributeLengthError, nil, fmt.Sprintf("bgp: attribute %d length %d, want %d", code, len(val), want))
	}
	return nil
}

func parseAttrValue(fl uint8, code AttrCode, val []byte, opt Options) (PathAttr, error) {
	switch code {
	case AttrOrigin:
		if err := fixedLen(code, val, 1); err != nil {
			return nil, err
		}
		if val[0] > OriginIncomplete {
			return nil, NewMessageError(ErrUpdateMessage, ErrSubInvalidOriginAttribute, val, fmt.Sprintf("bgp: origin %d", val[0]))
		}
		return &OriginAttr{Value: val[0]}, nil
	case AttrASPath:
		return parseASPath(val, opt.AS4)
	case AttrAS4Path:
		// AS4_PATH is always 4-octet regardless of session capability.
		ap, err := parseASPath(val, true)
		if err != nil {
			return nil, err
		}
		return &RawAttr{AttrFlags: fl, AttrCode: code, Value: mustValue(ap, Options{AS4: true})}, nil
	case AttrNextHop:
		if err := fixedLen(code, val, 4); err != nil {
			return nil, err
		}
		return &NextHopAttr{Addr: prefix.AddrFrom4(binary.BigEndian.Uint32(val))}, nil
	case AttrMPReachNLRI:
		return parseMPReach(fl, val)
	case AttrMPUnreachNLRI:
		return parseMPUnreach(fl, val)
	case AttrMED:
		if err := fixedLen(code, val, 4); err != nil {
			return nil, err
		}
		return &MEDAttr{Value: binary.BigEndian.Uint32(val)}, nil
	case AttrLocalPref:
		if err := fixedLen(code, val, 4); err != nil {
			return nil, err
		}
		return &LocalPrefAttr{Value: binary.BigEndian.Uint32(val)}, nil
	case AttrAtomicAggregate:
		if err := fixedLen(code, val, 0); err != nil {
			return nil, err
		}
		return &AtomicAggregateAttr{}, nil
	case AttrAggregator:
		want := 6
		if opt.AS4 {
			want = 8
		}
		if err := fixedLen(code, val, want); err != nil {
			return nil, err
		}
		if opt.AS4 {
			return &AggregatorAttr{ASN: ASN(binary.BigEndian.Uint32(val[:4])), Addr: prefix.AddrFrom4(binary.BigEndian.Uint32(val[4:]))}, nil
		}
		return &AggregatorAttr{ASN: ASN(binary.BigEndian.Uint16(val[:2])), Addr: prefix.AddrFrom4(binary.BigEndian.Uint32(val[2:]))}, nil
	case AttrCommunities:
		if len(val)%4 != 0 {
			return nil, NewMessageError(ErrUpdateMessage, ErrSubAttributeLengthError, nil, "bgp: COMMUNITIES length not a multiple of 4")
		}
		c := &CommunitiesAttr{Communities: make([]Community, len(val)/4)}
		for i := range c.Communities {
			c.Communities[i] = Community(binary.BigEndian.Uint32(val[4*i:]))
		}
		return c, nil
	default:
		if fl&flagOptional == 0 {
			return nil, NewMessageError(ErrUpdateMessage, ErrSubUnrecognizedWellKnownAttr, []byte{byte(code)}, fmt.Sprintf("bgp: unrecognized well-known attribute %d", code))
		}
		return &RawAttr{AttrFlags: fl, AttrCode: code, Value: append([]byte(nil), val...)}, nil
	}
}

func mustValue(a PathAttr, opt Options) []byte {
	v, err := a.appendValue(nil, opt)
	if err != nil {
		panic(err)
	}
	return v
}
