package bgp

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"artemis/internal/prefix"
)

func roundTrip(t *testing.T, m Message, opt Options) Message {
	t.Helper()
	b, err := Marshal(m, opt)
	if err != nil {
		t.Fatalf("Marshal(%v): %v", m.Type(), err)
	}
	got, err := ParseMessage(b, opt)
	if err != nil {
		t.Fatalf("ParseMessage(%v): %v", m.Type(), err)
	}
	return got
}

func TestKeepaliveRoundTrip(t *testing.T) {
	m := roundTrip(t, &Keepalive{}, DefaultOptions)
	if m.Type() != MsgKeepalive {
		t.Fatalf("type = %v", m.Type())
	}
	b, _ := Marshal(&Keepalive{}, DefaultOptions)
	if len(b) != HeaderLen {
		t.Fatalf("KEEPALIVE length = %d, want %d", len(b), HeaderLen)
	}
}

func TestOpenRoundTrip(t *testing.T) {
	o := NewOpen(65551, 90, prefix.MustParseAddr("10.9.9.9"))
	got := roundTrip(t, o, DefaultOptions).(*Open)
	if got.ASN != 65551 {
		t.Fatalf("ASN = %v, want 65551 (4-octet via capability)", got.ASN)
	}
	if got.HoldTime != 90 || got.RouterID != prefix.MustParseAddr("10.9.9.9") {
		t.Fatalf("hold/routerID = %d/%s", got.HoldTime, got.RouterID)
	}
	if _, ok := got.FourOctetAS(); !ok {
		t.Fatal("four-octet AS capability lost in round trip")
	}
}

func TestOpenASTransInFixedField(t *testing.T) {
	o := NewOpen(200000, 90, prefix.AddrFrom4(1))
	b, err := Marshal(o, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed 2-byte "My Autonomous System" field must carry AS_TRANS.
	fixed := ASN(uint16(b[HeaderLen+1])<<8 | uint16(b[HeaderLen+2]))
	if fixed != ASTrans {
		t.Fatalf("fixed ASN field = %d, want AS_TRANS (23456)", fixed)
	}
}

func TestOpenSmallASNKeptInFixedField(t *testing.T) {
	o := NewOpen(64512, 180, prefix.AddrFrom4(7))
	got := roundTrip(t, o, DefaultOptions).(*Open)
	if got.ASN != 64512 {
		t.Fatalf("ASN = %v", got.ASN)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := &Notification{Code: ErrUpdateMessage, Subcode: ErrSubMalformedASPath, Data: []byte{1, 2, 3}}
	got := roundTrip(t, n, DefaultOptions).(*Notification)
	if got.Code != n.Code || got.Subcode != n.Subcode || !bytes.Equal(got.Data, n.Data) {
		t.Fatalf("got %+v, want %+v", got, n)
	}
}

func makeUpdate() *Update {
	return &Update{
		Withdrawn: []prefix.Prefix{prefix.MustParse("198.51.100.0/24")},
		Attrs: []PathAttr{
			&OriginAttr{Value: OriginIGP},
			NewASPath([]ASN{65001, 65002, 196615}),
			&NextHopAttr{Addr: prefix.MustParseAddr("192.0.2.1")},
			&MEDAttr{Value: 50},
			&LocalPrefAttr{Value: 200},
			&CommunitiesAttr{Communities: []Community{0xFFFF0001, 0x00010002}},
		},
		NLRI: []prefix.Prefix{
			prefix.MustParse("10.0.0.0/23"),
			prefix.MustParse("10.0.0.0/24"),
			prefix.MustParse("0.0.0.0/0"),
			prefix.MustParse("203.0.113.7/32"),
		},
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := makeUpdate()
	got := roundTrip(t, u, DefaultOptions).(*Update)
	if !reflect.DeepEqual(got, u) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, u)
	}
}

func TestUpdateOriginAndPathHelpers(t *testing.T) {
	u := makeUpdate()
	path, ok := u.ASPath()
	if !ok || len(path) != 3 || path[0] != 65001 || path[2] != 196615 {
		t.Fatalf("ASPath = %v, %v", path, ok)
	}
	origin, ok := u.Origin()
	if !ok || origin != 196615 {
		t.Fatalf("Origin = %v, %v", origin, ok)
	}
	empty := &Update{}
	if _, ok := empty.Origin(); ok {
		t.Fatal("Origin on attribute-less update should report false")
	}
}

func TestUpdate2ByteASPathUsesASTrans(t *testing.T) {
	u := &Update{
		Attrs: []PathAttr{
			&OriginAttr{}, NewASPath([]ASN{65001, 196615}), &NextHopAttr{Addr: prefix.AddrFrom4(1)},
		},
		NLRI: []prefix.Prefix{prefix.MustParse("10.0.0.0/24")},
	}
	opt := Options{AS4: false}
	got := roundTrip(t, u, opt).(*Update)
	path, _ := got.ASPath()
	if path[0] != 65001 || path[1] != ASTrans {
		t.Fatalf("legacy path = %v, want [65001 AS_TRANS]", path)
	}
}

func TestUpdateMissingMandatoryAttr(t *testing.T) {
	u := &Update{
		Attrs: []PathAttr{&OriginAttr{}, NewASPath([]ASN{65001})}, // no NEXT_HOP
		NLRI:  []prefix.Prefix{prefix.MustParse("10.0.0.0/24")},
	}
	b, err := Marshal(u, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ParseMessage(b, DefaultOptions)
	var me *MessageError
	if !errors.As(err, &me) || me.Subcode != ErrSubMissingWellKnownAttr {
		t.Fatalf("err = %v, want missing-well-known-attribute", err)
	}
}

func TestWithdrawOnlyUpdateNeedsNoAttrs(t *testing.T) {
	u := &Update{Withdrawn: []prefix.Prefix{prefix.MustParse("10.0.0.0/23")}}
	got := roundTrip(t, u, DefaultOptions).(*Update)
	if len(got.Withdrawn) != 1 || len(got.NLRI) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestAggregatorBothWidths(t *testing.T) {
	for _, opt := range []Options{{AS4: true}, {AS4: false}} {
		u := &Update{
			Attrs: []PathAttr{
				&OriginAttr{}, NewASPath([]ASN{65001}), &NextHopAttr{Addr: prefix.AddrFrom4(1)},
				&AggregatorAttr{ASN: 65010, Addr: prefix.AddrFrom4(9)},
				&AtomicAggregateAttr{},
			},
			NLRI: []prefix.Prefix{prefix.MustParse("10.0.0.0/24")},
		}
		got := roundTrip(t, u, opt).(*Update)
		var agg *AggregatorAttr
		for _, a := range got.Attrs {
			if x, ok := a.(*AggregatorAttr); ok {
				agg = x
			}
		}
		if agg == nil || agg.ASN != 65010 || agg.Addr != prefix.AddrFrom4(9) {
			t.Fatalf("AS4=%v: aggregator = %+v", opt.AS4, agg)
		}
	}
}

func TestUnknownOptionalAttrPreserved(t *testing.T) {
	raw := &RawAttr{AttrFlags: flagOptional | flagTransitive, AttrCode: 99, Value: []byte{0xde, 0xad}}
	u := &Update{
		Attrs: []PathAttr{&OriginAttr{}, NewASPath([]ASN{65001}), &NextHopAttr{Addr: prefix.AddrFrom4(1)}, raw},
		NLRI:  []prefix.Prefix{prefix.MustParse("10.0.0.0/24")},
	}
	got := roundTrip(t, u, DefaultOptions).(*Update)
	found := false
	for _, a := range got.Attrs {
		if r, ok := a.(*RawAttr); ok && r.AttrCode == 99 && bytes.Equal(r.Value, raw.Value) {
			found = true
		}
	}
	if !found {
		t.Fatal("unknown optional transitive attribute not preserved")
	}
}

func TestUnknownWellKnownAttrRejected(t *testing.T) {
	raw := &RawAttr{AttrFlags: 0 /* well-known */, AttrCode: 99, Value: []byte{1}}
	u := &Update{
		Attrs: []PathAttr{&OriginAttr{}, NewASPath([]ASN{65001}), &NextHopAttr{Addr: prefix.AddrFrom4(1)}, raw},
		NLRI:  []prefix.Prefix{prefix.MustParse("10.0.0.0/24")},
	}
	b, err := Marshal(u, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseMessage(b, DefaultOptions); err == nil {
		t.Fatal("unrecognized well-known attribute must be rejected")
	}
}

func TestDuplicateAttrRejected(t *testing.T) {
	u := &Update{
		Attrs: []PathAttr{&OriginAttr{}, &OriginAttr{}, NewASPath([]ASN{65001}), &NextHopAttr{Addr: prefix.AddrFrom4(1)}},
		NLRI:  []prefix.Prefix{prefix.MustParse("10.0.0.0/24")},
	}
	b, err := Marshal(u, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseMessage(b, DefaultOptions); err == nil {
		t.Fatal("duplicate attribute must be rejected")
	}
}

func TestLargeUpdateUsesExtendedLength(t *testing.T) {
	// >255 bytes of communities forces the extended-length attribute flag.
	comms := make([]Community, 100)
	for i := range comms {
		comms[i] = Community(i)
	}
	u := &Update{
		Attrs: []PathAttr{&OriginAttr{}, NewASPath([]ASN{65001}), &NextHopAttr{Addr: prefix.AddrFrom4(1)},
			&CommunitiesAttr{Communities: comms}},
		NLRI: []prefix.Prefix{prefix.MustParse("10.0.0.0/24")},
	}
	got := roundTrip(t, u, DefaultOptions).(*Update)
	var c *CommunitiesAttr
	for _, a := range got.Attrs {
		if x, ok := a.(*CommunitiesAttr); ok {
			c = x
		}
	}
	if c == nil || len(c.Communities) != 100 {
		t.Fatalf("communities lost: %+v", c)
	}
}

func TestBadMarkerRejected(t *testing.T) {
	b, _ := Marshal(&Keepalive{}, DefaultOptions)
	b[0] = 0
	var me *MessageError
	if _, err := ParseMessage(b, DefaultOptions); !errors.As(err, &me) || me.Subcode != ErrSubConnectionNotSynchronized {
		t.Fatalf("bad marker: err = %v", err)
	}
}

func TestBadLengthRejected(t *testing.T) {
	b, _ := Marshal(&Keepalive{}, DefaultOptions)
	b[16], b[17] = 0xff, 0xff
	if _, err := ParseMessage(b, DefaultOptions); err == nil {
		t.Fatal("oversize length accepted")
	}
	b[16], b[17] = 0, 5
	if _, err := ParseMessage(b, DefaultOptions); err == nil {
		t.Fatal("undersize length accepted")
	}
}

func TestUnknownMessageTypeRejected(t *testing.T) {
	b, _ := Marshal(&Keepalive{}, DefaultOptions)
	b[18] = 9
	var me *MessageError
	if _, err := ParseMessage(b, DefaultOptions); !errors.As(err, &me) || me.Subcode != ErrSubBadMessageType {
		t.Fatalf("unknown type: err = %v", err)
	}
}

func TestTruncatedInputsNeverPanic(t *testing.T) {
	u := makeUpdate()
	b, err := Marshal(u, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(b); i++ {
		trunc := append([]byte(nil), b[:i]...)
		if i >= 18 {
			// keep declared length consistent so we exercise body parsing
			trunc[16] = byte(i >> 8)
			trunc[17] = byte(i)
		}
		if _, err := ParseMessage(trunc, DefaultOptions); err == nil && i < len(b) {
			// Some truncations can still be valid messages (e.g. empty
			// attribute tail), but cutting inside NLRI must fail.
			if i > HeaderLen+4 && i < len(b) {
				continue
			}
		}
	}
}

func TestFuzzedBytesNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		n := rng.Intn(100)
		b := make([]byte, n)
		rng.Read(b)
		if rng.Intn(2) == 0 && n >= HeaderLen {
			for j := 0; j < 16; j++ {
				b[j] = 0xff
			}
			b[16] = byte(n >> 8)
			b[17] = byte(n)
			b[18] = byte(1 + rng.Intn(4))
		}
		ParseMessage(b, DefaultOptions) // must not panic
	}
}

func TestReadMessageFromStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{&Keepalive{}, makeUpdate(), NewOpen(65001, 90, prefix.AddrFrom4(1))}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m, DefaultOptions); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf, DefaultOptions)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("message %d type = %v, want %v", i, got.Type(), want.Type())
		}
	}
	if _, err := ReadMessage(&buf, DefaultOptions); err == nil {
		t.Fatal("expected EOF after stream drained")
	}
}

func TestQuickUpdateRoundTrip(t *testing.T) {
	// Property: any structurally valid UPDATE round-trips bit-exactly
	// through marshal/parse.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := &Update{}
		randPrefix := func() prefix.Prefix {
			if rng.Intn(3) == 0 {
				return prefix.New(prefix.AddrFrom16(rng.Uint64(), rng.Uint64()), rng.Intn(129))
			}
			return prefix.New(prefix.AddrFrom4(rng.Uint32()), rng.Intn(33))
		}
		for i, n := 0, rng.Intn(4); i < n; i++ {
			u.Withdrawn = append(u.Withdrawn, randPrefix())
		}
		nNLRI := rng.Intn(4)
		if nNLRI > 0 {
			path := make([]ASN, 1+rng.Intn(6))
			for i := range path {
				path[i] = ASN(1 + rng.Intn(1<<20))
			}
			u.Attrs = []PathAttr{
				&OriginAttr{Value: uint8(rng.Intn(3))},
				NewASPath(path),
				&NextHopAttr{Addr: prefix.AddrFrom4(rng.Uint32())},
			}
			for i := 0; i < nNLRI; i++ {
				u.NLRI = append(u.NLRI, randPrefix())
			}
		}
		b1, err := Marshal(u, DefaultOptions)
		if err != nil {
			return false
		}
		m, err := ParseMessage(b1, DefaultOptions)
		if err != nil {
			return false
		}
		b2, err := Marshal(m, DefaultOptions)
		if err != nil {
			return false
		}
		return bytes.Equal(b1, b2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateV6RoundTripViaMPAttrs(t *testing.T) {
	// v6 prefixes travel in MP_REACH/MP_UNREACH and fold back into the
	// dual-stack NLRI/Withdrawn lists on parse; consumers never see the MP
	// attributes themselves.
	u := &Update{
		Withdrawn: []prefix.Prefix{
			prefix.MustParse("192.0.2.0/24"),
			prefix.MustParse("2001:db8:dead::/48"),
		},
		Attrs: []PathAttr{
			&OriginAttr{Value: OriginIGP},
			NewASPath([]ASN{65001, 196615}),
			&NextHopAttr{Addr: prefix.AddrFrom4(1)},
		},
		NLRI: []prefix.Prefix{
			prefix.MustParse("10.0.0.0/23"),
			prefix.MustParse("2001:db8::/32"),
			prefix.MustParse("2001:db8:42::/48"),
		},
	}
	got := roundTrip(t, u, DefaultOptions).(*Update)
	if !reflect.DeepEqual(got, u) {
		t.Fatalf("v6 round trip mismatch:\n got %#v\nwant %#v", got, u)
	}
	for _, a := range got.Attrs {
		switch a.(type) {
		case *MPReachNLRIAttr, *MPUnreachNLRIAttr:
			t.Fatalf("MP attribute leaked to the consumer: %T", a)
		}
	}
}

func TestUpdateV6OnlyOmitsNextHop(t *testing.T) {
	// An MP-only UPDATE needs ORIGIN and AS_PATH but not NEXT_HOP
	// (RFC 4760 §7): the next hop lives inside MP_REACH_NLRI.
	u := &Update{
		Attrs: []PathAttr{
			&OriginAttr{Value: OriginIGP},
			NewASPath([]ASN{65001}),
		},
		NLRI: []prefix.Prefix{prefix.MustParse("2001:db8::/32")},
	}
	got := roundTrip(t, u, DefaultOptions).(*Update)
	if !reflect.DeepEqual(got, u) {
		t.Fatalf("v6-only round trip mismatch:\n got %#v\nwant %#v", got, u)
	}
	// But advertising v6 NLRI without an AS_PATH is still an error.
	bad := &Update{
		Attrs: []PathAttr{&OriginAttr{Value: OriginIGP}},
		NLRI:  []prefix.Prefix{prefix.MustParse("2001:db8::/32")},
	}
	b, err := Marshal(bad, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseMessage(b, DefaultOptions); err == nil {
		t.Fatal("MP-only update without AS_PATH accepted")
	}
}

func TestUnmodeledMPAttrNoDuplicateCode(t *testing.T) {
	// An MP_REACH for an AFI/SAFI the codec does not model (here IPv4
	// multicast) survives parse as a RawAttr with code 14. Re-marshaling
	// that update together with v6 NLRI must fail rather than synthesize a
	// second code-14 attribute — duplicate attribute codes are rejected by
	// every conforming parser, including this codec's own.
	rawMP := &RawAttr{
		AttrFlags: flagOptional,
		AttrCode:  AttrMPReachNLRI,
		Value:     []byte{0, 1, 2, 4, 10, 0, 0, 1, 0, 24, 10, 1, 2},
	}
	base := []PathAttr{&OriginAttr{Value: OriginIGP}, NewASPath([]ASN{65001}), &NextHopAttr{Addr: prefix.AddrFrom4(1)}}

	u := &Update{
		Attrs: append(append([]PathAttr(nil), base...), rawMP),
		NLRI:  []prefix.Prefix{prefix.MustParse("2001:db8:42::/48")},
	}
	if _, err := Marshal(u, DefaultOptions); err == nil {
		t.Fatal("v6 NLRI alongside an unmodeled MP_REACH RawAttr marshaled; would emit duplicate attr code 14")
	}

	// With a typed MP_REACH also present the duplicate is caught directly.
	dup := &Update{
		Attrs: append(append([]PathAttr(nil), base...), rawMP, &MPReachNLRIAttr{}),
		NLRI:  []prefix.Prefix{prefix.MustParse("10.0.0.0/24")},
	}
	if _, err := Marshal(dup, DefaultOptions); err == nil {
		t.Fatal("typed MP_REACH alongside an unmodeled MP_REACH RawAttr marshaled; duplicate attr code 14")
	}

	// v4-only routes coexist fine: the RawAttr is the sole code-14
	// attribute and round-trips verbatim.
	ok := &Update{
		Attrs: append(append([]PathAttr(nil), base...), rawMP),
		NLRI:  []prefix.Prefix{prefix.MustParse("10.0.0.0/24")},
	}
	got := roundTrip(t, ok, DefaultOptions).(*Update)
	found := false
	for _, a := range got.Attrs {
		if r, ok := a.(*RawAttr); ok && r.AttrCode == AttrMPReachNLRI && bytes.Equal(r.Value, rawMP.Value) {
			found = true
		}
	}
	if !found {
		t.Fatalf("unmodeled MP_REACH RawAttr not preserved: %+v", got.Attrs)
	}
}

func TestMPReachNextHopPreserved(t *testing.T) {
	// A caller-supplied (or third-party) v6 next hop must survive
	// marshal -> parse -> marshal instead of being rewritten to ::.
	nh := prefix.MustParseAddr("2001:db8::1")
	u := &Update{
		Attrs: []PathAttr{
			&OriginAttr{Value: OriginIGP},
			NewASPath([]ASN{65001}),
			&MPReachNLRIAttr{NextHop: nh},
		},
		NLRI: []prefix.Prefix{prefix.MustParse("2001:db8:42::/48")},
	}
	got := roundTrip(t, u, DefaultOptions).(*Update)
	var kept *MPReachNLRIAttr
	for _, a := range got.Attrs {
		if mp, ok := a.(*MPReachNLRIAttr); ok {
			kept = mp
		}
	}
	if kept == nil || kept.NextHop != nh {
		t.Fatalf("v6 next hop not preserved: %+v", got.Attrs)
	}
	if len(kept.NLRI) != 0 {
		t.Fatalf("retained MP attr should carry only the next hop, got NLRI %v", kept.NLRI)
	}
	if len(got.NLRI) != 1 || got.NLRI[0] != u.NLRI[0] {
		t.Fatalf("NLRI = %v, want %v", got.NLRI, u.NLRI)
	}
	// And a second marshal emits the same bytes (the retained attr merges
	// back instead of duplicating).
	b1, err := Marshal(u, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Marshal(got, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("re-marshal with preserved next hop is not byte-stable")
	}
}

func TestOpenRejectsV6RouterID(t *testing.T) {
	o := NewOpen(65001, 90, prefix.MustParseAddr("2001:db8::1"))
	if _, err := Marshal(o, DefaultOptions); err == nil {
		t.Fatal("OPEN with a v6 router ID must not marshal")
	}
}

func TestNextHopRejectsV6(t *testing.T) {
	u := &Update{
		Attrs: []PathAttr{
			&OriginAttr{Value: OriginIGP},
			NewASPath([]ASN{65001}),
			&NextHopAttr{Addr: prefix.MustParseAddr("2001:db8::1")},
		},
		NLRI: []prefix.Prefix{prefix.MustParse("10.0.0.0/24")},
	}
	if _, err := Marshal(u, DefaultOptions); err == nil {
		t.Fatal("NEXT_HOP with a v6 address must not marshal")
	}
}
