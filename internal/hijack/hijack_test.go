package hijack

import (
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

func TestAttackPrefix(t *testing.T) {
	owned := prefix.MustParse("10.0.0.0/23")
	cases := []struct {
		kind Kind
		want string
	}{
		{ExactOrigin, "10.0.0.0/23"},
		{PathFake, "10.0.0.0/23"},
		{SubPrefix, "10.0.0.0/24"},
		{Squat, "10.0.0.0/22"},
	}
	for _, c := range cases {
		got, err := AttackPrefix(c.kind, owned)
		if err != nil || got.String() != c.want {
			t.Errorf("%v: got %v, %v; want %s", c.kind, got, err, c.want)
		}
	}
}

func TestAttackPrefixEdgeCases(t *testing.T) {
	if _, err := AttackPrefix(SubPrefix, prefix.MustParse("10.0.0.1/32")); err == nil {
		t.Fatal("sub-prefix of /32 accepted")
	}
	if _, err := AttackPrefix(Squat, prefix.MustParse("0.0.0.0/0")); err == nil {
		t.Fatal("squat on /0 accepted")
	}
	if _, err := AttackPrefix(Kind(99), prefix.MustParse("10.0.0.0/23")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		ExactOrigin: "exact-origin", SubPrefix: "sub-prefix",
		Squat: "squat", PathFake: "path-fake",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestDurationModelAnchors(t *testing.T) {
	m := NewDurationModel(1)
	const n = 20000
	short, beyond6min := 0, 0
	for i := 0; i < n; i++ {
		d := m.Sample()
		if d < time.Minute || d > 7*24*time.Hour {
			t.Fatalf("sample %v out of range", d)
		}
		if d < 10*time.Minute {
			short++
		}
		if d > 6*time.Minute {
			beyond6min++
		}
	}
	// Paper anchors: >20% last under 10 minutes...
	if frac := float64(short) / n; frac < 0.20 || frac > 0.30 {
		t.Fatalf("fraction under 10min = %v, want ~0.25", frac)
	}
	// ...and >80% outlive ARTEMIS's ~6 minute full response.
	if frac := float64(beyond6min) / n; frac < 0.80 {
		t.Fatalf("fraction beyond 6min = %v, want > 0.80", frac)
	}
}

func TestDurationModelDeterministic(t *testing.T) {
	a, b := NewDurationModel(7), NewDurationModel(7)
	for i := 0; i < 100; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestAttackPrefixNewKinds(t *testing.T) {
	owned := prefix.MustParse("10.0.0.0/23")
	owned6 := prefix.MustParse("2001:db8::/47")
	cases := []struct {
		kind  Kind
		owned prefix.Prefix
		want  string
	}{
		{PathFakeDeep, owned, "10.0.0.0/23"},
		{PrependForgery, owned, "10.0.0.0/23"},
		{SubPrefixForgedOrigin, owned, "10.0.0.0/24"},
		{RouteLeak, owned, "10.0.0.0/23"},
		{LegitMOAS, owned, "10.0.0.0/23"},
		// v6 route-leak and forged-origin sub-prefix paths.
		{RouteLeak, owned6, "2001:db8::/47"},
		{SubPrefixForgedOrigin, owned6, "2001:db8::/48"},
		{Squat, owned6, "2001:db8::/46"},
	}
	for _, c := range cases {
		got, err := AttackPrefix(c.kind, c.owned)
		if err != nil || got.String() != c.want {
			t.Errorf("%v(%v): got %v, %v; want %s", c.kind, c.owned, got, err, c.want)
		}
	}
}

func TestAttackPrefixClampBoundaries(t *testing.T) {
	// Sub-prefix attacks at the conventional filter boundaries: the /24
	// (v4) and /48 (v6) owned prefixes still split — the attacker can
	// announce a /25 or /49 — but the result is ingress-filtered
	// everywhere, which FilteredAt reports.
	p25, err := AttackPrefix(SubPrefix, prefix.MustParse("10.0.0.0/24"))
	if err != nil || p25.String() != "10.0.0.0/25" {
		t.Fatalf("sub-prefix of /24: %v, %v", p25, err)
	}
	if !FilteredAt(p25, 24, 48) {
		t.Fatal("/25 must be reported as filtered at the /24 clamp")
	}
	p49, err := AttackPrefix(SubPrefixForgedOrigin, prefix.MustParse("2001:db8::/48"))
	if err != nil || p49.String() != "2001:db8::/49" {
		t.Fatalf("sub-prefix of /48: %v, %v", p49, err)
	}
	if !FilteredAt(p49, 24, 48) {
		t.Fatal("/49 must be reported as filtered at the /48 clamp")
	}
	// One below the boundary propagates.
	if FilteredAt(prefix.MustParse("10.0.0.0/24"), 24, 48) {
		t.Fatal("/24 is not filtered")
	}
	if FilteredAt(prefix.MustParse("2001:db8::/48"), 24, 48) {
		t.Fatal("/48 is not filtered")
	}
	// v6 sub-prefix of a /128 is impossible, like the v4 /32.
	if _, err := AttackPrefix(SubPrefixForgedOrigin, prefix.MustParse("2001:db8::1/128")); err == nil {
		t.Fatal("sub-prefix of /128 accepted")
	}
	// Squatting on unannounced space is computed the same way — the
	// covering parent — whether or not the victim ever announced: the
	// prefix math must not depend on announcement state.
	sq, err := AttackPrefix(Squat, prefix.MustParse("198.51.100.0/24"))
	if err != nil || sq.String() != "198.51.100.0/23" {
		t.Fatalf("squat on unannounced /24: %v, %v", sq, err)
	}
}

func TestForgedPathSuffix(t *testing.T) {
	const victim, up = bgp.ASN(61000), bgp.ASN(2000)
	cases := []struct {
		kind Kind
		want []bgp.ASN
	}{
		{PathFake, []bgp.ASN{victim}},
		{SubPrefixForgedOrigin, []bgp.ASN{victim}},
		{PathFakeDeep, []bgp.ASN{up, victim}},
		{PrependForgery, []bgp.ASN{victim, victim}},
		{ExactOrigin, nil},
		{SubPrefix, nil},
		{Squat, nil},
		{RouteLeak, nil},
		{LegitMOAS, nil},
	}
	for _, c := range cases {
		got := ForgedPathSuffix(c.kind, victim, up)
		if len(got) != len(c.want) {
			t.Errorf("%v: suffix %v, want %v", c.kind, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v: suffix %v, want %v", c.kind, got, c.want)
			}
		}
		if c.kind.ForgesOrigin() != (c.want != nil) {
			t.Errorf("%v: ForgesOrigin = %v", c.kind, c.kind.ForgesOrigin())
		}
	}
	// PathFakeDeep with no known upstream degrades to a type-1 tail.
	if got := ForgedPathSuffix(PathFakeDeep, victim, 0); len(got) != 1 || got[0] != victim {
		t.Errorf("PathFakeDeep without upstream: %v", got)
	}
}

func TestKindStringNewKinds(t *testing.T) {
	for k, want := range map[Kind]string{
		PathFakeDeep: "path-fake-deep", PrependForgery: "prepend-forgery",
		SubPrefixForgedOrigin: "sub-prefix-forged-origin",
		RouteLeak:             "route-leak", LegitMOAS: "legit-moas",
		Kind(99): "Kind(99)",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
