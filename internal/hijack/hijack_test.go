package hijack

import (
	"testing"
	"time"

	"artemis/internal/prefix"
)

func TestAttackPrefix(t *testing.T) {
	owned := prefix.MustParse("10.0.0.0/23")
	cases := []struct {
		kind Kind
		want string
	}{
		{ExactOrigin, "10.0.0.0/23"},
		{PathFake, "10.0.0.0/23"},
		{SubPrefix, "10.0.0.0/24"},
		{Squat, "10.0.0.0/22"},
	}
	for _, c := range cases {
		got, err := AttackPrefix(c.kind, owned)
		if err != nil || got.String() != c.want {
			t.Errorf("%v: got %v, %v; want %s", c.kind, got, err, c.want)
		}
	}
}

func TestAttackPrefixEdgeCases(t *testing.T) {
	if _, err := AttackPrefix(SubPrefix, prefix.MustParse("10.0.0.1/32")); err == nil {
		t.Fatal("sub-prefix of /32 accepted")
	}
	if _, err := AttackPrefix(Squat, prefix.MustParse("0.0.0.0/0")); err == nil {
		t.Fatal("squat on /0 accepted")
	}
	if _, err := AttackPrefix(Kind(99), prefix.MustParse("10.0.0.0/23")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		ExactOrigin: "exact-origin", SubPrefix: "sub-prefix",
		Squat: "squat", PathFake: "path-fake",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestDurationModelAnchors(t *testing.T) {
	m := NewDurationModel(1)
	const n = 20000
	short, beyond6min := 0, 0
	for i := 0; i < n; i++ {
		d := m.Sample()
		if d < time.Minute || d > 7*24*time.Hour {
			t.Fatalf("sample %v out of range", d)
		}
		if d < 10*time.Minute {
			short++
		}
		if d > 6*time.Minute {
			beyond6min++
		}
	}
	// Paper anchors: >20% last under 10 minutes...
	if frac := float64(short) / n; frac < 0.20 || frac > 0.30 {
		t.Fatalf("fraction under 10min = %v, want ~0.25", frac)
	}
	// ...and >80% outlive ARTEMIS's ~6 minute full response.
	if frac := float64(beyond6min) / n; frac < 0.80 {
		t.Fatalf("fraction beyond 6min = %v, want > 0.80", frac)
	}
}

func TestDurationModelDeterministic(t *testing.T) {
	a, b := NewDurationModel(7), NewDurationModel(7)
	for i := 0; i < 100; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("same seed diverged")
		}
	}
}
