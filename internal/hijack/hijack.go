// Package hijack defines the attack scenarios the experiments replay —
// the §3 protocol generalized to the hijack taxonomy the detector handles —
// plus the empirical hijack-duration distribution from the Argus study
// ([3] in the paper) that experiment E5 samples: "more than 20% of hijacks
// last < 10 mins", and ARTEMIS's ~6 minute response is "smaller than the
// duration of > 80% of the hijacking cases observed".
package hijack

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

// Kind classifies the attack.
type Kind uint8

const (
	// ExactOrigin: the attacker announces the victim's exact prefix with
	// itself as origin (the paper's evaluated scenario).
	ExactOrigin Kind = iota
	// SubPrefix: the attacker announces a more-specific slice, capturing
	// the slice everywhere by longest-prefix match.
	SubPrefix
	// Squat: the attacker announces a covering super-prefix.
	Squat
	// PathFake: the attacker announces the exact prefix with a forged
	// path ending in the legitimate origin (Type-1 hijack); only the
	// path-anomaly check can see it.
	PathFake
	// PathFakeDeep: the attacker forges a path ending in a *legitimate
	// upstream adjacency* of the origin (Type-N, N >= 2). Invisible to
	// origin and first-hop checks alike — the paper's acknowledged blind
	// spot without deeper path knowledge.
	PathFakeDeep
	// PrependForgery: the attacker forges the victim origin and imitates
	// the victim's own prepending ([victim victim ...] tail), which
	// defeats an upstream inference that naively reads Path[len-2].
	PrependForgery
	// SubPrefixForgedOrigin: a more-specific announcement whose forged
	// path ends in the legitimate origin — the "hidden" sub-prefix
	// hijack. Origin checks pass; only announced-prefix knowledge
	// catches it.
	SubPrefixForgedOrigin
	// RouteLeak: a neighbor re-exports the victim's legitimate route
	// against valley-free policy. The origin stays legitimate, so a
	// correct detector must NOT alert (accuracy control).
	RouteLeak
	// LegitMOAS: a second legitimate origin (e.g. an anycast or DDoS-
	// protection partner) announces the owned prefix. Must NOT alert
	// when the partner is configured as a legit origin.
	LegitMOAS
)

func (k Kind) String() string {
	switch k {
	case ExactOrigin:
		return "exact-origin"
	case SubPrefix:
		return "sub-prefix"
	case Squat:
		return "squat"
	case PathFake:
		return "path-fake"
	case PathFakeDeep:
		return "path-fake-deep"
	case PrependForgery:
		return "prepend-forgery"
	case SubPrefixForgedOrigin:
		return "sub-prefix-forged-origin"
	case RouteLeak:
		return "route-leak"
	case LegitMOAS:
		return "legit-moas"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ForgesOrigin reports whether the attack carries a forged path tail that
// ends in the legitimate origin (so origin-level checks see a legit
// announcement).
func (k Kind) ForgesOrigin() bool {
	switch k {
	case PathFake, PathFakeDeep, PrependForgery, SubPrefixForgedOrigin:
		return true
	}
	return false
}

// AttackPrefix computes what the attacker announces against an owned
// prefix.
func AttackPrefix(k Kind, owned prefix.Prefix) (prefix.Prefix, error) {
	switch k {
	case ExactOrigin, PathFake, PathFakeDeep, PrependForgery, RouteLeak, LegitMOAS:
		return owned, nil
	case SubPrefix, SubPrefixForgedOrigin:
		if owned.Bits() >= owned.MaxBits() {
			return prefix.Prefix{}, fmt.Errorf("hijack: cannot sub-prefix a /%d", owned.Bits())
		}
		lo, _ := owned.Split()
		return lo, nil
	case Squat:
		if owned.Bits() == 0 {
			return prefix.Prefix{}, fmt.Errorf("hijack: cannot squat on /0")
		}
		return owned.Parent(), nil
	}
	return prefix.Prefix{}, fmt.Errorf("hijack: unknown kind %v", k)
}

// ForgedPathSuffix returns the AS-path tail the attacker fabricates for
// the kind (origin last), or nil when the attack announces honestly with
// the attacker as origin. victim is the legitimate origin; upstream is a
// legitimate first-hop adjacency of the victim (used by PathFakeDeep —
// pass 0 to fall back to a plain type-1 tail).
func ForgedPathSuffix(k Kind, victim, upstream bgp.ASN) []bgp.ASN {
	switch k {
	case PathFake, SubPrefixForgedOrigin:
		return []bgp.ASN{victim}
	case PathFakeDeep:
		if upstream == 0 {
			return []bgp.ASN{victim}
		}
		return []bgp.ASN{upstream, victim}
	case PrependForgery:
		return []bgp.ASN{victim, victim}
	}
	return nil
}

// FilteredAt reports whether an attack prefix is too specific to
// propagate past the conventional ingress filters (more specific than
// v4Limit / v6Limit, the simnet defaults being 24 and 48). A sub-prefix
// attack at the clamp boundary is announced but goes nowhere — the §2
// caveat, from the attacker's side.
func FilteredAt(p prefix.Prefix, v4Limit, v6Limit int) bool {
	if p.Is6() {
		return p.Bits() > v6Limit
	}
	return p.Bits() > v4Limit
}

// DurationModel samples hijack durations following the Argus-style
// distribution the paper cites: heavily skewed, with a large short-lived
// mass and a long tail.
//
// The piecewise model: 25% under 10 minutes, a further 55% between 10
// minutes and 6 hours (log-uniform), and a 20% tail from 6 hours to 7
// days (log-uniform). This reproduces the paper's two anchor points:
// >20% of hijacks last <10 min, and >80% last longer than ARTEMIS's
// ~6-minute full response.
type DurationModel struct {
	rng *rand.Rand
}

// NewDurationModel seeds the sampler.
func NewDurationModel(seed int64) *DurationModel {
	return &DurationModel{rng: rand.New(rand.NewSource(seed))}
}

// Sample draws one hijack duration.
func (m *DurationModel) Sample() time.Duration {
	u := m.rng.Float64()
	switch {
	case u < 0.25:
		// 1..10 minutes, log-uniform.
		return logUniform(m.rng, time.Minute, 10*time.Minute)
	case u < 0.80:
		return logUniform(m.rng, 10*time.Minute, 6*time.Hour)
	default:
		return logUniform(m.rng, 6*time.Hour, 7*24*time.Hour)
	}
}

func logUniform(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	l, h := float64(lo), float64(hi)
	return time.Duration(l * math.Pow(h/l, rng.Float64()))
}
