// Package bgpd is a minimal BGP-4 speaker over TCP: session establishment
// (OPEN exchange with 4-octet-AS capability, RFC 4271 §8 happy path),
// keepalives, hold-timer enforcement, and UPDATE exchange using the wire
// codec from internal/bgp.
//
// It is the southbound of the SDN controller (internal/controller): when
// ARTEMIS triggers mitigation, the controller originates the de-aggregated
// prefixes by sending UPDATEs over a bgpd session to the AS's border
// router — the "network controller that supports BGP, like ONOS or
// OpenDayLight" of §2.
package bgpd

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

// Config describes the local end of a session.
type Config struct {
	LocalAS  bgp.ASN
	RouterID prefix.Addr
	// PeerAS, when non-zero, is enforced against the remote OPEN.
	PeerAS bgp.ASN
	// HoldTime in seconds (default 90; keepalives at a third of it).
	HoldTime uint16
}

func (c Config) withDefaults() Config {
	if c.HoldTime == 0 {
		c.HoldTime = 90
	}
	return c
}

// ErrSessionClosed is returned once the session has terminated.
var ErrSessionClosed = errors.New("bgpd: session closed")

// Session is an established BGP session.
type Session struct {
	conn    net.Conn
	cfg     Config
	peerAS  bgp.ASN
	peerID  prefix.Addr
	updates chan *bgp.Update

	wmu      sync.Mutex
	closeOne sync.Once
	closed   chan struct{}
	err      error
	errMu    sync.Mutex
}

// Dial opens a TCP connection and establishes a BGP session as the
// initiator.
func Dial(addr string, cfg Config) (*Session, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Establish(conn, cfg)
}

// Establish runs the OPEN/KEEPALIVE handshake over an existing connection.
// Both sides may call it (the exchange is symmetric).
func Establish(conn net.Conn, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	s := &Session{
		conn:    conn,
		cfg:     cfg,
		updates: make(chan *bgp.Update, 256),
		closed:  make(chan struct{}),
	}
	open := bgp.NewOpen(cfg.LocalAS, cfg.HoldTime, cfg.RouterID)
	if err := s.send(open); err != nil {
		conn.Close()
		return nil, err
	}
	deadline := time.Now().Add(10 * time.Second)
	conn.SetReadDeadline(deadline)
	msg, err := bgp.ReadMessage(conn, bgp.DefaultOptions)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("bgpd: waiting for OPEN: %w", err)
	}
	peerOpen, ok := msg.(*bgp.Open)
	if !ok {
		s.notifyAndClose(bgp.ErrFSMError, 0)
		return nil, fmt.Errorf("bgpd: expected OPEN, got %v", msg.Type())
	}
	if cfg.PeerAS != 0 && peerOpen.ASN != cfg.PeerAS {
		s.notifyAndClose(bgp.ErrOpenMessage, bgp.ErrSubBadPeerAS)
		return nil, fmt.Errorf("bgpd: peer AS %v, want %v", peerOpen.ASN, cfg.PeerAS)
	}
	s.peerAS = peerOpen.ASN
	s.peerID = peerOpen.RouterID
	if err := s.send(&bgp.Keepalive{}); err != nil {
		conn.Close()
		return nil, err
	}
	msg, err = bgp.ReadMessage(conn, bgp.DefaultOptions)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("bgpd: waiting for KEEPALIVE: %w", err)
	}
	if msg.Type() != bgp.MsgKeepalive {
		s.notifyAndClose(bgp.ErrFSMError, 0)
		return nil, fmt.Errorf("bgpd: expected KEEPALIVE, got %v", msg.Type())
	}
	conn.SetReadDeadline(time.Time{})

	hold := time.Duration(minU16(cfg.HoldTime, peerOpen.HoldTime)) * time.Second
	go s.readLoop(hold)
	if hold > 0 {
		go s.keepaliveLoop(hold / 3)
	}
	return s, nil
}

func minU16(a, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}

// PeerAS returns the negotiated remote AS.
func (s *Session) PeerAS() bgp.ASN { return s.peerAS }

// PeerID returns the remote router ID.
func (s *Session) PeerID() prefix.Addr { return s.peerID }

// Updates returns the stream of received UPDATE messages. The channel is
// closed when the session ends; Err then reports why.
func (s *Session) Updates() <-chan *bgp.Update { return s.updates }

// Err reports the terminal session error (nil on clean local close).
func (s *Session) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// SendUpdate transmits an UPDATE message.
func (s *Session) SendUpdate(u *bgp.Update) error {
	select {
	case <-s.closed:
		return ErrSessionClosed
	default:
	}
	return s.send(u)
}

// Announce is a convenience: originate prefixes with the given AS path
// (LocalAS is prepended automatically when path is empty). The next hop
// may be either family: a v4 next hop goes in the classic NEXT_HOP
// attribute (v6 prefixes then ride MP_REACH_NLRI with the unspecified
// next hop, as the codec synthesizes); a v6 next hop goes in
// MP_REACH_NLRI, in which case every announced prefix must be v6 —
// classic v4 NLRI cannot be forwarded through a v6-only next hop.
func (s *Session) Announce(path []bgp.ASN, nextHop prefix.Addr, prefixes ...prefix.Prefix) error {
	if len(path) == 0 {
		path = []bgp.ASN{s.cfg.LocalAS}
	}
	attrs := []bgp.PathAttr{
		&bgp.OriginAttr{Value: bgp.OriginIGP},
		bgp.NewASPath(path),
	}
	if nextHop.Is6() {
		for _, p := range prefixes {
			if !p.Is6() {
				return fmt.Errorf("bgpd: cannot announce v4 prefix %s with v6 next hop %s", p, nextHop)
			}
		}
		// Marshal merges the v6 NLRI into this attribute, preserving the
		// real next hop.
		attrs = append(attrs, &bgp.MPReachNLRIAttr{NextHop: nextHop})
	} else {
		attrs = append(attrs, &bgp.NextHopAttr{Addr: nextHop})
	}
	return s.SendUpdate(&bgp.Update{Attrs: attrs, NLRI: prefixes})
}

// WithdrawPrefixes sends a withdrawal for the given prefixes.
func (s *Session) WithdrawPrefixes(prefixes ...prefix.Prefix) error {
	return s.SendUpdate(&bgp.Update{Withdrawn: prefixes})
}

func (s *Session) send(m bgp.Message) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return bgp.WriteMessage(s.conn, m, bgp.DefaultOptions)
}

func (s *Session) readLoop(hold time.Duration) {
	defer close(s.updates)
	for {
		if hold > 0 {
			s.conn.SetReadDeadline(time.Now().Add(hold))
		}
		msg, err := bgp.ReadMessage(s.conn, bgp.DefaultOptions)
		if err != nil {
			s.fail(fmt.Errorf("bgpd: read: %w", err))
			return
		}
		switch m := msg.(type) {
		case *bgp.Update:
			select {
			case s.updates <- m:
			case <-s.closed:
				return
			}
		case *bgp.Keepalive:
			// refreshes the hold timer via the next SetReadDeadline
		case *bgp.Notification:
			s.fail(m)
			return
		case *bgp.Open:
			s.notifyAndClose(bgp.ErrFSMError, 0)
			s.fail(errors.New("bgpd: unexpected OPEN in established state"))
			return
		}
	}
}

func (s *Session) keepaliveLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.send(&bgp.Keepalive{}); err != nil {
				s.fail(err)
				return
			}
		case <-s.closed:
			return
		}
	}
}

func (s *Session) fail(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
	s.closeOne.Do(func() {
		close(s.closed)
		s.conn.Close()
	})
}

func (s *Session) notifyAndClose(code, subcode uint8) {
	s.send(&bgp.Notification{Code: code, Subcode: subcode})
	s.closeOne.Do(func() {
		close(s.closed)
		s.conn.Close()
	})
}

// Close terminates the session with a Cease notification.
func (s *Session) Close() error {
	s.notifyAndClose(bgp.ErrCease, 0)
	return nil
}

// Listener accepts incoming BGP sessions.
type Listener struct {
	ln  net.Listener
	cfg Config
}

// Listen starts accepting BGP connections on addr; each established
// session is handed to accept.
func Listen(addr string, cfg Config, accept func(*Session)) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &Listener{ln: ln, cfg: cfg}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				sess, err := Establish(conn, cfg)
				if err != nil {
					return
				}
				accept(sess)
			}()
		}
	}()
	return l, nil
}

// Addr returns the listening address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Close stops accepting sessions.
func (l *Listener) Close() error { return l.ln.Close() }
