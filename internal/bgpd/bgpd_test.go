package bgpd

import (
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

func pair(t *testing.T, serverCfg, clientCfg Config) (server, client *Session) {
	t.Helper()
	sessCh := make(chan *Session, 1)
	l, err := Listen("127.0.0.1:0", serverCfg, func(s *Session) { sessCh <- s })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	cli, err := Dial(l.Addr(), clientCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	select {
	case srv := <-sessCh:
		t.Cleanup(func() { srv.Close() })
		return srv, cli
	case <-time.After(3 * time.Second):
		t.Fatal("server session not established")
		return nil, nil
	}
}

func TestEstablishAndExchangeUpdates(t *testing.T) {
	srv, cli := pair(t,
		Config{LocalAS: 65001, RouterID: prefix.AddrFrom4(1)},
		Config{LocalAS: 196615, RouterID: prefix.AddrFrom4(2), PeerAS: 65001},
	)
	if srv.PeerAS() != 196615 || cli.PeerAS() != 65001 {
		t.Fatalf("negotiated ASes: %v / %v", srv.PeerAS(), cli.PeerAS())
	}
	if err := cli.Announce(nil, prefix.MustParseAddr("192.0.2.1"),
		prefix.MustParse("10.0.0.0/24"), prefix.MustParse("10.0.1.0/24")); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-srv.Updates():
		if len(u.NLRI) != 2 {
			t.Fatalf("NLRI = %v", u.NLRI)
		}
		origin, ok := u.Origin()
		if !ok || origin != 196615 {
			t.Fatalf("origin = %v,%v (4-octet AS must survive)", origin, ok)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("update not delivered")
	}
}

func TestWithdraw(t *testing.T) {
	srv, cli := pair(t, Config{LocalAS: 65001, RouterID: prefix.AddrFrom4(1)}, Config{LocalAS: 65002, RouterID: prefix.AddrFrom4(2)})
	if err := cli.WithdrawPrefixes(prefix.MustParse("10.0.0.0/23")); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-srv.Updates():
		if len(u.Withdrawn) != 1 || u.Withdrawn[0].String() != "10.0.0.0/23" {
			t.Fatalf("withdrawn = %v", u.Withdrawn)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("withdraw not delivered")
	}
}

func TestPeerASEnforced(t *testing.T) {
	l, err := Listen("127.0.0.1:0", Config{LocalAS: 65001, RouterID: prefix.AddrFrom4(1)}, func(s *Session) { s.Close() })
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := Dial(l.Addr(), Config{LocalAS: 65002, RouterID: prefix.AddrFrom4(2), PeerAS: 9999}); err == nil {
		t.Fatal("wrong peer AS accepted")
	}
}

func TestCloseSendsCeaseAndEndsPeer(t *testing.T) {
	srv, cli := pair(t, Config{LocalAS: 65001, RouterID: prefix.AddrFrom4(1)}, Config{LocalAS: 65002, RouterID: prefix.AddrFrom4(2)})
	cli.Close()
	select {
	case _, ok := <-srv.Updates():
		if ok {
			t.Fatal("unexpected update")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("peer did not observe close")
	}
	if srv.Err() == nil {
		t.Fatal("server should record the notification as terminal error")
	}
	if err := cli.SendUpdate(&bgp.Update{}); err != ErrSessionClosed {
		t.Fatalf("send after close = %v", err)
	}
}

func TestKeepalivesMaintainSession(t *testing.T) {
	// Hold time 3s → keepalives every 1s; session must survive 4s idle.
	srv, cli := pair(t,
		Config{LocalAS: 65001, RouterID: prefix.AddrFrom4(1), HoldTime: 3},
		Config{LocalAS: 65002, RouterID: prefix.AddrFrom4(2), HoldTime: 3},
	)
	time.Sleep(4 * time.Second)
	if err := cli.Announce(nil, prefix.AddrFrom4(1), prefix.MustParse("10.0.0.0/24")); err != nil {
		t.Fatalf("session died despite keepalives: %v", err)
	}
	select {
	case <-srv.Updates():
	case <-time.After(3 * time.Second):
		t.Fatal("update after idle period not delivered")
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", Config{LocalAS: 65001, RouterID: prefix.AddrFrom4(1)}); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestAnnounceV6NextHop(t *testing.T) {
	srv, cli := pair(t, Config{LocalAS: 65001, RouterID: prefix.AddrFrom4(1)}, Config{LocalAS: 65002, RouterID: prefix.AddrFrom4(2)})
	defer srv.Close()
	defer cli.Close()
	nh := prefix.MustParseAddr("2001:db8::1")
	// v4 prefixes cannot be forwarded through a v6-only next hop.
	if err := cli.Announce(nil, nh, prefix.MustParse("10.0.0.0/24")); err == nil {
		t.Fatal("v4 prefix with v6 next hop accepted")
	}
	if err := cli.Announce(nil, nh, prefix.MustParse("2001:db8:42::/48")); err != nil {
		t.Fatalf("v6 announce: %v", err)
	}
	select {
	case u := <-srv.Updates():
		if len(u.NLRI) != 1 || u.NLRI[0] != prefix.MustParse("2001:db8:42::/48") {
			t.Fatalf("NLRI = %v", u.NLRI)
		}
		var mp *bgp.MPReachNLRIAttr
		for _, a := range u.Attrs {
			if m, ok := a.(*bgp.MPReachNLRIAttr); ok {
				mp = m
			}
		}
		if mp == nil || mp.NextHop != nh {
			t.Fatalf("v6 next hop not delivered: %+v", u.Attrs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for v6 update")
	}
}
