package ring_test

import (
	"fmt"

	"artemis/internal/ring"
)

// A Ring hands values from one producer goroutine to one consumer
// goroutine without allocating after construction. The producer owns
// Push and Close; the consumer drains with Pop until it reports
// ok=false, which happens only after the ring is both closed and empty
// — values accepted before Close are never lost.
func Example() {
	r := ring.New[string](4)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			v, ok := r.Pop() // blocks until a value or close+drained
			if !ok {
				return
			}
			fmt.Println("got", v)
		}
	}()

	r.Push("announce 10.0.0.0/24")
	r.Push("withdraw 10.0.1.0/24")
	r.Close() // producer side: no more values; consumer still drains both

	<-done
	// Output:
	// got announce 10.0.0.0/24
	// got withdraw 10.0.1.0/24
}
