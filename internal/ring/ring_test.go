package ring

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestWraparound pushes and pops far more values than the capacity so
// every slot is reused many times, verifying cursor arithmetic across
// the wrap.
func TestWraparound(t *testing.T) {
	r := New[int](4)
	if r.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", r.Cap())
	}
	next := 0
	for round := 0; round < 100; round++ {
		// Vary the resident occupancy so the wrap point moves.
		fill := 1 + round%r.Cap()
		for i := 0; i < fill; i++ {
			if !r.Push(next + i) {
				t.Fatalf("Push(%d) refused on open ring", next+i)
			}
		}
		if got := r.Len(); got != fill {
			t.Fatalf("Len() = %d after %d pushes", got, fill)
		}
		for i := 0; i < fill; i++ {
			v, ok := r.Pop()
			if !ok || v != next+i {
				t.Fatalf("Pop() = %d,%v, want %d,true", v, ok, next+i)
			}
		}
		next += fill
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop() on empty ring reported a value")
	}
}

// TestCapacityRounding checks the power-of-two rounding contract.
func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {100, 128},
	} {
		if got := New[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestTryPushFull verifies the non-blocking producer sees full and
// closed distinctly from success.
func TestTryPushFull(t *testing.T) {
	r := New[int](2)
	if !r.TryPush(1) || !r.TryPush(2) {
		t.Fatal("TryPush refused with space available")
	}
	if r.TryPush(3) {
		t.Fatal("TryPush succeeded on a full ring")
	}
	if v, ok := r.TryPop(); !ok || v != 1 {
		t.Fatalf("TryPop() = %d,%v, want 1,true", v, ok)
	}
	if !r.TryPush(3) {
		t.Fatal("TryPush refused after a pop freed a slot")
	}
	r.Close()
	if r.TryPush(4) {
		t.Fatal("TryPush succeeded on a closed ring")
	}
}

// TestCloseDrainsInFlight closes the ring with values still buffered:
// the consumer must receive every accepted value before seeing
// ok=false.
func TestCloseDrainsInFlight(t *testing.T) {
	r := New[int](8)
	for i := 0; i < 5; i++ {
		r.Push(i)
	}
	r.Close()
	if r.Push(99) {
		t.Fatal("Push succeeded after Close")
	}
	for i := 0; i < 5; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("drain Pop() = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop() after drain reported a value")
	}
	// And again: closed-and-drained is stable.
	if _, ok := r.Pop(); ok {
		t.Fatal("second Pop() after drain reported a value")
	}
}

// TestBlockedProducerUnblocksOnPop fills the ring, blocks the producer,
// and verifies a consumer pop unblocks it. Run with -race: the value
// handoff across the full/not-full edge is the contested path.
func TestBlockedProducerUnblocksOnPop(t *testing.T) {
	r := New[int](2)
	r.Push(0)
	r.Push(1)
	pushed := make(chan bool)
	go func() {
		pushed <- r.Push(2) // blocks: ring is full
	}()
	select {
	case <-pushed:
		t.Fatal("Push returned while the ring was full")
	case <-time.After(20 * time.Millisecond):
	}
	if v, ok := r.Pop(); !ok || v != 0 {
		t.Fatalf("Pop() = %d,%v, want 0,true", v, ok)
	}
	if ok := <-pushed; !ok {
		t.Fatal("blocked Push reported closed after space was freed")
	}
	for want := 1; want <= 2; want++ {
		if v, ok := r.Pop(); !ok || v != want {
			t.Fatalf("Pop() = %d,%v, want %d,true", v, ok, want)
		}
	}
}

// TestBlockedProducerUnblocksOnClose verifies Close wakes a producer
// blocked on a full ring and that the refused value is not enqueued.
func TestBlockedProducerUnblocksOnClose(t *testing.T) {
	r := New[int](2)
	r.Push(0)
	r.Push(1)
	pushed := make(chan bool)
	go func() {
		pushed <- r.Push(2)
	}()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	if ok := <-pushed; ok {
		t.Fatal("Push on a closed ring reported success")
	}
	// The two accepted values drain; the refused one never appears.
	for want := 0; want <= 1; want++ {
		if v, ok := r.Pop(); !ok || v != want {
			t.Fatalf("Pop() = %d,%v, want %d,true", v, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("refused value appeared after close")
	}
}

// TestBlockedConsumerUnblocksOnClose verifies Close wakes a consumer
// blocked on an empty ring.
func TestBlockedConsumerUnblocksOnClose(t *testing.T) {
	r := New[int](2)
	done := make(chan bool)
	go func() {
		_, ok := r.Pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	if ok := <-done; ok {
		t.Fatal("Pop on closed empty ring reported a value")
	}
}

// TestOrderEqualsChannel is the property test for the bounded-queue
// replacement: a producer/consumer pair running the same randomized
// push schedule through a Ring and through a Go channel (the replaced
// queue) must deliver identical sequences — same values, same order,
// nothing lost or duplicated — including when the producer closes
// mid-stream with values in flight.
func TestOrderEqualsChannel(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 << (1 + rng.Intn(5)) // 2..32
		n := 200 + rng.Intn(800)

		run := func(push func(int) bool, closeQ func(), pop func() (int, bool)) []int {
			var got []int
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					v, ok := pop()
					if !ok {
						return
					}
					got = append(got, v)
				}
			}()
			prng := rand.New(rand.NewSource(seed * 7))
			for i := 0; i < n; i++ {
				if !push(i) {
					t.Fatalf("seed %d: push %d refused", seed, i)
				}
				if prng.Intn(16) == 0 {
					time.Sleep(time.Microsecond) // let the consumer drain sometimes
				}
			}
			closeQ()
			wg.Wait()
			return got
		}

		r := New[int](capacity)
		fromRing := run(r.Push, r.Close, r.Pop)

		ch := make(chan int, r.Cap())
		fromChan := run(
			func(v int) bool { ch <- v; return true },
			func() { close(ch) },
			func() (int, bool) { v, ok := <-ch; return v, ok },
		)

		if len(fromRing) != n || len(fromChan) != n {
			t.Fatalf("seed %d: delivered ring=%d chan=%d, want %d", seed, len(fromRing), len(fromChan), n)
		}
		for i := range fromRing {
			if fromRing[i] != fromChan[i] {
				t.Fatalf("seed %d: delivery order diverges at %d: ring=%d chan=%d",
					seed, i, fromRing[i], fromChan[i])
			}
		}
	}
}

// TestConcurrentThroughput hammers one producer against one consumer
// across the full API (mixed blocking and Try variants) under -race.
func TestConcurrentThroughput(t *testing.T) {
	r := New[uint64](16)
	const n = 100_000
	var wg sync.WaitGroup
	wg.Add(1)
	var sum, count uint64
	go func() {
		defer wg.Done()
		for {
			v, ok := r.Pop()
			if !ok {
				return
			}
			sum += v
			count++
			// Opportunistically drain with the non-blocking variant too.
			if v, ok := r.TryPop(); ok {
				sum += v
				count++
			}
		}
	}()
	var want uint64
	for i := uint64(1); i <= n; i++ {
		want += i
		if !r.TryPush(i) {
			if !r.Push(i) {
				t.Fatal("Push refused on open ring")
			}
		}
	}
	r.Close()
	wg.Wait()
	if count != n || sum != want {
		t.Fatalf("consumer saw %d values sum %d, want %d values sum %d", count, sum, n, want)
	}
}

// TestPushAfterCloseRefuses pins the producer-side close contract.
func TestPushAfterCloseRefuses(t *testing.T) {
	r := New[int](4)
	r.Close()
	r.Close() // idempotent
	if r.Push(1) || r.TryPush(1) {
		t.Fatal("push on closed ring accepted a value")
	}
	if !r.Closed() {
		t.Fatal("Closed() = false after Close")
	}
}
