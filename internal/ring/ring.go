// Package ring provides the bounded single-producer/single-consumer
// queue used on the event hot path: the per-shard task queues of the
// detection pipeline and the per-source batch queues of the ingest
// supervisor. It replaces Go channels (internally a mutex-guarded
// circular buffer) on paths where the producer and consumer are known
// and allocation-free steady-state operation is required: a Ring never
// allocates after construction, and the uncontended Push/Pop fast path
// is two atomic loads, one slot write and one atomic store — no lock
// acquisition at all.
//
// # Ownership and concurrency contract
//
// A Ring is safe for exactly one concurrent producer and one concurrent
// consumer:
//
//   - The producer side (Push, TryPush, Close) must be serialized by the
//     caller: one goroutine, or several goroutines holding a caller-owned
//     lock. The pipeline serializes submitters with a per-shard mutex;
//     the ingest supervisor's producer is the single dial-reader
//     goroutine (or hub callbacks under the source's queue lock).
//   - The consumer side (Pop, TryPop) must likewise be serialized; in
//     this repo every ring has exactly one consumer goroutine.
//
// Close is a producer-side operation: after Close, Push/TryPush return
// false, while the consumer drains the remaining items and then sees
// Pop return ok=false. Values already pushed are never lost — close
// semantics match a closed Go channel's.
//
// Memory ordering: the slot write in Push happens-before the matching
// read in Pop (the tail store/load pair is a release/acquire edge via
// sync/atomic), so values transfer between goroutines without extra
// synchronization, and the race detector understands the handoff.
package ring

import (
	"sync/atomic"
)

// Ring is a bounded single-producer/single-consumer queue. The zero
// value is not usable; use New.
type Ring[T any] struct {
	buf  []T
	mask uint64

	// head is the consumer cursor (next slot to pop); tail the producer
	// cursor (next slot to push). tail-head is the occupancy. Padded to
	// separate cache lines so the producer's tail stores do not
	// false-share with the consumer's head stores.
	head atomic.Uint64
	_    [56]byte
	tail atomic.Uint64
	_    [56]byte

	closed atomic.Bool
	// done is closed by Close and wakes any blocked Push/Pop.
	done chan struct{}
	// notEmpty/notFull carry at most one wake token each: the producer
	// tokens notEmpty after a push, the consumer tokens notFull after a
	// pop. With one waiter per side a single-token channel cannot lose a
	// wakeup: the waiter re-checks the cursors in a loop after every
	// receive.
	notEmpty chan struct{}
	notFull  chan struct{}
}

// New returns a ring with capacity rounded up to the next power of two
// (minimum 2).
func New[T any](capacity int) *Ring[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Ring[T]{
		buf:      make([]T, n),
		mask:     uint64(n - 1),
		done:     make(chan struct{}),
		notEmpty: make(chan struct{}, 1),
		notFull:  make(chan struct{}, 1),
	}
}

// Cap reports the ring's fixed capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len reports the current occupancy. It is exact when called from the
// producer or consumer goroutine and a point-in-time estimate otherwise
// (the metrics scrape path).
func (r *Ring[T]) Len() int {
	t := r.tail.Load()
	h := r.head.Load()
	if t < h { // torn read under concurrent pop; clamp
		return 0
	}
	return int(t - h)
}

// Closed reports whether Close has been called.
func (r *Ring[T]) Closed() bool { return r.closed.Load() }

// TryPush appends v if there is room, reporting success. It returns
// false when the ring is full or closed.
func (r *Ring[T]) TryPush(v T) bool {
	if r.closed.Load() {
		return false
	}
	t := r.tail.Load()
	if t-r.head.Load() > r.mask {
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	r.wake(r.notEmpty)
	return true
}

// Push appends v, blocking while the ring is full. It reports false —
// without having enqueued v — once the ring is closed.
func (r *Ring[T]) Push(v T) bool {
	for {
		if r.closed.Load() {
			return false
		}
		t := r.tail.Load()
		if t-r.head.Load() <= r.mask {
			r.buf[t&r.mask] = v
			r.tail.Store(t + 1)
			r.wake(r.notEmpty)
			return true
		}
		select {
		case <-r.notFull:
		case <-r.done:
		}
	}
}

// TryPop removes the oldest value if one is buffered. ok is false when
// the ring is currently empty (closed or not).
func (r *Ring[T]) TryPop() (v T, ok bool) {
	h := r.head.Load()
	if r.tail.Load() == h {
		return v, false
	}
	return r.take(h), true
}

// Pop removes the oldest value, blocking while the ring is empty. After
// Close it keeps returning buffered values until the ring is drained,
// then reports ok=false — the consumer never loses an accepted value.
func (r *Ring[T]) Pop() (v T, ok bool) {
	for {
		h := r.head.Load()
		if r.tail.Load() != h {
			return r.take(h), true
		}
		if r.closed.Load() {
			// Closed, but re-check emptiness with a fresh tail: the
			// producer's final pushes happen-before its Close, so a
			// closed observation with a stale tail must reload before
			// declaring the ring drained.
			if r.tail.Load() != h {
				continue
			}
			return v, false
		}
		select {
		case <-r.notEmpty:
		case <-r.done:
		}
	}
}

// take pops the slot at h; the caller has verified it is occupied.
func (r *Ring[T]) take(h uint64) T {
	var zero T
	v := r.buf[h&r.mask]
	// Clear the slot so the ring does not pin pooled batches (or their
	// arenas) past consumption.
	r.buf[h&r.mask] = zero
	r.head.Store(h + 1)
	r.wake(r.notFull)
	return v
}

// wake deposits a token without blocking; a full token channel already
// guarantees the waiter will re-check.
func (r *Ring[T]) wake(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// Close marks the ring closed and wakes blocked producers and consumers.
// It belongs to the producer side: callers must serialize it with their
// pushes (push-after-close returns false, but a concurrent
// push-racing-close would race on the buffered values' visibility).
// Idempotent.
func (r *Ring[T]) Close() {
	if r.closed.CompareAndSwap(false, true) {
		close(r.done)
	}
}
