package controller

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"artemis/internal/prefix"
)

// The REST surface mirrors an ONOS-style application API:
//
//	POST /v1/routes  {"prefix":"10.0.0.0/24","action":"announce"}
//	GET  /v1/routes  → applied actions
//
// RESTClient implements RouteInjector over this API so an ARTEMIS daemon
// can drive a controller in another process.

type wireAction struct {
	Prefix      string  `json:"prefix"`
	Action      string  `json:"action"`
	RequestedAt float64 `json:"requested_at,omitempty"`
	AppliedAt   float64 `json:"applied_at,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// RESTServer exposes a Controller over HTTP.
type RESTServer struct{ ctrl *Controller }

// NewRESTServer wraps a controller.
func NewRESTServer(ctrl *Controller) *RESTServer { return &RESTServer{ctrl: ctrl} }

// ServeHTTP implements the API.
func (s *RESTServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/routes" {
		http.NotFound(w, r)
		return
	}
	switch r.Method {
	case http.MethodPost:
		var req wireAction
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body", http.StatusBadRequest)
			return
		}
		p, err := prefix.Parse(req.Prefix)
		if err != nil {
			http.Error(w, "bad prefix", http.StatusBadRequest)
			return
		}
		switch ActionKind(req.Action) {
		case ActionAnnounce:
			err = s.ctrl.Announce(p)
		case ActionWithdraw:
			err = s.ctrl.Withdraw(p)
		default:
			http.Error(w, "unknown action", http.StatusBadRequest)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	case http.MethodGet:
		actions := s.ctrl.Actions()
		out := make([]wireAction, 0, len(actions))
		for _, a := range actions {
			wa := wireAction{
				Prefix:      a.Prefix.String(),
				Action:      string(a.Kind),
				RequestedAt: a.RequestedAt.Seconds(),
				AppliedAt:   a.AppliedAt.Seconds(),
			}
			if a.Err != nil {
				wa.Error = a.Err.Error()
			}
			out = append(out, wa)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// RESTClient drives a remote controller; it implements RouteInjector so
// the ARTEMIS mitigation service can use it directly.
type RESTClient struct{ baseURL string }

// NewRESTClient points at a RESTServer base URL (http://host:port).
func NewRESTClient(baseURL string) *RESTClient { return &RESTClient{baseURL: baseURL} }

// AnnounceRoute implements RouteInjector.
func (c *RESTClient) AnnounceRoute(p prefix.Prefix) error {
	return c.post(wireAction{Prefix: p.String(), Action: string(ActionAnnounce)})
}

// WithdrawRoute implements RouteInjector.
func (c *RESTClient) WithdrawRoute(p prefix.Prefix) error {
	return c.post(wireAction{Prefix: p.String(), Action: string(ActionWithdraw)})
}

func (c *RESTClient) post(a wireAction) error {
	b, err := json.Marshal(a)
	if err != nil {
		return err
	}
	resp, err := http.Post(c.baseURL+"/v1/routes", "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("controller: HTTP %d", resp.StatusCode)
	}
	return nil
}

var _ RouteInjector = (*RESTClient)(nil)
