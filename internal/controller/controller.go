// Package controller reproduces the SDN controller ARTEMIS runs over
// (§2: "a network controller that supports BGP, like ONOS or
// OpenDayLight"). The controller owns the AS's BGP route origination: the
// mitigation service asks it to announce or withdraw prefixes, it applies
// a configuration latency (the ~15 s the paper measured between detection
// and the de-aggregated announcements leaving the routers), and pushes the
// routes through a southbound — the simulated AS node in experiments, or a
// live bgpd session in the demo.
package controller

import (
	"fmt"
	"sync"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/bgpd"
	"artemis/internal/prefix"
	"artemis/internal/simnet"
	"artemis/internal/stats"
)

// RouteInjector is the controller's southbound: something that can
// originate and withdraw prefixes on behalf of the AS.
type RouteInjector interface {
	AnnounceRoute(p prefix.Prefix) error
	WithdrawRoute(p prefix.Prefix) error
}

// DefaultConfigDelay is the configuration/propagation latency inside the
// controller and routers — §3 reports ~15 s from mitigation trigger to the
// de-aggregated prefixes being announced.
const DefaultConfigDelay = 15 * time.Second

// ActionKind distinguishes controller operations.
type ActionKind string

// Controller action kinds.
const (
	ActionAnnounce ActionKind = "announce"
	ActionWithdraw ActionKind = "withdraw"
)

// Action is one recorded controller operation, successful or failed.
type Action struct {
	Kind ActionKind
	// Prefix affected.
	Prefix prefix.Prefix
	// RequestedAt / AppliedAt bracket the configuration latency. For a
	// failed action AppliedAt is when the southbound rejected it.
	RequestedAt, AppliedAt time.Duration
	// Err is the southbound failure; nil when the route was applied. A
	// failed action is recorded — not silently discarded — so operators
	// and the mitigation service can see which announcements never left
	// the routers.
	Err error
}

// Failed reports whether the southbound rejected the operation.
func (a Action) Failed() bool { return a.Err != nil }

// Controller schedules route changes onto a southbound injector after a
// configuration delay.
type Controller struct {
	inj         RouteInjector
	configDelay time.Duration
	// now and after abstract time so the controller runs both on the
	// simulation engine and on the wall clock.
	now   func() time.Duration
	after func(time.Duration, func())

	mu       sync.Mutex
	actions  []Action
	onResult []func(Action)
	failures stats.Counter
}

// Option configures a Controller.
type Option func(*Controller)

// WithConfigDelay overrides the configuration latency.
func WithConfigDelay(d time.Duration) Option {
	return func(c *Controller) { c.configDelay = d }
}

// New builds a controller over an injector using the given clock. For
// simulation use NewSim; for wall-clock use NewReal.
func New(inj RouteInjector, now func() time.Duration, after func(time.Duration, func()), opts ...Option) *Controller {
	c := &Controller{inj: inj, configDelay: DefaultConfigDelay, now: now, after: after}
	for _, o := range opts {
		o(c)
	}
	return c
}

// NewSim builds a controller driven by the simulation engine's clock.
func NewSim(nw *simnet.Network, inj RouteInjector, opts ...Option) *Controller {
	return New(inj, nw.Engine.Now, nw.Engine.After, opts...)
}

// NewReal builds a controller on the wall clock (live demo mode).
func NewReal(inj RouteInjector, opts ...Option) *Controller {
	start := time.Now()
	return New(inj,
		func() time.Duration { return time.Since(start) },
		func(d time.Duration, fn func()) { time.AfterFunc(d, fn) },
		opts...)
}

// Announce asks the controller to originate p. The route leaves the
// routers after the configuration delay.
func (c *Controller) Announce(p prefix.Prefix) error {
	return c.apply(ActionAnnounce, p)
}

// Withdraw asks the controller to stop originating p.
func (c *Controller) Withdraw(p prefix.Prefix) error {
	return c.apply(ActionWithdraw, p)
}

func (c *Controller) apply(kind ActionKind, p prefix.Prefix) error {
	req := c.now()
	c.after(c.configDelay, func() {
		var err error
		if kind == ActionAnnounce {
			err = c.inj.AnnounceRoute(p)
		} else {
			err = c.inj.WithdrawRoute(p)
		}
		if err != nil {
			c.failures.Inc()
		}
		act := Action{Kind: kind, Prefix: p, RequestedAt: req, AppliedAt: c.now(), Err: err}
		c.mu.Lock()
		c.actions = append(c.actions, act)
		listeners := make([]func(Action), len(c.onResult))
		copy(listeners, c.onResult)
		c.mu.Unlock()
		for _, fn := range listeners {
			fn(act)
		}
	})
	return nil
}

// OnResult registers a callback invoked after each action is attempted
// (successful or failed). The southbound is asynchronous — Announce
// returns before the injector runs — so this is the only way a caller
// learns that an announcement it requested never left the routers; the
// mitigation service uses it to mark incidents failed and retryable.
func (c *Controller) OnResult(fn func(Action)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onResult = append(c.onResult, fn)
}

// Actions returns the recorded operations, oldest first, failed ones
// included (check Action.Failed).
func (c *Controller) Actions() []Action {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Action(nil), c.actions...)
}

// Applied returns only the operations the southbound accepted.
func (c *Controller) Applied() []Action {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Action, 0, len(c.actions))
	for _, a := range c.actions {
		if a.Err == nil {
			out = append(out, a)
		}
	}
	return out
}

// Failures reports how many operations the southbound rejected.
func (c *Controller) Failures() int64 { return c.failures.Load() }

// SimInjector originates routes at one or more ASes of the simulated
// network (the owner's border routers / PEERING sites).
type SimInjector struct {
	nw   *simnet.Network
	ases []bgp.ASN
}

// NewSimInjector validates the target ASes and returns the injector.
func NewSimInjector(nw *simnet.Network, ases ...bgp.ASN) (*SimInjector, error) {
	if len(ases) == 0 {
		return nil, fmt.Errorf("controller: no target ASes")
	}
	for _, asn := range ases {
		if nw.Node(asn) == nil {
			return nil, fmt.Errorf("controller: unknown AS %v", asn)
		}
	}
	return &SimInjector{nw: nw, ases: ases}, nil
}

// AnnounceRoute implements RouteInjector.
func (s *SimInjector) AnnounceRoute(p prefix.Prefix) error {
	for _, asn := range s.ases {
		if err := s.nw.Announce(asn, p); err != nil {
			return err
		}
	}
	return nil
}

// WithdrawRoute implements RouteInjector.
func (s *SimInjector) WithdrawRoute(p prefix.Prefix) error {
	for _, asn := range s.ases {
		if err := s.nw.Withdraw(asn, p); err != nil {
			return err
		}
	}
	return nil
}

// BGPInjector originates routes by sending UPDATEs over live bgpd
// sessions to the AS's border routers.
type BGPInjector struct {
	mu       sync.Mutex
	sessions []*bgpd.Session
	localAS  bgp.ASN
	nextHop  prefix.Addr
}

// NewBGPInjector wraps established sessions.
func NewBGPInjector(localAS bgp.ASN, nextHop prefix.Addr, sessions ...*bgpd.Session) *BGPInjector {
	return &BGPInjector{sessions: sessions, localAS: localAS, nextHop: nextHop}
}

// AnnounceRoute implements RouteInjector over BGP.
func (b *BGPInjector) AnnounceRoute(p prefix.Prefix) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range b.sessions {
		if err := s.Announce([]bgp.ASN{b.localAS}, b.nextHop, p); err != nil {
			return err
		}
	}
	return nil
}

// WithdrawRoute implements RouteInjector over BGP.
func (b *BGPInjector) WithdrawRoute(p prefix.Prefix) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range b.sessions {
		if err := s.WithdrawPrefixes(p); err != nil {
			return err
		}
	}
	return nil
}
