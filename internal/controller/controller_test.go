package controller

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/bgpd"
	"artemis/internal/prefix"
	"artemis/internal/sim"
	"artemis/internal/simnet"
	"artemis/internal/topo"
)

func simSetup(t *testing.T) (*simnet.Network, *sim.Engine) {
	t.Helper()
	tp := topo.Line(3, time.Millisecond)
	eng := sim.NewEngine(1)
	nw := simnet.New(tp, eng, simnet.Config{MRAI: simnet.Disabled, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond})
	return nw, eng
}

func TestSimControllerAppliesAfterConfigDelay(t *testing.T) {
	nw, eng := simSetup(t)
	inj, err := NewSimInjector(nw, topo.FirstASN)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewSim(nw, inj) // default 15s config delay
	p := prefix.MustParse("10.0.0.0/24")
	if err := ctrl.Announce(p); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(14 * time.Second)
	if _, ok := nw.Node(topo.FirstASN).BestRoute(p); ok {
		t.Fatal("route applied before config delay elapsed")
	}
	eng.Run()
	if _, ok := nw.Node(topo.FirstASN + 2).BestRoute(p); !ok {
		t.Fatal("route not propagated after config delay")
	}
	acts := ctrl.Actions()
	if len(acts) != 1 || acts[0].Kind != ActionAnnounce {
		t.Fatalf("actions = %+v", acts)
	}
	if lag := acts[0].AppliedAt - acts[0].RequestedAt; lag != 15*time.Second {
		t.Fatalf("config latency = %v, want 15s", lag)
	}
}

func TestControllerWithdraw(t *testing.T) {
	nw, eng := simSetup(t)
	inj, _ := NewSimInjector(nw, topo.FirstASN)
	ctrl := NewSim(nw, inj, WithConfigDelay(time.Second))
	p := prefix.MustParse("10.0.0.0/24")
	ctrl.Announce(p)
	eng.Run()
	ctrl.Withdraw(p)
	eng.Run()
	if _, ok := nw.Node(topo.FirstASN + 2).BestRoute(p); ok {
		t.Fatal("route still present after withdraw")
	}
}

func TestSimInjectorValidation(t *testing.T) {
	nw, _ := simSetup(t)
	if _, err := NewSimInjector(nw); err == nil {
		t.Fatal("empty AS list accepted")
	}
	if _, err := NewSimInjector(nw, 9999); err == nil {
		t.Fatal("unknown AS accepted")
	}
}

func TestMultiSiteInjection(t *testing.T) {
	nw, eng := simSetup(t)
	inj, _ := NewSimInjector(nw, topo.FirstASN, topo.FirstASN+2)
	ctrl := NewSim(nw, inj, WithConfigDelay(time.Second))
	p := prefix.MustParse("10.0.0.0/24")
	ctrl.Announce(p)
	eng.Run()
	for _, off := range []bgp.ASN{0, 2} {
		r, ok := nw.Node(topo.FirstASN + off).BestRoute(p)
		if !ok || !r.Local() {
			t.Fatalf("site +%d should originate locally: %v %v", off, r, ok)
		}
	}
}

// brokenInjector rejects everything — the southbound-down scenario.
type brokenInjector struct{ calls int }

func (b *brokenInjector) AnnounceRoute(prefix.Prefix) error {
	b.calls++
	return errors.New("session down")
}
func (b *brokenInjector) WithdrawRoute(prefix.Prefix) error {
	b.calls++
	return errors.New("session down")
}

// TestFailedActionsRecorded: injector failures must surface in Actions
// (flagged, with the error) and in the failure counter — not vanish.
func TestFailedActionsRecorded(t *testing.T) {
	_, eng := simSetup(t)
	inj := &brokenInjector{}
	ctrl := New(inj, eng.Now, eng.After, WithConfigDelay(time.Second))
	var results []Action
	ctrl.OnResult(func(a Action) { results = append(results, a) })
	p := prefix.MustParse("10.0.0.0/24")
	if err := ctrl.Announce(p); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(results) != 1 || results[0].Err == nil {
		t.Fatalf("OnResult not notified of the failure: %+v", results)
	}
	acts := ctrl.Actions()
	if len(acts) != 1 || !acts[0].Failed() || acts[0].Err == nil {
		t.Fatalf("failed action not recorded: %+v", acts)
	}
	if acts[0].AppliedAt != time.Second {
		t.Fatalf("failure time = %v", acts[0].AppliedAt)
	}
	if got := ctrl.Failures(); got != 1 {
		t.Fatalf("failures = %d, want 1", got)
	}
	if applied := ctrl.Applied(); len(applied) != 0 {
		t.Fatalf("failed action leaked into Applied: %+v", applied)
	}
}

func TestRESTServerAndClient(t *testing.T) {
	nw, eng := simSetup(t)
	inj, _ := NewSimInjector(nw, topo.FirstASN)
	ctrl := NewSim(nw, inj, WithConfigDelay(time.Second))
	hs := httptest.NewServer(NewRESTServer(ctrl))
	defer hs.Close()

	cli := NewRESTClient(hs.URL)
	p := prefix.MustParse("10.0.0.0/24")
	if err := cli.AnnounceRoute(p); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if _, ok := nw.Node(topo.FirstASN + 2).BestRoute(p); !ok {
		t.Fatal("REST announce did not reach the network")
	}
	if err := cli.WithdrawRoute(p); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if _, ok := nw.Node(topo.FirstASN + 2).BestRoute(p); ok {
		t.Fatal("REST withdraw did not reach the network")
	}
}

func TestRESTServerRejectsGarbage(t *testing.T) {
	nw, _ := simSetup(t)
	inj, _ := NewSimInjector(nw, topo.FirstASN)
	ctrl := NewSim(nw, inj)
	hs := httptest.NewServer(NewRESTServer(ctrl))
	defer hs.Close()

	for _, body := range []string{`not json`, `{"prefix":"bogus","action":"announce"}`, `{"prefix":"10.0.0.0/24","action":"dance"}`} {
		resp, err := http.Post(hs.URL+"/v1/routes", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q → HTTP %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestBGPInjectorSendsUpdates(t *testing.T) {
	got := make(chan int, 4)
	l, err := bgpd.Listen("127.0.0.1:0", bgpd.Config{LocalAS: 65001, RouterID: prefix.AddrFrom4(1)}, func(s *bgpd.Session) {
		go func() {
			for u := range s.Updates() {
				got <- len(u.NLRI) + len(u.Withdrawn)
			}
		}()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	sess, err := bgpd.Dial(l.Addr(), bgpd.Config{LocalAS: 196615, RouterID: prefix.AddrFrom4(2)})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	inj := NewBGPInjector(196615, prefix.MustParseAddr("192.0.2.1"), sess)
	ctrl := NewReal(inj, WithConfigDelay(10*time.Millisecond))
	p := prefix.MustParse("10.0.0.0/24")
	if err := ctrl.Announce(p); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n != 1 {
			t.Fatalf("update carried %d prefixes", n)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("BGP update not delivered")
	}
	acts := ctrl.Actions()
	if len(acts) != 1 {
		t.Fatalf("actions = %+v", acts)
	}
}
