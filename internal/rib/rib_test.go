package rib

import (
	"bytes"
	"strings"
	"testing"

	"artemis/internal/bgp"
	"artemis/internal/bgp/mrt"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

func announce(p string, vp bgp.ASN, path ...bgp.ASN) feedtypes.Event {
	return feedtypes.Event{
		Kind:         feedtypes.Announce,
		Prefix:       prefix.MustParse(p),
		VantagePoint: vp,
		Path:         path,
	}
}

func withdraw(p string, vp bgp.ASN) feedtypes.Event {
	return feedtypes.Event{Kind: feedtypes.Withdraw, Prefix: prefix.MustParse(p), VantagePoint: vp}
}

func TestTableIndices(t *testing.T) {
	tb := New()
	tb.Apply([]feedtypes.Event{
		announce("10.0.0.0/24", 64500, 64500, 100, 666),
		announce("10.0.0.0/24", 64501, 200, 666), // route server, shorter path wins
		announce("10.1.0.0/16", 64500, 64500, 777),
		announce("2001:db8::/32", 64501, 300, 888),
	})
	s := tb.Snapshot()
	if s.PrefixesV4 != 2 || s.PrefixesV6 != 1 || s.Routes != 4 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.AnnouncesV4 != 3 || s.AnnouncesV6 != 1 || s.WithdrawsV4 != 0 {
		t.Fatalf("movement = %+v", s)
	}
	if s.MasksV4[24] != 1 || s.MasksV4[16] != 1 || s.MasksV6[32] != 1 {
		t.Fatalf("masks = v4[24]=%d v4[16]=%d v6[32]=%d", s.MasksV4[24], s.MasksV4[16], s.MasksV6[32])
	}
	// Best for 10.0.0.0/24 is the route-server path (length 2 < 3).
	res, ok := tb.Lookup(prefix.MustParse("10.0.0.1/32"))
	if !ok || res.Matched != prefix.MustParse("10.0.0.0/24") || res.VantagePoint != 64501 {
		t.Fatalf("lookup = %+v ok=%v", res, ok)
	}
	if res.Origin != 666 || res.Candidates != 2 {
		t.Fatalf("lookup detail = %+v", res)
	}
	if v4, v6 := tb.OriginCounts(666); v4 != 1 || v6 != 0 {
		t.Fatalf("origin 666 counts = %d,%d", v4, v6)
	}
	if v4, v6 := tb.OriginCounts(888); v4 != 0 || v6 != 1 {
		t.Fatalf("origin 888 counts = %d,%d", v4, v6)
	}

	// Withdrawing the winning candidate falls back to the other; the origin
	// index follows the best route.
	tb.Apply([]feedtypes.Event{withdraw("10.0.0.0/24", 64501)})
	res, ok = tb.Lookup(prefix.MustParse("10.0.0.0/24"))
	if !ok || res.VantagePoint != 64500 || res.Candidates != 1 {
		t.Fatalf("after withdraw: %+v ok=%v", res, ok)
	}
	tb.Apply([]feedtypes.Event{withdraw("10.0.0.0/24", 64500)})
	if _, ok := tb.Lookup(prefix.MustParse("10.0.0.0/24")); ok {
		t.Fatal("prefix should be gone")
	}
	s = tb.Snapshot()
	if s.PrefixesV4 != 1 || s.Routes != 2 || s.WithdrawsV4 != 2 || s.MasksV4[24] != 0 {
		t.Fatalf("after withdraws: %+v", s)
	}
	if v4, _ := tb.OriginCounts(666); v4 != 0 {
		t.Fatalf("origin 666 still counted: %d", v4)
	}
}

func TestApplyCopiesPooledPaths(t *testing.T) {
	tb := New()
	path := []bgp.ASN{64500, 100, 666}
	tb.Apply([]feedtypes.Event{announce("10.0.0.0/24", 64500, path...)})
	path[2] = 999 // the pool reuses event storage after delivery
	r, ok := tb.Resolve(prefix.MustParseAddr("10.0.0.1"))
	if !ok || r.Origin(0) != 666 {
		t.Fatalf("retained path aliases pooled storage: %v", r)
	}
}

func TestSynthLoadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	cfg := SynthConfig{V4: 400, V6: 100, Peers: 4, RoutesPerPrefix: 2, Seed: 7}
	if err := WriteSynth(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	tb := New()
	st, err := Load(bytes.NewReader(buf.Bytes()), tb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Peers != 4 || st.Entries != 500 || st.Routes != 1000 || st.Skipped != 0 {
		t.Fatalf("load stats = %+v", st)
	}
	if st.V4Routes != 800 || st.V6Routes != 200 {
		t.Fatalf("family split = %+v", st)
	}
	s := tb.Snapshot()
	if s.PrefixesV4 != 400 || s.PrefixesV6 != 100 || s.Routes != 1000 {
		t.Fatalf("table after load = %+v", s)
	}
	// Bootstrap is not movement.
	if s.AnnouncesV4 != 0 || s.AnnouncesV6 != 0 {
		t.Fatalf("bootstrap counted as movement: %+v", s)
	}
	// Determinism: the same config produces the same bytes.
	var buf2 bytes.Buffer
	if err := WriteSynth(&buf2, cfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("synthetic snapshot is not deterministic")
	}
}

func TestLoadRequiresPeerIndexTable(t *testing.T) {
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	err := w.Write(&mrt.RIBEntry{
		Timestamp: synthEpoch,
		Prefix:    prefix.MustParse("10.0.0.0/24"),
		Routes: []mrt.RIBPeerRoute{{PeerIndex: 0, Originated: synthEpoch, Attrs: []bgp.PathAttr{
			&bgp.OriginAttr{Value: bgp.OriginIGP},
			bgp.NewASPath([]bgp.ASN{100, 666}),
			&bgp.NextHopAttr{Addr: prefix.MustParseAddr("192.0.2.1")},
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(bytes.NewReader(buf.Bytes()), New())
	if err == nil || !strings.Contains(err.Error(), "PEER_INDEX_TABLE") {
		t.Fatalf("err = %v, want RIB-before-peer-index error", err)
	}
}

func TestStatsWriteProm(t *testing.T) {
	tb := New()
	tb.Apply([]feedtypes.Event{announce("10.0.0.0/24", 64500, 64500, 666)})
	var b strings.Builder
	tb.Snapshot().WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		`artemis_rib_prefixes{family="4"} 1`,
		`artemis_rib_routes 1`,
		`artemis_rib_moves_total{family="4",kind="announce"} 1`,
		`artemis_rib_mask_prefixes{family="4",mask="24"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, `mask="23"`) {
		t.Fatal("zero mask buckets should be omitted")
	}
}

func TestASNames(t *testing.T) {
	n, err := ParseASNames([]byte(`# asn,name,locale
64500,"EXAMPLE-NET Example, Inc",US
AS64501,OTHER-NET,DE
64502,NO-LOCALE
`))
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 3 {
		t.Fatalf("Len = %d", n.Len())
	}
	if v, ok := n.Lookup(64500); !ok || v.Name != "EXAMPLE-NET Example, Inc" || v.Locale != "US" {
		t.Fatalf("64500 = %+v ok=%v", v, ok)
	}
	if v, ok := n.Lookup(64501); !ok || v.Name != "OTHER-NET" || v.Locale != "DE" {
		t.Fatalf("64501 = %+v ok=%v", v, ok)
	}
	if v, ok := n.Lookup(64502); !ok || v.Locale != "" {
		t.Fatalf("64502 = %+v ok=%v", v, ok)
	}
	if _, ok := n.Lookup(1); ok {
		t.Fatal("unknown ASN resolved")
	}
	var nilNames *ASNames
	if _, ok := nilNames.Lookup(1); ok || nilNames.Len() != 0 {
		t.Fatal("nil ASNames not inert")
	}
	if _, err := ParseASNames([]byte("notanasn,X,Y\n")); err == nil {
		t.Fatal("bad ASN accepted")
	}
}
