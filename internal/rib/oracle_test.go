package rib

import (
	"bytes"
	"io"
	"math/rand"
	"slices"
	"testing"

	"artemis/internal/bgp"
	"artemis/internal/bgp/mrt"
	"artemis/internal/prefix"
	"artemis/internal/route"
)

// naiveTable is the oracle: a flat map of per-prefix candidate sets with
// linear-scan longest-prefix match — no trie, no incremental indices.
type naiveTable struct {
	cands map[prefix.Prefix]map[bgp.ASN][]bgp.ASN // prefix -> vantage point -> path
}

func newNaive() *naiveTable {
	return &naiveTable{cands: make(map[prefix.Prefix]map[bgp.ASN][]bgp.ASN)}
}

func (n *naiveTable) insert(p prefix.Prefix, vp bgp.ASN, path []bgp.ASN) {
	m := n.cands[p]
	if m == nil {
		m = make(map[bgp.ASN][]bgp.ASN)
		n.cands[p] = m
	}
	m[vp] = append([]bgp.ASN(nil), path...)
}

// best recomputes the selected route for p from scratch.
func (n *naiveTable) best(p prefix.Prefix) *route.Route {
	var b *route.Route
	for vp, path := range n.cands[p] {
		r := &route.Route{Prefix: p, Path: path, From: vp}
		if b == nil || route.Better(r, b) {
			b = r
		}
	}
	return b
}

// resolve is linear-scan LPM over every resident prefix.
func (n *naiveTable) resolve(addr prefix.Addr) *route.Route {
	var matched prefix.Prefix
	found := false
	for p := range n.cands {
		if !p.ContainsAddr(addr) {
			continue
		}
		if !found || p.Bits() > matched.Bits() {
			matched, found = p, true
		}
	}
	if !found {
		return nil
	}
	return n.best(matched)
}

// resolveBestFor is linear-scan LPM for a prefix query.
func (n *naiveTable) resolveBestFor(q prefix.Prefix) *route.Route {
	var matched prefix.Prefix
	found := false
	for p := range n.cands {
		if !p.Contains(q) {
			continue
		}
		if !found || p.Bits() > matched.Bits() {
			matched, found = p, true
		}
	}
	if !found {
		return nil
	}
	return n.best(matched)
}

// TestLoaderOracle loads a randomized mixed-family snapshot through the
// streaming bootstrap and checks Resolve/ResolveBestFor against a naive
// linear scan over the same records, for random addresses and prefixes.
func TestLoaderOracle(t *testing.T) {
	var buf bytes.Buffer
	cfg := SynthConfig{V4: 1500, V6: 400, Peers: 6, RoutesPerPrefix: 3, Seed: 42}
	if err := WriteSynth(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	tb := New()
	if _, err := Load(bytes.NewReader(data), tb); err != nil {
		t.Fatal(err)
	}

	// Feed the identical records to the oracle.
	oracle := newNaive()
	mr := mrt.NewReader(bytes.NewReader(data))
	var peers mrt.PeerResolver
	var allPrefixes []prefix.Prefix
	for {
		rec, err := mr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		peers.Observe(rec)
		re, ok := rec.(*mrt.RIBEntry)
		if !ok {
			continue
		}
		allPrefixes = append(allPrefixes, re.Prefix)
		for i := range re.Routes {
			peer, err := peers.Peer(re.Routes[i].PeerIndex)
			if err != nil {
				t.Fatal(err)
			}
			u := bgp.Update{Attrs: re.Routes[i].Attrs}
			path, ok := u.ASPath()
			if !ok {
				t.Fatalf("synth route without path for %s", re.Prefix)
			}
			oracle.insert(re.Prefix, peer.AS, path)
		}
	}

	sameRoute := func(a, b *route.Route) bool {
		if a == nil || b == nil {
			return a == nil && b == nil
		}
		// The oracle doesn't model Rel; compare selection-relevant content.
		return a.Prefix == b.Prefix && a.From == b.From && slices.Equal(a.Path, b.Path)
	}

	rnd := rand.New(rand.NewSource(99))
	queryAddr := func(i int) prefix.Addr {
		p := allPrefixes[rnd.Intn(len(allPrefixes))]
		a := p.Addr()
		if i%3 == 0 {
			// Also probe addresses off the prefix base (inside or outside).
			if p.Is6() {
				hi, lo := a.Uint128()
				a = prefix.AddrFrom16(hi, lo+uint64(rnd.Intn(1<<16)))
			} else {
				a = prefix.AddrFrom4(a.V4() + uint32(rnd.Intn(1<<9)))
			}
		}
		return a
	}
	for i := 0; i < 4000; i++ {
		addr := queryAddr(i)
		want := oracle.resolve(addr)
		got, ok := tb.Resolve(addr)
		if !ok {
			got = nil
		}
		if !sameRoute(got, want) {
			t.Fatalf("Resolve(%s): got %v, want %v", addr, got, want)
		}
	}
	for i := 0; i < 4000; i++ {
		base := allPrefixes[rnd.Intn(len(allPrefixes))]
		bits := base.Bits()
		if d := base.MaxBits() - bits; d > 0 && i%2 == 0 {
			bits += rnd.Intn(d + 1) // a more specific query inside the prefix
		}
		q := prefix.New(base.Addr(), bits)
		want := oracle.resolveBestFor(q)
		got, ok := tb.ResolveBestFor(q)
		if !ok {
			got = nil
		}
		if !sameRoute(got, want) {
			t.Fatalf("ResolveBestFor(%s): got %v, want %v", q, got, want)
		}
	}
}
