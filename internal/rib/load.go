package rib

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/bgp/mrt"
)

// LoadStats describes one bootstrap load.
type LoadStats struct {
	// Peers is the size of the snapshot's PEER_INDEX_TABLE.
	Peers int
	// Entries counts RIB entries (prefixes); Routes counts per-peer routes.
	Entries  int
	Routes   int
	V4Routes int
	V6Routes int
	// Skipped counts routes without a usable AS path.
	Skipped int
	Elapsed time.Duration
}

func (s LoadStats) String() string {
	return fmt.Sprintf("%d routes (%d v4, %d v6) over %d prefixes from %d peers in %v",
		s.Routes, s.V4Routes, s.V6Routes, s.Entries, s.Peers, s.Elapsed.Round(time.Millisecond))
}

// Load streams a TABLE_DUMP_V2 snapshot into t: one pass, no buffering of
// the dump, so a full-table file (~1M v4 + ~220k v6 routes) bootstraps in
// one read without holding the raw bytes resident. The snapshot's
// PEER_INDEX_TABLE must precede its RIB entries (as RFC 6396 requires);
// each route's vantage point is resolved through it, never inferred from
// the AS path. BGP4MP records interleaved in the stream are ignored.
func Load(r io.Reader, t *Table) (LoadStats, error) {
	start := time.Now()
	mr := mrt.NewReader(r)
	var peers mrt.PeerResolver
	var st LoadStats
	for {
		rec, err := mr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, err
		}
		peers.Observe(rec)
		re, ok := rec.(*mrt.RIBEntry)
		if !ok {
			continue
		}
		st.Entries++
		for i := range re.Routes {
			rt := &re.Routes[i]
			peer, err := peers.Peer(rt.PeerIndex)
			if err != nil {
				return st, fmt.Errorf("rib: entry %s: %w", re.Prefix, err)
			}
			u := bgp.Update{Attrs: rt.Attrs}
			path, ok := u.ASPath()
			if !ok || len(path) == 0 {
				st.Skipped++
				continue
			}
			// The parsed path is freshly allocated per record: hand it over
			// without cloning. Bootstrap inserts are not table movement.
			t.insert(re.Prefix, path, peer.AS, false, false)
			st.Routes++
			if re.Prefix.Is6() {
				st.V6Routes++
			} else {
				st.V4Routes++
			}
		}
	}
	st.Peers = peers.Peers()
	st.Elapsed = time.Since(start)
	return st, nil
}

// LoadFile streams the MRT snapshot at path into t.
func LoadFile(path string, t *Table) (LoadStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return LoadStats{}, err
	}
	defer f.Close()
	return Load(bufio.NewReaderSize(f, 1<<20), t)
}
