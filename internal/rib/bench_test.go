package rib

import (
	"bytes"
	"os"
	"runtime"
	"testing"
	"time"

	"artemis/internal/prefix"
)

// benchSnapshot is generated once per process: a 1/250-scale table keeps
// the CI gate run (-benchtime=2000x) inside a sane wall-clock budget while
// preserving the full mask and path-shape mix.
var benchSnapshot []byte

func snapshotBytes(b *testing.B) []byte {
	if benchSnapshot == nil {
		var buf bytes.Buffer
		if err := WriteSynth(&buf, SynthConfig{V4: 4000, V6: 880, Peers: 8, RoutesPerPrefix: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
		benchSnapshot = buf.Bytes()
	}
	return benchSnapshot
}

// BenchmarkRIBLoad streams one synthetic snapshot (4 880 routes, mixed
// v4/v6) into a fresh table per iteration — the bootstrap path end to end:
// MRT decode, peer resolution, selection, index maintenance.
func BenchmarkRIBLoad(b *testing.B) {
	data := snapshotBytes(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := New()
		st, err := Load(bytes.NewReader(data), t)
		if err != nil {
			b.Fatal(err)
		}
		if st.Routes != 4880 {
			b.Fatalf("routes = %d", st.Routes)
		}
	}
}

// TestFullRIBLoadMeasured is the full-scale measurement behind
// docs/PERFORMANCE.md: ~1M v4 + ~220k v6 routes through the streaming
// bootstrap, reporting load time and resident heap. It allocates gigabyte-
// scale state, so it only runs when asked for:
//
//	ARTEMIS_RIB_FULL=1 go test ./internal/rib -run FullRIBLoad -v
//
// By default the snapshot is generated in memory; ARTEMIS_RIB_FIXTURE
// names an on-disk MRT file to measure instead (`make rib-measure` wires
// both up, so a real collector dump at the fixture path is measured
// as-is).
func TestFullRIBLoadMeasured(t *testing.T) {
	if os.Getenv("ARTEMIS_RIB_FULL") == "" {
		t.Skip("set ARTEMIS_RIB_FULL=1 to run the full-table load measurement")
	}
	var data []byte
	synthetic := true
	if path := os.Getenv("ARTEMIS_RIB_FIXTURE"); path != "" {
		var err error
		if data, err = os.ReadFile(path); err != nil {
			t.Fatal(err)
		}
		synthetic = false
		t.Logf("measuring fixture %s (%d MiB)", path, len(data)>>20)
	} else {
		var buf bytes.Buffer
		gen := time.Now()
		if err := WriteSynth(&buf, SynthConfig{V4: 1_000_000, V6: 220_000, Peers: 8, RoutesPerPrefix: 1, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		data = buf.Bytes()
		t.Logf("generated %d MiB snapshot in %v", len(data)>>20, time.Since(gen).Round(time.Millisecond))
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	tb := New()
	st, err := Load(bytes.NewReader(data), tb)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	resident := after.HeapAlloc - before.HeapAlloc
	t.Logf("loaded %s", st)
	t.Logf("resident table heap: %d MiB (%0.f B/route)", resident>>20, float64(resident)/float64(st.Routes))
	if !synthetic {
		t.Logf("table: %+v", tb.Snapshot())
		return
	}
	s := tb.Snapshot()
	if s.PrefixesV4 != 1_000_000 || s.PrefixesV6 != 220_000 {
		t.Fatalf("table sizes = %+v", s)
	}
	// The generator's first /24 and /48 sit at the base of each family's
	// space, so these addresses are certainly covered.
	if _, ok := tb.Resolve(prefix.MustParseAddr("0.0.0.1")); !ok {
		t.Fatal("post-load v4 resolve failed")
	}
	if _, ok := tb.Resolve(prefix.MustParseAddr("2000::1")); !ok {
		t.Fatal("post-load v6 resolve failed")
	}
}
