package rib

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"os"
	"strconv"
	"strings"

	"artemis/internal/bgp"
)

// ASName is the registry identity of an AS — the glass-service asn_name
// shape: a short handle/description plus the registration locale.
type ASName struct {
	Name   string
	Locale string
}

// ASNames maps origin ASNs to names. Immutable after load; share freely.
type ASNames struct {
	m map[bgp.ASN]ASName
}

// Lookup returns the name record for asn.
func (n *ASNames) Lookup(asn bgp.ASN) (ASName, bool) {
	if n == nil {
		return ASName{}, false
	}
	v, ok := n.m[asn]
	return v, ok
}

// Len returns the number of named ASNs.
func (n *ASNames) Len() int {
	if n == nil {
		return 0
	}
	return len(n.m)
}

// ParseASNames reads the CSV mapping "asn,name,locale" (one AS per line;
// the locale column is optional, '#' lines and blanks are skipped, and the
// ASN accepts a bare number or an "AS"-prefixed form).
func ParseASNames(data []byte) (*ASNames, error) {
	r := csv.NewReader(bytes.NewReader(data))
	r.FieldsPerRecord = -1 // locale column optional
	r.Comment = '#'
	r.TrimLeadingSpace = true
	r.LazyQuotes = true // registry names embed stray quotes
	recs, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("asnames: %w", err)
	}
	out := &ASNames{m: make(map[bgp.ASN]ASName, len(recs))}
	for i, rec := range recs {
		if len(rec) == 0 || (len(rec) == 1 && strings.TrimSpace(rec[0]) == "") {
			continue
		}
		if len(rec) < 2 {
			return nil, fmt.Errorf("asnames: line %d: want asn,name[,locale]", i+1)
		}
		s := strings.TrimSpace(rec[0])
		s = strings.TrimPrefix(strings.TrimPrefix(s, "AS"), "as")
		v, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("asnames: line %d: bad ASN %q", i+1, rec[0])
		}
		entry := ASName{Name: strings.TrimSpace(rec[1])}
		if len(rec) > 2 {
			entry.Locale = strings.TrimSpace(rec[2])
		}
		out.m[bgp.ASN(v)] = entry
	}
	return out, nil
}

// LoadASNames reads an asn,name,locale CSV file.
func LoadASNames(path string) (*ASNames, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseASNames(data)
}
