package rib

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/bgp/mrt"
	"artemis/internal/prefix"
)

// SynthConfig parameterizes a synthetic TABLE_DUMP_V2 snapshot. The
// generator is deterministic for a given config, so fixtures regenerate
// bit-identically and tests can replay the exact stream a loader saw.
type SynthConfig struct {
	// V4/V6 are prefix counts per family (a full table is ~1M v4 + ~220k v6).
	V4, V6 int
	// Peers is the collector peer count; odd-indexed peers behave as route
	// servers and do not prepend themselves to exported paths. Default 4.
	Peers int
	// RoutesPerPrefix is how many peers export each prefix. Default 1.
	RoutesPerPrefix int
	// Seed drives the deterministic generator.
	Seed int64
}

func (c *SynthConfig) normalize() {
	if c.Peers <= 0 {
		c.Peers = 4
	}
	if c.RoutesPerPrefix <= 0 {
		c.RoutesPerPrefix = 1
	}
	if c.RoutesPerPrefix > c.Peers {
		c.RoutesPerPrefix = c.Peers
	}
}

// maskDist is a weighted prefix-length distribution; weights sum to 100.
type maskBucket struct {
	bits   int
	weight int
}

// Roughly the shape of the real global table: v4 dominated by /24s, v6 by
// /48s and /32s.
var (
	v4Masks = []maskBucket{{24, 55}, {23, 8}, {22, 12}, {21, 6}, {20, 6}, {19, 5}, {18, 4}, {16, 4}}
	v6Masks = []maskBucket{{48, 50}, {44, 8}, {40, 10}, {36, 8}, {32, 24}}
)

func pickMask(rnd *rand.Rand, dist []maskBucket) int {
	n := rnd.Intn(100)
	for _, b := range dist {
		if n < b.weight {
			return b.bits
		}
		n -= b.weight
	}
	return dist[0].bits
}

// synthEpoch matches the dumps package's simulation epoch so SimTimeOf
// yields small positive offsets for synthetic records.
var synthEpoch = time.Unix(1466000000, 0).UTC()

// WriteSynth writes a synthetic snapshot: one PEER_INDEX_TABLE followed by
// cfg.V4+cfg.V6 RIB entries with unique prefixes (per-mask counters keep
// same-length prefixes disjoint; cross-mask overlap is allowed, as in a
// real table with covering aggregates).
func WriteSynth(w io.Writer, cfg SynthConfig) error {
	cfg.normalize()
	rnd := rand.New(rand.NewSource(cfg.Seed))
	mw := mrt.NewWriter(w)

	pit := &mrt.PeerIndexTable{
		Timestamp:   synthEpoch,
		CollectorID: prefix.MustParseAddr("198.51.100.1"),
		ViewName:    "synth",
	}
	for i := 0; i < cfg.Peers; i++ {
		id := prefix.AddrFrom4(uint32(0xc6336400 + i)) // 198.51.100.x
		pit.Peers = append(pit.Peers, mrt.Peer{BGPID: id, IP: id, AS: bgp.ASN(64500 + i)})
	}
	if err := mw.Write(pit); err != nil {
		return err
	}

	seq := uint32(0)
	perMask := make(map[int]uint64)
	emit := func(count int, is6 bool, dist []maskBucket) error {
		for i := 0; i < count; i++ {
			bits := pickMask(rnd, dist)
			key := bits
			if is6 {
				key += 1000 // v6 counters are independent of v4's
			}
			k := perMask[key]
			perMask[key] = k + 1
			var p prefix.Prefix
			if is6 {
				// 2000::/4 space; the counter occupies the bits below the
				// mask so same-length prefixes never collide.
				hi := uint64(0x2)<<60 | k<<(64-bits)
				p = prefix.New(prefix.AddrFrom16(hi, 0), bits)
			} else {
				p = prefix.New(prefix.AddrFrom4(uint32(k)<<(32-bits)), bits)
			}
			origin := bgp.ASN(1000 + rnd.Intn(70000))
			entry := &mrt.RIBEntry{
				Timestamp: synthEpoch.Add(time.Duration(rnd.Intn(3600)) * time.Second),
				Sequence:  seq,
				Prefix:    p,
			}
			seq++
			first := rnd.Intn(cfg.Peers)
			for j := 0; j < cfg.RoutesPerPrefix; j++ {
				idx := (first + j) % cfg.Peers
				peer := pit.Peers[idx]
				hops := rnd.Intn(3) + 1
				path := make([]bgp.ASN, 0, hops+2)
				if idx%2 == 0 {
					// A normal peer prepends itself; a route server (odd
					// index) exports the path as learned.
					path = append(path, peer.AS)
				}
				for h := 0; h < hops; h++ {
					path = append(path, bgp.ASN(100000+rnd.Intn(5000)))
				}
				path = append(path, origin)
				entry.Routes = append(entry.Routes, mrt.RIBPeerRoute{
					PeerIndex:  uint16(idx),
					Originated: entry.Timestamp,
					Attrs: []bgp.PathAttr{
						&bgp.OriginAttr{Value: bgp.OriginIGP},
						bgp.NewASPath(path),
						&bgp.NextHopAttr{Addr: peer.IP},
					},
				})
			}
			if err := mw.Write(entry); err != nil {
				return fmt.Errorf("rib: synth entry %s: %w", p, err)
			}
		}
		return nil
	}
	if err := emit(cfg.V4, false, v4Masks); err != nil {
		return err
	}
	return emit(cfg.V6, true, v6Masks)
}
