// Package rib holds full-table routing state at collector scale: a resident
// RIB bootstrapped from a TABLE_DUMP_V2 snapshot (~1M v4 + ~220k v6 routes)
// and kept current by the live feed, with the incremental indices a
// looking-glass needs — per-origin prefix counts, per-mask histograms, and
// table-movement counters.
//
// The paper's detector only needs the operator's own prefixes, but ROADMAP
// item 4 ("RIB-scale state") asks for the full-table view so the node can
// answer "who is AS64512 and where does this prefix route" the way a glass
// service does, and so detection quality isn't bounded by how little global
// state the node holds.
package rib

import (
	"fmt"
	"io"
	"slices"
	"sync"

	"artemis/internal/bgp"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
	"artemis/internal/route"
	"artemis/internal/topo"
)

// Table is a concurrency-safe full routing table with incremental
// route-intelligence indices. Candidate routes are keyed by vantage point
// (the collector peer that exported them); best-route selection reuses the
// route package's decision process, where all peers rank equal (topo.Peer)
// so shortest path wins with a deterministic tiebreak.
type Table struct {
	mu sync.RWMutex
	rt *route.Table
	// routes counts all candidate routes (not just best) across prefixes.
	routes int64
	// origins counts, per origin AS, how many best routes it originates.
	origins map[bgp.ASN]*originCount
	// masks is the per-mask histogram of resident best prefixes:
	// masks[0][0..32] for v4, masks[1][0..128] for v6.
	masks [2][129]int64
	// announces/withdraws are live table-movement totals per family
	// (bootstrap loading is not movement and does not count).
	announces [2]int64
	withdraws [2]int64
}

type originCount struct{ v4, v6 int64 }

// New returns an empty table.
func New() *Table {
	return &Table{
		rt:      route.NewTable(0),
		origins: make(map[bgp.ASN]*originCount),
	}
}

func famIdx(p prefix.Prefix) int {
	if p.Is6() {
		return 1
	}
	return 0
}

// insert installs one candidate route, updating the indices. The path is
// retained, so callers handing over pooled storage must set clone; live
// marks feed-driven movement (bootstrap loading passes false).
func (t *Table) insert(p prefix.Prefix, path []bgp.ASN, from bgp.ASN, clone, live bool) {
	if len(path) == 0 || from == 0 {
		return // a RIB route always has an origin and a vantage point
	}
	if clone {
		path = slices.Clone(path)
	}
	r := &route.Route{Prefix: p, Path: path, From: from, Rel: topo.Peer}
	t.mu.Lock()
	if live {
		t.announces[famIdx(p)]++
	}
	before := t.rt.NumCandidates(p)
	old, best, changed := t.rt.Update(r)
	t.routes += int64(t.rt.NumCandidates(p) - before)
	t.noteBestChange(p, old, best, changed)
	t.mu.Unlock()
}

// remove withdraws the candidate learned from the given vantage point.
func (t *Table) remove(p prefix.Prefix, from bgp.ASN, live bool) {
	t.mu.Lock()
	if live {
		t.withdraws[famIdx(p)]++
	}
	before := t.rt.NumCandidates(p)
	old, best, changed := t.rt.Withdraw(p, from)
	t.routes += int64(t.rt.NumCandidates(p) - before)
	t.noteBestChange(p, old, best, changed)
	t.mu.Unlock()
}

// noteBestChange maintains the origin and mask indices across one best-route
// transition. Caller holds the write lock.
func (t *Table) noteBestChange(p prefix.Prefix, old, best *route.Route, changed bool) {
	if !changed {
		return
	}
	fam := famIdx(p)
	if old != nil {
		t.bumpOrigin(old.Origin(0), fam, -1)
	}
	if best != nil {
		t.bumpOrigin(best.Origin(0), fam, +1)
	}
	switch {
	case old == nil && best != nil:
		t.masks[fam][p.Bits()]++
	case old != nil && best == nil:
		t.masks[fam][p.Bits()]--
	}
}

func (t *Table) bumpOrigin(asn bgp.ASN, fam int, delta int64) {
	if asn == 0 {
		return
	}
	oc := t.origins[asn]
	if oc == nil {
		oc = &originCount{}
		t.origins[asn] = oc
	}
	if fam == 0 {
		oc.v4 += delta
	} else {
		oc.v6 += delta
	}
	if oc.v4 == 0 && oc.v6 == 0 {
		delete(t.origins, asn)
	}
}

// Apply folds a batch of live feed events into the table, counting
// table movement. Event storage is pooled (feedtypes batch contract), so
// retained paths are deep-copied here.
func (t *Table) Apply(evs []feedtypes.Event) {
	for i := range evs {
		ev := &evs[i]
		switch ev.Kind {
		case feedtypes.Announce:
			t.insert(ev.Prefix, ev.Path, ev.VantagePoint, true, true)
		case feedtypes.Withdraw:
			t.remove(ev.Prefix, ev.VantagePoint, true)
		}
	}
}

// Resolve performs longest-prefix-match forwarding for addr. The returned
// route is immutable once installed and safe to read without the lock.
func (t *Table) Resolve(addr prefix.Addr) (*route.Route, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rt.Resolve(addr)
}

// ResolveBestFor returns the best route of the most specific resident
// prefix containing p (or p itself).
func (t *Table) ResolveBestFor(p prefix.Prefix) (*route.Route, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rt.ResolveBestFor(p)
}

// LookupResult answers a glass-style prefix query.
type LookupResult struct {
	// Matched is the most specific resident prefix covering the query.
	Matched prefix.Prefix
	// VantagePoint exported the best route; Path is as received, Origin
	// its last hop.
	VantagePoint bgp.ASN
	Path         []bgp.ASN
	Origin       bgp.ASN
	// Candidates is how many vantage points carry the matched prefix.
	Candidates int
}

// Lookup is the "/v1/lookup/{prefix}" question: longest-prefix-match p and
// describe the winning route. The returned path is a copy.
func (t *Table) Lookup(p prefix.Prefix) (LookupResult, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.rt.ResolveBestFor(p)
	if !ok {
		return LookupResult{}, false
	}
	return LookupResult{
		Matched:      r.Prefix,
		VantagePoint: r.From,
		Path:         slices.Clone(r.Path),
		Origin:       r.Origin(0),
		Candidates:   t.rt.NumCandidates(r.Prefix),
	}, true
}

// OriginCounts returns how many resident best routes asn originates, per
// family — the "/v1/as/{asn}" question, answered from the incremental
// origin index without walking the table.
func (t *Table) OriginCounts(asn bgp.ASN) (v4, v6 int64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if oc := t.origins[asn]; oc != nil {
		return oc.v4, oc.v6
	}
	return 0, 0
}

// Len returns the number of resident prefixes with at least one candidate.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rt.Len()
}

// Stats is a point-in-time snapshot of the table's size and movement.
type Stats struct {
	PrefixesV4, PrefixesV6   int64
	Routes                   int64
	Origins                  int
	AnnouncesV4, AnnouncesV6 int64
	WithdrawsV4, WithdrawsV6 int64
	// MasksV4[b] / MasksV6[b] count resident best prefixes of length b.
	MasksV4 [33]int64
	MasksV6 [129]int64
}

// Snapshot captures the current stats.
func (t *Table) Snapshot() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var s Stats
	for b := 0; b <= 32; b++ {
		s.MasksV4[b] = t.masks[0][b]
		s.PrefixesV4 += t.masks[0][b]
	}
	for b := 0; b <= 128; b++ {
		s.MasksV6[b] = t.masks[1][b]
		s.PrefixesV6 += t.masks[1][b]
	}
	s.Routes = t.routes
	s.Origins = len(t.origins)
	s.AnnouncesV4, s.AnnouncesV6 = t.announces[0], t.announces[1]
	s.WithdrawsV4, s.WithdrawsV6 = t.withdraws[0], t.withdraws[1]
	return s
}

// WriteProm renders the snapshot in the Prometheus text shape used by the
// repo's other snapshots (internal/stats): untyped samples, zero-count mask
// buckets omitted to keep /metrics readable at full-table scale.
func (s Stats) WriteProm(w io.Writer) {
	fmt.Fprintf(w, "artemis_rib_prefixes{family=\"4\"} %d\n", s.PrefixesV4)
	fmt.Fprintf(w, "artemis_rib_prefixes{family=\"6\"} %d\n", s.PrefixesV6)
	fmt.Fprintf(w, "artemis_rib_routes %d\n", s.Routes)
	fmt.Fprintf(w, "artemis_rib_origins %d\n", s.Origins)
	fmt.Fprintf(w, "artemis_rib_moves_total{family=\"4\",kind=\"announce\"} %d\n", s.AnnouncesV4)
	fmt.Fprintf(w, "artemis_rib_moves_total{family=\"6\",kind=\"announce\"} %d\n", s.AnnouncesV6)
	fmt.Fprintf(w, "artemis_rib_moves_total{family=\"4\",kind=\"withdraw\"} %d\n", s.WithdrawsV4)
	fmt.Fprintf(w, "artemis_rib_moves_total{family=\"6\",kind=\"withdraw\"} %d\n", s.WithdrawsV6)
	for b, n := range s.MasksV4 {
		if n != 0 {
			fmt.Fprintf(w, "artemis_rib_mask_prefixes{family=\"4\",mask=\"%d\"} %d\n", b, n)
		}
	}
	for b, n := range s.MasksV6 {
		if n != 0 {
			fmt.Fprintf(w, "artemis_rib_mask_prefixes{family=\"6\",mask=\"%d\"} %d\n", b, n)
		}
	}
}
