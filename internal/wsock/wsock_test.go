package wsock

import (
	"bytes"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// pipeConns builds a connected client/server Conn pair over a real TCP
// loopback with a full HTTP upgrade handshake.
func pipeConns(t *testing.T) (client, server *Conn) {
	t.Helper()
	var (
		mu  sync.Mutex
		srv *Conn
	)
	ready := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r)
		if err != nil {
			t.Errorf("Upgrade: %v", err)
			return
		}
		mu.Lock()
		srv = c
		mu.Unlock()
		close(ready)
	}))
	t.Cleanup(hs.Close)
	addr := strings.TrimPrefix(hs.URL, "http://")
	cli, err := Dial("ws://" + addr + "/stream")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	select {
	case <-ready:
	case <-time.After(2 * time.Second):
		t.Fatal("server upgrade timed out")
	}
	mu.Lock()
	defer mu.Unlock()
	t.Cleanup(func() { srv.Close() })
	return cli, srv
}

func TestAcceptKeyRFCExample(t *testing.T) {
	// The worked example from RFC 6455 §1.3.
	got := AcceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got != want {
		t.Fatalf("AcceptKey = %q, want %q", got, want)
	}
}

func TestEchoBothDirections(t *testing.T) {
	cli, srv := pipeConns(t)
	// client -> server
	msg := []byte(`{"type":"ris_message","data":{"prefix":"10.0.0.0/23"}}`)
	if err := cli.WriteMessage(OpText, msg); err != nil {
		t.Fatal(err)
	}
	op, got, err := srv.ReadMessage()
	if err != nil || op != OpText || !bytes.Equal(got, msg) {
		t.Fatalf("server got op=%d %q err=%v", op, got, err)
	}
	// server -> client
	if err := srv.WriteMessage(OpBinary, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	op, got, err = cli.ReadMessage()
	if err != nil || op != OpBinary || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("client got op=%d %v err=%v", op, got, err)
	}
}

func TestLargeMessages(t *testing.T) {
	cli, srv := pipeConns(t)
	for _, size := range []int{0, 125, 126, 127, 65535, 65536, 200000} {
		payload := bytes.Repeat([]byte{0xab}, size)
		done := make(chan error, 1)
		go func() { done <- cli.WriteMessage(OpBinary, payload) }()
		_, got, err := srv.ReadMessage()
		if err != nil {
			t.Fatalf("size %d: read: %v", size, err)
		}
		if len(got) != size {
			t.Fatalf("size %d: got %d bytes", size, len(got))
		}
		if err := <-done; err != nil {
			t.Fatalf("size %d: write: %v", size, err)
		}
	}
}

func TestManySmallMessagesInOrder(t *testing.T) {
	cli, srv := pipeConns(t)
	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			srv.WriteMessage(OpText, []byte{byte(i), byte(i >> 8)})
		}
	}()
	for i := 0; i < n; i++ {
		_, got, err := cli.ReadMessage()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if int(got[0])|int(got[1])<<8 != i {
			t.Fatalf("out of order at %d: % x", i, got)
		}
	}
}

func TestPingTransparent(t *testing.T) {
	cli, srv := pipeConns(t)
	if err := cli.Ping([]byte("hb")); err != nil {
		t.Fatal(err)
	}
	// Server's next read answers the ping internally and then delivers the
	// following data message.
	go func() {
		time.Sleep(10 * time.Millisecond)
		cli.WriteMessage(OpText, []byte("after-ping"))
	}()
	_, got, err := srv.ReadMessage()
	if err != nil || string(got) != "after-ping" {
		t.Fatalf("got %q err=%v", got, err)
	}
}

func TestPingTooLong(t *testing.T) {
	cli, _ := pipeConns(t)
	if err := cli.Ping(bytes.Repeat([]byte{0}, 126)); err == nil {
		t.Fatal("oversize ping accepted")
	}
}

func TestCloseHandshake(t *testing.T) {
	cli, srv := pipeConns(t)
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.ReadMessage(); err == nil {
		t.Fatal("server read succeeded after client close")
	}
	// Double close is a no-op.
	if err := cli.Close(); err != nil {
		t.Fatal("second close errored")
	}
	if err := cli.WriteMessage(OpText, []byte("x")); err != ErrClosed {
		t.Fatalf("write after close = %v, want ErrClosed", err)
	}
}

func TestServerInitiatedClose(t *testing.T) {
	cli, srv := pipeConns(t)
	srv.Close()
	if _, _, err := cli.ReadMessage(); err == nil {
		t.Fatal("client read succeeded after server close")
	}
}

func TestDialRejectsNonWS(t *testing.T) {
	if _, err := Dial("http://example.com/"); err == nil {
		t.Fatal("http URL accepted")
	}
}

func TestDialUnreachable(t *testing.T) {
	// Port 1 on localhost is almost certainly closed.
	if _, err := Dial("ws://127.0.0.1:1/x"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestUpgradeRejectsPlainRequest(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Upgrade(w, r); err == nil {
			t.Error("plain GET upgraded")
		}
	}))
	defer hs.Close()
	resp, err := http.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestHandshakeRejectsBadAccept(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 4096)
		c.Read(buf)
		c.Write([]byte("HTTP/1.1 101 Switching Protocols\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Accept: bogus\r\n\r\n"))
	}()
	if _, err := Dial("ws://" + ln.Addr().String() + "/"); err == nil {
		t.Fatal("bogus accept key passed validation")
	}
}

func TestFragmentedMessageReassembly(t *testing.T) {
	cli, srv := pipeConns(t)
	// Hand-roll a fragmented text message from the server side (unmasked).
	if err := srv.writeFrame(OpText, []byte("hel"), false); err != nil {
		t.Fatal(err)
	}
	if err := srv.writeFrame(opContinuation, []byte("lo "), false); err != nil {
		t.Fatal(err)
	}
	if err := srv.writeFrame(opContinuation, []byte("world"), true); err != nil {
		t.Fatal(err)
	}
	op, got, err := cli.ReadMessage()
	if err != nil || op != OpText || string(got) != "hello world" {
		t.Fatalf("reassembly got %q (op %d, err %v)", got, op, err)
	}
}

func TestInterleavedControlDuringFragments(t *testing.T) {
	cli, srv := pipeConns(t)
	srv.writeFrame(OpText, []byte("a"), false)
	srv.writeFrame(opPing, []byte("p"), true) // control frame mid-message
	srv.writeFrame(opContinuation, []byte("b"), true)
	_, got, err := cli.ReadMessage()
	if err != nil || string(got) != "ab" {
		t.Fatalf("got %q err=%v", got, err)
	}
}

func TestProtocolViolations(t *testing.T) {
	t.Run("continuation without start", func(t *testing.T) {
		cli, srv := pipeConns(t)
		srv.writeFrame(opContinuation, []byte("x"), true)
		if _, _, err := cli.ReadMessage(); err == nil {
			t.Fatal("accepted orphan continuation")
		}
	})
	t.Run("new data frame inside fragmented message", func(t *testing.T) {
		cli, srv := pipeConns(t)
		srv.writeFrame(OpText, []byte("x"), false)
		srv.writeFrame(OpText, []byte("y"), true)
		if _, _, err := cli.ReadMessage(); err == nil {
			t.Fatal("accepted interleaved data frame")
		}
	})
}
